/**
 * @file
 * Regenerates Figs. 8-11: the measured DVFS transition waveforms.
 *  - Fig. 8:  i9-9900K core voltage settling after a request
 *             (~350 us).
 *  - Fig. 9:  i9-9900K frequency change (~22 us) with the core
 *             stall and the late-APERF artifact.
 *  - Fig. 10: Ryzen 7 7700X frequency change (~668 us), no stall.
 *  - Fig. 11: Xeon Silver 4208 per-core p-state change: voltage
 *             first (~335 us), then frequency (~31 us, 27 us stall).
 */

#include <cstdio>

#include "power/transition.hh"
#include "util/format.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace {

using namespace suit;

void
printWave(const char *label, const std::vector<power::WaveformSample>
                                 &wave,
          bool freq)
{
    std::printf("%s\n%-12s %s\n", label, "t (us)",
                freq ? "freq (GHz)" : "voltage (mV)");
    for (std::size_t i = 0; i < wave.size(); i += freq ? 1 : 4) {
        const auto &s = wave[i];
        std::printf("%-12s %.3f\n",
                    util::sformat("%+8.1f", s.timeUs).c_str(),
                    freq ? s.value * 1e-9 : s.value);
    }
    std::printf("\n");
}

void
delayStats(const char *label, const power::DelayDistribution &d,
           util::Rng &rng)
{
    util::RunningStats s;
    for (int i = 0; i < 5000; ++i)
        s.add(util::ticksToMicroseconds(d.sample(rng)));
    std::printf("%-34s mean %7.1f us  sigma %6.1f us  max %7.1f us\n",
                label, s.mean(), s.stddev(), s.max());
}

} // namespace

int
main()
{
    std::printf("SUIT reproduction — Figs. 8-11: DVFS transition "
                "delays\n\n");

    util::Rng rng(2024);
    const auto i9 = power::i9_9900kTransitionModel();
    const auto amd = power::ryzen7700xTransitionModel();
    const auto xeon = power::xeon4208TransitionModel();

    std::printf("Sampled delay statistics (paper Sec. 5.2):\n");
    delayStats("i9-9900K voltage change", i9.voltageChange, rng);
    delayStats("i9-9900K frequency change", i9.freqChange, rng);
    delayStats("7700X frequency change", amd.freqChange, rng);
    delayStats("Xeon 4208 voltage change", xeon.voltageChange, rng);
    delayStats("Xeon 4208 frequency change", xeon.freqChange, rng);
    delayStats("Xeon 4208 frequency stall", xeon.freqChangeStall, rng);
    std::printf("(paper: 350 / 22 / 668 / 335 / 31 / 27 us)\n\n");

    printWave("Fig. 8 — i9-9900K voltage after resetting a -100 mV "
              "offset at t=0:",
              power::voltageStepWaveform(i9, 800.0, 900.0, rng, 25.0),
              false);

    printWave("Fig. 9 — i9-9900K frequency change 3.0 -> 2.6 GHz "
              "(note the sample gap: the core stalls):",
              power::frequencyStepWaveform(i9, 3.0e9, 2.6e9, rng, 3.0),
              true);

    printWave("Fig. 10 — 7700X frequency change 4.5 -> 2.0 GHz "
              "(gradual, no stall):",
              power::frequencyStepWaveform(amd, 4.5e9, 2.0e9, rng,
                                           60.0),
              true);

    printWave("Fig. 11 — Xeon 4208 p-state change (voltage leads "
              "frequency; stall at the end):",
              power::frequencyStepWaveform(xeon, 3.0e9, 2.6e9, rng,
                                           4.0),
              true);

    return 0;
}
