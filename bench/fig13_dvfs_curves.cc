/**
 * @file
 * Regenerates Fig. 13: the stable frequency-voltage pairs of the
 * i9-9900K, the SUIT efficient curves (-70 / -97 mV) and the safe
 * voltage of the modified (4-cycle) IMUL.
 */

#include <cstdio>

#include "power/guardband.hh"
#include "power/pstate.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main()
{
    using namespace suit;

    std::printf("SUIT reproduction — Fig. 13: i9-9900K DVFS "
                "curves\n\n");

    const power::DvfsCurve cons = power::i9_9900kCurve();
    const power::DvfsCurve eff70 =
        cons.shifted(-70.0, "efficient -70");
    const power::DvfsCurve eff97 =
        cons.shifted(-97.0, "efficient -97");
    const power::DvfsCurve imul = power::i9_9900kModifiedImulCurve();

    util::TablePrinter t({"f (GHz)", "conservative (mV)", "-70 mV",
                          "-97 mV", "modified IMUL", "IMUL slack"});
    for (double ghz = 1.0; ghz <= 5.01; ghz += 0.5) {
        const double f = ghz * 1e9;
        t.addRow({util::sformat("%.1f", ghz),
                  util::sformat("%.0f", cons.voltageAtMv(f)),
                  util::sformat("%.0f", eff70.voltageAtMv(f)),
                  util::sformat("%.0f", eff97.voltageAtMv(f)),
                  util::sformat("%.0f", imul.voltageAtMv(f)),
                  util::sformat("%.0f",
                                cons.voltageAtMv(f) -
                                    imul.voltageAtMv(f))});
    }
    t.print();

    const power::GuardbandModel gb;
    std::printf("\nDerived quantities (paper Secs. 5.5/5.6/6.9):\n");
    std::printf("  V(4 GHz) = %.0f mV, V(5 GHz) = %.0f mV, gradient "
                "4->5 GHz = %.0f mV/GHz\n",
                cons.voltageAtMv(4e9), cons.voltageAtMv(5e9),
                cons.gradientMvPerGhz(4.5e9));
    std::printf("  aging guardband at 5 GHz: %.0f mV (%.0f%%)\n",
                gb.agingBandMv(cons, 5e9),
                100.0 * gb.agingBandMv(cons, 5e9) /
                    cons.voltageAtMv(5e9));
    std::printf("  4-cycle IMUL slack at 5 GHz: %.0f mV (the +33%% "
                "latency buys up to 220 mV)\n",
                cons.voltageAtMv(5e9) - imul.voltageAtMv(5e9));
    return 0;
}
