/**
 * @file
 * Regenerates the Fig. 1 / Fig. 2 guardband picture as numbers: the
 * decomposition of the i9-9900K supply voltage into the nominal
 * minimum, the instruction-variation band SUIT exploits, and the
 * aging and temperature guardbands SUIT preserves, plus the derived
 * SUIT offsets evaluated in Sec. 6 (-70 mV / -97 mV).
 */

#include <cstdio>

#include "power/guardband.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main()
{
    using namespace suit;

    std::printf("SUIT reproduction — Fig. 2: guardband decomposition "
                "(i9-9900K at 5 GHz)\n\n");

    const power::DvfsCurve curve = power::i9_9900kCurve();
    const power::GuardbandModel gb;
    const power::GuardbandBreakdown b = gb.decompose(curve, 5e9);

    util::TablePrinter t({"Component", "Size", "Share of supply"});
    t.addRow({"CPU supply voltage",
              util::sformat("%.0f mV", b.supplyMv), "100%"});
    t.addRow({"Instruction variation (SUIT's budget)",
              util::sformat("%.0f mV", b.instructionVariationMv),
              util::sformat("%.1f%%",
                            100 * b.instructionVariationMv /
                                b.supplyMv)});
    t.addRow({"Aging guardband (preserved)",
              util::sformat("%.0f mV", b.agingMv),
              util::sformat("%.1f%%", 100 * b.agingFraction())});
    t.addRow({"Temperature guardband (preserved)",
              util::sformat("%.0f mV", b.temperatureMv),
              util::sformat("%.1f%%",
                            100 * b.temperatureFraction())});
    t.print();

    std::printf("\nSUIT undervolt offsets derived from the bands "
                "(Sec. 3.1):\n");
    util::TablePrinter t2({"Aging fraction used", "Offset"});
    for (double frac : {0.0, 0.2}) {
        t2.addRow({util::sformat("%.0f%%", 100 * frac),
                   util::sformat(
                       "%.0f mV",
                       power::suitUndervoltOffsetMv(gb, curve, 5e9,
                                                    frac))});
    }
    t2.print();

    std::printf("\nPaper reference: ~137 mV (12%%) aging and 35 mV "
                "(3.5%%) temperature guardbands; the evaluation\nuses "
                "-70 mV (variation only) and -97 mV (plus 20%% of the "
                "aging band).\n");
    return 0;
}
