/**
 * @file
 * Regenerates Fig. 6: how frequency and voltage change across one
 * *long* burst of faultable instructions under the fV operating
 * strategy: E -> (trap) -> Cf (fast frequency drop) -> CV (voltage
 * settles, full speed) -> E (after the deadline).
 */

#include <cstdio>

#include "core/params.hh"
#include "sim/domain_sim.hh"
#include "trace/profile.hh"
#include "util/format.hh"

int
main()
{
    using namespace suit;

    std::printf("SUIT reproduction — Fig. 6: fV strategy across one "
                "long burst (CPU C, -97 mV)\n\n");

    const power::CpuModel cpu = power::cpuC_xeon4208();

    // One synthetic long burst: 2 ms of back-to-back faultable
    // instructions inside an otherwise quiet stream.
    trace::WorkloadProfile profile;
    profile.name = "one-burst";
    profile.ipc = 1.5;
    profile.totalInstructions = 100'000'000;
    profile.kindMix[static_cast<std::size_t>(
        isa::FaultableKind::AESENC)] = 1.0;

    std::vector<trace::FaultableEvent> events;
    events.push_back({30'000'000, isa::FaultableKind::AESENC});
    for (int i = 0; i < 9000; ++i)
        events.push_back({1000, isa::FaultableKind::AESENC});
    const trace::Trace t("one-burst", profile.totalInstructions,
                         profile.ipc, events);

    sim::SimConfig cfg;
    cfg.cpu = &cpu;
    cfg.offsetMv = -97.0;
    cfg.strategy = core::StrategyKind::CombinedFv;
    cfg.params = core::optimalParams(cpu);
    cfg.recordStateLog = true;

    sim::DomainSimulator sim(cfg, {{&t, &profile}});
    const sim::DomainResult r = sim.run();

    const double f_e = cpu.baseFreqHz() * 1e-9;
    const double f_cf = cpu.cfFreqHz(-97.0) * 1e-9;
    const double v_hi =
        cpu.conservativeCurve().voltageAtMv(cpu.baseFreqHz());
    const double v_lo = v_hi - 97.0;

    std::printf("%-14s %-10s %-8s %-12s %s\n", "time (us)", "event",
                "curve", "freq (GHz)", "voltage (mV)");
    double t0 = -1.0;
    for (const auto &e : r.stateLog) {
        if (t0 < 0 && e.trap)
            t0 = util::ticksToMicroseconds(e.when);
        if (t0 < 0)
            continue;
        double f = f_e, v = v_lo;
        const char *curve = "E";
        if (!e.trap) {
            switch (e.to) {
              case power::SuitPState::ConservativeFreq:
                f = f_cf;
                v = v_lo;
                curve = "Cf";
                break;
              case power::SuitPState::ConservativeVolt:
                f = f_e;
                v = v_hi;
                curve = "CV";
                break;
              case power::SuitPState::Efficient:
                break;
            }
        }
        std::printf("%-14s %-10s %-8s %-12s %s\n",
                    util::sformat("%+10.1f",
                                  util::ticksToMicroseconds(e.when) -
                                      t0)
                        .c_str(),
                    e.trap ? "#DO trap" : "switch", curve,
                    e.trap ? "-" : util::sformat("%.2f", f).c_str(),
                    e.trap ? "-" : util::sformat("%.0f", v).c_str());
    }

    std::printf("\nExpected sequence (Fig. 6): trap -> Cf (frequency "
                "drops within ~31 us) -> CV (voltage settles after\n"
                "~335 us, frequency restored) -> burst ends -> "
                "deadline expires -> back to E.\n");
    return 0;
}
