/**
 * @file
 * Regenerates Table 4: the performance impact of compiling SPEC
 * CPU2017 without SSE/AVX, per suite and for the benchmarks whose
 * impact exceeds 5 %.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "sim/evaluation.hh"
#include "trace/profile.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main()
{
    using namespace suit;

    std::printf("SUIT reproduction — Table 4: SPEC CPU2017 without "
                "SIMD instructions\n\n");

    const auto profiles = trace::specProfiles();
    std::vector<double> fp_intel, fp_amd, int_intel, int_amd;
    for (const auto &p : profiles) {
        if (p.suite == trace::Suite::SpecFp) {
            fp_intel.push_back(p.noSimdDelta);
            fp_amd.push_back(p.noSimdDeltaAmd);
        } else {
            int_intel.push_back(p.noSimdDelta);
            int_amd.push_back(p.noSimdDeltaAmd);
        }
    }

    util::TablePrinter t({"CPU", "fprate", "intrate", "508", "521",
                          "538", "554", "525", "548"});
    auto by = [&](const char *name, bool amd) {
        return util::sformat(
            "%+.1f%%",
            100.0 * trace::profileByName(name).noSimdFor(amd));
    };
    t.addRow({"i9-9900K",
              util::sformat("%+.1f%%", 100 * sim::gmeanDelta(fp_intel)),
              util::sformat("%+.1f%%",
                            100 * sim::gmeanDelta(int_intel)),
              by("508.namd", false), by("521.wrf", false),
              by("538.imagick", false), by("554.roms", false),
              by("525.x264", false), by("548.exchange2", false)});
    t.addRow({"7700X",
              util::sformat("%+.1f%%", 100 * sim::gmeanDelta(fp_amd)),
              util::sformat("%+.1f%%", 100 * sim::gmeanDelta(int_amd)),
              by("508.namd", true), by("521.wrf", true),
              by("538.imagick", true), by("554.roms", true),
              by("525.x264", true), by("548.exchange2", true)});
    t.print();

    std::printf("\nPaper reference (i9): fprate -4.1%%, intrate "
                "+0.5%%, 508 -22%%, 538 -12%%, 525 +7.0%%, 548 "
                "+7.7%%\n(the integer-suite speedup is attributed to "
                "AVX frequency throttling).\n");
    return 0;
}
