/**
 * @file
 * Regenerates Fig. 16: per-benchmark performance and efficiency of
 * SUIT on CPU C (Xeon Silver 4208, per-core PCPS) under the fV
 * operating strategy at -70 mV and -97 mV.
 */

#include <cstdio>

#include "core/params.hh"
#include "sim/evaluation.hh"
#include "trace/profile.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main()
{
    using namespace suit;

    std::printf("SUIT reproduction — Fig. 16: per-benchmark impact "
                "on CPU C (fV strategy)\n\n");

    const power::CpuModel cpu = power::cpuC_xeon4208();

    util::TablePrinter t({"Benchmark", "Perf -70", "Eff -70",
                          "Perf -97", "Eff -97", "onE -97"});

    std::vector<double> eff97_all, perf97_all;
    for (const auto &p : trace::allProfiles()) {
        sim::EvalConfig cfg;
        cfg.cpu = &cpu;
        cfg.strategy = core::StrategyKind::CombinedFv;
        cfg.params = core::optimalParams(cpu);

        cfg.offsetMv = -70.0;
        const auto r70 = sim::runWorkload(cfg, p);
        cfg.offsetMv = -97.0;
        const auto r97 = sim::runWorkload(cfg, p);

        if (p.suite != trace::Suite::Network) {
            eff97_all.push_back(r97.efficiencyDelta());
            perf97_all.push_back(r97.perfDelta());
        }

        t.addRow({p.name,
                  util::sformat("%+.2f%%", 100 * r70.perfDelta()),
                  util::sformat("%+.1f%%",
                                100 * r70.efficiencyDelta()),
                  util::sformat("%+.2f%%", 100 * r97.perfDelta()),
                  util::sformat("%+.1f%%",
                                100 * r97.efficiencyDelta()),
                  util::sformat("%.1f%%",
                                100 * r97.efficientShare)});
    }
    t.print();

    std::printf("\nSPEC aggregate at -97 mV: perf gmean %+.2f%%, eff "
                "gmean %+.1f%%, eff median %+.1f%%\n",
                100 * sim::gmeanDelta(perf97_all),
                100 * sim::gmeanDelta(eff97_all),
                100 * sim::medianDelta(eff97_all));
    std::printf("\nPaper reference (-97 mV): efficiency gmean +11%%, "
                "median +13%%, 72.7%% of time on the efficient\n"
                "curve; 557.xz best (+16.9%% eff, +2.75%% perf), "
                "502.gcc worst perf (-2.89%%), 520.omnetpp parks\n"
                "on the conservative curve with negligible impact.\n");
    return 0;
}
