/**
 * @file
 * Regenerates Fig. 16: per-benchmark performance and efficiency of
 * SUIT on CPU C (Xeon Silver 4208, per-core PCPS) under the fV
 * operating strategy at -70 mV and -97 mV.
 *
 * The 25 x 2 (workload x offset) grid runs as one batch on the
 * suit::exec SweepEngine; rows print in Fig. 16 order regardless of
 * worker count.
 */

#include <cstdio>
#include <vector>

#include "core/params.hh"
#include "exec/sweep.hh"
#include "runtime/session.hh"
#include "sim/evaluation.hh"
#include "trace/profile.hh"
#include "util/args.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace suit;
    using exec::SweepEngine;
    using exec::SweepJob;

    util::ArgParser args("fig16_per_benchmark",
                         "regenerate Fig. 16 (paper Sec. 6.4)");
    args.addOption("jobs", "0",
                   "parallel sweep workers (0 = hardware threads, "
                   "1 = serial reference)");
    if (!args.parse(argc, argv))
        return 0;

    std::printf("SUIT reproduction — Fig. 16: per-benchmark impact "
                "on CPU C (fV strategy)\n\n");

    const power::CpuModel cpu = power::cpuC_xeon4208();
    const auto &profiles = trace::allProfiles();

    sim::EvalConfig cfg;
    cfg.cpu = &cpu;
    cfg.strategy = core::StrategyKind::CombinedFv;
    cfg.params = core::optimalParams(cpu);

    // Per profile: the -70 mV cell then the -97 mV cell.
    std::vector<SweepJob> jobs;
    jobs.reserve(2 * profiles.size());
    for (const auto &p : profiles) {
        sim::EvalConfig c70 = cfg;
        c70.offsetMv = -70.0;
        jobs.push_back({p.name, c70, &p});
        sim::EvalConfig c97 = cfg;
        c97.offsetMv = -97.0;
        jobs.push_back({p.name, c97, &p});
    }

    runtime::Session session(
        {static_cast<int>(args.getInt("jobs")), 0});
    SweepEngine engine(session);
    const std::vector<sim::DomainResult> results = engine.run(jobs);

    util::TablePrinter t({"Benchmark", "Perf -70", "Eff -70",
                          "Perf -97", "Eff -97", "onE -97"});

    std::vector<double> eff97_all, perf97_all;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        const auto &p = profiles[i];
        const sim::DomainResult &r70 = results[2 * i];
        const sim::DomainResult &r97 = results[2 * i + 1];

        if (p.suite != trace::Suite::Network) {
            eff97_all.push_back(r97.efficiencyDelta());
            perf97_all.push_back(r97.perfDelta());
        }

        t.addRow({p.name,
                  util::sformat("%+.2f%%", 100 * r70.perfDelta()),
                  util::sformat("%+.1f%%",
                                100 * r70.efficiencyDelta()),
                  util::sformat("%+.2f%%", 100 * r97.perfDelta()),
                  util::sformat("%+.1f%%",
                                100 * r97.efficiencyDelta()),
                  util::sformat("%.1f%%",
                                100 * r97.efficientShare)});
    }
    t.print();

    std::printf("\nSPEC aggregate at -97 mV: perf gmean %+.2f%%, eff "
                "gmean %+.1f%%, eff median %+.1f%%\n",
                100 * sim::gmeanDelta(perf97_all),
                100 * sim::gmeanDelta(eff97_all),
                100 * sim::medianDelta(eff97_all));
    std::printf("\nPaper reference (-97 mV): efficiency gmean +11%%, "
                "median +13%%, 72.7%% of time on the efficient\n"
                "curve; 557.xz best (+16.9%% eff, +2.75%% perf), "
                "502.gcc worst perf (-2.89%%), 520.omnetpp parks\n"
                "on the conservative curve with negligible impact.\n");
    std::printf("\nSweep execution (%d worker%s, %zu jobs):\n%s",
                engine.jobs(), engine.jobs() == 1 ? "" : "s",
                jobs.size(), engine.workerFooter().c_str());
    return 0;
}
