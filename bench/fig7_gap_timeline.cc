/**
 * @file
 * Regenerates Fig. 7: the timeline of AES instruction execution in
 * the VLC streaming trace — bursts of faultable instructions with
 * heavy-tailed gaps — as (instruction index, gap size) series plus
 * the gap-size histogram.
 */

#include <cstdio>

#include "trace/generator.hh"
#include "trace/profile.hh"
#include "util/format.hh"

int
main()
{
    using namespace suit;

    std::printf("SUIT reproduction — Fig. 7: AES gap-size timeline "
                "while VLC streams a 1080p video\n\n");

    const auto &profile = trace::vlcProfile();
    const trace::Trace t = trace::TraceGenerator(1).generate(profile);
    const trace::TraceStats stats = trace::TraceStats::compute(t);

    std::printf("Trace: %llu instructions, %zu faultable events "
                "(x%g thinning), mean gap %.0f, max gap %.2e\n\n",
                static_cast<unsigned long long>(t.totalInstructions()),
                t.eventCount(), profile.eventWeight, stats.meanGap,
                static_cast<double>(stats.maxGap));

    // The figure's series: big gaps (burst boundaries) along the
    // instruction index axis.  Print the first burst boundaries.
    std::printf("%-18s %-14s %s\n", "instruction index", "gap size",
                "log10(gap)");
    int shown = 0;
    for (std::size_t i = 0; i < t.eventCount() && shown < 18; ++i) {
        const auto &e = t.events()[i];
        if (e.gap < 100 * profile.eventWeight)
            continue; // inside a burst
        int log10 = 0;
        for (std::uint64_t g = e.gap; g >= 10; g /= 10)
            ++log10;
        std::printf("%-18s %-14s %d\n",
                    util::sformat("%.3e",
                                  static_cast<double>(t.eventIndex(i)))
                        .c_str(),
                    util::sformat("%.2e", static_cast<double>(e.gap))
                        .c_str(),
                    log10);
        ++shown;
    }

    std::printf("\nGap-size histogram over the whole trace "
                "(decades of instructions):\n");
    std::fputs(stats.gapHistogram.render(48).c_str(), stdout);

    std::printf("\nExpected shape: most gaps are tiny (inside AES "
                "bursts, ~15 instructions apart), with burst\n"
                "boundaries spread over many decades up to ~1e7+ "
                "instructions — ideal for SUIT's deadline\nmechanism "
                "(paper Sec. 5.1).\n");
    return 0;
}
