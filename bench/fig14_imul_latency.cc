/**
 * @file
 * Regenerates Fig. 14 (and prints the Table 5 system): slowdown of
 * SPEC-like workloads as the IMUL latency grows from 3 (stock) to
 * 4 (SUIT) and beyond.  Expected shape: ~0.03 % geomean and ~1.6 %
 * for the x264-like mix at 4 cycles (out-of-order execution hides
 * the extra cycle), turning near-linear at 15/30 cycles.
 */

#include <cstdio>
#include <vector>

#include "sim/evaluation.hh"
#include "uarch/o3_model.hh"
#include "util/format.hh"
#include "util/table.hh"

namespace {

using namespace suit;
using uarch::CoreConfig;
using uarch::CoreStats;
using uarch::ProgramMix;

constexpr std::size_t kInstructions = 400'000;

void
printTable5()
{
    const CoreConfig cfg;
    std::printf("Table 5 — simulated system configuration\n");
    util::TablePrinter t({"Component", "Configuration"});
    t.addRow({"CPU", "x86-64-like O3 model, 3 GHz, 8-wide"});
    t.addRow({"Pipeline",
              util::sformat("ROB %d, IQ %d, LSQ %d, redirect %d cy",
                            cfg.robSize, cfg.iqSize, cfg.lsqSize,
                            cfg.redirectPenalty)});
    t.addRow({"Cache",
              "64 kB L1I, 32 kB L1D, 2 MB LLC (LRU, 64 B lines)"});
    t.addRow({"DRAM", util::sformat("DDR4-2400-like, %d cycles",
                                    cfg.mem.dramLatency)});
    t.addRow({"IMUL", "3 cycles stock, fully pipelined"});
    t.print();
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("SUIT reproduction — Fig. 14: slowdown vs. IMUL "
                "latency\n");
    std::printf("(paper Sec. 6.1: gem5 O3 + SPECcast slices; here: "
                "the in-tree O3 timestamp model on synthetic SPEC-like "
                "mixes)\n\n");

    printTable5();

    const std::vector<int> latencies = {3, 4, 5, 6, 15, 30};
    const std::vector<ProgramMix> mixes = uarch::figure14Mixes();

    // Baseline at the stock 3-cycle IMUL.
    std::vector<double> base_cycles;
    for (const ProgramMix &mix : mixes) {
        base_cycles.push_back(static_cast<double>(
            uarch::runMixAtImulLatency(mix, kInstructions, 3)
                .cycles));
    }

    util::TablePrinter t({"IMUL latency", "geomean slowdown",
                          "x264-like slowdown", "worst mix"});
    for (int lat : latencies) {
        std::vector<double> ratios;
        double x264 = 0.0;
        double worst = 0.0;
        for (std::size_t m = 0; m < mixes.size(); ++m) {
            const CoreStats s = uarch::runMixAtImulLatency(
                mixes[m], kInstructions, lat);
            const double ratio =
                static_cast<double>(s.cycles) / base_cycles[m];
            ratios.push_back(ratio);
            worst = std::max(worst, ratio - 1.0);
            if (mixes[m].name == "x264-like")
                x264 = ratio - 1.0;
        }
        const double gm = sim::gmeanDelta([&] {
            std::vector<double> deltas;
            for (double r : ratios)
                deltas.push_back(r - 1.0);
            return deltas;
        }());
        t.addRow({util::sformat("%d cycles%s", lat,
                                lat == 3   ? " (stock)"
                                : lat == 4 ? " (SUIT)"
                                           : ""),
                  util::sformat("%+.3f%%", 100.0 * gm),
                  util::sformat("%+.3f%%", 100.0 * x264),
                  util::sformat("%+.3f%%", 100.0 * worst)});
    }
    t.print();

    std::printf(
        "\nPaper reference: +1 cycle costs 0.03%% geomean (n=8) and "
        "1.60%% for 525.x264 (0.99%% IMUL);\nsmall increments are "
        "absorbed by out-of-order execution, large latencies scale "
        "almost linearly.\n");
    return 0;
}
