/**
 * @file
 * Regenerates Table 6: power saving and performance impact of SUIT
 * on CPUs A (i9-9900K, shared domain, 1 and 4 cores), B (7700X,
 * per-core frequency domains) and C (Xeon 4208, per-core PCPS)
 * under the fV / f / e operating strategies at -70 mV and -97 mV.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/params.hh"
#include "core/strategy.hh"
#include "power/cpu_model.hh"
#include "sim/evaluation.hh"
#include "trace/profile.hh"
#include "util/format.hh"
#include "util/table.hh"

namespace {

using namespace suit;
using sim::EvalConfig;
using sim::RunMode;
using sim::SuiteSummary;
using sim::WorkloadRow;

std::string
pct(double x)
{
    return util::sformat("%+.1f%%", 100.0 * x);
}

struct ConfigSpec
{
    const char *label;     //!< e.g. "A1 fV"
    const power::CpuModel *cpu;
    int cores;
    core::StrategyKind strategy;
};

const sim::WorkloadRow *
findRow(const std::vector<WorkloadRow> &rows, const std::string &name)
{
    for (const auto &r : rows) {
        if (r.workload == name)
            return &r;
    }
    return nullptr;
}

void
runOffset(double offset_mv, const std::vector<ConfigSpec> &specs)
{
    std::printf("\n=== Table 6 — %g mV undervolt ===\n", offset_mv);
    util::TablePrinter table({"CPU/OS", "Metric", "SPECgmean",
                              "SPECmedian", "525.x264", "SPECnoSIMD",
                              "Nginx", "VLC"});

    const auto spec_profiles = trace::specProfiles();

    for (const ConfigSpec &spec : specs) {
        EvalConfig cfg;
        cfg.cpu = spec.cpu;
        cfg.cores = spec.cores;
        cfg.offsetMv = offset_mv;
        cfg.mode = RunMode::Suit;
        cfg.strategy = spec.strategy;
        cfg.params = core::optimalParams(*spec.cpu);

        const auto rows = sim::runSuite(cfg, spec_profiles);
        const SuiteSummary sum = SuiteSummary::of(rows);
        const auto *x264 = findRow(rows, "525.x264");

        // SPECnoSIMD: every benchmark compiled without SIMD, no
        // trappable instructions left (paper Sec. 6.7).
        EvalConfig nosimd_cfg = cfg;
        nosimd_cfg.mode = RunMode::NoSimdCompile;
        const auto nosimd_rows =
            sim::runSuite(nosimd_cfg, spec_profiles);
        const SuiteSummary nosimd = SuiteSummary::of(nosimd_rows);

        const auto nginx =
            sim::runWorkload(cfg, trace::nginxProfile());
        const auto vlc = sim::runWorkload(cfg, trace::vlcProfile());

        const std::string who = util::sformat(
            "%s%s %s", spec.cpu->label().c_str(),
            spec.cpu->domains() == power::DomainLayout::SharedAll
                ? util::sformat("%d", spec.cores).c_str()
                : "inf",
            core::toString(spec.strategy));

        table.addRow({who, "Pwr", pct(sum.gmeanPower),
                      pct(sum.medianPower),
                      pct(x264->result.powerDelta()),
                      pct(nosimd.gmeanPower),
                      pct(nginx.powerDelta()), pct(vlc.powerDelta())});
        table.addRow({"", "Perf", pct(sum.gmeanPerf),
                      pct(sum.medianPerf),
                      pct(x264->result.perfDelta()),
                      pct(nosimd.gmeanPerf), pct(nginx.perfDelta()),
                      pct(vlc.perfDelta())});
        table.addRow({"", "Eff", pct(sum.gmeanEff),
                      pct(sum.medianEff),
                      pct(x264->result.efficiencyDelta()),
                      pct(nosimd.gmeanEff),
                      pct(nginx.efficiencyDelta()),
                      pct(vlc.efficiencyDelta())});
        table.addRow({"", "onE",
                      util::sformat("%.1f%%",
                                    100.0 * sum.meanEfficientShare),
                      "", "", "", "", ""});
        table.addSeparator();
    }
    table.print();
}

} // namespace

int
main()
{
    std::printf("SUIT reproduction — Table 6: efficiency and "
                "performance of SUIT\n");
    std::printf("(paper: ASPLOS'24, Juffinger et al., Sec. 6.3)\n");

    const power::CpuModel cpu_a = power::cpuA_i9_9900k();
    const power::CpuModel cpu_b = power::cpuB_ryzen7700x();
    const power::CpuModel cpu_c = power::cpuC_xeon4208();

    const std::vector<ConfigSpec> specs = {
        {"A1 fV", &cpu_a, 1, core::StrategyKind::CombinedFv},
        {"A4 fV", &cpu_a, 4, core::StrategyKind::CombinedFv},
        {"Ainf e", &cpu_a, 1, core::StrategyKind::Emulation},
        {"Binf f", &cpu_b, 1, core::StrategyKind::Frequency},
        {"Binf e", &cpu_b, 1, core::StrategyKind::Emulation},
        {"Cinf fV", &cpu_c, 1, core::StrategyKind::CombinedFv},
    };

    runOffset(-70.0, specs);
    runOffset(-97.0, specs);

    std::printf(
        "\nPaper reference points (-97 mV): A1 fV eff +12%%, A4 fV "
        "eff +5.8%%, Ainf e eff -34%% (median +0.6%%),\nBinf f eff "
        "+1.4%%, Binf e eff -14%%, Cinf fV eff +11%% with ~72.7%% of "
        "time on the efficient curve;\nNginx/VLC with emulation "
        "collapse to about -98%%/-92%% performance.\n");
    return 0;
}
