/**
 * @file
 * Regenerates Table 6: power saving and performance impact of SUIT
 * on CPUs A (i9-9900K, shared domain, 1 and 4 cores), B (7700X,
 * per-core frequency domains) and C (Xeon 4208, per-core PCPS)
 * under the fV / f / e operating strategies at -70 mV and -97 mV.
 *
 * The full grid — 2 offsets x 6 CPU configurations x (23 SPEC + 23
 * no-SIMD + Nginx + VLC) = 576 cells — is enqueued as one job list
 * on the suit::exec SweepEngine, so the wall clock scales with the
 * available hardware threads while the printed rows stay
 * bit-identical to the serial reference (`--jobs 1`).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/params.hh"
#include "core/strategy.hh"
#include "exec/sweep.hh"
#include "runtime/session.hh"
#include "power/cpu_model.hh"
#include "sim/evaluation.hh"
#include "trace/profile.hh"
#include "util/args.hh"
#include "util/format.hh"
#include "util/table.hh"

namespace {

using namespace suit;
using exec::SweepEngine;
using exec::SweepJob;
using sim::DomainResult;
using sim::EvalConfig;
using sim::RunMode;
using sim::SuiteSummary;
using sim::WorkloadRow;

std::string
pct(double x)
{
    return util::sformat("%+.1f%%", 100.0 * x);
}

struct ConfigSpec
{
    const char *label;     //!< e.g. "A1 fV"
    const power::CpuModel *cpu;
    int cores;
    core::StrategyKind strategy;
};

/** Job-list slice of one (offset, spec) group. */
struct GroupIndex
{
    std::size_t suitBegin = 0;   //!< 23 SPEC rows under SUIT
    std::size_t nosimdBegin = 0; //!< 23 SPEC rows compiled w/o SIMD
    std::size_t nginx = 0;
    std::size_t vlc = 0;
};

const WorkloadRow *
findRow(const std::vector<WorkloadRow> &rows, const std::string &name)
{
    for (const auto &r : rows) {
        if (r.workload == name)
            return &r;
    }
    return nullptr;
}

/** Slice [begin, begin + profiles.size()) of @p results as rows. */
std::vector<WorkloadRow>
sliceRows(const std::vector<DomainResult> &results, std::size_t begin,
          const std::vector<trace::WorkloadProfile> &profiles)
{
    std::vector<WorkloadRow> rows;
    rows.reserve(profiles.size());
    for (std::size_t i = 0; i < profiles.size(); ++i)
        rows.push_back({profiles[i].name, results[begin + i]});
    return rows;
}

void
printOffset(double offset_mv, const std::vector<ConfigSpec> &specs,
            const std::vector<trace::WorkloadProfile> &spec_profiles,
            const std::vector<GroupIndex> &groups,
            const std::vector<DomainResult> &results)
{
    std::printf("\n=== Table 6 — %g mV undervolt ===\n", offset_mv);
    util::TablePrinter table({"CPU/OS", "Metric", "SPECgmean",
                              "SPECmedian", "525.x264", "SPECnoSIMD",
                              "Nginx", "VLC"});

    for (std::size_t s = 0; s < specs.size(); ++s) {
        const ConfigSpec &spec = specs[s];
        const GroupIndex &g = groups[s];

        const auto rows =
            sliceRows(results, g.suitBegin, spec_profiles);
        const SuiteSummary sum = SuiteSummary::of(rows);
        const auto *x264 = findRow(rows, "525.x264");

        const auto nosimd_rows =
            sliceRows(results, g.nosimdBegin, spec_profiles);
        const SuiteSummary nosimd = SuiteSummary::of(nosimd_rows);

        const DomainResult &nginx = results[g.nginx];
        const DomainResult &vlc = results[g.vlc];

        const std::string who = util::sformat(
            "%s%s %s", spec.cpu->label().c_str(),
            spec.cpu->domains() == power::DomainLayout::SharedAll
                ? util::sformat("%d", spec.cores).c_str()
                : "inf",
            core::toString(spec.strategy));

        table.addRow({who, "Pwr", pct(sum.gmeanPower),
                      pct(sum.medianPower),
                      pct(x264->result.powerDelta()),
                      pct(nosimd.gmeanPower),
                      pct(nginx.powerDelta()), pct(vlc.powerDelta())});
        table.addRow({"", "Perf", pct(sum.gmeanPerf),
                      pct(sum.medianPerf),
                      pct(x264->result.perfDelta()),
                      pct(nosimd.gmeanPerf), pct(nginx.perfDelta()),
                      pct(vlc.perfDelta())});
        table.addRow({"", "Eff", pct(sum.gmeanEff),
                      pct(sum.medianEff),
                      pct(x264->result.efficiencyDelta()),
                      pct(nosimd.gmeanEff),
                      pct(nginx.efficiencyDelta()),
                      pct(vlc.efficiencyDelta())});
        table.addRow({"", "onE",
                      util::sformat("%.1f%%",
                                    100.0 * sum.meanEfficientShare),
                      "", "", "", "", ""});
        table.addSeparator();
    }
    table.print();
}

} // namespace

int
main(int argc, char **argv)
{
    util::ArgParser args("table6_suit_evaluation",
                         "regenerate Table 6 (paper Sec. 6.3)");
    args.addOption("jobs", "0",
                   "parallel sweep workers (0 = hardware threads, "
                   "1 = serial reference)");
    if (!args.parse(argc, argv))
        return 0;

    std::printf("SUIT reproduction — Table 6: efficiency and "
                "performance of SUIT\n");
    std::printf("(paper: ASPLOS'24, Juffinger et al., Sec. 6.3)\n");

    const power::CpuModel cpu_a = power::cpuA_i9_9900k();
    const power::CpuModel cpu_b = power::cpuB_ryzen7700x();
    const power::CpuModel cpu_c = power::cpuC_xeon4208();

    const std::vector<ConfigSpec> specs = {
        {"A1 fV", &cpu_a, 1, core::StrategyKind::CombinedFv},
        {"A4 fV", &cpu_a, 4, core::StrategyKind::CombinedFv},
        {"Ainf e", &cpu_a, 1, core::StrategyKind::Emulation},
        {"Binf f", &cpu_b, 1, core::StrategyKind::Frequency},
        {"Binf e", &cpu_b, 1, core::StrategyKind::Emulation},
        {"Cinf fV", &cpu_c, 1, core::StrategyKind::CombinedFv},
    };
    const double offsets[] = {-70.0, -97.0};

    const auto spec_profiles = trace::specProfiles();
    const auto &nginx_profile = trace::nginxProfile();
    const auto &vlc_profile = trace::vlcProfile();

    // Enqueue the entire grid in one deterministic job order:
    // offset-major, then spec, then (SUIT SPEC, no-SIMD SPEC, Nginx,
    // VLC).
    std::vector<SweepJob> jobs;
    std::vector<std::vector<GroupIndex>> groups(2);
    for (std::size_t o = 0; o < 2; ++o) {
        for (const ConfigSpec &spec : specs) {
            EvalConfig cfg;
            cfg.cpu = spec.cpu;
            cfg.cores = spec.cores;
            cfg.offsetMv = offsets[o];
            cfg.mode = RunMode::Suit;
            cfg.strategy = spec.strategy;
            cfg.params = core::optimalParams(*spec.cpu);

            // SPECnoSIMD: every benchmark compiled without SIMD, no
            // trappable instructions left (paper Sec. 6.7).
            EvalConfig nosimd_cfg = cfg;
            nosimd_cfg.mode = RunMode::NoSimdCompile;

            GroupIndex g;
            g.suitBegin = jobs.size();
            for (const auto &p : spec_profiles)
                jobs.push_back({spec.label, cfg, &p});
            g.nosimdBegin = jobs.size();
            for (const auto &p : spec_profiles)
                jobs.push_back({spec.label, nosimd_cfg, &p});
            g.nginx = jobs.size();
            jobs.push_back({spec.label, cfg, &nginx_profile});
            g.vlc = jobs.size();
            jobs.push_back({spec.label, cfg, &vlc_profile});
            groups[o].push_back(g);
        }
    }

    runtime::Session session(
        {static_cast<int>(args.getInt("jobs")), 0});
    SweepEngine engine(session);
    const std::vector<DomainResult> results = engine.run(jobs);

    for (std::size_t o = 0; o < 2; ++o)
        printOffset(offsets[o], specs, spec_profiles, groups[o],
                    results);

    std::printf(
        "\nPaper reference points (-97 mV): A1 fV eff +12%%, A4 fV "
        "eff +5.8%%, Ainf e eff -34%% (median +0.6%%),\nBinf f eff "
        "+1.4%%, Binf e eff -14%%, Cinf fV eff +11%% with ~72.7%% of "
        "time on the efficient curve;\nNginx/VLC with emulation "
        "collapse to about -98%%/-92%% performance.\n");
    std::printf("\nSweep execution (%d worker%s, %zu jobs):\n%s",
                engine.jobs(), engine.jobs() == 1 ? "" : "s",
                jobs.size(), engine.workerFooter().c_str());
    return 0;
}
