/**
 * @file
 * Regenerates Fig. 12: SPEC CPU2017 score increase, package power
 * and mean frequency of the i9-9900K across undervolting offsets
 * from 0 to -97 mV.
 */

#include <cstdio>

#include "power/cpu_model.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main()
{
    using namespace suit;

    std::printf("SUIT reproduction — Fig. 12: undervolting sweep on "
                "the i9-9900K (SPEC CPU2017)\n\n");

    const power::CpuModel cpu = power::cpuA_i9_9900k();
    const auto &response = cpu.undervolt();

    util::TablePrinter t({"V_off (mV)", "Score", "Power (W)",
                          "Mean freq (GHz)", "Eff"});
    for (double off = 0.0; off >= -97.01; off -= 10.0) {
        const double o = off < -97.0 ? -97.0 : off;
        const power::UndervoltEffect e = response.at(o);
        t.addRow({util::sformat("%.0f", o),
                  util::sformat("%+.2f%%", 100 * e.scoreDelta),
                  util::sformat("%.1f",
                                cpu.basePowerW() *
                                    (1.0 + e.powerDelta)),
                  util::sformat("%.2f",
                                cpu.baseFreqHz() * 1e-9 *
                                    (1.0 + e.freqDelta)),
                  util::sformat("%+.1f%%",
                                100 * e.efficiencyDelta())});
    }
    // The exact evaluation points.
    t.addSeparator();
    for (double o : {-70.0, -97.0}) {
        const power::UndervoltEffect e = response.at(o);
        t.addRow({util::sformat("%.0f (eval)", o),
                  util::sformat("%+.2f%%", 100 * e.scoreDelta),
                  util::sformat("%.1f",
                                cpu.basePowerW() *
                                    (1.0 + e.powerDelta)),
                  util::sformat("%.2f",
                                cpu.baseFreqHz() * 1e-9 *
                                    (1.0 + e.freqDelta)),
                  util::sformat("%+.1f%%",
                                100 * e.efficiencyDelta())});
    }
    t.print();

    std::printf("\nPaper reference: at -97 mV the score rises 3.8%% "
                "while package power falls from ~93 W to ~77 W\n"
                "(-16%%), because the TDP-limited CPU converts the "
                "saved power into sustained clocks.\n");
    return 0;
}
