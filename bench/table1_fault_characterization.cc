/**
 * @file
 * Regenerates Table 1: the number of undervolting-induced faults per
 * instruction, via a Minefield-style characterization campaign
 * (sweep voltage offsets per core and frequency, count the
 * (core, frequency, offset) combinations at which each instruction
 * misbehaves before the core crashes).
 */

#include <cstdio>

#include "faults/characterizer.hh"
#include "power/pstate.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main()
{
    using namespace suit;

    std::printf("SUIT reproduction — Table 1: undervolting-induced "
                "instruction faults\n");
    std::printf("(methodology of Kogler et al., run against the Vmin "
                "fault model)\n\n");

    const power::DvfsCurve curve = power::i9_9900kCurve();
    faults::VminConfig vcfg;
    vcfg.curve = &curve;
    vcfg.cores = 8;
    const faults::VminModel model(vcfg);

    faults::CharacterizerConfig ccfg;
    faults::Characterizer characterizer(&model, ccfg);
    const faults::CharacterizationResult r = characterizer.run();

    util::TablePrinter t({"Instruction", "Faults (model)",
                          "Faults (paper)", "First fault (mV)"});
    for (auto kind : isa::allFaultableKinds()) {
        const auto k = static_cast<std::size_t>(kind);
        t.addRow({isa::toString(kind),
                  util::sformat("%d", r.faultCounts[k]),
                  util::sformat("%d", isa::publishedFaultCount(kind)),
                  r.firstFaultMv[k] > 0
                      ? util::sformat("-%.0f", r.firstFaultMv[k])
                      : "never"});
    }
    t.print();

    std::printf("\n%llu test executions over %d cores x %zu "
                "frequencies; %d sweeps ended in a core crash.\n",
                static_cast<unsigned long long>(r.totalExecutions),
                vcfg.cores, ccfg.freqsHz.size(), r.crashedPoints);
    std::printf("Expected shape: IMUL faults first and most often; "
                "the rare faulters (VPMAX, VPADDQ)\nonly misbehave "
                "just above the crash voltage.\n");
    return 0;
}
