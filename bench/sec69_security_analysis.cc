/**
 * @file
 * Regenerates the Sec. 6.9 security analysis as an executable
 * experiment: a Plundervolt-style undervolting attack against AES
 * and IMUL on (a) a baseline CPU and (b) a SUIT CPU, plus the
 * margin bookkeeping behind the reductionist argument.
 */

#include <cstdio>

#include "faults/attack.hh"
#include "power/pstate.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main()
{
    using namespace suit;

    std::printf("SUIT reproduction — Sec. 6.9: security analysis\n\n");

    const power::DvfsCurve curve = power::i9_9900kCurve();

    faults::VminConfig base_cfg;
    base_cfg.curve = &curve;
    base_cfg.cores = 4;
    const faults::VminModel baseline(base_cfg);

    faults::VminConfig suit_cfg = base_cfg;
    suit_cfg.hardenedImul = true; // the 4-cycle IMUL (Sec. 4.2)
    const faults::VminModel suit_chip(suit_cfg);

    std::printf("Attack campaigns (5000 victim invocations, DFA "
                "needs 4 faulty outputs):\n\n");
    util::TablePrinter t({"Target", "System", "Undervolt", "Faulty",
                          "Traps", "Key recovery"});
    for (auto target :
         {isa::FaultableKind::AESENC, isa::FaultableKind::IMUL}) {
        faults::AttackConfig cfg;
        cfg.target = target;
        cfg.undervoltMv =
            target == isa::FaultableKind::IMUL ? 115.0 : 180.0;

        const faults::AttackResult base =
            faults::attackBaseline(baseline, cfg);
        const faults::AttackResult prot =
            faults::attackWithSuit(suit_chip, cfg);

        auto row = [&](const char *sys,
                       const faults::AttackResult &r) {
            t.addRow({isa::toString(target), sys,
                      util::sformat("-%.0f mV", cfg.undervoltMv),
                      util::sformat(
                          "%llu", static_cast<unsigned long long>(
                                      r.faultyResults)),
                      util::sformat(
                          "%llu",
                          static_cast<unsigned long long>(r.traps)),
                      r.keyRecoveryFeasible ? "FEASIBLE" : "no"});
        };
        row("baseline", base);
        row("SUIT", prot);
        t.addSeparator();
    }
    t.print();

    std::printf("\nMargin bookkeeping (the reductionist argument):\n");
    const double nominal = curve.voltageAtMv(4.5e9);
    util::TablePrinter m({"Quantity", "Voltage / margin"});
    m.addRow({"Vendor operating point (4.5 GHz)",
              util::sformat("%.0f mV", nominal)});
    m.addRow({"SUIT efficient point (-97 mV)",
              util::sformat("%.0f mV", nominal - 97.0)});
    m.addRow({"Shallowest SIMD Vmin (VOR, core 0)",
              util::sformat("%.0f mV",
                            baseline.vminMv(
                                0, isa::FaultableKind::VOR, 4.5e9))});
    m.addRow({"Stock IMUL Vmin (why it must be hardened)",
              util::sformat("%.0f mV",
                            baseline.vminMv(
                                0, isa::FaultableKind::IMUL,
                                4.5e9))});
    m.addRow({"Hardened (4-cycle) IMUL Vmin",
              util::sformat("%.0f mV",
                            suit_chip.vminMv(
                                0, isa::FaultableKind::IMUL,
                                4.5e9))});
    m.print();

    std::printf(
        "\nConclusion: on the efficient curve every member of the "
        "trap set is disabled (executing one\ntraps and re-executes "
        "at the vendor-validated conservative point), the hardened "
        "IMUL's Vmin\nsits below the crash voltage, and the remaining "
        "instructions keep the exact margins the\nvendor validates "
        "today — SUIT's security reduces to the security of current "
        "CPUs.\n");
    return 0;
}
