/**
 * @file
 * Regenerates Fig. 5: a detailed view of one AES instruction burst
 * and the resulting DVFS-curve switch to conservative and back.
 * Prints the trap/switch timeline the figure plots.
 */

#include <cstdio>

#include "core/params.hh"
#include "sim/domain_sim.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"
#include "util/format.hh"

int
main()
{
    using namespace suit;

    std::printf("SUIT reproduction — Fig. 5: AES burst and DVFS "
                "curve switching (Nginx-like trace, CPU C, fV)\n\n");

    const power::CpuModel cpu = power::cpuC_xeon4208();
    const auto &profile = trace::nginxProfile();
    const trace::Trace t = trace::TraceGenerator(1).generate(profile);

    sim::SimConfig cfg;
    cfg.cpu = &cpu;
    cfg.offsetMv = -97.0;
    cfg.mode = sim::RunMode::Suit;
    cfg.strategy = core::StrategyKind::CombinedFv;
    cfg.params = core::optimalParams(cpu);
    cfg.recordStateLog = true;

    sim::DomainSimulator sim(cfg, {{&t, &profile}});
    const sim::DomainResult r = sim.run();

    // Show the timeline around the second burst (the first one
    // includes cold-start effects).
    std::printf("%-14s %-10s %s\n", "time (us)", "event", "curve");
    std::size_t traps_seen = 0;
    std::size_t start = 0;
    for (std::size_t i = 0; i < r.stateLog.size(); ++i) {
        if (r.stateLog[i].trap && ++traps_seen == 2) {
            start = i > 3 ? i - 3 : 0;
            break;
        }
    }
    const double t0 =
        util::ticksToMicroseconds(r.stateLog[start].when);
    for (std::size_t i = start;
         i < r.stateLog.size() && i < start + 14; ++i) {
        const auto &e = r.stateLog[i];
        std::printf("%-14s %-10s %s\n",
                    util::sformat("%+10.1f",
                                  util::ticksToMicroseconds(e.when) -
                                      t0)
                        .c_str(),
                    e.trap ? "#DO trap" : "switch",
                    e.trap ? "(efficient, trap raised)"
                           : power::toString(e.to));
    }

    std::printf("\nWhole run: %llu traps, %llu switches, %.1f%% of "
                "time on the efficient curve\n",
                static_cast<unsigned long long>(r.traps),
                static_cast<unsigned long long>(r.pstateSwitches),
                100.0 * r.efficientShare);

    std::printf("\nGap-size profile of the trace (the Fig. 5 y-axis; "
                "one row per decade of gap size):\n");
    const trace::TraceStats stats = trace::TraceStats::compute(t);
    std::fputs(stats.gapHistogram.render(48).c_str(), stdout);
    std::printf("\nExpected shape: a burst of back-to-back AES "
                "instructions pulls the domain to the conservative\n"
                "curve (Cf, then CV once the voltage settles); the "
                "deadline expires after the burst and the domain\n"
                "returns to the efficient curve.\n");
    return 0;
}
