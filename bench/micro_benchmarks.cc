/**
 * @file
 * google-benchmark microbenchmarks of the library's hot paths: the
 * software emulation payloads (what the OS runs on every trapped
 * instruction), trace generation, the two simulators and the
 * suit::exec parallel experiment engine.
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <vector>

#include "core/params.hh"
#include "emu/aes.hh"
#include "emu/dispatcher.hh"
#include "emu/simd_ops.hh"
#include "exec/sweep.hh"
#include "runtime/session.hh"
#include "exec/thread_pool.hh"
#include "sim/domain_sim.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"
#include "uarch/o3_model.hh"
#include "util/rng.hh"

namespace {

using namespace suit;

void
BM_EmulateVor(benchmark::State &state)
{
    util::Rng rng(1);
    const emu::Vec256 a(rng.next(), rng.next(), rng.next(), rng.next());
    const emu::Vec256 b(rng.next(), rng.next(), rng.next(), rng.next());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            emu::emulate({isa::FaultableKind::VOR, a, b, 0}));
    }
}
BENCHMARK(BM_EmulateVor);

void
BM_EmulateClmul(benchmark::State &state)
{
    util::Rng rng(2);
    const emu::Vec256 a(rng.next(), rng.next(), rng.next(), rng.next());
    const emu::Vec256 b(rng.next(), rng.next(), rng.next(), rng.next());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            emu::emulate({isa::FaultableKind::VPCLMULQDQ, a, b, 0x11}));
    }
}
BENCHMARK(BM_EmulateClmul);

void
BM_AesencReference(benchmark::State &state)
{
    emu::AesBlock s{}, k{};
    for (int i = 0; i < 16; ++i) {
        s[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(i * 17);
        k[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(i * 31 + 5);
    }
    for (auto _ : state) {
        s = emu::aesencRound(s, k);
        benchmark::DoNotOptimize(s);
    }
}
BENCHMARK(BM_AesencReference);

void
BM_AesencBitsliced(benchmark::State &state)
{
    emu::AesBlock s{}, k{};
    for (int i = 0; i < 16; ++i) {
        s[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(i * 17);
        k[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(i * 31 + 5);
    }
    for (auto _ : state) {
        s = emu::aesencRoundBitsliced(s, k);
        benchmark::DoNotOptimize(s);
    }
}
BENCHMARK(BM_AesencBitsliced);

void
BM_TraceGeneration(benchmark::State &state)
{
    const auto &profile = trace::profileByName("502.gcc");
    std::uint64_t seed = 1;
    for (auto _ : state) {
        const trace::Trace t =
            trace::TraceGenerator(seed++).generate(profile);
        benchmark::DoNotOptimize(t.eventCount());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(profile.totalInstructions));
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

void
BM_DomainSimulation(benchmark::State &state)
{
    const power::CpuModel cpu = power::cpuC_xeon4208();
    const auto &profile = trace::profileByName("502.gcc");
    const trace::Trace t = trace::TraceGenerator(3).generate(profile);

    sim::SimConfig cfg;
    cfg.cpu = &cpu;
    cfg.params = core::optimalParams(cpu);
    for (auto _ : state) {
        sim::DomainSimulator sim(cfg, {{&t, &profile}});
        benchmark::DoNotOptimize(sim.run().traps);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(t.eventCount()));
}
BENCHMARK(BM_DomainSimulation)->Unit(benchmark::kMillisecond);

/**
 * Same single-core SUIT simulation on the pre-optimization reference
 * event loop; BM_DomainSimulation / BM_DomainSimulationReference is
 * the fast path's speedup (tracked in BENCH_simcore.json).
 */
void
BM_DomainSimulationReference(benchmark::State &state)
{
    const power::CpuModel cpu = power::cpuC_xeon4208();
    const auto &profile = trace::profileByName("502.gcc");
    const trace::Trace t = trace::TraceGenerator(3).generate(profile);

    sim::SimConfig cfg;
    cfg.cpu = &cpu;
    cfg.params = core::optimalParams(cpu);
    cfg.referencePath = true;
    for (auto _ : state) {
        sim::DomainSimulator sim(cfg, {{&t, &profile}});
        benchmark::DoNotOptimize(sim.run().traps);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(t.eventCount()));
}
BENCHMARK(BM_DomainSimulationReference)->Unit(benchmark::kMillisecond);

/**
 * Event-dense workload (525.x264: the highest IMUL density in the
 * suite and a heavy faultable stream): long runs of consecutive
 * native events, i.e. the batched-window sweet spot.
 */
void
BM_DomainSimulationDense(benchmark::State &state)
{
    const power::CpuModel cpu = power::cpuC_xeon4208();
    const auto &profile = trace::profileByName("525.x264");
    const trace::Trace t = trace::TraceGenerator(5).generate(profile);

    sim::SimConfig cfg;
    cfg.cpu = &cpu;
    cfg.params = core::optimalParams(cpu);
    for (auto _ : state) {
        sim::DomainSimulator sim(cfg, {{&t, &profile}});
        benchmark::DoNotOptimize(sim.run().traps);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(t.eventCount()));
}
BENCHMARK(BM_DomainSimulationDense)->Unit(benchmark::kMillisecond);

/**
 * CPU A's shared four-core domain: the multi-core batched window
 * (SoA hot state, per-event accumulator replay, vectorizable
 * arrival scan).  Chain-bound rather than throughput-bound — each
 * event's time feeds the next through the reference FP sequence —
 * so expect a lower rate than the single-core scenarios.
 */
void
BM_DomainSimulationShared(benchmark::State &state)
{
    const power::CpuModel cpu = power::cpuA_i9_9900k();
    const auto &profile = trace::profileByName("502.gcc");
    constexpr int kStreams = 4;
    std::vector<trace::Trace> traces;
    std::uint64_t events = 0;
    for (int s = 0; s < kStreams; ++s) {
        traces.push_back(trace::TraceGenerator(3).generate(profile, s));
        events += traces.back().eventCount();
    }
    std::vector<sim::CoreWork> work;
    for (const trace::Trace &t : traces)
        work.push_back({&t, &profile});

    sim::SimConfig cfg;
    cfg.cpu = &cpu;
    cfg.params = core::optimalParams(cpu);
    for (auto _ : state) {
        sim::DomainSimulator sim(cfg, work);
        benchmark::DoNotOptimize(sim.run().traps);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(events));
}
BENCHMARK(BM_DomainSimulationShared)->Unit(benchmark::kMillisecond);

void
BM_O3ModelRate(benchmark::State &state)
{
    const uarch::Program prog = uarch::ProgramGenerator(5).generate(
        uarch::specIntLikeMix(), 100'000);
    for (auto _ : state) {
        uarch::O3Model core;
        benchmark::DoNotOptimize(core.run(prog).cycles);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(prog.insts.size()));
}
BENCHMARK(BM_O3ModelRate)->Unit(benchmark::kMillisecond);

/**
 * Per-job dispatch overhead of the thread pool: parallelFor over
 * trivial bodies, so wall time / items is queue + wakeup cost.
 */
void
BM_ThreadPoolDispatch(benchmark::State &state)
{
    exec::ThreadPool pool(static_cast<int>(state.range(0)));
    constexpr std::size_t kJobs = 1024;
    std::atomic<std::uint64_t> sink{0};
    for (auto _ : state) {
        pool.parallelFor(kJobs, [&](std::size_t i) {
            sink.fetch_add(i, std::memory_order_relaxed);
        });
    }
    benchmark::DoNotOptimize(sink.load());
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(kJobs));
}
BENCHMARK(BM_ThreadPoolDispatch)->Arg(1)->Arg(2)->Arg(4);

/**
 * SweepEngine scaling on a small real grid (3 workloads x 2 offsets
 * on CPU C).  The engine is rebuilt per worker count, but one warm-up
 * run outside the timed loop fills its trace cache, so the timed
 * region measures simulation + scheduling only — the speedup over
 * Arg(1) is the parallel efficiency on this machine.
 */
void
BM_SweepEngineScaling(benchmark::State &state)
{
    using exec::SweepJob;
    const power::CpuModel cpu = power::cpuC_xeon4208();
    const char *kWorkloads[] = {"557.xz", "538.imagick", "520.omnetpp"};

    std::vector<SweepJob> jobs;
    for (const char *name : kWorkloads) {
        for (double offset : {-70.0, -97.0}) {
            sim::EvalConfig cfg;
            cfg.cpu = &cpu;
            cfg.offsetMv = offset;
            cfg.params = core::optimalParams(cpu);
            jobs.push_back({name, cfg, &trace::profileByName(name)});
        }
    }

    runtime::Session session({static_cast<int>(state.range(0)), 0});
    exec::SweepEngine engine(session);
    benchmark::DoNotOptimize(engine.run(jobs).size()); // warm cache
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.run(jobs).size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(jobs.size()));
}
BENCHMARK(BM_SweepEngineScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
