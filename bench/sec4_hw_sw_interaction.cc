/**
 * @file
 * Demonstrates the Fig. 3 hardware-software wiring end to end at
 * cycle level on the SuitMachine (the analogue of the paper's gem5 +
 * modified-Linux setup, Sec. 6.1): MSR programming, the precise #DO
 * at dispatch, the OS strategy switching the DVFS curve, the
 * deadline timer with touch semantics, and the resulting wall-clock
 * energy balance vs a stock machine.
 */

#include <cstdio>

#include "core/params.hh"
#include "uarch/machine.hh"
#include "util/format.hh"
#include "util/table.hh"

namespace {

using namespace suit;
using namespace suit::uarch;

Program
burstyProgram(std::size_t count)
{
    ProgramMix mix = specIntLikeMix();
    mix.weights[static_cast<std::size_t>(OpClass::SimdAlu)] = 0.0;
    Program p = ProgramGenerator(21).generate(mix, count);
    // Four SIMD bursts spread over the run.
    for (std::size_t at = count / 5; at < count;
         at += count / 5) {
        for (std::size_t i = at; i < at + 60 && i < count; ++i) {
            p.insts[i].op = OpClass::SimdAlu;
            p.insts[i].faultable = isa::FaultableKind::VXOR;
        }
    }
    return p;
}

} // namespace

int
main()
{
    std::printf("SUIT reproduction — Sec. 4: hardware-software "
                "interaction on the cycle-level machine\n\n");

    const power::CpuModel cpu = power::cpuA_i9_9900k();
    SuitMachine::Config cfg;
    cfg.cpu = &cpu;
    cfg.offsetMv = -97.0;
    cfg.strategy = core::StrategyKind::CombinedFv;
    cfg.params = core::optimalParams(cpu);
    SuitMachine machine(cfg);

    const Program p = burstyProgram(20'000'000);
    const MachineResult base = machine.runBaseline(p);
    const MachineResult suit_run = machine.runSuit(p);

    std::printf("MSR state after enabling SUIT:\n");
    std::printf("  DVFS_CURVE      = %llu (efficient)\n",
                static_cast<unsigned long long>(
                    machine.msrs().read(os::MSR_SUIT_DVFS_CURVE)));
    std::printf("  DISABLE_OPCODE  = 0x%03llx (= trap set: all of "
                "Table 1 except the hardened IMUL)\n\n",
                static_cast<unsigned long long>(
                    machine.msrs().read(os::MSR_SUIT_DISABLE_OPCODE)));

    util::TablePrinter t({"Run", "IMUL", "cycles", "wall time",
                          "power", "energy", "traps", "onE"});
    auto row = [&](const char *name, const char *imul,
                   const MachineResult &r) {
        t.addRow({name, imul,
                  util::sformat("%.2fM", r.stats.cycles / 1e6),
                  util::sformat("%.2f ms", 1e3 * r.seconds),
                  util::sformat("%.3fx", r.powerFactor),
                  util::sformat("%.3fx", r.energyFactorVs(base)),
                  util::sformat("%llu", static_cast<unsigned long long>(
                                            r.stats.traps)),
                  util::sformat("%.1f%%", 100 * r.efficientShare)});
    };
    row("stock CPU", "3 cy", base);
    row("SUIT", "4 cy", suit_run);
    t.print();

    std::printf(
        "\nSequence exercised per burst: #DO at dispatch (pipeline "
        "drained, no speculative execution of the\ndisabled opcode) "
        "-> handler switches the curve via frequency, requests the "
        "voltage -> instructions\nre-enabled, burst runs natively "
        "touching the deadline timer -> timer expires -> back to the\n"
        "efficient curve.  The energy column is the end-to-end "
        "saving including the 4-cycle IMUL cost.\n");
    return 0;
}
