/**
 * @file
 * Regenerates Table 8: for how many SPEC CPU2017 benchmarks is
 * compiling without SIMD faster than running the SIMD binary under
 * SUIT's trap machinery, per CPU configuration at -97 mV.
 */

#include <cstdio>
#include <vector>

#include "core/params.hh"
#include "sim/evaluation.hh"
#include "trace/profile.hh"
#include "util/format.hh"
#include "util/table.hh"

namespace {

using namespace suit;

struct Spec
{
    const char *label;
    const power::CpuModel *cpu;
    int cores;
    core::StrategyKind strategy;
};

/** Count benchmarks where each option wins on performance. */
std::pair<int, int>
countWinners(const Spec &spec)
{
    sim::EvalConfig cfg;
    cfg.cpu = spec.cpu;
    cfg.cores = spec.cores;
    cfg.offsetMv = -97.0;
    cfg.strategy = spec.strategy;
    cfg.params = core::optimalParams(*spec.cpu);

    sim::EvalConfig nosimd = cfg;
    nosimd.mode = sim::RunMode::NoSimdCompile;

    int nosimd_wins = 0, suit_wins = 0;
    for (const auto &p : trace::specProfiles()) {
        const double perf_suit =
            sim::runWorkload(cfg, p).perfDelta();
        const double perf_nosimd =
            sim::runWorkload(nosimd, p).perfDelta();
        if (perf_nosimd > perf_suit)
            ++nosimd_wins;
        else
            ++suit_wins;
    }
    return {nosimd_wins, suit_wins};
}

} // namespace

int
main()
{
    std::printf("SUIT reproduction — Table 8: no-SIMD compilation vs "
                "SUIT traps (-97 mV, 23 SPEC benchmarks)\n\n");

    const power::CpuModel cpu_a = power::cpuA_i9_9900k();
    const power::CpuModel cpu_b = power::cpuB_ryzen7700x();
    const power::CpuModel cpu_c = power::cpuC_xeon4208();

    const Spec specs[] = {
        {"A1 fV", &cpu_a, 1, core::StrategyKind::CombinedFv},
        {"A4 fV", &cpu_a, 4, core::StrategyKind::CombinedFv},
        {"Ainf e", &cpu_a, 1, core::StrategyKind::Emulation},
        {"Binf f", &cpu_b, 1, core::StrategyKind::Frequency},
        {"Binf e", &cpu_b, 1, core::StrategyKind::Emulation},
        {"Cinf fV", &cpu_c, 1, core::StrategyKind::CombinedFv},
    };

    util::TablePrinter t({"Config", "No SIMD wins", "SUIT wins"});
    for (const Spec &spec : specs) {
        const auto [nosimd, suit_w] = countWinners(spec);
        t.addRow({spec.label, util::sformat("%d", nosimd),
                  util::sformat("%d", suit_w)});
    }
    t.print();

    std::printf("\nWorst case for recompilation (paper: 508.namd "
                "loses ~20 pp when compiled without SIMD):\n");
    {
        sim::EvalConfig cfg;
        cfg.cpu = &cpu_c;
        cfg.offsetMv = -97.0;
        cfg.params = core::optimalParams(cpu_c);
        sim::EvalConfig nosimd = cfg;
        nosimd.mode = sim::RunMode::NoSimdCompile;
        const auto &namd = trace::profileByName("508.namd");
        std::printf("  508.namd on C: SUIT eff %+.1f%%, no-SIMD eff "
                    "%+.1f%%\n",
                    100 * sim::runWorkload(cfg, namd).efficiencyDelta(),
                    100 * sim::runWorkload(nosimd, namd)
                              .efficiencyDelta());
    }

    std::printf("\nPaper reference: no-SIMD wins 15/21/23/21/23/16 of "
                "23 for A1/A4/Ainf-e/Binf-f/Binf-e/Cinf;\nrecompiling "
                "helps most benchmarks, but hurts SIMD-heavy ones "
                "badly, and emulation never beats it.\n");
    return 0;
}
