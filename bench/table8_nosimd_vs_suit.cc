/**
 * @file
 * Regenerates Table 8: for how many SPEC CPU2017 benchmarks is
 * compiling without SIMD faster than running the SIMD binary under
 * SUIT's trap machinery, per CPU configuration at -97 mV.
 *
 * All (configuration x benchmark x {SUIT, no-SIMD}) cells run as one
 * parallel batch on the suit::exec SweepEngine; the win counters are
 * tallied from the deterministic result order.
 */

#include <cstdio>
#include <utility>
#include <vector>

#include "core/params.hh"
#include "exec/sweep.hh"
#include "runtime/session.hh"
#include "sim/evaluation.hh"
#include "trace/profile.hh"
#include "util/args.hh"
#include "util/format.hh"
#include "util/table.hh"

namespace {

using namespace suit;
using exec::SweepEngine;
using exec::SweepJob;
using sim::DomainResult;

struct Spec
{
    const char *label;
    const power::CpuModel *cpu;
    int cores;
    core::StrategyKind strategy;
};

} // namespace

int
main(int argc, char **argv)
{
    util::ArgParser args("table8_nosimd_vs_suit",
                         "regenerate Table 8 (paper Sec. 6.7)");
    args.addOption("jobs", "0",
                   "parallel sweep workers (0 = hardware threads, "
                   "1 = serial reference)");
    if (!args.parse(argc, argv))
        return 0;

    std::printf("SUIT reproduction — Table 8: no-SIMD compilation vs "
                "SUIT traps (-97 mV, 23 SPEC benchmarks)\n\n");

    const power::CpuModel cpu_a = power::cpuA_i9_9900k();
    const power::CpuModel cpu_b = power::cpuB_ryzen7700x();
    const power::CpuModel cpu_c = power::cpuC_xeon4208();

    const Spec specs[] = {
        {"A1 fV", &cpu_a, 1, core::StrategyKind::CombinedFv},
        {"A4 fV", &cpu_a, 4, core::StrategyKind::CombinedFv},
        {"Ainf e", &cpu_a, 1, core::StrategyKind::Emulation},
        {"Binf f", &cpu_b, 1, core::StrategyKind::Frequency},
        {"Binf e", &cpu_b, 1, core::StrategyKind::Emulation},
        {"Cinf fV", &cpu_c, 1, core::StrategyKind::CombinedFv},
    };

    const auto profiles = trace::specProfiles();

    // Job order: spec-major, per benchmark the SUIT cell then the
    // no-SIMD cell, finally the two 508.namd worst-case cells.
    std::vector<SweepJob> jobs;
    for (const Spec &spec : specs) {
        sim::EvalConfig cfg;
        cfg.cpu = spec.cpu;
        cfg.cores = spec.cores;
        cfg.offsetMv = -97.0;
        cfg.strategy = spec.strategy;
        cfg.params = core::optimalParams(*spec.cpu);

        sim::EvalConfig nosimd = cfg;
        nosimd.mode = sim::RunMode::NoSimdCompile;

        for (const auto &p : profiles) {
            jobs.push_back({spec.label, cfg, &p});
            jobs.push_back({spec.label, nosimd, &p});
        }
    }

    const auto &namd = trace::profileByName("508.namd");
    const std::size_t namd_begin = jobs.size();
    {
        sim::EvalConfig cfg;
        cfg.cpu = &cpu_c;
        cfg.offsetMv = -97.0;
        cfg.params = core::optimalParams(cpu_c);
        sim::EvalConfig nosimd = cfg;
        nosimd.mode = sim::RunMode::NoSimdCompile;
        jobs.push_back({"namd suit", cfg, &namd});
        jobs.push_back({"namd nosimd", nosimd, &namd});
    }

    runtime::Session session(
        {static_cast<int>(args.getInt("jobs")), 0});
    SweepEngine engine(session);
    const std::vector<DomainResult> results = engine.run(jobs);

    util::TablePrinter t({"Config", "No SIMD wins", "SUIT wins"});
    for (std::size_t s = 0; s < std::size(specs); ++s) {
        const std::size_t begin = s * 2 * profiles.size();
        int nosimd_wins = 0, suit_wins = 0;
        for (std::size_t p = 0; p < profiles.size(); ++p) {
            const double perf_suit =
                results[begin + 2 * p].perfDelta();
            const double perf_nosimd =
                results[begin + 2 * p + 1].perfDelta();
            if (perf_nosimd > perf_suit)
                ++nosimd_wins;
            else
                ++suit_wins;
        }
        t.addRow({specs[s].label, util::sformat("%d", nosimd_wins),
                  util::sformat("%d", suit_wins)});
    }
    t.print();

    std::printf("\nWorst case for recompilation (paper: 508.namd "
                "loses ~20 pp when compiled without SIMD):\n");
    std::printf("  508.namd on C: SUIT eff %+.1f%%, no-SIMD eff "
                "%+.1f%%\n",
                100 * results[namd_begin].efficiencyDelta(),
                100 * results[namd_begin + 1].efficiencyDelta());

    std::printf("\nPaper reference: no-SIMD wins 15/21/23/21/23/16 of "
                "23 for A1/A4/Ainf-e/Binf-f/Binf-e/Cinf;\nrecompiling "
                "helps most benchmarks, but hurts SIMD-heavy ones "
                "badly, and emulation never beats it.\n");
    std::printf("\nSweep execution (%d worker%s, %zu jobs):\n%s",
                engine.jobs(), engine.jobs() == 1 ? "" : "s",
                jobs.size(), engine.workerFooter().c_str());
    return 0;
}
