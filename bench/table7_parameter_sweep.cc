/**
 * @file
 * Regenerates Table 7: the optimal operating-strategy parameters
 * (deadline p_dl, thrash window p_ts, exception count p_ec, deadline
 * factor p_df), found by sweeping each parameter around the paper's
 * optimum on a representative workload subset, plus the Sec. 6.4
 * sensitivity observation (+-10 us around the deadline moves the
 * efficiency by well under a percent).
 */

#include <cstdio>
#include <vector>

#include "core/params.hh"
#include "sim/evaluation.hh"
#include "trace/profile.hh"
#include "util/format.hh"
#include "util/table.hh"

namespace {

using namespace suit;

/** Mean efficiency over a representative workload subset. */
double
meanEff(const power::CpuModel &cpu, const core::StrategyParams &params,
        core::StrategyKind strategy)
{
    static const char *kSubset[] = {"557.xz", "538.imagick", "502.gcc",
                                    "503.bwaves", "520.omnetpp",
                                    "Nginx"};
    sim::EvalConfig cfg;
    cfg.cpu = &cpu;
    cfg.offsetMv = -97.0;
    cfg.strategy = strategy;
    cfg.params = params;
    double sum = 0.0;
    for (const char *name : kSubset)
        sum += sim::runWorkload(cfg, trace::profileByName(name))
                   .efficiencyDelta();
    return sum / std::size(kSubset);
}

} // namespace

int
main()
{
    std::printf("SUIT reproduction — Table 7: optimal fV-strategy "
                "parameters\n\n");

    const power::CpuModel cpu_c = power::cpuC_xeon4208();
    const power::CpuModel cpu_b = power::cpuB_ryzen7700x();

    util::TablePrinter t({"CPU", "p_dl", "p_ts", "p_ec", "p_df"});
    const core::StrategyParams fast = core::fastSwitchParams();
    const core::StrategyParams slow = core::slowSwitchParams();
    t.addRow({"A & C", util::sformat("%.0f us", fast.deadlineUs),
              util::sformat("%.0f us", fast.timeSpanUs),
              util::sformat("%d", fast.maxExceptionCount),
              util::sformat("%.0f", fast.deadlineFactor)});
    t.addRow({"B", util::sformat("%.0f us", slow.deadlineUs),
              util::sformat("%.0f ms", slow.timeSpanUs / 1000.0),
              util::sformat("%d", slow.maxExceptionCount),
              util::sformat("%.0f", slow.deadlineFactor)});
    t.print();

    std::printf("\nDeadline sweep on CPU C (fV, -97 mV, mean "
                "efficiency over a 6-workload subset):\n");
    util::TablePrinter sweep({"p_dl", "mean eff", "vs optimum"});
    const double base = meanEff(cpu_c, fast, core::StrategyKind::CombinedFv);
    for (double dl : {10.0, 20.0, 30.0, 40.0, 60.0, 120.0}) {
        core::StrategyParams p = fast;
        p.deadlineUs = dl;
        const double eff =
            meanEff(cpu_c, p, core::StrategyKind::CombinedFv);
        sweep.addRow({util::sformat("%.0f us%s", dl,
                                    dl == 30.0 ? " (Table 7)" : ""),
                      util::sformat("%+.2f%%", 100 * eff),
                      util::sformat("%+.2f pp", 100 * (eff - base))});
    }
    sweep.print();

    std::printf("\nDeadline-factor sweep on CPU C:\n");
    util::TablePrinter sweep2({"p_df", "mean eff"});
    for (double df : {1.0, 4.0, 9.0, 14.0, 20.0}) {
        core::StrategyParams p = fast;
        p.deadlineFactor = df;
        sweep2.addRow(
            {util::sformat("%.0f%s", df, df == 14.0 ? " (Table 7)" : ""),
             util::sformat("%+.2f%%",
                           100 * meanEff(cpu_c, p,
                                         core::StrategyKind::CombinedFv))});
    }
    sweep2.print();

    std::printf("\nDeadline sweep on CPU B (f strategy, 668 us "
                "switches need a much longer deadline):\n");
    util::TablePrinter sweep3({"p_dl", "mean eff"});
    for (double dl : {30.0, 200.0, 700.0, 1500.0}) {
        core::StrategyParams p = core::slowSwitchParams();
        p.deadlineUs = dl;
        sweep3.addRow(
            {util::sformat("%.0f us%s", dl,
                           dl == 700.0 ? " (Table 7)" : ""),
             util::sformat("%+.2f%%",
                           100 * meanEff(cpu_b, p,
                                         core::StrategyKind::Frequency))});
    }
    sweep3.print();

    std::printf("\nPaper reference (Sec. 6.4): the optimum is flat — "
                "varying the deadline +-10 us changes the mean\n"
                "efficiency by only ~0.6 pp, so one parameter set "
                "works across workloads.\n");
    return 0;
}
