/**
 * @file
 * Regenerates Table 7: the optimal operating-strategy parameters
 * (deadline p_dl, thrash window p_ts, exception count p_ec, deadline
 * factor p_df), found by sweeping each parameter around the paper's
 * optimum on a representative workload subset, plus the Sec. 6.4
 * sensitivity observation (+-10 us around the deadline moves the
 * efficiency by well under a percent).
 *
 * All three parameter sweeps are flattened into one job list on the
 * suit::exec SweepEngine: (sweep point x 6 workloads) cells execute
 * in parallel and are averaged back per point in deterministic
 * order.
 */

#include <cstdio>
#include <iterator>
#include <vector>

#include "core/params.hh"
#include "exec/sweep.hh"
#include "runtime/session.hh"
#include "sim/evaluation.hh"
#include "trace/profile.hh"
#include "util/args.hh"
#include "util/format.hh"
#include "util/table.hh"

namespace {

using namespace suit;
using exec::SweepEngine;
using exec::SweepJob;
using sim::DomainResult;

/** Representative workload subset of the paper's sweep. */
const char *kSubset[] = {"557.xz", "538.imagick", "502.gcc",
                         "503.bwaves", "520.omnetpp", "Nginx"};

/** One sweep point: a full strategy configuration to average. */
struct SweepPoint
{
    const power::CpuModel *cpu;
    core::StrategyParams params;
    core::StrategyKind strategy;
};

/** Append one job per subset workload for @p point. */
void
appendPoint(std::vector<SweepJob> &jobs, const SweepPoint &point)
{
    sim::EvalConfig cfg;
    cfg.cpu = point.cpu;
    cfg.offsetMv = -97.0;
    cfg.strategy = point.strategy;
    cfg.params = point.params;
    for (const char *name : kSubset)
        jobs.push_back({name, cfg, &trace::profileByName(name)});
}

/** Mean efficiency of point @p index over its subset slice. */
double
meanEff(const std::vector<DomainResult> &results, std::size_t index)
{
    double sum = 0.0;
    for (std::size_t w = 0; w < std::size(kSubset); ++w)
        sum += results[index * std::size(kSubset) + w]
                   .efficiencyDelta();
    return sum / static_cast<double>(std::size(kSubset));
}

} // namespace

int
main(int argc, char **argv)
{
    util::ArgParser args("table7_parameter_sweep",
                         "regenerate Table 7 (paper Sec. 6.4)");
    args.addOption("jobs", "0",
                   "parallel sweep workers (0 = hardware threads, "
                   "1 = serial reference)");
    if (!args.parse(argc, argv))
        return 0;

    std::printf("SUIT reproduction — Table 7: optimal fV-strategy "
                "parameters\n\n");

    const power::CpuModel cpu_c = power::cpuC_xeon4208();
    const power::CpuModel cpu_b = power::cpuB_ryzen7700x();

    util::TablePrinter t({"CPU", "p_dl", "p_ts", "p_ec", "p_df"});
    const core::StrategyParams fast = core::fastSwitchParams();
    const core::StrategyParams slow = core::slowSwitchParams();
    t.addRow({"A & C", util::sformat("%.0f us", fast.deadlineUs),
              util::sformat("%.0f us", fast.timeSpanUs),
              util::sformat("%d", fast.maxExceptionCount),
              util::sformat("%.0f", fast.deadlineFactor)});
    t.addRow({"B", util::sformat("%.0f us", slow.deadlineUs),
              util::sformat("%.0f ms", slow.timeSpanUs / 1000.0),
              util::sformat("%d", slow.maxExceptionCount),
              util::sformat("%.0f", slow.deadlineFactor)});
    t.print();

    // Enumerate every sweep point, then execute all (point x
    // workload) cells in one parallel batch.
    const double kDeadlines[] = {10.0, 20.0, 30.0, 40.0, 60.0, 120.0};
    const double kFactors[] = {1.0, 4.0, 9.0, 14.0, 20.0};
    const double kDeadlinesB[] = {30.0, 200.0, 700.0, 1500.0};

    std::vector<SweepPoint> points;
    points.push_back({&cpu_c, fast, core::StrategyKind::CombinedFv});
    const std::size_t dl_begin = points.size();
    for (double dl : kDeadlines) {
        core::StrategyParams p = fast;
        p.deadlineUs = dl;
        points.push_back({&cpu_c, p, core::StrategyKind::CombinedFv});
    }
    const std::size_t df_begin = points.size();
    for (double df : kFactors) {
        core::StrategyParams p = fast;
        p.deadlineFactor = df;
        points.push_back({&cpu_c, p, core::StrategyKind::CombinedFv});
    }
    const std::size_t dlb_begin = points.size();
    for (double dl : kDeadlinesB) {
        core::StrategyParams p = slow;
        p.deadlineUs = dl;
        points.push_back({&cpu_b, p, core::StrategyKind::Frequency});
    }

    std::vector<SweepJob> jobs;
    jobs.reserve(points.size() * std::size(kSubset));
    for (const SweepPoint &point : points)
        appendPoint(jobs, point);

    runtime::Session session(
        {static_cast<int>(args.getInt("jobs")), 0});
    SweepEngine engine(session);
    const std::vector<DomainResult> results = engine.run(jobs);

    std::printf("\nDeadline sweep on CPU C (fV, -97 mV, mean "
                "efficiency over a 6-workload subset):\n");
    util::TablePrinter sweep({"p_dl", "mean eff", "vs optimum"});
    const double base = meanEff(results, 0);
    for (std::size_t i = 0; i < std::size(kDeadlines); ++i) {
        const double dl = kDeadlines[i];
        const double eff = meanEff(results, dl_begin + i);
        sweep.addRow({util::sformat("%.0f us%s", dl,
                                    dl == 30.0 ? " (Table 7)" : ""),
                      util::sformat("%+.2f%%", 100 * eff),
                      util::sformat("%+.2f pp", 100 * (eff - base))});
    }
    sweep.print();

    std::printf("\nDeadline-factor sweep on CPU C:\n");
    util::TablePrinter sweep2({"p_df", "mean eff"});
    for (std::size_t i = 0; i < std::size(kFactors); ++i) {
        const double df = kFactors[i];
        sweep2.addRow(
            {util::sformat("%.0f%s", df, df == 14.0 ? " (Table 7)" : ""),
             util::sformat("%+.2f%%",
                           100 * meanEff(results, df_begin + i))});
    }
    sweep2.print();

    std::printf("\nDeadline sweep on CPU B (f strategy, 668 us "
                "switches need a much longer deadline):\n");
    util::TablePrinter sweep3({"p_dl", "mean eff"});
    for (std::size_t i = 0; i < std::size(kDeadlinesB); ++i) {
        const double dl = kDeadlinesB[i];
        sweep3.addRow(
            {util::sformat("%.0f us%s", dl,
                           dl == 700.0 ? " (Table 7)" : ""),
             util::sformat("%+.2f%%",
                           100 * meanEff(results, dlb_begin + i))});
    }
    sweep3.print();

    std::printf("\nPaper reference (Sec. 6.4): the optimum is flat — "
                "varying the deadline +-10 us changes the mean\n"
                "efficiency by only ~0.6 pp, so one parameter set "
                "works across workloads.\n");
    std::printf("\nSweep execution (%d worker%s, %zu jobs):\n%s",
                engine.jobs(), engine.jobs() == 1 ? "" : "s",
                jobs.size(), engine.workerFooter().c_str());
    return 0;
}
