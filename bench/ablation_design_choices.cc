/**
 * @file
 * Ablation studies of SUIT's design choices (beyond the paper's
 * tables, but each grounded in a claim the paper makes):
 *
 *  A. Operating strategies side by side, including the Sec. 6.8
 *     "dynamic" hybrid (emulate isolated traps, switch on bursts).
 *  B. Thrashing prevention on/off (Sec. 4.3: without the stretched
 *     deadline, gaps just above p_dl cause constant curve bouncing).
 *  C. Static IMUL hardening vs trapping IMUL (Sec. 4.2: IMUL recurs
 *     every ~560 instructions in IMUL-heavy code, so trapping it
 *     would pin the CPU to the conservative curve forever).
 */

#include <cstdio>
#include <vector>

#include "core/params.hh"
#include "sim/evaluation.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"
#include "util/format.hh"
#include "util/table.hh"

namespace {

using namespace suit;

void
strategyAblation()
{
    std::printf("A. Operating strategies (CPU C, -97 mV, efficiency "
                "delta)\n\n");
    const power::CpuModel cpu = power::cpuC_xeon4208();

    util::TablePrinter t({"Workload", "e", "f", "fV", "e+fV (hybrid)"});
    for (const char *name :
         {"557.xz", "538.imagick", "502.gcc", "527.cam4",
          "520.omnetpp", "Nginx"}) {
        std::vector<std::string> row = {name};
        for (core::StrategyKind strategy :
             {core::StrategyKind::Emulation,
              core::StrategyKind::Frequency,
              core::StrategyKind::CombinedFv,
              core::StrategyKind::Hybrid}) {
            sim::EvalConfig cfg;
            cfg.cpu = &cpu;
            cfg.offsetMv = -97.0;
            cfg.strategy = strategy;
            cfg.params = core::optimalParams(cpu);
            const auto r =
                sim::runWorkload(cfg, trace::profileByName(name));
            row.push_back(
                util::sformat("%+.1f%%", 100 * r.efficiencyDelta()));
        }
        t.addRow(row);
    }
    t.print();
    std::printf("\nThe hybrid tracks fV on bursty workloads and "
                "emulation-friendly behaviour on sparse ones —\nthe "
                "dynamic policy Sec. 6.8 proposes.\n\n");
}

void
thrashAblation()
{
    std::printf("B. Thrashing prevention (fV on CPU C, -97 mV)\n\n");
    const power::CpuModel cpu = power::cpuC_xeon4208();

    util::TablePrinter t({"Workload", "Metric", "p_df = 1 (off)",
                          "p_df = 14 (Table 7)"});
    for (const char *name : {"502.gcc", "527.cam4", "520.omnetpp"}) {
        sim::DomainResult results[2];
        int idx = 0;
        for (double df : {1.0, 14.0}) {
            sim::EvalConfig cfg;
            cfg.cpu = &cpu;
            cfg.offsetMv = -97.0;
            cfg.params = core::optimalParams(cpu);
            cfg.params.deadlineFactor = df;
            results[idx++] =
                sim::runWorkload(cfg, trace::profileByName(name));
        }
        t.addRow({name, "eff",
                  util::sformat("%+.2f%%",
                                100 * results[0].efficiencyDelta()),
                  util::sformat("%+.2f%%",
                                100 * results[1].efficiencyDelta())});
        t.addRow({"", "perf",
                  util::sformat("%+.2f%%",
                                100 * results[0].perfDelta()),
                  util::sformat("%+.2f%%",
                                100 * results[1].perfDelta())});
        t.addRow({"", "switches",
                  util::sformat("%llu",
                                static_cast<unsigned long long>(
                                    results[0].pstateSwitches)),
                  util::sformat("%llu",
                                static_cast<unsigned long long>(
                                    results[1].pstateSwitches))});
        t.addSeparator();
    }
    t.print();
    std::printf("\nWithout the stretched deadline the simulator "
                "bounces between curves (more switches, more\nstall "
                "time) exactly as Sec. 4.3 warns.\n\n");
}

void
imulAblation()
{
    std::printf("C. IMUL: static hardening vs trapping (x264-like "
                "workload, CPU C, -97 mV)\n\n");
    const power::CpuModel cpu = power::cpuC_xeon4208();
    const core::StrategyParams params = core::optimalParams(cpu);

    // (1) SUIT as designed: IMUL hardened (its latency overhead is
    // folded into the rate), only the SIMD set traps.
    sim::EvalConfig cfg;
    cfg.cpu = &cpu;
    cfg.offsetMv = -97.0;
    cfg.params = params;
    const auto hardened =
        sim::runWorkload(cfg, trace::profileByName("525.x264"));

    // (2) Counterfactual: a 3-cycle IMUL stays faultable and joins
    // the trap set.  In x264 IMUL recurs about every 560
    // instructions — model it as a continuous event stream.
    trace::WorkloadProfile trapping =
        trace::profileByName("525.x264");
    trapping.name = "525.x264 (IMUL trapped)";
    trapping.imulFraction = 0.0; // no hardening, no latency overhead
    trapping.bursts.meanBurstEvents = 1e9; // one endless burst
    trapping.bursts.meanWithinBurstGap = 560.0 * 10.0; // thinned 10:1
    trapping.eventWeight = 10.0;
    trapping.kindMix = {};
    trapping.kindMix[static_cast<std::size_t>(
        isa::FaultableKind::IMUL)] = 1.0;
    const auto trapped = sim::runWorkload(cfg, trapping);

    util::TablePrinter t({"Design", "Perf", "Power", "Eff", "onE",
                          "traps"});
    auto row = [&](const char *label, const sim::DomainResult &r) {
        t.addRow({label, util::sformat("%+.2f%%", 100 * r.perfDelta()),
                  util::sformat("%+.2f%%", 100 * r.powerDelta()),
                  util::sformat("%+.2f%%", 100 * r.efficiencyDelta()),
                  util::sformat("%.1f%%", 100 * r.efficientShare),
                  util::sformat("%llu", static_cast<unsigned long long>(
                                            r.traps))});
    };
    row("4-cycle IMUL (SUIT)", hardened);
    row("3-cycle IMUL, trapped", trapped);
    t.print();

    std::printf("\nTrapping IMUL pins the domain to the conservative "
                "curve (Sec. 4.2: \"SUIT would permanently\nrun on "
                "the conservative DVFS curve, preventing any "
                "potential efficiency gain\"); the one-cycle\nlatency "
                "increase costs ~%.1f%% instead.\n",
                100 * trace::imulLatencyOverhead(0.0099));
}

} // namespace

int
main()
{
    std::printf("SUIT reproduction — ablation of design choices\n\n");
    strategyAblation();
    thrashAblation();
    imulAblation();
    return 0;
}
