/**
 * @file
 * Ablation studies of SUIT's design choices (beyond the paper's
 * tables, but each grounded in a claim the paper makes):
 *
 *  A. Operating strategies side by side, including the Sec. 6.8
 *     "dynamic" hybrid (emulate isolated traps, switch on bursts).
 *  B. Thrashing prevention on/off (Sec. 4.3: without the stretched
 *     deadline, gaps just above p_dl cause constant curve bouncing).
 *  C. Static IMUL hardening vs trapping IMUL (Sec. 4.2: IMUL recurs
 *     every ~560 instructions in IMUL-heavy code, so trapping it
 *     would pin the CPU to the conservative curve forever).
 *
 * All three sections share one suit::exec SweepEngine; each section
 * batches its grid and reads results back in deterministic order.
 */

#include <cstdio>
#include <iterator>
#include <vector>

#include "core/params.hh"
#include "exec/sweep.hh"
#include "runtime/session.hh"
#include "sim/evaluation.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"
#include "util/args.hh"
#include "util/format.hh"
#include "util/table.hh"

namespace {

using namespace suit;
using exec::SweepEngine;
using exec::SweepJob;
using sim::DomainResult;

void
strategyAblation(SweepEngine &engine)
{
    std::printf("A. Operating strategies (CPU C, -97 mV, efficiency "
                "delta)\n\n");
    const power::CpuModel cpu = power::cpuC_xeon4208();

    const char *kWorkloads[] = {"557.xz", "538.imagick", "502.gcc",
                                "527.cam4", "520.omnetpp", "Nginx"};
    const core::StrategyKind kStrategies[] = {
        core::StrategyKind::Emulation, core::StrategyKind::Frequency,
        core::StrategyKind::CombinedFv, core::StrategyKind::Hybrid};

    std::vector<SweepJob> jobs;
    for (const char *name : kWorkloads) {
        for (core::StrategyKind strategy : kStrategies) {
            sim::EvalConfig cfg;
            cfg.cpu = &cpu;
            cfg.offsetMv = -97.0;
            cfg.strategy = strategy;
            cfg.params = core::optimalParams(cpu);
            jobs.push_back({name, cfg, &trace::profileByName(name)});
        }
    }
    const std::vector<DomainResult> results = engine.run(jobs);

    util::TablePrinter t({"Workload", "e", "f", "fV", "e+fV (hybrid)"});
    for (std::size_t w = 0; w < std::size(kWorkloads); ++w) {
        std::vector<std::string> row = {kWorkloads[w]};
        for (std::size_t s = 0; s < std::size(kStrategies); ++s) {
            const DomainResult &r =
                results[w * std::size(kStrategies) + s];
            row.push_back(
                util::sformat("%+.1f%%", 100 * r.efficiencyDelta()));
        }
        t.addRow(row);
    }
    t.print();
    std::printf("\nThe hybrid tracks fV on bursty workloads and "
                "emulation-friendly behaviour on sparse ones —\nthe "
                "dynamic policy Sec. 6.8 proposes.\n\n");
}

void
thrashAblation(SweepEngine &engine)
{
    std::printf("B. Thrashing prevention (fV on CPU C, -97 mV)\n\n");
    const power::CpuModel cpu = power::cpuC_xeon4208();

    const char *kWorkloads[] = {"502.gcc", "527.cam4", "520.omnetpp"};
    const double kFactors[] = {1.0, 14.0};

    std::vector<SweepJob> jobs;
    for (const char *name : kWorkloads) {
        for (double df : kFactors) {
            sim::EvalConfig cfg;
            cfg.cpu = &cpu;
            cfg.offsetMv = -97.0;
            cfg.params = core::optimalParams(cpu);
            cfg.params.deadlineFactor = df;
            jobs.push_back({name, cfg, &trace::profileByName(name)});
        }
    }
    const std::vector<DomainResult> all = engine.run(jobs);

    util::TablePrinter t({"Workload", "Metric", "p_df = 1 (off)",
                          "p_df = 14 (Table 7)"});
    for (std::size_t w = 0; w < std::size(kWorkloads); ++w) {
        const DomainResult *results = &all[w * std::size(kFactors)];
        t.addRow({kWorkloads[w], "eff",
                  util::sformat("%+.2f%%",
                                100 * results[0].efficiencyDelta()),
                  util::sformat("%+.2f%%",
                                100 * results[1].efficiencyDelta())});
        t.addRow({"", "perf",
                  util::sformat("%+.2f%%",
                                100 * results[0].perfDelta()),
                  util::sformat("%+.2f%%",
                                100 * results[1].perfDelta())});
        t.addRow({"", "switches",
                  util::sformat("%llu",
                                static_cast<unsigned long long>(
                                    results[0].pstateSwitches)),
                  util::sformat("%llu",
                                static_cast<unsigned long long>(
                                    results[1].pstateSwitches))});
        t.addSeparator();
    }
    t.print();
    std::printf("\nWithout the stretched deadline the simulator "
                "bounces between curves (more switches, more\nstall "
                "time) exactly as Sec. 4.3 warns.\n\n");
}

void
imulAblation(SweepEngine &engine)
{
    std::printf("C. IMUL: static hardening vs trapping (x264-like "
                "workload, CPU C, -97 mV)\n\n");
    const power::CpuModel cpu = power::cpuC_xeon4208();
    const core::StrategyParams params = core::optimalParams(cpu);

    sim::EvalConfig cfg;
    cfg.cpu = &cpu;
    cfg.offsetMv = -97.0;
    cfg.params = params;

    // (1) SUIT as designed: IMUL hardened (its latency overhead is
    // folded into the rate), only the SIMD set traps.
    // (2) Counterfactual: a 3-cycle IMUL stays faultable and joins
    // the trap set.  In x264 IMUL recurs about every 560
    // instructions — model it as a continuous event stream.
    trace::WorkloadProfile trapping =
        trace::profileByName("525.x264");
    trapping.name = "525.x264 (IMUL trapped)";
    trapping.imulFraction = 0.0; // no hardening, no latency overhead
    trapping.bursts.meanBurstEvents = 1e9; // one endless burst
    trapping.bursts.meanWithinBurstGap = 560.0 * 10.0; // thinned 10:1
    trapping.eventWeight = 10.0;
    trapping.kindMix = {};
    trapping.kindMix[static_cast<std::size_t>(
        isa::FaultableKind::IMUL)] = 1.0;

    const std::vector<DomainResult> results = engine.run(
        {{"hardened", cfg, &trace::profileByName("525.x264")},
         {"trapped", cfg, &trapping}});

    util::TablePrinter t({"Design", "Perf", "Power", "Eff", "onE",
                          "traps"});
    auto row = [&](const char *label, const DomainResult &r) {
        t.addRow({label, util::sformat("%+.2f%%", 100 * r.perfDelta()),
                  util::sformat("%+.2f%%", 100 * r.powerDelta()),
                  util::sformat("%+.2f%%", 100 * r.efficiencyDelta()),
                  util::sformat("%.1f%%", 100 * r.efficientShare),
                  util::sformat("%llu", static_cast<unsigned long long>(
                                            r.traps))});
    };
    row("4-cycle IMUL (SUIT)", results[0]);
    row("3-cycle IMUL, trapped", results[1]);
    t.print();

    std::printf("\nTrapping IMUL pins the domain to the conservative "
                "curve (Sec. 4.2: \"SUIT would permanently\nrun on "
                "the conservative DVFS curve, preventing any "
                "potential efficiency gain\"); the one-cycle\nlatency "
                "increase costs ~%.1f%% instead.\n",
                100 * trace::imulLatencyOverhead(0.0099));
}

} // namespace

int
main(int argc, char **argv)
{
    util::ArgParser args("ablation_design_choices",
                         "ablation studies of SUIT design choices");
    args.addOption("jobs", "0",
                   "parallel sweep workers (0 = hardware threads, "
                   "1 = serial reference)");
    if (!args.parse(argc, argv))
        return 0;

    std::printf("SUIT reproduction — ablation of design choices\n\n");
    runtime::Session session(
        {static_cast<int>(args.getInt("jobs")), 0});
    exec::SweepEngine engine(session);
    strategyAblation(engine);
    thrashAblation(engine);
    imulAblation(engine);
    std::printf("\nSweep execution (%d worker%s):\n%s", engine.jobs(),
                engine.jobs() == 1 ? "" : "s",
                engine.workerFooter().c_str());
    return 0;
}
