/**
 * @file
 * Ablation: SUIT-aware task placement on shared-domain CPUs
 * (paper Sec. 7: scheduling "in conjunction with SUIT to minimize
 * DVFS curve changes").
 *
 * Two sockets of CPU A (one shared DVFS domain each, 4 cores used),
 * eight tasks: four quiet, four bursty.  Round-robin placement mixes
 * them — every domain is dragged off the efficient curve by its
 * bursty tenants.  The SUIT-aware placement segregates them: the
 * quiet socket stays efficient, the bursty socket parks conservative
 * where it belongs.
 *
 * Sockets are independent domains, so each placement's sockets run
 * as parallel jobs on a suit::exec ThreadPool; per-socket results
 * land in socket-indexed slots and are aggregated in socket order,
 * keeping the output identical for any worker count.
 */

#include <cstdio>
#include <vector>

#include "core/params.hh"
#include "core/scheduler.hh"
#include "exec/thread_pool.hh"
#include "sim/domain_sim.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"
#include "util/args.hh"
#include "util/format.hh"
#include "util/table.hh"

namespace {

using namespace suit;

struct FleetResult
{
    double perf = 0.0;  //!< mean perf delta over tasks
    double power = 0.0; //!< mean power factor over sockets
    double eff = 0.0;
    std::vector<double> socketShareE;
};

FleetResult
runPlacement(const core::Placement &placement,
             const std::vector<const trace::WorkloadProfile *> &tasks,
             const power::CpuModel &cpu, exec::ThreadPool &pool)
{
    const trace::TraceGenerator gen(17);

    // Non-empty sockets, each one an independent DVFS domain job.
    std::vector<const std::vector<std::size_t> *> sockets;
    for (const auto &socket : placement) {
        if (!socket.empty())
            sockets.push_back(&socket);
    }

    std::vector<sim::DomainResult> socket_results(sockets.size());
    pool.parallelFor(sockets.size(), [&](std::size_t s) {
        const std::vector<std::size_t> &socket = *sockets[s];
        std::vector<trace::Trace> traces;
        traces.reserve(socket.size());
        for (std::size_t idx : socket)
            traces.push_back(gen.generate(
                *tasks[idx], static_cast<int>(idx)));
        std::vector<sim::CoreWork> work;
        for (std::size_t i = 0; i < socket.size(); ++i)
            work.push_back({&traces[i], tasks[socket[i]]});

        sim::SimConfig cfg;
        cfg.cpu = &cpu;
        cfg.offsetMv = -97.0;
        cfg.strategy = core::StrategyKind::CombinedFv;
        cfg.params = core::optimalParams(cpu);
        sim::DomainSimulator sim(cfg, std::move(work));
        socket_results[s] = sim.run();
    });

    FleetResult fr;
    double perf_sum = 0.0;
    std::size_t task_count = 0;
    double power_sum = 0.0;
    for (const sim::DomainResult &r : socket_results) {
        for (const auto &c : r.cores)
            perf_sum += c.perfDelta();
        task_count += r.cores.size();
        power_sum += r.powerFactor;
        fr.socketShareE.push_back(r.efficientShare);
    }
    fr.perf = perf_sum / static_cast<double>(task_count);
    fr.power =
        power_sum / static_cast<double>(fr.socketShareE.size()) - 1.0;
    fr.eff = (1.0 + fr.perf) / (1.0 + fr.power) - 1.0;
    return fr;
}

} // namespace

int
main(int argc, char **argv)
{
    util::ArgParser args("ablation_scheduling",
                         "SUIT-aware scheduling ablation (Sec. 7)");
    args.addOption("jobs", "0",
                   "parallel socket workers (0 = hardware threads, "
                   "1 = one worker)");
    if (!args.parse(argc, argv))
        return 0;

    std::printf("SUIT reproduction — ablation: SUIT-aware scheduling "
                "on shared-domain sockets (2 x CPU A, 4 cores)\n\n");

    const power::CpuModel cpu = power::cpuA_i9_9900k();

    // Four quiet tasks, four bursty ones.  Server tenants run
    // continuously, so every task is normalised to the same stream
    // length (8e9 instructions) — otherwise short bursty tasks
    // finish early and hand their socket back.
    std::vector<trace::WorkloadProfile> owned;
    for (const char *name :
         {"557.xz", "523.xalancbmk", "505.mcf", "549.fotonik3d",
          "527.cam4", "520.omnetpp", "Nginx", "544.nab"}) {
        trace::WorkloadProfile p = trace::profileByName(name);
        p.totalInstructions = 8'000'000'000ULL;
        owned.push_back(std::move(p));
    }
    std::vector<const trace::WorkloadProfile *> tasks;
    for (const auto &p : owned)
        tasks.push_back(&p);

    std::printf("Task disturbance metrics:\n");
    for (const auto *t : tasks)
        std::printf("  %-15s off-curve share %5.1f%%  (%6.0f "
                    "bursts/s)\n",
                    t->name.c_str(),
                    100 * core::offCurveShare(*t),
                    core::burstRatePerSecond(*t));
    std::printf("\n");

    const core::Placement naive =
        core::placeRoundRobin(tasks.size(), 2, 4);
    const core::Placement aware = core::placeSuitAware(tasks, 2, 4);

    const int jobs = static_cast<int>(args.getInt("jobs"));
    exec::ThreadPool pool(jobs == 0
                              ? exec::ThreadPool::hardwareConcurrency()
                              : jobs);

    const FleetResult r_naive = runPlacement(naive, tasks, cpu, pool);
    const FleetResult r_aware = runPlacement(aware, tasks, cpu, pool);

    util::TablePrinter t({"Placement", "Perf", "Power", "Eff",
                          "socket onE"});
    auto row = [&](const char *name, const FleetResult &r) {
        std::string shares;
        for (double s : r.socketShareE)
            shares += util::sformat("%.0f%% ", 100 * s);
        t.addRow({name, util::sformat("%+.2f%%", 100 * r.perf),
                  util::sformat("%+.2f%%", 100 * r.power),
                  util::sformat("%+.2f%%", 100 * r.eff), shares});
    };
    row("round-robin (naive)", r_naive);
    row("SUIT-aware (segregated)", r_aware);
    t.print();

    std::printf("\nSegregating bursty tasks lets the quiet socket "
                "live on the efficient curve; interleaving\nthem "
                "drags both sockets conservative — the scheduling "
                "synergy Sec. 7 anticipates.\n");
    return 0;
}
