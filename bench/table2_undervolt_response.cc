/**
 * @file
 * Regenerates Table 2: SPEC CPU2017 score increase, power saving,
 * frequency gain and the resulting efficiency for the measured CPUs
 * at the two SUIT undervolt offsets.
 */

#include <cstdio>

#include "power/undervolt.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main()
{
    using namespace suit;

    std::printf("SUIT reproduction — Table 2: undervolting response "
                "(score / power / frequency / efficiency)\n\n");

    const power::UndervoltResponse cpus[] = {
        power::i5_1035g1UndervoltResponse(),
        power::i9_9900kUndervoltResponse(),
        power::ryzen7700xUndervoltResponse(),
    };

    util::TablePrinter t(
        {"CPU", "V_off", "Score", "Power", "Freq", "Eff"});
    for (const auto &cpu : cpus) {
        for (double off : {-70.0, -97.0}) {
            const power::UndervoltEffect e = cpu.at(off);
            t.addRow({cpu.cpuName(),
                      util::sformat("%.0f mV", off),
                      util::sformat("%+.1f%%", 100 * e.scoreDelta),
                      util::sformat("%+.1f%%", 100 * e.powerDelta),
                      util::sformat("%+.1f%%", 100 * e.freqDelta),
                      util::sformat("%+.0f%%",
                                    100 * e.efficiencyDelta())});
        }
        t.addSeparator();
    }
    t.print();

    std::printf("\nInterpolated response between the anchors "
                "(e.g. -83 mV on the i9-9900K):\n");
    const auto mid = power::i9_9900kUndervoltResponse().at(-83.0);
    std::printf("  score %+.1f%%, power %+.1f%%, eff %+.1f%%\n",
                100 * mid.scoreDelta, 100 * mid.powerDelta,
                100 * mid.efficiencyDelta());
    std::printf("\nPaper reference: i9-9900K at -97 mV gains +3.8%% "
                "score at -16%% power -> +23%% efficiency;\nthe "
                "TDP-limited i5-1035G1 converts the headroom into "
                "+12%% frequency instead.\n");
    return 0;
}
