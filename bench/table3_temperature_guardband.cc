/**
 * @file
 * Regenerates Table 3 (and the Sec. 5.7 temperature-guardband
 * analysis): the maximum stable undervolting offset at different
 * core temperatures of the i9-9900K.
 */

#include <cstdio>

#include "power/guardband.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main()
{
    using namespace suit;

    std::printf("SUIT reproduction — Table 3: temperature guardband "
                "(i9-9900K at 4 GHz)\n\n");

    const power::GuardbandModel gb;
    const power::DvfsCurve curve = power::i9_9900kCurve();

    util::TablePrinter t(
        {"f_CLK", "Fan RPM", "t_core", "max V_off", "temp band"});
    struct Row
    {
        const char *rpm;
        double temp_c;
    };
    for (const Row &row : {Row{"1800 (max)", 50.0}, Row{"300", 88.0}}) {
        t.addRow({"4 GHz", row.rpm,
                  util::sformat("%.0f degC", row.temp_c),
                  util::sformat("%.0f mV",
                                gb.maxUndervoltAtTempMv(row.temp_c)),
                  util::sformat("%.1f mV",
                                gb.temperatureBandAtMv(row.temp_c))});
    }
    t.print();

    const double supply = curve.voltageAtMv(4e9);
    std::printf("\nTemperature guardband: %.0f mV between %.0f and "
                "%.0f degC = %.1f%% of the %.0f mV supply at 4 GHz\n",
                gb.temperatureBandMv, gb.coolTempC, gb.hotTempC,
                100.0 * gb.temperatureBandMv / supply, supply);
    std::printf("(paper: 35 mV, 3.5%% of 991 mV)\n\n");

    std::printf("Intermediate temperatures (linear model):\n");
    util::TablePrinter t2({"t_core", "max V_off"});
    for (double temp = 50.0; temp <= 88.01; temp += 9.5) {
        t2.addRow({util::sformat("%.1f degC", temp),
                   util::sformat("%.1f mV",
                                 gb.maxUndervoltAtTempMv(temp))});
    }
    t2.print();
    return 0;
}
