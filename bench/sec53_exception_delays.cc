/**
 * @file
 * Regenerates the Sec. 5.3 measurements: the end-to-end delay of a
 * CPU exception into the kernel handler, and the full user-space
 * emulation round trip (two kernel transitions), per CPU — plus the
 * per-instruction software emulation cost on top.
 */

#include <cstdio>

#include "os/emulation_service.hh"
#include "os/exception.hh"
#include "power/cpu_model.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main()
{
    using namespace suit;

    std::printf("SUIT reproduction — Sec. 5.3: exception and "
                "emulation-call delays\n\n");

    util::TablePrinter t({"CPU", "Exception delay", "Emulation call"});
    for (const power::CpuModel &cpu :
         {power::cpuA_i9_9900k(), power::cpuB_ryzen7700x(),
          power::cpuC_xeon4208()}) {
        t.addRow({cpu.name(),
                  util::sformat("%.2f us", cpu.exceptionDelayUs()),
                  util::sformat("%.2f us", cpu.emulationCallUs())});
    }
    t.print();
    std::printf("(paper: 0.34 / 0.77 us on the i9-9900K, 0.11 / 0.27 "
                "us on the 7700X)\n\n");

    std::printf("Total per-instruction emulation cost (round trip + "
                "software body) at the base frequency:\n");
    const power::CpuModel cpu = power::cpuA_i9_9900k();
    os::ExceptionTable table(cpu.exceptionDelayUs(),
                             cpu.emulationCallUs());
    os::EmulationService service(table);

    util::TablePrinter t2({"Instruction", "Body (cycles)",
                           "Total (us)"});
    for (auto kind : isa::allFaultableKinds()) {
        const auto cost =
            service.emulationCost(kind, cpu.baseFreqHz());
        t2.addRow({isa::toString(kind),
                   util::sformat("%.0f",
                                 emu::emulationCostCycles(kind)),
                   util::sformat("%.2f",
                                 util::ticksToMicroseconds(cost))});
    }
    t2.print();

    std::printf("\nThe kernel round trip dominates everything except "
                "the bit-sliced AES round; this is why emulation\n"
                "collapses for AES-dense workloads (Table 6) while "
                "staying viable for sparse SIMD (Sec. 6.6).\n");
    return 0;
}
