/**
 * @file
 * suit_characterize — run a Minefield-style undervolting
 * characterization campaign against the fault model (the Table 1
 * methodology) with configurable sweep parameters and chip seed.
 *
 * Examples:
 *   suit_characterize
 *   suit_characterize --cores 4 --step 5 --samples 100 --chip 7
 *   suit_characterize --hardened-imul
 */

#include <climits>
#include <cstdio>

#include "faults/characterizer.hh"
#include "obs/setup.hh"
#include "power/pstate.hh"
#include "runtime/run_context.hh"
#include "util/args.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/sigint.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace suit;

    util::ArgParser args("suit_characterize",
                         "undervolting fault characterization "
                         "(Kogler-style, Table 1)");
    args.addOption("cores", "8", "cores to sweep");
    args.addOption("step", "20", "offset step in mV");
    args.addOption("max-offset", "300", "deepest offset in mV");
    args.addOption("samples", "40",
                   "test executions per operating point");
    args.addOption("chip", "2024",
                   "chip seed (process variation instance)");
    args.addFlag("hardened-imul",
                 "characterize a SUIT chip with the 4-cycle IMUL");
    args.addOption("deadline-s", "0",
                   "wall-clock budget in seconds; on expiry the "
                   "campaign stops gracefully like Ctrl-C "
                   "(0 = none)");
    obs::addCliOptions(args);
    if (!args.parse(argc, argv))
        return 0;

    // No runtime::Session here: the scope owns the sampler itself.
    obs::CliScope obs_scope(args);
    obs_scope.startLocalTelemetry();

    const power::DvfsCurve curve = power::i9_9900kCurve();
    faults::VminConfig vcfg;
    vcfg.curve = &curve;
    vcfg.cores = static_cast<int>(args.getIntInRange("cores", 1, 1024));
    vcfg.seed = static_cast<std::uint64_t>(
        args.getIntInRange("chip", 0, LONG_MAX));
    vcfg.hardenedImul = args.getFlag("hardened-imul");
    const faults::VminModel model(vcfg);

    const double deadline_s = args.getDouble("deadline-s");
    if (deadline_s < 0.0)
        util::fatal("--deadline-s must be >= 0, got %g", deadline_s);

    // First Ctrl-C: graceful stop; second: immediate kill.
    util::SigintGuard sigint;
    runtime::RunContext ctx;
    ctx.token().linkExternal(sigint.flag());
    if (deadline_s > 0.0)
        ctx.setDeadlineAfter(deadline_s);

    faults::CharacterizerConfig ccfg;
    ccfg.offsetStepMv = args.getDouble("step");
    ccfg.maxOffsetMv = args.getDouble("max-offset");
    ccfg.samplesPerPoint =
        static_cast<int>(args.getIntInRange("samples", 1, INT_MAX));
    ccfg.cancel = &ctx.token();
    faults::Characterizer ch(&model, ccfg);
    const faults::CharacterizationResult r = ch.run();

    std::printf("chip seed %llu, %d cores, step %.0f mV, %s IMUL\n\n",
                static_cast<unsigned long long>(vcfg.seed),
                vcfg.cores, ccfg.offsetStepMv,
                vcfg.hardenedImul ? "hardened (4-cycle)" : "stock");

    util::TablePrinter t(
        {"Instruction", "Faults", "First fault (mV)"});
    for (auto kind : isa::allFaultableKinds()) {
        const auto k = static_cast<std::size_t>(kind);
        t.addRow({isa::toString(kind),
                  util::sformat("%d", r.faultCounts[k]),
                  r.firstFaultMv[k] > 0
                      ? util::sformat("-%.0f", r.firstFaultMv[k])
                      : "never"});
    }
    t.print();
    std::printf("\n%llu executions, %d crashed sweeps\n",
                static_cast<unsigned long long>(r.totalExecutions),
                r.crashedPoints);
    if (r.interrupted) {
        obs_scope.noteInterruption(
            sigint.requested() ? "sigint" : "deadline");
        std::fprintf(stderr,
                     "characterization interrupted: counts above "
                     "cover the sweep up to the stop point only\n");
        return 130;
    }
    return 0;
}
