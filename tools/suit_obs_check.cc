/**
 * @file
 * suit_obs_check — structural validator for the obs exporters'
 * artifacts, used by the CI smoke tests and handy when eyeballing a
 * capture by hand.
 *
 * Checks a Chrome trace_event file (--trace) and/or a metrics JSON
 * file (--metrics) with the suit::obs validators: known phase codes,
 * ts/pid/tid on every event, balanced B/E span pairs per track, the
 * metrics schema string, and per-kind required fields.  The
 * telemetry artifacts are covered too: --openmetrics validates an
 * OpenMetrics text exposition (typed families, no duplicate
 * metric/label pairs, cumulative histogram buckets, # EOF) and
 * --flight a flight-recorder JSONL dump (header schema, monotonic
 * sample ids and timestamps, non-decreasing counters).  --require
 * takes a comma list of event/metric names that must appear in the
 * document(s) — e.g. `--require pstate,do-trap` asserts that a
 * simulator capture actually contains p-state transitions and #DO
 * exception instants.
 *
 * Exit code 0 when every requested check passes, 1 otherwise, with
 * one diagnostic line per problem on stderr.
 *
 * Examples:
 *   suit_sim --trace-out t.json --metrics m.json
 *   suit_obs_check --trace t.json --metrics m.json \
 *                  --require pstate,do-trap
 *   suit_fleet --metrics-series s.txt --flight-recorder f.jsonl ...
 *   suit_obs_check --openmetrics s.txt --require suit_sim_runs
 *   suit_obs_check --flight f.jsonl --require fleet.shard_ms
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/validate.hh"
#include "util/args.hh"
#include "util/logging.hh"

namespace {

using namespace suit;

std::string
readDocument(const std::string &path)
{
    if (path == "-") {
        std::ostringstream buf;
        buf << std::cin.rdbuf();
        return buf.str();
    }
    std::ifstream in(path, std::ios::binary);
    if (!in)
        util::fatal("cannot open '%s' for reading", path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::vector<std::string>
splitList(const std::string &value)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= value.size()) {
        const std::size_t comma = value.find(',', start);
        const std::string item =
            value.substr(start, comma == std::string::npos
                                    ? std::string::npos
                                    : comma - start);
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

/** Validate one document; returns the number of problems found. */
int
checkOne(const char *what, const std::string &path,
         const obs::CheckResult &result)
{
    if (!result.ok) {
        std::fprintf(stderr, "%s '%s': %s\n", what, path.c_str(),
                     result.error.c_str());
        return 1;
    }
    std::printf("%s '%s': ok (%zu entr%s, %zu distinct name%s)\n",
                what, path.c_str(), result.entries,
                result.entries == 1 ? "y" : "ies",
                result.names.size(),
                result.names.size() == 1 ? "" : "s");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    util::ArgParser args("suit_obs_check",
                         "validate obs trace/metrics artifacts");
    args.addOption("trace", "",
                   "Chrome trace_event JSON file to validate "
                   "('-' = stdin)");
    args.addOption("metrics", "",
                   "metrics JSON file to validate ('-' = stdin)");
    args.addOption("openmetrics", "",
                   "OpenMetrics text exposition to validate "
                   "('-' = stdin)");
    args.addOption("flight", "",
                   "flight-recorder JSONL dump to validate "
                   "('-' = stdin)");
    args.addOption("require", "",
                   "comma list of event/metric names that must "
                   "appear in the validated document(s)");
    if (!args.parse(argc, argv))
        return 0;

    const std::string trace_path = args.get("trace");
    const std::string metrics_path = args.get("metrics");
    const std::string openmetrics_path = args.get("openmetrics");
    const std::string flight_path = args.get("flight");
    if (trace_path.empty() && metrics_path.empty() &&
        openmetrics_path.empty() && flight_path.empty())
        util::fatal("nothing to do: pass --trace, --metrics, "
                    "--openmetrics and/or --flight");
    const int stdin_users = (trace_path == "-") +
                            (metrics_path == "-") +
                            (openmetrics_path == "-") +
                            (flight_path == "-");
    if (stdin_users > 1)
        util::fatal("only one document can read stdin");

    int problems = 0;
    std::vector<obs::CheckResult> results;
    if (!trace_path.empty()) {
        results.push_back(
            obs::checkChromeTrace(readDocument(trace_path)));
        problems += checkOne("trace", trace_path, results.back());
    }
    if (!metrics_path.empty()) {
        results.push_back(
            obs::checkMetricsJson(readDocument(metrics_path)));
        problems += checkOne("metrics", metrics_path, results.back());
    }
    if (!openmetrics_path.empty()) {
        results.push_back(
            obs::checkOpenMetrics(readDocument(openmetrics_path)));
        problems += checkOne("openmetrics", openmetrics_path,
                             results.back());
    }
    if (!flight_path.empty()) {
        results.push_back(
            obs::checkFlightJsonl(readDocument(flight_path)));
        problems += checkOne("flight", flight_path, results.back());
    }

    for (const std::string &name : splitList(args.get("require"))) {
        bool found = false;
        for (const obs::CheckResult &r : results)
            found = found || r.hasName(name);
        if (!found) {
            std::fprintf(stderr,
                         "required name '%s' appears in no validated "
                         "document\n",
                         name.c_str());
            ++problems;
        }
    }
    return problems == 0 ? 0 : 1;
}
