/**
 * @file
 * suit_fleet — simulate a whole data-center fleet of SUIT domains in
 * one process and report the TCO/energy outcome.
 *
 * The fleet is described by a FleetSpec (--spec <file>, or the
 * built-in five-rack demo fleet when omitted); --domains rescales it
 * to the requested size.  The FleetEngine shards the domains across
 * worker threads and streams every result into exact per-rack
 * accumulators, so the report is bit-identical for any --jobs value,
 * any --shard size, and across kill-and-resume cycles
 * (--checkpoint/--resume reuse the crash-safe exec journal).
 *
 * Output: the human TCO/energy table on stdout, execution footer on
 * stderr, and with --report-json the machine-readable
 * suit-fleet-report-v1 document.  Ctrl-C stops gracefully after the
 * in-flight shards (exit code 130); a resumed run completes the rest
 * and produces the identical report.
 *
 * Examples:
 *   suit_fleet                                  # demo fleet, 100k
 *   suit_fleet --domains 1000000 --jobs 16
 *   suit_fleet --spec fleet.spec --report-json report.json
 *   suit_fleet --domains 500000 --checkpoint fleet.ckpt
 *   suit_fleet --domains 500000 --checkpoint fleet.ckpt --resume
 */

#include <atomic>
#include <climits>
#include <cstdio>
#include <string>

#include "exec/checkpoint.hh"
#include "fleet/engine.hh"
#include "fleet/report.hh"
#include "fleet/spec.hh"
#include "obs/registry.hh"
#include "obs/setup.hh"
#include "runtime/run_context.hh"
#include "runtime/session.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/sigint.hh"

namespace {

using namespace suit;

} // namespace

int
main(int argc, char **argv)
{
    util::ArgParser args(
        "suit_fleet",
        "simulate a fleet of SUIT domains, report TCO/energy");
    args.addOption("spec", "",
                   "fleet spec file (omit for the built-in demo "
                   "fleet)");
    args.addOption("domains", "0",
                   "rescale the fleet to this many domains "
                   "(0 = keep the spec's counts; demo default "
                   "100000)");
    args.addOption("seed", "",
                   "override the spec's root seed");
    args.addOption("jobs", "0",
                   "parallel workers (0 = hardware threads, "
                   "1 = serial reference)");
    args.addFlag("pin",
                 "pin each worker thread to a CPU (cache locality "
                 "on dedicated machines; unsupported platforms warn "
                 "and continue unpinned)");
    args.addOption("shard", "0",
                   "domains per checkpointable shard (0 = default "
                   "4096)");
    args.addOption("checkpoint", "",
                   "journal completed shards to this file "
                   "(crash-safe)");
    args.addOption("checkpoint-flush", "1",
                   "flush the checkpoint journal every N shards "
                   "(1 = after every shard; larger batches trade "
                   "re-running at most N-1 shards after a crash for "
                   "fewer fsyncs)");
    args.addFlag("resume",
                 "load the --checkpoint journal and run only the "
                 "missing shards");
    args.addOption("report-json", "",
                   "also write the suit-fleet-report-v1 JSON to this "
                   "path ('-' = stdout instead of the table)");
    args.addOption("stop-after", "0",
                   "stop gracefully after N completed shards "
                   "(testing aid; 0 = run to completion)");
    args.addOption("deadline-s", "0",
                   "wall-clock budget in seconds; on expiry the run "
                   "stops gracefully like Ctrl-C (0 = none)");
    args.addOption("trace-cache-mb", "256",
                   "trace cache capacity in MiB (LRU eviction above "
                   "it)");
    obs::addCliOptions(args);
    if (!args.parse(argc, argv))
        return 0;

    // Declared before the FleetEngine so worker threads never outlive
    // the trace session; flushes --metrics/--trace-out at exit.
    obs::CliScope obs_scope(args);

    const long domains = args.getIntInRange("domains", 0, LONG_MAX);
    const long stop_after =
        args.getIntInRange("stop-after", 0, LONG_MAX);
    const long shard = args.getIntInRange("shard", 0, LONG_MAX);
    const double deadline_s = args.getDouble("deadline-s");
    if (deadline_s < 0.0)
        util::fatal("--deadline-s must be >= 0, got %g", deadline_s);
    const long cache_mb =
        args.getIntInRange("trace-cache-mb", 1, 1 << 20);
    if (args.getFlag("resume") && args.get("checkpoint").empty())
        util::fatal("--resume needs --checkpoint <path>");

    fleet::FleetSpec spec;
    if (!args.get("spec").empty()) {
        try {
            spec = fleet::FleetSpec::parseFile(args.get("spec"));
        } catch (const fleet::SpecError &e) {
            util::fatal("%s", e.what());
        }
        if (domains > 0)
            spec.scaleDomains(static_cast<std::uint64_t>(domains));
    } else {
        spec = fleet::FleetSpec::demo(
            domains > 0 ? static_cast<std::uint64_t>(domains)
                        : 100000);
    }
    if (!args.get("seed").empty())
        spec.seed = static_cast<std::uint64_t>(
            args.getIntInRange("seed", 0, LONG_MAX));

    util::inform("suit_fleet: '%s', %llu domains in %zu racks on %s",
                 spec.name.c_str(),
                 static_cast<unsigned long long>(spec.totalDomains()),
                 spec.racks.size(),
                 args.get("jobs") == "1" ? "1 worker (serial)"
                                         : "parallel workers");

    // First Ctrl-C: graceful stop; second: immediate kill.
    util::SigintGuard sigint;
    std::atomic<std::uint64_t> completed{0};

    fleet::FleetOptions options;
    options.shardSize = static_cast<std::uint64_t>(shard);
    if (stop_after > 0) {
        options.onShardDone = [&, stop_after](std::uint64_t) {
            if (completed.fetch_add(1) + 1 >=
                static_cast<std::uint64_t>(stop_after))
                sigint.request();
        };
    }

    runtime::SessionConfig session_cfg;
    session_cfg.jobs =
        static_cast<int>(args.getIntInRange("jobs", 0, INT_MAX));
    session_cfg.traceCacheBytes =
        static_cast<std::size_t>(cache_mb) << 20;
    session_cfg.pinWorkers = args.getFlag("pin");
    session_cfg.telemetry = obs_scope.telemetryConfig();
    runtime::Session session(session_cfg);
    obs_scope.attachTelemetry(session.telemetry());
    runtime::RunContext ctx;
    ctx.checkpoint.path = args.get("checkpoint");
    ctx.checkpoint.resume = args.getFlag("resume");
    ctx.checkpoint.flushInterval = static_cast<int>(
        args.getIntInRange("checkpoint-flush", 1, INT_MAX));
    ctx.token().linkExternal(sigint.flag());
    if (deadline_s > 0.0)
        ctx.setDeadlineAfter(deadline_s);

    fleet::FleetEngine engine(session, spec);
    fleet::FleetOutcome outcome;
    try {
        outcome = engine.run(ctx, options);
    } catch (const exec::JournalError &e) {
        util::fatal("%s", e.what());
    }

    // An interrupted run's partial aggregates would render as a
    // plausible but wrong fleet report; only a complete run reports.
    if (outcome.complete()) {
        const std::string &json_path = args.get("report-json");
        if (json_path == "-") {
            const std::string doc =
                fleet::renderReportJson(engine.spec(),
                                        outcome.totals);
            std::fwrite(doc.data(), 1, doc.size(), stdout);
        } else {
            const std::string table =
                fleet::renderReportTable(engine.spec(),
                                         outcome.totals);
            std::fwrite(table.data(), 1, table.size(), stdout);
            if (!json_path.empty()) {
                const std::string doc =
                    fleet::renderReportJson(engine.spec(),
                                            outcome.totals);
                std::FILE *f = std::fopen(json_path.c_str(), "w");
                if (f == nullptr ||
                    std::fwrite(doc.data(), 1, doc.size(), f) !=
                        doc.size())
                    util::fatal("cannot write '%s'",
                                json_path.c_str());
                std::fclose(f);
            }
        }
    }

    // Footer goes to stderr so it never pollutes a report on stdout.
    std::fprintf(
        stderr,
        "fleet execution: %llu shards (%llu run, %llu restored, "
        "%llu skipped), %llu traces generated, %llu cache hits, "
        "%llu evicted\n",
        static_cast<unsigned long long>(outcome.shards),
        static_cast<unsigned long long>(outcome.shardsRun),
        static_cast<unsigned long long>(outcome.shardsRestored),
        static_cast<unsigned long long>(outcome.shardsSkipped),
        static_cast<unsigned long long>(
            engine.traceCache().misses()),
        static_cast<unsigned long long>(engine.traceCache().hits()),
        static_cast<unsigned long long>(
            engine.traceCache().evictions()));
    if (obs::metrics().enabled()) {
        std::fprintf(stderr, "\nobservability metrics:\n%s",
                     obs::metrics().renderTable().c_str());
    }
    if (outcome.interrupted) {
        obs_scope.noteInterruption(
            sigint.requested() ? "sigint" : "deadline");
        std::fprintf(stderr,
                     "fleet run interrupted: %llu shard%s not run; "
                     "re-run with --checkpoint %s --resume to "
                     "finish\n",
                     static_cast<unsigned long long>(
                         outcome.shardsSkipped),
                     outcome.shardsSkipped == 1 ? "" : "s",
                     ctx.checkpoint.path.empty()
                         ? "<path>"
                         : ctx.checkpoint.path.c_str());
        return 130;
    }
    return 0;
}
