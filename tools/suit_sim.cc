/**
 * @file
 * suit_sim — run the SUIT trace simulator from the command line.
 *
 * Examples:
 *   suit_sim --workload 557.xz
 *   suit_sim --cpu B --strategy f --offset -70 --workload Nginx
 *   suit_sim --cpu A --cores 4 --workload 502.gcc
 *   suit_sim --trace mytrace.sfb --strategy hybrid
 *   suit_sim --workload 508.namd --nosimd
 *   suit_sim --workload spec --jobs 4      # whole suite, 4 workers
 */

#include <climits>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/controller.hh"
#include "core/params.hh"
#include "exec/sweep.hh"
#include "obs/setup.hh"
#include "runtime/run_context.hh"
#include "runtime/session.hh"
#include "sim/evaluation.hh"
#include "trace/generator.hh"
#include "trace/io.hh"
#include "trace/profile.hh"
#include "util/args.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/sigint.hh"
#include "util/table.hh"

namespace {

using namespace suit;

power::CpuModel
cpuByName(const std::string &name)
{
    if (name == "A" || name == "i9-9900K")
        return power::cpuA_i9_9900k();
    if (name == "B" || name == "7700X")
        return power::cpuB_ryzen7700x();
    if (name == "C" || name == "4208")
        return power::cpuC_xeon4208();
    if (name == "i5" || name == "i5-1035G1")
        return power::cpu_i5_1035g1();
    util::fatal("unknown CPU '%s' (use A, B, C or i5)", name.c_str());
}

core::StrategyKind
strategyByName(const std::string &name)
{
    if (name == "e" || name == "emulation")
        return core::StrategyKind::Emulation;
    if (name == "f" || name == "frequency")
        return core::StrategyKind::Frequency;
    if (name == "V" || name == "voltage")
        return core::StrategyKind::Voltage;
    if (name == "fV" || name == "combined")
        return core::StrategyKind::CombinedFv;
    if (name == "hybrid" || name == "e+fV")
        return core::StrategyKind::Hybrid;
    if (name == "auto")
        return core::StrategyKind::CombinedFv; // replaced below
    util::fatal("unknown strategy '%s' (e, f, V, fV, hybrid, auto)",
                name.c_str());
}

/**
 * Expand a --workload value into a profile list: "spec" / "all" name
 * the built-in suites, a comma-separated list selects individual
 * profiles, anything else is a single workload.
 */
std::vector<trace::WorkloadProfile>
workloadsByName(const std::string &value)
{
    if (value == "spec")
        return trace::specProfiles();
    if (value == "all")
        return trace::allProfiles();
    std::vector<trace::WorkloadProfile> out;
    std::size_t start = 0;
    while (start <= value.size()) {
        const std::size_t comma = value.find(',', start);
        const std::string name =
            value.substr(start, comma == std::string::npos
                                    ? std::string::npos
                                    : comma - start);
        if (!name.empty())
            out.push_back(trace::profileByName(name));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

/** Run a multi-workload suite in parallel and print per-row results. */
int
runSuiteMode(const sim::EvalConfig &cfg,
             const std::vector<trace::WorkloadProfile> &profiles,
             runtime::Session &session, runtime::RunContext &ctx,
             const exec::RunPolicy &policy, bool verbose,
             obs::CliScope &obs_scope, const util::SigintGuard &sigint)
{
    std::vector<exec::SweepJob> sweep_jobs;
    sweep_jobs.reserve(profiles.size());
    for (const trace::WorkloadProfile &p : profiles)
        sweep_jobs.push_back({p.name, cfg, &p});

    exec::SweepEngine engine(session);
    exec::SweepOutcome outcome;
    try {
        outcome = engine.run(sweep_jobs, ctx, policy);
    } catch (const exec::JournalError &e) {
        util::fatal("%s", e.what());
    }

    std::vector<sim::WorkloadRow> rows;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        if (outcome.done[i])
            rows.push_back({profiles[i].name, outcome.results[i]});
    }

    util::TablePrinter t({"Workload", "Perf", "Power", "Eff", "onE"});
    for (const sim::WorkloadRow &r : rows)
        t.addRow({r.workload,
                  util::sformat("%+.2f%%", 100 * r.result.perfDelta()),
                  util::sformat("%+.2f%%",
                                100 * r.result.powerDelta()),
                  util::sformat("%+.2f%%",
                                100 * r.result.efficiencyDelta()),
                  util::sformat("%.1f%%",
                                100 * r.result.efficientShare)});
    t.print();

    // A suite geomean over a subset would be silently wrong — only
    // print it once every workload completed.
    if (rows.size() == profiles.size()) {
        const sim::SuiteSummary sum = sim::SuiteSummary::of(rows);
        std::printf("\nSuite gmean: perf %+.2f%%, power %+.2f%%, eff "
                    "%+.2f%% (median eff %+.2f%%)\n",
                    100 * sum.gmeanPerf, 100 * sum.gmeanPower,
                    100 * sum.gmeanEff, 100 * sum.medianEff);
    } else {
        std::printf("\nSuite summary withheld: %zu of %zu workloads "
                    "completed\n",
                    rows.size(), profiles.size());
    }
    for (const exec::CellFailure &f : outcome.failures)
        std::fprintf(stderr, "failed workload %s: %s (%d attempt%s)\n",
                     f.label.c_str(), f.error.c_str(), f.attempts,
                     f.attempts == 1 ? "" : "s");
    if (verbose) {
        std::printf("\nSweep execution (%d worker%s, %zu jobs, %zu "
                    "run, %zu restored):\n%s",
                    engine.jobs(), engine.jobs() == 1 ? "" : "s",
                    profiles.size(), outcome.executed,
                    outcome.restored, engine.workerFooter().c_str());
        const sim::TraceCache &traces = session.traceCache();
        const std::uint64_t hits = traces.hits();
        const std::uint64_t misses = traces.misses();
        const std::uint64_t lookups = hits + misses;
        std::printf("Trace cache: %llu trace%s generated, %llu of "
                    "%llu lookup%s hit (%.1f%% hit rate), %llu "
                    "evicted\n",
                    static_cast<unsigned long long>(misses),
                    misses == 1 ? "" : "s",
                    static_cast<unsigned long long>(hits),
                    static_cast<unsigned long long>(lookups),
                    lookups == 1 ? "" : "s",
                    lookups > 0 ? 100.0 * static_cast<double>(hits) /
                                      static_cast<double>(lookups)
                                : 0.0,
                    static_cast<unsigned long long>(
                        traces.evictions()));
    }
    if (outcome.interrupted) {
        obs_scope.noteInterruption(
            sigint.requested() ? "sigint" : "deadline");
        std::fprintf(stderr,
                     "suite interrupted: %zu workload%s not run; "
                     "re-run with --checkpoint %s --resume to "
                     "finish\n",
                     outcome.skipped,
                     outcome.skipped == 1 ? "" : "s",
                     ctx.checkpoint.path.empty()
                         ? "<path>"
                         : ctx.checkpoint.path.c_str());
        return 130;
    }
    return outcome.failures.empty() ? 0 : 2;
}

} // namespace

int
main(int argc, char **argv)
{
    util::ArgParser args("suit_sim",
                         "simulate SUIT on a workload (paper Sec. 6)");
    args.addOption("cpu", "C", "CPU model: A, B, C or i5");
    args.addOption("workload", "557.xz",
                   "built-in workload profile name, a comma-separated "
                   "list, 'spec', 'all', or 'list'");
    args.addOption("trace", "", "run a recorded .sft/.sfb trace "
                                "instead of a built-in profile");
    args.addOption("strategy", "fV",
                   "operating strategy: e, f, V, fV, hybrid or auto");
    args.addOption("offset", "-97", "undervolt offset in mV");
    args.addOption("cores", "1",
                   "utilised cores (shared-domain CPUs only)");
    args.addOption("seed", "1", "trace / jitter seed");
    args.addOption("jobs", "0",
                   "parallel workers for multi-workload runs (0 = "
                   "hardware threads, 1 = serial reference)");
    args.addFlag("pin",
                 "pin each worker thread to a CPU (cache locality "
                 "on dedicated machines; unsupported platforms warn "
                 "and continue unpinned)");
    args.addOption("checkpoint", "",
                   "journal completed suite workloads to this file "
                   "(multi-workload runs only)");
    args.addOption("checkpoint-flush", "1",
                   "flush the checkpoint journal every N workloads "
                   "(1 = after every workload)");
    args.addFlag("resume",
                 "load the --checkpoint journal and run only the "
                 "missing workloads");
    args.addOption("retries", "0",
                   "re-attempts for a failing workload before "
                   "recording it as failed");
    args.addFlag("strict",
                 "fail fast: abort the suite on the first workload "
                 "failure");
    args.addOption("deadline-s", "0",
                   "wall-clock budget in seconds for suite runs; on "
                   "expiry the run stops gracefully like Ctrl-C "
                   "(0 = none)");
    args.addOption("trace-cache-mb", "256",
                   "trace cache capacity in MiB (LRU eviction above "
                   "it)");
    args.addFlag("nosimd", "model a binary compiled without SIMD");
    args.addFlag("verbose", "also print switch/trap counters");
    obs::addCliOptions(args);
    if (!args.parse(argc, argv))
        return 0;

    if (args.get("workload") == "list") {
        for (const auto &p : trace::allProfiles())
            std::printf("%s\n", p.name.c_str());
        return 0;
    }

    // Declared before any engine/pool so trace-emitting workers never
    // outlive the session; flushes --metrics/--trace-out at exit.
    obs::CliScope obs_scope(args);

    const power::CpuModel cpu = cpuByName(args.get("cpu"));

    sim::EvalConfig cfg;
    cfg.cpu = &cpu;
    cfg.cores = static_cast<int>(args.getIntInRange("cores", 1, 1024));
    cfg.offsetMv = args.getDouble("offset");
    cfg.params = core::optimalParams(cpu);
    cfg.seed = static_cast<std::uint64_t>(
        args.getIntInRange("seed", 0, LONG_MAX));
    cfg.mode = args.getFlag("nosimd") ? sim::RunMode::NoSimdCompile
                                      : sim::RunMode::Suit;

    // Multi-workload selection runs as a parallel suite.
    if (args.get("trace").empty()) {
        const std::string &wl = args.get("workload");
        if (wl == "spec" || wl == "all" ||
            wl.find(',') != std::string::npos) {
            if (args.get("strategy") != "auto")
                cfg.strategy = strategyByName(args.get("strategy"));
            else
                util::fatal("--strategy auto needs a single "
                            "workload");
            exec::RunPolicy policy;
            const long retries =
                args.getIntInRange("retries", 0, INT_MAX);
            policy.retries = static_cast<int>(retries);
            policy.strict = args.getFlag("strict");
            const double deadline_s = args.getDouble("deadline-s");
            if (deadline_s < 0.0)
                util::fatal("--deadline-s must be >= 0, got %g",
                            deadline_s);
            const long cache_mb =
                args.getIntInRange("trace-cache-mb", 1, 1 << 20);
            if (args.getFlag("resume") &&
                args.get("checkpoint").empty())
                util::fatal("--resume needs --checkpoint <path>");

            // First Ctrl-C: graceful stop; second: immediate kill.
            util::SigintGuard sigint;
            runtime::SessionConfig session_cfg;
            session_cfg.jobs = static_cast<int>(
                args.getIntInRange("jobs", 0, INT_MAX));
            session_cfg.traceCacheBytes =
                static_cast<std::size_t>(cache_mb) << 20;
            session_cfg.pinWorkers = args.getFlag("pin");
            session_cfg.telemetry = obs_scope.telemetryConfig();
            runtime::Session session(session_cfg);
            obs_scope.attachTelemetry(session.telemetry());
            runtime::RunContext ctx;
            ctx.checkpoint.path = args.get("checkpoint");
            ctx.checkpoint.resume = args.getFlag("resume");
            ctx.checkpoint.flushInterval = static_cast<int>(
                args.getIntInRange("checkpoint-flush", 1, INT_MAX));
            ctx.token().linkExternal(sigint.flag());
            if (deadline_s > 0.0)
                ctx.setDeadlineAfter(deadline_s);

            std::printf("suite '%s' on %s, strategy %s, %.0f mV:\n",
                        wl.c_str(), cpu.name().c_str(),
                        core::toString(cfg.strategy), cfg.offsetMv);
            return runSuiteMode(cfg, workloadsByName(wl), session,
                                ctx, policy,
                                args.getFlag("verbose"), obs_scope,
                                sigint);
        }
    }
    if (!args.get("checkpoint").empty() || args.getFlag("resume"))
        util::fatal("--checkpoint/--resume apply to multi-workload "
                    "suite runs only");
    // Single-run path: no Session, so the scope owns the sampler.
    obs_scope.startLocalTelemetry();

    sim::DomainResult result;
    std::string workload_name;
    if (!args.get("trace").empty()) {
        const trace::Trace t = trace::loadTrace(args.get("trace"));
        workload_name = t.name();
        // A recorded trace carries no profile; wrap it in a neutral
        // one so the simulator has IPC and weight.
        trace::WorkloadProfile profile;
        profile.name = t.name();
        profile.ipc = t.ipc();
        profile.totalInstructions = t.totalInstructions();
        profile.eventWeight = t.eventWeight();

        cfg.strategy = args.get("strategy") == "auto"
                           ? core::selectStrategy(cpu, t, cfg.params)
                           : strategyByName(args.get("strategy"));
        sim::SimConfig sim_cfg;
        sim_cfg.cpu = cfg.cpu;
        sim_cfg.offsetMv = cfg.offsetMv;
        sim_cfg.mode = cfg.mode;
        sim_cfg.strategy = cfg.strategy;
        sim_cfg.params = cfg.params;
        sim_cfg.seed = cfg.seed;
        sim::DomainSimulator sim(sim_cfg, {{&t, &profile}});
        result = sim.run();
    } else {
        const auto &profile =
            trace::profileByName(args.get("workload"));
        workload_name = profile.name;
        if (args.get("strategy") == "auto") {
            const trace::Trace probe =
                trace::TraceGenerator(cfg.seed).generate(profile);
            cfg.strategy =
                core::selectStrategy(cpu, probe, cfg.params);
        } else {
            cfg.strategy = strategyByName(args.get("strategy"));
        }
        result = sim::runWorkload(cfg, profile);
    }

    std::printf("%s on %s, strategy %s, %.0f mV:\n",
                workload_name.c_str(), cpu.name().c_str(),
                core::toString(cfg.strategy), cfg.offsetMv);
    std::printf("  performance %+7.2f %%\n",
                100 * result.perfDelta());
    std::printf("  power       %+7.2f %%\n",
                100 * result.powerDelta());
    std::printf("  efficiency  %+7.2f %%\n",
                100 * result.efficiencyDelta());
    std::printf("  on efficient curve %5.1f %% (Cf %.1f %%, CV "
                "%.1f %%)\n",
                100 * result.efficientShare, 100 * result.cfShare,
                100 * result.cvShare);
    if (args.getFlag("verbose")) {
        std::printf("  traps %llu, emulations %llu, switches %llu, "
                    "thrash activations %llu\n",
                    static_cast<unsigned long long>(result.traps),
                    static_cast<unsigned long long>(result.emulations),
                    static_cast<unsigned long long>(
                        result.pstateSwitches),
                    static_cast<unsigned long long>(
                        result.thrashDetections));
    }
    return 0;
}
