/**
 * @file
 * suit_bench_json — measure the domain-simulator hot path and write
 * the tracked BENCH_simcore.json record.
 *
 * Runs the four simulator scenarios the micro-benchmarks cover
 * (single-core SUIT on 502.gcc, the same run on the reference event
 * loop, the event-dense 525.x264, and CPU A's shared four-core
 * domain) plus the engine-scale throughput scenarios (the 100k- and
 * 1M-domain demo fleets through FleetEngine and a SPEC x offset grid
 * through SweepEngine, all on all hardware threads) with wall-clock
 * timing, and emits one JSON document:
 *
 *   {
 *     "schema": "suit-bench-simcore-v5",
 *     "reps": 5,
 *     "benchmarks": [
 *       { "name": "domain_sim_single", "events": ...,
 *         "best_ms": ..., "median_ms": ..., "events_per_sec": ... },
 *       ...
 *     ],
 *     "fleet": { "name": "fleet_100k", "domains": 100000,
 *       "best_ms": ..., "median_ms": ..., "domains_per_sec": ... },
 *     "fleet_1m": { "name": "fleet_1m", "domains": 1000000, ... },
 *     "sweep": { "name": "sweep_grid", "cells": ...,
 *       "best_ms": ..., "median_ms": ..., "cells_per_sec": ... },
 *     "allocs_per_domain": 0.00,
 *     "alloc_count_enabled": true,
 *     "speedup_vs_reference": ...,
 *     "obs_overhead_disabled_pct": ...,
 *     "telemetry_overhead_pct": ...
 *   }
 *
 * allocs_per_domain measures the steady-state heap allocations per
 * domain evaluation on a warm runtime::Session SimWorkspace; with
 * the SUIT_ALLOC_COUNT hook compiled in (the default build) the
 * value is asserted to be exactly 0.
 *
 * The obs_overhead_disabled_pct field compares the default single-core
 * scenario (obs compiled in but disabled — the shipping configuration)
 * against the same run with SimConfig::obsBypass, which skips even the
 * trace-session latch and counter publication.  It is the measured
 * cost of *having* the instrumentation, and the obs acceptance gate
 * (0..2 %).  The two configurations are measured as interleaved
 * back-to-back pairs with alternating order, and the field is the
 * median of the per-pair deltas: comparing the best times of two
 * *independently* timed scenarios let frequency and scheduler drift
 * between them swamp the sub-percent real delta (the record once
 * shipped an impossible -1.59 %).  A negative paired median means
 * the overhead is indistinguishable from zero and reports as 0.
 *
 * No timestamps or host identifiers go into the file, so regenerating
 * it on the same machine produces minimal diffs.  Examples:
 *
 *   suit_bench_json                      # writes BENCH_simcore.json
 *   suit_bench_json --reps 9 --out /tmp/b.json
 *   suit_bench_json --check BENCH_simcore.json   # schema validation
 */

#include <algorithm>
#include <chrono>
#include <climits>
#include <cstdio>
#include <string>
#include <vector>

#include "core/params.hh"
#include "exec/sweep.hh"
#include "obs/registry.hh"
#include "obs/telemetry.hh"
#include "fleet/engine.hh"
#include "fleet/spec.hh"
#include "runtime/run_context.hh"
#include "runtime/session.hh"
#include "sim/domain_sim.hh"
#include "sim/evaluation.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"
#include "util/alloc_count.hh"
#include "util/args.hh"
#include "util/format.hh"
#include "util/logging.hh"

namespace {

using namespace suit;

/** One measured scenario. */
struct BenchResult
{
    std::string name;
    std::uint64_t events = 0;
    double bestMs = 0.0;
    double medianMs = 0.0;
    double eventsPerSec = 0.0;
};

/** Time one simulator configuration over @p reps repetitions. */
BenchResult
timeScenario(const std::string &name, const sim::SimConfig &cfg,
             const std::vector<sim::CoreWork> &work, int reps)
{
    std::uint64_t events = 0;
    for (const sim::CoreWork &w : work)
        events += w.trace->eventCount();

    std::vector<double> times_ms;
    times_ms.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        sim::DomainSimulator simulator(cfg, work);
        const sim::DomainResult result = simulator.run();
        const auto stop = std::chrono::steady_clock::now();
        SUIT_ASSERT(!result.cores.empty(), "simulation returned no cores");
        times_ms.push_back(
            std::chrono::duration<double, std::milli>(stop - start)
                .count());
    }
    std::sort(times_ms.begin(), times_ms.end());

    BenchResult out;
    out.name = name;
    out.events = events;
    out.bestMs = times_ms.front();
    out.medianMs = times_ms[times_ms.size() / 2];
    out.eventsPerSec = out.bestMs > 0.0
                           ? static_cast<double>(events) /
                                 (out.bestMs / 1e3)
                           : 0.0;
    return out;
}

/**
 * Measure the cost of having the (disabled) instrumentation: paired
 * repetitions of the same configuration with and without
 * SimConfig::obsBypass, run back to back with alternating order so
 * slow drift (thermal, scheduler, frequency) cancels within each
 * pair, reduced to the median per-pair delta.  Negative medians are
 * noise around a true near-zero overhead and clamp to 0.
 * (telemetry_overhead_pct applies the same protocol to a running
 * TelemetrySampler — see measureTelemetryOverheadPct.)
 *
 * One scenario run is only a few milliseconds, which puts a single
 * timer tick at several percent of the measurement; each timed arm
 * therefore batches enough back-to-back runs to cover
 * kMinArmMs (calibrated from the warmup) so per-pair deltas
 * resolve the sub-percent overhead instead of OS jitter.
 */
constexpr double kMinArmMs = 20.0;

int
calibrateBatch(double warm_ms)
{
    if (warm_ms <= 0.0)
        return 1;
    const double runs = kMinArmMs / warm_ms;
    return std::max(1, std::min(64, static_cast<int>(runs) + 1));
}

double
measureObsOverheadPct(const sim::SimConfig &base,
                      const std::vector<sim::CoreWork> &work, int reps)
{
    sim::SimConfig obs_cfg = base;
    obs_cfg.obsBypass = false;
    sim::SimConfig noobs_cfg = base;
    noobs_cfg.obsBypass = true;

    const auto run_single = [&](const sim::SimConfig &cfg) {
        const auto start = std::chrono::steady_clock::now();
        sim::DomainSimulator simulator(cfg, work);
        const sim::DomainResult result = simulator.run();
        const auto stop = std::chrono::steady_clock::now();
        SUIT_ASSERT(!result.cores.empty(),
                    "simulation returned no cores");
        return std::chrono::duration<double, std::milli>(stop - start)
            .count();
    };

    // Untimed warmup so the first pairs do not carry cold-cache
    // cost on whichever configuration happens to run first; the
    // warm time also calibrates the batch size.
    run_single(obs_cfg);
    const int batch = calibrateBatch(run_single(noobs_cfg));

    const auto run_once = [&](const sim::SimConfig &cfg) {
        const auto start = std::chrono::steady_clock::now();
        for (int b = 0; b < batch; ++b) {
            sim::DomainSimulator simulator(cfg, work);
            const sim::DomainResult result = simulator.run();
            SUIT_ASSERT(!result.cores.empty(),
                        "simulation returned no cores");
        }
        const auto stop = std::chrono::steady_clock::now();
        return std::chrono::duration<double, std::milli>(stop - start)
            .count();
    };

    std::vector<double> deltas_pct;
    deltas_pct.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
        double obs_ms = 0.0;
        double noobs_ms = 0.0;
        if (r % 2 == 0) {
            obs_ms = run_once(obs_cfg);
            noobs_ms = run_once(noobs_cfg);
        } else {
            noobs_ms = run_once(noobs_cfg);
            obs_ms = run_once(obs_cfg);
        }
        if (noobs_ms > 0.0)
            deltas_pct.push_back(100.0 * (obs_ms / noobs_ms - 1.0));
    }
    if (deltas_pct.empty())
        return 0.0;
    std::sort(deltas_pct.begin(), deltas_pct.end());
    const double median = deltas_pct[deltas_pct.size() / 2];
    return std::max(median, 0.0);
}

/**
 * Measure the cost of a *running* telemetry sampler: the same
 * single-core scenario with the registry recording in both arms,
 * once with a TelemetrySampler ticking at its default 100 ms period
 * and once without one.  Same paired-median protocol as
 * measureObsOverheadPct — the sampler's steady-state cost (one
 * background thread snapshotting sharded atomics) is far below
 * drift between independently timed runs.
 */
double
measureTelemetryOverheadPct(const sim::SimConfig &base,
                            const std::vector<sim::CoreWork> &work,
                            int reps)
{
    obs::Registry &reg = obs::metrics();
    const bool was_enabled = reg.enabled();
    reg.setEnabled(true);

    const auto run_single = [&] {
        const auto start = std::chrono::steady_clock::now();
        sim::DomainSimulator simulator(base, work);
        const sim::DomainResult result = simulator.run();
        const auto stop = std::chrono::steady_clock::now();
        SUIT_ASSERT(!result.cores.empty(),
                    "simulation returned no cores");
        return std::chrono::duration<double, std::milli>(stop - start)
            .count();
    };

    obs::TelemetryConfig sampler_cfg;
    sampler_cfg.enabled = true;
    sampler_cfg.intervalS = 0.1;

    {
        // Warmup (sampler thread start/stop included) + batch
        // calibration, as in measureObsOverheadPct.
        obs::TelemetrySampler sampler(reg, sampler_cfg);
        sampler.start();
        run_single();
        sampler.stop();
    }
    const int batch = calibrateBatch(run_single());

    const auto run_once = [&] {
        const auto start = std::chrono::steady_clock::now();
        for (int b = 0; b < batch; ++b) {
            sim::DomainSimulator simulator(base, work);
            const sim::DomainResult result = simulator.run();
            SUIT_ASSERT(!result.cores.empty(),
                        "simulation returned no cores");
        }
        const auto stop = std::chrono::steady_clock::now();
        return std::chrono::duration<double, std::milli>(stop - start)
            .count();
    };
    const auto run_sampled = [&] {
        obs::TelemetrySampler sampler(reg, sampler_cfg);
        sampler.start();
        const double ms = run_once();
        sampler.stop();
        return ms;
    };

    std::vector<double> deltas_pct;
    deltas_pct.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
        double on_ms = 0.0;
        double off_ms = 0.0;
        if (r % 2 == 0) {
            on_ms = run_sampled();
            off_ms = run_once();
        } else {
            off_ms = run_once();
            on_ms = run_sampled();
        }
        if (off_ms > 0.0)
            deltas_pct.push_back(100.0 * (on_ms / off_ms - 1.0));
    }
    reg.setEnabled(was_enabled);
    if (deltas_pct.empty())
        return 0.0;
    std::sort(deltas_pct.begin(), deltas_pct.end());
    return std::max(deltas_pct[deltas_pct.size() / 2], 0.0);
}

/** The tracked scenario set (mirrors bench/micro_benchmarks.cc). */
std::vector<BenchResult>
runScenarios(int reps, double &obs_overhead_pct,
             double &telemetry_overhead_pct)
{
    std::vector<BenchResult> results;

    const power::CpuModel cpu_c = power::cpuC_xeon4208();
    const power::CpuModel cpu_a = power::cpuA_i9_9900k();

    // Single-core SUIT run, fast and reference paths.
    const auto &gcc = trace::profileByName("502.gcc");
    const trace::Trace gcc_trace = trace::TraceGenerator(3).generate(gcc);
    {
        sim::SimConfig cfg;
        cfg.cpu = &cpu_c;
        cfg.params = core::optimalParams(cpu_c);
        results.push_back(timeScenario(
            "domain_sim_single", cfg, {{&gcc_trace, &gcc}}, reps));
        cfg.obsBypass = true;
        results.push_back(timeScenario(
            "domain_sim_noobs", cfg, {{&gcc_trace, &gcc}}, reps));
        cfg.obsBypass = false;
        obs_overhead_pct =
            measureObsOverheadPct(cfg, {{&gcc_trace, &gcc}}, reps);
        telemetry_overhead_pct = measureTelemetryOverheadPct(
            cfg, {{&gcc_trace, &gcc}}, reps);
        cfg.referencePath = true;
        results.push_back(timeScenario(
            "domain_sim_reference", cfg, {{&gcc_trace, &gcc}}, reps));
    }

    // Event-dense workload (highest faultable density in the suite).
    {
        const auto &x264 = trace::profileByName("525.x264");
        const trace::Trace t = trace::TraceGenerator(5).generate(x264);
        sim::SimConfig cfg;
        cfg.cpu = &cpu_c;
        cfg.params = core::optimalParams(cpu_c);
        results.push_back(
            timeScenario("domain_sim_dense", cfg, {{&t, &x264}}, reps));
    }

    // Shared four-core domain (CPU A).
    {
        constexpr int kStreams = 4;
        std::vector<trace::Trace> traces;
        for (int s = 0; s < kStreams; ++s)
            traces.push_back(trace::TraceGenerator(3).generate(gcc, s));
        std::vector<sim::CoreWork> work;
        for (const trace::Trace &t : traces)
            work.push_back({&t, &gcc});
        sim::SimConfig cfg;
        cfg.cpu = &cpu_a;
        cfg.params = core::optimalParams(cpu_a);
        results.push_back(
            timeScenario("domain_sim_shared", cfg, work, reps));
    }

    return results;
}

/** The fleet-scale throughput scenario. */
struct FleetBench
{
    std::string name;
    std::uint64_t domains = 0;
    double bestMs = 0.0;
    double medianMs = 0.0;
    double domainsPerSec = 0.0;
};

/**
 * Time the @p domains-sized demo fleet through the FleetEngine on
 * all hardware threads.  The session (pool and trace cache) and
 * engine are rebuilt per repetition so every run pays the full cost
 * a fresh suit_fleet invocation would.
 */
FleetBench
timeFleet(const std::string &name, std::uint64_t domains, int reps)
{
    std::vector<double> times_ms;
    times_ms.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        runtime::Session session;
        fleet::FleetEngine engine(session,
                                  fleet::FleetSpec::demo(domains));
        const fleet::FleetOutcome outcome = engine.run({});
        const auto stop = std::chrono::steady_clock::now();
        SUIT_ASSERT(outcome.complete() &&
                        outcome.totals.totalDomains() == domains,
                    "fleet benchmark run incomplete");
        times_ms.push_back(
            std::chrono::duration<double, std::milli>(stop - start)
                .count());
    }
    std::sort(times_ms.begin(), times_ms.end());

    FleetBench out;
    out.name = name;
    out.domains = domains;
    out.bestMs = times_ms.front();
    out.medianMs = times_ms[times_ms.size() / 2];
    out.domainsPerSec =
        out.bestMs > 0.0 ? static_cast<double>(domains) /
                               (out.bestMs / 1e3)
                         : 0.0;
    return out;
}

/** The sweep-grid throughput scenario. */
struct SweepBench
{
    std::size_t cells = 0;
    double bestMs = 0.0;
    double medianMs = 0.0;
    double cellsPerSec = 0.0;
};

/**
 * Time a representative sweep grid (SPEC workloads x offsets on
 * CPU C) through the SweepEngine on all hardware threads, session
 * rebuilt per repetition like the fleet scenario.
 */
SweepBench
timeSweepGrid(int reps)
{
    const power::CpuModel cpu = power::cpuC_xeon4208();
    const std::vector<trace::WorkloadProfile> profiles =
        trace::specProfiles();
    const double offsets[] = {-50.0, -97.0};

    std::vector<exec::SweepJob> jobs;
    for (const trace::WorkloadProfile &p : profiles) {
        for (const double offset : offsets) {
            sim::EvalConfig cfg;
            cfg.cpu = &cpu;
            cfg.offsetMv = offset;
            cfg.params = core::optimalParams(cpu);
            jobs.push_back({p.name, cfg, &p});
        }
    }

    std::vector<double> times_ms;
    times_ms.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        runtime::Session session;
        exec::SweepEngine engine(session);
        const std::vector<sim::DomainResult> results =
            engine.run(jobs);
        const auto stop = std::chrono::steady_clock::now();
        SUIT_ASSERT(results.size() == jobs.size(),
                    "sweep benchmark run incomplete");
        times_ms.push_back(
            std::chrono::duration<double, std::milli>(stop - start)
                .count());
    }
    std::sort(times_ms.begin(), times_ms.end());

    SweepBench out;
    out.cells = jobs.size();
    out.bestMs = times_ms.front();
    out.medianMs = times_ms[times_ms.size() / 2];
    out.cellsPerSec =
        out.bestMs > 0.0 ? static_cast<double>(out.cells) /
                               (out.bestMs / 1e3)
                         : 0.0;
    return out;
}

/**
 * Allocations per domain evaluation on a warm SimWorkspace.
 *
 * Runs the single-core scenario through the workspace overload of
 * runWorkload() on a serial session: after a short warm-up (which
 * grows every buffer to its steady-state capacity and memoises the
 * trace), further domains must perform zero heap allocations — the
 * tentpole contract of the workspace design.  When the
 * SUIT_ALLOC_COUNT hook is compiled in, the measured count is
 * asserted to be exactly zero; when it is compiled out the field
 * reports 0 and alloc_count_enabled records that nothing was
 * measured.
 */
double
measureAllocsPerDomain()
{
    runtime::SessionConfig serial_cfg;
    serial_cfg.jobs = 1;
    runtime::Session session(serial_cfg);
    sim::SimWorkspace &ws = session.workspace();
    const power::CpuModel cpu = power::cpuC_xeon4208();
    const auto &gcc = trace::profileByName("502.gcc");

    sim::EvalConfig cfg;
    cfg.cpu = &cpu;
    cfg.params = core::optimalParams(cpu);

    for (int i = 0; i < 8; ++i)
        sim::runWorkload(cfg, gcc, session.traceCache(), ws);

    constexpr int kMeasured = 64;
    const std::uint64_t before = util::allocCount();
    for (int i = 0; i < kMeasured; ++i) {
        const sim::DomainResult &result =
            sim::runWorkload(cfg, gcc, session.traceCache(), ws);
        SUIT_ASSERT(!result.cores.empty(),
                    "simulation returned no cores");
    }
    const std::uint64_t delta = util::allocCount() - before;

    if (util::allocCountEnabled()) {
        SUIT_ASSERT(delta == 0,
                    "steady-state domain evaluation allocated %llu "
                    "times over %d domains; the warm workspace loop "
                    "must be allocation-free",
                    static_cast<unsigned long long>(delta),
                    kMeasured);
    }
    return static_cast<double>(delta) /
           static_cast<double>(kMeasured);
}

std::string
renderFleetJson(const FleetBench &bench)
{
    return util::sformat(
        "{ \"name\": \"%s\", "
        "\"domains\": %llu, \"best_ms\": %.1f, "
        "\"median_ms\": %.1f, \"domains_per_sec\": %.0f }",
        bench.name.c_str(),
        static_cast<unsigned long long>(bench.domains),
        bench.bestMs, bench.medianMs, bench.domainsPerSec);
}

std::string
renderJson(const std::vector<BenchResult> &results,
           const FleetBench &fleet_100k, const FleetBench &fleet_1m,
           const SweepBench &sweep_bench, double allocs_per_domain,
           int reps, double obs_pct, double telemetry_pct)
{
    double fast_ms = 0.0;
    double ref_ms = 0.0;
    std::string body;
    for (const BenchResult &r : results) {
        if (r.name == "domain_sim_single")
            fast_ms = r.bestMs;
        if (r.name == "domain_sim_reference")
            ref_ms = r.bestMs;
        if (!body.empty())
            body += ",\n";
        body += util::sformat(
            "    { \"name\": \"%s\", \"events\": %llu, "
            "\"best_ms\": %.3f, \"median_ms\": %.3f, "
            "\"events_per_sec\": %.0f }",
            r.name.c_str(),
            static_cast<unsigned long long>(r.events), r.bestMs,
            r.medianMs, r.eventsPerSec);
    }
    const double speedup = fast_ms > 0.0 ? ref_ms / fast_ms : 0.0;
    return util::sformat(
        "{\n"
        "  \"schema\": \"suit-bench-simcore-v5\",\n"
        "  \"reps\": %d,\n"
        "  \"benchmarks\": [\n%s\n  ],\n"
        "  \"fleet\": %s,\n"
        "  \"fleet_1m\": %s,\n"
        "  \"sweep\": { \"name\": \"sweep_grid\", "
        "\"cells\": %zu, \"best_ms\": %.1f, "
        "\"median_ms\": %.1f, \"cells_per_sec\": %.1f },\n"
        "  \"allocs_per_domain\": %.2f,\n"
        "  \"alloc_count_enabled\": %s,\n"
        "  \"speedup_vs_reference\": %.2f,\n"
        "  \"obs_overhead_disabled_pct\": %.2f,\n"
        "  \"telemetry_overhead_pct\": %.2f\n"
        "}\n",
        reps, body.c_str(), renderFleetJson(fleet_100k).c_str(),
        renderFleetJson(fleet_1m).c_str(), sweep_bench.cells,
        sweep_bench.bestMs, sweep_bench.medianMs,
        sweep_bench.cellsPerSec, allocs_per_domain,
        util::allocCountEnabled() ? "true" : "false", speedup,
        obs_pct, telemetry_pct);
}

/**
 * Schema check of an emitted file: the stable keys every consumer
 * (the perf smoke test, the DESIGN.md tables) relies on must be
 * present.  Returns a failure message, or empty on success.
 */
std::string
validateJson(const std::string &text)
{
    const char *kRequired[] = {
        "\"schema\": \"suit-bench-simcore-v5\"",
        "\"reps\":",
        "\"benchmarks\":",
        "\"domain_sim_single\"",
        "\"domain_sim_noobs\"",
        "\"domain_sim_reference\"",
        "\"domain_sim_dense\"",
        "\"domain_sim_shared\"",
        "\"events_per_sec\":",
        "\"fleet\":",
        "\"fleet_100k\"",
        "\"fleet_1m\"",
        "\"sweep_grid\"",
        "\"cells_per_sec\":",
        "\"allocs_per_domain\":",
        "\"domains_per_sec\":",
        "\"speedup_vs_reference\":",
        "\"obs_overhead_disabled_pct\":",
        "\"telemetry_overhead_pct\":",
    };
    for (const char *needle : kRequired) {
        if (text.find(needle) == std::string::npos)
            return util::sformat("missing required key %s", needle);
    }
    return {};
}

int
runCheck(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        util::fatal("cannot open '%s'", path.c_str());
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    const std::string err = validateJson(text);
    if (!err.empty()) {
        std::fprintf(stderr, "%s: invalid: %s\n", path.c_str(),
                     err.c_str());
        return 1;
    }
    std::printf("%s: ok (%zu bytes)\n", path.c_str(), text.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    util::ArgParser args(
        "suit_bench_json",
        "domain-simulator benchmark record (BENCH_simcore.json)");
    args.addOption("reps", "5", "timed repetitions per scenario");
    args.addOption("out", "BENCH_simcore.json", "output path");
    args.addOption("check", "",
                   "validate an existing record instead of measuring");
    if (!args.parse(argc, argv))
        return 0;

    const std::string check = args.get("check");
    if (!check.empty())
        return runCheck(check);

    const long reps = args.getIntInRange("reps", 1, INT_MAX);

    double obs_pct = 0.0;
    double telemetry_pct = 0.0;
    const std::vector<BenchResult> results = runScenarios(
        static_cast<int>(reps), obs_pct, telemetry_pct);
    // The obs acceptance gate: disabled instrumentation must stay
    // within 2 % of the bypass path.  Only enforced at the tracked
    // record's repetition count and above — low-rep smoke runs have
    // too few pairs for the median to be trustworthy.
    if (reps >= 5) {
        SUIT_ASSERT(obs_pct >= 0.0 && obs_pct <= 2.0,
                    "disabled-obs overhead %.2f %% breaches the "
                    "0..2 %% acceptance gate",
                    obs_pct);
    }
    const double allocs_per_domain = measureAllocsPerDomain();
    const FleetBench fleet_100k =
        timeFleet("fleet_100k", 100'000, static_cast<int>(reps));
    // The million-domain scenario takes seconds per repetition; cap
    // it so --reps 25 regenerations stay minutes, not hours.
    const FleetBench fleet_1m = timeFleet(
        "fleet_1m", 1'000'000,
        std::min(static_cast<int>(reps), 3));
    const SweepBench sweep_bench =
        timeSweepGrid(static_cast<int>(reps));
    const std::string json = renderJson(
        results, fleet_100k, fleet_1m, sweep_bench,
        allocs_per_domain, static_cast<int>(reps), obs_pct,
        telemetry_pct);

    const std::string sanity = validateJson(json);
    SUIT_ASSERT(sanity.empty(), "emitted record fails own schema: %s",
                sanity.c_str());

    const std::string out = args.get("out");
    if (out == "-") {
        std::fputs(json.c_str(), stdout);
        return 0;
    }
    std::FILE *f = std::fopen(out.c_str(), "wb");
    if (!f)
        util::fatal("cannot write '%s'", out.c_str());
    std::fputs(json.c_str(), f);
    std::fclose(f);

    for (const BenchResult &r : results)
        std::fprintf(stderr, "%-22s %8.2f ms  %12.0f events/s\n",
                     r.name.c_str(), r.bestMs, r.eventsPerSec);
    std::fprintf(stderr, "%-22s %8.2f ms  %12.0f domains/s\n",
                 "fleet_100k", fleet_100k.bestMs,
                 fleet_100k.domainsPerSec);
    std::fprintf(stderr, "%-22s %8.2f ms  %12.0f domains/s\n",
                 "fleet_1m", fleet_1m.bestMs,
                 fleet_1m.domainsPerSec);
    std::fprintf(stderr, "%-22s %8.2f ms  %12.1f cells/s\n",
                 "sweep_grid", sweep_bench.bestMs,
                 sweep_bench.cellsPerSec);
    std::fprintf(stderr, "allocs/domain (steady state): %.2f%s\n",
                 allocs_per_domain,
                 util::allocCountEnabled()
                     ? ""
                     : " (alloc hook compiled out)");
    std::fprintf(stderr, "wrote %s\n", out.c_str());
    return 0;
}
