/**
 * @file
 * suit_bench_json — measure the domain-simulator hot path and write
 * the tracked BENCH_simcore.json record.
 *
 * Runs the four simulator scenarios the micro-benchmarks cover
 * (single-core SUIT on 502.gcc, the same run on the reference event
 * loop, the event-dense 525.x264, and CPU A's shared four-core
 * domain) plus the fleet-scale throughput scenario (the 100k-domain
 * demo fleet through FleetEngine on all hardware threads) with
 * wall-clock timing, and emits one JSON document:
 *
 *   {
 *     "schema": "suit-bench-simcore-v3",
 *     "reps": 5,
 *     "benchmarks": [
 *       { "name": "domain_sim_single", "events": ...,
 *         "best_ms": ..., "median_ms": ..., "events_per_sec": ... },
 *       ...
 *     ],
 *     "fleet": { "name": "fleet_100k", "domains": 100000,
 *       "best_ms": ..., "median_ms": ..., "domains_per_sec": ... },
 *     "speedup_vs_reference": ...,
 *     "obs_overhead_disabled_pct": ...
 *   }
 *
 * The obs_overhead_disabled_pct field compares the default single-core
 * scenario (obs compiled in but disabled — the shipping configuration)
 * against the same run with SimConfig::obsBypass, which skips even the
 * trace-session latch and counter publication.  It is the measured
 * cost of *having* the instrumentation, and the obs acceptance gate
 * (0..2 %).  The two configurations are measured as interleaved
 * back-to-back pairs with alternating order, and the field is the
 * median of the per-pair deltas: comparing the best times of two
 * *independently* timed scenarios let frequency and scheduler drift
 * between them swamp the sub-percent real delta (the record once
 * shipped an impossible -1.59 %).  A negative paired median means
 * the overhead is indistinguishable from zero and reports as 0.
 *
 * No timestamps or host identifiers go into the file, so regenerating
 * it on the same machine produces minimal diffs.  Examples:
 *
 *   suit_bench_json                      # writes BENCH_simcore.json
 *   suit_bench_json --reps 9 --out /tmp/b.json
 *   suit_bench_json --check BENCH_simcore.json   # schema validation
 */

#include <algorithm>
#include <chrono>
#include <climits>
#include <cstdio>
#include <string>
#include <vector>

#include "core/params.hh"
#include "fleet/engine.hh"
#include "fleet/spec.hh"
#include "runtime/session.hh"
#include "sim/domain_sim.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"
#include "util/args.hh"
#include "util/format.hh"
#include "util/logging.hh"

namespace {

using namespace suit;

/** One measured scenario. */
struct BenchResult
{
    std::string name;
    std::uint64_t events = 0;
    double bestMs = 0.0;
    double medianMs = 0.0;
    double eventsPerSec = 0.0;
};

/** Time one simulator configuration over @p reps repetitions. */
BenchResult
timeScenario(const std::string &name, const sim::SimConfig &cfg,
             const std::vector<sim::CoreWork> &work, int reps)
{
    std::uint64_t events = 0;
    for (const sim::CoreWork &w : work)
        events += w.trace->eventCount();

    std::vector<double> times_ms;
    times_ms.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        sim::DomainSimulator simulator(cfg, work);
        const sim::DomainResult result = simulator.run();
        const auto stop = std::chrono::steady_clock::now();
        SUIT_ASSERT(!result.cores.empty(), "simulation returned no cores");
        times_ms.push_back(
            std::chrono::duration<double, std::milli>(stop - start)
                .count());
    }
    std::sort(times_ms.begin(), times_ms.end());

    BenchResult out;
    out.name = name;
    out.events = events;
    out.bestMs = times_ms.front();
    out.medianMs = times_ms[times_ms.size() / 2];
    out.eventsPerSec = out.bestMs > 0.0
                           ? static_cast<double>(events) /
                                 (out.bestMs / 1e3)
                           : 0.0;
    return out;
}

/**
 * Measure the cost of having the (disabled) instrumentation: paired
 * repetitions of the same configuration with and without
 * SimConfig::obsBypass, run back to back with alternating order so
 * slow drift (thermal, scheduler, frequency) cancels within each
 * pair, reduced to the median per-pair delta.  Negative medians are
 * noise around a true near-zero overhead and clamp to 0.
 */
double
measureObsOverheadPct(const sim::SimConfig &base,
                      const std::vector<sim::CoreWork> &work, int reps)
{
    sim::SimConfig obs_cfg = base;
    obs_cfg.obsBypass = false;
    sim::SimConfig noobs_cfg = base;
    noobs_cfg.obsBypass = true;

    const auto run_once = [&](const sim::SimConfig &cfg) {
        const auto start = std::chrono::steady_clock::now();
        sim::DomainSimulator simulator(cfg, work);
        const sim::DomainResult result = simulator.run();
        const auto stop = std::chrono::steady_clock::now();
        SUIT_ASSERT(!result.cores.empty(),
                    "simulation returned no cores");
        return std::chrono::duration<double, std::milli>(stop - start)
            .count();
    };

    // Untimed warmup so the first pairs do not carry cold-cache
    // cost on whichever configuration happens to run first.
    run_once(obs_cfg);
    run_once(noobs_cfg);

    std::vector<double> deltas_pct;
    deltas_pct.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
        double obs_ms = 0.0;
        double noobs_ms = 0.0;
        if (r % 2 == 0) {
            obs_ms = run_once(obs_cfg);
            noobs_ms = run_once(noobs_cfg);
        } else {
            noobs_ms = run_once(noobs_cfg);
            obs_ms = run_once(obs_cfg);
        }
        if (noobs_ms > 0.0)
            deltas_pct.push_back(100.0 * (obs_ms / noobs_ms - 1.0));
    }
    if (deltas_pct.empty())
        return 0.0;
    std::sort(deltas_pct.begin(), deltas_pct.end());
    const double median = deltas_pct[deltas_pct.size() / 2];
    return std::max(median, 0.0);
}

/** The tracked scenario set (mirrors bench/micro_benchmarks.cc). */
std::vector<BenchResult>
runScenarios(int reps, double &obs_overhead_pct)
{
    std::vector<BenchResult> results;

    const power::CpuModel cpu_c = power::cpuC_xeon4208();
    const power::CpuModel cpu_a = power::cpuA_i9_9900k();

    // Single-core SUIT run, fast and reference paths.
    const auto &gcc = trace::profileByName("502.gcc");
    const trace::Trace gcc_trace = trace::TraceGenerator(3).generate(gcc);
    {
        sim::SimConfig cfg;
        cfg.cpu = &cpu_c;
        cfg.params = core::optimalParams(cpu_c);
        results.push_back(timeScenario(
            "domain_sim_single", cfg, {{&gcc_trace, &gcc}}, reps));
        cfg.obsBypass = true;
        results.push_back(timeScenario(
            "domain_sim_noobs", cfg, {{&gcc_trace, &gcc}}, reps));
        cfg.obsBypass = false;
        obs_overhead_pct =
            measureObsOverheadPct(cfg, {{&gcc_trace, &gcc}}, reps);
        cfg.referencePath = true;
        results.push_back(timeScenario(
            "domain_sim_reference", cfg, {{&gcc_trace, &gcc}}, reps));
    }

    // Event-dense workload (highest faultable density in the suite).
    {
        const auto &x264 = trace::profileByName("525.x264");
        const trace::Trace t = trace::TraceGenerator(5).generate(x264);
        sim::SimConfig cfg;
        cfg.cpu = &cpu_c;
        cfg.params = core::optimalParams(cpu_c);
        results.push_back(
            timeScenario("domain_sim_dense", cfg, {{&t, &x264}}, reps));
    }

    // Shared four-core domain (CPU A).
    {
        constexpr int kStreams = 4;
        std::vector<trace::Trace> traces;
        for (int s = 0; s < kStreams; ++s)
            traces.push_back(trace::TraceGenerator(3).generate(gcc, s));
        std::vector<sim::CoreWork> work;
        for (const trace::Trace &t : traces)
            work.push_back({&t, &gcc});
        sim::SimConfig cfg;
        cfg.cpu = &cpu_a;
        cfg.params = core::optimalParams(cpu_a);
        results.push_back(
            timeScenario("domain_sim_shared", cfg, work, reps));
    }

    return results;
}

/** The fleet-scale throughput scenario. */
struct FleetBench
{
    std::uint64_t domains = 0;
    double bestMs = 0.0;
    double medianMs = 0.0;
    double domainsPerSec = 0.0;
};

/**
 * Time the 100k-domain demo fleet through the FleetEngine on all
 * hardware threads.  The session (pool and trace cache) and engine
 * are rebuilt per repetition so every run pays the full cost a fresh
 * suit_fleet invocation would.
 */
FleetBench
timeFleet(int reps)
{
    constexpr std::uint64_t kDomains = 100'000;
    std::vector<double> times_ms;
    times_ms.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        runtime::Session session;
        fleet::FleetEngine engine(session,
                                  fleet::FleetSpec::demo(kDomains));
        const fleet::FleetOutcome outcome = engine.run({});
        const auto stop = std::chrono::steady_clock::now();
        SUIT_ASSERT(outcome.complete() &&
                        outcome.totals.totalDomains() == kDomains,
                    "fleet benchmark run incomplete");
        times_ms.push_back(
            std::chrono::duration<double, std::milli>(stop - start)
                .count());
    }
    std::sort(times_ms.begin(), times_ms.end());

    FleetBench out;
    out.domains = kDomains;
    out.bestMs = times_ms.front();
    out.medianMs = times_ms[times_ms.size() / 2];
    out.domainsPerSec =
        out.bestMs > 0.0 ? static_cast<double>(kDomains) /
                               (out.bestMs / 1e3)
                         : 0.0;
    return out;
}

std::string
renderJson(const std::vector<BenchResult> &results,
           const FleetBench &fleet_bench, int reps, double obs_pct)
{
    double fast_ms = 0.0;
    double ref_ms = 0.0;
    std::string body;
    for (const BenchResult &r : results) {
        if (r.name == "domain_sim_single")
            fast_ms = r.bestMs;
        if (r.name == "domain_sim_reference")
            ref_ms = r.bestMs;
        if (!body.empty())
            body += ",\n";
        body += util::sformat(
            "    { \"name\": \"%s\", \"events\": %llu, "
            "\"best_ms\": %.3f, \"median_ms\": %.3f, "
            "\"events_per_sec\": %.0f }",
            r.name.c_str(),
            static_cast<unsigned long long>(r.events), r.bestMs,
            r.medianMs, r.eventsPerSec);
    }
    const double speedup = fast_ms > 0.0 ? ref_ms / fast_ms : 0.0;
    return util::sformat(
        "{\n"
        "  \"schema\": \"suit-bench-simcore-v3\",\n"
        "  \"reps\": %d,\n"
        "  \"benchmarks\": [\n%s\n  ],\n"
        "  \"fleet\": { \"name\": \"fleet_100k\", "
        "\"domains\": %llu, \"best_ms\": %.1f, "
        "\"median_ms\": %.1f, \"domains_per_sec\": %.0f },\n"
        "  \"speedup_vs_reference\": %.2f,\n"
        "  \"obs_overhead_disabled_pct\": %.2f\n"
        "}\n",
        reps, body.c_str(),
        static_cast<unsigned long long>(fleet_bench.domains),
        fleet_bench.bestMs, fleet_bench.medianMs,
        fleet_bench.domainsPerSec, speedup, obs_pct);
}

/**
 * Schema check of an emitted file: the stable keys every consumer
 * (the perf smoke test, the DESIGN.md tables) relies on must be
 * present.  Returns a failure message, or empty on success.
 */
std::string
validateJson(const std::string &text)
{
    const char *kRequired[] = {
        "\"schema\": \"suit-bench-simcore-v3\"",
        "\"reps\":",
        "\"benchmarks\":",
        "\"domain_sim_single\"",
        "\"domain_sim_noobs\"",
        "\"domain_sim_reference\"",
        "\"domain_sim_dense\"",
        "\"domain_sim_shared\"",
        "\"events_per_sec\":",
        "\"fleet\":",
        "\"fleet_100k\"",
        "\"domains_per_sec\":",
        "\"speedup_vs_reference\":",
        "\"obs_overhead_disabled_pct\":",
    };
    for (const char *needle : kRequired) {
        if (text.find(needle) == std::string::npos)
            return util::sformat("missing required key %s", needle);
    }
    return {};
}

int
runCheck(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        util::fatal("cannot open '%s'", path.c_str());
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    const std::string err = validateJson(text);
    if (!err.empty()) {
        std::fprintf(stderr, "%s: invalid: %s\n", path.c_str(),
                     err.c_str());
        return 1;
    }
    std::printf("%s: ok (%zu bytes)\n", path.c_str(), text.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    util::ArgParser args(
        "suit_bench_json",
        "domain-simulator benchmark record (BENCH_simcore.json)");
    args.addOption("reps", "5", "timed repetitions per scenario");
    args.addOption("out", "BENCH_simcore.json", "output path");
    args.addOption("check", "",
                   "validate an existing record instead of measuring");
    if (!args.parse(argc, argv))
        return 0;

    const std::string check = args.get("check");
    if (!check.empty())
        return runCheck(check);

    const long reps = args.getIntInRange("reps", 1, INT_MAX);

    double obs_pct = 0.0;
    const std::vector<BenchResult> results =
        runScenarios(static_cast<int>(reps), obs_pct);
    const FleetBench fleet_bench =
        timeFleet(static_cast<int>(reps));
    const std::string json = renderJson(
        results, fleet_bench, static_cast<int>(reps), obs_pct);

    const std::string sanity = validateJson(json);
    SUIT_ASSERT(sanity.empty(), "emitted record fails own schema: %s",
                sanity.c_str());

    const std::string out = args.get("out");
    if (out == "-") {
        std::fputs(json.c_str(), stdout);
        return 0;
    }
    std::FILE *f = std::fopen(out.c_str(), "wb");
    if (!f)
        util::fatal("cannot write '%s'", out.c_str());
    std::fputs(json.c_str(), f);
    std::fclose(f);

    for (const BenchResult &r : results)
        std::fprintf(stderr, "%-22s %8.2f ms  %12.0f events/s\n",
                     r.name.c_str(), r.bestMs, r.eventsPerSec);
    std::fprintf(stderr, "%-22s %8.2f ms  %12.0f domains/s\n",
                 "fleet_100k", fleet_bench.bestMs,
                 fleet_bench.domainsPerSec);
    std::fprintf(stderr, "wrote %s\n", out.c_str());
    return 0;
}
