/**
 * @file
 * suit_trace — generate, inspect and convert instruction traces.
 *
 * Subcommands (first positional argument):
 *   gen      generate a synthetic trace from a built-in profile
 *   info     print statistics and the gap histogram of a trace file
 *   convert  re-encode a trace between the .sft / .sfb formats
 *
 * Examples:
 *   suit_trace gen --workload Nginx --seed 3 --out nginx.sfb
 *   suit_trace info nginx.sfb
 *   suit_trace convert nginx.sfb nginx.sft
 */

#include <climits>
#include <cstdio>

#include "trace/generator.hh"
#include "trace/io.hh"
#include "trace/profile.hh"
#include "util/args.hh"
#include "util/logging.hh"

namespace {

using namespace suit;

int
cmdGen(const util::ArgParser &args)
{
    const auto &profile = trace::profileByName(args.get("workload"));
    const trace::Trace t =
        trace::TraceGenerator(
            static_cast<std::uint64_t>(
                args.getIntInRange("seed", 0, LONG_MAX)))
            .generate(profile,
                      static_cast<int>(
                          args.getIntInRange("stream", 0, INT_MAX)));
    const std::string &out = args.get("out");
    if (out.empty())
        util::fatal("gen needs --out <file.sft|file.sfb>");
    trace::saveTrace(t, out);
    std::printf("wrote %zu events (%llu instructions) to %s\n",
                t.eventCount(),
                static_cast<unsigned long long>(
                    t.totalInstructions()),
                out.c_str());
    return 0;
}

int
cmdInfo(const util::ArgParser &args)
{
    if (args.positional().size() < 2)
        util::fatal("info needs a trace file argument");
    const trace::Trace t = trace::loadTrace(args.positional()[1]);
    const trace::TraceStats stats = trace::TraceStats::compute(t);

    std::printf("name          %s\n", t.name().c_str());
    std::printf("instructions  %llu\n",
                static_cast<unsigned long long>(
                    t.totalInstructions()));
    std::printf("ipc           %.3f\n", t.ipc());
    std::printf("event weight  %g\n", t.eventWeight());
    std::printf("events        %zu (1 per %.3e instructions)\n",
                t.eventCount(),
                t.eventCount()
                    ? static_cast<double>(t.totalInstructions()) /
                          static_cast<double>(t.eventCount())
                    : 0.0);
    std::printf("mean gap      %.1f   max gap %.3e\n\n",
                stats.meanGap, static_cast<double>(stats.maxGap));

    std::printf("per-instruction counts:\n");
    for (auto kind : isa::allFaultableKinds()) {
        const auto n =
            stats.kindCounts[static_cast<std::size_t>(kind)];
        if (n > 0)
            std::printf("  %-12s %llu\n", isa::toString(kind),
                        static_cast<unsigned long long>(n));
    }
    std::printf("\ngap-size histogram (decades):\n%s",
                stats.gapHistogram.render(48).c_str());
    return 0;
}

int
cmdConvert(const util::ArgParser &args)
{
    if (args.positional().size() < 3)
        util::fatal("convert needs <in> and <out> arguments");
    const trace::Trace t = trace::loadTrace(args.positional()[1]);
    trace::saveTrace(t, args.positional()[2]);
    std::printf("converted %s -> %s (%zu events)\n",
                args.positional()[1].c_str(),
                args.positional()[2].c_str(), t.eventCount());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    util::ArgParser args(
        "suit_trace",
        "generate / inspect / convert faultable-instruction traces");
    args.addOption("workload", "557.xz", "profile for 'gen'");
    args.addOption("seed", "1", "generator seed for 'gen'");
    args.addOption("stream", "0", "stream id for 'gen'");
    args.addOption("out", "", "output file for 'gen'");
    if (!args.parse(argc, argv))
        return 0;

    if (args.positional().empty())
        util::fatal("need a subcommand: gen, info or convert");
    const std::string &cmd = args.positional()[0];
    if (cmd == "gen")
        return cmdGen(args);
    if (cmd == "info")
        return cmdInfo(args);
    if (cmd == "convert")
        return cmdConvert(args);
    util::fatal("unknown subcommand '%s'", cmd.c_str());
}
