/**
 * @file
 * suit_sweep — run a user-specified Cartesian configuration grid on
 * the suit::exec SweepEngine and emit one CSV row per cell.
 *
 * The grid is cpu x cores x strategy x offset x workload x rep; each
 * axis takes a comma-separated list.  Repetition r > 0 of cell i
 * draws its seed from exec::deriveSeed(root, cell index), so
 * re-running the same grid with the same --seed is bit-identical for
 * any --jobs value.
 *
 * Long campaigns are crash-safe: with --checkpoint every finished
 * cell is journaled to disk (atomic write-temp-then-rename, so a
 * kill at any instant leaves a valid journal), and --resume re-runs
 * only the cells the journal does not cover — the final CSV is
 * byte-identical to an uninterrupted run.  Ctrl-C requests a
 * graceful stop: in-flight cells finish and are journaled, the rest
 * are skipped, and the exit code is 130 (a second Ctrl-C kills
 * immediately; the journal stays valid).  --deadline-s arms a
 * wall-clock budget with the same graceful-stop semantics, and
 * --trace-cache-mb bounds the session's trace cache (LRU eviction;
 * evicted traces regenerate bit-identically).  A throwing cell is
 * retried
 * --retries times and then recorded as failed instead of aborting
 * the sweep, unless --strict restores fail-fast.
 *
 * Examples:
 *   suit_sweep                               # CPU C, fV, SPEC suite
 *   suit_sweep --cpu A,B,C --strategy e,fV --offset -70,-97 \
 *              --workload spec --jobs 8 --out sweep.csv
 *   suit_sweep --cpu A --cores 1,2,4 --workload Nginx,VLC --reps 5
 *   suit_sweep --workload all --checkpoint sweep.ckpt --out s.csv
 *   suit_sweep --workload all --checkpoint sweep.ckpt --resume \
 *              --out s.csv                   # after an interruption
 */

#include <atomic>
#include <climits>
#include <cstdio>
#include <string>
#include <vector>

#include "core/params.hh"
#include "core/strategy.hh"
#include "exec/checkpoint.hh"
#include "exec/sweep.hh"
#include "obs/registry.hh"
#include "obs/setup.hh"
#include "power/cpu_model.hh"
#include "runtime/run_context.hh"
#include "runtime/session.hh"
#include "sim/evaluation.hh"
#include "trace/profile.hh"
#include "util/args.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/sigint.hh"

namespace {

using namespace suit;
using exec::SweepEngine;
using exec::SweepJob;

/** Split a comma-separated option value into its items. */
std::vector<std::string>
splitList(const std::string &value)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= value.size()) {
        const std::size_t comma = value.find(',', start);
        const std::string item =
            value.substr(start, comma == std::string::npos
                                    ? std::string::npos
                                    : comma - start);
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

/** Checked parse of one --cores list item (must be >= 1). */
int
coreCountByName(const std::string &value)
{
    long cores = 0;
    if (util::tryParseLong(value, cores) != util::ParseStatus::Ok)
        util::fatal("--cores expects positive integers, got '%s'",
                    value.c_str());
    if (cores < 1)
        util::fatal("--cores values must be >= 1, got %ld", cores);
    if (cores > 1024)
        util::fatal("--cores value %ld is not a plausible core "
                    "count",
                    cores);
    return static_cast<int>(cores);
}

/** Checked parse of one --offset list item (mV). */
double
offsetByName(const std::string &value)
{
    double offset = 0.0;
    if (util::tryParseDouble(value, offset) != util::ParseStatus::Ok)
        util::fatal("--offset expects numbers in mV, got '%s'",
                    value.c_str());
    return offset;
}

power::CpuModel
cpuByName(const std::string &name)
{
    if (name == "A" || name == "i9-9900K")
        return power::cpuA_i9_9900k();
    if (name == "B" || name == "7700X")
        return power::cpuB_ryzen7700x();
    if (name == "C" || name == "4208")
        return power::cpuC_xeon4208();
    if (name == "i5" || name == "i5-1035G1")
        return power::cpu_i5_1035g1();
    util::fatal("unknown CPU '%s' (use A, B, C or i5)", name.c_str());
}

core::StrategyKind
strategyByName(const std::string &name)
{
    if (name == "e" || name == "emulation")
        return core::StrategyKind::Emulation;
    if (name == "f" || name == "frequency")
        return core::StrategyKind::Frequency;
    if (name == "V" || name == "voltage")
        return core::StrategyKind::Voltage;
    if (name == "fV" || name == "combined")
        return core::StrategyKind::CombinedFv;
    if (name == "hybrid" || name == "e+fV")
        return core::StrategyKind::Hybrid;
    util::fatal("unknown strategy '%s' (e, f, V, fV, hybrid)",
                name.c_str());
}

std::vector<trace::WorkloadProfile>
workloadsByName(const std::string &value)
{
    if (value == "spec")
        return trace::specProfiles();
    if (value == "all")
        return trace::allProfiles();
    std::vector<trace::WorkloadProfile> out;
    for (const std::string &name : splitList(value))
        out.push_back(trace::profileByName(name));
    return out;
}

/** CSV metadata of one cell, parallel to the job list. */
struct CellMeta
{
    std::string cpu;
    int cores;
    std::string strategy;
    double offsetMv;
    std::string workload;
    std::uint64_t seed;
    long rep;
};

} // namespace

int
main(int argc, char **argv)
{
    util::ArgParser args(
        "suit_sweep",
        "run a configuration grid in parallel, emit CSV");
    args.addOption("cpu", "C", "CPU models (comma list of A, B, C, i5)");
    args.addOption("cores", "1",
                   "utilised-core counts (comma list; shared-domain "
                   "CPUs only)");
    args.addOption("strategy", "fV",
                   "operating strategies (comma list of e, f, V, fV, "
                   "hybrid)");
    args.addOption("offset", "-97",
                   "undervolt offsets in mV (comma list)");
    args.addOption("workload", "spec",
                   "workloads: comma list of names, 'spec' or 'all'");
    args.addOption("reps", "1",
                   "repetitions per cell with derived seeds");
    args.addOption("seed", "1", "root seed of the grid");
    args.addOption("out", "-", "output CSV file ('-' = stdout)");
    args.addOption("jobs", "0",
                   "parallel sweep workers (0 = hardware threads, "
                   "1 = serial reference)");
    args.addFlag("pin",
                 "pin each worker thread to a CPU (cache locality "
                 "on dedicated machines; unsupported platforms warn "
                 "and continue unpinned)");
    args.addOption("checkpoint", "",
                   "journal completed cells to this file "
                   "(crash-safe)");
    args.addOption("checkpoint-flush", "1",
                   "flush the checkpoint journal every N cells "
                   "(1 = after every cell; larger batches trade "
                   "re-running at most N-1 cells after a crash for "
                   "fewer fsyncs)");
    args.addFlag("resume",
                 "load the --checkpoint journal and run only the "
                 "missing cells");
    args.addOption("retries", "0",
                   "re-attempts for a failing cell before recording "
                   "it as failed");
    args.addFlag("strict",
                 "fail fast: abort the sweep on the first cell "
                 "failure");
    args.addOption("stop-after", "0",
                   "stop gracefully after N completed cells (testing "
                   "aid; 0 = run to completion)");
    args.addOption("deadline-s", "0",
                   "wall-clock budget in seconds; on expiry the "
                   "sweep stops gracefully like Ctrl-C (0 = none)");
    args.addOption("trace-cache-mb", "256",
                   "trace cache capacity in MiB (LRU eviction above "
                   "it)");
    args.addFlag("nosimd", "model binaries compiled without SIMD");
    obs::addCliOptions(args);
    if (!args.parse(argc, argv))
        return 0;

    // Declared before the SweepEngine so worker threads never outlive
    // the trace session; flushes --metrics/--trace-out at exit.
    obs::CliScope obs_scope(args);

    // Own every axis value for the duration of the sweep (jobs hold
    // pointers into these).
    std::vector<power::CpuModel> cpus;
    for (const std::string &name : splitList(args.get("cpu")))
        cpus.push_back(cpuByName(name));
    const std::vector<trace::WorkloadProfile> profiles =
        workloadsByName(args.get("workload"));
    std::vector<int> core_list;
    for (const std::string &value : splitList(args.get("cores")))
        core_list.push_back(coreCountByName(value));
    const std::vector<std::string> strategy_list =
        splitList(args.get("strategy"));
    std::vector<double> offset_list;
    for (const std::string &value : splitList(args.get("offset")))
        offset_list.push_back(offsetByName(value));
    const long reps = args.getIntInRange("reps", 1, INT_MAX);
    const std::uint64_t root = static_cast<std::uint64_t>(
        args.getIntInRange("seed", 0, LONG_MAX));
    if (cpus.empty() || profiles.empty() || core_list.empty() ||
        strategy_list.empty() || offset_list.empty() || reps < 1)
        util::fatal("every grid axis needs at least one value");

    const long retries = args.getIntInRange("retries", 0, INT_MAX);
    const long stop_after =
        args.getIntInRange("stop-after", 0, LONG_MAX);
    const double deadline_s = args.getDouble("deadline-s");
    if (deadline_s < 0.0)
        util::fatal("--deadline-s must be >= 0, got %g", deadline_s);
    const long cache_mb =
        args.getIntInRange("trace-cache-mb", 1, 1 << 20);
    if (args.getFlag("resume") && args.get("checkpoint").empty())
        util::fatal("--resume needs --checkpoint <path>");

    // Enumerate the grid in deterministic nested order.
    std::vector<SweepJob> jobs;
    std::vector<CellMeta> meta;
    std::uint64_t cell = 0;
    for (const power::CpuModel &cpu : cpus) {
        for (const int cores : core_list) {
            for (const std::string &strat_s : strategy_list) {
                const core::StrategyKind strategy =
                    strategyByName(strat_s);
                for (const double offset : offset_list) {
                    for (const auto &p : profiles) {
                        for (long r = 0; r < reps; ++r, ++cell) {
                            sim::EvalConfig cfg;
                            cfg.cpu = &cpu;
                            cfg.cores = cores;
                            cfg.offsetMv = offset;
                            cfg.strategy = strategy;
                            cfg.params = core::optimalParams(cpu);
                            cfg.mode =
                                args.getFlag("nosimd")
                                    ? sim::RunMode::NoSimdCompile
                                    : sim::RunMode::Suit;
                            cfg.seed =
                                r == 0 ? root
                                       : exec::deriveSeed(root, cell);
                            jobs.push_back({p.name, cfg, &p});
                            meta.push_back({cpu.label(), cores,
                                            strat_s, offset, p.name,
                                            cfg.seed, r});
                        }
                    }
                }
            }
        }
    }

    util::inform("suit_sweep: %zu cells on %s", jobs.size(),
                 args.get("jobs") == "1" ? "1 worker (serial)"
                                         : "parallel workers");

    // First Ctrl-C: graceful stop; second: immediate kill.
    util::SigintGuard sigint;
    std::atomic<std::size_t> completed{0};

    exec::RunPolicy policy;
    policy.retries = static_cast<int>(retries);
    policy.strict = args.getFlag("strict");
    if (stop_after > 0) {
        policy.onCellDone = [&, stop_after](std::size_t) {
            if (completed.fetch_add(1) + 1 >=
                static_cast<std::size_t>(stop_after))
                sigint.request();
        };
    }

    runtime::SessionConfig session_cfg;
    session_cfg.jobs =
        static_cast<int>(args.getIntInRange("jobs", 0, INT_MAX));
    session_cfg.traceCacheBytes =
        static_cast<std::size_t>(cache_mb) << 20;
    session_cfg.pinWorkers = args.getFlag("pin");
    session_cfg.telemetry = obs_scope.telemetryConfig();
    runtime::Session session(session_cfg);
    obs_scope.attachTelemetry(session.telemetry());
    runtime::RunContext ctx;
    ctx.checkpoint.path = args.get("checkpoint");
    ctx.checkpoint.resume = args.getFlag("resume");
    ctx.checkpoint.flushInterval = static_cast<int>(
        args.getIntInRange("checkpoint-flush", 1, INT_MAX));
    ctx.token().linkExternal(sigint.flag());
    if (deadline_s > 0.0)
        ctx.setDeadlineAfter(deadline_s);

    SweepEngine engine(session);
    exec::SweepOutcome outcome;
    try {
        outcome = engine.run(jobs, ctx, policy);
    } catch (const exec::JournalError &e) {
        util::fatal("%s", e.what());
    }

    std::FILE *out = stdout;
    if (args.get("out") != "-") {
        out = std::fopen(args.get("out").c_str(), "w");
        if (out == nullptr)
            util::fatal("cannot open '%s' for writing",
                        args.get("out").c_str());
    }

    std::fprintf(out,
                 "cpu,cores,strategy,offset_mv,workload,seed,rep,"
                 "perf_delta,power_delta,eff_delta,on_efficient,"
                 "cf_share,cv_share,traps,emulations,pstate_switches,"
                 "thrash_detections\n");
    for (std::size_t i = 0; i < outcome.results.size(); ++i) {
        if (!outcome.done[i])
            continue; // failed or skipped: reported on stderr below
        const CellMeta &m = meta[i];
        const sim::DomainResult &r = outcome.results[i];
        std::fprintf(
            out,
            "%s,%d,%s,%g,%s,%llu,%ld,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g,"
            "%llu,%llu,%llu,%llu\n",
            m.cpu.c_str(), m.cores, m.strategy.c_str(), m.offsetMv,
            m.workload.c_str(),
            static_cast<unsigned long long>(m.seed), m.rep,
            r.perfDelta(), r.powerDelta(), r.efficiencyDelta(),
            r.efficientShare, r.cfShare, r.cvShare,
            static_cast<unsigned long long>(r.traps),
            static_cast<unsigned long long>(r.emulations),
            static_cast<unsigned long long>(r.pstateSwitches),
            static_cast<unsigned long long>(r.thrashDetections));
    }
    if (out != stdout)
        std::fclose(out);

    // Footer goes to stderr so it never pollutes CSV-on-stdout.
    // Hit rate is hits/(hits+misses): misses counts every
    // generation, so the rate stays correct when LRU eviction makes
    // a trace regenerate (entries() only counts residents).
    const sim::TraceCache &cache = engine.traceCache();
    const std::uint64_t trace_hits = cache.hits();
    const std::uint64_t trace_misses = cache.misses();
    const std::uint64_t trace_gets = trace_hits + trace_misses;
    const double hit_rate =
        trace_gets > 0
            ? 100.0 * static_cast<double>(trace_hits) /
                  static_cast<double>(trace_gets)
            : 0.0;
    std::fprintf(stderr,
                 "sweep execution (%d worker%s, %zu jobs, %zu run, "
                 "%zu restored, %llu traces generated, %llu cache "
                 "hits, %llu evicted, %.1f%% hit rate):\n%s",
                 engine.jobs(), engine.jobs() == 1 ? "" : "s",
                 jobs.size(), outcome.executed, outcome.restored,
                 static_cast<unsigned long long>(trace_misses),
                 static_cast<unsigned long long>(trace_hits),
                 static_cast<unsigned long long>(cache.evictions()),
                 hit_rate, engine.workerFooter().c_str());
    if (obs::metrics().enabled()) {
        std::fprintf(stderr, "\nobservability metrics:\n%s",
                     obs::metrics().renderTable().c_str());
    }
    for (const exec::CellFailure &f : outcome.failures)
        std::fprintf(stderr,
                     "failed cell %zu (%s, %s/%s, seed %llu): %s "
                     "(%d attempt%s)\n",
                     f.index, f.label.c_str(),
                     meta[f.index].cpu.c_str(),
                     meta[f.index].strategy.c_str(),
                     static_cast<unsigned long long>(
                         meta[f.index].seed),
                     f.error.c_str(), f.attempts,
                     f.attempts == 1 ? "" : "s");
    if (outcome.interrupted) {
        obs_scope.noteInterruption(
            sigint.requested() ? "sigint" : "deadline");
        std::fprintf(stderr,
                     "sweep interrupted: %zu cell%s not run; "
                     "re-run with --checkpoint %s --resume to "
                     "finish\n",
                     outcome.skipped, outcome.skipped == 1 ? "" : "s",
                     ctx.checkpoint.path.empty()
                         ? "<path>"
                         : ctx.checkpoint.path.c_str());
        return 130;
    }
    return outcome.failures.empty() ? 0 : 2;
}
