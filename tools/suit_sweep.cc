/**
 * @file
 * suit_sweep — run a user-specified Cartesian configuration grid on
 * the suit::exec SweepEngine and emit one CSV row per cell.
 *
 * The grid is cpu x cores x strategy x offset x workload x rep; each
 * axis takes a comma-separated list.  Repetition r > 0 of cell i
 * draws its seed from exec::deriveSeed(root, cell index), so
 * re-running the same grid with the same --seed is bit-identical for
 * any --jobs value.
 *
 * Examples:
 *   suit_sweep                               # CPU C, fV, SPEC suite
 *   suit_sweep --cpu A,B,C --strategy e,fV --offset -70,-97 \
 *              --workload spec --jobs 8 --out sweep.csv
 *   suit_sweep --cpu A --cores 1,2,4 --workload Nginx,VLC --reps 5
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/params.hh"
#include "core/strategy.hh"
#include "exec/sweep.hh"
#include "power/cpu_model.hh"
#include "sim/evaluation.hh"
#include "trace/profile.hh"
#include "util/args.hh"
#include "util/format.hh"
#include "util/logging.hh"

namespace {

using namespace suit;
using exec::SweepEngine;
using exec::SweepJob;

/** Split a comma-separated option value into its items. */
std::vector<std::string>
splitList(const std::string &value)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= value.size()) {
        const std::size_t comma = value.find(',', start);
        const std::string item =
            value.substr(start, comma == std::string::npos
                                    ? std::string::npos
                                    : comma - start);
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

power::CpuModel
cpuByName(const std::string &name)
{
    if (name == "A" || name == "i9-9900K")
        return power::cpuA_i9_9900k();
    if (name == "B" || name == "7700X")
        return power::cpuB_ryzen7700x();
    if (name == "C" || name == "4208")
        return power::cpuC_xeon4208();
    if (name == "i5" || name == "i5-1035G1")
        return power::cpu_i5_1035g1();
    util::fatal("unknown CPU '%s' (use A, B, C or i5)", name.c_str());
}

core::StrategyKind
strategyByName(const std::string &name)
{
    if (name == "e" || name == "emulation")
        return core::StrategyKind::Emulation;
    if (name == "f" || name == "frequency")
        return core::StrategyKind::Frequency;
    if (name == "V" || name == "voltage")
        return core::StrategyKind::Voltage;
    if (name == "fV" || name == "combined")
        return core::StrategyKind::CombinedFv;
    if (name == "hybrid" || name == "e+fV")
        return core::StrategyKind::Hybrid;
    util::fatal("unknown strategy '%s' (e, f, V, fV, hybrid)",
                name.c_str());
}

std::vector<trace::WorkloadProfile>
workloadsByName(const std::string &value)
{
    if (value == "spec")
        return trace::specProfiles();
    if (value == "all")
        return trace::allProfiles();
    std::vector<trace::WorkloadProfile> out;
    for (const std::string &name : splitList(value))
        out.push_back(trace::profileByName(name));
    return out;
}

/** CSV metadata of one cell, parallel to the job list. */
struct CellMeta
{
    std::string cpu;
    int cores;
    std::string strategy;
    double offsetMv;
    std::string workload;
    std::uint64_t seed;
    long rep;
};

} // namespace

int
main(int argc, char **argv)
{
    util::ArgParser args(
        "suit_sweep",
        "run a configuration grid in parallel, emit CSV");
    args.addOption("cpu", "C", "CPU models (comma list of A, B, C, i5)");
    args.addOption("cores", "1",
                   "utilised-core counts (comma list; shared-domain "
                   "CPUs only)");
    args.addOption("strategy", "fV",
                   "operating strategies (comma list of e, f, V, fV, "
                   "hybrid)");
    args.addOption("offset", "-97",
                   "undervolt offsets in mV (comma list)");
    args.addOption("workload", "spec",
                   "workloads: comma list of names, 'spec' or 'all'");
    args.addOption("reps", "1",
                   "repetitions per cell with derived seeds");
    args.addOption("seed", "1", "root seed of the grid");
    args.addOption("out", "-", "output CSV file ('-' = stdout)");
    args.addOption("jobs", "0",
                   "parallel sweep workers (0 = hardware threads, "
                   "1 = serial reference)");
    args.addFlag("nosimd", "model binaries compiled without SIMD");
    if (!args.parse(argc, argv))
        return 0;

    // Own every axis value for the duration of the sweep (jobs hold
    // pointers into these).
    std::vector<power::CpuModel> cpus;
    for (const std::string &name : splitList(args.get("cpu")))
        cpus.push_back(cpuByName(name));
    const std::vector<trace::WorkloadProfile> profiles =
        workloadsByName(args.get("workload"));
    const std::vector<std::string> core_list =
        splitList(args.get("cores"));
    const std::vector<std::string> strategy_list =
        splitList(args.get("strategy"));
    const std::vector<std::string> offset_list =
        splitList(args.get("offset"));
    const long reps = args.getInt("reps");
    const std::uint64_t root =
        static_cast<std::uint64_t>(args.getInt("seed"));
    if (cpus.empty() || profiles.empty() || core_list.empty() ||
        strategy_list.empty() || offset_list.empty() || reps < 1)
        util::fatal("every grid axis needs at least one value");

    // Enumerate the grid in deterministic nested order.
    std::vector<SweepJob> jobs;
    std::vector<CellMeta> meta;
    std::uint64_t cell = 0;
    for (const power::CpuModel &cpu : cpus) {
        for (const std::string &cores_s : core_list) {
            const int cores = static_cast<int>(std::stol(cores_s));
            for (const std::string &strat_s : strategy_list) {
                const core::StrategyKind strategy =
                    strategyByName(strat_s);
                for (const std::string &off_s : offset_list) {
                    const double offset = std::stod(off_s);
                    for (const auto &p : profiles) {
                        for (long r = 0; r < reps; ++r, ++cell) {
                            sim::EvalConfig cfg;
                            cfg.cpu = &cpu;
                            cfg.cores = cores;
                            cfg.offsetMv = offset;
                            cfg.strategy = strategy;
                            cfg.params = core::optimalParams(cpu);
                            cfg.mode =
                                args.getFlag("nosimd")
                                    ? sim::RunMode::NoSimdCompile
                                    : sim::RunMode::Suit;
                            cfg.seed =
                                r == 0 ? root
                                       : exec::deriveSeed(root, cell);
                            jobs.push_back({p.name, cfg, &p});
                            meta.push_back({cpu.label(), cores,
                                            strat_s, offset, p.name,
                                            cfg.seed, r});
                        }
                    }
                }
            }
        }
    }

    util::inform("suit_sweep: %zu cells on %s", jobs.size(),
                 args.get("jobs") == "1" ? "1 worker (serial)"
                                         : "parallel workers");

    SweepEngine engine(
        {static_cast<int>(args.getInt("jobs")), 0});
    const std::vector<sim::DomainResult> results = engine.run(jobs);

    std::FILE *out = stdout;
    if (args.get("out") != "-") {
        out = std::fopen(args.get("out").c_str(), "w");
        if (out == nullptr)
            util::fatal("cannot open '%s' for writing",
                        args.get("out").c_str());
    }

    std::fprintf(out,
                 "cpu,cores,strategy,offset_mv,workload,seed,rep,"
                 "perf_delta,power_delta,eff_delta,on_efficient,"
                 "cf_share,cv_share,traps,emulations,pstate_switches,"
                 "thrash_detections\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const CellMeta &m = meta[i];
        const sim::DomainResult &r = results[i];
        std::fprintf(
            out,
            "%s,%d,%s,%g,%s,%llu,%ld,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g,"
            "%llu,%llu,%llu,%llu\n",
            m.cpu.c_str(), m.cores, m.strategy.c_str(), m.offsetMv,
            m.workload.c_str(),
            static_cast<unsigned long long>(m.seed), m.rep,
            r.perfDelta(), r.powerDelta(), r.efficiencyDelta(),
            r.efficientShare, r.cfShare, r.cvShare,
            static_cast<unsigned long long>(r.traps),
            static_cast<unsigned long long>(r.emulations),
            static_cast<unsigned long long>(r.pstateSwitches),
            static_cast<unsigned long long>(r.thrashDetections));
    }
    if (out != stdout)
        std::fclose(out);

    // Footer goes to stderr so it never pollutes CSV-on-stdout.
    std::fprintf(stderr,
                 "sweep execution (%d worker%s, %zu jobs, %zu traces "
                 "generated, %llu cache hits):\n%s",
                 engine.jobs(), engine.jobs() == 1 ? "" : "s",
                 jobs.size(), engine.traceCache().entries(),
                 static_cast<unsigned long long>(
                     engine.traceCache().hits()),
                 engine.workerFooter().c_str());
    return 0;
}
