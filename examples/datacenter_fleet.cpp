/**
 * @file
 * Data-center scenario: a fleet of SUIT-capable servers running a
 * mix of workloads — the paper's motivating use case (Sec. 3.1: data
 * centers replace CPUs long before the 10-year aging guardband
 * matters).
 *
 * This example is a thin wrapper over the suit::fleet subsystem: it
 * takes the built-in five-rack demo fleet (heterogeneous CPUs,
 * per-tenant strategies and offsets), simulates every domain through
 * a serial FleetEngine run, and prints the TCO/energy report.  The
 * suit_fleet tool runs the same scenario at 10^5-10^6 domains with
 * worker threads, checkpoints and JSON reports.
 */

#include <cstdio>

#include "fleet/engine.hh"
#include "fleet/report.hh"
#include "fleet/spec.hh"
#include "runtime/session.hh"

int
main()
{
    using namespace suit;

    std::printf("SUIT example — data-center fleet\n\n");

    fleet::FleetSpec spec = fleet::FleetSpec::demo(1000);
    // Serial reference session; suit_fleet scales the same engine
    // out across worker threads.
    runtime::Session session({1, 0});
    fleet::FleetEngine engine(session, spec);

    const fleet::FleetOutcome outcome = engine.run();

    const std::string report =
        fleet::renderReportTable(engine.spec(), outcome.totals);
    std::fwrite(report.data(), 1, report.size(), stdout);
    std::printf("\nAll savings come without touching the aging or "
                "temperature guardbands.\nScale it up: "
                "build/tools/suit_fleet --domains 1000000 --jobs 16\n");
    return 0;
}
