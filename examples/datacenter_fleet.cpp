/**
 * @file
 * Data-center scenario: a fleet of SUIT-capable servers running a
 * mix of workloads.  For every server the OS picks the operating
 * strategy the paper's co-design allows it to choose dynamically
 * (Sec. 6.6: emulation where traps are rare, curve switching where
 * they burst), and the example aggregates the fleet-wide energy
 * savings — the paper's motivating use case (Sec. 3.1: data centers
 * replace CPUs long before the 10-year aging guardband matters).
 */

#include <cstdio>
#include <vector>

#include "core/controller.hh"
#include "core/params.hh"
#include "sim/evaluation.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main()
{
    using namespace suit;

    std::printf("SUIT example — data-center fleet\n\n");

    const power::CpuModel cpu = power::cpuC_xeon4208();
    const core::StrategyParams params = core::optimalParams(cpu);
    const double offset = -97.0;

    struct Rack
    {
        const char *workload;
        int servers;
    };
    const std::vector<Rack> fleet = {
        {"Nginx", 40},        // front-end TLS terminators
        {"557.xz", 25},       // log compression
        {"502.gcc", 20},      // CI build farm
        {"526.blender", 10},  // render farm
        {"520.omnetpp", 5},   // network simulation
    };

    util::TablePrinter t({"Rack", "Servers", "Strategy", "Perf",
                          "Power", "Eff", "kW before", "kW after"});

    double kw_before = 0.0, kw_after = 0.0;
    double weighted_perf = 0.0;
    int total_servers = 0;

    const trace::TraceGenerator gen(7);
    for (const Rack &rack : fleet) {
        const auto &profile = trace::profileByName(rack.workload);

        // The OS inspects a representative trace and picks the
        // strategy (Sec. 6.6/6.8).
        const trace::Trace probe = gen.generate(profile);
        const core::StrategyKind strategy =
            core::selectStrategy(cpu, probe, params);

        sim::EvalConfig cfg;
        cfg.cpu = &cpu;
        cfg.offsetMv = offset;
        cfg.strategy = strategy;
        cfg.params = params;
        const sim::DomainResult r = sim::runWorkload(cfg, profile);

        const double before = cpu.basePowerW() * rack.servers / 1000.0;
        const double after = before * (1.0 + r.powerDelta());
        kw_before += before;
        kw_after += after;
        weighted_perf += r.perfDelta() * rack.servers;
        total_servers += rack.servers;

        t.addRow({rack.workload, util::sformat("%d", rack.servers),
                  core::toString(strategy),
                  util::sformat("%+.2f%%", 100 * r.perfDelta()),
                  util::sformat("%+.2f%%", 100 * r.powerDelta()),
                  util::sformat("%+.2f%%", 100 * r.efficiencyDelta()),
                  util::sformat("%.1f", before),
                  util::sformat("%.1f", after)});
    }
    t.print();

    const double saved_kw = kw_before - kw_after;
    // Data-center rule of thumb: PUE ~1.4 doubles the saving via
    // cooling, ~USD 0.10/kWh.
    const double pue = 1.4;
    const double kwh_per_year = saved_kw * pue * 24.0 * 365.0;
    std::printf("\nFleet: %d servers, CPU power %.1f kW -> %.1f kW "
                "(%.1f kW saved, %+0.2f%% mean perf)\n",
                total_servers, kw_before, kw_after, saved_kw,
                100.0 * weighted_perf / total_servers);
    std::printf("At PUE %.1f that is %.0f MWh/year, roughly USD "
                "%.0fk/year at $0.10/kWh —\nwithout touching the "
                "aging or temperature guardbands.\n",
                pue, kwh_per_year / 1000.0, kwh_per_year * 0.10 / 1000.0);
    return 0;
}
