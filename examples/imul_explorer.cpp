/**
 * @file
 * Drive the out-of-order model directly: explore how the SUIT
 * 4-cycle IMUL affects different instruction mixes, and demonstrate
 * the full hardware trap path — a #DO raised at dispatch, handled by
 * a SuitController-style policy that emulates the instruction and
 * re-arms the disable set.
 */

#include <cstdio>

#include "emu/dispatcher.hh"
#include "uarch/o3_model.hh"
#include "util/format.hh"
#include "util/table.hh"

namespace {

using namespace suit;
using namespace suit::uarch;

void
latencySensitivity()
{
    std::printf("1. IMUL latency sensitivity per mix (400k "
                "instructions each)\n\n");
    constexpr std::size_t kCount = 400'000;

    util::TablePrinter t({"Mix", "IPC @3cy", "4cy (SUIT)", "6cy",
                          "30cy"});
    for (const ProgramMix &mix : figure14Mixes()) {
        const CoreStats base = runMixAtImulLatency(mix, kCount, 3);
        auto slow = [&](int lat) {
            const CoreStats s = runMixAtImulLatency(mix, kCount, lat);
            return util::sformat(
                "%+.2f%%", 100.0 * (static_cast<double>(s.cycles) /
                                        static_cast<double>(
                                            base.cycles) -
                                    1.0));
        };
        t.addRow({mix.name, util::sformat("%.2f", base.ipc()),
                  slow(4), slow(6), slow(30)});
    }
    t.print();
    std::printf("\n");
}

void
trapPath()
{
    std::printf("2. The #DO trap path in the pipeline model\n\n");

    // An AES-heavy program on a core whose SUIT MSR disables the
    // trap set (everything but the hardened IMUL).
    CoreConfig cfg;
    cfg.setImulLatency(4); // SUIT hardware
    O3Model core(cfg);
    core.setDisabledSet(isa::FaultableSet::suitTrapSet());

    std::uint64_t handled = 0;
    core.setTrapHandler([&](isa::FaultableKind kind, std::uint64_t,
                             std::uint64_t) {
        ++handled;
        UarchTrapAction action;
        // Policy: emulate in place (the service's bursts are short
        // here); charge the measured round trip plus the software
        // body at 3 GHz.
        action.emulate = true;
        action.extraCycles =
            1020 + static_cast<std::uint64_t>(
                       emu::emulationCostCycles(kind));
        action.newDisabledSet = isa::FaultableSet::suitTrapSet();
        return action;
    });

    const Program prog =
        ProgramGenerator(11).generate(aesServiceMix(), 100'000);
    const CoreStats with_suit = core.run(prog);

    O3Model baseline(cfg); // nothing disabled
    const CoreStats stock = baseline.run(prog);

    std::printf("   program: %zu instructions, %llu of them in the "
                "faultable set\n",
                prog.insts.size(),
                static_cast<unsigned long long>(
                    with_suit.classCounts[static_cast<std::size_t>(
                        OpClass::Aes)] +
                    with_suit.classCounts[static_cast<std::size_t>(
                        OpClass::SimdAlu)]));
    std::printf("   baseline: %llu cycles (IPC %.2f)\n",
                static_cast<unsigned long long>(stock.cycles),
                stock.ipc());
    std::printf("   SUIT+emulate: %llu cycles (IPC %.2f), %llu #DO "
                "traps, %llu emulations\n",
                static_cast<unsigned long long>(with_suit.cycles),
                with_suit.ipc(),
                static_cast<unsigned long long>(with_suit.traps),
                static_cast<unsigned long long>(with_suit.emulated));
    std::printf("   slowdown: %.1fx — exactly why the OS must switch "
                "curves, not emulate, for AES services.\n",
                static_cast<double>(with_suit.cycles) /
                    static_cast<double>(stock.cycles));
}

} // namespace

int
main()
{
    std::printf("SUIT example — out-of-order model explorer\n\n");
    latencySensitivity();
    trapPath();
    return 0;
}
