/**
 * @file
 * A TLS-like AES service under SUIT, end to end:
 *
 *  1. functional layer — encrypt traffic with AES-128 built from the
 *     AESENC round primitive, and show that the side-channel-
 *     resilient bit-sliced emulation the #DO handler dispatches
 *     computes bit-identical ciphertexts;
 *  2. performance layer — run the Nginx-like AES-burst workload
 *     under the fV strategy and under emulation, reproducing the
 *     paper's conclusion that curve switching is the only viable
 *     strategy for crypto services (Table 6);
 *  3. security layer — mount a Plundervolt-style undervolting attack
 *     against the service with and without SUIT.
 */

#include <cstdio>

#include "core/params.hh"
#include "emu/aes.hh"
#include "emu/gcm.hh"
#include "faults/attack.hh"
#include "sim/evaluation.hh"
#include "trace/profile.hh"
#include "util/rng.hh"

namespace {

using namespace suit;

void
functionalLayer()
{
    std::printf("1. Functional: a TLS record through AES-128-GCM "
                "built from the emulation payloads\n");
    util::Rng rng(99);
    emu::AesBlock key;
    for (auto &b : key)
        b = static_cast<std::uint8_t>(rng.nextBelow(256));
    const emu::Aes128 aes(key);

    int blocks = 0, matches = 0;
    for (int i = 0; i < 64; ++i) {
        emu::AesBlock pt;
        for (auto &b : pt)
            b = static_cast<std::uint8_t>(rng.nextBelow(256));
        ++blocks;
        matches += aes.encrypt(pt) == aes.encryptBitsliced(pt);
    }
    std::printf("   %d/%d keystream blocks identical via table-based "
                "and bit-sliced AESENC rounds.\n",
                matches, blocks);

    // Seal a TLS-like record with AES-GCM (AESENC keystream +
    // carry-less-multiply GHASH — both Table 1 instructions).
    const emu::Aes128Gcm gcm(key);
    std::vector<std::uint8_t> iv(12), record(1200), aad(5);
    for (auto &b : iv)
        b = static_cast<std::uint8_t>(rng.nextBelow(256));
    for (auto &b : record)
        b = static_cast<std::uint8_t>(rng.nextBelow(256));
    const emu::GcmSealed sealed = gcm.seal(iv, record, aad);

    std::vector<std::uint8_t> decrypted;
    const bool ok =
        gcm.open(iv, sealed.ciphertext, sealed.tag, &decrypted, aad);
    auto tampered = sealed.ciphertext;
    tampered[100] ^= 1;
    std::vector<std::uint8_t> scratch;
    const bool tamper_rejected =
        !gcm.open(iv, tampered, sealed.tag, &scratch, aad);
    std::printf("   1200-byte record sealed; authenticated open %s, "
                "tampered record %s.\n\n",
                ok && decrypted == record ? "OK" : "FAILED",
                tamper_rejected ? "rejected" : "ACCEPTED (!)");
}

void
performanceLayer()
{
    std::printf("2. Performance: the AES-burst service under SUIT "
                "(CPU C, -97 mV)\n");
    const power::CpuModel cpu = power::cpuC_xeon4208();
    const auto &profile = trace::nginxProfile();

    sim::EvalConfig cfg;
    cfg.cpu = &cpu;
    cfg.offsetMv = -97.0;
    cfg.params = core::optimalParams(cpu);

    for (core::StrategyKind strategy :
         {core::StrategyKind::CombinedFv,
          core::StrategyKind::Emulation}) {
        cfg.strategy = strategy;
        const sim::DomainResult r = sim::runWorkload(cfg, profile);
        std::printf("   strategy %-2s: perf %+7.2f %%, power %+6.2f "
                    "%%, eff %+7.2f %%  (%llu traps)\n",
                    core::toString(strategy), 100 * r.perfDelta(),
                    100 * r.powerDelta(), 100 * r.efficiencyDelta(),
                    static_cast<unsigned long long>(r.traps));
    }
    std::printf("   -> every AES instruction through the 0.77 us "
                "emulation round trip is prohibitive;\n      curve "
                "switching rides the bursts out at CV instead "
                "(Fig. 6).\n\n");
}

void
securityLayer()
{
    std::printf("3. Security: undervolting fault attack on the "
                "service key\n");
    const power::DvfsCurve curve = power::i9_9900kCurve();
    faults::VminConfig vcfg;
    vcfg.curve = &curve;
    vcfg.cores = 4;
    vcfg.hardenedImul = true;
    const faults::VminModel chip(vcfg);

    faults::AttackConfig acfg;
    acfg.target = isa::FaultableKind::AESENC;
    acfg.attempts = 3000;

    const faults::AttackResult base =
        faults::attackBaseline(chip, acfg);
    const faults::AttackResult prot =
        faults::attackWithSuit(chip, acfg);

    std::printf("   without SUIT: %llu faulty ciphertexts out of %llu "
                "-> key recovery %s\n",
                static_cast<unsigned long long>(base.faultyResults),
                static_cast<unsigned long long>(base.attempts),
                base.keyRecoveryFeasible ? "FEASIBLE (DFA)" : "no");
    std::printf("   with SUIT:    %llu faulty ciphertexts (%llu #DO "
                "traps re-executed at the safe point)\n",
                static_cast<unsigned long long>(prot.faultyResults),
                static_cast<unsigned long long>(prot.traps));
    std::printf("   -> the disabled AESENC never runs below its "
                "Vmin; the attack surface is gone.\n");
}

} // namespace

int
main()
{
    std::printf("SUIT example — secure AES service\n\n");
    functionalLayer();
    performanceLayer();
    securityLayer();
    return 0;
}
