/**
 * @file
 * Quickstart: simulate SUIT on one workload in ~40 lines.
 *
 * Builds the paper's CPU C (Xeon Silver 4208, per-core frequency and
 * voltage domains), runs the 557.xz workload model under the fV
 * operating strategy at the -97 mV efficient curve and prints the
 * performance / power / efficiency impact against the conservative
 * baseline.
 */

#include <cstdio>

#include "core/params.hh"
#include "sim/evaluation.hh"
#include "trace/profile.hh"

int
main()
{
    using namespace suit;

    // 1. Pick a machine model (DVFS curves, transition delays,
    //    measured undervolt response).
    const power::CpuModel cpu = power::cpuC_xeon4208();

    // 2. Configure SUIT: the fV operating strategy with the Table 7
    //    parameters, on the -97 mV efficient curve (instruction
    //    variation + 20 % of the aging guardband).
    sim::EvalConfig cfg;
    cfg.cpu = &cpu;
    cfg.offsetMv = -97.0;
    cfg.strategy = core::StrategyKind::CombinedFv;
    cfg.params = core::optimalParams(cpu);

    // 3. Run a workload model.
    const trace::WorkloadProfile &workload =
        trace::profileByName("557.xz");
    const sim::DomainResult r = sim::runWorkload(cfg, workload);

    // 4. Read the results.
    std::printf("SUIT on %s running %s at %.0f mV:\n",
                cpu.name().c_str(), workload.name.c_str(),
                cfg.offsetMv);
    std::printf("  performance: %+6.2f %%\n", 100 * r.perfDelta());
    std::printf("  power:       %+6.2f %%\n", 100 * r.powerDelta());
    std::printf("  efficiency:  %+6.2f %%\n",
                100 * r.efficiencyDelta());
    std::printf("  time on the efficient curve: %.1f %%\n",
                100 * r.efficientShare);
    std::printf("  #DO traps: %llu, p-state switches: %llu\n",
                static_cast<unsigned long long>(r.traps),
                static_cast<unsigned long long>(r.pstateSwitches));
    return 0;
}
