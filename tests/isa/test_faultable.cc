/**
 * @file
 * Tests of the faultable-instruction taxonomy (paper Table 1).
 */

#include <gtest/gtest.h>

#include "isa/faultable.hh"

namespace {

using namespace suit::isa;

TEST(Faultable, Table1FaultCounts)
{
    EXPECT_EQ(publishedFaultCount(FaultableKind::IMUL), 79);
    EXPECT_EQ(publishedFaultCount(FaultableKind::VOR), 47);
    EXPECT_EQ(publishedFaultCount(FaultableKind::AESENC), 40);
    EXPECT_EQ(publishedFaultCount(FaultableKind::VPADDQ), 1);
}

TEST(Faultable, FaultCountsDescendInTable1Order)
{
    const auto kinds = allFaultableKinds();
    for (std::size_t i = 1; i < kinds.size(); ++i) {
        EXPECT_GE(publishedFaultCount(kinds[i - 1]),
                  publishedFaultCount(kinds[i]));
    }
}

TEST(Faultable, FrequentFaultersHaveHigherVmin)
{
    // Table 1 caption: rarely faulting instructions fault at lower
    // voltages on average.
    const auto kinds = allFaultableKinds();
    for (std::size_t i = 1; i < kinds.size(); ++i) {
        EXPECT_GE(relativeVminMv(kinds[i - 1]),
                  relativeVminMv(kinds[i]));
    }
    // IMUL faults first of all.
    for (FaultableKind k : kinds) {
        if (k != FaultableKind::IMUL)
            EXPECT_GT(relativeVminMv(FaultableKind::IMUL),
                      relativeVminMv(k));
    }
}

TEST(Faultable, NameRoundTrip)
{
    for (FaultableKind k : allFaultableKinds())
        EXPECT_EQ(faultableKindFromString(toString(k)), k);
}

TEST(Faultable, SimdClassification)
{
    EXPECT_FALSE(isSimd(FaultableKind::IMUL));
    EXPECT_FALSE(isSimd(FaultableKind::AESENC));
    EXPECT_TRUE(isSimd(FaultableKind::VOR));
    EXPECT_TRUE(isSimd(FaultableKind::VSQRTPD));
}

TEST(FaultableSetTest, InsertEraseContains)
{
    FaultableSet s;
    EXPECT_TRUE(s.empty());
    s.insert(FaultableKind::VOR);
    s.insert(FaultableKind::AESENC);
    EXPECT_TRUE(s.contains(FaultableKind::VOR));
    EXPECT_TRUE(s.contains(FaultableKind::AESENC));
    EXPECT_FALSE(s.contains(FaultableKind::IMUL));
    EXPECT_EQ(s.count(), 2);
    s.erase(FaultableKind::VOR);
    EXPECT_FALSE(s.contains(FaultableKind::VOR));
    EXPECT_EQ(s.count(), 1);
}

TEST(FaultableSetTest, AllAndTrapSet)
{
    const FaultableSet all = FaultableSet::all();
    EXPECT_EQ(all.count(), static_cast<int>(kNumFaultableKinds));

    // The trap set excludes only IMUL (hardened statically,
    // paper Sec. 4.2).
    const FaultableSet trap = FaultableSet::suitTrapSet();
    EXPECT_EQ(trap.count(), static_cast<int>(kNumFaultableKinds) - 1);
    EXPECT_FALSE(trap.contains(FaultableKind::IMUL));
    for (FaultableKind k : allFaultableKinds()) {
        if (k != FaultableKind::IMUL)
            EXPECT_TRUE(trap.contains(k)) << toString(k);
    }
}

TEST(FaultableSetTest, MsrBitsRoundTrip)
{
    FaultableSet s;
    s.insert(FaultableKind::VPCLMULQDQ);
    s.insert(FaultableKind::VPADDQ);
    EXPECT_EQ(FaultableSet::fromBits(s.bits()), s);
}

} // namespace
