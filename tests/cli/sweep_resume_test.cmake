# End-to-end acceptance test of suit_sweep checkpoint/resume.
#
# Runs a small grid three ways:
#   1. uninterrupted serial run            -> ref.csv
#   2. checkpointed run stopped after 3 of
#      its 8 cells (exit code 130)         -> journal
#   3. resumed run with 2 workers          -> resumed.csv
# and requires resumed.csv to be byte-identical to ref.csv.  Also
# checks that resuming a *different* grid against the same journal
# is refused.
#
# Invoked by ctest as:
#   cmake -DSUIT_SWEEP=<tool> -DWORK_DIR=<scratch> -P this_file

if(NOT SUIT_SWEEP OR NOT WORK_DIR)
    message(FATAL_ERROR "SUIT_SWEEP and WORK_DIR must be defined")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(GRID
    --cpu C --strategy e,fV --offset -70,-97
    --workload 520.omnetpp,Nginx)

execute_process(
    COMMAND ${SUIT_SWEEP} ${GRID} --jobs 1
            --out ${WORK_DIR}/ref.csv
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "reference sweep failed (exit ${rc})")
endif()

execute_process(
    COMMAND ${SUIT_SWEEP} ${GRID} --jobs 1
            --checkpoint ${WORK_DIR}/journal.bin --stop-after 3
            --out ${WORK_DIR}/partial.csv
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 130)
    message(FATAL_ERROR
            "interrupted sweep exited ${rc}, expected 130")
endif()

# Resuming against a different grid must be refused outright.
execute_process(
    COMMAND ${SUIT_SWEEP} --cpu C --strategy e,fV --offset -50,-97
            --workload 520.omnetpp,Nginx --jobs 1
            --checkpoint ${WORK_DIR}/journal.bin --resume
            --out ${WORK_DIR}/bogus.csv
    RESULT_VARIABLE rc
    ERROR_VARIABLE err)
if(rc EQUAL 0)
    message(FATAL_ERROR "fingerprint mismatch was not refused")
endif()
if(NOT err MATCHES "different grid")
    message(FATAL_ERROR
            "mismatch refusal lacks a clear error: ${err}")
endif()

# The real resume, on a different worker count, must complete the
# grid and reproduce the uninterrupted CSV byte for byte.
execute_process(
    COMMAND ${SUIT_SWEEP} ${GRID} --jobs 2
            --checkpoint ${WORK_DIR}/journal.bin --resume
            --out ${WORK_DIR}/resumed.csv
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "resumed sweep failed (exit ${rc})")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK_DIR}/ref.csv ${WORK_DIR}/resumed.csv
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "resumed CSV differs from the uninterrupted run")
endif()
