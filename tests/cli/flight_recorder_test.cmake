# End-to-end acceptance test of the flight recorder: interrupted
# fleet runs must leave a valid post-mortem JSONL dump behind.
#
#   1. SIGINT path: --stop-after raises the same internal flag as
#      Ctrl-C after the first shard; the run exits 130 and the dump
#      must carry reason "sigint".
#   2. deadline path: a tiny --deadline-s budget expires mid-run;
#      exit 130 again, reason "deadline".
#
# Both dumps must pass suit_obs_check --flight (monotonic sample
# ids, non-decreasing counters) and carry the fleet series.
#
# Invoked by ctest as:
#   cmake -DSUIT_FLEET=<tool> -DSUIT_OBS_CHECK=<tool>
#         -DWORK_DIR=<scratch> -P this_file

if(NOT SUIT_FLEET OR NOT SUIT_OBS_CHECK OR NOT WORK_DIR)
    message(FATAL_ERROR
        "SUIT_FLEET, SUIT_OBS_CHECK and WORK_DIR must be defined")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# --- 1. SIGINT (via --stop-after) ---------------------------------
execute_process(
    COMMAND ${SUIT_FLEET} --domains 10000 --shard 256 --jobs 2
            --stop-after 1
            --flight-recorder ${WORK_DIR}/sigint.jsonl
            --sample-interval-ms 10
    OUTPUT_QUIET
    ERROR_VARIABLE ignored
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 130)
    message(FATAL_ERROR
            "stopped fleet run should exit 130, got ${rc}")
endif()
if(NOT EXISTS "${WORK_DIR}/sigint.jsonl")
    message(FATAL_ERROR "no flight dump after --stop-after")
endif()

execute_process(
    COMMAND ${SUIT_OBS_CHECK} --flight ${WORK_DIR}/sigint.jsonl
            --require fleet.shards.executed
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "suit_obs_check rejected the sigint dump (exit ${rc})")
endif()

file(READ ${WORK_DIR}/sigint.jsonl CONTENT)
if(NOT CONTENT MATCHES "\"reason\": \"sigint\"")
    message(FATAL_ERROR "sigint dump carries the wrong reason")
endif()

# --- 2. deadline expiry -------------------------------------------
execute_process(
    COMMAND ${SUIT_FLEET} --domains 200000 --shard 256 --jobs 2
            --deadline-s 0.05
            --flight-recorder ${WORK_DIR}/deadline.jsonl
            --sample-interval-ms 10
    OUTPUT_QUIET
    ERROR_VARIABLE ignored
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 130)
    message(FATAL_ERROR
            "deadline-expired fleet run should exit 130, got ${rc}")
endif()

execute_process(
    COMMAND ${SUIT_OBS_CHECK} --flight ${WORK_DIR}/deadline.jsonl
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "suit_obs_check rejected the deadline dump (exit ${rc})")
endif()

file(READ ${WORK_DIR}/deadline.jsonl CONTENT)
if(NOT CONTENT MATCHES "\"reason\": \"deadline\"")
    message(FATAL_ERROR "deadline dump carries the wrong reason")
endif()

# --- validator must bite ------------------------------------------
file(WRITE ${WORK_DIR}/tampered.jsonl
    "{\"schema\": \"suit-flight-v1\", \"reason\": \"x\", \"series\": "
    "[{\"name\": \"a\", \"kind\": \"counter\"}]}\n"
    "{\"sample\": 1, \"host_us\": 1.0, \"values\": [9]}\n"
    "{\"sample\": 2, \"host_us\": 2.0, \"values\": [3]}\n")
execute_process(
    COMMAND ${SUIT_OBS_CHECK} --flight ${WORK_DIR}/tampered.jsonl
    RESULT_VARIABLE rc)
if(rc EQUAL 0)
    message(FATAL_ERROR
            "suit_obs_check accepted a decreasing counter")
endif()

message(STATUS "flight recorder e2e ok")
