# End-to-end acceptance test of the continuous-telemetry exposition:
#
#   1. a fleet run with --metrics-series must write an OpenMetrics
#      snapshot that suit_obs_check validates and that contains the
#      fleet counters,
#   2. the run's report must be byte-identical to the same run with
#      no telemetry at all (the sampler must not perturb results),
#   3. the interval-dump path must agree with the final dump: a
#      --metrics --metrics-interval run's final metrics JSON still
#      validates and carries the end-state counters.
#
# Invoked by ctest as:
#   cmake -DSUIT_FLEET=<tool> -DSUIT_OBS_CHECK=<tool>
#         -DWORK_DIR=<scratch> -P this_file

if(NOT SUIT_FLEET OR NOT SUIT_OBS_CHECK OR NOT WORK_DIR)
    message(FATAL_ERROR
        "SUIT_FLEET, SUIT_OBS_CHECK and WORK_DIR must be defined")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(FLEET --domains 2000 --shard 128 --jobs 2)

# Reference run: no telemetry.
execute_process(
    COMMAND ${SUIT_FLEET} ${FLEET} --report-json -
    OUTPUT_FILE ${WORK_DIR}/ref.json
    ERROR_VARIABLE ignored
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "reference fleet run failed (exit ${rc})")
endif()

# Telemetry run: fast sampler + final OpenMetrics snapshot.
execute_process(
    COMMAND ${SUIT_FLEET} ${FLEET} --report-json -
            --metrics-series ${WORK_DIR}/series.txt
            --sample-interval-ms 10
    OUTPUT_FILE ${WORK_DIR}/sampled.json
    ERROR_VARIABLE ignored
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "telemetry fleet run failed (exit ${rc})")
endif()
if(NOT EXISTS "${WORK_DIR}/series.txt")
    message(FATAL_ERROR "suit_fleet wrote no --metrics-series file")
endif()

# The sampler must not change the simulation: reports byte-identical.
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK_DIR}/ref.json ${WORK_DIR}/sampled.json
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "telemetry-enabled report differs from the plain run")
endif()

# The snapshot must be valid OpenMetrics text carrying the fleet
# counters.
execute_process(
    COMMAND ${SUIT_OBS_CHECK} --openmetrics ${WORK_DIR}/series.txt
            --require suit_fleet_domains_simulated,suit_sim_runs
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "suit_obs_check rejected the OpenMetrics snapshot "
            "(exit ${rc})")
endif()

# Interval dumps reuse the sampler's snapshot; the final file must
# still be a valid metrics document with the end-state counters.
execute_process(
    COMMAND ${SUIT_FLEET} ${FLEET}
            --metrics ${WORK_DIR}/metrics.json
            --metrics-interval 0.05
            --metrics-series ${WORK_DIR}/series2.txt
            --sample-interval-ms 10
    OUTPUT_QUIET
    ERROR_VARIABLE ignored
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "interval-dump fleet run failed (exit ${rc})")
endif()
execute_process(
    COMMAND ${SUIT_OBS_CHECK} --metrics ${WORK_DIR}/metrics.json
            --openmetrics ${WORK_DIR}/series2.txt
            --require fleet.domains.simulated
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "interval-dump artifacts failed validation (exit ${rc})")
endif()

# The validator must bite on a tampered snapshot (duplicate sample).
file(READ ${WORK_DIR}/series.txt CONTENT)
string(REGEX MATCH "suit_sim_runs_total [0-9]+" DUP "${CONTENT}")
file(APPEND ${WORK_DIR}/series.txt "${DUP}\n")
execute_process(
    COMMAND ${SUIT_OBS_CHECK} --openmetrics ${WORK_DIR}/series.txt
    RESULT_VARIABLE rc)
if(rc EQUAL 0)
    message(FATAL_ERROR
            "suit_obs_check accepted a duplicated sample line")
endif()

message(STATUS "metrics scrape e2e ok")
