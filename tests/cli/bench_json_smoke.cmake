# Smoke test of suit_bench_json: run the benchmark scenarios with a
# single repetition (seconds, not minutes), then validate the emitted
# record against the suit-bench-simcore-v5 schema with the tool's own
# --check mode.
#
# Invoked by ctest as:
#   cmake -DSUIT_BENCH_JSON=<tool> -DWORK_DIR=<scratch> -P this_file

if(NOT SUIT_BENCH_JSON OR NOT WORK_DIR)
    message(FATAL_ERROR "SUIT_BENCH_JSON and WORK_DIR must be defined")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
    COMMAND ${SUIT_BENCH_JSON} --reps 1
            --out ${WORK_DIR}/bench.json
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "suit_bench_json failed (exit ${rc})")
endif()

if(NOT EXISTS "${WORK_DIR}/bench.json")
    message(FATAL_ERROR "suit_bench_json wrote no output file")
endif()

execute_process(
    COMMAND ${SUIT_BENCH_JSON} --check ${WORK_DIR}/bench.json
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "emitted record fails schema check (exit ${rc})")
endif()

# A corrupted record must be rejected.
file(READ "${WORK_DIR}/bench.json" CONTENT)
string(REPLACE "suit-bench-simcore-v5" "wrong-schema" CONTENT
       "${CONTENT}")
file(WRITE "${WORK_DIR}/corrupt.json" "${CONTENT}")
execute_process(
    COMMAND ${SUIT_BENCH_JSON} --check ${WORK_DIR}/corrupt.json
    RESULT_VARIABLE rc)
if(rc EQUAL 0)
    message(FATAL_ERROR "--check accepted a corrupted record")
endif()
