# End-to-end acceptance test of suit_fleet checkpoint/resume.
#
# Runs the demo fleet four ways:
#   1. uninterrupted serial run             -> ref.json
#   2. uninterrupted 4-worker run           -> jobs4.json (must
#      equal ref.json byte for byte)
#   3. checkpointed run stopped after 3 of
#      its shards (exit code 130)           -> journal
#   4. resumed run with 2 workers           -> resumed.json
# and requires resumed.json to be byte-identical to ref.json.  Also
# checks that resuming a *different* fleet against the same journal
# is refused.
#
# Invoked by ctest as:
#   cmake -DSUIT_FLEET=<tool> -DWORK_DIR=<scratch> -P this_file

if(NOT SUIT_FLEET OR NOT WORK_DIR)
    message(FATAL_ERROR "SUIT_FLEET and WORK_DIR must be defined")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(FLEET --domains 2000 --shard 128)

execute_process(
    COMMAND ${SUIT_FLEET} ${FLEET} --jobs 1 --report-json -
    OUTPUT_FILE ${WORK_DIR}/ref.json
    ERROR_VARIABLE ignored
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "reference fleet run failed (exit ${rc})")
endif()

execute_process(
    COMMAND ${SUIT_FLEET} ${FLEET} --jobs 4 --report-json -
    OUTPUT_FILE ${WORK_DIR}/jobs4.json
    ERROR_VARIABLE ignored
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "4-worker fleet run failed (exit ${rc})")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK_DIR}/ref.json ${WORK_DIR}/jobs4.json
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "4-worker report differs from the serial run")
endif()

execute_process(
    COMMAND ${SUIT_FLEET} ${FLEET} --jobs 1
            --checkpoint ${WORK_DIR}/journal.bin --stop-after 3
    OUTPUT_VARIABLE ignored_out
    ERROR_VARIABLE ignored_err
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 130)
    message(FATAL_ERROR
            "interrupted fleet run exited ${rc}, expected 130")
endif()

# Resuming a different fleet must be refused outright.
execute_process(
    COMMAND ${SUIT_FLEET} ${FLEET} --seed 99 --jobs 1
            --checkpoint ${WORK_DIR}/journal.bin --resume
    OUTPUT_VARIABLE ignored_out
    RESULT_VARIABLE rc
    ERROR_VARIABLE err)
if(rc EQUAL 0)
    message(FATAL_ERROR "fingerprint mismatch was not refused")
endif()
if(NOT err MATCHES "different fleet")
    message(FATAL_ERROR
            "mismatch refusal lacks a clear error: ${err}")
endif()

# The real resume, on a different worker count, must complete the
# fleet and reproduce the uninterrupted report byte for byte.
execute_process(
    COMMAND ${SUIT_FLEET} ${FLEET} --jobs 2
            --checkpoint ${WORK_DIR}/journal.bin --resume
            --report-json -
    OUTPUT_FILE ${WORK_DIR}/resumed.json
    ERROR_VARIABLE ignored
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "resumed fleet run failed (exit ${rc})")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK_DIR}/ref.json ${WORK_DIR}/resumed.json
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "resumed report differs from the uninterrupted run")
endif()
