# End-to-end smoke test of the observability wiring: run suit_sim
# with --trace-out and --metrics, then validate both artifacts with
# suit_obs_check — the trace must be a structurally valid Chrome
# trace_event document that actually contains the paper's signature
# events (p-state transitions and #DO traps), and the metrics file
# must match the suit-obs-metrics-v1 schema.
#
# Invoked by ctest as:
#   cmake -DSUIT_SIM=<tool> -DSUIT_OBS_CHECK=<tool>
#         -DWORK_DIR=<scratch> -P this_file

if(NOT SUIT_SIM OR NOT SUIT_OBS_CHECK OR NOT WORK_DIR)
    message(FATAL_ERROR
        "SUIT_SIM, SUIT_OBS_CHECK and WORK_DIR must be defined")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
    COMMAND ${SUIT_SIM} --workload Nginx
            --trace-out ${WORK_DIR}/trace.json
            --metrics ${WORK_DIR}/metrics.json
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "suit_sim failed (exit ${rc})")
endif()

foreach(artifact trace.json metrics.json)
    if(NOT EXISTS "${WORK_DIR}/${artifact}")
        message(FATAL_ERROR "suit_sim wrote no ${artifact}")
    endif()
endforeach()

execute_process(
    COMMAND ${SUIT_OBS_CHECK}
            --trace ${WORK_DIR}/trace.json
            --metrics ${WORK_DIR}/metrics.json
            --require pstate,do-trap
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "suit_obs_check rejected the artifacts "
        "(exit ${rc})")
endif()

# Metric names the paper's evaluation leans on must be present.
execute_process(
    COMMAND ${SUIT_OBS_CHECK} --metrics ${WORK_DIR}/metrics.json
            --require sim.traps,sim.pstate_switches,sim.runs
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "expected metrics missing (exit ${rc})")
endif()

# The checker must bite: a name that is not in the capture fails...
execute_process(
    COMMAND ${SUIT_OBS_CHECK} --trace ${WORK_DIR}/trace.json
            --require no-such-event
    RESULT_VARIABLE rc
    ERROR_QUIET)
if(rc EQUAL 0)
    message(FATAL_ERROR "--require accepted a missing event name")
endif()

# ... and so does a structurally corrupted trace (unbalanced span).
file(READ "${WORK_DIR}/trace.json" CONTENT)
string(APPEND CONTENT
    "{\"ph\": \"B\", \"pid\": 9, \"tid\": 9, \"ts\": 0.0, "
    "\"name\": \"torn\", \"cat\": \"x\"}\n")
file(WRITE "${WORK_DIR}/corrupt.json" "${CONTENT}")
execute_process(
    COMMAND ${SUIT_OBS_CHECK} --trace ${WORK_DIR}/corrupt.json
    RESULT_VARIABLE rc
    ERROR_QUIET)
if(rc EQUAL 0)
    message(FATAL_ERROR "suit_obs_check accepted a corrupted trace")
endif()

# --metrics - reads stdin: pipe suit_sim's stdout straight through.
execute_process(
    COMMAND ${SUIT_SIM} --workload Nginx --metrics -
    COMMAND ${SUIT_OBS_CHECK} --metrics - --require sim.traps
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "piped --metrics - validation failed "
        "(exit ${rc})")
endif()
