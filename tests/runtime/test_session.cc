/**
 * @file
 * Session ownership tests: worker-count resolution, serial mode, the
 * shared bounded TraceCache — LRU eviction under a tiny capacity,
 * pinned traces surviving their own eviction, and bit-identical
 * regeneration of an evicted trace.
 */

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/session.hh"
#include "sim/trace_cache.hh"
#include "trace/profile.hh"
#include "trace/trace.hh"

namespace {

using namespace suit;
using runtime::Session;

TEST(Session, SerialModeHasNoPool)
{
    Session session({1, 0});
    EXPECT_EQ(session.jobs(), 1);
    EXPECT_EQ(session.pool(), nullptr);
    EXPECT_TRUE(session.workerStats().empty());
    EXPECT_NE(session.workerFooter().find("serial"),
              std::string::npos);
}

TEST(Session, ExplicitWorkerCountBuildsAPool)
{
    Session session({3, 0});
    EXPECT_EQ(session.jobs(), 3);
    ASSERT_NE(session.pool(), nullptr);
    EXPECT_EQ(session.pool()->workers(), 3);
    EXPECT_EQ(session.workerStats().size(), 3u);
    EXPECT_NE(session.workerFooter().find("#2"), std::string::npos);
}

TEST(Session, ZeroJobsResolvesToHardwareConcurrency)
{
    Session session;
    EXPECT_EQ(session.jobs(),
              exec::ThreadPool::hardwareConcurrency());
    EXPECT_EQ(session.config().traceCacheBytes,
              sim::TraceCache::kDefaultCapacityBytes);
}

TEST(Session, TraceCacheCapacityComesFromTheConfig)
{
    Session session({1, 0, std::size_t{8} << 20});
    EXPECT_EQ(session.traceCache().capacityBytes(),
              std::size_t{8} << 20);
}

/** Bitwise equality of two traces (the regeneration witness). */
void
expectIdenticalTraces(const trace::Trace &a, const trace::Trace &b)
{
    EXPECT_EQ(a.name(), b.name());
    EXPECT_EQ(a.totalInstructions(), b.totalInstructions());
    EXPECT_EQ(a.ipc(), b.ipc());
    EXPECT_EQ(a.eventWeight(), b.eventWeight());
    ASSERT_EQ(a.events().size(), b.events().size());
    for (std::size_t i = 0; i < a.events().size(); ++i) {
        EXPECT_EQ(a.events()[i].gap, b.events()[i].gap);
        EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    }
}

TEST(Session, TinyCacheEvictsButPinnedTracesStayValid)
{
    // A capacity far below one trace: every insertion evicts the
    // previous resident, so the cache cycles while the shared_ptr
    // pins keep every returned trace alive and intact.
    Session session({1, 0, 4096});
    sim::TraceCache &cache = session.traceCache();

    const auto &gcc = trace::profileByName("502.gcc");
    const auto &xz = trace::profileByName("557.xz");

    std::vector<std::shared_ptr<const trace::Trace>> pinned;
    for (int stream = 0; stream < 4; ++stream) {
        pinned.push_back(cache.get(gcc, 1, stream));
        pinned.push_back(cache.get(xz, 1, stream));
    }
    EXPECT_GT(cache.evictions(), 0u);
    EXPECT_LE(cache.entries(), pinned.size());
    EXPECT_EQ(cache.misses(), 8u);

    // Every pinned trace is still readable after its eviction.
    for (const auto &t : pinned) {
        ASSERT_NE(t, nullptr);
        EXPECT_GT(t->totalInstructions(), 0u);
    }

    // Regeneration after eviction is bit-identical: traces are pure
    // functions of (profile, seed, stream).
    const auto again = cache.get(gcc, 1, 0);
    expectIdenticalTraces(*pinned[0], *again);
}

TEST(Session, LargeCacheNeverEvictsAndCountsHits)
{
    Session session({1, 0});
    sim::TraceCache &cache = session.traceCache();
    const auto &nginx = trace::profileByName("Nginx");

    const auto first = cache.get(nginx, 7, 0);
    const auto second = cache.get(nginx, 7, 0);
    EXPECT_EQ(first.get(), second.get()); // same resident object
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.evictions(), 0u);
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_GT(cache.residentBytes(), 0u);
    EXPECT_LE(cache.residentBytes(), cache.capacityBytes());

    // A different key is a miss, not a hit.
    cache.get(nginx, 8, 0);
    EXPECT_EQ(cache.misses(), 2u);
}

} // namespace
