/**
 * @file
 * Session ownership tests: worker-count resolution, serial mode, the
 * per-worker SimWorkspace slots, the opt-in worker pinning option,
 * and the shared bounded TraceCache — LRU eviction under a tiny
 * capacity, pinned traces surviving their own eviction, and
 * bit-identical regeneration of an evicted trace.
 */

#include <memory>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "exec/thread_pool.hh"
#include "runtime/session.hh"
#include "sim/trace_cache.hh"
#include "sim/workspace.hh"
#include "trace/profile.hh"
#include "trace/trace.hh"

namespace {

using namespace suit;
using runtime::Session;

TEST(Session, SerialModeHasNoPool)
{
    Session session({1, 0});
    EXPECT_EQ(session.jobs(), 1);
    EXPECT_EQ(session.pool(), nullptr);
    EXPECT_TRUE(session.workerStats().empty());
    EXPECT_NE(session.workerFooter().find("serial"),
              std::string::npos);
}

TEST(Session, ExplicitWorkerCountBuildsAPool)
{
    Session session({3, 0});
    EXPECT_EQ(session.jobs(), 3);
    ASSERT_NE(session.pool(), nullptr);
    EXPECT_EQ(session.pool()->workers(), 3);
    EXPECT_EQ(session.workerStats().size(), 3u);
    EXPECT_NE(session.workerFooter().find("#2"), std::string::npos);
}

TEST(Session, ZeroJobsResolvesToHardwareConcurrency)
{
    Session session;
    EXPECT_EQ(session.jobs(),
              exec::ThreadPool::hardwareConcurrency());
    EXPECT_EQ(session.config().traceCacheBytes,
              sim::TraceCache::kDefaultCapacityBytes);
}

TEST(Session, TraceCacheCapacityComesFromTheConfig)
{
    Session session({1, 0, std::size_t{8} << 20});
    EXPECT_EQ(session.traceCache().capacityBytes(),
              std::size_t{8} << 20);
}

/** Bitwise equality of two traces (the regeneration witness). */
void
expectIdenticalTraces(const trace::Trace &a, const trace::Trace &b)
{
    EXPECT_EQ(a.name(), b.name());
    EXPECT_EQ(a.totalInstructions(), b.totalInstructions());
    EXPECT_EQ(a.ipc(), b.ipc());
    EXPECT_EQ(a.eventWeight(), b.eventWeight());
    ASSERT_EQ(a.events().size(), b.events().size());
    for (std::size_t i = 0; i < a.events().size(); ++i) {
        EXPECT_EQ(a.events()[i].gap, b.events()[i].gap);
        EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    }
}

TEST(Session, TinyCacheEvictsButPinnedTracesStayValid)
{
    // A capacity far below one trace: every insertion evicts the
    // previous resident, so the cache cycles while the shared_ptr
    // pins keep every returned trace alive and intact.
    Session session({1, 0, 4096});
    sim::TraceCache &cache = session.traceCache();

    const auto &gcc = trace::profileByName("502.gcc");
    const auto &xz = trace::profileByName("557.xz");

    std::vector<std::shared_ptr<const trace::Trace>> pinned;
    for (int stream = 0; stream < 4; ++stream) {
        pinned.push_back(cache.get(gcc, 1, stream));
        pinned.push_back(cache.get(xz, 1, stream));
    }
    EXPECT_GT(cache.evictions(), 0u);
    EXPECT_LE(cache.entries(), pinned.size());
    EXPECT_EQ(cache.misses(), 8u);

    // Every pinned trace is still readable after its eviction.
    for (const auto &t : pinned) {
        ASSERT_NE(t, nullptr);
        EXPECT_GT(t->totalInstructions(), 0u);
    }

    // Regeneration after eviction is bit-identical: traces are pure
    // functions of (profile, seed, stream).
    const auto again = cache.get(gcc, 1, 0);
    expectIdenticalTraces(*pinned[0], *again);
}

TEST(Session, WorkspaceIsStablePerThread)
{
    // The session thread always gets slot 0; repeated calls hand back
    // the same object so warmed buffers survive across domains.
    Session session({1, 0});
    sim::SimWorkspace &first = session.workspace();
    EXPECT_EQ(&first, &session.workspace());
}

TEST(Session, EachPoolWorkerGetsItsOwnWorkspace)
{
    Session session({3, 0});
    ASSERT_NE(session.pool(), nullptr);

    // One slot per worker plus the session thread's; parallelFor
    // lands each index on some worker, and two tasks on the same
    // worker must see the same workspace while distinct workers see
    // distinct ones.
    sim::SimWorkspace *const session_ws = &session.workspace();
    std::vector<sim::SimWorkspace *> seen(3, nullptr);
    std::mutex mu;
    session.pool()->parallelFor(64, [&](std::size_t) {
        const int worker = exec::ThreadPool::currentWorkerIndex();
        ASSERT_GE(worker, 0);
        ASSERT_LT(worker, 3);
        sim::SimWorkspace *ws = &session.workspace();
        EXPECT_NE(ws, session_ws);
        std::lock_guard<std::mutex> lock(mu);
        if (seen[static_cast<std::size_t>(worker)] == nullptr)
            seen[static_cast<std::size_t>(worker)] = ws;
        EXPECT_EQ(seen[static_cast<std::size_t>(worker)], ws);
    });

    // Distinct workers -> distinct workspaces.
    std::vector<sim::SimWorkspace *> unique;
    for (sim::SimWorkspace *ws : seen) {
        if (ws == nullptr)
            continue;
        for (sim::SimWorkspace *other : unique)
            EXPECT_NE(ws, other);
        unique.push_back(ws);
    }
    EXPECT_GE(unique.size(), 1u);
}

TEST(Session, CurrentWorkerIndexIsMinusOneOffPool)
{
    EXPECT_EQ(exec::ThreadPool::currentWorkerIndex(), -1);
}

TEST(Session, PinWorkersOptionIsAcceptedAndCounted)
{
    // Pinning is opt-in and best-effort: the session must come up
    // either way, and the pinned count never exceeds the worker
    // count.  (On platforms without affinity support the pool warns
    // once and reports zero pinned workers.)
    Session session({.jobs = 2, .pinWorkers = true});
    ASSERT_NE(session.pool(), nullptr);
    EXPECT_TRUE(session.config().pinWorkers);
    const int pinned = session.pool()->pinnedWorkers();
    EXPECT_GE(pinned, 0);
    EXPECT_LE(pinned, 2);

    // And off by default.
    Session plain({2, 0});
    EXPECT_FALSE(plain.config().pinWorkers);
    EXPECT_EQ(plain.pool()->pinnedWorkers(), 0);
}

TEST(Session, LargeCacheNeverEvictsAndCountsHits)
{
    Session session({1, 0});
    sim::TraceCache &cache = session.traceCache();
    const auto &nginx = trace::profileByName("Nginx");

    const auto first = cache.get(nginx, 7, 0);
    const auto second = cache.get(nginx, 7, 0);
    EXPECT_EQ(first.get(), second.get()); // same resident object
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.evictions(), 0u);
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_GT(cache.residentBytes(), 0u);
    EXPECT_LE(cache.residentBytes(), cache.capacityBytes());

    // A different key is a miss, not a hit.
    cache.get(nginx, 8, 0);
    EXPECT_EQ(cache.misses(), 2u);
}

} // namespace
