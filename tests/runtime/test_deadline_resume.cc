/**
 * @file
 * Deadline-trip acceptance: a run whose RunContext deadline expires
 * mid-grid must leave a valid journal, and a fresh-context resume
 * must produce output byte-identical to an uninterrupted run — for
 * BOTH journal kinds (sweep DomainResult records and fleet blob
 * records).
 */

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/params.hh"
#include "exec/checkpoint.hh"
#include "exec/sweep.hh"
#include "fleet/engine.hh"
#include "fleet/report.hh"
#include "fleet/spec.hh"
#include "power/cpu_model.hh"
#include "runtime/run_context.hh"
#include "runtime/session.hh"
#include "sim/result_io.hh"
#include "trace/profile.hh"

namespace {

using namespace suit;

/** Unique scratch path that is removed again on destruction. */
class ScratchFile
{
  public:
    explicit ScratchFile(const std::string &name)
        : path_(::testing::TempDir() + "suit_deadline_" + name)
    {
        std::remove(path_.c_str());
    }
    ~ScratchFile()
    {
        std::remove(path_.c_str());
        std::remove((path_ + ".tmp").c_str());
    }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** Reduced 2-strategy x 2-workload grid on CPU C. */
std::vector<exec::SweepJob>
smallGrid(const power::CpuModel &cpu)
{
    static const auto &omnetpp = trace::profileByName("520.omnetpp");
    static const auto &nginx = trace::profileByName("Nginx");

    std::vector<exec::SweepJob> jobs;
    for (const core::StrategyKind strategy :
         {core::StrategyKind::CombinedFv,
          core::StrategyKind::Emulation}) {
        for (const auto *profile : {&omnetpp, &nginx}) {
            sim::EvalConfig cfg;
            cfg.cpu = &cpu;
            cfg.strategy = strategy;
            cfg.params = core::optimalParams(cpu);
            jobs.push_back({profile->name, cfg, profile});
        }
    }
    return jobs;
}

/** Serialize every result: the sweep byte-identity witness. */
std::string
bytesOf(const std::vector<sim::DomainResult> &results)
{
    std::string out;
    for (const sim::DomainResult &r : results)
        sim::serializeResult(r, out);
    return out;
}

TEST(DeadlineResume, SweepJournalResumesByteIdentical)
{
    const power::CpuModel cpu = power::cpuC_xeon4208();
    const std::vector<exec::SweepJob> jobs = smallGrid(cpu);
    ScratchFile journal("sweep.ckpt");

    // Uninterrupted serial reference.
    runtime::Session ref_session({1, 0});
    exec::SweepEngine reference(ref_session);
    const std::string expected = bytesOf(reference.run(jobs));

    // Interrupted run: the deadline trips after two completed cells
    // (setDeadlineAfter(0.0) is an already-expired deadline, so the
    // next token poll latches it — the exact path --deadline-s takes,
    // made deterministic).
    runtime::Session session_a({1, 0});
    runtime::RunContext ctx_a;
    ctx_a.checkpoint.path = journal.path();
    std::atomic<int> completed{0};
    exec::RunPolicy policy;
    policy.onCellDone = [&](std::size_t) {
        if (completed.fetch_add(1) + 1 >= 2)
            ctx_a.setDeadlineAfter(0.0);
    };
    exec::SweepEngine engine_a(session_a);
    const exec::SweepOutcome partial =
        engine_a.run(jobs, ctx_a, policy);
    EXPECT_TRUE(partial.interrupted);
    EXPECT_EQ(partial.executed, 2u);
    EXPECT_EQ(partial.skipped, 2u);

    // The journal holds exactly the completed cells.
    const exec::JournalContents loaded =
        exec::CheckpointJournal::load(journal.path());
    EXPECT_EQ(loaded.droppedBytes, 0u);
    EXPECT_EQ(loaded.records.size(), 2u);

    // Fresh-context resume (no deadline): byte-identical output.
    runtime::Session session_b({2, 0});
    runtime::RunContext ctx_b;
    ctx_b.checkpoint.path = journal.path();
    ctx_b.checkpoint.resume = true;
    exec::SweepEngine engine_b(session_b);
    const exec::SweepOutcome full = engine_b.run(jobs, ctx_b);
    EXPECT_TRUE(full.complete());
    EXPECT_EQ(full.restored, 2u);
    EXPECT_EQ(full.executed, 2u);
    EXPECT_EQ(bytesOf(full.results), expected);
}

/** A small heterogeneous fleet that still runs in milliseconds. */
fleet::FleetSpec
testSpec()
{
    return fleet::FleetSpec::parse(
        "name = deadline-test\n"
        "seed = 5\n"
        "trace_scale = 0.001\n"
        "rack web cpu=C domains=260 workloads=Nginx:2,VLC:1 "
        "strategy=fV,e offset=-97,-70 variants=2\n"
        "rack build cpu=A domains=120 cores=2 workloads=502.gcc "
        "strategy=hybrid\n"
        "rack sim cpu=B domains=100 workloads=520.omnetpp "
        "strategy=V offset=-70\n");
}

TEST(DeadlineResume, FleetJournalResumesByteIdentical)
{
    ScratchFile journal("fleet.ckpt");

    // Uninterrupted serial reference.
    runtime::Session ref_session({1, 0});
    fleet::FleetEngine reference(ref_session, testSpec());
    fleet::FleetOptions options;
    options.shardSize = 32;
    const fleet::FleetOutcome ref_outcome = reference.run(options);
    ASSERT_TRUE(ref_outcome.complete());
    const std::string expected = fleet::renderReportJson(
        reference.spec(), ref_outcome.totals);

    // Interrupted run: the deadline trips after two completed
    // shards.
    runtime::Session session_a({1, 0});
    runtime::RunContext ctx_a;
    ctx_a.checkpoint.path = journal.path();
    std::atomic<int> done{0};
    fleet::FleetOptions first;
    first.shardSize = 32;
    first.onShardDone = [&](std::uint64_t) {
        if (done.fetch_add(1) + 1 >= 2)
            ctx_a.setDeadlineAfter(0.0);
    };
    fleet::FleetEngine engine_a(session_a, testSpec());
    const fleet::FleetOutcome interrupted =
        engine_a.run(ctx_a, first);
    ASSERT_TRUE(interrupted.interrupted);
    ASSERT_GT(interrupted.shardsSkipped, 0u);
    ASSERT_GE(interrupted.shardsRun, 2u);

    // The blob journal holds exactly the completed shards.
    const exec::JournalContents loaded =
        exec::CheckpointJournal::load(journal.path());
    EXPECT_EQ(loaded.droppedBytes, 0u);
    EXPECT_EQ(loaded.records.size(), interrupted.shardsRun);

    // Fresh-context resume: byte-identical report.
    runtime::Session session_b({2, 0});
    runtime::RunContext ctx_b;
    ctx_b.checkpoint.path = journal.path();
    ctx_b.checkpoint.resume = true;
    fleet::FleetOptions second;
    second.shardSize = 32;
    fleet::FleetEngine engine_b(session_b, testSpec());
    const fleet::FleetOutcome resumed = engine_b.run(ctx_b, second);
    EXPECT_TRUE(resumed.complete());
    EXPECT_EQ(resumed.shardsRestored, interrupted.shardsRun);
    EXPECT_EQ(fleet::renderReportJson(engine_b.spec(),
                                      resumed.totals),
              expected);
}

} // namespace
