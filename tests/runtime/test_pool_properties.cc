/**
 * @file
 * Property tests of the session-owned exec::ThreadPool: randomized
 * task graphs through parallelFor and mapReduce must reproduce the
 * serial fold bit for bit (index-ordered reduction), and exception
 * propagation must deterministically surface the lowest failing
 * index.  The generators are seeded, so every run checks the same
 * graphs.
 */

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/thread_pool.hh"
#include "runtime/session.hh"
#include "util/rng.hh"

namespace {

using namespace suit;
using runtime::Session;

/** A cheap pure function of (seed, index) with variable cost. */
std::uint64_t
mix(std::uint64_t seed, std::uint64_t i)
{
    std::uint64_t x = seed ^ (i * 0x9E3779B97F4A7C15ULL);
    // Data-dependent iteration count: tasks finish out of order.
    const std::uint64_t rounds = 1 + (x % 97);
    for (std::uint64_t r = 0; r < rounds; ++r) {
        x ^= x >> 33;
        x *= 0xFF51AFD7ED558CCDULL;
        x ^= x >> 29;
    }
    return x;
}

TEST(PoolProperties, ParallelForMatchesSerialLoopOnRandomGraphs)
{
    Session session({4, 0});
    exec::ThreadPool *pool = session.pool();
    ASSERT_NE(pool, nullptr);

    util::Rng sizes(2024);
    for (int round = 0; round < 8; ++round) {
        const std::size_t n =
            1 + static_cast<std::size_t>(sizes.nextBelow(200));
        const std::uint64_t seed = sizes.next();

        std::vector<std::uint64_t> serial(n);
        for (std::size_t i = 0; i < n; ++i)
            serial[i] = mix(seed, i);

        std::vector<std::uint64_t> parallel(n);
        pool->parallelFor(
            n, [&](std::size_t i) { parallel[i] = mix(seed, i); });
        EXPECT_EQ(parallel, serial) << "round " << round;
    }
}

TEST(PoolProperties, MapReduceFoldsInIndexOrder)
{
    Session session({3, 0});
    exec::ThreadPool *pool = session.pool();
    ASSERT_NE(pool, nullptr);

    util::Rng sizes(7);
    for (int round = 0; round < 8; ++round) {
        const std::size_t n =
            1 + static_cast<std::size_t>(sizes.nextBelow(64));
        const std::uint64_t seed = sizes.next();

        // Non-commutative reduction (string concatenation): any
        // completion-ordered fold would scramble it.
        std::string serial;
        for (std::size_t i = 0; i < n; ++i)
            serial += std::to_string(mix(seed, i) % 1000) + ",";

        const std::string parallel = pool->mapReduce(
            n, std::string{},
            [&](std::size_t i) {
                return std::to_string(mix(seed, i) % 1000) + ",";
            },
            [](std::string acc, std::string part) {
                return std::move(acc) + part;
            });
        EXPECT_EQ(parallel, serial) << "round " << round;
    }
}

TEST(PoolProperties, LowestIndexExceptionWinsDeterministically)
{
    Session session({4, 0});
    exec::ThreadPool *pool = session.pool();
    ASSERT_NE(pool, nullptr);

    util::Rng picks(99);
    for (int round = 0; round < 6; ++round) {
        const std::size_t n =
            16 + static_cast<std::size_t>(picks.nextBelow(48));
        // A random subset of indices throws; the survivor of the
        // race must always be the lowest one.
        std::vector<std::size_t> throwers;
        for (std::size_t i = 0; i < n; ++i)
            if (picks.nextBelow(4) == 0)
                throwers.push_back(i);
        if (throwers.empty())
            throwers.push_back(n / 2);
        const std::size_t lowest = throwers.front();

        std::atomic<std::uint64_t> sink{0};
        try {
            pool->parallelFor(n, [&](std::size_t i) {
                for (const std::size_t t : throwers)
                    if (i == t)
                        throw std::runtime_error(
                            "index " + std::to_string(i));
                sink.fetch_add(mix(1, i),
                               std::memory_order_relaxed);
            });
            FAIL() << "parallelFor swallowed the exception";
        } catch (const std::runtime_error &e) {
            EXPECT_EQ(std::string(e.what()),
                      "index " + std::to_string(lowest))
                << "round " << round;
        }
    }
}

TEST(PoolProperties, SessionPoolIsReusedAcrossRuns)
{
    // The counters accumulate across parallelFor calls: the pool is
    // one process-lifetime object, not rebuilt per run.
    Session session({2, 0});
    exec::ThreadPool *pool = session.pool();
    ASSERT_NE(pool, nullptr);

    std::atomic<std::uint64_t> sink{0};
    for (int run = 0; run < 3; ++run)
        pool->parallelFor(10, [&](std::size_t i) {
            sink.fetch_add(i, std::memory_order_relaxed);
        });

    std::uint64_t total = 0;
    for (const exec::WorkerStats &w : session.workerStats())
        total += w.jobsRun;
    EXPECT_EQ(total, 30u);
    EXPECT_EQ(sink.load(), 3u * 45u);
}

} // namespace
