/**
 * @file
 * CancelToken semantics: latching, external-flag linkage, deadline
 * arming/tripping, and (under -DSUIT_SANITIZE=thread) race freedom
 * between concurrent pollers and a thread re-arming the deadline.
 */

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/cancel.hh"

namespace {

using suit::runtime::Cancelled;
using suit::runtime::CancelToken;

TEST(CancelToken, StartsUntripped)
{
    CancelToken token;
    EXPECT_FALSE(token.cancelled());
    EXPECT_FALSE(token.hasDeadline());
    EXPECT_NO_THROW(token.throwIfCancelled());
}

TEST(CancelToken, CancelLatchesAndThrows)
{
    CancelToken token;
    token.cancel();
    EXPECT_TRUE(token.cancelled());
    EXPECT_TRUE(token.cancelled()); // still tripped
    EXPECT_THROW(token.throwIfCancelled(), Cancelled);
}

TEST(CancelToken, ExternalFlagTripsAndLatches)
{
    std::atomic<bool> flag{false};
    CancelToken token;
    token.linkExternal(&flag);
    EXPECT_FALSE(token.cancelled());

    flag.store(true);
    EXPECT_TRUE(token.cancelled());

    // Unlinking (or even lowering) the flag cannot un-cancel: the
    // token latched on the first observed true.
    token.linkExternal(nullptr);
    flag.store(false);
    EXPECT_TRUE(token.cancelled());
}

TEST(CancelToken, ZeroDeadlineTripsOnNextPoll)
{
    CancelToken token;
    token.setDeadlineAfter(0.0);
    EXPECT_TRUE(token.hasDeadline());
    EXPECT_TRUE(token.cancelled());
}

TEST(CancelToken, FarDeadlineDoesNotTrip)
{
    CancelToken token;
    token.setDeadlineAfter(3600.0);
    EXPECT_TRUE(token.hasDeadline());
    EXPECT_FALSE(token.cancelled());
    token.clearDeadline();
    EXPECT_FALSE(token.hasDeadline());
    EXPECT_FALSE(token.cancelled());
}

TEST(CancelToken, ClearingADeadlineAfterTheTripDoesNotUncancel)
{
    CancelToken token;
    token.setDeadlineAfter(0.0);
    ASSERT_TRUE(token.cancelled()); // latches here
    token.clearDeadline();
    EXPECT_TRUE(token.cancelled());
}

/**
 * The TSan target of the suite: many threads poll cancelled() and
 * throwIfCancelled() while one thread re-arms the deadline, links
 * and unlinks an external flag, and finally cancels outright.  Every
 * access is an atomic, so the test must pass clean under
 * -DSUIT_SANITIZE=thread; functionally, every poller must observe
 * the final cancel.
 */
TEST(CancelToken, ConcurrentPollingRacesCleanlyWithArming)
{
    CancelToken token;
    std::atomic<bool> external{false};
    std::atomic<bool> go{false};
    constexpr int kPollers = 4;

    std::vector<std::thread> pollers;
    std::vector<std::uint64_t> polls(kPollers, 0);
    pollers.reserve(kPollers);
    for (int p = 0; p < kPollers; ++p) {
        pollers.emplace_back([&, p] {
            while (!go.load(std::memory_order_acquire)) {
            }
            // Poll until the trip is visible; count iterations so
            // the loop cannot be optimised away.
            while (!token.cancelled())
                ++polls[static_cast<std::size_t>(p)];
            try {
                token.throwIfCancelled();
                FAIL() << "tripped token did not throw";
            } catch (const Cancelled &) {
            }
        });
    }

    go.store(true, std::memory_order_release);
    for (int i = 0; i < 1000; ++i) {
        token.setDeadlineAfter(3600.0);
        token.linkExternal(i % 2 == 0 ? &external : nullptr);
        token.clearDeadline();
    }
    token.linkExternal(&external);
    external.store(true);
    for (std::thread &t : pollers)
        t.join();
    EXPECT_TRUE(token.cancelled());
}

} // namespace
