/**
 * @file
 * Tests of the CMOS power model, guardbands, undervolt response,
 * energy meter and transition models.
 */

#include <gtest/gtest.h>

#include "power/cmos.hh"
#include "power/energy.hh"
#include "power/guardband.hh"
#include "power/transition.hh"
#include "power/undervolt.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace {

using namespace suit::power;
using suit::util::Rng;
using suit::util::RunningStats;

TEST(Cmos, ReproducesCalibrationPoint)
{
    const CmosPowerModel m(4.55e9, 1100.0, 93.0, 0.7);
    EXPECT_NEAR(m.powerW(4.55e9, 1100.0), 93.0, 1e-9);
    EXPECT_NEAR(m.dynamicPowerW(4.55e9, 1100.0), 93.0 * 0.7, 1e-9);
    EXPECT_NEAR(m.leakagePowerW(1100.0), 93.0 * 0.3, 1e-9);
}

TEST(Cmos, DynamicPowerIsQuadraticInVoltage)
{
    const CmosPowerModel m(4e9, 1000.0, 100.0, 1.0);
    const double p1 = m.dynamicPowerW(4e9, 1000.0);
    const double p2 = m.dynamicPowerW(4e9, 500.0);
    EXPECT_NEAR(p1 / p2, 4.0, 1e-9);
}

TEST(Cmos, DynamicPowerIsLinearInFrequencyAndActivity)
{
    const CmosPowerModel m(4e9, 1000.0, 100.0, 1.0);
    EXPECT_NEAR(m.dynamicPowerW(2e9, 1000.0) * 2,
                m.dynamicPowerW(4e9, 1000.0), 1e-9);
    EXPECT_NEAR(m.dynamicPowerW(4e9, 1000.0, 0.5) * 2,
                m.dynamicPowerW(4e9, 1000.0, 1.0), 1e-9);
}

TEST(Guardband, AgingBandMatchesPaper)
{
    // Paper Sec. 5.6: 137 mV (~12 % of 1174 mV) on the i9-9900K.
    const GuardbandModel gb;
    const DvfsCurve curve = i9_9900kCurve();
    const double aging = gb.agingBandMv(curve, 5e9);
    EXPECT_NEAR(aging, 137.0, 5.0);
    EXPECT_NEAR(aging / curve.voltageAtMv(5e9), 0.12, 0.01);
}

TEST(Guardband, TemperatureBandMatchesPaper)
{
    // Paper Sec. 5.7: 35 mV between 50 and 88 degC, ~3.5 % of 991 mV.
    const GuardbandModel gb;
    EXPECT_DOUBLE_EQ(gb.temperatureBandAtMv(50.0), 0.0);
    EXPECT_DOUBLE_EQ(gb.temperatureBandAtMv(88.0), 35.0);
    EXPECT_NEAR(gb.temperatureBandAtMv(69.0), 17.5, 0.1);
}

TEST(Guardband, MaxUndervoltMatchesTable3)
{
    const GuardbandModel gb;
    EXPECT_NEAR(gb.maxUndervoltAtTempMv(50.0), -90.0, 0.1);
    EXPECT_NEAR(gb.maxUndervoltAtTempMv(88.0), -55.0, 0.1);
}

TEST(Guardband, SuitOffsetsMatchEvaluationPoints)
{
    // Paper Sec. 3.1: -70 mV from instruction variation alone,
    // -97 mV with 20 % of the aging band.
    const GuardbandModel gb;
    const DvfsCurve curve = i9_9900kCurve();
    EXPECT_NEAR(suitUndervoltOffsetMv(gb, curve, 5e9, 0.0), -70.0, 0.5);
    EXPECT_NEAR(suitUndervoltOffsetMv(gb, curve, 5e9, 0.2), -97.0, 1.5);
}

TEST(Undervolt, InterpolatesTable2Anchors)
{
    const UndervoltResponse r = i9_9900kUndervoltResponse();
    EXPECT_NEAR(r.at(-70.0).scoreDelta, 0.022, 1e-9);
    EXPECT_NEAR(r.at(-97.0).powerDelta, -0.16, 1e-9);
    EXPECT_NEAR(r.at(0.0).scoreDelta, 0.0, 1e-9);
    // Between anchors: monotone interpolation.
    const UndervoltEffect mid = r.at(-83.0);
    EXPECT_GT(mid.scoreDelta, 0.022);
    EXPECT_LT(mid.scoreDelta, 0.038);
    EXPECT_LT(mid.powerDelta, -0.072);
    EXPECT_GT(mid.powerDelta, -0.16);
}

TEST(Undervolt, EfficiencyMatchesTable2)
{
    // Table 2: i9-9900K at -97 mV: +3.8 % score, -16 % power
    // -> +23 % efficiency.
    const UndervoltEffect e = i9_9900kUndervoltResponse().at(-97.0);
    EXPECT_NEAR(e.efficiencyDelta(), 0.23, 0.02);
    // 7700X at -97 mV: +20 %.
    const UndervoltEffect a = ryzen7700xUndervoltResponse().at(-97.0);
    EXPECT_NEAR(a.efficiencyDelta(), 0.20, 0.02);
}

TEST(Energy, IntegratesPiecewiseConstantPower)
{
    EnergyMeter m;
    m.advance(suit::util::secondsToTicks(2.0), 10.0); // 20 J
    m.advance(suit::util::secondsToTicks(3.0), 30.0); // +30 J
    EXPECT_NEAR(m.energyJ(), 50.0, 1e-9);
    EXPECT_NEAR(m.averagePowerW(), 50.0 / 3.0, 1e-9);
    m.reset();
    EXPECT_DOUBLE_EQ(m.energyJ(), 0.0);
}

TEST(Energy, EfficiencyDefinitionFromPaper)
{
    // Half the time at half the power -> 4x efficiency (Sec. 5.4).
    EXPECT_NEAR(efficiencyRatio(0.5, 0.5), 4.0, 1e-12);
    EXPECT_NEAR(efficiencyDelta(1.0, 1.0), 0.0, 1e-12);
}

TEST(Transition, SampleStaysWithinBounds)
{
    Rng rng(77);
    const DelayDistribution d{100.0, 10.0, 120.0};
    for (int i = 0; i < 1000; ++i) {
        const double us =
            suit::util::ticksToMicroseconds(d.sample(rng));
        EXPECT_GE(us, 0.0);
        EXPECT_LE(us, 120.0);
    }
}

TEST(Transition, MeasuredMeansMatchPaper)
{
    Rng rng(78);
    RunningStats volt, freq;
    const TransitionModel i9 = i9_9900kTransitionModel();
    for (int i = 0; i < 2000; ++i) {
        volt.add(
            suit::util::ticksToMicroseconds(i9.voltageChange.sample(rng)));
        freq.add(
            suit::util::ticksToMicroseconds(i9.freqChange.sample(rng)));
    }
    EXPECT_NEAR(volt.mean(), 350.0, 5.0); // Fig. 8
    EXPECT_NEAR(freq.mean(), 22.0, 0.5);  // Fig. 9
}

TEST(Transition, VoltageWaveformSettles)
{
    Rng rng(79);
    const auto wave = voltageStepWaveform(i9_9900kTransitionModel(),
                                          800.0, 900.0, rng);
    ASSERT_FALSE(wave.empty());
    EXPECT_NEAR(wave.front().value, 800.0, 5.0);
    EXPECT_NEAR(wave.back().value, 900.0, 5.0);
    // Monotone apart from noise: last pre-trigger sample still low.
    for (const auto &s : wave) {
        if (s.timeUs < 0)
            EXPECT_NEAR(s.value, 800.0, 5.0);
    }
}

TEST(Transition, FrequencyWaveformHasStallGap)
{
    Rng rng(80);
    const auto wave = frequencyStepWaveform(i9_9900kTransitionModel(),
                                            3.0e9, 2.6e9, rng);
    // No samples survive inside the stall window.
    double biggest_gap = 0.0;
    for (std::size_t i = 1; i < wave.size(); ++i)
        biggest_gap =
            std::max(biggest_gap, wave[i].timeUs - wave[i - 1].timeUs);
    EXPECT_GT(biggest_gap, 10.0); // the ~22 us stall
    EXPECT_NEAR(wave.back().value, 2.6e9, 0.05e9);
}

TEST(Transition, AmdWaveformHasNoStall)
{
    Rng rng(81);
    const auto wave = frequencyStepWaveform(ryzen7700xTransitionModel(),
                                            4.5e9, 2.0e9, rng,
                                            10.0);
    double biggest_gap = 0.0;
    for (std::size_t i = 1; i < wave.size(); ++i)
        biggest_gap =
            std::max(biggest_gap, wave[i].timeUs - wave[i - 1].timeUs);
    EXPECT_NEAR(biggest_gap, 10.0, 1.0); // uniform sampling
}

} // namespace
