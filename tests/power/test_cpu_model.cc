/**
 * @file
 * Tests of the evaluated CPU models (paper Sec. 6.2).
 */

#include <gtest/gtest.h>

#include "power/cpu_model.hh"

namespace {

using namespace suit::power;

TEST(CpuModels, DomainsMatchPaper)
{
    EXPECT_EQ(cpuA_i9_9900k().domains(), DomainLayout::SharedAll);
    EXPECT_EQ(cpuB_ryzen7700x().domains(),
              DomainLayout::PerCoreFrequency);
    EXPECT_EQ(cpuC_xeon4208().domains(), DomainLayout::PerCoreAll);
}

TEST(CpuModels, ExceptionDelaysMatchSec53)
{
    EXPECT_DOUBLE_EQ(cpuA_i9_9900k().exceptionDelayUs(), 0.34);
    EXPECT_DOUBLE_EQ(cpuA_i9_9900k().emulationCallUs(), 0.77);
    EXPECT_DOUBLE_EQ(cpuB_ryzen7700x().exceptionDelayUs(), 0.11);
    EXPECT_DOUBLE_EQ(cpuB_ryzen7700x().emulationCallUs(), 0.27);
}

TEST(CpuModels, PStateNames)
{
    EXPECT_STREQ(toString(SuitPState::Efficient), "E");
    EXPECT_STREQ(toString(SuitPState::ConservativeFreq), "Cf");
    EXPECT_STREQ(toString(SuitPState::ConservativeVolt), "CV");
}

TEST(CpuModels, EfficientCurveIsLower)
{
    const CpuModel cpu = cpuA_i9_9900k();
    const DvfsCurve eff = cpu.efficientCurve(-97.0);
    EXPECT_LT(eff.voltageAtMv(cpu.baseFreqHz()),
              cpu.conservativeCurve().voltageAtMv(cpu.baseFreqHz()));
}

TEST(CpuModels, CfFrequencyIsBelowBase)
{
    for (const CpuModel &cpu :
         {cpuA_i9_9900k(), cpuB_ryzen7700x(), cpuC_xeon4208()}) {
        const double f_cf = cpu.cfFreqHz(-97.0);
        EXPECT_LT(f_cf, cpu.baseFreqHz()) << cpu.name();
        EXPECT_GT(f_cf, 0.5 * cpu.baseFreqHz()) << cpu.name();
        // Shallower undervolt -> smaller frequency drop.
        EXPECT_GT(cpu.cfFreqHz(-70.0), f_cf) << cpu.name();
    }
}

TEST(CpuModels, PerfFactorOrdering)
{
    const CpuModel cpu = cpuC_xeon4208();
    const double offset = -97.0;
    const double e = cpu.perfFactor(SuitPState::Efficient, offset);
    const double cv =
        cpu.perfFactor(SuitPState::ConservativeVolt, offset);
    const double cf =
        cpu.perfFactor(SuitPState::ConservativeFreq, offset);
    EXPECT_GT(e, cv);  // undervolting buys clocks (Table 2)
    EXPECT_GT(cv, cf); // Cf runs slower
    EXPECT_DOUBLE_EQ(cv, 1.0);
}

TEST(CpuModels, PowerFactorOrdering)
{
    const CpuModel cpu = cpuC_xeon4208();
    const double offset = -97.0;
    const double e = cpu.powerFactor(SuitPState::Efficient, offset);
    const double cv =
        cpu.powerFactor(SuitPState::ConservativeVolt, offset);
    const double cf =
        cpu.powerFactor(SuitPState::ConservativeFreq, offset);
    EXPECT_LT(e, cv); // efficient saves power
    // Cf runs at the same reduced voltage as E and is charged the
    // measured efficient-curve package power (see CpuModel).
    EXPECT_DOUBLE_EQ(cf, e);
    EXPECT_DOUBLE_EQ(cv, 1.0);
}

TEST(CpuModels, VendorIdentifiesAmdPart)
{
    // Only B (the Ryzen 7700X) is AMD; the simulator's hot path
    // selects the Table 4 no-SIMD row through isAmd() instead of a
    // per-event string compare on label().
    EXPECT_EQ(cpuA_i9_9900k().vendor(), Vendor::Intel);
    EXPECT_EQ(cpuB_ryzen7700x().vendor(), Vendor::Amd);
    EXPECT_EQ(cpuC_xeon4208().vendor(), Vendor::Intel);
    EXPECT_EQ(cpu_i5_1035g1().vendor(), Vendor::Intel);
    EXPECT_TRUE(cpuB_ryzen7700x().isAmd());
    EXPECT_FALSE(cpuC_xeon4208().isAmd());
}

TEST(CpuModels, FactorsTableIsBitIdenticalToPerCallFunctions)
{
    for (const CpuModel &cpu :
         {cpuA_i9_9900k(), cpuB_ryzen7700x(), cpuC_xeon4208()}) {
        for (const double offset : {-50.0, -70.0, -97.0}) {
            const PStateFactors f = cpu.factorsAt(offset);
            for (const SuitPState p :
                 {SuitPState::Efficient, SuitPState::ConservativeFreq,
                  SuitPState::ConservativeVolt}) {
                EXPECT_DOUBLE_EQ(f.perf[pstateIndex(p)],
                                 cpu.perfFactor(p, offset));
                EXPECT_DOUBLE_EQ(f.power[pstateIndex(p)],
                                 cpu.powerFactor(p, offset));
            }
        }
    }
}

TEST(CpuModels, ZeroOffsetIsNeutral)
{
    const CpuModel cpu = cpuA_i9_9900k();
    EXPECT_NEAR(cpu.perfFactor(SuitPState::Efficient, 0.0), 1.0, 1e-9);
    EXPECT_NEAR(cpu.powerFactor(SuitPState::Efficient, 0.0), 1.0, 1e-9);
    EXPECT_NEAR(cpu.cfFreqHz(0.0), cpu.baseFreqHz(),
                0.01 * cpu.baseFreqHz());
}

} // namespace
