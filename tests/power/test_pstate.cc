/**
 * @file
 * Tests of DVFS curves and the measured i9-9900K curve (Fig. 13).
 */

#include <gtest/gtest.h>

#include "power/pstate.hh"

namespace {

using namespace suit::power;

TEST(DvfsCurve, InterpolatesBetweenAnchors)
{
    DvfsCurve c({{1e9, 800.0}, {3e9, 1000.0}}, "test");
    EXPECT_DOUBLE_EQ(c.voltageAtMv(1e9), 800.0);
    EXPECT_DOUBLE_EQ(c.voltageAtMv(3e9), 1000.0);
    EXPECT_DOUBLE_EQ(c.voltageAtMv(2e9), 900.0);
}

TEST(DvfsCurve, ClampsOutsideRange)
{
    DvfsCurve c({{1e9, 800.0}, {3e9, 1000.0}}, "test");
    EXPECT_DOUBLE_EQ(c.voltageAtMv(0.5e9), 800.0);
    EXPECT_DOUBLE_EQ(c.voltageAtMv(9e9), 1000.0);
    EXPECT_DOUBLE_EQ(c.freqAtHz(700.0), 1e9);
    EXPECT_DOUBLE_EQ(c.freqAtHz(1200.0), 3e9);
}

TEST(DvfsCurve, InverseLookupIsConsistent)
{
    const DvfsCurve c = i9_9900kCurve();
    for (double ghz = 1.5; ghz <= 5.0; ghz += 0.25) {
        const double v = c.voltageAtMv(ghz * 1e9);
        if (v > c.points().front().voltageMv + 1.0) {
            EXPECT_NEAR(c.freqAtHz(v) / 1e9, ghz, 0.01)
                << "at " << ghz << " GHz";
        }
    }
}

TEST(DvfsCurve, ShiftedLowersVoltages)
{
    const DvfsCurve base = i9_9900kCurve();
    const DvfsCurve eff = base.shifted(-97.0, "efficient");
    for (double ghz = 1.0; ghz <= 5.0; ghz += 0.5) {
        EXPECT_LE(eff.voltageAtMv(ghz * 1e9),
                  base.voltageAtMv(ghz * 1e9));
    }
    // At the top the full offset applies.
    EXPECT_NEAR(eff.voltageAtMv(5e9), base.voltageAtMv(5e9) - 97.0,
                1e-9);
}

TEST(DvfsCurve, ShiftRespectsFloor)
{
    DvfsCurve c({{1e9, 600.0}, {3e9, 1000.0}}, "test");
    const DvfsCurve shifted = c.shifted(-200.0, "deep", 550.0);
    EXPECT_DOUBLE_EQ(shifted.voltageAtMv(1e9), 550.0);
    EXPECT_DOUBLE_EQ(shifted.voltageAtMv(3e9), 800.0);
}

TEST(I9Curve, MatchesPaperMeasurements)
{
    const DvfsCurve c = i9_9900kCurve();
    // Paper Sec. 5.6: 991 mV at 4 GHz, 1174 mV at 5 GHz,
    // 183 mV/GHz between them.
    EXPECT_NEAR(c.voltageAtMv(4e9), 991.0, 2.0);
    EXPECT_NEAR(c.voltageAtMv(5e9), 1174.0, 2.0);
    EXPECT_NEAR(c.gradientMvPerGhz(4.5e9), 183.0, 5.0);
}

TEST(I9Curve, ModifiedImulSavesUpTo220mv)
{
    const DvfsCurve base = i9_9900kCurve();
    const DvfsCurve imul = i9_9900kModifiedImulCurve();
    // Paper Sec. 6.9: 220 mV lower at 5 GHz, negligible at the floor.
    EXPECT_NEAR(base.voltageAtMv(5e9) - imul.voltageAtMv(5e9), 220.0,
                5.0);
    EXPECT_NEAR(base.voltageAtMv(1e9) - imul.voltageAtMv(1e9), 0.0,
                5.0);
    // Never higher than the base curve anywhere.
    for (double ghz = 1.0; ghz <= 5.0; ghz += 0.25)
        EXPECT_LE(imul.voltageAtMv(ghz * 1e9),
                  base.voltageAtMv(ghz * 1e9) + 1e-9);
}

} // namespace
