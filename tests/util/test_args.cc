/**
 * @file
 * Tests of the command-line option parser.
 */

#include <gtest/gtest.h>
#include <vector>

#include "util/args.hh"

namespace {

using suit::util::ArgParser;

/** argv helper. */
class Argv
{
  public:
    explicit Argv(std::initializer_list<const char *> args)
    {
        strings_.emplace_back("prog");
        for (const char *a : args)
            strings_.emplace_back(a);
        for (auto &s : strings_)
            ptrs_.push_back(s.data());
    }
    int argc() const { return static_cast<int>(ptrs_.size()); }
    char **argv() { return ptrs_.data(); }

  private:
    std::vector<std::string> strings_;
    std::vector<char *> ptrs_;
};

ArgParser
makeParser()
{
    ArgParser p("test", "a test tool");
    p.addOption("cpu", "C", "cpu name");
    p.addOption("offset", "-97", "offset in mV");
    p.addOption("cores", "1", "core count");
    p.addFlag("verbose", "chatty output");
    return p;
}

TEST(Args, DefaultsApply)
{
    ArgParser p = makeParser();
    Argv a({});
    ASSERT_TRUE(p.parse(a.argc(), a.argv()));
    EXPECT_EQ(p.get("cpu"), "C");
    EXPECT_DOUBLE_EQ(p.getDouble("offset"), -97.0);
    EXPECT_EQ(p.getInt("cores"), 1);
    EXPECT_FALSE(p.getFlag("verbose"));
}

TEST(Args, SpaceAndEqualsForms)
{
    ArgParser p = makeParser();
    Argv a({"--cpu", "A", "--offset=-70", "--verbose"});
    ASSERT_TRUE(p.parse(a.argc(), a.argv()));
    EXPECT_EQ(p.get("cpu"), "A");
    EXPECT_DOUBLE_EQ(p.getDouble("offset"), -70.0);
    EXPECT_TRUE(p.getFlag("verbose"));
}

TEST(Args, PositionalsCollected)
{
    ArgParser p = makeParser();
    Argv a({"gen", "--cpu", "B", "file.sfb"});
    ASSERT_TRUE(p.parse(a.argc(), a.argv()));
    ASSERT_EQ(p.positional().size(), 2u);
    EXPECT_EQ(p.positional()[0], "gen");
    EXPECT_EQ(p.positional()[1], "file.sfb");
}

TEST(Args, HelpReturnsFalseAndPrintsUsage)
{
    ArgParser p = makeParser();
    Argv a({"--help"});
    ::testing::internal::CaptureStdout();
    EXPECT_FALSE(p.parse(a.argc(), a.argv()));
    const std::string out =
        ::testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("--cpu"), std::string::npos);
    EXPECT_NE(out.find("a test tool"), std::string::npos);
}

TEST(ArgsDeathTest, UnknownOptionIsFatal)
{
    ArgParser p = makeParser();
    Argv a({"--bogus", "1"});
    EXPECT_EXIT(p.parse(a.argc(), a.argv()),
                ::testing::ExitedWithCode(1), "unknown option");
}

TEST(ArgsDeathTest, MissingValueIsFatal)
{
    ArgParser p = makeParser();
    Argv a({"--cpu"});
    EXPECT_EXIT(p.parse(a.argc(), a.argv()),
                ::testing::ExitedWithCode(1), "needs a value");
}

TEST(ArgsDeathTest, NonNumericValueIsFatal)
{
    ArgParser p = makeParser();
    Argv a({"--offset", "deep"});
    ASSERT_TRUE(p.parse(a.argc(), a.argv()));
    EXPECT_EXIT(p.getDouble("offset"),
                ::testing::ExitedWithCode(1), "expects a number");
}

TEST(ArgsDeathTest, IntegerOverflowIsFatalNotSaturated)
{
    // Regression: strtol used to saturate silently at LONG_MAX.
    ArgParser p = makeParser();
    Argv a({"--cores", "99999999999999999999999999"});
    ASSERT_TRUE(p.parse(a.argc(), a.argv()));
    EXPECT_EXIT(p.getInt("cores"), ::testing::ExitedWithCode(1),
                "out of range");
}

TEST(ArgsDeathTest, DoubleOverflowIsFatalNotInfinity)
{
    // Regression: strtod used to return +inf silently on overflow.
    ArgParser p = makeParser();
    Argv a({"--offset", "-1e99999"});
    ASSERT_TRUE(p.parse(a.argc(), a.argv()));
    EXPECT_EXIT(p.getDouble("offset"), ::testing::ExitedWithCode(1),
                "out of range");
}

TEST(ArgsDeathTest, TrailingJunkIsFatal)
{
    ArgParser p = makeParser();
    Argv a({"--cores", "12x"});
    ASSERT_TRUE(p.parse(a.argc(), a.argv()));
    EXPECT_EXIT(p.getInt("cores"), ::testing::ExitedWithCode(1),
                "expects an integer");
}

TEST(Args, IntInRangeAcceptsBounds)
{
    ArgParser p = makeParser();
    Argv a({"--cores", "1024"});
    ASSERT_TRUE(p.parse(a.argc(), a.argv()));
    // Inclusive on both ends.
    EXPECT_EQ(p.getIntInRange("cores", 1, 1024), 1024);
    EXPECT_EQ(p.getIntInRange("cores", 1024, 2048), 1024);
}

TEST(ArgsDeathTest, IntBelowRangeIsFatalWithRange)
{
    ArgParser p = makeParser();
    Argv a({"--cores", "0"});
    ASSERT_TRUE(p.parse(a.argc(), a.argv()));
    // The message must name the permitted range, not just reject.
    EXPECT_EXIT(p.getIntInRange("cores", 1, 1024),
                ::testing::ExitedWithCode(1),
                "out of range \\[1, 1024\\]");
}

TEST(ArgsDeathTest, IntAboveRangeIsFatalNotNarrowed)
{
    // Regression: 5000000000 parses as a long, and a bare
    // static_cast<int> would wrap it to 705032704.
    ArgParser p = makeParser();
    Argv a({"--cores", "5000000000"});
    ASSERT_TRUE(p.parse(a.argc(), a.argv()));
    EXPECT_EXIT(p.getIntInRange("cores", 1, 1024),
                ::testing::ExitedWithCode(1),
                "out of range \\[1, 1024\\]");
}

TEST(ArgsDeathTest, IntInRangeStillRejectsBadFormat)
{
    ArgParser p = makeParser();
    Argv a({"--cores", "8x"});
    ASSERT_TRUE(p.parse(a.argc(), a.argv()));
    EXPECT_EXIT(p.getIntInRange("cores", 1, 1024),
                ::testing::ExitedWithCode(1), "expects an integer");
}

TEST(Args, CheckedParsersReportStatus)
{
    using suit::util::ParseStatus;
    using suit::util::tryParseDouble;
    using suit::util::tryParseLong;

    long l = 0;
    EXPECT_EQ(tryParseLong("42", l), ParseStatus::Ok);
    EXPECT_EQ(l, 42);
    EXPECT_EQ(tryParseLong("-7", l), ParseStatus::Ok);
    EXPECT_EQ(l, -7);
    EXPECT_EQ(tryParseLong("", l), ParseStatus::BadFormat);
    EXPECT_EQ(tryParseLong("x", l), ParseStatus::BadFormat);
    EXPECT_EQ(tryParseLong("12x", l), ParseStatus::BadFormat);
    EXPECT_EQ(tryParseLong("9999999999999999999999", l),
              ParseStatus::OutOfRange);
    // Failed parses must not clobber the previous value.
    EXPECT_EQ(l, -7);

    double d = 0.0;
    EXPECT_EQ(tryParseDouble("-97.5", d), ParseStatus::Ok);
    EXPECT_DOUBLE_EQ(d, -97.5);
    EXPECT_EQ(tryParseDouble("1e10", d), ParseStatus::Ok);
    EXPECT_EQ(tryParseDouble("deep", d), ParseStatus::BadFormat);
    EXPECT_EQ(tryParseDouble("1.5mv", d), ParseStatus::BadFormat);
    EXPECT_EQ(tryParseDouble("1e99999", d), ParseStatus::OutOfRange);
    // Subnormal underflow is accepted, not an error.
    EXPECT_EQ(tryParseDouble("1e-320", d), ParseStatus::Ok);
}

} // namespace
