/**
 * @file
 * Tests for formatting, tick conversions and the table printer.
 */

#include <gtest/gtest.h>

#include "util/format.hh"
#include "util/table.hh"
#include "util/ticks.hh"

namespace {

using namespace suit::util;

TEST(Format, BasicSubstitution)
{
    EXPECT_EQ(sformat("x=%d y=%s", 42, "ok"), "x=42 y=ok");
    EXPECT_EQ(sformat("%.2f%%", 12.345), "12.35%");
    EXPECT_EQ(sformat("plain"), "plain");
}

TEST(Format, LongStringsDoNotTruncate)
{
    const std::string big(5000, 'a');
    EXPECT_EQ(sformat("%s!", big.c_str()).size(), 5001u);
}

TEST(Ticks, RoundTripSeconds)
{
    EXPECT_EQ(secondsToTicks(1.0), kTicksPerSec);
    EXPECT_DOUBLE_EQ(ticksToSeconds(kTicksPerSec), 1.0);
    EXPECT_EQ(microsecondsToTicks(2.5), 2'500'000ull);
    EXPECT_DOUBLE_EQ(ticksToMicroseconds(2'500'000), 2.5);
}

TEST(Ticks, FrequencyPeriodDuality)
{
    const Tick period = frequencyToPeriod(4e9); // 4 GHz -> 250 ps...
    EXPECT_EQ(period, 250u);
    EXPECT_DOUBLE_EQ(periodToFrequency(250), 4e9);
}

TEST(Ticks, LowFrequencies)
{
    EXPECT_EQ(frequencyToPeriod(1e6), kTicksPerUs);
}

TEST(Table, AlignsColumns)
{
    TablePrinter t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer-name", "22"});
    const std::string out = t.render();
    // Header, separator, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
    // Columns aligned: both value cells start at the same offset.
    const auto line_start = [&](int n) {
        std::size_t pos = 0;
        for (int i = 0; i < n; ++i)
            pos = out.find('\n', pos) + 1;
        return pos;
    };
    const std::string row_a = out.substr(line_start(2), 16);
    const std::string row_b = out.substr(line_start(3), 16);
    EXPECT_EQ(row_a.find('1'), row_b.find('2'));
}

TEST(Table, SeparatorRows)
{
    TablePrinter t({"c"});
    t.addRow({"x"});
    t.addSeparator();
    t.addRow({"y"});
    const std::string out = t.render();
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
}

} // namespace
