/**
 * @file
 * Tests of the deterministic RNG and its distributions.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "util/rng.hh"
#include "util/stats.hh"

namespace {

using suit::util::Rng;
using suit::util::RunningStats;

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng rng(5);
    for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(6);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(8);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(9);
    RunningStats s;
    for (int i = 0; i < 50000; ++i)
        s.add(rng.nextExponential(4.0));
    EXPECT_NEAR(s.mean(), 4.0, 0.15);
    EXPECT_GE(s.min(), 0.0);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(10);
    RunningStats s;
    for (int i = 0; i < 50000; ++i)
        s.add(rng.nextGaussian(2.0, 3.0));
    EXPECT_NEAR(s.mean(), 2.0, 0.1);
    EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(Rng, LogNormalMean)
{
    // E[lognormal(mu, sigma)] = exp(mu + sigma^2 / 2).
    Rng rng(11);
    RunningStats s;
    const double mu = 1.0, sigma = 0.5;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.nextLogNormal(mu, sigma));
    EXPECT_NEAR(s.mean(), std::exp(mu + sigma * sigma / 2), 0.05);
}

TEST(Rng, ParetoRespectsScale)
{
    Rng rng(12);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(rng.nextPareto(2.0, 1.5), 2.0);
}

TEST(Rng, SplitDecorrelates)
{
    Rng parent(13);
    Rng child = parent.split();
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += parent.next() == child.next();
    EXPECT_LT(equal, 3);
}

} // namespace
