/**
 * @file
 * Tests of the shared SIGINT guard: graceful first Ctrl-C, lethal
 * second Ctrl-C, and handler restoration on destruction.
 */

#include <csignal>

#include <gtest/gtest.h>

#include "util/sigint.hh"

namespace {

using suit::util::SigintGuard;

TEST(Sigint, FirstSigintLatchesFlagAndKeepsRunning)
{
    SigintGuard guard;
    EXPECT_FALSE(guard.requested());
    EXPECT_FALSE(guard.flag()->load());

    ASSERT_EQ(std::raise(SIGINT), 0);

    // Still here: the first SIGINT is a graceful stop request.
    EXPECT_TRUE(guard.requested());
    EXPECT_TRUE(guard.flag()->load());
}

TEST(SigintDeathTest, SecondSigintKillsTheProcess)
{
    // Regression for the CLI contract: Ctrl-C twice must terminate
    // immediately instead of being swallowed by the handler.
    EXPECT_EXIT(
        {
            SigintGuard guard;
            std::raise(SIGINT);
            std::raise(SIGINT);
        },
        ::testing::KilledBySignal(SIGINT), "");
}

TEST(Sigint, RestoresPreviousHandlerOnDestruct)
{
    // Install a recognisable disposition, wrap a guard lifetime
    // around it, and check it comes back.
    void (*prev)(int) = std::signal(SIGINT, SIG_IGN);
    {
        SigintGuard guard;
    }
    EXPECT_EQ(std::signal(SIGINT, SIG_DFL), SIG_IGN);
    std::signal(SIGINT, prev == SIG_ERR ? SIG_DFL : prev);
}

TEST(Sigint, RequestRaisesTheFlagWithoutASignal)
{
    SigintGuard guard;
    guard.request();
    EXPECT_TRUE(guard.requested());
    EXPECT_TRUE(guard.flag()->load());
}

} // namespace
