/**
 * @file
 * Tests of the statistics helpers.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "util/stats.hh"

namespace {

using suit::util::geomean;
using suit::util::LogHistogram;
using suit::util::median;
using suit::util::percentile;
using suit::util::RunningStats;

TEST(RunningStatsTest, BasicMoments)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 1e-3); // sample stddev
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, EmptyIsSafe)
{
    const RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, MergeEqualsSequential)
{
    RunningStats a, b, all;
    for (int i = 0; i < 100; ++i) {
        const double v = std::sin(i) * 10 + i * 0.1;
        (i < 40 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(GeomeanTest, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 9.0}), 6.0);
    EXPECT_DOUBLE_EQ(geomean({2.0, 2.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(MedianTest, OddAndEven)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
    EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
}

TEST(PercentileTest, Interpolates)
{
    const std::vector<double> v = {10.0, 20.0, 30.0, 40.0, 50.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 50.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 30.0);
    EXPECT_DOUBLE_EQ(percentile(v, 25.0), 20.0);
    EXPECT_DOUBLE_EQ(percentile(v, 12.5), 15.0);
}

TEST(LogHistogramTest, BucketsByDecade)
{
    LogHistogram h(6);
    h.add(0);    // underflow
    h.add(1);    // decade 0
    h.add(9);    // decade 0
    h.add(10);   // decade 1
    h.add(999);  // decade 2
    h.add(1000); // decade 3
    h.add(10'000'000); // overflow for 6 decades

    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 7u);
}

TEST(LogHistogramTest, RenderContainsAllDecades)
{
    LogHistogram h(4);
    h.add(5);
    h.add(500);
    const std::string out = h.render(20);
    EXPECT_NE(out.find("10^0"), std::string::npos);
    EXPECT_NE(out.find("10^3"), std::string::npos);
}

} // namespace
