/**
 * @file
 * Tests of the statistics helpers.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "util/stats.hh"

namespace {

using suit::util::BucketHistogram;
using suit::util::geomean;
using suit::util::LogHistogram;
using suit::util::median;
using suit::util::percentile;
using suit::util::RunningStats;

TEST(RunningStatsTest, BasicMoments)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 1e-3); // sample stddev
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, EmptyIsSafe)
{
    const RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, MergeEqualsSequential)
{
    RunningStats a, b, all;
    for (int i = 0; i < 100; ++i) {
        const double v = std::sin(i) * 10 + i * 0.1;
        (i < 40 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(GeomeanTest, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 9.0}), 6.0);
    EXPECT_DOUBLE_EQ(geomean({2.0, 2.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(MedianTest, OddAndEven)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
    EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
}

TEST(PercentileTest, Interpolates)
{
    const std::vector<double> v = {10.0, 20.0, 30.0, 40.0, 50.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 50.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 30.0);
    EXPECT_DOUBLE_EQ(percentile(v, 25.0), 20.0);
    EXPECT_DOUBLE_EQ(percentile(v, 12.5), 15.0);
}

TEST(LogHistogramTest, BucketsByDecade)
{
    LogHistogram h(6);
    h.add(0);    // underflow
    h.add(1);    // decade 0
    h.add(9);    // decade 0
    h.add(10);   // decade 1
    h.add(999);  // decade 2
    h.add(1000); // decade 3
    h.add(10'000'000); // overflow for 6 decades

    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 7u);
}

TEST(BucketHistogramTest, EmptyIsSafe)
{
    BucketHistogram h({1.0, 2.0});
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.bucketCount(), 3u);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);

    // Default construction: only the overflow bucket exists.
    BucketHistogram none;
    EXPECT_TRUE(none.bounds().empty());
    EXPECT_EQ(none.bucketCount(), 1u);
    none.add(42.0);
    EXPECT_EQ(none.count(0), 1u);
}

TEST(BucketHistogramTest, BinsOnInclusiveBounds)
{
    BucketHistogram h({1.0, 10.0, 100.0});
    h.add(0.5);   // bucket 0
    h.add(1.0);   // bucket 0 (inclusive upper bound)
    h.add(1.001); // bucket 1
    h.add(10.0);  // bucket 1
    h.add(99.0);  // bucket 2
    h.add(101.0); // overflow

    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(2), 1u);
    EXPECT_EQ(h.count(3), 1u);
    EXPECT_EQ(h.total(), 6u);
}

TEST(BucketHistogramTest, OneBoundSplitsAtThatValue)
{
    BucketHistogram h({5.0});
    h.add(4.0);
    h.add(5.0);
    h.add(6.0);
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(1), 1u);
    // All mass at or below the single bound clamps percentiles there.
    EXPECT_LE(h.percentile(50.0), 5.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 5.0);
}

TEST(BucketHistogramTest, OverflowClampsPercentileToLastBound)
{
    BucketHistogram h({1.0, 2.0});
    for (int i = 0; i < 10; ++i)
        h.add(1000.0); // every sample overflows
    EXPECT_EQ(h.count(2), 10u);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 2.0);
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 2.0);
}

TEST(BucketHistogramTest, MergeEqualsSequential)
{
    BucketHistogram a({1.0, 10.0});
    BucketHistogram b({1.0, 10.0});
    BucketHistogram all({1.0, 10.0});
    const double samples[] = {0.5, 3.0, 20.0, 0.9, 7.0, 15.0};
    int i = 0;
    for (const double s : samples) {
        (i++ % 2 == 0 ? a : b).add(s);
        all.add(s);
    }
    a.merge(b);
    EXPECT_EQ(a.total(), all.total());
    for (std::size_t j = 0; j < all.bucketCount(); ++j)
        EXPECT_EQ(a.count(j), all.count(j));
    EXPECT_DOUBLE_EQ(a.percentile(50.0), all.percentile(50.0));
}

TEST(BucketHistogramTest, AddCountFillsArbitraryBuckets)
{
    // The registry shard-merge path writes raw bucket counts.
    BucketHistogram h({1.0, 2.0});
    h.addCount(0, 3);
    h.addCount(2, 2); // overflow bucket index == bounds().size()
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.count(0), 3u);
    EXPECT_EQ(h.count(2), 2u);
}

TEST(LogHistogramTest, RenderContainsAllDecades)
{
    LogHistogram h(4);
    h.add(5);
    h.add(500);
    const std::string out = h.render(20);
    EXPECT_NE(out.find("10^0"), std::string::npos);
    EXPECT_NE(out.find("10^3"), std::string::npos);
}

TEST(ExactSumTest, IsExactWhereNaiveSummationIsNot)
{
    // 1e16 + 1 + ... + 1 - 1e16: naive left-to-right addition loses
    // every 1.0 (1e16 + 1 == 1e16 in double); the exact sum keeps
    // them all.
    suit::util::ExactSum s;
    s.add(1e16);
    for (int i = 0; i < 1000; ++i)
        s.add(1.0);
    s.add(-1e16);
    EXPECT_EQ(s.value(), 1000.0);
}

TEST(ExactSumTest, ValueIsGroupingAndOrderIndependent)
{
    // Awkward magnitudes in three different groupings/orders must
    // produce the same bits, which is what fleet shard merging
    // relies on.
    std::vector<double> values;
    for (int i = 0; i < 300; ++i)
        values.push_back((i % 2 ? 1.0 : -1.0) *
                         std::pow(10.0, (i * 7) % 25) /
                         (1.0 + i * 0.37));

    suit::util::ExactSum forward;
    for (const double v : values)
        forward.add(v);

    suit::util::ExactSum backward;
    for (std::size_t i = values.size(); i-- > 0;)
        backward.add(values[i]);

    suit::util::ExactSum left, right;
    for (std::size_t i = 0; i < values.size(); ++i)
        (i < values.size() / 3 ? left : right).add(values[i]);
    left.merge(right);

    EXPECT_EQ(forward.value(), backward.value());
    EXPECT_EQ(forward.value(), left.value());
}

TEST(ExactSumTest, PartsRoundTripRestoresTheState)
{
    suit::util::ExactSum s;
    for (int i = 0; i < 50; ++i)
        s.add(std::sin(i) * std::pow(2.0, i % 40));

    suit::util::ExactSum restored =
        suit::util::ExactSum::fromParts(s.parts());
    EXPECT_EQ(restored.value(), s.value());

    // The restored sum keeps accumulating identically.
    restored.add(0.1);
    s.add(0.1);
    EXPECT_EQ(restored.value(), s.value());
}

TEST(ExactSumTest, SelfMergeDoubles)
{
    suit::util::ExactSum s;
    s.add(0.1);
    s.add(1e-30);
    s.merge(s);
    suit::util::ExactSum twice;
    twice.add(0.1);
    twice.add(1e-30);
    twice.add(0.1);
    twice.add(1e-30);
    EXPECT_EQ(s.value(), twice.value());
}

TEST(ExactSumTest, EmptyIsZero)
{
    const suit::util::ExactSum s;
    EXPECT_EQ(s.value(), 0.0);
    EXPECT_TRUE(s.parts().empty());
}

} // namespace
