/**
 * @file
 * Tests of the trace representation, profiles and generator.
 */

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

#include "trace/generator.hh"
#include "trace/profile.hh"
#include "trace/trace.hh"
#include "util/rng.hh"

namespace suit::trace {

/**
 * Friend hook that corrupts a constructed trace, so the defensive
 * asserts (which the constructor's own validation makes unreachable
 * through the public interface) can be exercised.
 */
class TraceTestPeer
{
  public:
    static void setTotalInstructions(Trace &t, std::uint64_t total)
    {
        t.totalInstructions_ = total;
    }
};

} // namespace suit::trace

namespace {

using namespace suit::trace;
using suit::isa::FaultableKind;

TEST(TraceTest, EventIndicesAccumulateGaps)
{
    const Trace t("t", 1000, 1.0,
                  {{10, FaultableKind::VOR},
                   {5, FaultableKind::AESENC},
                   {0, FaultableKind::VXOR}});
    EXPECT_EQ(t.eventCount(), 3u);
    EXPECT_EQ(t.eventIndex(0), 10u);
    EXPECT_EQ(t.eventIndex(1), 16u);  // 10 + 1 + 5
    EXPECT_EQ(t.eventIndex(2), 17u);  // back to back
    EXPECT_NEAR(t.faultableRate(), 3.0 / 1000.0, 1e-12);
}

TEST(TraceTest, StatsCountKindsAndGaps)
{
    const Trace t("t", 100000, 1.0,
                  {{10, FaultableKind::VOR},
                   {5000, FaultableKind::VOR},
                   {99, FaultableKind::AESENC}});
    const TraceStats s = TraceStats::compute(t);
    EXPECT_EQ(s.kindCounts[static_cast<std::size_t>(
                  FaultableKind::VOR)],
              2u);
    EXPECT_EQ(s.kindCounts[static_cast<std::size_t>(
                  FaultableKind::AESENC)],
              1u);
    EXPECT_EQ(s.maxGap, 5000u);
    EXPECT_NEAR(s.meanGap, (10.0 + 5000.0 + 99.0) / 3.0, 1e-9);
    EXPECT_EQ(s.gapHistogram.bucket(1), 2u); // gaps 10 and 99
    EXPECT_EQ(s.gapHistogram.bucket(3), 1u); // gap 5000
}

TEST(Profiles, DatabaseIsComplete)
{
    const auto &all = allProfiles();
    EXPECT_EQ(all.size(), 25u); // 23 SPEC + Nginx + VLC
    EXPECT_EQ(specProfiles().size(), 23u);

    int int_count = 0, fp_count = 0;
    for (const auto &p : specProfiles()) {
        int_count += p.suite == Suite::SpecInt;
        fp_count += p.suite == Suite::SpecFp;
    }
    EXPECT_EQ(int_count, 10);
    EXPECT_EQ(fp_count, 13);
}

TEST(Profiles, Table4AnchorsPresent)
{
    EXPECT_NEAR(profileByName("508.namd").noSimdDelta, -0.22, 1e-9);
    EXPECT_NEAR(profileByName("538.imagick").noSimdDelta, -0.12, 1e-9);
    EXPECT_NEAR(profileByName("525.x264").noSimdDelta, 0.07, 1e-9);
    EXPECT_NEAR(profileByName("548.exchange2").noSimdDelta, 0.077,
                1e-9);
}

TEST(Profiles, ImulDensitiesMatchSec61)
{
    // 525.x264: 0.99 % IMUL; everything else well below.
    EXPECT_NEAR(profileByName("525.x264").imulFraction, 0.0099, 1e-9);
    for (const auto &p : allProfiles()) {
        if (p.name != "525.x264")
            EXPECT_LT(p.imulFraction, 0.002) << p.name;
    }
}

TEST(Profiles, KindMixesAreNormalised)
{
    for (const auto &p : allProfiles()) {
        double sum = 0.0;
        for (double w : p.kindMix)
            sum += w;
        EXPECT_NEAR(sum, 1.0, 1e-9) << p.name;
        // IMUL never appears as a trap event (hardened statically).
        EXPECT_DOUBLE_EQ(
            p.kindMix[static_cast<std::size_t>(FaultableKind::IMUL)],
            0.0)
            << p.name;
    }
}

TEST(Profiles, NetworkWorkloadsAreCryptoHeavy)
{
    for (const auto *p : {&nginxProfile(), &vlcProfile()}) {
        EXPECT_GT(p->kindMix[static_cast<std::size_t>(
                      FaultableKind::AESENC)],
                  0.5)
            << p->name;
        EXPECT_EQ(p->suite, Suite::Network);
    }
}

TEST(BurstModelTest, CalibrationHitsRequestedShare)
{
    BurstModel bm;
    bm.meanBurstEvents = 4;
    bm.meanWithinBurstGap = 100;
    for (double target : {0.1, 0.5, 0.8, 0.97}) {
        bm.calibrateToEfficientShare(target, 400000, 1.0);
        EXPECT_NEAR(bm.expectedEfficientShare(400000), target, 1e-6)
            << "target " << target;
    }
}

TEST(BurstModelTest, ExpectedShareMatchesMonteCarlo)
{
    // Validate the closed-form log-normal excess formula against
    // sampling.
    BurstModel bm;
    bm.meanBurstEvents = 2;
    bm.meanWithinBurstGap = 500;
    bm.interBurstGapLogMean = 13.0;
    bm.interBurstGapLogSigma = 1.0;
    const double c = 300000.0;

    suit::util::Rng rng(123);
    double excess = 0.0, total = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.nextLogNormal(13.0, 1.0);
        excess += std::max(0.0, x - c);
        total += x + 2 * 500 + c;
    }
    EXPECT_NEAR(bm.expectedEfficientShare(c), excess / total, 0.01);
}

TEST(BurstModelTest, ThrashCorrectionLowersGapForMidShares)
{
    // With the thrash window active the same target requires larger
    // inter-burst gaps (the deadline is stretched while thrashing).
    BurstModel with_thrash, without;
    for (BurstModel *bm : {&with_thrash, &without}) {
        bm->meanBurstEvents = 4;
        bm->meanWithinBurstGap = 100;
    }
    without.calibrateToEfficientShare(0.6, 400000, 1.0);
    with_thrash.calibrateToEfficientShare(0.6, 400000, 1.0, 900000,
                                          1600000);
    EXPECT_GT(with_thrash.meanInterBurstGap(),
              without.meanInterBurstGap());
}

TEST(Generator, DeterministicPerSeedAndStream)
{
    const WorkloadProfile &p = profileByName("557.xz");
    const TraceGenerator gen(9);
    const Trace a = gen.generate(p, 0);
    const Trace b = gen.generate(p, 0);
    EXPECT_EQ(a.eventCount(), b.eventCount());
    for (std::size_t i = 0; i < std::min<std::size_t>(100,
                                                      a.eventCount());
         ++i) {
        EXPECT_EQ(a.events()[i].gap, b.events()[i].gap);
        EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    }
    // A different stream id decorrelates.
    const Trace c = gen.generate(p, 1);
    ASSERT_GT(c.eventCount(), 0u);
    EXPECT_NE(c.events()[0].gap, a.events()[0].gap);
}

TEST(Generator, RespectsStreamLength)
{
    for (const char *name : {"557.xz", "520.omnetpp", "Nginx"}) {
        const WorkloadProfile &p = profileByName(name);
        const Trace t = TraceGenerator(1).generate(p);
        EXPECT_EQ(t.totalInstructions(), p.totalInstructions) << name;
        ASSERT_GT(t.eventCount(), 10u) << name;
        // Events fit inside the stream.
        EXPECT_LT(t.eventIndex(t.eventCount() - 1),
                  t.totalInstructions())
            << name;
    }
}

TEST(Generator, MeanInterBurstGapIsApproximatelyCalibrated)
{
    // Aggregate gap structure: the big gaps should average near the
    // calibrated log-normal mean.
    const WorkloadProfile &p = profileByName("502.gcc");
    const Trace t = TraceGenerator(3).generate(p);
    const double threshold = 10.0 * p.bursts.meanWithinBurstGap;
    double sum = 0.0;
    int n = 0;
    for (const auto &e : t.events()) {
        if (static_cast<double>(e.gap) > threshold) {
            sum += static_cast<double>(e.gap);
            ++n;
        }
    }
    ASSERT_GT(n, 50);
    const double mean_big_gap = sum / n;
    EXPECT_NEAR(mean_big_gap, p.bursts.meanInterBurstGap(),
                0.35 * p.bursts.meanInterBurstGap());
}

TEST(Generator, KindMixIsRespected)
{
    const Trace t = TraceGenerator(4).generate(nginxProfile());
    const TraceStats s = TraceStats::compute(t);
    const double aes_share =
        static_cast<double>(s.kindCounts[static_cast<std::size_t>(
            FaultableKind::AESENC)]) /
        static_cast<double>(t.eventCount());
    EXPECT_NEAR(aes_share, 0.85, 0.05);
}

TEST(TraceTest, TailInstructionsCountsTrailingStream)
{
    const Trace t("t", 1000, 1.0,
                  {{10, FaultableKind::VOR},
                   {5, FaultableKind::AESENC}});
    // Last event sits at index 16; 1000 - 16 - 1 follow it.
    EXPECT_EQ(t.tailInstructions(), 983u);

    const Trace last_is_final("t", 18, 1.0,
                              {{10, FaultableKind::VOR},
                               {5, FaultableKind::AESENC}});
    EXPECT_EQ(last_is_final.tailInstructions(), 1u);

    const Trace empty("t", 1000, 1.0, {});
    EXPECT_EQ(empty.tailInstructions(), 1000u);
}

TEST(TraceTest, ConstructorRejectsEventsPastStreamEnd)
{
    EXPECT_DEATH((void)Trace("bad", 10, 1.0,
                             {{20, FaultableKind::VOR}}),
                 "exceed");
}

TEST(TraceTest, TailInstructionsPanicsOnCorruptedTrace)
{
    Trace t("t", 1000, 1.0, {{998, FaultableKind::VOR}});
    EXPECT_EQ(t.tailInstructions(), 1u);
    // Shrink the stream under the last event: the old unchecked
    // "total - last_index - 1" would wrap to ~2^64 here and send a
    // simulator core draining 10^19 phantom instructions.
    TraceTestPeer::setTotalInstructions(t, 500);
    EXPECT_DEATH((void)t.tailInstructions(), "inconsistent");
}

TEST(ImulOverhead, MatchesPaperAnchors)
{
    // Sec. 6.1: 0.03 % at the 0.07 % average density, 1.60 % for
    // 525.x264 (0.99 %).
    EXPECT_NEAR(imulLatencyOverhead(0.0099), 0.016, 1e-6);
    EXPECT_NEAR(imulLatencyOverhead(0.0007), 0.0003, 0.0002);
    EXPECT_DOUBLE_EQ(imulLatencyOverhead(0.0), 0.0);
    // Monotone.
    EXPECT_LT(imulLatencyOverhead(0.001), imulLatencyOverhead(0.01));
}

} // namespace
