/**
 * @file
 * Tests of trace serialization (text and binary round trips,
 * malformed-input handling via death tests).
 */

#include <gtest/gtest.h>
#include <sstream>

#include "trace/generator.hh"
#include "trace/io.hh"
#include "trace/profile.hh"

namespace {

using namespace suit::trace;
using suit::isa::FaultableKind;

Trace
sampleTrace()
{
    return Trace("sample", 100'000, 1.75,
                 {{10, FaultableKind::VOR},
                  {0, FaultableKind::AESENC},
                  {99'000, FaultableKind::VPCLMULQDQ}},
                 4.0);
}

void
expectEqualTraces(const Trace &a, const Trace &b)
{
    EXPECT_EQ(a.name(), b.name());
    EXPECT_EQ(a.totalInstructions(), b.totalInstructions());
    EXPECT_NEAR(a.ipc(), b.ipc(), 1e-3);
    EXPECT_NEAR(a.eventWeight(), b.eventWeight(), 1e-3);
    ASSERT_EQ(a.eventCount(), b.eventCount());
    for (std::size_t i = 0; i < a.eventCount(); ++i) {
        EXPECT_EQ(a.events()[i].gap, b.events()[i].gap);
        EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    }
}

TEST(TraceIo, TextRoundTrip)
{
    const Trace t = sampleTrace();
    std::stringstream ss;
    writeText(t, ss);
    expectEqualTraces(t, readText(ss));
}

TEST(TraceIo, BinaryRoundTrip)
{
    const Trace t = sampleTrace();
    std::stringstream ss;
    writeBinary(t, ss);
    expectEqualTraces(t, readBinary(ss));
}

TEST(TraceIo, GeneratedTraceRoundTripsBothFormats)
{
    const Trace t =
        TraceGenerator(11).generate(profileByName("520.omnetpp"));
    {
        std::stringstream ss;
        writeBinary(t, ss);
        expectEqualTraces(t, readBinary(ss));
    }
    {
        std::stringstream ss;
        writeText(t, ss);
        expectEqualTraces(t, readText(ss));
    }
}

TEST(TraceIo, BinaryIsCompact)
{
    const Trace t =
        TraceGenerator(12).generate(profileByName("557.xz"));
    std::stringstream text, binary;
    writeText(t, text);
    writeBinary(t, binary);
    EXPECT_LT(binary.str().size(), text.str().size() / 2);
    // Roughly <= 6 bytes per event on average (varint gaps).
    EXPECT_LT(binary.str().size(), t.eventCount() * 8 + 128);
}

TEST(TraceIo, FileRoundTripViaExtensionDispatch)
{
    const Trace t = sampleTrace();
    const std::string text_path = "/tmp/suit_io_test.sft";
    const std::string bin_path = "/tmp/suit_io_test.sfb";
    saveTrace(t, text_path);
    saveTrace(t, bin_path);
    expectEqualTraces(t, loadTrace(text_path));
    expectEqualTraces(t, loadTrace(bin_path));
    std::remove(text_path.c_str());
    std::remove(bin_path.c_str());
}

TEST(TraceIoDeathTest, RejectsBadMagic)
{
    std::stringstream ss;
    ss << "definitely not a trace\n";
    EXPECT_EXIT(readText(ss), ::testing::ExitedWithCode(1),
                "bad magic");
}

TEST(TraceIoDeathTest, RejectsTruncatedBinary)
{
    const Trace t = sampleTrace();
    std::stringstream ss;
    writeBinary(t, ss);
    const std::string full = ss.str();
    std::stringstream cut(full.substr(0, full.size() / 2));
    EXPECT_EXIT(readBinary(cut), ::testing::ExitedWithCode(1),
                "truncated");
}

TEST(TraceIoDeathTest, RejectsUnknownExtension)
{
    EXPECT_EXIT(saveTrace(sampleTrace(), "/tmp/foo.json"),
                ::testing::ExitedWithCode(1), "must end in");
}

} // namespace
