/**
 * @file
 * Tests of the full-system SuitMachine: the MSR/controller/pipeline
 * wiring, deadline behaviour and the end-to-end efficiency story at
 * cycle level.
 */

#include <gtest/gtest.h>

#include "core/params.hh"
#include "obs/registry.hh"
#include "uarch/machine.hh"
#include "uarch/program.hh"

namespace {

using namespace suit;
using namespace suit::uarch;

SuitMachine::Config
machineConfig(const power::CpuModel &cpu)
{
    SuitMachine::Config cfg;
    cfg.cpu = &cpu;
    cfg.offsetMv = -97.0;
    cfg.strategy = core::StrategyKind::CombinedFv;
    cfg.params = core::optimalParams(cpu);
    return cfg;
}

TEST(SuitMachineTest, MsrsProgrammedOnEnable)
{
    const power::CpuModel cpu = power::cpuA_i9_9900k();
    SuitMachine machine(machineConfig(cpu));
    const Program p =
        ProgramGenerator(1).generate(specIntLikeMix(), 20'000);
    machine.runSuit(p);

    EXPECT_EQ(machine.msrs().read(os::MSR_SUIT_DVFS_CURVE), 1u);
    EXPECT_EQ(machine.msrs().read(os::MSR_SUIT_DISABLE_OPCODE),
              isa::FaultableSet::suitTrapSet().bits());
}

TEST(SuitMachineTest, BaselineHasNoTrapsAndUnitPower)
{
    const power::CpuModel cpu = power::cpuA_i9_9900k();
    SuitMachine machine(machineConfig(cpu));
    const Program p =
        ProgramGenerator(2).generate(specIntLikeMix(), 50'000);
    const MachineResult r = machine.runBaseline(p);
    EXPECT_EQ(r.stats.traps, 0u);
    EXPECT_DOUBLE_EQ(r.powerFactor, 1.0);
    EXPECT_GT(r.seconds, 0.0);
}

namespace {

/**
 * A quiet integer program (no faultable instructions) with tight
 * SIMD clusters injected at the given positions.  DVFS timescales
 * are hundreds of microseconds, so end-to-end machine tests need
 * millions of instructions.
 */
Program
quietProgramWithBursts(std::size_t count,
                       std::initializer_list<std::size_t> bursts,
                       std::uint64_t seed)
{
    ProgramMix mix = specIntLikeMix();
    mix.weights[static_cast<std::size_t>(OpClass::SimdAlu)] = 0.0;
    Program p = ProgramGenerator(seed).generate(mix, count);
    for (std::size_t at : bursts) {
        for (std::size_t i = at; i < at + 40 && i < count; ++i) {
            p.insts[i].op = OpClass::SimdAlu;
            p.insts[i].faultable = isa::FaultableKind::VOR;
            p.insts[i].dst = 3;
            p.insts[i].src1 = 2;
            p.insts[i].src2 = 3;
        }
    }
    return p;
}

} // namespace

TEST(SuitMachineTest, SuitRunTrapsAndSavesEnergy)
{
    const power::CpuModel cpu = power::cpuA_i9_9900k();
    SuitMachine machine(machineConfig(cpu));
    // Three short bursts spread over ~5 ms of execution (the
    // initial CV -> E voltage drop alone costs ~350 us).
    const Program p = quietProgramWithBursts(
        20'000'000, {10'000'000, 14'000'000, 18'000'000}, 3);

    const MachineResult base = machine.runBaseline(p);
    const MachineResult suit_run = machine.runSuit(p);

    EXPECT_GT(suit_run.stats.traps, 0u);
    // After the initial voltage drop (~350 us) the machine runs on
    // the efficient curve apart from the burst excursions.
    EXPECT_GT(suit_run.efficientShare, 0.3);
    // Power clearly below baseline, runtime in the same ballpark.
    EXPECT_LT(suit_run.powerFactor, 0.97);
    EXPECT_LT(suit_run.seconds, base.seconds * 1.10);
    // Net energy saving.
    EXPECT_LT(suit_run.energyFactorVs(base), 0.99);
}

TEST(SuitMachineTest, DeadlineReturnsToEfficientCurve)
{
    const power::CpuModel cpu = power::cpuA_i9_9900k();
    SuitMachine machine(machineConfig(cpu));
    // One tight SIMD burst in the middle of a quiet program: the
    // machine must trap, go conservative, and come back.
    const Program p =
        quietProgramWithBursts(16'000'000, {10'000'000}, 4);

    const MachineResult r = machine.runSuit(p);
    EXPECT_GE(r.stats.traps, 1u);
    // The burst is one trap (the set is re-enabled afterwards).
    EXPECT_LE(r.stats.traps, 3u);
    // Still mostly efficient despite the excursion.
    EXPECT_GT(r.efficientShare, 0.4);
}

TEST(SuitMachineTest, DenseAesProgramStaysConservative)
{
    const power::CpuModel cpu = power::cpuA_i9_9900k();
    SuitMachine machine(machineConfig(cpu));
    const Program p =
        ProgramGenerator(5).generate(aesServiceMix(), 200'000);
    const MachineResult r = machine.runSuit(p);
    // AES every ~14 instructions: after the first trap the set is
    // re-enabled and the deadline keeps being touched.
    EXPECT_LT(r.efficientShare, 0.3);
    EXPECT_LT(r.stats.traps, 50u);
}

TEST(SuitMachineTest, EmulationStrategyNeverSwitches)
{
    const power::CpuModel cpu = power::cpuA_i9_9900k();
    SuitMachine::Config cfg = machineConfig(cpu);
    cfg.strategy = core::StrategyKind::Emulation;
    SuitMachine machine(cfg);

    ProgramMix mix = specIntLikeMix();
    mix.weights[static_cast<std::size_t>(OpClass::SimdAlu)] = 0.0002;
    const Program p = ProgramGenerator(6).generate(mix, 16'000'000);
    const MachineResult r = machine.runSuit(p);

    EXPECT_EQ(r.stats.emulated, r.stats.traps);
    EXPECT_GT(r.stats.traps, 100u);
    // The domain never leaves the efficient curve once the initial
    // ~350 us voltage drop completes.
    EXPECT_GT(r.efficientShare, 0.5);
    EXPECT_LT(r.powerFactor, 0.95);
}

TEST(SuitMachineTest, RunsPublishPipelineCountersToObsRegistry)
{
    obs::Registry &reg = obs::metrics();
    reg.reset();
    reg.setEnabled(true);

    const power::CpuModel cpu = power::cpuA_i9_9900k();
    SuitMachine machine(machineConfig(cpu));
    const Program p =
        ProgramGenerator(9).generate(specIntLikeMix(), 50'000);
    const MachineResult base = machine.runBaseline(p);
    const MachineResult suit_run = machine.runSuit(p);
    reg.setEnabled(false);

    const std::string doc = reg.renderJson();
    for (const char *key :
         {"uarch.runs", "uarch.instructions", "uarch.cycles",
          "uarch.branches", "uarch.mispredicts", "uarch.loads",
          "uarch.stores", "uarch.l1d_misses", "uarch.llc_misses",
          "uarch.do_traps"}) {
        EXPECT_NE(doc.find(key), std::string::npos)
            << "metrics document misses " << key;
    }
    const obs::Snapshot snap = reg.snapshot();
    EXPECT_EQ(snap.find("uarch.runs")->count, 2u);
    EXPECT_EQ(snap.find("uarch.instructions")->count,
              base.stats.instructions + suit_run.stats.instructions);
    EXPECT_EQ(snap.find("uarch.do_traps")->count,
              suit_run.stats.traps);
    reg.reset();
}

} // namespace
