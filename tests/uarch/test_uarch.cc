/**
 * @file
 * Tests of the out-of-order model: caches, branch prediction,
 * program generation, pipeline timing properties and the #DO trap
 * path.
 */

#include <gtest/gtest.h>

#include "uarch/branch.hh"
#include "uarch/cache.hh"
#include "uarch/o3_model.hh"
#include "uarch/program.hh"

namespace {

using namespace suit::uarch;
using suit::isa::FaultableKind;
using suit::isa::FaultableSet;

// ---------------------------------------------------------------
// Caches
// ---------------------------------------------------------------

TEST(CacheTest, HitAfterMiss)
{
    Cache c({"L1", 1024, 2, 64, 3}, nullptr);
    EXPECT_EQ(c.access(0x100, 100), 103); // miss to memory
    EXPECT_EQ(c.access(0x100, 100), 3);   // hit
    EXPECT_EQ(c.access(0x13F, 100), 3);   // same line
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_EQ(c.accesses(), 3u);
}

TEST(CacheTest, LruEviction)
{
    // 2 ways, 64 B lines, 8 sets (1 kB): three lines mapping to one
    // set evict the least recently used.
    Cache c({"L1", 1024, 2, 64, 1}, nullptr);
    const std::uint64_t set_stride = 8 * 64;
    c.access(0 * set_stride, 10);
    c.access(1 * set_stride, 10);
    c.access(0 * set_stride, 10); // refresh line 0
    c.access(2 * set_stride, 10); // evicts line 1
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(set_stride));
    EXPECT_TRUE(c.contains(2 * set_stride));
}

TEST(CacheTest, MissLatencyChainsThroughLevels)
{
    Cache llc({"LLC", 4096, 4, 64, 20}, nullptr);
    Cache l1({"L1", 1024, 2, 64, 2}, &llc);
    // Cold: L1 miss -> LLC miss -> memory.
    EXPECT_EQ(l1.access(0x40, 200), 2 + 20 + 200);
    // L1 hit now.
    EXPECT_EQ(l1.access(0x40, 200), 2);
    // Evicted from L1 but still in LLC: L1 miss, LLC hit.
    Cache l1b({"L1", 128, 1, 64, 2}, &llc);
    l1b.access(0x40, 200);
    l1b.access(0x40 + 128, 200); // evicts (1 way, 2 sets)
    EXPECT_EQ(l1b.access(0x40, 200), 2 + 20);
}

TEST(MemoryHierarchyTest, Table5Defaults)
{
    MemoryHierarchy mem;
    EXPECT_EQ(mem.l1i().config().sizeBytes, 64u * 1024);
    EXPECT_EQ(mem.l1d().config().sizeBytes, 32u * 1024);
    EXPECT_EQ(mem.llc().config().sizeBytes, 2u * 1024 * 1024);
}

// ---------------------------------------------------------------
// Branch predictor
// ---------------------------------------------------------------

TEST(BranchTest, LearnsABiasedBranch)
{
    GsharePredictor bp(10);
    for (int i = 0; i < 20; ++i)
        bp.update(0x400, true);
    EXPECT_TRUE(bp.predict(0x400));
    const std::uint64_t before = bp.mispredicts();
    for (int i = 0; i < 100; ++i)
        bp.update(0x400, true);
    EXPECT_EQ(bp.mispredicts(), before);
}

TEST(BranchTest, DistinguishesSites)
{
    GsharePredictor bp(12);
    for (int i = 0; i < 10; ++i) {
        bp.update(0x400, true);
        bp.update(0x800, false);
    }
    EXPECT_TRUE(bp.predict(0x400));
    EXPECT_FALSE(bp.predict(0x800));
}

// ---------------------------------------------------------------
// Program generation
// ---------------------------------------------------------------

TEST(ProgramTest, DeterministicAndSized)
{
    const ProgramGenerator gen(3);
    const Program a = gen.generate(specIntLikeMix(), 10'000);
    const Program b = gen.generate(specIntLikeMix(), 10'000);
    ASSERT_EQ(a.insts.size(), 10'000u);
    for (std::size_t i = 0; i < 200; ++i) {
        EXPECT_EQ(a.insts[i].op, b.insts[i].op);
        EXPECT_EQ(a.insts[i].addr, b.insts[i].addr);
    }
}

TEST(ProgramTest, MixDensitiesApproximatelyRespected)
{
    const Program p =
        ProgramGenerator(5).generate(x264LikeMix(), 400'000);
    std::size_t imuls = 0, branches = 0;
    for (const Inst &inst : p.insts) {
        imuls += inst.op == OpClass::IntMul;
        branches += inst.op == OpClass::Branch;
    }
    // Sec. 6.1: 0.99 % IMUL in x264.
    EXPECT_NEAR(static_cast<double>(imuls) / 400'000, 0.0099, 0.004);
    EXPECT_GT(branches, 10'000u);
}

TEST(ProgramTest, FaultableAnnotationsMatchOpClasses)
{
    const Program p =
        ProgramGenerator(6).generate(aesServiceMix(), 50'000);
    for (const Inst &inst : p.insts) {
        switch (inst.op) {
          case OpClass::IntMul:
            ASSERT_TRUE(inst.faultable.has_value());
            EXPECT_EQ(*inst.faultable, FaultableKind::IMUL);
            break;
          case OpClass::Aes:
            ASSERT_TRUE(inst.faultable.has_value());
            EXPECT_EQ(*inst.faultable, FaultableKind::AESENC);
            break;
          case OpClass::SimdAlu:
            ASSERT_TRUE(inst.faultable.has_value());
            EXPECT_TRUE(suit::isa::isSimd(*inst.faultable));
            break;
          default:
            EXPECT_FALSE(inst.faultable.has_value());
        }
    }
}

TEST(ProgramTest, MemOpsCarryAddressesInsideFootprint)
{
    const ProgramMix mix = specFpLikeMix();
    const Program p = ProgramGenerator(7).generate(mix, 50'000);
    for (const Inst &inst : p.insts) {
        if (inst.isMem())
            EXPECT_LT(inst.addr, mix.footprintBytes);
    }
}

// ---------------------------------------------------------------
// Pipeline timing
// ---------------------------------------------------------------

TEST(O3ModelTest, IpcIsPlausible)
{
    const CoreStats s =
        runMixAtImulLatency(specIntLikeMix(), 200'000, 3);
    EXPECT_EQ(s.instructions, 200'000u);
    EXPECT_GT(s.ipc(), 0.3);
    EXPECT_LT(s.ipc(), 8.0);
}

TEST(O3ModelTest, HigherImulLatencyNeverSpeedsUp)
{
    for (const ProgramMix &mix :
         {specIntLikeMix(), x264LikeMix(), memBoundMix()}) {
        const CoreStats base = runMixAtImulLatency(mix, 150'000, 3);
        const CoreStats slow = runMixAtImulLatency(mix, 150'000, 30);
        EXPECT_GE(slow.cycles, base.cycles) << mix.name;
    }
}

TEST(O3ModelTest, X264IsMostImulSensitive)
{
    auto delta = [](const ProgramMix &mix) {
        const CoreStats a = runMixAtImulLatency(mix, 200'000, 3);
        const CoreStats b = runMixAtImulLatency(mix, 200'000, 30);
        return static_cast<double>(b.cycles) /
                   static_cast<double>(a.cycles) -
               1.0;
    };
    const double x264 = delta(x264LikeMix());
    EXPECT_GT(x264, delta(specIntLikeMix()));
    EXPECT_GT(x264, delta(specFpLikeMix()));
    // The paper's central claim: +1 cycle is nearly free.
    const CoreStats a = runMixAtImulLatency(x264LikeMix(), 200'000, 3);
    const CoreStats b = runMixAtImulLatency(x264LikeMix(), 200'000, 4);
    const double suit_cost = static_cast<double>(b.cycles) /
                                 static_cast<double>(a.cycles) -
                             1.0;
    EXPECT_LT(suit_cost, 0.03);
    EXPECT_GT(suit_cost, 0.0);
}

TEST(O3ModelTest, WiderRobHelpsMemBoundCode)
{
    CoreConfig narrow;
    narrow.robSize = 32;
    CoreConfig wide;
    wide.robSize = 320;
    const Program p =
        ProgramGenerator(8).generate(memBoundMix(), 100'000);
    O3Model a(narrow), b(wide);
    EXPECT_GT(a.run(p).cycles, b.run(p).cycles);
}

TEST(O3ModelTest, MispredictsCostCycles)
{
    ProgramMix noisy = branchyMix();
    noisy.noisyBranchRate = 0.5;
    ProgramMix clean = branchyMix();
    clean.noisyBranchRate = 0.0;
    const Program pn = ProgramGenerator(9).generate(noisy, 100'000);
    const Program pc = ProgramGenerator(9).generate(clean, 100'000);
    O3Model a, b;
    const CoreStats sn = a.run(pn);
    const CoreStats sc = b.run(pc);
    EXPECT_GT(sn.mispredicts, 4 * sc.mispredicts);
    EXPECT_GT(sn.cycles, sc.cycles);
}

// ---------------------------------------------------------------
// #DO trap path
// ---------------------------------------------------------------

TEST(O3ModelTest, TrapsOnEveryDisabledInstruction)
{
    O3Model core;
    core.setDisabledSet(FaultableSet::suitTrapSet());
    std::uint64_t handled = 0;
    core.setTrapHandler([&](FaultableKind, std::uint64_t,
                             std::uint64_t) {
        ++handled;
        UarchTrapAction a;
        a.emulate = true;
        a.extraCycles = 100;
        a.newDisabledSet = FaultableSet::suitTrapSet();
        return a;
    });

    const Program p =
        ProgramGenerator(10).generate(aesServiceMix(), 20'000);
    std::uint64_t expected = 0;
    for (const Inst &inst : p.insts) {
        expected += inst.faultable.has_value() &&
                    FaultableSet::suitTrapSet().contains(
                        *inst.faultable);
    }
    const CoreStats s = core.run(p);
    EXPECT_EQ(s.traps, expected);
    EXPECT_EQ(handled, expected);
    EXPECT_EQ(s.emulated, expected);
}

TEST(O3ModelTest, HardenedImulDoesNotTrap)
{
    // IMUL is not in the SUIT trap set (hardened via latency).
    O3Model core;
    core.setDisabledSet(FaultableSet::suitTrapSet());
    core.setTrapHandler([](FaultableKind kind, std::uint64_t,
                            std::uint64_t) {
        EXPECT_NE(kind, FaultableKind::IMUL);
        UarchTrapAction a;
        a.emulate = true;
        a.newDisabledSet = FaultableSet::suitTrapSet();
        return a;
    });
    ProgramMix mix = specIntLikeMix();
    mix.weights[static_cast<std::size_t>(OpClass::SimdAlu)] = 0.0;
    const Program p = ProgramGenerator(11).generate(mix, 50'000);
    const CoreStats s = core.run(p);
    EXPECT_EQ(s.traps, 0u);
}

TEST(O3ModelTest, HandlerCanReEnableInstructions)
{
    // First trap re-enables the set (curve-switching policy): the
    // remaining faultable instructions run natively.
    O3Model core;
    core.setDisabledSet(FaultableSet::suitTrapSet());
    core.setTrapHandler([](FaultableKind, std::uint64_t,
                            std::uint64_t) {
        UarchTrapAction a;
        a.emulate = false;              // re-execute after the switch
        a.extraCycles = 90'000;         // ~30 us switch at 3 GHz
        a.newDisabledSet = FaultableSet{}; // everything enabled
        return a;
    });
    const Program p =
        ProgramGenerator(12).generate(aesServiceMix(), 20'000);
    const CoreStats s = core.run(p);
    EXPECT_EQ(s.traps, 1u);
    EXPECT_EQ(s.emulated, 0u);
}

TEST(O3ModelTest, TrapCostsShowUpInCycles)
{
    const Program p =
        ProgramGenerator(13).generate(aesServiceMix(), 20'000);

    O3Model plain;
    const CoreStats base = plain.run(p);

    O3Model trapping;
    trapping.setDisabledSet(FaultableSet::suitTrapSet());
    trapping.setTrapHandler([](FaultableKind, std::uint64_t,
                                std::uint64_t) {
        UarchTrapAction a;
        a.emulate = true;
        a.extraCycles = 2000;
        a.newDisabledSet = FaultableSet::suitTrapSet();
        return a;
    });
    const CoreStats slow = trapping.run(p);
    EXPECT_GT(slow.cycles, base.cycles + slow.traps * 2000);
}

} // namespace
