/**
 * @file
 * Unit tests of the suit_exec primitives: bounded queue semantics
 * (FIFO, backpressure, close), thread-pool lifecycle, exception
 * propagation out of jobs, parallelFor edge cases and deterministic
 * mapReduce reduction order.
 */

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/bounded_queue.hh"
#include "exec/thread_pool.hh"

namespace {

using suit::exec::BoundedQueue;
using suit::exec::ThreadPool;
using suit::exec::WorkerStats;

TEST(BoundedQueue, FifoOrder)
{
    BoundedQueue<int> q(8);
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(q.push(i));
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(q.pop(), i);
}

TEST(BoundedQueue, CapacityFloorIsOne)
{
    BoundedQueue<int> q(0);
    EXPECT_EQ(q.capacity(), 1u);
}

TEST(BoundedQueue, PushBlocksWhenFullUntilPop)
{
    BoundedQueue<int> q(2);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));

    std::atomic<bool> third_pushed{false};
    std::thread producer([&] {
        EXPECT_TRUE(q.push(3));
        third_pushed = true;
    });

    // The producer must be stuck: the queue is at capacity.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(third_pushed);

    EXPECT_EQ(q.pop(), 1);
    producer.join();
    EXPECT_TRUE(third_pushed);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), 3);
}

TEST(BoundedQueue, CloseDrainsThenReturnsNullopt)
{
    BoundedQueue<int> q(4);
    EXPECT_TRUE(q.push(7));
    q.close();
    EXPECT_FALSE(q.push(8)); // rejected after close
    EXPECT_EQ(q.pop(), 7);   // queued item still drained
    EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, CloseUnblocksWaitingConsumer)
{
    BoundedQueue<int> q(1);
    std::thread consumer([&] { EXPECT_EQ(q.pop(), std::nullopt); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
    consumer.join();
}

TEST(ThreadPool, StartupShutdownIdle)
{
    // Pools of several sizes come up and join cleanly without ever
    // receiving a job.
    for (int workers : {1, 2, 4}) {
        ThreadPool pool(workers);
        EXPECT_EQ(pool.workers(), workers);
    }
}

TEST(ThreadPool, DefaultsToHardwareConcurrency)
{
    ThreadPool pool;
    EXPECT_EQ(pool.workers(), ThreadPool::hardwareConcurrency());
}

TEST(ThreadPool, SubmitRunsJobAndFutureCompletes)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    auto f = pool.submit([&] { ++ran; });
    f.get();
    EXPECT_EQ(ran, 1);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto f = pool.submit(
        [] { throw std::runtime_error("job failed"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ExceptionPropagatesOutOfParallelFor)
{
    ThreadPool pool(4);
    try {
        pool.parallelFor(16, [](std::size_t i) {
            if (i % 5 == 3)
                throw std::runtime_error(
                    "index " + std::to_string(i));
        });
        FAIL() << "parallelFor swallowed the job exception";
    } catch (const std::runtime_error &e) {
        // Lowest failing index (3) wins regardless of scheduling.
        EXPECT_STREQ(e.what(), "index 3");
    }
}

TEST(ThreadPool, ParallelForEmptyRange)
{
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    pool.parallelFor(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForSingleElement)
{
    ThreadPool pool(4);
    std::vector<int> hits(1, 0);
    pool.parallelFor(1, [&](std::size_t i) { hits[i] = 1; });
    EXPECT_EQ(hits[0], 1);
}

TEST(ThreadPool, ParallelForOddSizedRange)
{
    // 37 indices over 4 workers: every index runs exactly once.
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(37);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForBackpressuredByQueueBound)
{
    // Queue bound of 2 with many more jobs than capacity: all jobs
    // still run (submit blocks instead of dropping).
    ThreadPool pool(2, 2);
    std::atomic<int> ran{0};
    pool.parallelFor(64, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran, 64);
}

TEST(ThreadPool, MapReduceSum)
{
    ThreadPool pool(3);
    const long total = pool.mapReduce(
        100, 0L, [](std::size_t i) { return static_cast<long>(i); },
        [](long acc, long v) { return acc + v; });
    EXPECT_EQ(total, 99L * 100L / 2L);
}

TEST(ThreadPool, MapReduceReducesInIndexOrder)
{
    // String concatenation is non-commutative: any reduction order
    // other than 0..n-1 produces a different value.
    ThreadPool pool(4);
    const std::string joined = pool.mapReduce(
        10, std::string(),
        [](std::size_t i) { return std::to_string(i); },
        [](std::string acc, std::string v) { return acc + v; });
    EXPECT_EQ(joined, "0123456789");
}

TEST(ThreadPool, ShutdownIsIdempotentAndKeepsStatsReadable)
{
    ThreadPool pool(2);
    pool.parallelFor(8, [](std::size_t) {});
    pool.shutdown();
    pool.shutdown(); // second call is a no-op

    std::uint64_t total = 0;
    for (const WorkerStats &s : pool.stats())
        total += s.jobsRun;
    EXPECT_EQ(total, 8u);
}

TEST(ThreadPool, ShutdownWaitDoesNotCountAsQueueWait)
{
    // Regression: the final pop() that returns nullopt at shutdown
    // used to add its entire blocked time to queueWaitNs, inflating
    // the "queue wait" footer column by however long the pool sat
    // idle before destruction.
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([&] { ++ran; }).get();

    // Let the workers idle well past any legitimate queue wait.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    pool.shutdown();

    for (const WorkerStats &s : pool.stats())
        EXPECT_LT(s.queueWaitS, 0.15)
            << "shutdown idle time leaked into queue wait";
    EXPECT_EQ(ran, 1);
}

TEST(ThreadPoolDeathTest, NestedParallelForPanicsInsteadOfHanging)
{
    // Regression: a job calling parallelFor() on its own pool used
    // to deadlock on the bounded queue.  It must abort with a clear
    // message instead.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            ThreadPool pool(2);
            pool.submit([&] {
                    pool.parallelFor(4, [](std::size_t) {});
                })
                .get();
        },
        "nested parallelFor");
}

TEST(ThreadPool, NestedParallelForAcrossDifferentPoolsIsAllowed)
{
    // Only same-pool re-entry deadlocks; an inner loop on a separate
    // pool has its own workers and must keep working.
    ThreadPool outer(2);
    ThreadPool inner(2);
    std::atomic<int> ran{0};
    outer.parallelFor(4, [&](std::size_t) {
        inner.parallelFor(4, [&](std::size_t) { ++ran; });
    });
    EXPECT_EQ(ran, 16);
}

TEST(ThreadPool, WorkerStatsAccountForAllJobs)
{
    ThreadPool pool(3);
    pool.parallelFor(50, [](std::size_t) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    });
    const std::vector<WorkerStats> stats = pool.stats();
    ASSERT_EQ(stats.size(), 3u);
    std::uint64_t total = 0;
    for (const WorkerStats &s : stats) {
        total += s.jobsRun;
        EXPECT_GE(s.busyS, 0.0);
        EXPECT_GE(s.queueWaitS, 0.0);
    }
    EXPECT_EQ(total, 50u);
}

} // namespace
