/**
 * @file
 * Checkpoint/resume tests: journal round trip, torn-tail and corrupt
 * record recovery, fingerprint mismatch refusal, kill-and-resume
 * determinism on a real grid, retry and failed-cell accounting, and
 * cooperative stop semantics.
 */

#include <atomic>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/params.hh"
#include "exec/checkpoint.hh"
#include "exec/sweep.hh"
#include "runtime/run_context.hh"
#include "runtime/session.hh"
#include "power/cpu_model.hh"
#include "trace/profile.hh"

namespace {

using namespace suit;
using exec::CellRecord;
using exec::CheckpointJournal;
using exec::GridFingerprint;
using exec::JournalContents;
using exec::JournalError;
using exec::RunPolicy;
using exec::SweepEngine;
using exec::SweepJob;
using exec::SweepOutcome;
using sim::DomainResult;

/** Unique scratch path that is removed again on destruction. */
class ScratchFile
{
  public:
    explicit ScratchFile(const std::string &name)
        : path_(::testing::TempDir() + "suit_ckpt_" + name)
    {
        std::remove(path_.c_str());
    }
    ~ScratchFile()
    {
        std::remove(path_.c_str());
        std::remove((path_ + ".tmp").c_str());
    }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

/** A recognisable synthetic result. */
DomainResult
makeResult(double tag)
{
    DomainResult r;
    sim::CoreResult core;
    core.workload = "synthetic";
    core.durationS = tag;
    core.baselineDurationS = 2.0 * tag;
    r.cores.push_back(core);
    r.powerFactor = 0.5 + tag;
    r.efficientShare = 0.25;
    r.traps = static_cast<std::uint64_t>(tag * 100.0);
    return r;
}

/** Bitwise equality of every field of two domain results. */
void
expectIdentical(const DomainResult &a, const DomainResult &b)
{
    ASSERT_EQ(a.cores.size(), b.cores.size());
    for (std::size_t i = 0; i < a.cores.size(); ++i) {
        EXPECT_EQ(a.cores[i].workload, b.cores[i].workload);
        EXPECT_EQ(a.cores[i].durationS, b.cores[i].durationS);
        EXPECT_EQ(a.cores[i].baselineDurationS,
                  b.cores[i].baselineDurationS);
    }
    EXPECT_EQ(a.powerFactor, b.powerFactor);
    EXPECT_EQ(a.efficientShare, b.efficientShare);
    EXPECT_EQ(a.cfShare, b.cfShare);
    EXPECT_EQ(a.cvShare, b.cvShare);
    EXPECT_EQ(a.traps, b.traps);
    EXPECT_EQ(a.emulations, b.emulations);
    EXPECT_EQ(a.pstateSwitches, b.pstateSwitches);
    EXPECT_EQ(a.thrashDetections, b.thrashDetections);
}

/** Reduced 2-strategy x 2-workload grid on CPU C. */
std::vector<SweepJob>
smallGrid(const power::CpuModel &cpu)
{
    static const auto &omnetpp = trace::profileByName("520.omnetpp");
    static const auto &nginx = trace::profileByName("Nginx");

    std::vector<SweepJob> jobs;
    for (const core::StrategyKind strategy :
         {core::StrategyKind::CombinedFv,
          core::StrategyKind::Emulation}) {
        for (const auto *profile : {&omnetpp, &nginx}) {
            sim::EvalConfig cfg;
            cfg.cpu = &cpu;
            cfg.strategy = strategy;
            cfg.params = core::optimalParams(cpu);
            jobs.push_back({profile->name, cfg, profile});
        }
    }
    return jobs;
}

TEST(CheckpointJournal, RoundTripsRecordsAndFingerprint)
{
    ScratchFile file("roundtrip.bin");
    const GridFingerprint fp{4, 0xDEADBEEFCAFEF00DULL};

    CheckpointJournal journal;
    journal.start(file.path(), fp);
    journal.append({0, false, "", makeResult(0.125)});
    journal.append({2, false, "", makeResult(0.5)});
    journal.append({3, true, "cell exploded", {}});

    const JournalContents loaded =
        CheckpointJournal::load(file.path());
    EXPECT_EQ(loaded.fingerprint, fp);
    EXPECT_EQ(loaded.droppedBytes, 0u);
    ASSERT_EQ(loaded.records.size(), 3u);
    EXPECT_EQ(loaded.records[0].index, 0u);
    EXPECT_FALSE(loaded.records[0].failed);
    expectIdentical(loaded.records[0].result, makeResult(0.125));
    expectIdentical(loaded.records[1].result, makeResult(0.5));
    EXPECT_TRUE(loaded.records[2].failed);
    EXPECT_EQ(loaded.records[2].index, 3u);
    EXPECT_EQ(loaded.records[2].error, "cell exploded");
}

TEST(CheckpointJournal, TruncatedTailKeepsEarlierRecords)
{
    ScratchFile file("truncated.bin");
    CheckpointJournal journal;
    journal.start(file.path(), {3, 7});
    journal.append({0, false, "", makeResult(1.0)});
    journal.append({1, false, "", makeResult(2.0)});
    journal.append({2, false, "", makeResult(3.0)});

    // Simulate a torn final record (e.g. a journal copied mid-write
    // by an external tool).
    std::string bytes = readFile(file.path());
    writeFile(file.path(), bytes.substr(0, bytes.size() - 5));

    const JournalContents loaded =
        CheckpointJournal::load(file.path());
    ASSERT_EQ(loaded.records.size(), 2u);
    EXPECT_GT(loaded.droppedBytes, 0u);
    expectIdentical(loaded.records[1].result, makeResult(2.0));
}

TEST(CheckpointJournal, CorruptRecordStopsRecoveryAtItsOffset)
{
    ScratchFile file("corrupt.bin");
    CheckpointJournal journal;
    journal.start(file.path(), {2, 7});
    journal.append({0, false, "", makeResult(1.0)});
    const std::size_t first_end = readFile(file.path()).size();
    journal.append({1, false, "", makeResult(2.0)});

    // Flip one payload byte of the second record: its checksum no
    // longer matches, so recovery keeps only the first record.
    std::string bytes = readFile(file.path());
    bytes[first_end + 12] =
        static_cast<char>(bytes[first_end + 12] ^ 0x5A);
    writeFile(file.path(), bytes);

    const JournalContents loaded =
        CheckpointJournal::load(file.path());
    ASSERT_EQ(loaded.records.size(), 1u);
    EXPECT_GT(loaded.droppedBytes, 0u);
}

TEST(CheckpointJournal, RejectsForeignAndMissingFiles)
{
    ScratchFile file("foreign.bin");
    EXPECT_THROW(CheckpointJournal::load(file.path()), JournalError);
    writeFile(file.path(), "definitely not a journal, too short");
    EXPECT_THROW(CheckpointJournal::load(file.path()), JournalError);
}

TEST(CheckpointJournal, BatchedFlushDefersDurabilityOnly)
{
    ScratchFile file("batched.bin");
    const GridFingerprint fp{8, 42};

    CheckpointJournal journal;
    journal.start(file.path(), fp);
    journal.setFlushInterval(3);

    // The header (and its fingerprint) is durable immediately even
    // though no record has been appended yet.
    EXPECT_EQ(CheckpointJournal::load(file.path()).fingerprint, fp);

    // Two appends stay buffered; the third lands the whole batch.
    journal.append({0, false, "", makeResult(1.0)});
    journal.append({1, false, "", makeResult(2.0)});
    EXPECT_TRUE(CheckpointJournal::load(file.path()).records.empty());
    journal.append({2, false, "", makeResult(3.0)});
    EXPECT_EQ(CheckpointJournal::load(file.path()).records.size(), 3u);

    // A partial batch is landed by an explicit flush(); the journal
    // still recovers every record in order.
    journal.append({3, false, "", makeResult(4.0)});
    EXPECT_EQ(CheckpointJournal::load(file.path()).records.size(), 3u);
    journal.flush();
    const JournalContents loaded =
        CheckpointJournal::load(file.path());
    ASSERT_EQ(loaded.records.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(loaded.records[i].index, i);
        expectIdentical(loaded.records[i].result,
                        makeResult(static_cast<double>(i) + 1.0));
    }
}

TEST(CheckpointJournal, DestructorLandsThePendingBatch)
{
    ScratchFile file("dtor_flush.bin");
    {
        CheckpointJournal journal;
        journal.start(file.path(), {4, 9});
        journal.setFlushInterval(100);
        journal.append({0, false, "", makeResult(1.0)});
        journal.append({1, false, "", makeResult(2.0)});
        EXPECT_TRUE(
            CheckpointJournal::load(file.path()).records.empty());
    }
    // The journal went out of scope on a non-crash path: nothing may
    // be lost.
    EXPECT_EQ(CheckpointJournal::load(file.path()).records.size(), 2u);
}

TEST(CheckpointJournal, BatchedImageTruncationRecoversValidPrefix)
{
    // A crash mid-batch leaves at most the unflushed tail missing;
    // a torn image still yields the longest valid prefix.
    ScratchFile file("batched_torn.bin");
    CheckpointJournal journal;
    journal.start(file.path(), {6, 3});
    journal.setFlushInterval(2);
    for (std::size_t i = 0; i < 6; ++i)
        journal.append(
            {i, false, "", makeResult(static_cast<double>(i))});

    std::string bytes = readFile(file.path());
    writeFile(file.path(), bytes.substr(0, bytes.size() - 7));

    const JournalContents loaded =
        CheckpointJournal::load(file.path());
    EXPECT_EQ(loaded.records.size(), 5u);
    EXPECT_GT(loaded.droppedBytes, 0u);
    for (std::size_t i = 0; i < loaded.records.size(); ++i)
        expectIdentical(loaded.records[i].result,
                        makeResult(static_cast<double>(i)));
}

TEST(SweepEngine, BatchedCheckpointResumeBitIdenticalToSerialRun)
{
    const power::CpuModel cpu = power::cpuC_xeon4208();
    const std::vector<SweepJob> jobs = smallGrid(cpu);
    ScratchFile file("batched_resume.bin");

    runtime::Session ref_session({1, 0});
    SweepEngine reference(ref_session);
    const std::vector<DomainResult> expected = reference.run(jobs);

    // Interrupt after two cells with a flush interval larger than the
    // run: the engine's end-of-run flush must still land every
    // completed cell, so the resume runs exactly the missing ones.
    runtime::Session first_session({1, 0});
    runtime::RunContext first_ctx;
    first_ctx.checkpoint.path = file.path();
    first_ctx.checkpoint.flushInterval = 64;
    std::atomic<int> completed{0};
    RunPolicy first;
    first.onCellDone = [&](std::size_t) {
        if (completed.fetch_add(1) + 1 >= 2)
            first_ctx.token().cancel();
    };
    SweepEngine interrupted_engine(first_session);
    const SweepOutcome partial =
        interrupted_engine.run(jobs, first_ctx, first);
    EXPECT_TRUE(partial.interrupted);
    EXPECT_EQ(partial.executed, 2u);
    EXPECT_EQ(
        CheckpointJournal::load(file.path()).records.size(), 2u);

    runtime::Session resumed_session({2, 0});
    runtime::RunContext second_ctx;
    second_ctx.checkpoint.path = file.path();
    second_ctx.checkpoint.resume = true;
    second_ctx.checkpoint.flushInterval = 3;
    SweepEngine resumed_engine(resumed_session);
    const SweepOutcome full = resumed_engine.run(jobs, second_ctx);
    EXPECT_TRUE(full.complete());
    EXPECT_EQ(full.restored, 2u);
    ASSERT_EQ(full.results.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        expectIdentical(full.results[i], expected[i]);
}

TEST(SweepEngine, KillAndResumeBitIdenticalToSerialRun)
{
    const power::CpuModel cpu = power::cpuC_xeon4208();
    const std::vector<SweepJob> jobs = smallGrid(cpu);
    ScratchFile file("resume.bin");

    // Uninterrupted serial reference.
    runtime::Session ref_session({1, 0});
    SweepEngine reference(ref_session);
    const std::vector<DomainResult> expected = reference.run(jobs);

    // First run: interrupted after two completed cells (the
    // cooperative-stop path SIGINT uses in suit_sweep).
    runtime::Session first_session({1, 0});
    runtime::RunContext first_ctx;
    first_ctx.checkpoint.path = file.path();
    std::atomic<int> completed{0};
    RunPolicy first;
    first.onCellDone = [&](std::size_t) {
        if (completed.fetch_add(1) + 1 >= 2)
            first_ctx.token().cancel();
    };
    SweepEngine interrupted_engine(first_session);
    const SweepOutcome partial =
        interrupted_engine.run(jobs, first_ctx, first);
    EXPECT_TRUE(partial.interrupted);
    EXPECT_EQ(partial.executed, 2u);
    EXPECT_EQ(partial.skipped, 2u);

    // Resume on a fresh session with a different worker count: only
    // the missing cells run, and every slot matches the serial
    // reference bit for bit.
    runtime::Session resumed_session({4, 0});
    runtime::RunContext second_ctx;
    second_ctx.checkpoint.path = file.path();
    second_ctx.checkpoint.resume = true;
    SweepEngine resumed_engine(resumed_session);
    const SweepOutcome full = resumed_engine.run(jobs, second_ctx);
    EXPECT_TRUE(full.complete());
    EXPECT_EQ(full.restored, 2u);
    EXPECT_EQ(full.executed, 2u);
    ASSERT_EQ(full.results.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_TRUE(full.done[i]);
        expectIdentical(full.results[i], expected[i]);
    }

    // A second resume restores everything and runs nothing.
    runtime::Session idle_session({2, 0});
    runtime::RunContext idle_ctx;
    idle_ctx.checkpoint.path = file.path();
    idle_ctx.checkpoint.resume = true;
    SweepEngine idle_engine(idle_session);
    const SweepOutcome idle = idle_engine.run(jobs, idle_ctx);
    EXPECT_EQ(idle.restored, expected.size());
    EXPECT_EQ(idle.executed, 0u);
    for (std::size_t i = 0; i < expected.size(); ++i)
        expectIdentical(idle.results[i], expected[i]);
}

TEST(SweepEngine, ResumeRefusesMismatchedFingerprint)
{
    const power::CpuModel cpu = power::cpuC_xeon4208();
    std::vector<SweepJob> jobs = smallGrid(cpu);
    ScratchFile file("mismatch.bin");

    runtime::Session session({1, 0});
    runtime::RunContext checkpointed;
    checkpointed.checkpoint.path = file.path();
    SweepEngine engine(session);
    engine.run(jobs, checkpointed);

    // Same cell count, different offset axis: a different grid.
    std::vector<SweepJob> other = jobs;
    for (SweepJob &job : other)
        job.config.offsetMv = -70.0;
    runtime::RunContext resume;
    resume.checkpoint.path = file.path();
    resume.checkpoint.resume = true;
    SweepEngine resumed(session);
    EXPECT_THROW(resumed.run(other, resume), JournalError);

    // The unmodified grid still resumes.
    runtime::RunContext resume2;
    resume2.checkpoint.path = file.path();
    resume2.checkpoint.resume = true;
    const SweepOutcome ok = resumed.run(jobs, resume2);
    EXPECT_EQ(ok.restored, jobs.size());
}

TEST(SweepEngine, ResumeWithoutPathIsAnError)
{
    runtime::Session session({1, 0});
    SweepEngine engine(session);
    runtime::RunContext ctx;
    ctx.checkpoint.resume = true;
    EXPECT_THROW(engine.runCells(
                     1, [](std::size_t) { return DomainResult{}; },
                     ctx, {}, {1, 1}),
                 JournalError);
}

TEST(SweepEngine, RetriesEventuallySucceed)
{
    runtime::Session session({1, 0});
    SweepEngine engine(session);
    std::atomic<int> attempts{0};
    runtime::RunContext ctx;
    RunPolicy policy;
    policy.retries = 2;
    const SweepOutcome out = engine.runCells(
        3,
        [&](std::size_t i) {
            if (i == 1 && attempts.fetch_add(1) < 2)
                throw std::runtime_error("flaky");
            return makeResult(static_cast<double>(i));
        },
        ctx, policy, {3, 1});
    EXPECT_TRUE(out.complete());
    EXPECT_EQ(out.executed, 3u);
    EXPECT_EQ(attempts.load(), 3); // two failures + one success
    expectIdentical(out.results[1], makeResult(1.0));
}

TEST(SweepEngine, FailedCellIsRecordedNotFatal)
{
    ScratchFile file("failed.bin");
    runtime::Session session({1, 0});
    SweepEngine engine(session);
    runtime::RunContext ctx;
    ctx.checkpoint.path = file.path();
    RunPolicy policy;
    policy.retries = 1;
    const SweepOutcome out = engine.runCells(
        3,
        [&](std::size_t i) -> DomainResult {
            if (i == 1)
                throw std::runtime_error("cell 1 is cursed");
            return makeResult(static_cast<double>(i));
        },
        ctx, policy, {3, 1});

    EXPECT_EQ(out.executed, 2u);
    ASSERT_EQ(out.failures.size(), 1u);
    EXPECT_EQ(out.failures[0].index, 1u);
    EXPECT_EQ(out.failures[0].attempts, 2);
    EXPECT_EQ(out.failures[0].error, "cell 1 is cursed");
    EXPECT_FALSE(out.done[1]);
    EXPECT_TRUE(out.done[0]);
    EXPECT_TRUE(out.done[2]);

    // The journal records the failure...
    const JournalContents loaded =
        CheckpointJournal::load(file.path());
    ASSERT_EQ(loaded.records.size(), 3u);

    // ...and a resume re-attempts exactly the failed cell.
    runtime::RunContext resume;
    resume.checkpoint.path = file.path();
    resume.checkpoint.resume = true;
    const SweepOutcome healed = engine.runCells(
        3,
        [&](std::size_t i) { return makeResult(10.0 + i); },
        resume, {}, {3, 1});
    EXPECT_TRUE(healed.complete());
    EXPECT_EQ(healed.restored, 2u);
    EXPECT_EQ(healed.executed, 1u);
    expectIdentical(healed.results[0], makeResult(0.0));
    expectIdentical(healed.results[1], makeResult(11.0));
}

TEST(SweepEngine, StrictModeRethrowsLowestIndex)
{
    runtime::Session session({4, 0});
    SweepEngine engine(session);
    runtime::RunContext ctx;
    RunPolicy policy;
    policy.strict = true;
    try {
        engine.runCells(
            16,
            [](std::size_t i) -> DomainResult {
                if (i % 5 == 3)
                    throw std::runtime_error(
                        "index " + std::to_string(i));
                return makeResult(static_cast<double>(i));
            },
            ctx, policy, {16, 1});
        FAIL() << "strict run swallowed the cell exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "index 3");
    }
}

TEST(SweepEngine, PreTrippedTokenSkipsEverything)
{
    ScratchFile file("stopped.bin");
    runtime::Session session({2, 0});
    runtime::RunContext ctx;
    ctx.checkpoint.path = file.path();
    ctx.token().cancel();
    SweepEngine engine(session);
    const SweepOutcome out = engine.runCells(
        8, [](std::size_t i) { return makeResult(double(i)); },
        ctx, {}, {8, 1});
    EXPECT_TRUE(out.interrupted);
    EXPECT_EQ(out.executed, 0u);
    EXPECT_EQ(out.skipped, 8u);
    EXPECT_TRUE(
        CheckpointJournal::load(file.path()).records.empty());
}

TEST(FingerprintJobs, SensitiveToEveryAxis)
{
    const power::CpuModel cpu = power::cpuC_xeon4208();
    const std::vector<SweepJob> base = smallGrid(cpu);
    const GridFingerprint fp = exec::fingerprintJobs(base);
    EXPECT_EQ(fp.cells, base.size());
    EXPECT_EQ(exec::fingerprintJobs(base), fp); // pure

    std::vector<SweepJob> changed = base;
    changed[0].config.seed = 99;
    EXPECT_NE(exec::fingerprintJobs(changed).hash, fp.hash);
    changed = base;
    changed[0].config.offsetMv = -70.0;
    EXPECT_NE(exec::fingerprintJobs(changed).hash, fp.hash);
    changed = base;
    changed[0].config.cores = 4;
    EXPECT_NE(exec::fingerprintJobs(changed).hash, fp.hash);
    changed = base;
    changed.pop_back();
    EXPECT_NE(exec::fingerprintJobs(changed), fp);
}

} // namespace
