/**
 * @file
 * SweepEngine tests: bit-identical parallel-vs-serial results on a
 * reduced Table-6 grid, deterministic result ordering, trace-cache
 * reuse across repeated cells and deriveSeed purity.
 */

#include <vector>

#include <gtest/gtest.h>

#include "core/params.hh"
#include "exec/sweep.hh"
#include "runtime/session.hh"
#include "power/cpu_model.hh"
#include "trace/profile.hh"

namespace {

using namespace suit;
using exec::SweepEngine;
using exec::SweepJob;
using sim::DomainResult;
using sim::EvalConfig;
using sim::WorkloadRow;

/** Reduced Table-6 workload subset (keeps the test under seconds). */
std::vector<trace::WorkloadProfile>
subset()
{
    std::vector<trace::WorkloadProfile> out;
    for (const char *name :
         {"557.xz", "502.gcc", "520.omnetpp", "538.imagick", "Nginx"})
        out.push_back(trace::profileByName(name));
    return out;
}

/** Bitwise equality of every field of two domain results. */
void
expectIdentical(const DomainResult &a, const DomainResult &b)
{
    ASSERT_EQ(a.cores.size(), b.cores.size());
    for (std::size_t i = 0; i < a.cores.size(); ++i) {
        EXPECT_EQ(a.cores[i].workload, b.cores[i].workload);
        EXPECT_EQ(a.cores[i].durationS, b.cores[i].durationS);
        EXPECT_EQ(a.cores[i].baselineDurationS,
                  b.cores[i].baselineDurationS);
    }
    EXPECT_EQ(a.powerFactor, b.powerFactor);
    EXPECT_EQ(a.efficientShare, b.efficientShare);
    EXPECT_EQ(a.cfShare, b.cfShare);
    EXPECT_EQ(a.cvShare, b.cvShare);
    EXPECT_EQ(a.traps, b.traps);
    EXPECT_EQ(a.emulations, b.emulations);
    EXPECT_EQ(a.pstateSwitches, b.pstateSwitches);
    EXPECT_EQ(a.thrashDetections, b.thrashDetections);
}

TEST(SweepEngine, ParallelSuiteBitIdenticalToSerialRunSuite)
{
    // The acceptance-criterion test: a reduced Table-6 grid (two CPU
    // configurations, 5 workloads) run through runSuiteParallel with
    // 4 workers must reproduce serial runSuite() bit for bit.
    const power::CpuModel cpu_a = power::cpuA_i9_9900k();
    const power::CpuModel cpu_c = power::cpuC_xeon4208();
    const auto profiles = subset();

    for (const power::CpuModel *cpu : {&cpu_a, &cpu_c}) {
        EvalConfig cfg;
        cfg.cpu = cpu;
        cfg.cores = cpu == &cpu_a ? 4 : 1;
        cfg.offsetMv = -97.0;
        cfg.params = core::optimalParams(*cpu);

        const std::vector<WorkloadRow> serial =
            sim::runSuite(cfg, profiles);
        const std::vector<WorkloadRow> parallel =
            sim::runSuiteParallel(cfg, profiles, 4);

        ASSERT_EQ(serial.size(), parallel.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(serial[i].workload, parallel[i].workload);
            expectIdentical(serial[i].result, parallel[i].result);
        }
    }
}

TEST(SweepEngine, SerialModeMatchesRunSuiteToo)
{
    const power::CpuModel cpu = power::cpuC_xeon4208();
    const auto profiles = subset();

    EvalConfig cfg;
    cfg.cpu = &cpu;
    cfg.params = core::optimalParams(cpu);

    runtime::Session session({1, 0});
    exec::SweepEngine engine(session);
    EXPECT_EQ(engine.jobs(), 1);
    const auto serial = sim::runSuite(cfg, profiles);
    const auto inline_rows =
        sim::runSuiteParallel(cfg, profiles, engine);
    ASSERT_EQ(serial.size(), inline_rows.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectIdentical(serial[i].result, inline_rows[i].result);
}

TEST(SweepEngine, ResultsArriveInJobOrder)
{
    // Jobs with very different run times (4-core shared domain vs a
    // single light domain) still land at their own index.
    const power::CpuModel cpu_a = power::cpuA_i9_9900k();
    const auto &xz = trace::profileByName("557.xz");
    const auto &omnetpp = trace::profileByName("520.omnetpp");

    EvalConfig heavy;
    heavy.cpu = &cpu_a;
    heavy.cores = 4;
    heavy.params = core::optimalParams(cpu_a);
    EvalConfig light = heavy;
    light.cores = 1;

    std::vector<SweepJob> jobs = {{"heavy", heavy, &xz},
                                  {"light", light, &omnetpp},
                                  {"heavy2", heavy, &omnetpp},
                                  {"light2", light, &xz}};

    runtime::Session session({4, 0});
    SweepEngine engine(session);
    const std::vector<DomainResult> results = engine.run(jobs);
    ASSERT_EQ(results.size(), 4u);
    // Shared-domain 4-core jobs produce 4 core rows, light ones 1 —
    // a misordered result vector is immediately visible.
    EXPECT_EQ(results[0].cores.size(), 4u);
    EXPECT_EQ(results[1].cores.size(), 1u);
    EXPECT_EQ(results[2].cores.size(), 4u);
    EXPECT_EQ(results[3].cores.size(), 1u);
}

TEST(SweepEngine, TraceCacheReusedAcrossRepeatedCells)
{
    // Table-6 shape: the same (cpu, workload, seed) pair revisited
    // under different strategies must generate its trace once.
    const power::CpuModel cpu = power::cpuC_xeon4208();
    const auto &gcc = trace::profileByName("502.gcc");

    EvalConfig fv;
    fv.cpu = &cpu;
    fv.params = core::optimalParams(cpu);
    fv.strategy = core::StrategyKind::CombinedFv;
    EvalConfig emu = fv;
    emu.strategy = core::StrategyKind::Emulation;
    EvalConfig off70 = fv;
    off70.offsetMv = -70.0;

    runtime::Session session({2, 0});
    SweepEngine engine(session);
    engine.run({{"fv", fv, &gcc},
                {"e", emu, &gcc},
                {"fv70", off70, &gcc}});
    EXPECT_EQ(engine.traceCache().entries(), 1u);
    EXPECT_GE(engine.traceCache().hits(), 2u);
}

TEST(SweepEngine, WorkerFooterListsEveryWorker)
{
    runtime::Session session({3, 0});
    SweepEngine engine(session);
    const std::string footer = engine.workerFooter();
    EXPECT_NE(footer.find("#0"), std::string::npos);
    EXPECT_NE(footer.find("#2"), std::string::npos);
    EXPECT_NE(footer.find("queue wait"), std::string::npos);

    runtime::Session serial_session({1, 0});
    SweepEngine serial(serial_session);
    EXPECT_NE(serial.workerFooter().find("serial"),
              std::string::npos);
}

TEST(DeriveSeed, PureAndDecorrelated)
{
    EXPECT_EQ(exec::deriveSeed(42, 7), exec::deriveSeed(42, 7));
    EXPECT_NE(exec::deriveSeed(42, 7), exec::deriveSeed(42, 8));
    EXPECT_NE(exec::deriveSeed(42, 7), exec::deriveSeed(43, 7));
}

} // namespace
