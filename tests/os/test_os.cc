/**
 * @file
 * Tests of the OS model: MSR file, exception table and emulation
 * service.
 */

#include <gtest/gtest.h>

#include "os/emulation_service.hh"
#include "os/exception.hh"
#include "os/msr.hh"

namespace {

using namespace suit::os;

TEST(MsrFileTest, ReadsZeroWhenUnwritten)
{
    MsrFile msrs;
    EXPECT_EQ(msrs.read(MSR_SUIT_DVFS_CURVE), 0u);
    EXPECT_FALSE(msrs.wasWritten(MSR_SUIT_DVFS_CURVE));
}

TEST(MsrFileTest, WriteReadRoundTrip)
{
    MsrFile msrs;
    EXPECT_EQ(msrs.write(MSR_IA32_PERF_CTL, 0x1D00), MsrWriteResult::Ok);
    EXPECT_EQ(msrs.read(MSR_IA32_PERF_CTL), 0x1D00u);
    EXPECT_TRUE(msrs.wasWritten(MSR_IA32_PERF_CTL));
}

TEST(MsrFileTest, WriteHookCanReject)
{
    MsrFile msrs;
    msrs.setWriteHook(MSR_SUIT_DVFS_CURVE, [](std::uint64_t v) {
        return v <= 1 ? MsrWriteResult::Ok : MsrWriteResult::Fault;
    });
    EXPECT_EQ(msrs.write(MSR_SUIT_DVFS_CURVE, 1), MsrWriteResult::Ok);
    EXPECT_EQ(msrs.write(MSR_SUIT_DVFS_CURVE, 7),
              MsrWriteResult::Fault);
    // Rejected writes leave the old value intact.
    EXPECT_EQ(msrs.read(MSR_SUIT_DVFS_CURVE), 1u);
}

TEST(ExceptionTableTest, DispatchesToHandler)
{
    ExceptionTable table(0.34, 0.77);
    int calls = 0;
    suit::isa::FaultableKind seen{};
    table.registerHandler(ExceptionVector::DisabledOpcode,
                          [&](const TrapFrame &f) {
                              ++calls;
                              seen = f.kind;
                          });
    EXPECT_TRUE(table.hasHandler(ExceptionVector::DisabledOpcode));
    EXPECT_FALSE(table.hasHandler(ExceptionVector::InvalidOpcode));

    TrapFrame frame;
    frame.kind = suit::isa::FaultableKind::AESENC;
    table.raise(ExceptionVector::DisabledOpcode, frame);
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(seen, suit::isa::FaultableKind::AESENC);
    EXPECT_EQ(table.raiseCount(), 1u);
}

TEST(ExceptionTableTest, CostsMatchSec53)
{
    // i9-9900K: 0.34 us to the handler, 0.77 us for the emulation
    // round trip (paper Sec. 5.3).
    ExceptionTable intel(0.34, 0.77);
    EXPECT_EQ(intel.entryCost(), suit::util::microsecondsToTicks(0.34));
    EXPECT_EQ(intel.emulationCallCost(),
              suit::util::microsecondsToTicks(0.77));

    ExceptionTable amd(0.11, 0.27);
    EXPECT_LT(amd.entryCost(), intel.entryCost());
}

TEST(EmulationServiceTest, ComputesResultAndCost)
{
    ExceptionTable table(0.34, 0.77);
    EmulationService service(table);

    suit::emu::EmuRequest req;
    req.kind = suit::isa::FaultableKind::VOR;
    req.a = suit::emu::Vec256::broadcast64(0xF0F0);
    req.b = suit::emu::Vec256::broadcast64(0x0F0F);

    const EmulationOutcome out = service.emulate(req, 4.5e9);
    EXPECT_EQ(out.result.u64(0), 0xFFFFu);
    // Cost = round trip + body cycles at 4.5 GHz.
    EXPECT_GT(out.cost, table.emulationCallCost());
    EXPECT_LT(out.cost, table.emulationCallCost() +
                            suit::util::microsecondsToTicks(1.0));
    EXPECT_EQ(service.emulationCount(), 1u);
}

TEST(EmulationServiceTest, AesCostsMoreThanBitwise)
{
    ExceptionTable table(0.34, 0.77);
    EmulationService service(table);
    const auto vor_cost =
        service.emulationCost(suit::isa::FaultableKind::VOR, 3e9);
    const auto aes_cost =
        service.emulationCost(suit::isa::FaultableKind::AESENC, 3e9);
    EXPECT_GT(aes_cost, vor_cost);
}

TEST(EmulationServiceTest, LowerClockRaisesBodyCost)
{
    ExceptionTable table(0.0, 0.0); // isolate the body term
    EmulationService service(table);
    const auto fast =
        service.emulationCost(suit::isa::FaultableKind::AESENC, 4e9);
    const auto slow =
        service.emulationCost(suit::isa::FaultableKind::AESENC, 2e9);
    EXPECT_NEAR(static_cast<double>(slow),
                2.0 * static_cast<double>(fast),
                static_cast<double>(fast) * 0.01);
}

} // namespace
