/**
 * @file
 * Edge-case tests of the trace simulator: degenerate traces, event
 * placement extremes and bookkeeping invariants.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "core/params.hh"
#include "sim/domain_sim.hh"
#include "sim/result_io.hh"
#include "trace/profile.hh"

namespace suit::trace {

/** Friend hook corrupting a trace to exercise defensive asserts. */
class TraceTestPeer
{
  public:
    static void setTotalInstructions(Trace &t, std::uint64_t total)
    {
        t.totalInstructions_ = total;
    }
};

} // namespace suit::trace

namespace {

using namespace suit;
using sim::DomainResult;
using sim::DomainSimulator;
using sim::RunMode;
using sim::SimConfig;

trace::WorkloadProfile
plainProfile(std::uint64_t total)
{
    trace::WorkloadProfile p;
    p.name = "edge";
    p.totalInstructions = total;
    p.ipc = 1.0;
    p.kindMix[static_cast<std::size_t>(isa::FaultableKind::VOR)] = 1.0;
    return p;
}

SimConfig
cfgFor(const power::CpuModel &cpu)
{
    SimConfig cfg;
    cfg.cpu = &cpu;
    cfg.offsetMv = -97.0;
    cfg.params = core::optimalParams(cpu);
    return cfg;
}

TEST(SimEdge, TraceWithNoEventsRunsEntirelyOnEfficientCurve)
{
    const power::CpuModel cpu = power::cpuA_i9_9900k();
    const trace::WorkloadProfile p = plainProfile(1'000'000'000);
    const trace::Trace t("empty", p.totalInstructions, p.ipc, {});

    DomainSimulator sim(cfgFor(cpu), {{&t, &p}});
    const DomainResult r = sim.run();
    EXPECT_EQ(r.traps, 0u);
    EXPECT_NEAR(r.efficientShare, 1.0, 1e-9);
    EXPECT_NEAR(r.powerDelta(), -0.16, 1e-3);
    EXPECT_GT(r.perfDelta(), 0.03); // the full +3.8 % minus IMUL cost
}

TEST(SimEdge, SingleEventAtStreamStart)
{
    const power::CpuModel cpu = power::cpuA_i9_9900k();
    const trace::WorkloadProfile p = plainProfile(1'000'000'000);
    const trace::Trace t("first", p.totalInstructions, p.ipc,
                         {{0, isa::FaultableKind::VOR}});
    DomainSimulator sim(cfgFor(cpu), {{&t, &p}});
    const DomainResult r = sim.run();
    EXPECT_EQ(r.traps, 1u);
    EXPECT_GT(r.efficientShare, 0.95);
}

TEST(SimEdge, SingleEventAtStreamEnd)
{
    const power::CpuModel cpu = power::cpuA_i9_9900k();
    const trace::WorkloadProfile p = plainProfile(1'000'000'000);
    const trace::Trace t(
        "last", p.totalInstructions, p.ipc,
        {{p.totalInstructions - 2, isa::FaultableKind::VOR}});
    DomainSimulator sim(cfgFor(cpu), {{&t, &p}});
    const DomainResult r = sim.run();
    EXPECT_EQ(r.traps, 1u);
    // The run ends inside the trailing conservative window; shares
    // must still partition.
    EXPECT_NEAR(r.efficientShare + r.cfShare + r.cvShare, 1.0, 1e-9);
}

TEST(SimEdge, BackToBackEventsCauseOneTrap)
{
    const power::CpuModel cpu = power::cpuA_i9_9900k();
    const trace::WorkloadProfile p = plainProfile(1'000'000'000);
    std::vector<trace::FaultableEvent> events;
    events.push_back({500'000'000, isa::FaultableKind::VOR});
    for (int i = 0; i < 100; ++i)
        events.push_back({0, isa::FaultableKind::VXOR});
    const trace::Trace t("burst0", p.totalInstructions, p.ipc, events);
    DomainSimulator sim(cfgFor(cpu), {{&t, &p}});
    const DomainResult r = sim.run();
    EXPECT_EQ(r.traps, 1u); // the rest run with the set enabled
}

TEST(SimEdge, LastEventOnFinalInstructionHasZeroTailBothPaths)
{
    const power::CpuModel cpu = power::cpuC_xeon4208();
    const trace::WorkloadProfile p = plainProfile(1'000'000'000);
    // gap = total - 1 puts the event on the very last instruction:
    // the tail drain after it is exactly zero.
    const trace::Trace t(
        "tail0", p.totalInstructions, p.ipc,
        {{p.totalInstructions - 1, isa::FaultableKind::VOR}});

    SimConfig cfg = cfgFor(cpu);
    DomainSimulator fast_sim(cfg, {{&t, &p}});
    const DomainResult fast = fast_sim.run();
    cfg.referencePath = true;
    DomainSimulator ref_sim(cfg, {{&t, &p}});
    const DomainResult ref = ref_sim.run();

    EXPECT_EQ(fast.traps, 1u);
    std::string fast_bytes;
    std::string ref_bytes;
    sim::serializeResult(fast, fast_bytes);
    sim::serializeResult(ref, ref_bytes);
    EXPECT_EQ(fast_bytes, ref_bytes);
}

TEST(SimEdge, CorruptedTracePanicsInsteadOfDrainingPhantomTail)
{
    const power::CpuModel cpu = power::cpuC_xeon4208();
    const trace::WorkloadProfile p = plainProfile(1'000'000'000);
    trace::Trace t("corrupt", p.totalInstructions, p.ipc,
                   {{p.totalInstructions - 2, isa::FaultableKind::VOR}});
    // Shrink the stream under the event after construction.  The old
    // tail drain computed totalInstructions() - last_index - 1
    // unchecked, underflowing to ~2^64 phantom instructions; now the
    // simulator must panic with a diagnosable message instead.
    trace::TraceTestPeer::setTotalInstructions(t, 1000);

    DomainSimulator sim(cfgFor(cpu), {{&t, &p}});
    EXPECT_DEATH((void)sim.run(), "inconsistent");
}

TEST(SimEdge, BaselineModeIgnoresStrategyEntirely)
{
    const power::CpuModel cpu = power::cpuB_ryzen7700x();
    const trace::WorkloadProfile p = plainProfile(2'000'000'000);
    std::vector<trace::FaultableEvent> events;
    for (int i = 0; i < 1000; ++i)
        events.push_back({1'000'000, isa::FaultableKind::AESENC});
    const trace::Trace t("base", p.totalInstructions, p.ipc, events);

    SimConfig cfg = cfgFor(cpu);
    cfg.mode = RunMode::Baseline;
    DomainSimulator sim(cfg, {{&t, &p}});
    const DomainResult r = sim.run();
    EXPECT_EQ(r.traps, 0u);
    EXPECT_EQ(r.pstateSwitches, 0u);
    EXPECT_NEAR(r.perfDelta(), 0.0, 1e-3);
}

TEST(SimEdge, MixedWorkloadsOnOneSharedDomain)
{
    // Different profiles on the same shared domain must all finish
    // and the aggregate shares must stay consistent.
    const power::CpuModel cpu = power::cpuA_i9_9900k();
    trace::WorkloadProfile quiet = plainProfile(500'000'000);
    trace::WorkloadProfile loud = plainProfile(500'000'000);
    loud.ipc = 2.0;

    const trace::Trace t_quiet("q", quiet.totalInstructions, quiet.ipc,
                               {{400'000'000,
                                 isa::FaultableKind::VOR}});
    std::vector<trace::FaultableEvent> loud_events;
    for (int i = 0; i < 4990; ++i) // events span the whole stream
        loud_events.push_back({100'000, isa::FaultableKind::AESENC});
    const trace::Trace t_loud("l", loud.totalInstructions, loud.ipc,
                              loud_events);

    DomainSimulator sim(cfgFor(cpu),
                        {{&t_quiet, &quiet}, {&t_loud, &loud}});
    const DomainResult r = sim.run();
    ASSERT_EQ(r.cores.size(), 2u);
    for (const auto &c : r.cores) {
        EXPECT_GT(c.durationS, 0.0);
        EXPECT_TRUE(std::isfinite(c.perfDelta()));
    }
    EXPECT_NEAR(r.efficientShare + r.cfShare + r.cvShare, 1.0, 1e-9);
    // The loud tenant's traps drag the shared domain conservative
    // while it runs (it finishes well before the quiet tenant, so
    // the tail of the run is efficient again).
    EXPECT_GT(r.cvShare + r.cfShare, 0.15);
    EXPECT_LT(r.efficientShare, 0.9);
}

TEST(SimEdge, ZeroOffsetIsNeutralApartFromImul)
{
    const power::CpuModel cpu = power::cpuA_i9_9900k();
    trace::WorkloadProfile p = plainProfile(1'000'000'000);
    p.imulFraction = 0.0;
    const trace::Trace t("zero", p.totalInstructions, p.ipc, {});
    SimConfig cfg = cfgFor(cpu);
    cfg.offsetMv = 0.0;
    DomainSimulator sim(cfg, {{&t, &p}});
    const DomainResult r = sim.run();
    EXPECT_NEAR(r.perfDelta(), 0.0, 1e-6);
    EXPECT_NEAR(r.powerDelta(), 0.0, 1e-6);
}

} // namespace
