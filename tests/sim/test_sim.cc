/**
 * @file
 * Tests of the event-based trace simulator (paper Sec. 6.2).
 */

#include <cmath>
#include <gtest/gtest.h>

#include "core/params.hh"
#include "sim/domain_sim.hh"
#include "sim/evaluation.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"

namespace {

using namespace suit;
using sim::CoreWork;
using sim::DomainResult;
using sim::DomainSimulator;
using sim::EvalConfig;
using sim::RunMode;
using sim::SimConfig;

/** A tiny synthetic workload profile for focused tests. */
trace::WorkloadProfile
tinyProfile()
{
    trace::WorkloadProfile p;
    p.name = "tiny";
    p.suite = trace::Suite::SpecInt;
    p.totalInstructions = 500'000'000; // ~0.1 s at 4.5e9 i/s
    p.ipc = 1.5;
    p.bursts.meanBurstEvents = 5;
    p.bursts.meanWithinBurstGap = 1000;
    p.bursts.interBurstGapLogMean = std::log(20'000'000.0);
    p.bursts.interBurstGapLogSigma = 0.3;
    p.imulFraction = 0.0005;
    p.kindMix[static_cast<std::size_t>(isa::FaultableKind::VOR)] = 1.0;
    return p;
}

SimConfig
baseConfig(const power::CpuModel &cpu)
{
    SimConfig cfg;
    cfg.cpu = &cpu;
    cfg.offsetMv = -97.0;
    cfg.mode = RunMode::Suit;
    cfg.strategy = core::StrategyKind::CombinedFv;
    cfg.params = core::optimalParams(cpu);
    cfg.seed = 42;
    return cfg;
}

TEST(DomainSim, BaselineDurationMatchesAnalytic)
{
    const power::CpuModel cpu = power::cpuA_i9_9900k();
    const trace::WorkloadProfile p = tinyProfile();
    const trace::Trace t = trace::TraceGenerator(1).generate(p);

    SimConfig cfg = baseConfig(cpu);
    cfg.mode = RunMode::Baseline;
    DomainSimulator sim(cfg, {{&t, &p}});
    const DomainResult r = sim.run();

    ASSERT_EQ(r.cores.size(), 1u);
    EXPECT_NEAR(r.cores[0].durationS, r.cores[0].baselineDurationS,
                0.001 * r.cores[0].baselineDurationS);
    EXPECT_NEAR(r.powerFactor, 1.0, 1e-9);
    EXPECT_EQ(r.traps, 0u);
    EXPECT_EQ(r.emulations, 0u);
    EXPECT_DOUBLE_EQ(r.efficientShare, 0.0);
}

TEST(DomainSim, SuitRunTrapsOncePerBurst)
{
    const power::CpuModel cpu = power::cpuA_i9_9900k();
    const trace::WorkloadProfile p = tinyProfile();
    const trace::Trace t = trace::TraceGenerator(1).generate(p);

    DomainSimulator sim(baseConfig(cpu), {{&t, &p}});
    const DomainResult r = sim.run();

    // Gaps (20M instr ~ 4.4 ms) dwarf the deadline: every burst
    // re-traps, and only its first instruction does.
    const std::size_t bursts = t.eventCount() / 5;
    EXPECT_GT(r.traps, bursts / 2);
    EXPECT_LT(r.traps, 2 * bursts);
    EXPECT_EQ(r.emulations, 0u);
    // Sparse events: overwhelmingly on the efficient curve.
    EXPECT_GT(r.efficientShare, 0.9);
    // Power saving close to the full measured response.
    EXPECT_LT(r.powerDelta(), -0.12);
    EXPECT_GT(r.perfDelta(), 0.0);
}

TEST(DomainSim, EmulationRunNeverLeavesEfficientCurve)
{
    const power::CpuModel cpu = power::cpuA_i9_9900k();
    const trace::WorkloadProfile p = tinyProfile();
    const trace::Trace t = trace::TraceGenerator(1).generate(p);

    SimConfig cfg = baseConfig(cpu);
    cfg.strategy = core::StrategyKind::Emulation;
    DomainSimulator sim(cfg, {{&t, &p}});
    const DomainResult r = sim.run();

    EXPECT_NEAR(r.efficientShare, 1.0, 1e-9);
    EXPECT_EQ(r.emulations, t.eventCount());
    EXPECT_EQ(r.traps, t.eventCount());
    EXPECT_EQ(r.pstateSwitches, 0u);
}

TEST(DomainSim, NoSimdCompileHasNoTraps)
{
    const power::CpuModel cpu = power::cpuA_i9_9900k();
    trace::WorkloadProfile p = tinyProfile();
    p.noSimdDelta = -0.10; // 10 % slower without SIMD
    const trace::Trace t = trace::TraceGenerator(1).generate(p);

    SimConfig cfg = baseConfig(cpu);
    cfg.mode = RunMode::NoSimdCompile;
    DomainSimulator sim(cfg, {{&t, &p}});
    const DomainResult r = sim.run();

    EXPECT_EQ(r.traps, 0u);
    EXPECT_NEAR(r.efficientShare, 1.0, 1e-9);
    // Perf combines the no-SIMD penalty with the undervolt bonus.
    const double expect =
        (1.0 - 0.10) * (1.0 + 0.038) *
            (1.0 - trace::imulLatencyOverhead(p.imulFraction)) -
        1.0;
    EXPECT_NEAR(r.perfDelta(), expect, 0.002);
}

TEST(DomainSim, VoltageStrategySlowerSwitchesThanFv)
{
    const power::CpuModel cpu = power::cpuA_i9_9900k();
    const trace::WorkloadProfile p = tinyProfile();
    const trace::Trace t = trace::TraceGenerator(1).generate(p);

    SimConfig fv = baseConfig(cpu);
    SimConfig volt = baseConfig(cpu);
    volt.strategy = core::StrategyKind::Voltage;

    DomainSimulator sim_fv(fv, {{&t, &p}});
    DomainSimulator sim_v(volt, {{&t, &p}});
    const double perf_fv = sim_fv.run().perfDelta();
    const double perf_v = sim_v.run().perfDelta();
    // The V strategy stalls ~350 us per burst instead of ~22 us.
    EXPECT_LT(perf_v, perf_fv);
}

TEST(DomainSim, SharedDomainCouplesCores)
{
    const power::CpuModel cpu = power::cpuA_i9_9900k(); // SharedAll
    const trace::WorkloadProfile p = tinyProfile();
    const trace::TraceGenerator gen(7);
    const trace::Trace t0 = gen.generate(p, 0);
    const trace::Trace t1 = gen.generate(p, 1);
    const trace::Trace t2 = gen.generate(p, 2);
    const trace::Trace t3 = gen.generate(p, 3);

    DomainSimulator one(baseConfig(cpu), {{&t0, &p}});
    const DomainResult r1 = one.run();

    DomainSimulator four(baseConfig(cpu),
                         {{&t0, &p}, {&t1, &p}, {&t2, &p}, {&t3, &p}});
    const DomainResult r4 = four.run();

    // Four independent streams trap the shared domain ~4x as often:
    // less time on the efficient curve, worse efficiency.
    EXPECT_LT(r4.efficientShare, r1.efficientShare);
    EXPECT_LT(r4.efficiencyDelta(), r1.efficiencyDelta());
    EXPECT_GT(r4.traps, r1.traps);
}

TEST(DomainSim, DeeperUndervoltImprovesEfficiency)
{
    const power::CpuModel cpu = power::cpuC_xeon4208();
    const trace::WorkloadProfile p = tinyProfile();
    const trace::Trace t = trace::TraceGenerator(5).generate(p);

    SimConfig shallow = baseConfig(cpu);
    shallow.offsetMv = -70.0;
    SimConfig deep = baseConfig(cpu);
    deep.offsetMv = -97.0;

    DomainSimulator s1(shallow, {{&t, &p}});
    DomainSimulator s2(deep, {{&t, &p}});
    EXPECT_GT(s2.run().efficiencyDelta(), s1.run().efficiencyDelta());
}

TEST(Evaluation, RunWorkloadHonoursDomainLayout)
{
    EvalConfig cfg;
    const power::CpuModel cpu_c = power::cpuC_xeon4208();
    cfg.cpu = &cpu_c;
    cfg.cores = 4; // per-core domains: core count irrelevant
    cfg.params = core::optimalParams(cpu_c);
    const DomainResult r =
        sim::runWorkload(cfg, trace::profileByName("557.xz"));
    EXPECT_EQ(r.cores.size(), 1u);

    EvalConfig cfg_a = cfg;
    const power::CpuModel cpu_a = power::cpuA_i9_9900k();
    cfg_a.cpu = &cpu_a; // shared domain: all 4 cores together
    const DomainResult ra =
        sim::runWorkload(cfg_a, trace::profileByName("557.xz"));
    EXPECT_EQ(ra.cores.size(), 4u);
}

TEST(Evaluation, AggregationHelpers)
{
    EXPECT_NEAR(sim::gmeanDelta({0.1, 0.1}), 0.1, 1e-12);
    EXPECT_NEAR(sim::gmeanDelta({1.0, -0.5}), 0.0, 1e-12);
    EXPECT_DOUBLE_EQ(sim::medianDelta({0.3, -0.1, 0.2}), 0.2);
}

TEST(Evaluation, ReferenceShapeAtMinus97OnCpuC)
{
    // The headline claim (paper Sec. 9): ~+11 % efficiency with no
    // performance impact, ~72.7 % of time on the efficient curve.
    // The reproduction must land in the same region.
    EvalConfig cfg;
    const power::CpuModel cpu = power::cpuC_xeon4208();
    cfg.cpu = &cpu;
    cfg.offsetMv = -97.0;
    cfg.params = core::optimalParams(cpu);

    const auto rows = sim::runSuite(cfg, trace::specProfiles());
    const sim::SuiteSummary s = sim::SuiteSummary::of(rows);

    EXPECT_GT(s.gmeanEff, 0.08);
    EXPECT_LT(s.gmeanEff, 0.18);
    EXPECT_GT(s.gmeanPerf, -0.02);
    EXPECT_LT(s.gmeanPerf, 0.02);
    EXPECT_GT(s.meanEfficientShare, 0.55);
    EXPECT_LT(s.gmeanPower, -0.08);
}

} // namespace
