/**
 * @file
 * Workspace-reuse bit-identity suite.
 *
 * The allocation-free evaluation path — one SimWorkspace whose
 * simulator, strategy slot and result scratch are reused across
 * domains — must produce byte-for-byte the same serialized
 * DomainResult as the allocating overload that builds everything
 * fresh.  One workspace is threaded through the whole configuration
 * matrix, so every reset() crosses CPU models, core counts, run
 * modes and strategy kinds (exercising both the StrategyArena
 * same-kind recycle and the kind-change reconstruct).
 *
 * Carries the `exec` ctest label (via the golden test binary) so the
 * reuse path also runs under -DSUIT_SANITIZE=thread.
 */

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/params.hh"
#include "sim/evaluation.hh"
#include "sim/result_io.hh"
#include "sim/trace_cache.hh"
#include "sim/workspace.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"

namespace {

using namespace suit;
using sim::EvalConfig;
using sim::RunMode;

/** Small synthetic workload (same shape as the golden suite's). */
trace::WorkloadProfile
reuseProfile(const std::string &name, bool dense)
{
    trace::WorkloadProfile p;
    p.name = name;
    p.suite = trace::Suite::SpecFp;
    p.totalInstructions = 400'000'000;
    p.ipc = 1.4;
    p.bursts.meanBurstEvents = dense ? 60 : 5;
    p.bursts.meanWithinBurstGap = dense ? 400 : 1500;
    p.bursts.interBurstGapLogMean = std::log(dense ? 4e6 : 2e7);
    p.bursts.interBurstGapLogSigma = 0.4;
    p.imulFraction = 0.0006;
    p.noSimdDelta = -0.18;
    p.noSimdDeltaAmd = -0.12;
    p.eventWeight = dense ? 3.0 : 1.0;
    p.kindMix[static_cast<std::size_t>(isa::FaultableKind::VOR)] = 0.7;
    p.kindMix[static_cast<std::size_t>(isa::FaultableKind::AESENC)] =
        0.3;
    return p;
}

/** Every (mode, strategy) combination the simulator dispatches on. */
struct ModeCase
{
    const char *label;
    RunMode mode;
    core::StrategyKind strategy;
};

const std::vector<ModeCase> &
modeCases()
{
    static const std::vector<ModeCase> cases = {
        {"baseline", RunMode::Baseline, core::StrategyKind::CombinedFv},
        {"nosimd", RunMode::NoSimdCompile,
         core::StrategyKind::CombinedFv},
        {"suit-e", RunMode::Suit, core::StrategyKind::Emulation},
        {"suit-f", RunMode::Suit, core::StrategyKind::Frequency},
        {"suit-V", RunMode::Suit, core::StrategyKind::Voltage},
        {"suit-fV", RunMode::Suit, core::StrategyKind::CombinedFv},
        {"suit-e+fV", RunMode::Suit, core::StrategyKind::Hybrid},
    };
    return cases;
}

TEST(WorkspaceReuse, ReusedWorkspaceMatchesFreshEvaluationAcrossMatrix)
{
    const std::vector<power::CpuModel> cpus = {
        power::cpuA_i9_9900k(), power::cpuC_xeon4208()};
    const std::vector<trace::WorkloadProfile> profiles = {
        reuseProfile("reuse-dense", true),
        reuseProfile("reuse-sparse", false)};

    sim::TraceCache traces;
    sim::SimWorkspace ws; // ONE workspace across the whole matrix
    int checked = 0;
    for (const power::CpuModel &cpu : cpus) {
        for (const int cores : {1, 4}) {
            for (const ModeCase &mc : modeCases()) {
                for (const trace::WorkloadProfile &p : profiles) {
                    EvalConfig cfg;
                    cfg.cpu = &cpu;
                    cfg.cores = cores;
                    cfg.offsetMv = -97.0;
                    cfg.mode = mc.mode;
                    cfg.strategy = mc.strategy;
                    cfg.params = core::optimalParams(cpu);
                    cfg.seed = 7;

                    std::string fresh_bytes;
                    sim::serializeResult(
                        sim::runWorkload(cfg, p, traces),
                        fresh_bytes);
                    std::string reused_bytes;
                    sim::serializeResult(
                        sim::runWorkload(cfg, p, traces, ws),
                        reused_bytes);
                    ASSERT_EQ(reused_bytes, fresh_bytes)
                        << "CPU " << cpu.label() << " cores=" << cores
                        << " " << mc.label << " " << p.name;
                    ++checked;
                }
            }
        }
    }
    EXPECT_EQ(checked, 2 * 2 * 7 * 2);
}

TEST(WorkspaceReuse, RepeatedEvaluationInOneWorkspaceIsDeterministic)
{
    const power::CpuModel cpu = power::cpuC_xeon4208();
    const trace::WorkloadProfile p = reuseProfile("reuse-dense", true);

    EvalConfig cfg;
    cfg.cpu = &cpu;
    cfg.params = core::optimalParams(cpu);
    cfg.seed = 13;

    sim::TraceCache traces;
    sim::SimWorkspace ws;
    std::string first;
    sim::serializeResult(sim::runWorkload(cfg, p, traces, ws), first);
    ASSERT_FALSE(first.empty());
    for (int i = 0; i < 5; ++i) {
        std::string again;
        sim::serializeResult(sim::runWorkload(cfg, p, traces, ws),
                             again);
        ASSERT_EQ(again, first) << "iteration " << i;
    }
}

TEST(WorkspaceReuse, StateLogBitIdenticalThroughResetAndResultReuse)
{
    // The p-state timeline is swapped (not copied) into the result,
    // so the reset()/runInto() reuse path must hand back the full
    // timeline every run even when both the simulator and the result
    // struct are recycled.
    const power::CpuModel cpu = power::cpuC_xeon4208();
    const trace::WorkloadProfile p = reuseProfile("reuse-dense", true);
    const trace::Trace trace = trace::TraceGenerator(11).generate(p, 0);
    const std::vector<sim::CoreWork> work = {{&trace, &p}};

    sim::SimConfig cfg;
    cfg.cpu = &cpu;
    cfg.offsetMv = -97.0;
    cfg.mode = RunMode::Suit;
    cfg.strategy = core::StrategyKind::CombinedFv;
    cfg.params = core::optimalParams(cpu);
    cfg.seed = 23;
    cfg.recordStateLog = true;

    sim::DomainSimulator fresh_sim(cfg, work);
    const sim::DomainResult fresh = fresh_sim.run();
    ASSERT_FALSE(fresh.stateLog.empty());
    std::string fresh_bytes;
    sim::serializeResult(fresh, fresh_bytes);

    sim::DomainSimulator reused_sim;
    sim::DomainResult reused;
    for (int i = 0; i < 3; ++i) {
        reused_sim.reset(cfg, work);
        reused_sim.runInto(reused);
        std::string reused_bytes;
        sim::serializeResult(reused, reused_bytes);
        ASSERT_EQ(reused_bytes, fresh_bytes) << "iteration " << i;
    }
}

} // namespace
