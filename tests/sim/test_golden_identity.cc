/**
 * @file
 * Golden bit-identity suite for the domain-simulator fast path.
 *
 * The optimised event loop (invariant tables, incremental arrival
 * scheduling, batched native windows) must reproduce the reference
 * loop byte-for-byte: every DomainResult — including the optional
 * p-state timeline — is serialised through sim::result_io and
 * compared against the SimConfig::referencePath run of the same
 * configuration.  The matrix spans the three paper machines, every
 * run mode and strategy, one- and four-core layouts and two
 * undervolt offsets.
 *
 * This binary carries the `exec` ctest label: the parallel-fleet
 * case exercises the sweep engine, so it also runs under
 * -DSUIT_SANITIZE=thread.
 */

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/params.hh"
#include "emu/simd_ops.hh"
#include "exec/sweep.hh"
#include "obs/registry.hh"
#include "sim/domain_sim.hh"
#include "sim/evaluation.hh"
#include "sim/result_io.hh"
#include "sim/trace_cache.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"

namespace {

using namespace suit;
using sim::EvalConfig;
using sim::RunMode;

/**
 * A small synthetic workload.  @p dense drives the within-burst
 * event density up so the batched-native-window path sees long runs
 * of consecutive events; the sparse variant exercises the
 * timer-bounded window endings.
 */
trace::WorkloadProfile
goldenProfile(const std::string &name, bool dense)
{
    trace::WorkloadProfile p;
    p.name = name;
    p.suite = trace::Suite::SpecFp;
    p.totalInstructions = 400'000'000;
    p.ipc = 1.4;
    p.bursts.meanBurstEvents = dense ? 60 : 5;
    p.bursts.meanWithinBurstGap = dense ? 400 : 1500;
    p.bursts.interBurstGapLogMean = std::log(dense ? 4e6 : 2e7);
    p.bursts.interBurstGapLogSigma = 0.4;
    p.imulFraction = 0.0006;
    p.noSimdDelta = -0.18;
    p.noSimdDeltaAmd = -0.12;
    p.eventWeight = dense ? 3.0 : 1.0;
    p.kindMix[static_cast<std::size_t>(isa::FaultableKind::VOR)] = 0.7;
    p.kindMix[static_cast<std::size_t>(isa::FaultableKind::AESENC)] =
        0.3;
    return p;
}

/** Serialize one runWorkload() outcome. */
std::string
resultBytes(const EvalConfig &config, const trace::WorkloadProfile &p,
            sim::TraceCache &traces)
{
    std::string bytes;
    sim::serializeResult(sim::runWorkload(config, p, traces), bytes);
    return bytes;
}

/** Every (mode, strategy) combination the simulator dispatches on. */
struct ModeCase
{
    const char *label;
    RunMode mode;
    core::StrategyKind strategy;
};

const std::vector<ModeCase> &
modeCases()
{
    static const std::vector<ModeCase> cases = {
        {"baseline", RunMode::Baseline, core::StrategyKind::CombinedFv},
        {"nosimd", RunMode::NoSimdCompile,
         core::StrategyKind::CombinedFv},
        {"suit-e", RunMode::Suit, core::StrategyKind::Emulation},
        {"suit-f", RunMode::Suit, core::StrategyKind::Frequency},
        {"suit-V", RunMode::Suit, core::StrategyKind::Voltage},
        {"suit-fV", RunMode::Suit, core::StrategyKind::CombinedFv},
        {"suit-e+fV", RunMode::Suit, core::StrategyKind::Hybrid},
    };
    return cases;
}

TEST(GoldenIdentity, FastPathMatchesReferenceAcrossMatrix)
{
    const std::vector<power::CpuModel> cpus = {
        power::cpuA_i9_9900k(), power::cpuB_ryzen7700x(),
        power::cpuC_xeon4208()};
    const std::vector<trace::WorkloadProfile> profiles = {
        goldenProfile("golden-dense", true),
        goldenProfile("golden-sparse", false)};

    sim::TraceCache traces;
    int checked = 0;
    for (const power::CpuModel &cpu : cpus) {
        for (const int cores : {1, 4}) {
            for (const double offset : {-70.0, -97.0}) {
                for (const ModeCase &mc : modeCases()) {
                    for (const trace::WorkloadProfile &p : profiles) {
                        EvalConfig cfg;
                        cfg.cpu = &cpu;
                        cfg.cores = cores;
                        cfg.offsetMv = offset;
                        cfg.mode = mc.mode;
                        cfg.strategy = mc.strategy;
                        cfg.params = core::optimalParams(cpu);
                        cfg.seed = 7;

                        cfg.referencePath = false;
                        const std::string fast =
                            resultBytes(cfg, p, traces);
                        cfg.referencePath = true;
                        const std::string ref =
                            resultBytes(cfg, p, traces);
                        ASSERT_EQ(fast, ref)
                            << "CPU " << cpu.label() << " cores="
                            << cores << " offset=" << offset << " "
                            << mc.label << " " << p.name;
                        ++checked;
                    }
                }
            }
        }
    }
    EXPECT_EQ(checked, 3 * 2 * 2 * 7 * 2);
}

/** RAII: force one arrival-scan implementation, restore the old one. */
struct ScanImplGuard
{
    explicit ScanImplGuard(emu::ScanImpl impl)
        : prev_(emu::arrivalScanImpl())
    {
        emu::setArrivalScanImpl(impl);
    }
    ~ScanImplGuard() { emu::setArrivalScanImpl(prev_); }

    emu::ScanImpl prev_;
};

/**
 * Multi-core batched native windows across both arrival-scan
 * implementations.  Core counts 8 and 12 push the row length past
 * kVectorScanMinLanes so the minIndexU64() kernel (AVX2 where
 * available) runs inside the window loop; 12 is not a multiple of
 * four, so the vector kernel's scalar tail executes too.  The mode
 * cases pick the window flavours apart: Baseline batches whole
 * traces, Emulation stalls cores in-window (resume starts), and the
 * CombinedFv/Hybrid strategies leave transitions pending across
 * windows (runUntil caps).
 */
TEST(GoldenIdentity, MultiCoreBatchedWindowsAcrossScanImpls)
{
    const power::CpuModel cpu = power::cpuA_i9_9900k();
    const std::vector<trace::WorkloadProfile> profiles = {
        goldenProfile("golden-dense", true),
        goldenProfile("golden-sparse", false)};
    const std::vector<ModeCase> cases = {
        {"baseline", RunMode::Baseline, core::StrategyKind::CombinedFv},
        {"suit-e", RunMode::Suit, core::StrategyKind::Emulation},
        {"suit-fV", RunMode::Suit, core::StrategyKind::CombinedFv},
        {"suit-e+fV", RunMode::Suit, core::StrategyKind::Hybrid},
    };

    sim::TraceCache traces;
    int checked = 0;
    for (const int cores : {2, 4, 8, 12}) {
        for (const ModeCase &mc : cases) {
            for (const trace::WorkloadProfile &p : profiles) {
                EvalConfig cfg;
                cfg.cpu = &cpu;
                cfg.cores = cores;
                cfg.offsetMv = -97.0;
                cfg.mode = mc.mode;
                cfg.strategy = mc.strategy;
                cfg.params = core::optimalParams(cpu);
                cfg.seed = 7;

                cfg.referencePath = true;
                const std::string ref = resultBytes(cfg, p, traces);
                cfg.referencePath = false;
                std::string scalar_bytes;
                std::string vector_bytes;
                {
                    ScanImplGuard guard(emu::ScanImpl::Scalar);
                    scalar_bytes = resultBytes(cfg, p, traces);
                }
                {
                    ScanImplGuard guard(emu::ScanImpl::Vector);
                    vector_bytes = resultBytes(cfg, p, traces);
                }
                ASSERT_EQ(scalar_bytes, ref)
                    << "scalar scan, cores=" << cores << " "
                    << mc.label << " " << p.name;
                ASSERT_EQ(vector_bytes, ref)
                    << "vector scan, cores=" << cores << " "
                    << mc.label << " " << p.name;
                ++checked;
            }
        }
    }
    EXPECT_EQ(checked, 4 * 4 * 2);
}

/**
 * The sim.events.batched counter must cover both window flavours:
 * single-core domains (runNativeWindowSingle) and shared multi-core
 * domains (runNativeWindowMulti) each consume most trace events
 * inside windows.
 */
TEST(GoldenIdentity, BatchedWindowCounterCoversSingleAndMultiCore)
{
    const power::CpuModel cpu = power::cpuA_i9_9900k();
    const trace::WorkloadProfile p = goldenProfile("golden-dense", true);

    sim::TraceCache traces;
    for (const int cores : {1, 4}) {
        obs::metrics().reset();
        obs::metrics().setEnabled(true);

        EvalConfig cfg;
        cfg.cpu = &cpu;
        cfg.cores = cores;
        cfg.offsetMv = -97.0;
        cfg.mode = RunMode::Suit;
        cfg.strategy = core::StrategyKind::CombinedFv;
        cfg.params = core::optimalParams(cpu);
        cfg.seed = 7;
        (void)sim::runWorkload(cfg, p, traces);

        const obs::Snapshot snap = obs::metrics().snapshot();
        obs::metrics().setEnabled(false);
        obs::metrics().reset();

        ASSERT_NE(snap.find("sim.events.batched"), nullptr)
            << "cores=" << cores;
        ASSERT_NE(snap.find("sim.events.total"), nullptr)
            << "cores=" << cores;
        const std::uint64_t batched =
            snap.find("sim.events.batched")->count;
        const std::uint64_t total =
            snap.find("sim.events.total")->count;
        EXPECT_GT(batched, 0u) << "cores=" << cores;
        EXPECT_LE(batched, total) << "cores=" << cores;
        // The windows are the fast path's point: the bulk of the
        // trace must be consumed there, not in the generic loop.
        EXPECT_GT(batched, total / 2) << "cores=" << cores;
    }
}

/**
 * The p-state timeline is the most fragile part of the result (one
 * extra or reordered event shifts every later entry), so it gets a
 * dedicated identity check with recordStateLog set — once on a
 * single-core domain (batched windows) and once on a shared
 * four-core domain (arrival cache under cross-core interleaving).
 */
TEST(GoldenIdentity, StateLogBitIdenticalWithRecordStateLog)
{
    const power::CpuModel cpuC = power::cpuC_xeon4208();
    const power::CpuModel cpuA = power::cpuA_i9_9900k();
    const trace::WorkloadProfile p = goldenProfile("golden-dense", true);

    struct DomainCase
    {
        const power::CpuModel *cpu;
        int streams;
    };
    for (const DomainCase dc :
         {DomainCase{&cpuC, 1}, DomainCase{&cpuA, 4}}) {
        std::vector<trace::Trace> traces;
        for (int s = 0; s < dc.streams; ++s)
            traces.push_back(trace::TraceGenerator(11).generate(p, s));
        std::vector<sim::CoreWork> work;
        for (const trace::Trace &t : traces)
            work.push_back({&t, &p});

        sim::SimConfig cfg;
        cfg.cpu = dc.cpu;
        cfg.offsetMv = -97.0;
        cfg.mode = RunMode::Suit;
        cfg.strategy = core::StrategyKind::CombinedFv;
        cfg.params = core::optimalParams(*dc.cpu);
        cfg.seed = 23;
        cfg.recordStateLog = true;

        cfg.referencePath = false;
        sim::DomainSimulator fast_sim(cfg, work);
        const sim::DomainResult fast = fast_sim.run();
        cfg.referencePath = true;
        sim::DomainSimulator ref_sim(cfg, work);
        const sim::DomainResult ref = ref_sim.run();

        // The check must bite: a SUIT run of this workload switches
        // p-states and traps many times.
        ASSERT_FALSE(ref.stateLog.empty());

        std::string fast_bytes;
        std::string ref_bytes;
        sim::serializeResult(fast, fast_bytes);
        sim::serializeResult(ref, ref_bytes);
        EXPECT_EQ(fast_bytes, ref_bytes)
            << "CPU " << dc.cpu->label() << " streams=" << dc.streams;
    }
}

/**
 * Fleet check: the fast path under the parallel sweep engine must
 * equal the reference path run serially.  Under -DSUIT_SANITIZE=thread
 * this also race-checks the fast loop's per-simulator state.
 */
TEST(GoldenIdentity, ParallelFastMatchesSerialReference)
{
    const power::CpuModel cpu = power::cpuA_i9_9900k();
    const std::vector<trace::WorkloadProfile> profiles = {
        goldenProfile("golden-dense", true),
        goldenProfile("golden-sparse", false),
        goldenProfile("golden-mid", true)};

    EvalConfig cfg;
    cfg.cpu = &cpu;
    cfg.cores = 4;
    cfg.offsetMv = -97.0;
    cfg.mode = RunMode::Suit;
    cfg.strategy = core::StrategyKind::Hybrid;
    cfg.params = core::optimalParams(cpu);
    cfg.seed = 3;

    cfg.referencePath = true;
    const std::vector<sim::WorkloadRow> serial =
        sim::runSuite(cfg, profiles);
    cfg.referencePath = false;
    const std::vector<sim::WorkloadRow> parallel =
        sim::runSuiteParallel(cfg, profiles, 4);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        std::string serial_bytes;
        std::string parallel_bytes;
        sim::serializeResult(serial[i].result, serial_bytes);
        sim::serializeResult(parallel[i].result, parallel_bytes);
        EXPECT_EQ(serial_bytes, parallel_bytes)
            << profiles[i].name;
    }
}

} // namespace
