/**
 * @file
 * DomainResult binary serialization tests: bit-exact round trips
 * (including awkward doubles), stateLog preservation, and rejection
 * of truncated or malformed buffers instead of over-reads.
 */

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "sim/result_io.hh"

namespace {

using suit::sim::CoreResult;
using suit::sim::DomainResult;
using suit::sim::deserializeResult;
using suit::sim::PStateChange;
using suit::sim::serializeResult;

DomainResult
sample()
{
    DomainResult r;
    CoreResult a;
    a.workload = "557.xz";
    a.durationS = 1.25e-3;
    a.baselineDurationS = 0.1 + 0.2; // not exactly 0.3
    CoreResult b;
    b.workload = "Nginx";
    b.durationS = -0.0; // sign of zero must survive
    b.baselineDurationS = std::numeric_limits<double>::denorm_min();
    r.cores = {a, b};
    r.stateLog.push_back(
        {123456789ULL, suit::power::SuitPState::Efficient, false});
    r.stateLog.push_back(
        {987654321ULL, suit::power::SuitPState::ConservativeVolt,
         true});
    r.powerFactor = 0.918273645546372819;
    r.efficientShare = 2.0 / 3.0;
    r.cfShare = 0.25;
    r.cvShare = 1.0 / 12.0;
    r.traps = 0xFFFFFFFFFFFFFFFFULL;
    r.emulations = 42;
    r.pstateSwitches = 7;
    r.thrashDetections = 1;
    return r;
}

void
expectBitIdentical(const DomainResult &x, const DomainResult &y)
{
    ASSERT_EQ(x.cores.size(), y.cores.size());
    for (std::size_t i = 0; i < x.cores.size(); ++i) {
        EXPECT_EQ(x.cores[i].workload, y.cores[i].workload);
        EXPECT_EQ(std::signbit(x.cores[i].durationS),
                  std::signbit(y.cores[i].durationS));
        EXPECT_EQ(x.cores[i].durationS, y.cores[i].durationS);
        EXPECT_EQ(x.cores[i].baselineDurationS,
                  y.cores[i].baselineDurationS);
    }
    ASSERT_EQ(x.stateLog.size(), y.stateLog.size());
    for (std::size_t i = 0; i < x.stateLog.size(); ++i) {
        EXPECT_EQ(x.stateLog[i].when, y.stateLog[i].when);
        EXPECT_EQ(x.stateLog[i].to, y.stateLog[i].to);
        EXPECT_EQ(x.stateLog[i].trap, y.stateLog[i].trap);
    }
    EXPECT_EQ(x.powerFactor, y.powerFactor);
    EXPECT_EQ(x.efficientShare, y.efficientShare);
    EXPECT_EQ(x.cfShare, y.cfShare);
    EXPECT_EQ(x.cvShare, y.cvShare);
    EXPECT_EQ(x.traps, y.traps);
    EXPECT_EQ(x.emulations, y.emulations);
    EXPECT_EQ(x.pstateSwitches, y.pstateSwitches);
    EXPECT_EQ(x.thrashDetections, y.thrashDetections);
}

TEST(ResultIo, RoundTripIsBitIdentical)
{
    const DomainResult original = sample();
    std::string bytes;
    serializeResult(original, bytes);

    DomainResult decoded;
    std::size_t offset = 0;
    ASSERT_TRUE(deserializeResult(bytes.data(), bytes.size(), offset,
                                  decoded));
    EXPECT_EQ(offset, bytes.size());
    expectBitIdentical(original, decoded);
}

TEST(ResultIo, ConsecutiveResultsShareOneBuffer)
{
    const DomainResult first = sample();
    DomainResult second;
    second.powerFactor = 1.5;

    std::string bytes;
    serializeResult(first, bytes);
    serializeResult(second, bytes);

    std::size_t offset = 0;
    DomainResult a, b;
    ASSERT_TRUE(
        deserializeResult(bytes.data(), bytes.size(), offset, a));
    ASSERT_TRUE(
        deserializeResult(bytes.data(), bytes.size(), offset, b));
    EXPECT_EQ(offset, bytes.size());
    expectBitIdentical(first, a);
    expectBitIdentical(second, b);
}

TEST(ResultIo, EveryTruncationIsRejected)
{
    std::string bytes;
    serializeResult(sample(), bytes);
    // No prefix of the encoding may decode: each truncation must
    // return false instead of fabricating data or reading past the
    // end.
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        DomainResult out;
        std::size_t offset = 0;
        EXPECT_FALSE(
            deserializeResult(bytes.data(), len, offset, out))
            << "truncation to " << len << " bytes decoded";
    }
}

TEST(ResultIo, AbsurdElementCountIsRejected)
{
    // A corrupt 2^60 core count must fail cleanly, not reserve().
    std::string bytes(8, '\xFF');
    DomainResult out;
    std::size_t offset = 0;
    EXPECT_FALSE(
        deserializeResult(bytes.data(), bytes.size(), offset, out));
}

} // namespace
