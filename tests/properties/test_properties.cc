/**
 * @file
 * Parameterized property sweeps: invariants that must hold across
 * every faultable instruction, every CPU model, every workload
 * profile, every operating strategy and every program mix.
 */

#include <cmath>
#include <gtest/gtest.h>
#include <tuple>

#include "core/params.hh"
#include "emu/dispatcher.hh"
#include "faults/vmin_model.hh"
#include "power/cpu_model.hh"
#include "sim/evaluation.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"
#include "uarch/o3_model.hh"
#include "util/rng.hh"

namespace {

using namespace suit;

// ----------------------------------------------------------------
// Per-instruction properties (all 12 faultable kinds)
// ----------------------------------------------------------------

class FaultableKindP
    : public ::testing::TestWithParam<isa::FaultableKind>
{
};

TEST_P(FaultableKindP, EmulationIsDeterministic)
{
    const isa::FaultableKind kind = GetParam();
    util::Rng rng(static_cast<std::uint64_t>(kind) + 1);
    emu::EmuRequest req;
    req.kind = kind;
    req.a = emu::Vec256(rng.next(), rng.next(), rng.next(), rng.next());
    req.b = emu::Vec256(rng.next(), rng.next(), rng.next(), rng.next());
    req.imm = 5;
    EXPECT_EQ(emu::emulate(req), emu::emulate(req));
}

TEST_P(FaultableKindP, EmulationCostIsReasonable)
{
    const double cycles = emu::emulationCostCycles(GetParam());
    EXPECT_GT(cycles, 0.0);
    EXPECT_LT(cycles, 10'000.0); // all bodies beat a syscall by far
}

TEST_P(FaultableKindP, VminOrderingIsStableAcrossChips)
{
    // On every chip instance, the instruction's Vmin stays within
    // the instruction-variation band below the operating point.
    const isa::FaultableKind kind = GetParam();
    static const power::DvfsCurve curve = power::i9_9900kCurve();
    for (std::uint64_t seed : {1ULL, 77ULL, 90210ULL}) {
        faults::VminConfig cfg;
        cfg.curve = &curve;
        cfg.cores = 2;
        cfg.seed = seed;
        const faults::VminModel m(cfg);
        for (int core = 0; core < 2; ++core) {
            const double vmin = m.vminMv(core, kind, 4.5e9);
            EXPECT_LT(vmin, curve.voltageAtMv(4.5e9));
            EXPECT_GT(vmin, m.crashVoltageMv(core, 4.5e9));
        }
    }
}

TEST_P(FaultableKindP, FaultProbabilityIsMonotoneInVoltage)
{
    static const power::DvfsCurve curve = power::i9_9900kCurve();
    faults::VminConfig cfg;
    cfg.curve = &curve;
    cfg.cores = 1;
    const faults::VminModel m(cfg);
    double prev = 0.0;
    for (double v = curve.voltageAtMv(4.5e9); v > 700.0; v -= 5.0) {
        const double p =
            m.faultProbability(0, GetParam(), 4.5e9, v);
        EXPECT_GE(p, prev - 1e-12)
            << "probability dropped as voltage sank";
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
        prev = p;
    }
}

std::string
kindParamName(const ::testing::TestParamInfo<isa::FaultableKind> &pi)
{
    return isa::toString(pi.param);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, FaultableKindP,
                         ::testing::ValuesIn(isa::allFaultableKinds()),
                         kindParamName);

// ----------------------------------------------------------------
// Per-CPU properties (all machines x both evaluation offsets)
// ----------------------------------------------------------------

enum class CpuId
{
    A,
    B,
    C,
    I5
};

power::CpuModel
makeCpu(CpuId id)
{
    switch (id) {
      case CpuId::A:
        return power::cpuA_i9_9900k();
      case CpuId::B:
        return power::cpuB_ryzen7700x();
      case CpuId::C:
        return power::cpuC_xeon4208();
      case CpuId::I5:
        return power::cpu_i5_1035g1();
    }
    return power::cpuA_i9_9900k();
}

class CpuOffsetP
    : public ::testing::TestWithParam<std::tuple<CpuId, double>>
{
};

TEST_P(CpuOffsetP, PStateFactorInvariants)
{
    const auto [id, offset] = GetParam();
    const power::CpuModel cpu = makeCpu(id);

    // Undervolting never hurts performance or raises power on E.
    EXPECT_GE(cpu.perfFactor(power::SuitPState::Efficient, offset),
              1.0);
    EXPECT_LE(cpu.powerFactor(power::SuitPState::Efficient, offset),
              1.0);
    EXPECT_GT(cpu.powerFactor(power::SuitPState::Efficient, offset),
              0.5);
    // CV is the exact baseline.
    EXPECT_DOUBLE_EQ(
        cpu.perfFactor(power::SuitPState::ConservativeVolt, offset),
        1.0);
    // Cf runs strictly slower than E but is never free lunch.
    EXPECT_LT(
        cpu.perfFactor(power::SuitPState::ConservativeFreq, offset),
        cpu.perfFactor(power::SuitPState::Efficient, offset));
    EXPECT_GT(cpu.cfFreqHz(offset), 0.0);
    EXPECT_LT(cpu.cfFreqHz(offset), cpu.baseFreqHz());
}

TEST_P(CpuOffsetP, EfficientCurveBelowConservativeEverywhere)
{
    const auto [id, offset] = GetParam();
    const power::CpuModel cpu = makeCpu(id);
    const power::DvfsCurve eff = cpu.efficientCurve(offset);
    const auto &cons = cpu.conservativeCurve();
    for (double f = cons.minFreqHz(); f <= cons.maxFreqHz();
         f += (cons.maxFreqHz() - cons.minFreqHz()) / 16.0) {
        EXPECT_LE(eff.voltageAtMv(f), cons.voltageAtMv(f) + 1e-9);
    }
}

TEST_P(CpuOffsetP, TransitionDelaysArePositiveAndBounded)
{
    const auto [id, offset] = GetParam();
    (void)offset;
    const power::CpuModel cpu = makeCpu(id);
    util::Rng rng(42);
    for (int i = 0; i < 200; ++i) {
        const auto f = cpu.transitions().freqChange.sample(rng);
        const auto v = cpu.transitions().voltageChange.sample(rng);
        EXPECT_GT(f, 0u);
        EXPECT_LT(util::ticksToMicroseconds(f), 2000.0);
        EXPECT_GT(v, 0u);
        EXPECT_LT(util::ticksToMicroseconds(v), 2000.0);
    }
}

std::string
cpuParamName(
    const ::testing::TestParamInfo<std::tuple<CpuId, double>> &pi)
{
    static const char *names[] = {"A", "B", "C", "I5"};
    return std::string(
               names[static_cast<int>(std::get<0>(pi.param))]) +
           (std::get<1>(pi.param) == -70.0 ? "_70mV" : "_97mV");
}

INSTANTIATE_TEST_SUITE_P(
    AllCpus, CpuOffsetP,
    ::testing::Combine(::testing::Values(CpuId::A, CpuId::B, CpuId::C,
                                         CpuId::I5),
                       ::testing::Values(-70.0, -97.0)),
    cpuParamName);

// ----------------------------------------------------------------
// Per-workload-profile properties (all 25 profiles)
// ----------------------------------------------------------------

class ProfileP : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ProfileP, GeneratedTraceIsWellFormed)
{
    const auto &profile = trace::profileByName(GetParam());
    const trace::Trace t =
        trace::TraceGenerator(123).generate(profile);

    ASSERT_GT(t.eventCount(), 0u);
    EXPECT_EQ(t.totalInstructions(), profile.totalInstructions);
    EXPECT_DOUBLE_EQ(t.ipc(), profile.ipc);
    EXPECT_DOUBLE_EQ(t.eventWeight(), profile.eventWeight);
    EXPECT_LT(t.eventIndex(t.eventCount() - 1),
              t.totalInstructions());
    // Only kinds with positive mix weight appear; IMUL never does.
    const trace::TraceStats stats = trace::TraceStats::compute(t);
    for (auto kind : isa::allFaultableKinds()) {
        const auto k = static_cast<std::size_t>(kind);
        if (profile.kindMix[k] == 0.0)
            EXPECT_EQ(stats.kindCounts[k], 0u)
                << isa::toString(kind);
    }
    EXPECT_EQ(stats.kindCounts[static_cast<std::size_t>(
                  isa::FaultableKind::IMUL)],
              0u);
}

TEST_P(ProfileP, CalibratedShareMatchesClosedForm)
{
    // The stored burst model must still solve the calibration target
    // under the reference overhead (regression guard for the
    // calibration pipeline).
    const auto &profile = trace::profileByName(GetParam());
    if (profile.suite == trace::Suite::Network)
        return; // network rows calibrate with their own overhead
    const double overhead = 95e-6 * profile.ipc * 3e9;
    const double share =
        profile.bursts.expectedEfficientShare(overhead);
    // The calibration solves for the target under the thrash-
    // inflated overhead, so the share at the *raw* overhead sits at
    // or somewhat above the target — never below, never wildly off.
    EXPECT_GE(share, profile.targetEfficientShare - 1e-6);
    EXPECT_LE(share, profile.targetEfficientShare + 0.25);
}

TEST_P(ProfileP, SimulationInvariantsHold)
{
    const auto &profile = trace::profileByName(GetParam());
    const power::CpuModel cpu = power::cpuC_xeon4208();
    sim::EvalConfig cfg;
    cfg.cpu = &cpu;
    cfg.offsetMv = -97.0;
    cfg.params = core::optimalParams(cpu);
    const sim::DomainResult r = sim::runWorkload(cfg, profile);

    // Shares partition active time.
    EXPECT_NEAR(r.efficientShare + r.cfShare + r.cvShare, 1.0, 1e-9);
    EXPECT_GE(r.efficientShare, 0.0);
    // Power factor between the full-undervolt level and baseline.
    EXPECT_GE(r.powerFactor, 0.83);
    EXPECT_LE(r.powerFactor, 1.0 + 1e-9);
    // Perf within physical bounds (never faster than pure E).
    EXPECT_GT(r.perfDelta(), -0.25);
    EXPECT_LT(r.perfDelta(), 0.05);
    // Traps imply switches under fV unless everything merged.
    if (r.traps > 0)
        EXPECT_GT(r.pstateSwitches, 0u);
}

std::vector<std::string>
allProfileNames()
{
    std::vector<std::string> names;
    for (const auto &p : trace::allProfiles())
        names.push_back(p.name);
    return names;
}

std::string
profileParamName(const ::testing::TestParamInfo<std::string> &pi)
{
    std::string name = pi.param;
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ProfileP,
                         ::testing::ValuesIn(allProfileNames()),
                         profileParamName);

// ----------------------------------------------------------------
// Per-strategy properties
// ----------------------------------------------------------------

class StrategyP
    : public ::testing::TestWithParam<core::StrategyKind>
{
};

TEST_P(StrategyP, SimulationIsDeterministic)
{
    const power::CpuModel cpu = power::cpuA_i9_9900k();
    sim::EvalConfig cfg;
    cfg.cpu = &cpu;
    cfg.strategy = GetParam();
    cfg.params = core::optimalParams(cpu);
    const auto &profile = trace::profileByName("502.gcc");

    const sim::DomainResult a = sim::runWorkload(cfg, profile);
    const sim::DomainResult b = sim::runWorkload(cfg, profile);
    EXPECT_EQ(a.traps, b.traps);
    EXPECT_EQ(a.pstateSwitches, b.pstateSwitches);
    EXPECT_DOUBLE_EQ(a.perfDelta(), b.perfDelta());
    EXPECT_DOUBLE_EQ(a.powerFactor, b.powerFactor);
}

TEST_P(StrategyP, NeverBeatsPureUndervoltBound)
{
    // No strategy can beat running 100 % of the time on the
    // efficient curve with zero overheads.
    const power::CpuModel cpu = power::cpuA_i9_9900k();
    const auto best = cpu.undervolt().at(-97.0);
    sim::EvalConfig cfg;
    cfg.cpu = &cpu;
    cfg.offsetMv = -97.0;
    cfg.strategy = GetParam();
    cfg.params = core::optimalParams(cpu);
    const auto r =
        sim::runWorkload(cfg, trace::profileByName("557.xz"));
    EXPECT_LE(r.perfDelta(), best.scoreDelta + 1e-9);
    EXPECT_GE(r.powerDelta(), best.powerDelta - 1e-9);
}

TEST_P(StrategyP, FactoryRoundTrips)
{
    auto s = core::makeStrategy(GetParam(), core::fastSwitchParams());
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->kind(), GetParam());
    EXPECT_STREQ(s->name(), core::toString(GetParam()));
}

std::string
strategyParamName(
    const ::testing::TestParamInfo<core::StrategyKind> &pi)
{
    switch (pi.param) {
      case core::StrategyKind::Emulation:
        return "Emulation";
      case core::StrategyKind::Frequency:
        return "Frequency";
      case core::StrategyKind::Voltage:
        return "Voltage";
      case core::StrategyKind::CombinedFv:
        return "CombinedFv";
      case core::StrategyKind::Hybrid:
        return "Hybrid";
    }
    return "Unknown";
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyP,
    ::testing::Values(core::StrategyKind::Emulation,
                      core::StrategyKind::Frequency,
                      core::StrategyKind::Voltage,
                      core::StrategyKind::CombinedFv,
                      core::StrategyKind::Hybrid),
    strategyParamName);

// ----------------------------------------------------------------
// Per-program-mix pipeline properties
// ----------------------------------------------------------------

class MixP : public ::testing::TestWithParam<int>
{
  protected:
    uarch::ProgramMix
    mix() const
    {
        return uarch::figure14Mixes()[static_cast<std::size_t>(
            GetParam())];
    }
};

TEST_P(MixP, IpcWithinPhysicalBounds)
{
    const uarch::CoreStats s =
        uarch::runMixAtImulLatency(mix(), 60'000, 3);
    EXPECT_GT(s.ipc(), 0.01);
    EXPECT_LE(s.ipc(), 8.0); // the machine is 8-wide
}

TEST_P(MixP, CyclesMonotoneInImulLatency)
{
    std::uint64_t prev = 0;
    for (int lat : {3, 6, 15, 30}) {
        const uarch::CoreStats s =
            uarch::runMixAtImulLatency(mix(), 60'000, lat);
        EXPECT_GE(s.cycles, prev) << "latency " << lat;
        prev = s.cycles;
    }
}

TEST_P(MixP, DeterministicForSeed)
{
    const uarch::CoreStats a =
        uarch::runMixAtImulLatency(mix(), 30'000, 4, 5);
    const uarch::CoreStats b =
        uarch::runMixAtImulLatency(mix(), 30'000, 4, 5);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
}

std::string
mixParamName(const ::testing::TestParamInfo<int> &pi)
{
    std::string name =
        uarch::figure14Mixes()[static_cast<std::size_t>(pi.param)]
            .name;
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllMixes, MixP,
    ::testing::Range(0, static_cast<int>(
                            uarch::figure14Mixes().size())),
    mixParamName);

} // namespace
