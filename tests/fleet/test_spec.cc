/**
 * @file
 * FleetSpec tests: parse acceptance and line-numbered rejections,
 * deterministic per-domain expansion, trace-seed sharing, domain
 * rescaling and fingerprint sensitivity.
 */

#include <map>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "fleet/spec.hh"

namespace {

using namespace suit;
using fleet::DomainConfig;
using fleet::FleetSpec;
using fleet::SpecError;

const char *const kGoodSpec =
    "# demo fleet\n"
    "name = unit\n"
    "seed = 11\n"
    "pue = 1.5\n"
    "cost_usd_per_kwh = 0.08\n"
    "trace_scale = 0.01\n"
    "rack web cpu=C domains=30 workloads=Nginx:3,VLC:1 "
    "strategy=fV,hybrid offset=-97,-70 variants=2\n"
    "rack build cpu=A domains=10 cores=4 workloads=502.gcc "
    "strategy=e\n";

TEST(FleetSpecParse, AcceptsFullSpec)
{
    const FleetSpec spec = FleetSpec::parse(kGoodSpec);
    EXPECT_EQ(spec.name, "unit");
    EXPECT_EQ(spec.seed, 11u);
    EXPECT_DOUBLE_EQ(spec.pue, 1.5);
    EXPECT_DOUBLE_EQ(spec.costUsdPerKwh, 0.08);
    EXPECT_DOUBLE_EQ(spec.traceScale, 0.01);
    ASSERT_EQ(spec.racks.size(), 2u);
    EXPECT_EQ(spec.racks[0].name, "web");
    EXPECT_EQ(spec.racks[0].cpu, "C");
    EXPECT_EQ(spec.racks[0].domains, 30u);
    ASSERT_EQ(spec.racks[0].workloads.size(), 2u);
    EXPECT_EQ(spec.racks[0].workloads[0].workload, "Nginx");
    EXPECT_DOUBLE_EQ(spec.racks[0].workloads[0].weight, 3.0);
    EXPECT_EQ(spec.racks[0].strategies.size(), 2u);
    EXPECT_EQ(spec.racks[0].offsetsMv.size(), 2u);
    EXPECT_EQ(spec.racks[0].traceVariants, 2);
    EXPECT_EQ(spec.racks[1].cores, 4);
    EXPECT_EQ(spec.totalDomains(), 40u);
}

/** Expect parse() to throw a SpecError containing @p needle. */
void
expectRejects(const std::string &text, const std::string &needle)
{
    try {
        FleetSpec::parse(text);
        FAIL() << "spec accepted; expected error containing '"
               << needle << "'";
    } catch (const SpecError &e) {
        EXPECT_NE(std::string(e.what()).find(needle),
                  std::string::npos)
            << "error was: " << e.what();
    }
}

TEST(FleetSpecParse, RejectsWithLineNumbers)
{
    // The offending construct sits on line 2 of each snippet.
    expectRejects("name = x\nbogus line here\n", "line 2");
    expectRejects("name = x\nrack a cpu=Z domains=1 workloads=VLC\n",
                  "unknown CPU 'Z'");
    expectRejects(
        "name = x\nrack a cpu=C domains=1 workloads=NoSuchLoad\n",
        "unknown workload 'NoSuchLoad'");
    expectRejects("name = x\nrack a domains=1 workloads=VLC "
                  "strategy=warp\n",
                  "unknown strategy 'warp'");
    expectRejects("name = x\nrack a domains=1 workloads=VLC "
                  "offset=25\n",
                  "must be <= 0 mV");
    expectRejects("name = x\nrack a domains=0 workloads=VLC\n",
                  "positive integer");
    expectRejects("name = x\nrack a workloads=VLC\n",
                  "needs domains=");
    expectRejects("name = x\nrack a domains=1\n", "needs workloads=");
    expectRejects("name = x\nrack a domains=1 workloads=VLC:0\n",
                  "must be > 0");
    expectRejects("name = x\nrack a domains=1 workloads=VLC "
                  "variants=1000\n",
                  "256");
    expectRejects("name = x\nrack a domains=1 workloads=VLC "
                  "cores=100\n",
                  "core count");
    expectRejects("name = x\nrack a domains=1 workloads=VLC "
                  "color=red\n",
                  "unknown rack key 'color'");
    expectRejects("pue = 0.5\nrack a domains=1 workloads=VLC\n",
                  "pue must be >= 1.0");
    expectRejects("trace_scale = 2\nrack a domains=1 workloads=VLC\n",
                  "trace_scale must be in (0, 1]");
    expectRejects("wibble = 3\nrack a domains=1 workloads=VLC\n",
                  "unknown fleet key 'wibble'");
    expectRejects("rack a domains=1 workloads=VLC\n"
                  "rack a domains=1 workloads=VLC\n",
                  "duplicate rack name 'a'");
    expectRejects("name = x\n", "no racks");
}

TEST(FleetSpecExpand, IsDeterministicAndInRange)
{
    const FleetSpec spec = FleetSpec::parse(kGoodSpec);
    for (std::uint64_t i = 0; i < spec.totalDomains(); ++i) {
        const DomainConfig a = spec.domainAt(i);
        const DomainConfig b = spec.domainAt(i);
        EXPECT_EQ(a.rack, b.rack);
        EXPECT_EQ(a.workload, b.workload);
        EXPECT_EQ(a.strategy, b.strategy);
        EXPECT_EQ(a.variant, b.variant);
        EXPECT_EQ(a.offsetMv, b.offsetMv);
        EXPECT_EQ(a.simSeed, b.simSeed);
        EXPECT_EQ(a.traceSeed, b.traceSeed);

        const fleet::RackSpec &rack = spec.racks[a.rack];
        EXPECT_EQ(a.rack, i < 30 ? 0u : 1u);
        EXPECT_LT(a.workload, rack.workloads.size());
        EXPECT_LT(a.strategy, rack.strategies.size());
        EXPECT_LT(a.variant, rack.traceVariants);
    }
}

TEST(FleetSpecExpand, SharesTraceSeedsPerVariantOnly)
{
    FleetSpec spec = FleetSpec::parse(kGoodSpec);
    spec.racks[0].domains = 2000;

    // Group domains by (workload, variant): one trace seed per
    // group, distinct seeds across groups, unique sim seeds always.
    std::map<std::pair<int, int>, std::uint64_t> seed_of;
    std::set<std::uint64_t> trace_seeds;
    std::set<std::uint64_t> sim_seeds;
    for (std::uint64_t i = 0; i < 2000; ++i) {
        const DomainConfig cfg = spec.domainAt(i);
        const auto key = std::make_pair(
            static_cast<int>(cfg.workload),
            static_cast<int>(cfg.variant));
        const auto [it, fresh] =
            seed_of.emplace(key, cfg.traceSeed);
        if (!fresh)
            EXPECT_EQ(it->second, cfg.traceSeed);
        trace_seeds.insert(cfg.traceSeed);
        EXPECT_TRUE(sim_seeds.insert(cfg.simSeed).second)
            << "sim seed of domain " << i << " reused";
    }
    // 2 workloads x 2 variants, all distinct.
    EXPECT_EQ(seed_of.size(), 4u);
    EXPECT_EQ(trace_seeds.size(), 4u);
}

TEST(FleetSpecExpand, TenantWeightsShapeTheDraw)
{
    FleetSpec spec = FleetSpec::parse(kGoodSpec);
    spec.racks[0].domains = 20000;
    std::uint64_t nginx = 0;
    for (std::uint64_t i = 0; i < 20000; ++i)
        if (spec.domainAt(i).workload == 0)
            ++nginx;
    // Weight 3:1 => ~75 % Nginx; allow a generous tolerance.
    EXPECT_GT(nginx, 20000 * 0.70);
    EXPECT_LT(nginx, 20000 * 0.80);
}

TEST(FleetSpecScale, HitsTheTargetExactly)
{
    for (const std::uint64_t target : {2ull, 7ull, 99ull, 100001ull}) {
        FleetSpec spec = FleetSpec::parse(kGoodSpec);
        spec.scaleDomains(target);
        EXPECT_EQ(spec.totalDomains(), target);
        for (const fleet::RackSpec &rack : spec.racks)
            EXPECT_GE(rack.domains, 1u);
    }
}

TEST(FleetSpecFingerprint, TracksSimulationInputsOnly)
{
    const FleetSpec base = FleetSpec::parse(kGoodSpec);
    const std::uint64_t h = base.fingerprint();
    EXPECT_EQ(h, FleetSpec::parse(kGoodSpec).fingerprint());

    FleetSpec seeded = base;
    seeded.seed = 12;
    EXPECT_NE(seeded.fingerprint(), h);

    FleetSpec resized = base;
    resized.racks[1].domains = 11;
    EXPECT_NE(resized.fingerprint(), h);

    FleetSpec offset = base;
    offset.racks[0].offsetsMv[0] = -80.0;
    EXPECT_NE(offset.fingerprint(), h);

    // Report-only knobs must not invalidate checkpoints.
    FleetSpec priced = base;
    priced.pue = 2.0;
    priced.costUsdPerKwh = 0.50;
    EXPECT_EQ(priced.fingerprint(), h);
}

TEST(FleetSpecDemo, ScalesToRequestedSize)
{
    const FleetSpec spec = FleetSpec::demo(12345);
    EXPECT_EQ(spec.totalDomains(), 12345u);
    EXPECT_GE(spec.racks.size(), 3u);
}

} // namespace
