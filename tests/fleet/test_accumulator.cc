/**
 * @file
 * FleetAccumulator tests: exact grouping-independent merges, the
 * bit-exact serialize/deserialize round trip the checkpoint blobs
 * rely on, and rejection of truncated or malformed images.
 */

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fleet/accumulator.hh"

namespace {

using namespace suit;
using fleet::FleetAccumulator;
using sim::DomainResult;

/** A synthetic result with recognisable, awkward values. */
DomainResult
makeResult(int tag)
{
    DomainResult r;
    sim::CoreResult core;
    core.workload = "synthetic";
    core.durationS = 1.0 + 0.1 * tag;
    core.baselineDurationS = 1.0 + 0.1 * tag + 0.003 * (tag % 7);
    r.cores.push_back(core);
    r.powerFactor = 0.9 + 1e-3 * (tag % 13);
    r.efficientShare = (tag % 100) / 100.0;
    r.traps = static_cast<std::uint64_t>(tag) * 3;
    r.emulations = static_cast<std::uint64_t>(tag);
    r.pstateSwitches = static_cast<std::uint64_t>(tag) * 2;
    r.thrashDetections = tag % 2;
    return r;
}

/** Bitwise equality of two accumulators via their serialized image. */
void
expectBitIdentical(const FleetAccumulator &a,
                   const FleetAccumulator &b)
{
    std::string ia, ib;
    a.serialize(ia);
    b.serialize(ib);
    EXPECT_EQ(ia, ib);
}

TEST(FleetAccumulator, MergeIsGroupingIndependent)
{
    // One big accumulation vs. three shards merged — the ExactSum
    // totals must agree to the last bit, not just approximately.
    FleetAccumulator whole(2);
    FleetAccumulator shard_a(2), shard_b(2), shard_c(2);
    for (int i = 0; i < 300; ++i) {
        const DomainResult r = makeResult(i);
        const std::size_t rack = i % 2;
        const double watts = 10.0 + 0.01 * i;
        whole.addDomain(rack, watts, r);
        (i < 77 ? shard_a : i < 200 ? shard_b : shard_c)
            .addDomain(rack, watts, r);
    }
    FleetAccumulator merged(2);
    merged.merge(shard_a);
    merged.merge(shard_b);
    merged.merge(shard_c);

    EXPECT_EQ(merged.totalDomains(), whole.totalDomains());
    for (std::size_t rack = 0; rack < 2; ++rack) {
        const fleet::RackTotals &m = merged.rack(rack);
        const fleet::RackTotals &w = whole.rack(rack);
        EXPECT_EQ(m.domains, w.domains);
        EXPECT_EQ(m.traps, w.traps);
        EXPECT_EQ(m.emulations, w.emulations);
        EXPECT_EQ(m.wattsBefore.value(), w.wattsBefore.value());
        EXPECT_EQ(m.wattsAfter.value(), w.wattsAfter.value());
        EXPECT_EQ(m.perfDeltaSum.value(), w.perfDeltaSum.value());
        EXPECT_EQ(m.efficientShareSum.value(),
                  w.efficientShareSum.value());
        EXPECT_EQ(m.durationSum.value(), w.durationSum.value());
    }

    // Merging in a different order is bit-identical too.
    FleetAccumulator reversed(2);
    reversed.merge(shard_c);
    reversed.merge(shard_b);
    reversed.merge(shard_a);
    for (std::size_t rack = 0; rack < 2; ++rack) {
        EXPECT_EQ(reversed.rack(rack).wattsAfter.value(),
                  whole.rack(rack).wattsAfter.value());
    }
}

TEST(FleetAccumulator, SerializeRoundTripIsBitExact)
{
    FleetAccumulator acc(3);
    for (int i = 0; i < 100; ++i)
        acc.addDomain(i % 3, 33.5 + i * 0.125, makeResult(i));

    std::string image;
    acc.serialize(image);

    FleetAccumulator restored;
    std::size_t offset = 0;
    ASSERT_TRUE(
        restored.deserialize(image.data(), image.size(), offset));
    EXPECT_EQ(offset, image.size());
    ASSERT_EQ(restored.rackCount(), 3u);
    expectBitIdentical(acc, restored);

    // The restored accumulator keeps accumulating identically.
    FleetAccumulator fresh = acc;
    fresh.addDomain(1, 12.0, makeResult(1234));
    FleetAccumulator continued = restored;
    continued.addDomain(1, 12.0, makeResult(1234));
    expectBitIdentical(fresh, continued);
}

TEST(FleetAccumulator, RoundTripsBackToBack)
{
    // Two accumulators in one buffer (the journal holds many blobs).
    FleetAccumulator a(1), b(1);
    a.addDomain(0, 5.0, makeResult(3));
    b.addDomain(0, 7.0, makeResult(4));
    std::string image;
    a.serialize(image);
    b.serialize(image);

    FleetAccumulator ra, rb;
    std::size_t offset = 0;
    ASSERT_TRUE(ra.deserialize(image.data(), image.size(), offset));
    ASSERT_TRUE(rb.deserialize(image.data(), image.size(), offset));
    EXPECT_EQ(offset, image.size());
    expectBitIdentical(a, ra);
    expectBitIdentical(b, rb);
}

TEST(FleetAccumulator, RejectsTruncatedImages)
{
    FleetAccumulator acc(2);
    for (int i = 0; i < 10; ++i)
        acc.addDomain(i % 2, 20.0, makeResult(i));
    std::string image;
    acc.serialize(image);

    for (const std::size_t cut :
         {std::size_t{0}, std::size_t{3}, image.size() / 2,
          image.size() - 1}) {
        FleetAccumulator target;
        std::size_t offset = 0;
        EXPECT_FALSE(target.deserialize(image.data(), cut, offset))
            << "accepted a " << cut << "-byte prefix of "
            << image.size();
    }
}

TEST(FleetAccumulator, RejectsGarbage)
{
    std::string junk(256, '\xee');
    FleetAccumulator target;
    std::size_t offset = 0;
    EXPECT_FALSE(
        target.deserialize(junk.data(), junk.size(), offset));
}

TEST(FleetAccumulator, EmptyAccumulatorRoundTrips)
{
    const FleetAccumulator acc(4);
    std::string image;
    acc.serialize(image);
    FleetAccumulator restored;
    std::size_t offset = 0;
    ASSERT_TRUE(
        restored.deserialize(image.data(), image.size(), offset));
    EXPECT_EQ(restored.rackCount(), 4u);
    EXPECT_EQ(restored.totalDomains(), 0u);
}

} // namespace
