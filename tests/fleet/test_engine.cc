/**
 * @file
 * FleetEngine determinism tests: serial vs multi-worker byte
 * identity, shard-size invariance, kill-and-resume equivalence
 * through the checkpoint journal, fingerprint mismatch refusal, and
 * report schema validation.
 */

#include <atomic>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include <gtest/gtest.h>

#include "exec/checkpoint.hh"
#include "fleet/engine.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "obs/validate.hh"
#include "runtime/run_context.hh"
#include "runtime/session.hh"
#include "fleet/report.hh"
#include "fleet/spec.hh"

namespace {

using namespace suit;
using fleet::FleetEngine;
using fleet::FleetOptions;
using fleet::FleetOutcome;
using fleet::FleetSpec;

/** Unique scratch path that is removed again on destruction. */
class ScratchFile
{
  public:
    explicit ScratchFile(const std::string &name)
        : path_(::testing::TempDir() + "suit_fleet_" + name)
    {
        std::remove(path_.c_str());
    }
    ~ScratchFile()
    {
        std::remove(path_.c_str());
        std::remove((path_ + ".tmp").c_str());
    }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

/** A small heterogeneous fleet that still runs in milliseconds. */
FleetSpec
testSpec()
{
    return FleetSpec::parse(
        "name = engine-test\n"
        "seed = 5\n"
        "trace_scale = 0.001\n"
        "rack web cpu=C domains=260 workloads=Nginx:2,VLC:1 "
        "strategy=fV,e offset=-97,-70 variants=2\n"
        "rack build cpu=A domains=120 cores=2 workloads=502.gcc "
        "strategy=hybrid\n"
        "rack sim cpu=B domains=100 workloads=520.omnetpp "
        "strategy=V offset=-70\n");
}

/** Run the spec and render its JSON report (the identity witness). */
std::string
reportOf(const FleetSpec &spec, int jobs, std::uint64_t shard_size)
{
    runtime::Session session({jobs, 0});
    FleetEngine engine(session, spec);
    FleetOptions options;
    options.shardSize = shard_size;
    const FleetOutcome outcome = engine.run(options);
    EXPECT_TRUE(outcome.complete());
    return fleet::renderReportJson(engine.spec(), outcome.totals);
}

TEST(FleetEngine, WorkerCountDoesNotChangeTheReport)
{
    const std::string reference = reportOf(testSpec(), 1, 64);
    ASSERT_FALSE(reference.empty());

    for (const int jobs : {2, 4}) {
        EXPECT_EQ(reportOf(testSpec(), jobs, 64), reference)
            << "report diverged at jobs=" << jobs;
    }
}

TEST(FleetEngine, ShardSizeDoesNotChangeTheReport)
{
    // Shard size 0 = default: one shard covers the whole fleet.
    const std::string ra = reportOf(testSpec(), 2, 16);
    EXPECT_EQ(ra, reportOf(testSpec(), 2, 64));
    EXPECT_EQ(ra, reportOf(testSpec(), 2, 0));
}

TEST(FleetEngine, KillAndResumeMatchesUninterruptedRun)
{
    const std::string reference = reportOf(testSpec(), 1, 32);

    ScratchFile journal("resume.ckpt");

    // First run: cancel after 4 completed shards.
    runtime::Session session_a({2, 0});
    runtime::RunContext ctx_a;
    ctx_a.checkpoint.path = journal.path();
    std::atomic<int> done{0};
    FleetOptions first;
    first.shardSize = 32;
    first.onShardDone = [&](std::uint64_t) {
        if (done.fetch_add(1) + 1 >= 4)
            ctx_a.token().cancel();
    };
    FleetEngine engine_a(session_a, testSpec());
    const FleetOutcome interrupted = engine_a.run(ctx_a, first);
    ASSERT_TRUE(interrupted.interrupted);
    ASSERT_GT(interrupted.shardsSkipped, 0u);
    ASSERT_GE(interrupted.shardsRun, 4u);

    // Second run: resume and finish.
    runtime::Session session_b({2, 0});
    runtime::RunContext ctx_b;
    ctx_b.checkpoint.path = journal.path();
    ctx_b.checkpoint.resume = true;
    FleetOptions second;
    second.shardSize = 32;
    FleetEngine engine_b(session_b, testSpec());
    const FleetOutcome resumed = engine_b.run(ctx_b, second);
    EXPECT_TRUE(resumed.complete());
    EXPECT_EQ(resumed.shardsRestored, interrupted.shardsRun);
    EXPECT_EQ(fleet::renderReportJson(engine_b.spec(),
                                      resumed.totals),
              reference);
}

TEST(FleetEngine, PinnedWorkersDoNotChangeTheReport)
{
    // --pin only moves threads onto CPUs; the work distribution and
    // the exact accumulation order are unchanged, so the report must
    // be byte-identical with pinning on, off, or unsupported (where
    // the pool warns and continues unpinned).
    const std::string reference = reportOf(testSpec(), 2, 32);

    runtime::Session pinned_session({.jobs = 2, .pinWorkers = true});
    FleetEngine engine(pinned_session, testSpec());
    FleetOptions options;
    options.shardSize = 32;
    const FleetOutcome outcome = engine.run(options);
    ASSERT_TRUE(outcome.complete());
    EXPECT_EQ(fleet::renderReportJson(engine.spec(), outcome.totals),
              reference);
}

TEST(FleetEngine, BatchedCheckpointResumeMatchesUninterruptedRun)
{
    const std::string reference = reportOf(testSpec(), 1, 32);

    ScratchFile journal("batched_resume.ckpt");

    // Interrupt after 4 shards under a flush interval that leaves a
    // partial batch pending: the engine's end-of-run flush lands it,
    // so the resume completes to the byte-identical report.
    runtime::Session session_a({2, 0});
    runtime::RunContext ctx_a;
    ctx_a.checkpoint.path = journal.path();
    ctx_a.checkpoint.flushInterval = 3;
    std::atomic<int> done{0};
    FleetOptions first;
    first.shardSize = 32;
    first.onShardDone = [&](std::uint64_t) {
        if (done.fetch_add(1) + 1 >= 4)
            ctx_a.token().cancel();
    };
    FleetEngine engine_a(session_a, testSpec());
    const FleetOutcome interrupted = engine_a.run(ctx_a, first);
    ASSERT_TRUE(interrupted.interrupted);
    ASSERT_GE(interrupted.shardsRun, 4u);
    EXPECT_EQ(
        exec::CheckpointJournal::load(journal.path()).records.size(),
        interrupted.shardsRun);

    runtime::Session session_b({2, 0});
    runtime::RunContext ctx_b;
    ctx_b.checkpoint.path = journal.path();
    ctx_b.checkpoint.resume = true;
    ctx_b.checkpoint.flushInterval = 5;
    FleetOptions second;
    second.shardSize = 32;
    FleetEngine engine_b(session_b, testSpec());
    const FleetOutcome resumed = engine_b.run(ctx_b, second);
    EXPECT_TRUE(resumed.complete());
    EXPECT_EQ(resumed.shardsRestored, interrupted.shardsRun);
    EXPECT_EQ(fleet::renderReportJson(engine_b.spec(),
                                      resumed.totals),
              reference);
}

/**
 * The fleet journal's records are opaque blobs (serialized shard
 * accumulators), so the longest-valid-prefix recovery must work on
 * them exactly as it does on sweep DomainResult records: a torn
 * tail drops only the damaged record, and a resume re-runs the lost
 * shards to the byte-identical report.
 */
TEST(FleetEngine, TruncatedJournalBlobResumesFromValidPrefix)
{
    const std::string reference = reportOf(testSpec(), 1, 32);

    ScratchFile journal("trunc_blob.ckpt");
    runtime::Session session_a({1, 0});
    runtime::RunContext ctx_a;
    ctx_a.checkpoint.path = journal.path();
    FleetOptions checkpointed;
    checkpointed.shardSize = 32;
    FleetEngine engine_a(session_a, testSpec());
    const FleetOutcome full = engine_a.run(ctx_a, checkpointed);
    ASSERT_TRUE(full.complete());
    ASSERT_GT(full.shardsRun, 2u);

    // Tear the final blob record (journal copied mid-write by an
    // external tool).  Recovery must keep the earlier records.
    const std::string bytes = readFile(journal.path());
    writeFile(journal.path(), bytes.substr(0, bytes.size() - 5));
    const exec::JournalContents loaded =
        exec::CheckpointJournal::load(journal.path());
    EXPECT_GT(loaded.droppedBytes, 0u);
    ASSERT_EQ(loaded.records.size(), full.shardsRun - 1);
    EXPECT_TRUE(loaded.records.back().isBlob);

    runtime::Session session_b({1, 0});
    runtime::RunContext ctx_b;
    ctx_b.checkpoint.path = journal.path();
    ctx_b.checkpoint.resume = true;
    FleetEngine engine_b(session_b, testSpec());
    const FleetOutcome resumed = engine_b.run(ctx_b, checkpointed);
    EXPECT_TRUE(resumed.complete());
    EXPECT_EQ(resumed.shardsRestored, full.shardsRun - 1);
    EXPECT_EQ(resumed.shardsRun, 1u);
    EXPECT_EQ(fleet::renderReportJson(engine_b.spec(),
                                      resumed.totals),
              reference);
}

TEST(FleetEngine, ChecksumFlippedBlobResumesFromValidPrefix)
{
    const std::string reference = reportOf(testSpec(), 1, 32);

    ScratchFile journal("flip_blob.ckpt");
    runtime::Session session_a({1, 0});
    runtime::RunContext ctx_a;
    ctx_a.checkpoint.path = journal.path();
    FleetOptions checkpointed;
    checkpointed.shardSize = 32;
    FleetEngine engine_a(session_a, testSpec());
    const FleetOutcome full = engine_a.run(ctx_a, checkpointed);
    ASSERT_TRUE(full.complete());
    ASSERT_GT(full.shardsRun, 2u);

    // Flip one byte inside the final record's payload: its checksum
    // no longer matches, so recovery drops exactly that record.
    std::string bytes = readFile(journal.path());
    bytes[bytes.size() - 3] =
        static_cast<char>(bytes[bytes.size() - 3] ^ 0x5A);
    writeFile(journal.path(), bytes);
    const exec::JournalContents loaded =
        exec::CheckpointJournal::load(journal.path());
    EXPECT_GT(loaded.droppedBytes, 0u);
    ASSERT_EQ(loaded.records.size(), full.shardsRun - 1);

    runtime::Session session_b({1, 0});
    runtime::RunContext ctx_b;
    ctx_b.checkpoint.path = journal.path();
    ctx_b.checkpoint.resume = true;
    FleetEngine engine_b(session_b, testSpec());
    const FleetOutcome resumed = engine_b.run(ctx_b, checkpointed);
    EXPECT_TRUE(resumed.complete());
    EXPECT_EQ(resumed.shardsRestored, full.shardsRun - 1);
    EXPECT_EQ(fleet::renderReportJson(engine_b.spec(),
                                      resumed.totals),
              reference);
}

TEST(FleetEngine, RefusesAForeignJournal)
{
    ScratchFile journal("foreign.ckpt");
    runtime::Session session({1, 0});
    runtime::RunContext ctx;
    ctx.checkpoint.path = journal.path();
    FleetOptions checkpointed;
    checkpointed.shardSize = 32;
    FleetEngine original(session, testSpec());
    original.run(ctx, checkpointed);

    // Same journal, different seed => different fingerprint.
    FleetSpec other = testSpec();
    other.seed = 6;
    runtime::RunContext resume_ctx;
    resume_ctx.checkpoint.path = journal.path();
    resume_ctx.checkpoint.resume = true;
    FleetEngine engine(session, other);
    EXPECT_THROW(engine.run(resume_ctx, checkpointed),
                 exec::JournalError);

    // A different shard size invalidates the journal too.
    runtime::RunContext resized_ctx;
    resized_ctx.checkpoint.path = journal.path();
    resized_ctx.checkpoint.resume = true;
    FleetOptions resized;
    resized.shardSize = 16;
    FleetEngine engine_b(session, testSpec());
    EXPECT_THROW(engine_b.run(resized_ctx, resized),
                 exec::JournalError);
}

TEST(FleetEngine, PreTrippedTokenSkipsEverything)
{
    runtime::Session session({2, 0});
    runtime::RunContext ctx;
    ctx.token().cancel();
    FleetOptions options;
    options.shardSize = 32;
    FleetEngine engine(session, testSpec());
    const FleetOutcome outcome = engine.run(ctx, options);
    EXPECT_TRUE(outcome.interrupted);
    EXPECT_FALSE(outcome.complete());
    EXPECT_EQ(outcome.shardsRun, 0u);
    EXPECT_EQ(outcome.totals.totalDomains(), 0u);
}

TEST(FleetEngine, ReportJsonValidates)
{
    runtime::Session session({2, 0});
    FleetEngine engine(session, testSpec());
    const FleetOutcome outcome = engine.run();
    const std::string doc =
        fleet::renderReportJson(engine.spec(), outcome.totals);
    const obs::CheckResult check = fleet::checkReportJson(doc);
    EXPECT_TRUE(check.ok) << check.error;
    ASSERT_EQ(check.entries, 3u);
    EXPECT_EQ(check.names[0], "web");
    EXPECT_EQ(check.names[1], "build");
    EXPECT_EQ(check.names[2], "sim");
}

TEST(FleetEngine, DomainBasePowerSplitsPerCoreDomains)
{
    runtime::Session session({1, 0});
    FleetEngine engine(session, testSpec());
    // Rack 0 (CPU C, per-core domains): one core's share.  Rack 1
    // (CPU A, shared domain): the whole package.
    EXPECT_GT(engine.domainBasePowerW(1),
              engine.domainBasePowerW(0) * 4);
    const fleet::FleetOutcome outcome = engine.run({});
    EXPECT_GT(outcome.totals.rack(0).wattsBefore.value(), 0.0);
}

TEST(FleetEngine, TracedRunEmitsPerRackCounterTracks)
{
    obs::TraceSession trace;
    obs::setActiveTrace(&trace);
    {
        runtime::Session session({2, 0});
        runtime::RunContext ctx; // latches the active trace
        FleetOptions options;
        options.shardSize = 32;
        FleetEngine engine(session, testSpec());
        const FleetOutcome outcome = engine.run(ctx, options);
        EXPECT_TRUE(outcome.complete());
    }
    obs::setActiveTrace(nullptr);

    const std::string doc = trace.render();
    const obs::CheckResult check = obs::checkChromeTrace(doc);
    EXPECT_TRUE(check.ok) << check.error;

    // One named track per rack...
    for (const char *rack : {"rack web", "rack build", "rack sim"})
        EXPECT_NE(doc.find(rack), std::string::npos) << rack;
    // ...carrying the three cumulative counter series.
    for (const char *series : {"domains", "energy", "pstate"})
        EXPECT_TRUE(check.hasName(series)) << series;
    for (const char *arg :
         {"\"count\"", "\"power_w\"", "\"switches\"",
          "\"efficient_share\""})
        EXPECT_NE(doc.find(arg), std::string::npos) << arg;
}

// The bit-identity acceptance gate: running the telemetry sampler
// must not change simulation results — the report of a sampled run
// is byte-identical to an unsampled one.
TEST(FleetEngine, TelemetrySamplerDoesNotChangeTheReport)
{
    obs::metrics().setEnabled(true);
    const std::string reference = reportOf(testSpec(), 2, 32);

    runtime::SessionConfig cfg;
    cfg.jobs = 2;
    cfg.telemetry.enabled = true;
    cfg.telemetry.intervalS = 0.001; // sample aggressively
    runtime::Session session(cfg);
    ASSERT_NE(session.telemetry(), nullptr);
    EXPECT_TRUE(session.telemetry()->running());

    FleetEngine engine(session, testSpec());
    FleetOptions options;
    options.shardSize = 32;
    const FleetOutcome outcome = engine.run(options);
    EXPECT_TRUE(outcome.complete());
    EXPECT_EQ(fleet::renderReportJson(engine.spec(), outcome.totals),
              reference);
    EXPECT_GE(session.telemetry()->samplesTaken(), 1u);
    obs::metrics().setEnabled(false);
}

} // namespace
