/**
 * @file
 * Tests of the fault model: Vmin assignment, injection, the
 * Table 1-style characterization and the attack simulation.
 */

#include <gtest/gtest.h>

#include "faults/attack.hh"
#include "faults/characterizer.hh"
#include "faults/injector.hh"
#include "faults/vmin_model.hh"
#include "power/pstate.hh"
#include "util/rng.hh"

namespace {

using namespace suit::faults;
using suit::isa::allFaultableKinds;
using suit::isa::FaultableKind;

VminModel
makeModel(std::uint64_t seed = 2024)
{
    static const suit::power::DvfsCurve curve =
        suit::power::i9_9900kCurve();
    VminConfig cfg;
    cfg.curve = &curve;
    cfg.cores = 4;
    cfg.seed = seed;
    return VminModel(cfg);
}

TEST(VminModelTest, ImulFaultsFirst)
{
    const VminModel m = makeModel();
    for (int core = 0; core < 4; ++core) {
        for (FaultableKind kind : allFaultableKinds()) {
            if (kind == FaultableKind::IMUL)
                continue;
            EXPECT_GT(m.vminMv(core, FaultableKind::IMUL, 4.5e9),
                      m.vminMv(core, kind, 4.5e9))
                << "core " << core << " kind "
                << suit::isa::toString(kind);
        }
    }
}

TEST(VminModelTest, VminIsBelowCurveVoltage)
{
    const VminModel m = makeModel();
    const auto &curve = *m.config().curve;
    for (double ghz : {3.0, 4.0, 5.0}) {
        const double supply = curve.voltageAtMv(ghz * 1e9);
        for (FaultableKind kind : allFaultableKinds()) {
            EXPECT_LT(m.vminMv(0, kind, ghz * 1e9), supply)
                << "at " << ghz << " GHz";
        }
    }
}

TEST(VminModelTest, ProcessVariationAcrossCoresAndChips)
{
    const VminModel m = makeModel();
    // Cores of one chip differ.
    bool core_differs = false;
    for (int c = 1; c < 4; ++c) {
        core_differs |=
            m.vminMv(c, FaultableKind::IMUL, 4.5e9) !=
            m.vminMv(0, FaultableKind::IMUL, 4.5e9);
    }
    EXPECT_TRUE(core_differs);
    // Chips (seeds) differ.
    const VminModel other = makeModel(999);
    EXPECT_NE(m.vminMv(0, FaultableKind::IMUL, 4.5e9),
              other.vminMv(0, FaultableKind::IMUL, 4.5e9));
}

TEST(VminModelTest, FaultProbabilityRamp)
{
    const VminModel m = makeModel();
    const double vmin = m.vminMv(0, FaultableKind::IMUL, 4.5e9);
    EXPECT_DOUBLE_EQ(
        m.faultProbability(0, FaultableKind::IMUL, 4.5e9, vmin + 1),
        0.0);
    const double mid = m.faultProbability(0, FaultableKind::IMUL,
                                          4.5e9, vmin - 10);
    EXPECT_GT(mid, 0.3);
    EXPECT_LT(mid, 0.7);
    EXPECT_DOUBLE_EQ(
        m.faultProbability(0, FaultableKind::IMUL, 4.5e9, vmin - 50),
        1.0);
}

TEST(FaultInjectorTest, CorrectAboveVmin)
{
    const VminModel m = makeModel();
    FaultInjector inj(&m);
    const double safe = m.config().curve->voltageAtMv(4.5e9);

    suit::util::Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        suit::emu::EmuRequest req;
        req.kind = FaultableKind::VXOR;
        req.a = suit::emu::Vec256(rng.next(), rng.next(), rng.next(),
                                  rng.next());
        req.b = suit::emu::Vec256(rng.next(), rng.next(), rng.next(),
                                  rng.next());
        const ExecOutcome out = inj.execute(req, 0, 4.5e9, safe);
        EXPECT_FALSE(out.faulted);
        EXPECT_FALSE(out.crashed);
        EXPECT_EQ(out.value, suit::emu::emulate(req));
    }
    EXPECT_EQ(inj.faultCount(), 0u);
}

TEST(FaultInjectorTest, FaultsWellBelowVmin)
{
    const VminModel m = makeModel();
    FaultInjector inj(&m);
    const double vmin = m.vminMv(0, FaultableKind::IMUL, 4.5e9);

    int faults = 0;
    for (int i = 0; i < 50; ++i) {
        suit::emu::EmuRequest req;
        req.kind = FaultableKind::IMUL;
        req.a.setU64(0, 0x123456789ABCDEFull + i);
        req.b.setU64(0, 0xFEDCBA987654321ull);
        const ExecOutcome out =
            inj.execute(req, 0, 4.5e9, vmin - 30);
        ASSERT_FALSE(out.crashed);
        faults += out.faulted;
        if (out.faulted)
            EXPECT_NE(out.value, suit::emu::emulate(req));
    }
    EXPECT_EQ(faults, 50); // 30 mV below the onset ramp: always
}

TEST(FaultInjectorTest, CrashesBelowCrashVoltage)
{
    const VminModel m = makeModel();
    FaultInjector inj(&m);
    suit::emu::EmuRequest req;
    req.kind = FaultableKind::VOR;
    const ExecOutcome out = inj.execute(
        req, 0, 4.5e9, m.crashVoltageMv(0, 4.5e9) - 5.0);
    EXPECT_TRUE(out.crashed);
    EXPECT_FALSE(out.faulted);
}

TEST(CharacterizerTest, ReproducesTable1Ordering)
{
    const VminModel m = makeModel();
    CharacterizerConfig cfg;
    cfg.samplesPerPoint = 20;
    Characterizer ch(&m, cfg);
    const CharacterizationResult r = ch.run();

    const auto count = [&](FaultableKind k) {
        return r.faultCounts[static_cast<std::size_t>(k)];
    };
    // IMUL faults most, the low-Vmin stragglers least (Table 1).
    EXPECT_GT(count(FaultableKind::IMUL), count(FaultableKind::VOR));
    EXPECT_GT(count(FaultableKind::VOR),
              count(FaultableKind::VPCMP));
    EXPECT_GE(count(FaultableKind::VPCMP),
              count(FaultableKind::VPADDQ));
    EXPECT_GT(count(FaultableKind::IMUL), 0);

    // IMUL also faults at the shallowest offsets.
    const auto first = [&](FaultableKind k) {
        return r.firstFaultMv[static_cast<std::size_t>(k)];
    };
    EXPECT_GT(first(FaultableKind::IMUL), 0.0);
    EXPECT_LE(first(FaultableKind::IMUL),
              first(FaultableKind::VAND));
    EXPECT_GT(r.totalExecutions, 0u);
}

TEST(VminModelTest, CoolerCoresTolerateDeeperUndervolts)
{
    // Table 3: the same chip at 50 degC survives ~35 mV deeper
    // offsets than at 88 degC.
    static const suit::power::DvfsCurve curve =
        suit::power::i9_9900kCurve();
    VminConfig hot_cfg;
    hot_cfg.curve = &curve;
    hot_cfg.cores = 2;
    hot_cfg.temperatureC = 88.0;
    VminConfig cool_cfg = hot_cfg;
    cool_cfg.temperatureC = 50.0;
    const VminModel hot(hot_cfg);
    const VminModel cool(cool_cfg);

    EXPECT_NEAR(hot.vminMv(0, FaultableKind::IMUL, 4.0e9) -
                    cool.vminMv(0, FaultableKind::IMUL, 4.0e9),
                35.0, 1e-9);
    EXPECT_NEAR(hot.crashVoltageMv(0, 4.0e9) -
                    cool.crashVoltageMv(0, 4.0e9),
                35.0, 1e-9);
    // A marginal supply that faults hot is stable cool.
    const double marginal =
        hot.vminMv(0, FaultableKind::IMUL, 4.0e9) - 10.0;
    EXPECT_GT(hot.faultProbability(0, FaultableKind::IMUL, 4.0e9,
                                   marginal),
              0.0);
    EXPECT_DOUBLE_EQ(cool.faultProbability(0, FaultableKind::IMUL,
                                           4.0e9, marginal),
                     0.0);
}

TEST(AttackTest, BaselineIsCompromisedSuitIsNot)
{
    const VminModel m = makeModel();
    AttackConfig cfg;
    cfg.attempts = 2000;

    const AttackResult base = attackBaseline(m, cfg);
    EXPECT_GT(base.faultyResults, 0u);
    EXPECT_TRUE(base.keyRecoveryFeasible);
    EXPECT_EQ(base.traps, 0u);

    const AttackResult suit = attackWithSuit(m, cfg);
    EXPECT_EQ(suit.faultyResults, 0u);
    EXPECT_FALSE(suit.keyRecoveryFeasible);
    // Every victim invocation trapped instead.
    EXPECT_EQ(suit.traps, suit.attempts);
}

TEST(VminModelTest, HardenedImulNeverFaultsAtSuitOffsets)
{
    // The 4-cycle IMUL's Vmin drops by ~220 mV (Fig. 13): at SUIT's
    // -97 mV operating point it is rock solid, and in fact it sits
    // below the crash voltage, so it can never silently fault.
    static const suit::power::DvfsCurve curve =
        suit::power::i9_9900kCurve();
    VminConfig cfg;
    cfg.curve = &curve;
    cfg.cores = 4;
    cfg.hardenedImul = true;
    const VminModel m(cfg);

    for (int core = 0; core < 4; ++core) {
        const double nominal = curve.voltageAtMv(4.5e9);
        EXPECT_DOUBLE_EQ(
            m.faultProbability(core, FaultableKind::IMUL, 4.5e9,
                               nominal - 97.0),
            0.0);
        EXPECT_LT(m.vminMv(core, FaultableKind::IMUL, 4.5e9),
                  m.crashVoltageMv(core, 4.5e9));
    }
}

TEST(AttackTest, ImulTargetAlsoNeutralised)
{
    // Plundervolt's original target: IMUL in an enclave.  With SUIT,
    // IMUL is hardened statically (4-cycle latency) and its safe
    // voltage is far lower (Fig. 13) — model it as the trap set
    // protecting the remaining margin.
    const VminModel m = makeModel();
    AttackConfig cfg;
    cfg.target = FaultableKind::IMUL;
    cfg.undervoltMv = 115.0; // Murdoch et al.: IMUL faults at ~-100 mV
    cfg.attempts = 2000;

    const AttackResult base = attackBaseline(m, cfg);
    const AttackResult suit = attackWithSuit(m, cfg);
    EXPECT_GT(base.faultyResults, 0u);
    EXPECT_EQ(suit.faultyResults, 0u);
}

} // namespace
