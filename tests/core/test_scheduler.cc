/**
 * @file
 * Tests of the SUIT-aware task placement (Sec. 7 outlook).
 */

#include <algorithm>
#include <gtest/gtest.h>

#include "core/scheduler.hh"
#include "trace/profile.hh"

namespace {

using namespace suit;
using core::offCurveShare;
using core::Placement;

TEST(Scheduler, OffCurveShareTracksWorkloadCharacter)
{
    // The disturbance metric must order the known extremes.
    const double quiet =
        offCurveShare(trace::profileByName("557.xz"));
    const double mid = offCurveShare(trace::profileByName("502.gcc"));
    const double loud =
        offCurveShare(trace::profileByName("520.omnetpp"));
    EXPECT_LT(quiet, mid);
    EXPECT_LT(mid, loud);
    EXPECT_LT(quiet, 0.2);
    EXPECT_GT(loud, 0.8);
}

TEST(Scheduler, BurstRateIsPositiveForAllProfiles)
{
    for (const auto &p : trace::allProfiles()) {
        EXPECT_GT(core::burstRatePerSecond(p), 0.0) << p.name;
        const double share = offCurveShare(p);
        EXPECT_GE(share, 0.0) << p.name;
        EXPECT_LE(share, 1.0) << p.name;
    }
}

TEST(Scheduler, RoundRobinSpreadsTasks)
{
    const Placement p = core::placeRoundRobin(8, 2, 4);
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p[0].size(), 4u);
    EXPECT_EQ(p[1].size(), 4u);
    // Alternating assignment.
    EXPECT_EQ(p[0], (std::vector<std::size_t>{0, 2, 4, 6}));
    EXPECT_EQ(p[1], (std::vector<std::size_t>{1, 3, 5, 7}));
}

TEST(Scheduler, SuitAwareSegregatesByDisturbance)
{
    std::vector<const trace::WorkloadProfile *> tasks = {
        &trace::profileByName("557.xz"),       // quiet
        &trace::profileByName("520.omnetpp"),  // loud
        &trace::profileByName("523.xalancbmk"),// quiet
        &trace::profileByName("527.cam4"),     // loud
    };
    const Placement p = core::placeSuitAware(tasks, 2, 2);
    ASSERT_EQ(p.size(), 2u);
    ASSERT_EQ(p[0].size(), 2u);
    ASSERT_EQ(p[1].size(), 2u);

    // Socket 0 holds the two loudest tasks, socket 1 the quiet ones.
    auto contains = [](const std::vector<std::size_t> &v,
                       std::size_t x) {
        return std::find(v.begin(), v.end(), x) != v.end();
    };
    EXPECT_TRUE(contains(p[0], 1)); // omnetpp
    EXPECT_TRUE(contains(p[0], 3)); // cam4
    EXPECT_TRUE(contains(p[1], 0)); // xz
    EXPECT_TRUE(contains(p[1], 2)); // xalancbmk
}

TEST(Scheduler, EveryTaskPlacedExactlyOnce)
{
    std::vector<const trace::WorkloadProfile *> tasks;
    for (const auto &p : trace::allProfiles())
        tasks.push_back(&p);
    const Placement placement =
        core::placeSuitAware(tasks, 5, 5);

    std::vector<int> seen(tasks.size(), 0);
    for (const auto &socket : placement) {
        EXPECT_LE(socket.size(), 5u);
        for (std::size_t idx : socket)
            ++seen[idx];
    }
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], 1) << "task " << i;
}

TEST(SchedulerDeathTest, OverCommitIsRejected)
{
    EXPECT_DEATH((void)core::placeRoundRobin(9, 2, 4), "slots");
}

} // namespace
