/**
 * @file
 * Tests of the SUIT core mechanism: parameters, deadline timer,
 * thrash detector and the operating strategies (driven against a
 * scripted mock CPU).
 */

#include <gtest/gtest.h>
#include <string>
#include <vector>

#include "core/controller.hh"
#include "core/deadline.hh"
#include "core/params.hh"
#include "core/strategy.hh"
#include "core/thrash.hh"
#include "os/msr.hh"
#include "util/ticks.hh"

namespace {

using namespace suit::core;
using suit::power::SuitPState;
using suit::util::microsecondsToTicks;
using suit::util::Tick;

TEST(Params, Table7Values)
{
    const StrategyParams fast = fastSwitchParams();
    EXPECT_DOUBLE_EQ(fast.deadlineUs, 30.0);
    EXPECT_DOUBLE_EQ(fast.timeSpanUs, 450.0);
    EXPECT_EQ(fast.maxExceptionCount, 3);
    EXPECT_DOUBLE_EQ(fast.deadlineFactor, 14.0);

    const StrategyParams slow = slowSwitchParams();
    EXPECT_DOUBLE_EQ(slow.deadlineUs, 700.0);
    EXPECT_DOUBLE_EQ(slow.timeSpanUs, 14000.0);
    EXPECT_EQ(slow.maxExceptionCount, 4);
    EXPECT_DOUBLE_EQ(slow.deadlineFactor, 9.0);
}

TEST(Params, OptimalSelectionByCpu)
{
    EXPECT_DOUBLE_EQ(
        optimalParams(suit::power::cpuA_i9_9900k()).deadlineUs, 30.0);
    EXPECT_DOUBLE_EQ(
        optimalParams(suit::power::cpuC_xeon4208()).deadlineUs, 30.0);
    EXPECT_DOUBLE_EQ(
        optimalParams(suit::power::cpuB_ryzen7700x()).deadlineUs,
        700.0);
}

TEST(Params, TickConversions)
{
    const StrategyParams p = fastSwitchParams();
    EXPECT_EQ(p.deadlineTicks(), microsecondsToTicks(30.0));
    EXPECT_EQ(p.boostedDeadlineTicks(), microsecondsToTicks(420.0));
}

TEST(DeadlineTimerTest, ArmExpireRearm)
{
    DeadlineTimer t;
    EXPECT_FALSE(t.armed());
    t.arm(1000, 500);
    EXPECT_TRUE(t.armed());
    EXPECT_EQ(t.expiry(), 1500u);
    EXPECT_FALSE(t.checkExpired(1499));
    EXPECT_TRUE(t.checkExpired(1500));
    EXPECT_FALSE(t.armed()); // one-shot
    EXPECT_FALSE(t.checkExpired(2000));
}

TEST(DeadlineTimerTest, TouchRestartsCountdown)
{
    DeadlineTimer t;
    t.arm(0, 100);
    t.touch(80);
    EXPECT_EQ(t.expiry(), 180u);
    EXPECT_FALSE(t.checkExpired(150));
    t.touch(150);
    EXPECT_EQ(t.expiry(), 250u);
}

TEST(DeadlineTimerTest, TouchWhileDisarmedIsNoop)
{
    DeadlineTimer t;
    t.touch(50);
    EXPECT_FALSE(t.armed());
    t.arm(0, 10);
    t.cancel();
    t.touch(5);
    EXPECT_FALSE(t.armed());
}

TEST(ThrashDetectorTest, CountsWithinWindow)
{
    StrategyParams p = fastSwitchParams(); // window 450 us, count 3
    ThrashDetector d(p);
    const Tick us = suit::util::kTicksPerUs;

    d.recordException(0);
    d.recordException(100 * us);
    EXPECT_FALSE(d.isThrashing(100 * us));
    d.recordException(200 * us);
    EXPECT_TRUE(d.isThrashing(200 * us));
    // The window slides: at 600 us only the 200 us event remains
    // (cutoff 150 us), and at 700 us none do (cutoff 250 us).
    EXPECT_EQ(d.exceptionsInWindow(600 * us), 1);
    EXPECT_EQ(d.exceptionsInWindow(700 * us), 0);
    EXPECT_FALSE(d.isThrashing(700 * us));
}

TEST(ThrashDetectorTest, ResetClears)
{
    ThrashDetector d(fastSwitchParams());
    for (int i = 0; i < 5; ++i)
        d.recordException(i);
    d.reset();
    EXPECT_EQ(d.exceptionsInWindow(10), 0);
}

TEST(ThrashDetectorTest, RebindEqualsFreshDetector)
{
    // A rebound detector must answer exactly like one freshly
    // constructed with the new parameters — including when the
    // parameters change the window length.
    ThrashDetector reused(fastSwitchParams());
    const Tick us = suit::util::kTicksPerUs;
    for (int i = 0; i < 40; ++i)
        reused.recordException(static_cast<Tick>(i) * 20 * us);

    reused.rebind(slowSwitchParams());
    ThrashDetector fresh(slowSwitchParams());
    EXPECT_EQ(reused.exceptionsInWindow(0), 0);
    for (int i = 0; i < 200; ++i) {
        const Tick t = static_cast<Tick>(i) * 37 * us;
        reused.recordException(t);
        fresh.recordException(t);
        ASSERT_EQ(reused.exceptionsInWindow(t),
                  fresh.exceptionsInWindow(t))
            << "diverged at event " << i;
        ASSERT_EQ(reused.isThrashing(t), fresh.isThrashing(t));
    }
}

TEST(ThrashDetectorTest, LongSlidingWindowMatchesNaiveCount)
{
    // Drive the window far past the in-place compaction threshold
    // and check every count against a naive recount of the recorded
    // history.  Catches off-by-ones in the start-index bookkeeping.
    const StrategyParams p = fastSwitchParams(); // window 450 us
    ThrashDetector d(p);
    const Tick us = suit::util::kTicksPerUs;
    const Tick window = p.timeSpanTicks();

    std::vector<Tick> history;
    Tick t = 0;
    for (int i = 0; i < 5000; ++i) {
        // Irregular stride, sometimes jumping a whole window ahead.
        t += (i % 7 == 0) ? 500 * us
                          : static_cast<Tick>(30 + i % 90) * us;
        d.recordException(t);
        history.push_back(t);

        const Tick cutoff = t > window ? t - window : 0;
        int naive = 0;
        for (const Tick e : history)
            naive += e >= cutoff ? 1 : 0;
        ASSERT_EQ(d.exceptionsInWindow(t), naive)
            << "diverged at event " << i;
    }
}

/** Scripted CpuControl recording every strategy action. */
class MockCpu : public CpuControl
{
  public:
    std::vector<std::string> log;
    SuitPState pstate = SuitPState::Efficient;
    bool disabled = true;
    Tick time = 0;
    Tick lastReload = 0;

    void
    changePStateWait(SuitPState target) override
    {
        log.push_back(std::string("wait:") +
                      suit::power::toString(target));
        pstate = target;
    }
    void
    changePStateAsync(SuitPState target) override
    {
        log.push_back(std::string("async:") +
                      suit::power::toString(target));
        pstate = target; // mock: instant
    }
    void
    cancelPendingPState() override
    {
        log.push_back("cancel");
    }
    void
    setInstructionsDisabled(bool d) override
    {
        log.push_back(d ? "disable" : "enable");
        disabled = d;
    }
    void
    setTimerInterrupt(Tick reload) override
    {
        log.push_back("timer");
        lastReload = reload;
    }
    SuitPState currentPState() const override { return pstate; }
    bool instructionsDisabled() const override { return disabled; }
    Tick now() const override { return time; }
};

suit::os::TrapFrame
frameAt(Tick when)
{
    suit::os::TrapFrame f;
    f.when = when;
    return f;
}

TEST(FvStrategy, FollowsListing1)
{
    CombinedFvStrategy s(fastSwitchParams());
    MockCpu cpu;
    cpu.time = 1000;

    const TrapAction a = s.onDisabledOpcode(cpu, frameAt(1000));
    EXPECT_FALSE(a.emulated);
    // Listing 1: wait for Cf, request CV, enable, arm timer.
    const std::vector<std::string> expect = {"wait:Cf", "async:CV",
                                             "enable", "timer"};
    EXPECT_EQ(cpu.log, expect);
    EXPECT_EQ(cpu.lastReload, fastSwitchParams().deadlineTicks());

    cpu.log.clear();
    s.onTimerInterrupt(cpu);
    const std::vector<std::string> expect2 = {"disable", "async:E"};
    EXPECT_EQ(cpu.log, expect2);
}

TEST(FvStrategy, BoostsDeadlineWhenThrashing)
{
    CombinedFvStrategy s(fastSwitchParams());
    MockCpu cpu;
    const Tick us = suit::util::kTicksPerUs;

    for (int i = 0; i < 3; ++i) {
        cpu.time = i * 50 * us;
        cpu.pstate = SuitPState::Efficient;
        s.onDisabledOpcode(cpu, frameAt(cpu.time));
    }
    EXPECT_EQ(cpu.lastReload,
              fastSwitchParams().boostedDeadlineTicks());
    EXPECT_EQ(s.thrashDetections(), 1u);
    EXPECT_EQ(s.trapCount(), 3u);
}

TEST(FvStrategy, TrapWhileConservativeCancelsPendingReturn)
{
    CombinedFvStrategy s(fastSwitchParams());
    MockCpu cpu;
    cpu.pstate = SuitPState::ConservativeFreq; // pending E in flight

    s.onDisabledOpcode(cpu, frameAt(0));
    // No new wait-switch; the pending return is cancelled and the
    // background CV promotion re-armed.
    const std::vector<std::string> expect = {"cancel", "async:CV",
                                             "enable", "timer"};
    EXPECT_EQ(cpu.log, expect);
}

TEST(FrequencyStrategy, SwitchesViaCfOnly)
{
    FrequencyStrategy s(slowSwitchParams());
    MockCpu cpu;
    s.onDisabledOpcode(cpu, frameAt(0));
    const std::vector<std::string> expect = {"wait:Cf", "enable",
                                             "timer"};
    EXPECT_EQ(cpu.log, expect);
}

TEST(VoltageStrategy, SwitchesViaCvOnly)
{
    VoltageStrategy s(fastSwitchParams());
    MockCpu cpu;
    s.onDisabledOpcode(cpu, frameAt(0));
    const std::vector<std::string> expect = {"wait:CV", "enable",
                                             "timer"};
    EXPECT_EQ(cpu.log, expect);
}

TEST(EmulationStrategyTest, StaysOnEfficientCurve)
{
    EmulationStrategy s;
    MockCpu cpu;
    const TrapAction a = s.onDisabledOpcode(cpu, frameAt(0));
    EXPECT_TRUE(a.emulated);
    EXPECT_TRUE(cpu.log.empty()); // no hardware interaction at all
    EXPECT_EQ(cpu.pstate, SuitPState::Efficient);
}

TEST(StrategyFactory, ProducesAllKinds)
{
    for (StrategyKind k :
         {StrategyKind::Emulation, StrategyKind::Frequency,
          StrategyKind::Voltage, StrategyKind::CombinedFv}) {
        auto s = makeStrategy(k, fastSwitchParams());
        ASSERT_NE(s, nullptr);
        EXPECT_EQ(s->kind(), k);
    }
}

TEST(StrategyNames, Table6Labels)
{
    EXPECT_STREQ(toString(StrategyKind::Emulation), "e");
    EXPECT_STREQ(toString(StrategyKind::Frequency), "f");
    EXPECT_STREQ(toString(StrategyKind::Voltage), "V");
    EXPECT_STREQ(toString(StrategyKind::CombinedFv), "fV");
}

/** Drive @p s through a fixed trap/timer script; return the log. */
std::vector<std::string>
driveScript(OperatingStrategy &s, MockCpu &cpu)
{
    const Tick us = suit::util::kTicksPerUs;
    for (int i = 0; i < 4; ++i) {
        cpu.time = static_cast<Tick>(i) * 50 * us;
        s.onDisabledOpcode(cpu, frameAt(cpu.time));
    }
    if (s.kind() != StrategyKind::Emulation)
        s.onTimerInterrupt(cpu);
    return cpu.log;
}

TEST(StrategyArenaTest, SameKindEmplaceRecyclesInFreshState)
{
    // A same-kind emplace() reuses the occupant in place; the reused
    // object must behave exactly like a freshly constructed one —
    // zero counters, empty thrash window, the new parameters active.
    StrategyArena arena;
    OperatingStrategy *first =
        arena.emplace(StrategyKind::Hybrid, fastSwitchParams());
    MockCpu warmup;
    driveScript(*first, warmup);
    EXPECT_GT(first->trapCount(), 0u);

    OperatingStrategy *second =
        arena.emplace(StrategyKind::Hybrid, slowSwitchParams());
    EXPECT_EQ(second, first); // recycled, not reconstructed
    EXPECT_EQ(second->trapCount(), 0u);
    auto *sw = dynamic_cast<SwitchingStrategy *>(second);
    ASSERT_NE(sw, nullptr);
    EXPECT_EQ(sw->thrashDetections(), 0u);
    EXPECT_DOUBLE_EQ(sw->params().deadlineUs,
                     slowSwitchParams().deadlineUs);

    // Behavioural identity: reused and fresh produce the same action
    // log, reload values and counters for the same script.
    MockCpu reused_cpu;
    driveScript(*second, reused_cpu);
    HybridStrategy fresh(slowSwitchParams());
    MockCpu fresh_cpu;
    driveScript(fresh, fresh_cpu);
    EXPECT_EQ(reused_cpu.log, fresh_cpu.log);
    EXPECT_EQ(reused_cpu.lastReload, fresh_cpu.lastReload);
    EXPECT_EQ(second->trapCount(), fresh.trapCount());
    auto *hybrid = dynamic_cast<HybridStrategy *>(second);
    ASSERT_NE(hybrid, nullptr);
    EXPECT_EQ(hybrid->emulatedTraps(), fresh.emulatedTraps());
}

TEST(StrategyArenaTest, KindChangeReconstructs)
{
    StrategyArena arena;
    for (const StrategyKind k :
         {StrategyKind::CombinedFv, StrategyKind::Emulation,
          StrategyKind::Hybrid, StrategyKind::Frequency,
          StrategyKind::Voltage, StrategyKind::CombinedFv}) {
        OperatingStrategy *s = arena.emplace(k, fastSwitchParams());
        ASSERT_NE(s, nullptr);
        EXPECT_EQ(s->kind(), k);
        EXPECT_EQ(s->trapCount(), 0u);
    }
}

TEST(Controller, EnableProgramsMsrsAndHardware)
{
    MockCpu cpu;
    cpu.pstate = SuitPState::ConservativeVolt;
    cpu.disabled = false;
    suit::os::MsrFile msrs;
    SuitController ctl(cpu, msrs, StrategyKind::CombinedFv,
                       fastSwitchParams());

    ctl.enable();
    EXPECT_TRUE(ctl.enabled());
    EXPECT_EQ(msrs.read(suit::os::MSR_SUIT_DISABLE_OPCODE),
              suit::isa::FaultableSet::suitTrapSet().bits());
    EXPECT_EQ(msrs.read(suit::os::MSR_SUIT_DVFS_CURVE), 1u);
    EXPECT_TRUE(cpu.disabled);
    EXPECT_EQ(cpu.pstate, SuitPState::Efficient);

    ctl.disable();
    EXPECT_FALSE(ctl.enabled());
    EXPECT_EQ(msrs.read(suit::os::MSR_SUIT_DVFS_CURVE), 0u);
    EXPECT_FALSE(cpu.disabled);
}

TEST(Controller, HardwareRefusesEfficientCurveWithoutDisabledSet)
{
    MockCpu cpu;
    suit::os::MsrFile msrs;
    SuitController ctl(cpu, msrs, StrategyKind::CombinedFv,
                       fastSwitchParams());

    // Selecting the efficient curve before disabling the trap set
    // must fault (the Sec. 3.2 invariant).
    EXPECT_EQ(msrs.write(suit::os::MSR_SUIT_DVFS_CURVE, 1),
              suit::os::MsrWriteResult::Fault);

    // And with SUIT on, shrinking the trap set must fault.
    ctl.enable();
    EXPECT_EQ(msrs.write(suit::os::MSR_SUIT_DISABLE_OPCODE, 0),
              suit::os::MsrWriteResult::Fault);
}

TEST(Controller, DelegatesTrapsToStrategy)
{
    MockCpu cpu;
    suit::os::MsrFile msrs;
    SuitController ctl(cpu, msrs, StrategyKind::CombinedFv,
                       fastSwitchParams());
    ctl.enable();
    cpu.log.clear();

    const TrapAction a = ctl.handleDisabledOpcode(frameAt(0));
    EXPECT_FALSE(a.emulated);
    EXPECT_EQ(ctl.strategy().trapCount(), 1u);
    EXPECT_FALSE(cpu.log.empty());
}

TEST(SelectStrategy, EmulationForSparseSwitchingForBursty)
{
    const suit::power::CpuModel cpu = suit::power::cpuA_i9_9900k();
    const StrategyParams params = fastSwitchParams();

    // Sparse singleton events: emulation wins.
    std::vector<suit::trace::FaultableEvent> sparse;
    for (int i = 0; i < 10; ++i)
        sparse.push_back({1'000'000'000, suit::isa::FaultableKind::VOR});
    const suit::trace::Trace sparse_trace("sparse", 20'000'000'000ULL,
                                          1.5, sparse);
    EXPECT_EQ(selectStrategy(cpu, sparse_trace, params),
              StrategyKind::Emulation);

    // Dense AES streams: curve switching wins; fV on Intel.
    std::vector<suit::trace::FaultableEvent> dense;
    dense.push_back({5'000'000, suit::isa::FaultableKind::AESENC});
    for (int i = 0; i < 200'000; ++i)
        dense.push_back({40, suit::isa::FaultableKind::AESENC});
    const suit::trace::Trace dense_trace("dense", 20'000'000ULL + 40 *
                                                      200'000ULL + 10,
                                         1.5, dense);
    EXPECT_EQ(selectStrategy(cpu, dense_trace, params),
              StrategyKind::CombinedFv);

    // Same trace on the AMD CPU: no independent voltage control.
    EXPECT_EQ(selectStrategy(suit::power::cpuB_ryzen7700x(),
                             dense_trace, params),
              StrategyKind::Frequency);
}

} // namespace
