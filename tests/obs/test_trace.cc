/**
 * @file
 * Unit tests for obs::TraceSession: track allocation, event emission
 * (including from many threads at once), the render format via the
 * structural validator, and the SUIT_OBS_EVENT macro's off-switch.
 */

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.hh"
#include "obs/validate.hh"

namespace {

using namespace suit;
using obs::TraceSession;

TEST(ObsTrace, RenderIsValidChromeTrace)
{
    TraceSession session;
    const int track = session.newTrack(TraceSession::kSimPid, "dom");
    session.instant(TraceSession::kSimPid, track, 1.0, "pstate",
                    "sim", {{"to", "Cf"}, {"how", "wait"}});
    session.begin(TraceSession::kHostPid, session.threadTrack("main"),
                  0.0, "cell", "sweep");
    session.end(TraceSession::kHostPid, session.threadTrack("main"),
                5.0);
    session.complete(TraceSession::kHostPid,
                     session.threadTrack("main"), 6.0, 2.0, "job",
                     "exec", {{"index", 3}});

    const obs::CheckResult result =
        obs::checkChromeTrace(session.render());
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_TRUE(result.hasName("pstate"));
    EXPECT_TRUE(result.hasName("cell"));
    EXPECT_TRUE(result.hasName("job"));
    EXPECT_EQ(session.dropped(), 0u);
}

TEST(ObsTrace, ThreadTrackIsStablePerThread)
{
    TraceSession session;
    const int a = session.threadTrack("main");
    const int b = session.threadTrack("ignored-on-reuse");
    EXPECT_EQ(a, b);

    int other = 0;
    std::thread t([&] { other = session.threadTrack("worker"); });
    t.join();
    EXPECT_NE(a, other);
}

TEST(ObsTrace, ArgValuesAreEscaped)
{
    TraceSession session;
    const int track = session.newTrack(TraceSession::kSimPid, "dom");
    session.instant(TraceSession::kSimPid, track, 0.0, "note", "sim",
                    {{"text", "quote \" backslash \\ newline \n"}});
    const std::string doc = session.render();
    const obs::CheckResult result = obs::checkChromeTrace(doc);
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_NE(doc.find("\\\""), std::string::npos);
    EXPECT_NE(doc.find("\\\\"), std::string::npos);
    EXPECT_NE(doc.find("\\n"), std::string::npos);
}

/**
 * Many threads emitting concurrently: every event must land (below
 * the cap) and the resulting document must still be balanced.  Part
 * of the `obs` TSan label.
 */
TEST(ObsTrace, ConcurrentEmissionStaysBalanced)
{
    TraceSession session;
    constexpr int kThreads = 8;
    constexpr int kSpans = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            const int track = session.threadTrack(
                "worker " + std::to_string(t));
            for (int i = 0; i < kSpans; ++i) {
                const double ts = session.hostNowUs();
                session.begin(TraceSession::kHostPid, track, ts,
                              "span", "test");
                session.instant(TraceSession::kHostPid, track, ts,
                                "tick", "test", {{"i", i}});
                session.end(TraceSession::kHostPid, track,
                            session.hostNowUs());
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    const obs::CheckResult result =
        obs::checkChromeTrace(session.render());
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_EQ(session.dropped(), 0u);
    // 3 events per span per thread, plus metadata events.
    EXPECT_GE(session.eventCount(),
              static_cast<std::size_t>(kThreads) * kSpans * 3);
}

TEST(ObsTrace, MacroIsInertWithoutActiveSession)
{
    ASSERT_EQ(obs::activeTrace(), nullptr);
    bool evaluated = false;
    const auto touch = [&] {
        evaluated = true;
        return 0.0;
    };
    SUIT_OBS_EVENT(instant(TraceSession::kHostPid, 0, touch(), "x",
                           "test"));
    EXPECT_FALSE(evaluated);

    TraceSession session;
    const int track = session.threadTrack("main");
    obs::setActiveTrace(&session);
    SUIT_OBS_EVENT(instant(TraceSession::kHostPid, track, touch(),
                           "x", "test"));
    obs::setActiveTrace(nullptr);
    EXPECT_TRUE(evaluated);
    EXPECT_TRUE(obs::checkChromeTrace(session.render()).hasName("x"));
}

TEST(ObsTrace, SimUsConvertsPicosecondTicks)
{
    // 1 tick = 1 ps; 5'000'000 ps = 5 µs.
    EXPECT_DOUBLE_EQ(TraceSession::simUs(5'000'000), 5.0);
}

} // namespace
