/**
 * @file
 * Unit tests for the obs::Registry: registration semantics, the
 * enabled gate, multi-threaded lock-free recording, snapshot
 * correctness and the two exporters.
 */

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/registry.hh"
#include "obs/validate.hh"

namespace {

using namespace suit;
using obs::MetricId;
using obs::MetricKind;
using obs::Registry;
using obs::Snapshot;

TEST(ObsRegistry, DisabledByDefaultAndDropsRecords)
{
    Registry reg;
    EXPECT_FALSE(reg.enabled());
    const MetricId c = reg.counter("drops");
    reg.add(c, 17);
    EXPECT_EQ(reg.snapshot().find("drops")->count, 0u);

    reg.setEnabled(true);
    reg.add(c, 17);
    EXPECT_EQ(reg.snapshot().find("drops")->count, 17u);
}

TEST(ObsRegistry, RegistrationIsIdempotentByName)
{
    Registry reg;
    reg.setEnabled(true);
    const MetricId a = reg.counter("same");
    const MetricId b = reg.counter("same");
    reg.add(a, 2);
    reg.add(b, 3);
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_EQ(reg.snapshot().find("same")->count, 5u);
}

TEST(ObsRegistry, GaugeHoldsLastValue)
{
    Registry reg;
    reg.setEnabled(true);
    const MetricId g = reg.gauge("level");
    reg.set(g, 1.5);
    reg.set(g, -2.25);
    const Snapshot snap = reg.snapshot();
    ASSERT_NE(snap.find("level"), nullptr);
    EXPECT_EQ(snap.find("level")->kind, MetricKind::Gauge);
    EXPECT_DOUBLE_EQ(snap.find("level")->value, -2.25);
}

TEST(ObsRegistry, HistogramBinsAndPercentiles)
{
    Registry reg;
    reg.setEnabled(true);
    const MetricId h = reg.histogram("lat", {1.0, 10.0, 100.0});
    reg.observe(h, 0.5);   // bucket 0
    reg.observe(h, 5.0);   // bucket 1
    reg.observe(h, 50.0);  // bucket 2
    reg.observe(h, 500.0); // overflow
    const Snapshot snap = reg.snapshot();
    const util::BucketHistogram &hist = snap.find("lat")->histogram;
    EXPECT_EQ(hist.total(), 4u);
    EXPECT_EQ(hist.count(0), 1u);
    EXPECT_EQ(hist.count(1), 1u);
    EXPECT_EQ(hist.count(2), 1u);
    EXPECT_EQ(hist.count(3), 1u);
    EXPECT_LE(hist.percentile(50.0), 10.0);
}

TEST(ObsRegistry, SnapshotSortsByName)
{
    Registry reg;
    reg.setEnabled(true);
    reg.add(reg.counter("zebra"));
    reg.add(reg.counter("alpha"));
    const Snapshot snap = reg.snapshot();
    ASSERT_EQ(snap.metrics.size(), 2u);
    EXPECT_EQ(snap.metrics[0].name, "alpha");
    EXPECT_EQ(snap.metrics[1].name, "zebra");
}

TEST(ObsRegistry, ResetZeroesButKeepsMetrics)
{
    Registry reg;
    reg.setEnabled(true);
    const MetricId c = reg.counter("hits");
    const MetricId g = reg.gauge("depth");
    reg.add(c, 9);
    reg.set(g, 4.0);
    reg.reset();
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(reg.snapshot().find("hits")->count, 0u);
    EXPECT_DOUBLE_EQ(reg.snapshot().find("depth")->value, 0.0);
}

/**
 * The lock-free contract: concurrent add()/observe() from many
 * threads must lose no increments, and a concurrent snapshot() must
 * be race-free (this test is part of the `obs` label run under
 * -DSUIT_SANITIZE=thread).
 */
TEST(ObsRegistry, ConcurrentRecordingLosesNothing)
{
    Registry reg;
    reg.setEnabled(true);
    const MetricId c = reg.counter("mt.count");
    const MetricId h = reg.histogram("mt.hist", {10.0, 100.0});

    constexpr int kThreads = 8;
    constexpr int kIters = 10'000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                reg.add(c);
                reg.observe(h, static_cast<double>((t + i) % 200));
            }
        });
    }
    // Concurrent reader: results are transient, but must not race.
    for (int i = 0; i < 50; ++i)
        (void)reg.snapshot();
    for (std::thread &t : threads)
        t.join();

    const Snapshot snap = reg.snapshot();
    EXPECT_EQ(snap.find("mt.count")->count,
              static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(snap.find("mt.hist")->histogram.total(),
              static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(ObsRegistry, JsonExportPassesValidator)
{
    Registry reg;
    reg.setEnabled(true);
    reg.add(reg.counter("a.count"), 3);
    reg.set(reg.gauge("b.gauge"), 7.5);
    reg.observe(reg.histogram("c.hist", {1.0, 2.0}), 1.5);

    const obs::CheckResult result =
        obs::checkMetricsJson(reg.renderJson());
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.entries, 3u);
    EXPECT_TRUE(result.hasName("a.count"));
    EXPECT_TRUE(result.hasName("b.gauge"));
    EXPECT_TRUE(result.hasName("c.hist"));
}

TEST(ObsRegistry, TableExportMentionsEveryMetric)
{
    Registry reg;
    reg.setEnabled(true);
    reg.add(reg.counter("one"), 1);
    reg.observe(reg.histogram("two", {5.0}), 3.0);
    const std::string table = reg.renderTable();
    EXPECT_NE(table.find("one"), std::string::npos);
    EXPECT_NE(table.find("two"), std::string::npos);
}

TEST(ObsRegistry, SeparateRegistriesDoNotShareShards)
{
    // The thread-local shard cache is keyed by registry serial; a
    // second registry on the same thread must start from zero.
    Registry first;
    first.setEnabled(true);
    first.add(first.counter("x"), 5);

    Registry second;
    second.setEnabled(true);
    second.add(second.counter("x"), 2);

    EXPECT_EQ(first.snapshot().find("x")->count, 5u);
    EXPECT_EQ(second.snapshot().find("x")->count, 2u);
}

} // namespace
