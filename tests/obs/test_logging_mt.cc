/**
 * @file
 * Thread-safety tests for util::logging's sink machinery: concurrent
 * emitters through one installed sink must deliver every message
 * whole (no interleaving, no loss).  Runs under the `obs` label so
 * the TSan configuration checks the writer mutex for real.
 */

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using namespace suit;

TEST(LoggingMt, ConcurrentEmittersDeliverWholeMessages)
{
    std::mutex mu;
    std::vector<std::string> seen;
    util::setLogSink([&](util::LogClass, const std::string &msg) {
        // The sink contract serialises calls; the local mutex only
        // guards the vector against a buggy (unserialised) caller.
        std::lock_guard lock(mu);
        seen.push_back(msg);
    });

    constexpr int kThreads = 8;
    constexpr int kEach = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            for (int i = 0; i < kEach; ++i) {
                if (i % 2 == 0)
                    util::inform("thread %d message %d end", t, i);
                else
                    util::warn("thread %d message %d end", t, i);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    util::setLogSink(nullptr);

    ASSERT_EQ(seen.size(),
              static_cast<std::size_t>(kThreads) * kEach);
    for (const std::string &msg : seen) {
        // A torn message would not match the emitted shape.
        EXPECT_EQ(msg.rfind("thread ", 0), 0u) << msg;
        EXPECT_NE(msg.find(" end"), std::string::npos) << msg;
    }
}

TEST(LoggingMt, SinkSwapDuringEmissionIsSafe)
{
    std::atomic<int> count_a{0};
    std::atomic<int> count_b{0};

    util::setLogSink([&](util::LogClass, const std::string &) {
        count_a.fetch_add(1, std::memory_order_relaxed);
    });

    std::thread emitter([] {
        for (int i = 0; i < 500; ++i)
            util::inform("swap test %d", i);
    });
    // Swap the sink while the emitter runs; every message must land
    // in exactly one of the two sinks.
    util::setLogSink([&](util::LogClass, const std::string &) {
        count_b.fetch_add(1, std::memory_order_relaxed);
    });
    emitter.join();
    util::setLogSink(nullptr);

    EXPECT_EQ(count_a.load() + count_b.load(), 500);
}

} // namespace
