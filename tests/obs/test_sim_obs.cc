/**
 * @file
 * End-to-end checks of the simulator instrumentation: enabling the
 * metrics registry and installing a trace session must not perturb
 * simulation results by a single bit, the published counters must
 * agree with the DomainResult they describe, and a traced run must
 * produce a valid Chrome document containing the paper's signature
 * events (p-state transitions, #DO traps).
 *
 * Uses the process-global obs::metrics() registry — the same one the
 * library instrumentation records into — so tests reset it and
 * switch it off again on exit.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/params.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "obs/validate.hh"
#include "sim/domain_sim.hh"
#include "sim/result_io.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"

namespace {

using namespace suit;

/** RAII: enable the global registry, restore the off state after. */
struct MetricsOn
{
    MetricsOn()
    {
        obs::metrics().reset();
        obs::metrics().setEnabled(true);
    }
    ~MetricsOn()
    {
        obs::metrics().setEnabled(false);
        obs::metrics().reset();
    }
};

std::string
simulate(const power::CpuModel &cpu, const trace::Trace &t,
         const trace::WorkloadProfile &p, bool bypass)
{
    sim::SimConfig cfg;
    cfg.cpu = &cpu;
    cfg.offsetMv = -97.0;
    cfg.mode = sim::RunMode::Suit;
    cfg.strategy = core::StrategyKind::CombinedFv;
    cfg.params = core::optimalParams(cpu);
    cfg.seed = 11;
    cfg.obsBypass = bypass;
    sim::DomainSimulator simulator(cfg, {{&t, &p}});
    std::string bytes;
    sim::serializeResult(simulator.run(), bytes);
    return bytes;
}

TEST(ObsSim, InstrumentationIsBitIdentical)
{
    const power::CpuModel cpu = power::cpuC_xeon4208();
    const auto &p = trace::profileByName("Nginx");
    const trace::Trace t = trace::TraceGenerator(11).generate(p);

    // Baseline: obs fully off (the suite-wide default state).
    const std::string off = simulate(cpu, t, p, false);

    // Metrics on, trace session installed: the instrumented paths
    // all fire, and the serialized result must not move.
    std::string on;
    {
        MetricsOn metrics_on;
        obs::TraceSession session;
        obs::setActiveTrace(&session);
        on = simulate(cpu, t, p, false);
        obs::setActiveTrace(nullptr);
    }

    // obsBypass (the bench baseline) skips even the latch.
    const std::string bypassed = simulate(cpu, t, p, true);

    EXPECT_EQ(off, on);
    EXPECT_EQ(off, bypassed);
}

TEST(ObsSim, PublishedCountersMatchResult)
{
    const power::CpuModel cpu = power::cpuC_xeon4208();
    const auto &p = trace::profileByName("Nginx");
    const trace::Trace t = trace::TraceGenerator(11).generate(p);

    MetricsOn metrics_on;

    sim::SimConfig cfg;
    cfg.cpu = &cpu;
    cfg.offsetMv = -97.0;
    cfg.mode = sim::RunMode::Suit;
    cfg.strategy = core::StrategyKind::CombinedFv;
    cfg.params = core::optimalParams(cpu);
    cfg.seed = 11;
    sim::DomainSimulator simulator(cfg, {{&t, &p}});
    const sim::DomainResult result = simulator.run();

    const obs::Snapshot snap = obs::metrics().snapshot();
    ASSERT_NE(snap.find("sim.runs"), nullptr);
    EXPECT_EQ(snap.find("sim.runs")->count, 1u);
    EXPECT_EQ(snap.find("sim.traps")->count, result.traps);
    EXPECT_EQ(snap.find("sim.emulations")->count, result.emulations);
    EXPECT_EQ(snap.find("sim.pstate_switches")->count,
              result.pstateSwitches);

    // Per-kind trap counters partition the total.
    std::uint64_t by_kind = 0;
    for (const obs::MetricValue &m : snap.metrics) {
        if (m.name.rfind("sim.traps.", 0) == 0)
            by_kind += m.count;
    }
    EXPECT_EQ(by_kind, result.traps);

    // This workload traps: the check must bite.
    EXPECT_GT(result.traps, 0u);
}

TEST(ObsSim, TracedRunEmitsSignatureEvents)
{
    const power::CpuModel cpu = power::cpuC_xeon4208();
    const auto &p = trace::profileByName("Nginx");
    const trace::Trace t = trace::TraceGenerator(11).generate(p);

    obs::TraceSession session;
    obs::setActiveTrace(&session);
    (void)simulate(cpu, t, p, false);
    obs::setActiveTrace(nullptr);

    const obs::CheckResult result =
        obs::checkChromeTrace(session.render());
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_TRUE(result.hasName("pstate"));
    EXPECT_TRUE(result.hasName("do-trap"));
}

TEST(ObsSim, ObsBypassSuppressesTraceEvents)
{
    const power::CpuModel cpu = power::cpuC_xeon4208();
    const auto &p = trace::profileByName("Nginx");
    const trace::Trace t = trace::TraceGenerator(11).generate(p);

    obs::TraceSession session;
    obs::setActiveTrace(&session);
    const std::size_t before = session.eventCount();
    (void)simulate(cpu, t, p, true);
    obs::setActiveTrace(nullptr);
    EXPECT_EQ(session.eventCount(), before);
}

} // namespace
