/**
 * @file
 * Unit tests for the continuous-telemetry stack: the
 * TelemetrySampler ring (wrap-around, lock-free concurrent reads,
 * start/stop idempotence), the OpenMetrics exposition (renderer,
 * TCP server, validator), and the FlightRecorder JSONL dumps.
 *
 * The concurrent tests are in the sanitizer matrix (label `obs`,
 * thread + undefined): the seqlock ring must be TSan-clean while a
 * worker hammers registry counters mid-sample.
 */

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "obs/flight.hh"
#include "obs/openmetrics.hh"
#include "obs/registry.hh"
#include "obs/telemetry.hh"
#include "obs/validate.hh"

namespace {

using namespace suit;
using obs::MetricId;
using obs::MetricKind;
using obs::Registry;
using obs::TelemetryConfig;
using obs::TelemetrySample;
using obs::TelemetrySampler;

/** Unique scratch path that is removed again on destruction. */
class ScratchFile
{
  public:
    explicit ScratchFile(const std::string &name)
        : path_(::testing::TempDir() + "suit_telemetry_" + name)
    {
        std::remove(path_.c_str());
    }
    ~ScratchFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }
    std::string read() const
    {
        std::ifstream in(path_, std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
    }

  private:
    std::string path_;
};

TelemetryConfig
manualConfig(std::size_t capacity = 8)
{
    TelemetryConfig cfg;
    cfg.enabled = true;
    cfg.intervalS = 3600.0; // background thread effectively idle
    cfg.ringCapacity = capacity;
    return cfg;
}

TEST(ObsTelemetry, StartStopIsIdempotentAndRestartable)
{
    Registry reg;
    reg.setEnabled(true);
    TelemetrySampler sampler(reg, manualConfig());

    EXPECT_FALSE(sampler.running());
    sampler.start();
    sampler.start(); // second start is a no-op
    EXPECT_TRUE(sampler.running());
    sampler.stop();
    sampler.stop(); // second stop is a no-op
    EXPECT_FALSE(sampler.running());

    // A stopped sampler restarts cleanly and keeps its ring state.
    sampler.sampleOnce();
    sampler.start();
    EXPECT_TRUE(sampler.running());
    sampler.stop();
    EXPECT_GE(sampler.samplesTaken(), 1u);
}

TEST(ObsTelemetry, SampleIdsAreMonotonicAndRingWrapsAround)
{
    Registry reg;
    reg.setEnabled(true);
    const MetricId c = reg.counter("wrap.count");

    TelemetrySampler sampler(reg, manualConfig(4));
    for (int i = 0; i < 10; ++i) {
        reg.add(c, 1);
        EXPECT_EQ(sampler.sampleOnce(),
                  static_cast<std::uint64_t>(i) + 1);
    }
    EXPECT_EQ(sampler.samplesTaken(), 10u);

    // Only the last capacity samples survive, oldest first, ids
    // strictly increasing, timestamps non-decreasing.
    const std::vector<TelemetrySample> tail = sampler.lastSamples(32);
    ASSERT_EQ(tail.size(), 4u);
    EXPECT_EQ(tail.front().id, 7u);
    EXPECT_EQ(tail.back().id, 10u);
    for (std::size_t i = 1; i < tail.size(); ++i) {
        EXPECT_LT(tail[i - 1].id, tail[i].id);
        EXPECT_LE(tail[i - 1].hostUs, tail[i].hostUs);
    }

    // The counter series is cumulative: sample id n carries n.
    const std::vector<obs::SeriesInfo> series = sampler.series();
    ASSERT_EQ(series.size(), 1u);
    EXPECT_EQ(series[0].name, "wrap.count");
    EXPECT_EQ(series[0].kind, MetricKind::Counter);
    for (const TelemetrySample &s : tail) {
        ASSERT_EQ(s.raw.size(), 1u);
        EXPECT_EQ(s.raw[0], s.id);
    }
}

TEST(ObsTelemetry, SeriesTableGrowsWithNewMetrics)
{
    Registry reg;
    reg.setEnabled(true);
    reg.add(reg.counter("first"), 1);

    TelemetrySampler sampler(reg, manualConfig());
    sampler.sampleOnce();
    EXPECT_EQ(sampler.series().size(), 1u);

    reg.add(reg.counter("second"), 1);
    sampler.sampleOnce();
    const std::vector<obs::SeriesInfo> series = sampler.series();
    ASSERT_EQ(series.size(), 2u);
    // Registration order, not name order.
    EXPECT_EQ(series[0].name, "first");
    EXPECT_EQ(series[1].name, "second");

    // The older sample reports only the series it knew about.
    const std::vector<TelemetrySample> tail = sampler.lastSamples(2);
    ASSERT_EQ(tail.size(), 2u);
    EXPECT_EQ(tail[0].raw.size(), 1u);
    EXPECT_EQ(tail[1].raw.size(), 2u);
}

TEST(ObsTelemetry, GaugeSeriesRoundTripsThroughBitCast)
{
    Registry reg;
    reg.setEnabled(true);
    const MetricId g = reg.gauge("level");
    reg.set(g, -2.25);

    TelemetrySampler sampler(reg, manualConfig());
    sampler.sampleOnce();
    const std::vector<TelemetrySample> tail = sampler.lastSamples(1);
    ASSERT_EQ(tail.size(), 1u);
    ASSERT_EQ(tail[0].raw.size(), 1u);
    EXPECT_DOUBLE_EQ(
        obs::seriesValue(MetricKind::Gauge, tail[0].raw[0]), -2.25);
}

// The satellite regression for `--metrics-interval` dump reuse: the
// sampler's retained snapshot must render the identical JSON document
// the registry itself renders, byte for byte, whenever the registry
// is quiescent — interval dumps and the final dump then always agree.
TEST(ObsTelemetry, RenderLatestJsonMatchesRegistryRender)
{
    Registry reg;
    reg.setEnabled(true);
    reg.add(reg.counter("zz.last"), 7);
    reg.add(reg.counter("aa.first"), 3);
    reg.set(reg.gauge("mm.gauge"), 1.5);
    reg.observe(reg.histogram("hh.lat", {1.0, 10.0}), 5.0);

    TelemetrySampler sampler(reg, manualConfig());
    sampler.sampleOnce();
    EXPECT_EQ(sampler.renderLatestJson(), reg.renderJson());
    EXPECT_TRUE(
        obs::checkMetricsJson(sampler.renderLatestJson()).ok);

    // Still identical after more traffic and another sample.
    reg.add(reg.counter("aa.first"), 9);
    sampler.sampleOnce();
    EXPECT_EQ(sampler.renderLatestJson(), reg.renderJson());
}

TEST(ObsTelemetry, ConcurrentSampleWhileIncrementIsCoherent)
{
    Registry reg;
    reg.setEnabled(true);
    const MetricId c = reg.counter("mt.count");
    TelemetrySampler sampler(reg, manualConfig(16));

    std::atomic<bool> stop{false};
    std::thread writer([&] {
        while (!stop.load(std::memory_order_acquire))
            reg.add(c, 1);
    });
    std::thread scanner([&] {
        std::vector<TelemetrySample> scratch;
        for (int i = 0; i < 200; ++i)
            sampler.lastSamplesInto(scratch, 16);
    });
    for (int i = 0; i < 200; ++i)
        sampler.sampleOnce();
    stop.store(true, std::memory_order_release);
    writer.join();
    scanner.join();

    // Every surviving sample pair must show a non-decreasing counter.
    const std::vector<TelemetrySample> tail = sampler.lastSamples(16);
    ASSERT_GE(tail.size(), 2u);
    for (std::size_t i = 1; i < tail.size(); ++i)
        EXPECT_LE(tail[i - 1].raw[0], tail[i].raw[0]);
}

TEST(ObsOpenMetrics, NamesAreSanitized)
{
    EXPECT_EQ(obs::openMetricsName("sim.trace_cache.hits"),
              "suit_sim_trace_cache_hits");
    EXPECT_EQ(obs::openMetricsName("fleet.shard-ms"),
              "suit_fleet_shard_ms");
}

TEST(ObsOpenMetrics, RenderedTextPassesValidator)
{
    Registry reg;
    reg.setEnabled(true);
    reg.add(reg.counter("sim.runs"), 41);
    reg.set(reg.gauge("queue.depth"), 3.0);
    reg.observe(reg.histogram("lat.ms", {1.0, 10.0}), 5.0);

    TelemetrySampler sampler(reg, manualConfig());
    sampler.sampleOnce();
    const std::string doc = sampler.renderOpenMetricsText();

    const obs::CheckResult result = obs::checkOpenMetrics(doc);
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_TRUE(result.hasName("suit_sim_runs"));
    EXPECT_NE(doc.find("suit_sim_runs_total 41"), std::string::npos);
    EXPECT_NE(doc.find("# EOF"), std::string::npos);
}

TEST(ObsOpenMetrics, ValidatorRejectsTamperedDocuments)
{
    // Duplicate metric/label pair.
    EXPECT_FALSE(obs::checkOpenMetrics("# TYPE suit_a counter\n"
                                       "suit_a_total 1\n"
                                       "suit_a_total 2\n"
                                       "# EOF\n")
                     .ok);
    // Missing terminator.
    EXPECT_FALSE(obs::checkOpenMetrics("# TYPE suit_a counter\n"
                                       "suit_a_total 1\n")
                     .ok);
    // Sample without a preceding TYPE line.
    EXPECT_FALSE(obs::checkOpenMetrics("suit_a_total 1\n# EOF\n").ok);
    // Histogram buckets must be cumulative.
    EXPECT_FALSE(
        obs::checkOpenMetrics("# TYPE suit_h histogram\n"
                              "suit_h_bucket{le=\"1\"} 5\n"
                              "suit_h_bucket{le=\"+Inf\"} 3\n"
                              "suit_h_count 3\n"
                              "# EOF\n")
            .ok);
}

TEST(ObsOpenMetrics, ServerServesScrapesOnEphemeralPort)
{
    Registry reg;
    reg.setEnabled(true);
    reg.add(reg.counter("scrape.count"), 5);
    TelemetrySampler sampler(reg, manualConfig());

    obs::MetricsServer server(0, [&] {
        sampler.sampleOnce();
        return sampler.renderOpenMetricsText();
    });
    ASSERT_TRUE(server.ok());
    ASSERT_NE(server.port(), 0);

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const char request[] = "GET /metrics HTTP/1.0\r\n\r\n";
    ASSERT_EQ(::send(fd, request, sizeof(request) - 1, 0),
              static_cast<ssize_t>(sizeof(request) - 1));

    std::string response;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        response.append(buf, static_cast<std::size_t>(n));
    ::close(fd);

    EXPECT_NE(response.find("200 OK"), std::string::npos);
    const std::size_t body_at = response.find("\r\n\r\n");
    ASSERT_NE(body_at, std::string::npos);
    const std::string body = response.substr(body_at + 4);
    const obs::CheckResult result = obs::checkOpenMetrics(body);
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_TRUE(result.hasName("suit_scrape_count"));
    EXPECT_EQ(server.scrapes(), 1u);
    server.stop();
}

TEST(ObsFlight, DumpWritesValidJsonlWithSpans)
{
    Registry reg;
    reg.setEnabled(true);
    const MetricId c = reg.counter("flight.count");
    auto sampler =
        std::make_shared<TelemetrySampler>(reg, manualConfig());
    for (int i = 0; i < 3; ++i) {
        reg.add(c, 2);
        sampler->sampleOnce();
    }

    const ScratchFile out("flight.jsonl");
    obs::FlightConfig cfg;
    cfg.path = out.path();
    cfg.installSignalHandlers = false;
    obs::FlightRecorder recorder(cfg, sampler);
    EXPECT_TRUE(obs::flightSpansActive());
    {
        obs::FlightSpan outer("outer", "test");
        obs::FlightSpan inner("inner", "test");
        ASSERT_TRUE(recorder.dump("deadline"));
    }
    EXPECT_EQ(recorder.dumps(), 1u);

    const std::string doc = out.read();
    const obs::CheckResult result = obs::checkFlightJsonl(doc);
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_TRUE(result.hasName("flight.count"));
    EXPECT_NE(doc.find("\"reason\": \"deadline\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"outer\""), std::string::npos);
    EXPECT_NE(doc.find("\"inner\""), std::string::npos);
}

TEST(ObsFlight, SpansAreFreeWhenNoRecorderIsArmed)
{
    EXPECT_FALSE(obs::flightSpansActive());
    obs::FlightSpan span("unrecorded", "test"); // must be a no-op
    EXPECT_FALSE(obs::flightSpansActive());
}

TEST(ObsFlight, ValidatorRejectsTamperedDumps)
{
    const char header[] =
        "{\"schema\": \"suit-flight-v1\", \"reason\": \"sigint\", "
        "\"interval_s\": 0.1, \"series\": "
        "[{\"name\": \"a\", \"kind\": \"counter\"}]}\n";

    // Decreasing counter between consecutive samples.
    EXPECT_FALSE(
        obs::checkFlightJsonl(
            std::string(header) +
            "{\"sample\": 1, \"host_us\": 1.0, \"values\": [5]}\n"
            "{\"sample\": 2, \"host_us\": 2.0, \"values\": [3]}\n")
            .ok);
    // Non-monotonic sample ids.
    EXPECT_FALSE(
        obs::checkFlightJsonl(
            std::string(header) +
            "{\"sample\": 2, \"host_us\": 1.0, \"values\": [1]}\n"
            "{\"sample\": 1, \"host_us\": 2.0, \"values\": [2]}\n")
            .ok);
    // Duplicate series names in the header.
    EXPECT_FALSE(
        obs::checkFlightJsonl(
            "{\"schema\": \"suit-flight-v1\", \"reason\": \"x\", "
            "\"series\": [{\"name\": \"a\", \"kind\": \"counter\"}, "
            "{\"name\": \"a\", \"kind\": \"gauge\"}]}\n")
            .ok);
    // Wrong schema string.
    EXPECT_FALSE(
        obs::checkFlightJsonl("{\"schema\": \"other\", "
                              "\"reason\": \"x\", \"series\": []}\n")
            .ok);
    // A well-formed dump passes.
    EXPECT_TRUE(
        obs::checkFlightJsonl(
            std::string(header) +
            "{\"sample\": 1, \"host_us\": 1.0, \"values\": [1]}\n"
            "{\"sample\": 2, \"host_us\": 2.0, \"values\": [4]}\n")
            .ok);
}

} // namespace
