/**
 * @file
 * Tests for the obs structural validators themselves: the CI smoke
 * checks lean on them, so they must reject each class of malformed
 * document, not just accept the exporters' output.
 */

#include <string>

#include <gtest/gtest.h>

#include "obs/validate.hh"

namespace {

using namespace suit;
using obs::CheckResult;

std::string
traceDoc(const std::string &events)
{
    return "{\n\"traceEvents\": [\n" + events + "\n]\n}\n";
}

TEST(ObsValidate, AcceptsMinimalTrace)
{
    const CheckResult r = obs::checkChromeTrace(traceDoc(
        R"({"ph": "B", "pid": 1, "tid": 1, "ts": 0.000, "name": "a", "cat": "t"},)"
        "\n"
        R"({"ph": "E", "pid": 1, "tid": 1, "ts": 1.000})"));
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.entries, 2u);
    EXPECT_TRUE(r.hasName("a"));
}

TEST(ObsValidate, RejectsUnbalancedSpans)
{
    const CheckResult r = obs::checkChromeTrace(traceDoc(
        R"({"ph": "B", "pid": 1, "tid": 1, "ts": 0.000, "name": "a", "cat": "t"})"));
    EXPECT_FALSE(r.ok);
}

TEST(ObsValidate, RejectsCrossTrackEndPairing)
{
    // The E sits on another (pid, tid) track than the B: both tracks
    // are individually unbalanced.
    const CheckResult r = obs::checkChromeTrace(traceDoc(
        R"({"ph": "B", "pid": 1, "tid": 1, "ts": 0.000, "name": "a", "cat": "t"},)"
        "\n"
        R"({"ph": "E", "pid": 1, "tid": 2, "ts": 1.000})"));
    EXPECT_FALSE(r.ok);
}

TEST(ObsValidate, RejectsUnknownPhase)
{
    const CheckResult r = obs::checkChromeTrace(traceDoc(
        R"({"ph": "Q", "pid": 1, "tid": 1, "ts": 0.000, "name": "a", "cat": "t"})"));
    EXPECT_FALSE(r.ok);
}

TEST(ObsValidate, RejectsMissingTimestamp)
{
    const CheckResult r = obs::checkChromeTrace(traceDoc(
        R"({"ph": "i", "pid": 1, "tid": 1, "s": "t", "name": "a", "cat": "t"})"));
    EXPECT_FALSE(r.ok);
}

TEST(ObsValidate, RejectsCompleteWithoutDuration)
{
    const CheckResult r = obs::checkChromeTrace(traceDoc(
        R"({"ph": "X", "pid": 1, "tid": 1, "ts": 0.000, "name": "a", "cat": "t"})"));
    EXPECT_FALSE(r.ok);
}

TEST(ObsValidate, RejectsEmptyTrace)
{
    EXPECT_FALSE(obs::checkChromeTrace(traceDoc("")).ok);
    EXPECT_FALSE(obs::checkChromeTrace("not json at all").ok);
}

std::string
metricsDoc(const std::string &metrics)
{
    return "{\n  \"schema\": \"suit-obs-metrics-v1\",\n"
           "  \"metrics\": [\n" +
           metrics + "\n  ]\n}\n";
}

TEST(ObsValidate, AcceptsMinimalMetrics)
{
    const CheckResult r = obs::checkMetricsJson(metricsDoc(
        R"(    {"name": "a", "kind": "counter", "count": 3},)"
        "\n"
        R"(    {"name": "b", "kind": "gauge", "value": 1.5},)"
        "\n"
        R"(    {"name": "c", "kind": "histogram", "count": 2, "bounds": [1, 2], "buckets": [1, 1, 0], "p50": 1, "p90": 2, "p99": 2})"));
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.entries, 3u);
}

TEST(ObsValidate, RejectsWrongSchema)
{
    const std::string doc =
        "{\n  \"schema\": \"other\",\n  \"metrics\": [\n"
        R"(    {"name": "a", "kind": "counter", "count": 3})"
        "\n  ]\n}\n";
    EXPECT_FALSE(obs::checkMetricsJson(doc).ok);
}

TEST(ObsValidate, RejectsUnknownKind)
{
    const CheckResult r = obs::checkMetricsJson(metricsDoc(
        R"(    {"name": "a", "kind": "timer", "count": 3})"));
    EXPECT_FALSE(r.ok);
}

TEST(ObsValidate, RejectsHistogramBucketCountMismatch)
{
    // Two bounds require exactly three buckets.
    const CheckResult r = obs::checkMetricsJson(metricsDoc(
        R"(    {"name": "c", "kind": "histogram", "count": 2, "bounds": [1, 2], "buckets": [1, 1]})"));
    EXPECT_FALSE(r.ok);
}

TEST(ObsValidate, RejectsCounterWithoutCount)
{
    const CheckResult r = obs::checkMetricsJson(metricsDoc(
        R"(    {"name": "a", "kind": "counter"})"));
    EXPECT_FALSE(r.ok);
}

} // namespace
