/**
 * @file
 * Tests of the emulation dispatcher.
 */

#include <gtest/gtest.h>

#include "emu/aes.hh"
#include "emu/dispatcher.hh"
#include "emu/simd_ops.hh"
#include "isa/faultable.hh"
#include "util/rng.hh"

namespace {

using namespace suit::emu;
using suit::isa::allFaultableKinds;
using suit::isa::FaultableKind;
using suit::util::Rng;

TEST(Dispatcher, RoutesBitwiseOps)
{
    Rng rng(21);
    const Vec256 a(rng.next(), rng.next(), rng.next(), rng.next());
    const Vec256 b(rng.next(), rng.next(), rng.next(), rng.next());

    EXPECT_EQ(emulate({FaultableKind::VOR, a, b, 0}), vor(a, b));
    EXPECT_EQ(emulate({FaultableKind::VXOR, a, b, 0}), vxor(a, b));
    EXPECT_EQ(emulate({FaultableKind::VAND, a, b, 0}), vand(a, b));
    EXPECT_EQ(emulate({FaultableKind::VANDN, a, b, 0}), vandn(a, b));
    EXPECT_EQ(emulate({FaultableKind::VPADDQ, a, b, 0}), vpaddq(a, b));
}

TEST(Dispatcher, RoutesImmediateOps)
{
    Rng rng(22);
    const Vec256 a(rng.next(), rng.next(), rng.next(), rng.next());
    const Vec256 b(rng.next(), rng.next(), rng.next(), rng.next());

    EXPECT_EQ(emulate({FaultableKind::VPSRAD, a, b, 7}), vpsrad(a, 7));
    EXPECT_EQ(emulate({FaultableKind::VPCLMULQDQ, a, b, 0x11}),
              vpclmulqdq(a, b, 0x11));
}

TEST(Dispatcher, AesencMatchesReferenceRound)
{
    Rng rng(23);
    Vec256 state(rng.next(), rng.next(), rng.next(), rng.next());
    Vec256 key(rng.next(), rng.next(), rng.next(), rng.next());

    const Vec256 out = emulate({FaultableKind::AESENC, state, key, 0});

    AesBlock sb, kb;
    for (int i = 0; i < 16; ++i) {
        sb[static_cast<std::size_t>(i)] = state.u8(i);
        kb[static_cast<std::size_t>(i)] = key.u8(i);
    }
    const AesBlock expect = aesencRound(sb, kb);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(out.u8(i), expect[static_cast<std::size_t>(i)]);
    // Upper 128 bits pass through.
    EXPECT_EQ(out.u64(2), state.u64(2));
    EXPECT_EQ(out.u64(3), state.u64(3));
}

TEST(Dispatcher, ImulReturnsFullProduct)
{
    EmuRequest req;
    req.kind = FaultableKind::IMUL;
    req.a.setU64(0, static_cast<std::uint64_t>(-7));
    req.b.setU64(0, 3);
    const Vec256 out = emulate(req);
    EXPECT_EQ(static_cast<std::int64_t>(out.u64(0)), -21);
    EXPECT_EQ(static_cast<std::int64_t>(out.u64(1)), -1); // sign ext
}

TEST(Dispatcher, EveryKindHasAPositiveCost)
{
    for (FaultableKind kind : allFaultableKinds())
        EXPECT_GT(emulationCostCycles(kind), 0.0)
            << suit::isa::toString(kind);
}

TEST(Dispatcher, AesencIsTheMostExpensiveEmulation)
{
    const double aes = emulationCostCycles(FaultableKind::AESENC);
    for (FaultableKind kind : allFaultableKinds()) {
        if (kind != FaultableKind::AESENC)
            EXPECT_GT(aes, emulationCostCycles(kind));
    }
}

} // namespace
