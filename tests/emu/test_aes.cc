/**
 * @file
 * AES emulation tests: FIPS-197 conformance, reference vs bit-sliced
 * equivalence, and GF(2^8) plane-arithmetic properties.
 */

#include <gtest/gtest.h>

#include "emu/aes.hh"
#include "util/rng.hh"

namespace {

using suit::emu::Aes128;
using suit::emu::AesBlock;
using suit::emu::AesPlanes;
using suit::emu::aesencRound;
using suit::emu::aesencRoundBitsliced;
using suit::emu::aesenclastRound;
using suit::emu::aesenclastRoundBitsliced;
using suit::emu::aesFromPlanes;
using suit::emu::aesSubByte;
using suit::emu::aesToPlanes;
using suit::emu::gfInvPlanes;
using suit::emu::gfMulPlanes;
using suit::util::Rng;

AesBlock
blockFromHex(const char *hex)
{
    AesBlock b{};
    for (int i = 0; i < 16; ++i) {
        auto nibble = [&](char c) -> std::uint8_t {
            if (c >= '0' && c <= '9')
                return static_cast<std::uint8_t>(c - '0');
            return static_cast<std::uint8_t>(c - 'a' + 10);
        };
        b[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(
            (nibble(hex[2 * i]) << 4) | nibble(hex[2 * i + 1]));
    }
    return b;
}

AesBlock
randomBlock(Rng &rng)
{
    AesBlock b;
    for (auto &byte : b)
        byte = static_cast<std::uint8_t>(rng.nextBelow(256));
    return b;
}

TEST(AesSbox, KnownValues)
{
    // Corner entries of the FIPS-197 S-box table.
    EXPECT_EQ(aesSubByte(0x00), 0x63);
    EXPECT_EQ(aesSubByte(0x01), 0x7c);
    EXPECT_EQ(aesSubByte(0x53), 0xed);
    EXPECT_EQ(aesSubByte(0xff), 0x16);
}

TEST(AesSbox, IsAPermutation)
{
    bool seen[256] = {};
    for (int i = 0; i < 256; ++i) {
        const std::uint8_t s =
            aesSubByte(static_cast<std::uint8_t>(i));
        EXPECT_FALSE(seen[s]) << "duplicate S-box output " << int(s);
        seen[s] = true;
    }
}

TEST(Aes128, Fips197AppendixCVector)
{
    const Aes128 aes(
        blockFromHex("000102030405060708090a0b0c0d0e0f"));
    const AesBlock pt =
        blockFromHex("00112233445566778899aabbccddeeff");
    const AesBlock expected =
        blockFromHex("69c4e0d86a7b0430d8cdb78070b4c55a");
    EXPECT_EQ(aes.encrypt(pt), expected);
}

TEST(Aes128, Fips197AppendixBVector)
{
    const Aes128 aes(blockFromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    const AesBlock pt =
        blockFromHex("3243f6a8885a308d313198a2e0370734");
    const AesBlock expected =
        blockFromHex("3925841d02dc09fbdc118597196a0b32");
    EXPECT_EQ(aes.encrypt(pt), expected);
}

TEST(Aes128, KeyScheduleMatchesFips197)
{
    // FIPS-197 Appendix A.1 expanded key, first and last round keys.
    const Aes128 aes(blockFromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    EXPECT_EQ(aes.roundKey(1),
              blockFromHex("a0fafe1788542cb123a339392a6c7605"));
    EXPECT_EQ(aes.roundKey(10),
              blockFromHex("d014f9a8c9ee2589e13f0cc8b6630ca6"));
}

TEST(Aes128, BitslicedEncryptMatchesReference)
{
    Rng rng(42);
    for (int trial = 0; trial < 50; ++trial) {
        const AesBlock key = randomBlock(rng);
        const AesBlock pt = randomBlock(rng);
        const Aes128 aes(key);
        EXPECT_EQ(aes.encryptBitsliced(pt), aes.encrypt(pt));
    }
}

TEST(AesRound, BitslicedRoundMatchesReference)
{
    Rng rng(7);
    for (int trial = 0; trial < 200; ++trial) {
        const AesBlock state = randomBlock(rng);
        const AesBlock key = randomBlock(rng);
        EXPECT_EQ(aesencRoundBitsliced(state, key),
                  aesencRound(state, key));
        EXPECT_EQ(aesenclastRoundBitsliced(state, key),
                  aesenclastRound(state, key));
    }
}

TEST(AesPlanesTest, TransposeRoundTrips)
{
    Rng rng(3);
    for (int trial = 0; trial < 100; ++trial) {
        const AesBlock b = randomBlock(rng);
        EXPECT_EQ(aesFromPlanes(aesToPlanes(b)), b);
    }
}

TEST(AesPlanesTest, GfMulMatchesScalarReference)
{
    // Scalar GF(2^8) multiply with the AES polynomial.
    auto gf_mul = [](std::uint8_t a, std::uint8_t b) {
        std::uint8_t p = 0;
        for (int i = 0; i < 8; ++i) {
            if (b & 1)
                p ^= a;
            const bool hi = a & 0x80;
            a = static_cast<std::uint8_t>(a << 1);
            if (hi)
                a ^= 0x1B;
            b >>= 1;
        }
        return p;
    };

    Rng rng(11);
    for (int trial = 0; trial < 100; ++trial) {
        AesBlock a, b;
        for (int i = 0; i < 16; ++i) {
            a[static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(rng.nextBelow(256));
            b[static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(rng.nextBelow(256));
        }
        const AesBlock prod =
            aesFromPlanes(gfMulPlanes(aesToPlanes(a), aesToPlanes(b)));
        for (int i = 0; i < 16; ++i) {
            EXPECT_EQ(prod[static_cast<std::size_t>(i)],
                      gf_mul(a[static_cast<std::size_t>(i)],
                             b[static_cast<std::size_t>(i)]));
        }
    }
}

TEST(AesPlanesTest, GfInvIsInverse)
{
    // inv(x) * x == 1 for all 255 nonzero bytes; inv(0) == 0.
    for (int base = 0; base < 256; base += 16) {
        AesBlock b;
        for (int i = 0; i < 16; ++i)
            b[static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(base + i);
        const AesPlanes planes = aesToPlanes(b);
        const AesBlock prod = aesFromPlanes(
            gfMulPlanes(gfInvPlanes(planes), planes));
        for (int i = 0; i < 16; ++i) {
            const std::uint8_t x = b[static_cast<std::size_t>(i)];
            EXPECT_EQ(prod[static_cast<std::size_t>(i)],
                      x == 0 ? 0 : 1)
                << "byte value " << int(x);
        }
    }
}

TEST(AesDecrypt, InverseSboxInvertsForward)
{
    for (int i = 0; i < 256; ++i) {
        const auto b = static_cast<std::uint8_t>(i);
        EXPECT_EQ(suit::emu::aesInvSubByte(aesSubByte(b)), b);
    }
}

TEST(AesDecrypt, DecryptInvertsEncryptOnFipsVectors)
{
    const Aes128 aes(blockFromHex("000102030405060708090a0b0c0d0e0f"));
    const AesBlock pt = blockFromHex("00112233445566778899aabbccddeeff");
    EXPECT_EQ(aes.decrypt(aes.encrypt(pt)), pt);
    EXPECT_EQ(aes.decrypt(
                  blockFromHex("69c4e0d86a7b0430d8cdb78070b4c55a")),
              pt);
}

TEST(AesDecrypt, RandomRoundTrips)
{
    Rng rng(77);
    for (int trial = 0; trial < 100; ++trial) {
        const Aes128 aes(randomBlock(rng));
        const AesBlock pt = randomBlock(rng);
        EXPECT_EQ(aes.decrypt(aes.encrypt(pt)), pt);
        EXPECT_EQ(aes.decrypt(aes.encryptBitsliced(pt)), pt);
    }
}

TEST(AesDecrypt, AesdeclastInvertsAesenclast)
{
    // aesenclast(x, k) = SB(SR(x)) ^ k; since byte-wise substitution
    // commutes with the row permutation, removing the key first and
    // applying aesdeclast with a zero key is the exact inverse.
    Rng rng(78);
    const AesBlock zero{};
    for (int trial = 0; trial < 100; ++trial) {
        const AesBlock state = randomBlock(rng);
        const AesBlock key = randomBlock(rng);
        AesBlock y = aesenclastRound(state, key);
        for (std::size_t i = 0; i < 16; ++i)
            y[i] ^= key[i];
        EXPECT_EQ(suit::emu::aesdeclastRound(y, zero), state);
    }
}

TEST(AesDecrypt, AesimcIsInvolutoryWithMixColumns)
{
    // aesimc applied to mixColumns(x) (via an encrypt round with a
    // zero key and pre-inverted ShiftRows) returns x: check the
    // InvMixColumns matrix really inverts MixColumns.
    Rng rng(79);
    for (int trial = 0; trial < 100; ++trial) {
        const AesBlock x = randomBlock(rng);
        // aesenc with zero key on invSubBytes/invShiftRows
        // pre-images isolates MixColumns; easier: mixColumns is not
        // exported, so use round identities:
        // aesimc(aesenc(state, 0)) == subBytes(shiftRows(state)).
        const AesBlock zero{};
        const AesBlock lhs =
            suit::emu::aesimc(aesencRound(x, zero));
        const AesBlock rhs = aesenclastRound(x, zero);
        EXPECT_EQ(lhs, rhs);
    }
}

} // namespace
