/**
 * @file
 * Tests of the scalar SIMD emulation semantics.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "emu/simd_ops.hh"
#include "util/rng.hh"

namespace {

using namespace suit::emu;
using suit::util::Rng;

Vec256
randomVec(Rng &rng)
{
    return Vec256(rng.next(), rng.next(), rng.next(), rng.next());
}

TEST(Vec256Test, LaneViewsAreConsistent)
{
    Vec256 v;
    v.setU64(0, 0x1122334455667788ULL);
    EXPECT_EQ(v.u32(0), 0x55667788u);
    EXPECT_EQ(v.u32(1), 0x11223344u);
    EXPECT_EQ(v.u8(0), 0x88);
    EXPECT_EQ(v.u8(7), 0x11);

    v.setU8(31, 0xAB);
    EXPECT_EQ(v.u64(3) >> 56, 0xABu);

    v.setF64(2, 1.5);
    EXPECT_DOUBLE_EQ(v.f64(2), 1.5);
}

TEST(Vec256Test, ByteRoundTrip)
{
    std::uint8_t bytes[32];
    for (int i = 0; i < 32; ++i)
        bytes[i] = static_cast<std::uint8_t>(i * 7 + 3);
    const Vec256 v = Vec256::fromBytes(bytes);
    std::uint8_t out[32];
    v.toBytes(out);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(out[i], bytes[i]);
}

TEST(BitwiseOps, MatchScalarDefinitions)
{
    Rng rng(1);
    for (int t = 0; t < 100; ++t) {
        const Vec256 a = randomVec(rng);
        const Vec256 b = randomVec(rng);
        for (int i = 0; i < 4; ++i) {
            EXPECT_EQ(vor(a, b).u64(i), a.u64(i) | b.u64(i));
            EXPECT_EQ(vxor(a, b).u64(i), a.u64(i) ^ b.u64(i));
            EXPECT_EQ(vand(a, b).u64(i), a.u64(i) & b.u64(i));
            EXPECT_EQ(vandn(a, b).u64(i), ~a.u64(i) & b.u64(i));
        }
    }
}

TEST(BitwiseOps, AlgebraicIdentities)
{
    Rng rng(2);
    const Vec256 zero;
    const Vec256 ones = Vec256::broadcast64(~0ULL);
    for (int t = 0; t < 50; ++t) {
        const Vec256 a = randomVec(rng);
        EXPECT_EQ(vxor(a, a), zero);
        EXPECT_EQ(vor(a, zero), a);
        EXPECT_EQ(vand(a, ones), a);
        EXPECT_EQ(vandn(zero, a), a);
        EXPECT_EQ(vandn(a, a), zero);
    }
}

TEST(Vpaddq, WrapsAround)
{
    const Vec256 a = Vec256::broadcast64(~0ULL);
    const Vec256 b = Vec256::broadcast64(2);
    const Vec256 r = vpaddq(a, b);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(r.u64(i), 1u);
}

TEST(Vpsrad, ShiftsArithmetically)
{
    Vec256 a;
    a.setU32(0, 0x80000000u); // INT32_MIN
    a.setU32(1, 0x7FFFFFFFu); // INT32_MAX
    a.setU32(2, 0xFFFFFFF0u); // -16

    const Vec256 r = vpsrad(a, 4);
    EXPECT_EQ(r.u32(0), 0xF8000000u);
    EXPECT_EQ(r.u32(1), 0x07FFFFFFu);
    EXPECT_EQ(r.u32(2), 0xFFFFFFFFu);
}

TEST(Vpsrad, LargeCountFillsWithSign)
{
    Vec256 a;
    a.setU32(0, 0x80000001u);
    a.setU32(1, 0x12345678u);
    const Vec256 r = vpsrad(a, 40);
    EXPECT_EQ(r.u32(0), 0xFFFFFFFFu);
    EXPECT_EQ(r.u32(1), 0u);
}

TEST(Vpcmpgtd, ProducesLaneMasks)
{
    Vec256 a, b;
    a.setU32(0, static_cast<std::uint32_t>(5));
    b.setU32(0, static_cast<std::uint32_t>(-3));
    a.setU32(1, static_cast<std::uint32_t>(-7));
    b.setU32(1, static_cast<std::uint32_t>(-2));
    const Vec256 r = vpcmpgtd(a, b);
    EXPECT_EQ(r.u32(0), 0xFFFFFFFFu); // 5 > -3
    EXPECT_EQ(r.u32(1), 0u);          // -7 < -2
}

TEST(Vpmaxsd, SignedMaximum)
{
    Vec256 a, b;
    a.setU32(0, static_cast<std::uint32_t>(-5));
    b.setU32(0, static_cast<std::uint32_t>(3));
    const Vec256 r = vpmaxsd(a, b);
    EXPECT_EQ(static_cast<std::int32_t>(r.u32(0)), 3);
}

TEST(Vsqrtpd, ComputesPerLaneSqrt)
{
    const Vec256 a = Vec256::fromDoubles(4.0, 9.0, 2.25, 0.0);
    const Vec256 r = vsqrtpd(a);
    EXPECT_DOUBLE_EQ(r.f64(0), 2.0);
    EXPECT_DOUBLE_EQ(r.f64(1), 3.0);
    EXPECT_DOUBLE_EQ(r.f64(2), 1.5);
    EXPECT_DOUBLE_EQ(r.f64(3), 0.0);
}

TEST(Clmul, KnownSmallProducts)
{
    std::uint64_t hi = 0;
    // (x+1)(x+1) = x^2+1 (carry-less: 3*3 = 5).
    EXPECT_EQ(clmul64(3, 3, &hi), 5u);
    EXPECT_EQ(hi, 0u);
    // x^63 * x = x^64: overflows entirely into the high half.
    EXPECT_EQ(clmul64(1ULL << 63, 2, &hi), 0u);
    EXPECT_EQ(hi, 1u);
}

TEST(Clmul, CommutativeAndDistributive)
{
    Rng rng(9);
    for (int t = 0; t < 100; ++t) {
        const std::uint64_t a = rng.next();
        const std::uint64_t b = rng.next();
        const std::uint64_t c = rng.next();
        std::uint64_t hab, hba, hac, habc;
        const std::uint64_t ab = clmul64(a, b, &hab);
        const std::uint64_t ba = clmul64(b, a, &hba);
        EXPECT_EQ(ab, ba);
        EXPECT_EQ(hab, hba);
        // a*(b^c) == a*b ^ a*c in GF(2)[x].
        const std::uint64_t ac = clmul64(a, c, &hac);
        const std::uint64_t abc = clmul64(a, b ^ c, &habc);
        EXPECT_EQ(abc, ab ^ ac);
        EXPECT_EQ(habc, hab ^ hac);
    }
}

TEST(Vpclmulqdq, SelectorPicksQwords)
{
    Vec256 a(2, 3, 0, 0);
    Vec256 b(5, 7, 0, 0);
    // imm 0x00: low(a) * low(b) = clmul(2, 5).
    std::uint64_t hi;
    EXPECT_EQ(vpclmulqdq(a, b, 0x00).u64(0), clmul64(2, 5, &hi));
    // imm 0x11: high(a) * high(b) = clmul(3, 7).
    EXPECT_EQ(vpclmulqdq(a, b, 0x11).u64(0), clmul64(3, 7, &hi));
    // imm 0x01: high(a) * low(b).
    EXPECT_EQ(vpclmulqdq(a, b, 0x01).u64(0), clmul64(3, 5, &hi));
    // imm 0x10: low(a) * high(b).
    EXPECT_EQ(vpclmulqdq(a, b, 0x10).u64(0), clmul64(2, 7, &hi));
}

TEST(ImulFull, MatchesInt128Reference)
{
    Rng rng(13);
    for (int t = 0; t < 200; ++t) {
        const auto a = static_cast<std::int64_t>(rng.next());
        const auto b = static_cast<std::int64_t>(rng.next());
        const Int128 p = imulFull(a, b);
        const __int128 ref = static_cast<__int128>(a) * b;
        EXPECT_EQ(p.lo, static_cast<std::uint64_t>(
                            static_cast<unsigned __int128>(ref)));
        EXPECT_EQ(p.hi, static_cast<std::int64_t>(ref >> 64));
    }
}

TEST(ImulFull, EdgeCases)
{
    EXPECT_EQ(imulFull(0, 12345).lo, 0u);
    EXPECT_EQ(imulFull(-1, -1).lo, 1u);
    EXPECT_EQ(imulFull(-1, -1).hi, 0);
    const Int128 min_sq =
        imulFull(std::numeric_limits<std::int64_t>::min(), -1);
    EXPECT_EQ(min_sq.lo, 0x8000000000000000ULL);
    EXPECT_EQ(min_sq.hi, 0);
}

} // namespace
