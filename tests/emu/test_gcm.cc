/**
 * @file
 * AES-128-GCM tests: NIST SP 800-38D / GCM-spec test vectors,
 * GF(2^128) ring properties and round-trip/tamper behaviour.
 */

#include <gtest/gtest.h>

#include "emu/gcm.hh"
#include "util/rng.hh"

namespace {

using namespace suit::emu;
using suit::util::Rng;

std::vector<std::uint8_t>
bytesFromHex(const std::string &hex)
{
    auto nibble = [](char c) -> std::uint8_t {
        if (c >= '0' && c <= '9')
            return static_cast<std::uint8_t>(c - '0');
        return static_cast<std::uint8_t>(c - 'a' + 10);
    };
    std::vector<std::uint8_t> out;
    for (std::size_t i = 0; i + 1 < hex.size(); i += 2)
        out.push_back(static_cast<std::uint8_t>(
            (nibble(hex[i]) << 4) | nibble(hex[i + 1])));
    return out;
}

AesBlock
blockFromHex(const std::string &hex)
{
    const auto bytes = bytesFromHex(hex);
    AesBlock b{};
    for (std::size_t i = 0; i < 16; ++i)
        b[i] = bytes[i];
    return b;
}

// ---------------------------------------------------------------
// GF(2^128) arithmetic
// ---------------------------------------------------------------

Gf128
randomElement(Rng &rng)
{
    return Gf128{rng.next(), rng.next()};
}

TEST(Gf128Test, BlockRoundTrip)
{
    Rng rng(1);
    for (int i = 0; i < 50; ++i) {
        const Gf128 e = randomElement(rng);
        EXPECT_EQ(gf128FromBlock(gf128ToBlock(e)), e);
    }
}

TEST(Gf128Test, MultiplicationIsCommutative)
{
    Rng rng(2);
    for (int i = 0; i < 100; ++i) {
        const Gf128 a = randomElement(rng);
        const Gf128 b = randomElement(rng);
        EXPECT_EQ(gf128Mul(a, b), gf128Mul(b, a));
    }
}

TEST(Gf128Test, MultiplicationIsAssociative)
{
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        const Gf128 a = randomElement(rng);
        const Gf128 b = randomElement(rng);
        const Gf128 c = randomElement(rng);
        EXPECT_EQ(gf128Mul(gf128Mul(a, b), c),
                  gf128Mul(a, gf128Mul(b, c)));
    }
}

TEST(Gf128Test, DistributesOverXor)
{
    Rng rng(4);
    for (int i = 0; i < 50; ++i) {
        const Gf128 a = randomElement(rng);
        const Gf128 b = randomElement(rng);
        const Gf128 c = randomElement(rng);
        const Gf128 bc{b.hi ^ c.hi, b.lo ^ c.lo};
        const Gf128 ab = gf128Mul(a, b);
        const Gf128 ac = gf128Mul(a, c);
        EXPECT_EQ(gf128Mul(a, bc),
                  (Gf128{ab.hi ^ ac.hi, ab.lo ^ ac.lo}));
    }
}

TEST(Gf128Test, OneIsTheIdentity)
{
    // In the GCM bit order, "1" is the block 0x80 00 ... 00.
    const Gf128 one{0x8000000000000000ULL, 0};
    Rng rng(5);
    for (int i = 0; i < 50; ++i) {
        const Gf128 a = randomElement(rng);
        EXPECT_EQ(gf128Mul(a, one), a);
        EXPECT_EQ(gf128Mul(one, a), a);
    }
}

TEST(Gf128Test, ZeroAnnihilates)
{
    Rng rng(6);
    const Gf128 zero{};
    const Gf128 a = randomElement(rng);
    EXPECT_EQ(gf128Mul(a, zero), zero);
}

// ---------------------------------------------------------------
// NIST GCM test vectors (GCM spec, AES-128 cases)
// ---------------------------------------------------------------

TEST(GcmVectors, TestCase1EmptyPlaintext)
{
    const Aes128Gcm gcm(
        blockFromHex("00000000000000000000000000000000"));
    const auto sealed =
        gcm.seal(bytesFromHex("000000000000000000000000"), {});
    EXPECT_TRUE(sealed.ciphertext.empty());
    EXPECT_EQ(sealed.tag,
              blockFromHex("58e2fccefa7e3061367f1d57a4e7455a"));
}

TEST(GcmVectors, TestCase2SingleZeroBlock)
{
    const Aes128Gcm gcm(
        blockFromHex("00000000000000000000000000000000"));
    const auto sealed =
        gcm.seal(bytesFromHex("000000000000000000000000"),
                 bytesFromHex("00000000000000000000000000000000"));
    EXPECT_EQ(sealed.ciphertext,
              bytesFromHex("0388dace60b6a392f328c2b971b2fe78"));
    EXPECT_EQ(sealed.tag,
              blockFromHex("ab6e47d42cec13bdf53a67b21257bddf"));
}

TEST(GcmVectors, TestCase3FourBlocks)
{
    const Aes128Gcm gcm(
        blockFromHex("feffe9928665731c6d6a8f9467308308"));
    const auto sealed = gcm.seal(
        bytesFromHex("cafebabefacedbaddecaf888"),
        bytesFromHex(
            "d9313225f88406e5a55909c5aff5269a"
            "86a7a9531534f7da2e4c303d8a318a72"
            "1c3c0c95956809532fcf0e2449a6b525"
            "b16aedf5aa0de657ba637b391aafd255"));
    EXPECT_EQ(sealed.ciphertext,
              bytesFromHex(
                  "42831ec2217774244b7221b784d0d49c"
                  "e3aa212f2c02a4e035c17e2329aca12e"
                  "21d514b25466931c7d8f6a5aac84aa05"
                  "1ba30b396a0aac973d58e091473f5985"));
    EXPECT_EQ(sealed.tag,
              blockFromHex("4d5c2af327cd64a62cf35abd2ba6fab4"));
}

// ---------------------------------------------------------------
// Behavioural properties
// ---------------------------------------------------------------

TEST(GcmBehaviour, SealOpenRoundTrip)
{
    Rng rng(7);
    AesBlock key;
    for (auto &b : key)
        b = static_cast<std::uint8_t>(rng.nextBelow(256));
    const Aes128Gcm gcm(key);

    for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 100u, 333u}) {
        std::vector<std::uint8_t> iv(12), pt(len), aad(13);
        for (auto &b : iv)
            b = static_cast<std::uint8_t>(rng.nextBelow(256));
        for (auto &b : pt)
            b = static_cast<std::uint8_t>(rng.nextBelow(256));
        for (auto &b : aad)
            b = static_cast<std::uint8_t>(rng.nextBelow(256));

        const GcmSealed sealed = gcm.seal(iv, pt, aad);
        std::vector<std::uint8_t> decrypted;
        ASSERT_TRUE(
            gcm.open(iv, sealed.ciphertext, sealed.tag, &decrypted,
                     aad))
            << "len " << len;
        EXPECT_EQ(decrypted, pt);
    }
}

TEST(GcmBehaviour, TamperedCiphertextIsRejected)
{
    const Aes128Gcm gcm(
        blockFromHex("feffe9928665731c6d6a8f9467308308"));
    const auto iv = bytesFromHex("cafebabefacedbaddecaf888");
    const std::vector<std::uint8_t> pt(48, 0x42);
    GcmSealed sealed = gcm.seal(iv, pt);

    sealed.ciphertext[20] ^= 0x01; // one flipped bit
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(gcm.open(iv, sealed.ciphertext, sealed.tag, &out));
}

TEST(GcmBehaviour, TamperedTagAndAadAreRejected)
{
    const Aes128Gcm gcm(
        blockFromHex("feffe9928665731c6d6a8f9467308308"));
    const auto iv = bytesFromHex("cafebabefacedbaddecaf888");
    const std::vector<std::uint8_t> pt(32, 0x17);
    const std::vector<std::uint8_t> aad = {1, 2, 3};
    const GcmSealed sealed = gcm.seal(iv, pt, aad);

    AesBlock bad_tag = sealed.tag;
    bad_tag[0] ^= 0x80;
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(
        gcm.open(iv, sealed.ciphertext, bad_tag, &out, aad));
    EXPECT_FALSE(gcm.open(iv, sealed.ciphertext, sealed.tag, &out,
                          {/* wrong aad */}));
    EXPECT_TRUE(
        gcm.open(iv, sealed.ciphertext, sealed.tag, &out, aad));
}

TEST(GcmBehaviour, SubkeyIsEncryptionOfZero)
{
    const AesBlock key =
        blockFromHex("feffe9928665731c6d6a8f9467308308");
    const Aes128Gcm gcm(key);
    const Aes128 aes(key);
    EXPECT_EQ(gcm.subkey(), gf128FromBlock(aes.encrypt(AesBlock{})));
}

} // namespace
