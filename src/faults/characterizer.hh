/**
 * @file
 * Undervolting characterization campaign (paper Table 1).
 *
 * Reimplements the methodology of Kogler et al.'s Minefield
 * framework on top of the fault model: for every (core, frequency)
 * pair, lower the voltage offset step by step, run a batch of test
 * executions of every faultable instruction at each step, and record
 * which instructions fault before the core crashes.  A "fault" is
 * one (core, frequency, offset) combination at which the instruction
 * misbehaved — the unit Table 1 counts.
 */

#ifndef SUIT_FAULTS_CHARACTERIZER_HH
#define SUIT_FAULTS_CHARACTERIZER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "faults/injector.hh"
#include "faults/vmin_model.hh"
#include "runtime/cancel.hh"

namespace suit::faults {

/** Sweep parameters of the characterization campaign. */
struct CharacterizerConfig
{
    /** Frequencies to test, Hz. */
    std::vector<double> freqsHz = {4.0e9, 4.5e9, 5.0e9};
    /** Offset step size (mV, applied negatively). */
    double offsetStepMv = 20.0;
    /** Deepest offset to try before giving up (mV, positive value). */
    double maxOffsetMv = 300.0;
    /** Test executions per (instruction, operating point). */
    int samplesPerPoint = 40;
    /**
     * Mean / sigma of the early-crash jitter (mV): real sweeps often
     * end in hangs or reboots well above the nominal crash voltage
     * because of power-delivery instability, which is why the
     * low-Vmin stragglers fault so rarely in Table 1.
     */
    double crashJitterMeanMv = 55.0;
    double crashJitterSigmaMv = 25.0;
    /** RNG seed for operands and fault sampling. */
    std::uint64_t seed = 99;
    /**
     * Cooperative cancellation, polled once per offset step.  A
     * tripped token ends the campaign early with
     * CharacterizationResult::interrupted set; the counts gathered
     * so far are returned as-is.
     */
    const suit::runtime::CancelToken *cancel = nullptr;
};

/** Results of a campaign. */
struct CharacterizationResult
{
    /** Faulting (core, frequency, offset) combinations per kind. */
    std::array<int, suit::isa::kNumFaultableKinds> faultCounts{};
    /**
     * Shallowest (smallest magnitude) offset at which each kind ever
     * faulted, in mV; 0 if it never faulted.
     */
    std::array<double, suit::isa::kNumFaultableKinds> firstFaultMv{};
    /** Total test executions performed. */
    std::uint64_t totalExecutions = 0;
    /** Points skipped because the core had crashed. */
    int crashedPoints = 0;
    /** True if the cancel token ended the campaign early. */
    bool interrupted = false;
};

/** Runs Minefield-style undervolting sweeps against a fault model. */
class Characterizer
{
  public:
    Characterizer(const VminModel *model, CharacterizerConfig config);

    /** Run the full campaign over every core of the model. */
    CharacterizationResult run();

  private:
    const VminModel *model_;
    CharacterizerConfig cfg_;
};

} // namespace suit::faults

#endif // SUIT_FAULTS_CHARACTERIZER_HH
