#include "faults/attack.hh"

#include "util/rng.hh"

namespace suit::faults {

namespace {

/**
 * Run the victim loop.  @p supply_of returns the supply voltage the
 * target instruction actually executes at; @p count_trap is true on
 * the SUIT machine where each disabled execution first traps.
 */
AttackResult
runCampaign(const VminModel &model, const AttackConfig &cfg,
            double exec_supply_mv, bool count_trap)
{
    AttackResult result;
    FaultInjector injector(&model, cfg.seed);
    suit::util::Rng operands(cfg.seed * 31 + 7);

    for (int i = 0; i < cfg.attempts; ++i) {
        suit::emu::EmuRequest req;
        req.kind = cfg.target;
        req.a = suit::emu::Vec256(operands.next(), operands.next(),
                                  operands.next(), operands.next());
        req.b = suit::emu::Vec256(operands.next(), operands.next(),
                                  operands.next(), operands.next());

        ++result.attempts;
        if (count_trap)
            ++result.traps;

        const ExecOutcome out =
            injector.execute(req, cfg.core, cfg.freqHz, exec_supply_mv);
        if (out.crashed)
            continue; // attacker loses this attempt, system resets
        if (out.faulted)
            ++result.faultyResults;
    }
    result.keyRecoveryFeasible =
        result.faultyResults >=
        static_cast<std::uint64_t>(cfg.dfaThreshold);
    return result;
}

} // namespace

AttackResult
attackBaseline(const VminModel &model, const AttackConfig &cfg)
{
    // No SUIT: the instruction executes at the undervolted supply.
    const double nominal =
        model.config().curve->voltageAtMv(cfg.freqHz);
    return runCampaign(model, cfg, nominal - cfg.undervoltMv, false);
}

AttackResult
attackWithSuit(const VminModel &model, const AttackConfig &cfg)
{
    // SUIT: executing the disabled instruction raises #DO; the OS
    // switches to the conservative curve, and the re-execution
    // happens at the full vendor-validated voltage regardless of the
    // attacker's requested offset (the hardware refuses the
    // efficient curve while the set is enabled, Sec. 3.2).
    const double nominal =
        model.config().curve->voltageAtMv(cfg.freqHz);
    return runCampaign(model, cfg, nominal, true);
}

} // namespace suit::faults
