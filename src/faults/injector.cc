#include "faults/injector.hh"

#include "util/logging.hh"

namespace suit::faults {

FaultInjector::FaultInjector(const VminModel *model, std::uint64_t seed)
    : model_(model), rng_(seed)
{
    SUIT_ASSERT(model_ != nullptr, "injector needs a Vmin model");
}

ExecOutcome
FaultInjector::execute(const suit::emu::EmuRequest &req, int core,
                       double freq_hz, double supply_mv)
{
    ++execs_;
    ExecOutcome out;
    if (supply_mv < model_->crashVoltageMv(core, freq_hz)) {
        out.crashed = true;
        return out;
    }

    out.value = suit::emu::emulate(req);
    const double p =
        model_->faultProbability(core, req.kind, freq_hz, supply_mv);
    if (p > 0.0 && rng_.nextBool(p)) {
        // Data error: flip one to three result bits.  The faulting
        // hardware keeps retiring instructions normally.
        const int flips = 1 + static_cast<int>(rng_.nextBelow(3));
        for (int i = 0; i < flips; ++i) {
            const int bit = static_cast<int>(rng_.nextBelow(256));
            const int lane = bit / 64;
            out.value.setU64(lane, out.value.u64(lane) ^
                                       (1ULL << (bit % 64)));
        }
        out.faulted = true;
        ++faults_;
    }
    return out;
}

} // namespace suit::faults
