/**
 * @file
 * Per-instruction minimum-voltage model (paper Secs. 2.3, 5.5).
 *
 * Undervolting faults are data errors that appear when the supply
 * drops below an instruction-specific minimum voltage Vmin.  Vmin
 * varies between instructions (IMUL first, ~70-150 mV above the
 * rest), between chips and between cores of one chip (process
 * variation, Kogler et al.).  This model assigns every
 * (core, instruction, frequency) triple a Vmin anchored to the
 * conservative DVFS curve, and a fault probability that ramps up as
 * the supply sinks below it — faults "very infrequently" right at
 * the threshold, reliably further down (Murdoch et al.).
 */

#ifndef SUIT_FAULTS_VMIN_MODEL_HH
#define SUIT_FAULTS_VMIN_MODEL_HH

#include <cstdint>
#include <vector>

#include "isa/faultable.hh"
#include "power/pstate.hh"

namespace suit::faults {

/** Configuration of the Vmin model. */
struct VminConfig
{
    /** Conservative DVFS curve of the chip (not owned). */
    const suit::power::DvfsCurve *curve = nullptr;
    /** Number of cores (each gets its own variation). */
    int cores = 8;
    /**
     * Margin between the curve voltage and the *crash* point where
     * control logic fails and nothing executes at all (mV).  The
     * faultable instructions sit inside this band (Fig. 2).
     */
    double crashMarginMv = 250.0;
    /** Chip-to-chip Vmin variation (one draw per model, mV). */
    double chipSigmaMv = 15.0;
    /** Core-to-core Vmin variation (one draw per core, mV). */
    double coreSigmaMv = 8.0;
    /** Voltage span over which the fault probability ramps 0->1. */
    double onsetRampMv = 20.0;
    /**
     * SUIT hardware: IMUL runs with the 4-cycle pipeline, whose 33 %
     * timing slack lowers its Vmin by up to 220 mV (paper Sec. 6.9,
     * Fig. 13) — far below the crash point, so it never faults.
     */
    bool hardenedImul = false;
    /** Vmin reduction of the hardened IMUL (mV). */
    double imulSlackMv = 220.0;
    /**
     * Core temperature in degC.  Vmin rises with temperature: the
     * paper measured a 35 mV shift between 50 and 88 degC (Table 3,
     * Sec. 5.7).  The default is the hot end, where the guardbands
     * are sized.
     */
    double temperatureC = 88.0;
    /** Seed for the variation draws. */
    std::uint64_t seed = 2024;
};

/** Deterministic per-chip Vmin assignment with process variation. */
class VminModel
{
  public:
    explicit VminModel(const VminConfig &config);

    /**
     * Minimum stable supply voltage for @p kind on @p core at
     * @p freq_hz, in mV (at the configured core temperature).
     */
    double vminMv(int core, suit::isa::FaultableKind kind,
                  double freq_hz) const;

    /**
     * Temperature-induced Vmin shift relative to the hot reference
     * (negative when cooler: a cool core tolerates deeper
     * undervolting, Table 3).
     */
    double temperatureShiftMv() const;

    /** Voltage below which the whole core stops executing. */
    double crashVoltageMv(int core, double freq_hz) const;

    /**
     * Probability that one execution of @p kind at @p supply_mv
     * produces a faulty result: 0 above Vmin, ramping to 1 across
     * the onset window below it.  Below the crash voltage nothing
     * executes (the caller should treat that as a hang, not a silent
     * fault).
     */
    double faultProbability(int core, suit::isa::FaultableKind kind,
                            double freq_hz, double supply_mv) const;

    /** The configuration in effect. */
    const VminConfig &config() const { return cfg_; }

  private:
    VminConfig cfg_;
    double chipOffsetMv_ = 0.0;
    std::vector<double> coreOffsetMv_;
    std::vector<std::array<double, suit::isa::kNumFaultableKinds>>
        kindJitterMv_;
};

} // namespace suit::faults

#endif // SUIT_FAULTS_VMIN_MODEL_HH
