#include "faults/characterizer.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/rng.hh"

namespace suit::faults {

using suit::isa::allFaultableKinds;
using suit::isa::FaultableKind;

Characterizer::Characterizer(const VminModel *model,
                             CharacterizerConfig config)
    : model_(model), cfg_(std::move(config))
{
    SUIT_ASSERT(model_ != nullptr, "characterizer needs a model");
    SUIT_ASSERT(!cfg_.freqsHz.empty(), "characterizer needs freqs");
    SUIT_ASSERT(cfg_.offsetStepMv > 0 && cfg_.maxOffsetMv > 0,
                "sweep parameters must be positive");
}

CharacterizationResult
Characterizer::run()
{
    CharacterizationResult result;
    FaultInjector injector(model_, cfg_.seed);
    suit::util::Rng operands(cfg_.seed ^ 0xABCDEF);

    suit::util::Rng crash_rng(cfg_.seed + 101);
    const auto &curve = *model_->config().curve;
    for (int core = 0; core < model_->config().cores; ++core) {
        for (double freq : cfg_.freqsHz) {
            const double nominal = curve.voltageAtMv(freq);
            // Power-delivery instability: this sweep may hang well
            // above the silicon's nominal crash voltage.
            const double early_crash_mv = std::max(
                0.0, crash_rng.nextGaussian(cfg_.crashJitterMeanMv,
                                            cfg_.crashJitterSigmaMv));
            bool crashed = false;
            for (double off = cfg_.offsetStepMv;
                 off <= cfg_.maxOffsetMv && !crashed;
                 off += cfg_.offsetStepMv) {
                if (cfg_.cancel != nullptr &&
                    cfg_.cancel->cancelled()) {
                    result.interrupted = true;
                    return result;
                }
                const double supply = nominal - off;
                if (supply < model_->crashVoltageMv(core, freq) +
                                 early_crash_mv) {
                    // The core hangs here; the sweep for this
                    // operating point ends (Minefield reboots).
                    crashed = true;
                    ++result.crashedPoints;
                    break;
                }
                for (FaultableKind kind : allFaultableKinds()) {
                    bool faulted = false;
                    for (int s = 0;
                         s < cfg_.samplesPerPoint && !faulted; ++s) {
                        suit::emu::EmuRequest req;
                        req.kind = kind;
                        req.a = suit::emu::Vec256(
                            operands.next(), operands.next(),
                            operands.next(), operands.next());
                        req.b = suit::emu::Vec256(
                            operands.next(), operands.next(),
                            operands.next(), operands.next());
                        req.imm = static_cast<int>(
                            operands.nextBelow(16));
                        const ExecOutcome out = injector.execute(
                            req, core, freq, supply);
                        ++result.totalExecutions;
                        faulted = out.faulted;
                    }
                    if (faulted) {
                        const auto k = static_cast<std::size_t>(kind);
                        ++result.faultCounts[k];
                        if (result.firstFaultMv[k] == 0.0 ||
                            off < result.firstFaultMv[k]) {
                            result.firstFaultMv[k] = off;
                        }
                    }
                }
            }
        }
    }
    return result;
}

} // namespace suit::faults
