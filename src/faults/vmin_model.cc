#include "faults/vmin_model.hh"

#include <algorithm>

#include "power/guardband.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace suit::faults {

using suit::isa::FaultableKind;
using suit::isa::kNumFaultableKinds;

VminModel::VminModel(const VminConfig &config) : cfg_(config)
{
    SUIT_ASSERT(cfg_.curve != nullptr && cfg_.curve->valid(),
                "Vmin model needs a DVFS curve");
    SUIT_ASSERT(cfg_.cores >= 1, "Vmin model needs cores");

    suit::util::Rng rng(cfg_.seed);
    chipOffsetMv_ = rng.nextGaussian(0.0, cfg_.chipSigmaMv);
    coreOffsetMv_.resize(static_cast<std::size_t>(cfg_.cores));
    kindJitterMv_.resize(static_cast<std::size_t>(cfg_.cores));
    for (int c = 0; c < cfg_.cores; ++c) {
        coreOffsetMv_[static_cast<std::size_t>(c)] =
            rng.nextGaussian(0.0, cfg_.coreSigmaMv);
        for (std::size_t k = 0; k < kNumFaultableKinds; ++k) {
            // Small per-(core, kind) jitter so the Table 1 ordering
            // is statistical, not exact, like the real measurements.
            kindJitterMv_[static_cast<std::size_t>(c)][k] =
                rng.nextGaussian(0.0, 3.0);
        }
    }
}

double
VminModel::temperatureShiftMv() const
{
    // Linear between the cool and hot references of the guardband
    // model (35 mV over 50..88 degC); 0 at the hot end where the
    // crash margin is anchored.
    const suit::power::GuardbandModel gb;
    return gb.temperatureBandAtMv(cfg_.temperatureC) -
           gb.temperatureBandMv;
}

double
VminModel::crashVoltageMv(int core, double freq_hz) const
{
    SUIT_ASSERT(core >= 0 && core < cfg_.cores, "core %d out of range",
                core);
    return cfg_.curve->voltageAtMv(freq_hz) - cfg_.crashMarginMv +
           temperatureShiftMv() + chipOffsetMv_ +
           coreOffsetMv_[static_cast<std::size_t>(core)];
}

double
VminModel::vminMv(int core, FaultableKind kind, double freq_hz) const
{
    // The instruction's Vmin sits `relativeVminMv` above the crash
    // point: IMUL highest (faults first), VPADDQ lowest.
    double vmin = crashVoltageMv(core, freq_hz) +
                  suit::isa::relativeVminMv(kind) +
                  kindJitterMv_[static_cast<std::size_t>(core)]
                               [static_cast<std::size_t>(kind)];
    if (cfg_.hardenedImul && kind == FaultableKind::IMUL)
        vmin -= cfg_.imulSlackMv;
    return vmin;
}

double
VminModel::faultProbability(int core, FaultableKind kind,
                            double freq_hz, double supply_mv) const
{
    const double vmin = vminMv(core, kind, freq_hz);
    if (supply_mv >= vmin)
        return 0.0;
    return std::min(1.0, (vmin - supply_mv) / cfg_.onsetRampMv);
}

} // namespace suit::faults
