/**
 * @file
 * Fault injection for undervolted instruction execution.
 *
 * Executes an instruction through the golden software semantics
 * (suit::emu) and, when the Vmin model says the operating point is
 * unstable, silently corrupts the result by flipping result bits —
 * the *data* errors Kogler et al. observed (control logic keeps
 * working, which is precisely what makes undervolting attacks like
 * Plundervolt exploitable).
 */

#ifndef SUIT_FAULTS_INJECTOR_HH
#define SUIT_FAULTS_INJECTOR_HH

#include <cstdint>

#include "emu/dispatcher.hh"
#include "faults/vmin_model.hh"
#include "util/rng.hh"

namespace suit::faults {

/** Result of one (possibly faulted) instruction execution. */
struct ExecOutcome
{
    /** The value the program observes. */
    suit::emu::Vec256 value;
    /** True if the value differs from the architectural result. */
    bool faulted = false;
    /** True if the core was below its crash voltage (hang). */
    bool crashed = false;
};

/** Executes instructions under a voltage condition. */
class FaultInjector
{
  public:
    /**
     * @param model Vmin model of the chip (not owned).
     * @param seed randomness for fault sampling and bit selection.
     */
    FaultInjector(const VminModel *model, std::uint64_t seed = 7);

    /**
     * Execute @p req on @p core at (@p freq_hz, @p supply_mv).
     *
     * Above Vmin the architectural result is returned; in the onset
     * window below Vmin a bit-flipped result may be returned with
     * the model's probability; below the crash voltage the outcome
     * is flagged crashed.
     */
    ExecOutcome execute(const suit::emu::EmuRequest &req, int core,
                        double freq_hz, double supply_mv);

    /** Faults injected so far. */
    std::uint64_t faultCount() const { return faults_; }
    /** Executions performed so far. */
    std::uint64_t execCount() const { return execs_; }

  private:
    const VminModel *model_;
    suit::util::Rng rng_;
    std::uint64_t faults_ = 0;
    std::uint64_t execs_ = 0;
};

} // namespace suit::faults

#endif // SUIT_FAULTS_INJECTOR_HH
