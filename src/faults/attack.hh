/**
 * @file
 * Software-based undervolting attack simulation (paper Secs. 1, 6.9).
 *
 * Plundervolt/V0LTpwn-style attacks drive the supply voltage just
 * below an instruction's Vmin while a victim computes on secrets;
 * the silently wrong results (e.g. a faulty AES round or a faulty
 * RSA-CRT multiplication) let the attacker recover keys by
 * differential fault analysis.  This module mounts exactly that
 * campaign against the fault model, once on a baseline CPU and once
 * on a SUIT CPU where the faultable set is disabled on the efficient
 * curve — demonstrating the reductionist security argument: with
 * SUIT, the faultable instructions simply never execute at an
 * unstable operating point.
 */

#ifndef SUIT_FAULTS_ATTACK_HH
#define SUIT_FAULTS_ATTACK_HH

#include <cstdint>

#include "faults/injector.hh"
#include "isa/faultable.hh"

namespace suit::faults {

/** Outcome of one attack campaign. */
struct AttackResult
{
    /** Victim computations triggered. */
    std::uint64_t attempts = 0;
    /** Faulty results the attacker collected. */
    std::uint64_t faultyResults = 0;
    /** #DO traps taken (SUIT machine only). */
    std::uint64_t traps = 0;
    /**
     * Whether enough faulty outputs were collected for differential
     * fault analysis (a handful suffices for AES DFA).
     */
    bool keyRecoveryFeasible = false;
};

/** Attack campaign parameters. */
struct AttackConfig
{
    /** Instruction targeted by the attacker. */
    suit::isa::FaultableKind target =
        suit::isa::FaultableKind::AESENC;
    /** Victim core. */
    int core = 0;
    /** Operating frequency. */
    double freqHz = 4.0e9;
    /** Undervolt applied by the attacker, below the target's Vmin. */
    double undervoltMv = 180.0;
    /** Victim invocations. */
    int attempts = 5000;
    /** Faulty outputs needed for DFA. */
    int dfaThreshold = 4;
    /** RNG seed. */
    std::uint64_t seed = 1337;
};

/**
 * Mount the campaign on a CPU *without* SUIT: the undervolt applies
 * while the victim executes the target instruction natively.
 */
AttackResult attackBaseline(const VminModel &model,
                            const AttackConfig &config);

/**
 * Mount the same campaign on a CPU *with* SUIT: on the efficient
 * curve the target instruction is disabled, every execution traps,
 * and the hardware re-executes it only at a vendor-validated
 * conservative operating point.
 */
AttackResult attackWithSuit(const VminModel &model,
                            const AttackConfig &config);

} // namespace suit::faults

#endif // SUIT_FAULTS_ATTACK_HH
