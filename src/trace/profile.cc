#include "trace/profile.hh"

#include <cmath>
#include <numbers>

#include "util/logging.hh"

namespace suit::trace {

using suit::isa::FaultableKind;
using suit::isa::kNumFaultableKinds;

const char *
toString(Suite suite)
{
    switch (suite) {
      case Suite::SpecInt:
        return "SPECint";
      case Suite::SpecFp:
        return "SPECfp";
      case Suite::Network:
        return "network";
    }
    return "?";
}

double
BurstModel::meanInterBurstGap() const
{
    return std::exp(interBurstGapLogMean +
                    0.5 * interBurstGapLogSigma * interBurstGapLogSigma);
}

namespace {

/** Standard normal CDF. */
double
normCdf(double z)
{
    return 0.5 * std::erfc(-z / std::numbers::sqrt2);
}

} // namespace

double
BurstModel::expectedEfficientShare(double overhead_instr) const
{
    // Per burst cycle the CPU leaves the efficient curve for the
    // burst span plus the deadline window and curve switches
    // (overhead_instr, "c"); only the part of the inter-burst gap X
    // beyond c is spent on the efficient curve.  For log-normal X:
    //   E[max(0, X - c)] = E[X] Phi(d1) - c Phi(d2),
    //   d1 = (mu + sigma^2 - ln c) / sigma, d2 = (mu - ln c) / sigma.
    const double c = overhead_instr;
    const double mu = interBurstGapLogMean;
    const double sigma = interBurstGapLogSigma;
    const double mean = meanInterBurstGap();
    const double d1 = (mu + sigma * sigma - std::log(c)) / sigma;
    const double d2 = (mu - std::log(c)) / sigma;
    const double e_excess = mean * normCdf(d1) - c * normCdf(d2);
    const double span = meanBurstEvents * meanWithinBurstGap;
    return std::max(0.0, e_excess) / (mean + span + c);
}

void
BurstModel::calibrateToEfficientShare(double efficient_share,
                                      double overhead_instr, double sigma,
                                      double thrash_halfwindow_instr,
                                      double thrash_extra_instr)
{
    SUIT_ASSERT(efficient_share > 0.0 && efficient_share < 1.0,
                "efficient share must be in (0, 1), got %f",
                efficient_share);
    interBurstGapLogSigma = sigma;

    // The share is monotone in mu; bisect.  The heavy log-normal
    // tail matters: gaps below the deadline never reach the
    // efficient curve, so the naive mean-gap solution undershoots.
    auto solve = [&](double c_eff) {
        double lo = std::log(c_eff) - 12.0;
        double hi = std::log(c_eff) + 30.0;
        for (int iter = 0; iter < 120; ++iter) {
            interBurstGapLogMean = 0.5 * (lo + hi);
            if (expectedEfficientShare(c_eff) < efficient_share)
                lo = interBurstGapLogMean;
            else
                hi = interBurstGapLogMean;
        }
        interBurstGapLogMean = 0.5 * (lo + hi);
    };

    // Outer fixed point: when gaps cluster inside the thrash window,
    // thrashing prevention stretches the deadline by p_df and the
    // per-burst off-curve residency grows accordingly.  Approximate
    // the thrash probability as P(a gap fits in half the look-back
    // window) squared (two clustered exceptions) and fold the
    // stretched deadline into the effective overhead.
    double c_eff = overhead_instr;
    for (int outer = 0; outer < 10; ++outer) {
        solve(c_eff);
        if (thrash_halfwindow_instr <= 0.0)
            break;
        const double p = normCdf((std::log(2.0 *
                                           thrash_halfwindow_instr) -
                                  interBurstGapLogMean) /
                                 sigma);
        c_eff = overhead_instr + p * thrash_extra_instr;
    }
    solve(c_eff);
}

namespace {

using KindMix = std::array<double, kNumFaultableKinds>;

KindMix
makeMix(std::initializer_list<std::pair<FaultableKind, double>> entries)
{
    KindMix mix{};
    double sum = 0.0;
    for (const auto &[kind, weight] : entries) {
        mix[static_cast<std::size_t>(kind)] = weight;
        sum += weight;
    }
    SUIT_ASSERT(sum > 0.0, "kind mix must have positive weight");
    for (double &w : mix)
        w /= sum;
    return mix;
}

KindMix
specIntMix()
{
    return makeMix({{FaultableKind::VOR, 0.25},
                    {FaultableKind::VXOR, 0.25},
                    {FaultableKind::VAND, 0.15},
                    {FaultableKind::VANDN, 0.05},
                    {FaultableKind::VPCMP, 0.10},
                    {FaultableKind::VPMAX, 0.05},
                    {FaultableKind::VPADDQ, 0.10},
                    {FaultableKind::VPSRAD, 0.05}});
}

KindMix
specFpMix()
{
    return makeMix({{FaultableKind::VSQRTPD, 0.20},
                    {FaultableKind::VOR, 0.15},
                    {FaultableKind::VXOR, 0.15},
                    {FaultableKind::VAND, 0.10},
                    {FaultableKind::VANDN, 0.05},
                    {FaultableKind::VPADDQ, 0.15},
                    {FaultableKind::VPCMP, 0.10},
                    {FaultableKind::VPMAX, 0.05},
                    {FaultableKind::VPSRAD, 0.05}});
}

KindMix
x264Mix()
{
    // Motion estimation / SAD code: packed max, shifts, adds.
    return makeMix({{FaultableKind::VPMAX, 0.20},
                    {FaultableKind::VPSRAD, 0.20},
                    {FaultableKind::VPADDQ, 0.20},
                    {FaultableKind::VPCMP, 0.15},
                    {FaultableKind::VOR, 0.10},
                    {FaultableKind::VXOR, 0.10},
                    {FaultableKind::VAND, 0.05}});
}

KindMix
cryptoMix()
{
    // AES-GCM on a TLS connection: AES rounds plus GHASH carry-less
    // multiplies and XOR whitening.
    return makeMix({{FaultableKind::AESENC, 0.85},
                    {FaultableKind::VPCLMULQDQ, 0.10},
                    {FaultableKind::VXOR, 0.05}});
}

/**
 * Reference-configuration overhead used for calibration: the 30 us
 * deadline window plus the measured curve-switch delays (~65 us) on
 * CPU C at 3 GHz, converted to instructions via the profile's IPC.
 */
constexpr double kReferenceOverheadSeconds = 95e-6;
constexpr double kReferenceFreqHz = 3e9;

struct SpecRow
{
    const char *name;
    Suite suite;
    double total_ginstr;   //!< stream length in 1e9 instructions
    double ipc;
    double burst_events;
    double within_gap;
    double sigma;
    double imul_fraction;
    double no_simd_delta;      //!< Table 4, i9-9900K row
    double no_simd_delta_amd;  //!< Table 4, 7700X row
    double efficient_share;
    double event_weight = 1.0; //!< trace thinning factor
};

WorkloadProfile
makeProfile(const SpecRow &row, const KindMix &mix)
{
    WorkloadProfile p;
    p.name = row.name;
    p.suite = row.suite;
    p.totalInstructions =
        static_cast<std::uint64_t>(row.total_ginstr * 1e9);
    p.ipc = row.ipc;
    p.bursts.meanBurstEvents = row.burst_events;
    p.bursts.meanWithinBurstGap = row.within_gap;
    const double instr_per_s = row.ipc * kReferenceFreqHz;
    const double overhead_instr =
        kReferenceOverheadSeconds * instr_per_s;
    // Reference thrash parameters (Table 7, fast-switching CPUs):
    // p_ts = 450 us look-back, boosted deadline (p_df - 1) * p_dl =
    // 390 us of extra conservative residency per burst.
    const double thrash_halfwindow = 225e-6 * instr_per_s;
    const double thrash_extra = 390e-6 * instr_per_s;
    p.bursts.calibrateToEfficientShare(row.efficient_share,
                                       overhead_instr, row.sigma,
                                       thrash_halfwindow,
                                       thrash_extra);
    p.imulFraction = row.imul_fraction;
    p.noSimdDelta = row.no_simd_delta;
    p.noSimdDeltaAmd = row.no_simd_delta_amd;
    p.targetEfficientShare = row.efficient_share;
    p.eventWeight = row.event_weight;
    p.kindMix = mix;
    return p;
}

std::vector<WorkloadProfile>
buildProfiles()
{
    // Columns: name, suite, Ginstr, IPC, burst events, within-burst
    // gap, log-normal sigma, IMUL fraction, no-SIMD delta (Table 4),
    // target efficient-curve share (Sec. 6.4 anchors: xz 97.1 %,
    // gcc 76.6 %, omnetpp 3.2 %; the rest interpolated to match the
    // Fig. 16 ordering).  Unlisted no-SIMD deltas default to the
    // suite means (intrate +0.5 %, fprate -4.1 %, all under the 5 %
    // reporting threshold of Table 4).
    const SpecRow rows[] = {
        // High efficient-share tier: rare, ~0.5 ms dense SIMD
        // phases (one trace event = 10 real faultable instructions).
        {"523.xalancbmk", Suite::SpecInt, 20, 1.8, 100, 20000, 0.8,
         0.0005, +0.005, +0.010, 0.960, 2},
        {"557.xz", Suite::SpecInt, 20, 1.2, 100, 20000, 0.8,
         0.0004, +0.005, +0.010, 0.971, 2},
        {"549.fotonik3d", Suite::SpecFp, 20, 1.6, 100, 20000, 0.8,
         0.0002, -0.035, -0.040, 0.950, 2},
        {"505.mcf", Suite::SpecInt, 20, 0.7, 100, 20000, 0.8,
         0.0005, +0.005, +0.010, 0.945, 2},
        {"531.deepsjeng", Suite::SpecInt, 20, 1.7, 100, 15000, 0.8,
         0.0008, +0.005, +0.010, 0.930, 2},
        {"548.exchange2", Suite::SpecInt, 20, 2.2, 75, 20000, 0.8,
         0.0006, +0.077, +0.068, 0.920, 2},
        {"519.lbm", Suite::SpecFp, 20, 1.1, 150, 20000, 0.9,
         0.0002, -0.035, -0.040, 0.910, 2},
        {"541.leela", Suite::SpecInt, 20, 1.5, 100, 15000, 0.8,
         0.0009, +0.005, +0.010, 0.900, 2},
        {"538.imagick", Suite::SpecFp, 20, 2.0, 150, 20000, 0.9,
         0.0006, -0.120, -0.090, 0.885, 2},
        // 525.x264: vector-dense phases and the highest IMUL share.
        // Most of x264's SIMD is outside the Table 1 set: few
        // trappable events per phase, no thinning.
        {"525.x264", Suite::SpecInt, 20, 2.1, 100, 30000, 0.9,
         0.0099, +0.070, +0.220, 0.870, 1},
        {"510.parest", Suite::SpecFp, 20, 1.6, 200, 20000, 0.9,
         0.0004, -0.035, -0.040, 0.840, 5},
        // 502.gcc: short phases spaced just outside the deadline —
        // the paper's worst performance case (-2.89 %).
        {"502.gcc", Suite::SpecInt, 15, 1.3, 100, 15000, 1.0,
         0.0012, +0.005, +0.010, 0.766, 5},
        {"508.namd", Suite::SpecFp, 15, 2.2, 250, 16000, 1.0,
         0.0003, -0.220, -0.350, 0.740, 5},
        {"526.blender", Suite::SpecFp, 15, 1.8, 250, 16000, 1.0,
         0.0007, -0.035, -0.040, 0.710, 5},
        {"511.povray", Suite::SpecFp, 10, 1.9, 300, 15000, 1.0,
         0.0008, -0.035, -0.040, 0.680, 5},
        {"507.cactuBSSN", Suite::SpecFp, 10, 1.4, 300, 16000, 1.0,
         0.0003, -0.035, -0.040, 0.650, 5},
        {"500.perlbench", Suite::SpecInt, 10, 1.7, 250, 12000, 1.0,
         0.0010, +0.005, +0.010, 0.620, 5},
        {"503.bwaves", Suite::SpecFp, 10, 1.5, 400, 15000, 1.0,
         0.0002, -0.035, -0.040, 0.580, 10},
        {"554.roms", Suite::SpecFp, 10, 1.5, 400, 15000, 1.0,
         0.0003, -0.033, -0.190, 0.540, 10},
        {"544.nab", Suite::SpecFp, 10, 1.8, 500, 14000, 1.0,
         0.0004, -0.035, -0.040, 0.480, 10},
        {"527.cam4", Suite::SpecFp, 5, 1.4, 500, 16000, 1.1,
         0.0005, -0.035, -0.040, 0.400, 10},
        // 520.omnetpp uses faultable SIMD near-continuously (3.2 %
        // on the efficient curve); long dense phases, thinned 20:1.
        {"520.omnetpp", Suite::SpecInt, 2, 0.9, 4000, 10000, 1.2,
         0.0006, +0.005, +0.010, 0.032, 20},
        {"521.wrf", Suite::SpecFp, 2, 1.3, 3000, 10000, 1.2,
         0.0004, -0.014, -0.053, 0.120, 20},
    };

    std::vector<WorkloadProfile> profiles;
    for (const SpecRow &row : rows) {
        const KindMix &mix =
            std::string(row.name) == "525.x264"
                ? x264Mix()
                : (row.suite == Suite::SpecInt ? specIntMix()
                                               : specFpMix());
        profiles.push_back(makeProfile(row, mix));
    }

    // Network workloads: long, dense AES streams (a wrk-saturated
    // HTTPS server / a video stream) separated by heavy-tailed
    // protocol/compute gaps (Figs. 5, 7).  One real AES instruction
    // every ~15 instructions inside a burst; thinned 100:1.  Long
    // bursts mean the fV strategy rides them out at CV (Fig. 6).
    const SpecRow nginx_row = {"Nginx", Suite::Network, 2, 1.4,
                               2000, 1500, 2.0, 0.0005, 0.0, 0.0,
                               0.360, 100};
    profiles.push_back(makeProfile(nginx_row, cryptoMix()));

    const SpecRow vlc_row = {"VLC", Suite::Network, 1, 1.3,
                             5000, 1500, 2.0, 0.0004, 0.0, 0.0,
                             0.330, 100};
    profiles.push_back(makeProfile(vlc_row, cryptoMix()));

    return profiles;
}

} // namespace

const std::vector<WorkloadProfile> &
allProfiles()
{
    static const std::vector<WorkloadProfile> profiles = buildProfiles();
    return profiles;
}

std::vector<WorkloadProfile>
specProfiles()
{
    std::vector<WorkloadProfile> out;
    for (const WorkloadProfile &p : allProfiles()) {
        if (p.suite != Suite::Network)
            out.push_back(p);
    }
    return out;
}

const WorkloadProfile &
profileByName(const std::string &name)
{
    for (const WorkloadProfile &p : allProfiles()) {
        if (p.name == name)
            return p;
    }
    suit::util::fatal("unknown workload profile '%s'", name.c_str());
}

bool
hasProfile(const std::string &name)
{
    for (const WorkloadProfile &p : allProfiles()) {
        if (p.name == name)
            return true;
    }
    return false;
}

const WorkloadProfile &
nginxProfile()
{
    return profileByName("Nginx");
}

const WorkloadProfile &
vlcProfile()
{
    return profileByName("VLC");
}

double
imulLatencyOverhead(double imul_fraction)
{
    SUIT_ASSERT(imul_fraction >= 0.0 && imul_fraction <= 1.0,
                "IMUL fraction out of range: %f", imul_fraction);
    // Super-linear absorption model: out-of-order execution hides the
    // extra IMUL cycle at low densities.  Anchored to the paper's
    // gem5 data (and this project's uarch reproduction, Fig. 14):
    // 0.99 % IMUL -> 1.60 % slowdown, 0.07 % IMUL -> 0.03 %.
    constexpr double kAnchorFraction = 0.0099;
    constexpr double kAnchorSlowdown = 0.016;
    constexpr double kExponent = 1.5;
    return kAnchorSlowdown *
           std::pow(imul_fraction / kAnchorFraction, kExponent);
}

} // namespace suit::trace
