#include "trace/generator.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace suit::trace {

using suit::isa::FaultableKind;
using suit::isa::kNumFaultableKinds;
using suit::util::Rng;

namespace {

/** FNV-1a, to fold the profile name into the seed. */
std::uint64_t
hashName(const std::string &name)
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (char c : name) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        h *= 0x100000001B3ULL;
    }
    return h;
}

FaultableKind
sampleKind(const std::array<double, kNumFaultableKinds> &mix, Rng &rng)
{
    double u = rng.nextDouble();
    for (std::size_t i = 0; i < kNumFaultableKinds; ++i) {
        u -= mix[i];
        if (u < 0.0)
            return static_cast<FaultableKind>(i);
    }
    // Numerical leftovers land on the last kind with weight.
    for (std::size_t i = kNumFaultableKinds; i-- > 0;) {
        if (mix[i] > 0.0)
            return static_cast<FaultableKind>(i);
    }
    SUIT_PANIC("kind mix has no positive weight");
}

} // namespace

TraceGenerator::TraceGenerator(std::uint64_t seed) : seed_(seed) {}

Trace
TraceGenerator::generate(const WorkloadProfile &profile,
                         int stream_id) const
{
    Rng rng(seed_ ^ hashName(profile.name) ^
            (static_cast<std::uint64_t>(stream_id) * 0x9E3779B9ULL));

    const BurstModel &bm = profile.bursts;
    SUIT_ASSERT(bm.meanBurstEvents >= 1.0,
                "profile '%s': burst must contain at least one event",
                profile.name.c_str());

    std::vector<FaultableEvent> events;
    // A loose reservation; heavy-tailed gaps make the count vary.
    const double expected_cycle =
        bm.meanInterBurstGap() +
        bm.meanBurstEvents * bm.meanWithinBurstGap;
    events.reserve(static_cast<std::size_t>(std::min(
        4e6, static_cast<double>(profile.totalInstructions) /
                 expected_cycle * bm.meanBurstEvents * 1.3)));

    std::uint64_t consumed = 0; // instructions emitted so far
    const std::uint64_t total = profile.totalInstructions;
    const double continue_p = 1.0 - 1.0 / bm.meanBurstEvents;

    while (true) {
        // Inter-burst gap (log-normal, at least one instruction).
        const double gap_d = rng.nextLogNormal(bm.interBurstGapLogMean,
                                               bm.interBurstGapLogSigma);
        std::uint64_t gap =
            std::max<std::uint64_t>(1, static_cast<std::uint64_t>(gap_d));
        if (consumed + gap + 1 > total)
            break;

        // Burst: geometric number of events with small internal gaps.
        bool first = true;
        do {
            if (!first) {
                const double wg = std::max(
                    1.0,
                    rng.nextExponential(bm.meanWithinBurstGap));
                gap = static_cast<std::uint64_t>(wg);
                if (consumed + gap + 1 > total)
                    break;
            }
            events.push_back({gap, sampleKind(profile.kindMix, rng)});
            consumed += gap + 1;
            first = false;
        } while (rng.nextBool(continue_p));

        if (consumed >= total)
            break;
        if (events.size() >= 4'000'000) {
            suit::util::warn(
                "trace '%s' truncated at %zu events "
                "(%.1f%% of the stream)",
                profile.name.c_str(), events.size(),
                100.0 * static_cast<double>(consumed) /
                    static_cast<double>(total));
            break;
        }
    }

    return Trace(profile.name, total, profile.ipc, std::move(events),
                 profile.eventWeight);
}

} // namespace suit::trace
