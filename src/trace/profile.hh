/**
 * @file
 * Workload profiles (paper Sec. 5.1 and 6.2).
 *
 * The paper drives its evaluation with QEMU-recorded traces of the
 * 23 SPEC CPU2017 benchmarks plus an Nginx HTTPS server and VLC
 * streaming over HTTPS.  Neither SPEC nor the recorded traces are
 * redistributable, so this module carries *profiles*: per-workload
 * statistical models (instruction count, IPC, burst/gap process of
 * the faultable instructions, IMUL density, no-SIMD overhead) that
 * the TraceGenerator turns into synthetic traces.
 *
 * Each profile is calibrated against the per-workload behaviour the
 * paper reports — primarily the fraction of time the workload lets
 * SUIT stay on the efficient DVFS curve under the reference
 * configuration (CPU C, fV strategy, -97 mV, 30 us deadline): e.g.
 * 97.1 % for 557.xz, 76.6 % for 502.gcc, 3.2 % for 520.omnetpp
 * (paper Sec. 6.4) — plus Table 4's no-SIMD overheads and the IMUL
 * densities of Sec. 6.1.
 */

#ifndef SUIT_TRACE_PROFILE_HH
#define SUIT_TRACE_PROFILE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/faultable.hh"

namespace suit::trace {

/** Which benchmark family a workload belongs to. */
enum class Suite
{
    SpecInt,  //!< SPEC CPU2017 intrate
    SpecFp,   //!< SPEC CPU2017 fprate
    Network,  //!< Nginx / VLC client-server workloads
};

/** Printable suite name. */
const char *toString(Suite suite);

/**
 * Two-level burst/gap renewal process of faultable instructions.
 *
 * Programs use faultable instructions in bursts (e.g. one burst per
 * TLS record, Fig. 5): a burst is a run of events separated by small
 * within-burst gaps; bursts are separated by large, heavy-tailed
 * (log-normal) gaps.
 */
struct BurstModel
{
    /** Mean faultable events per burst (geometric distribution). */
    double meanBurstEvents = 1.0;
    /** Mean instruction gap between events inside a burst. */
    double meanWithinBurstGap = 100.0;
    /** mu of the log-normal inter-burst gap (in ln instructions). */
    double interBurstGapLogMean = 0.0;
    /** sigma of the log-normal inter-burst gap. */
    double interBurstGapLogSigma = 1.0;

    /** Mean inter-burst gap in instructions, exp(mu + sigma^2/2). */
    double meanInterBurstGap() const;

    /**
     * Closed-form estimate of the time share on the efficient curve
     * for this burst process under a reference off-curve overhead of
     * @p overhead_instr instructions per burst (deadline window plus
     * curve switches): only the part of each log-normal inter-burst
     * gap beyond the overhead is spent on the efficient curve.
     */
    double expectedEfficientShare(double overhead_instr) const;

    /**
     * Configure the inter-burst gap so that the workload spends
     * approximately @p efficient_share of its time on the efficient
     * curve under the reference configuration.
     *
     * @param efficient_share target fraction in (0, 1).
     * @param overhead_instr instructions "lost" per burst to the
     *        deadline window and curve switches under the reference
     *        configuration.
     * @param sigma log-normal spread to use.
     * @param thrash_halfwindow_instr half of the thrash-detection
     *        look-back window (p_ts/2) in instructions; gaps shorter
     *        than this cluster exceptions and trigger thrashing
     *        prevention.  0 disables the correction.
     * @param thrash_extra_instr additional off-curve residency per
     *        burst while the deadline is stretched ((p_df-1) * p_dl
     *        in instructions).
     */
    void calibrateToEfficientShare(double efficient_share,
                                   double overhead_instr, double sigma,
                                   double thrash_halfwindow_instr = 0.0,
                                   double thrash_extra_instr = 0.0);
};

/** Statistical description of one workload. */
struct WorkloadProfile
{
    /** Benchmark name (e.g. "557.xz", "Nginx"). */
    std::string name;
    /** Benchmark family. */
    Suite suite = Suite::SpecInt;
    /** Length of the synthesised stream in instructions. */
    std::uint64_t totalInstructions = 0;
    /** Average IPC on the reference machine. */
    double ipc = 1.5;
    /** Faultable-instruction burst process. */
    BurstModel bursts;
    /** Fraction of all instructions that are IMUL (Sec. 6.1). */
    double imulFraction = 0.0007;
    /**
     * Score change when compiled without SSE/AVX (Table 4, i9-9900K
     * row); negative means slower without SIMD.
     */
    double noSimdDelta = 0.0;
    /** Same, measured on the 7700X (Table 4's second row). */
    double noSimdDeltaAmd = 0.0;

    /** No-SIMD delta for the given machine family. */
    double noSimdFor(bool amd) const
    {
        return amd ? noSimdDeltaAmd : noSimdDelta;
    }

    /**
     * Trace-thinning factor: one trace event stands for this many
     * consecutive real faultable instructions.  Dense workloads
     * (AES streams, 520.omnetpp) would otherwise need tens of
     * millions of events; thinning preserves the burst/gap structure
     * (thinned within-burst gaps stay far below the deadline) while
     * the emulation cost is charged per *real* instruction, i.e.
     * multiplied by this weight.
     */
    double eventWeight = 1.0;
    /**
     * Calibration target: share of time on the efficient curve under
     * the reference configuration (documentation of the calibration;
     * the generator reproduces it through the burst model).
     */
    double targetEfficientShare = 0.5;
    /** Distribution over faultable kinds for the trace events. */
    std::array<double, suit::isa::kNumFaultableKinds> kindMix{};
};

/** All 23 SPEC CPU2017 profiles plus Nginx and VLC, in Fig. 16 order. */
const std::vector<WorkloadProfile> &allProfiles();

/** Only the SPEC CPU2017 profiles. */
std::vector<WorkloadProfile> specProfiles();

/** Look up a profile by name; fatal() if absent. */
const WorkloadProfile &profileByName(const std::string &name);

/** Whether a profile with the given name exists. */
bool hasProfile(const std::string &name);

/** The Nginx HTTPS-serving profile (AES bursts per request). */
const WorkloadProfile &nginxProfile();

/** The VLC HTTPS-streaming profile (AES bursts per segment). */
const WorkloadProfile &vlcProfile();

/**
 * Analytic estimate of the slowdown caused by the 4-cycle IMUL
 * (paper Sec. 6.1): out-of-order execution absorbs the extra cycle
 * almost completely at typical densities (0.03 % at the 0.07 %
 * average IMUL density) but not for IMUL-heavy code (1.60 % for
 * 525.x264 at 0.99 %).  Calibrated against the gem5-style study that
 * bench/fig14_imul_latency reproduces with the uarch model.
 *
 * @param imul_fraction fraction of instructions that are IMUL.
 * @return fractional slowdown (e.g. 0.016 for 1.6 %).
 */
double imulLatencyOverhead(double imul_fraction);

} // namespace suit::trace

#endif // SUIT_TRACE_PROFILE_HH
