/**
 * @file
 * Synthetic trace generation.
 *
 * Standing in for the QEMU plugin of paper Sec. 5.1: expands a
 * WorkloadProfile's burst/gap process into a concrete Trace.  Fully
 * deterministic given (profile, seed) so every experiment is
 * reproducible.
 */

#ifndef SUIT_TRACE_GENERATOR_HH
#define SUIT_TRACE_GENERATOR_HH

#include <cstdint>

#include "trace/profile.hh"
#include "trace/trace.hh"

namespace suit::trace {

/** Expands workload profiles into concrete traces. */
class TraceGenerator
{
  public:
    /** @param seed root seed; combined with the profile name. */
    explicit TraceGenerator(std::uint64_t seed = 1);

    /**
     * Generate a trace for @p profile.
     *
     * @param profile workload description.
     * @param stream_id distinguishes multiple independent streams of
     *        the same workload (SPEC-rate style copies pinned to
     *        different cores, paper Sec. 6.2).
     */
    Trace generate(const WorkloadProfile &profile,
                   int stream_id = 0) const;

  private:
    std::uint64_t seed_;
};

} // namespace suit::trace

#endif // SUIT_TRACE_GENERATOR_HH
