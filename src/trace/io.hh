/**
 * @file
 * Trace serialization.
 *
 * Two interchange formats so users can plug their own recordings
 * (e.g. from a QEMU plugin like the paper's, Sec. 5.1) into the
 * simulator, and ship generated traces between machines:
 *
 *  - text (.sft): line-oriented, diff-able, self-describing;
 *  - binary (.sfb): compact varint encoding, ~5 bytes/event.
 *
 * Text format:
 *     suit-trace v1
 *     name <workload>
 *     instructions <total>
 *     ipc <ipc>
 *     weight <event weight>
 *     events <count>
 *     <gap> <MNEMONIC>
 *     ...
 */

#ifndef SUIT_TRACE_IO_HH
#define SUIT_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "trace/trace.hh"

namespace suit::trace {

/** Write a trace in the text format. */
void writeText(const Trace &trace, std::ostream &os);

/** Parse a text-format trace; fatal() on malformed input. */
Trace readText(std::istream &is);

/** Write a trace in the binary format. */
void writeBinary(const Trace &trace, std::ostream &os);

/** Parse a binary-format trace; fatal() on malformed input. */
Trace readBinary(std::istream &is);

/**
 * Save to a file, choosing the format from the extension
 * (".sft" text, ".sfb" binary).
 */
void saveTrace(const Trace &trace, const std::string &path);

/** Load from a file, choosing the format from the extension. */
Trace loadTrace(const std::string &path);

} // namespace suit::trace

#endif // SUIT_TRACE_IO_HH
