#include "trace/io.hh"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace suit::trace {

using suit::util::fatal;

namespace {

constexpr char kTextMagic[] = "suit-trace v1";
constexpr std::uint32_t kBinaryMagic = 0x53465431; // "SFT1"

/** LEB128-style varint encoding. */
void
writeVarint(std::ostream &os, std::uint64_t v)
{
    while (v >= 0x80) {
        os.put(static_cast<char>((v & 0x7F) | 0x80));
        v >>= 7;
    }
    os.put(static_cast<char>(v));
}

std::uint64_t
readVarint(std::istream &is)
{
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
        const int c = is.get();
        if (c == EOF)
            fatal("trace stream truncated inside a varint");
        v |= static_cast<std::uint64_t>(c & 0x7F) << shift;
        if (!(c & 0x80))
            return v;
        shift += 7;
        if (shift > 63)
            fatal("trace stream contains an oversized varint");
    }
}

void
writeU32(std::ostream &os, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        os.put(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint32_t
readU32(std::istream &is)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        const int c = is.get();
        if (c == EOF)
            fatal("trace stream truncated in a fixed field");
        v |= static_cast<std::uint32_t>(c) << (8 * i);
    }
    return v;
}

} // namespace

void
writeText(const Trace &trace, std::ostream &os)
{
    os << kTextMagic << '\n';
    os << "name " << trace.name() << '\n';
    os << "instructions " << trace.totalInstructions() << '\n';
    os << "ipc " << trace.ipc() << '\n';
    os << "weight " << trace.eventWeight() << '\n';
    os << "events " << trace.eventCount() << '\n';
    for (const FaultableEvent &e : trace.events())
        os << e.gap << ' ' << suit::isa::toString(e.kind) << '\n';
}

Trace
readText(std::istream &is)
{
    std::string line;
    if (!std::getline(is, line) || line != kTextMagic)
        fatal("not a suit-trace text file (bad magic '%s')",
              line.c_str());

    std::string name;
    std::uint64_t total = 0;
    double ipc = 0.0, weight = 1.0;
    std::uint64_t count = 0;
    for (int i = 0; i < 5; ++i) {
        if (!std::getline(is, line))
            fatal("trace header truncated");
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "name")
            ls >> name;
        else if (key == "instructions")
            ls >> total;
        else if (key == "ipc")
            ls >> ipc;
        else if (key == "weight")
            ls >> weight;
        else if (key == "events")
            ls >> count;
        else
            fatal("unknown trace header field '%s'", key.c_str());
        if (ls.fail())
            fatal("malformed trace header line '%s'", line.c_str());
    }

    std::vector<FaultableEvent> events;
    events.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t gap = 0;
        std::string mnemonic;
        if (!(is >> gap >> mnemonic))
            fatal("trace events truncated at %llu of %llu",
                  static_cast<unsigned long long>(i),
                  static_cast<unsigned long long>(count));
        events.push_back(
            {gap, suit::isa::faultableKindFromString(mnemonic)});
    }
    return Trace(name, total, ipc, std::move(events), weight);
}

void
writeBinary(const Trace &trace, std::ostream &os)
{
    writeU32(os, kBinaryMagic);
    writeVarint(os, trace.name().size());
    os.write(trace.name().data(),
             static_cast<std::streamsize>(trace.name().size()));
    writeVarint(os, trace.totalInstructions());
    // IPC and weight as fixed-point milli-units.
    writeVarint(os, static_cast<std::uint64_t>(trace.ipc() * 1000.0 +
                                               0.5));
    writeVarint(os, static_cast<std::uint64_t>(
                        trace.eventWeight() * 1000.0 + 0.5));
    writeVarint(os, trace.eventCount());
    for (const FaultableEvent &e : trace.events()) {
        writeVarint(os, e.gap);
        os.put(static_cast<char>(e.kind));
    }
}

Trace
readBinary(std::istream &is)
{
    if (readU32(is) != kBinaryMagic)
        fatal("not a suit-trace binary file (bad magic)");
    const std::uint64_t name_len = readVarint(is);
    if (name_len > 4096)
        fatal("trace name is implausibly long");
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    if (!is)
        fatal("trace stream truncated in the name");
    const std::uint64_t total = readVarint(is);
    const double ipc =
        static_cast<double>(readVarint(is)) / 1000.0;
    const double weight =
        static_cast<double>(readVarint(is)) / 1000.0;
    const std::uint64_t count = readVarint(is);

    std::vector<FaultableEvent> events;
    events.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t gap = readVarint(is);
        const int kind = is.get();
        if (kind == EOF)
            fatal("trace events truncated");
        if (kind < 0 ||
            kind >= static_cast<int>(suit::isa::kNumFaultableKinds))
            fatal("trace contains unknown instruction id %d", kind);
        events.push_back(
            {gap, static_cast<suit::isa::FaultableKind>(kind)});
    }
    return Trace(name, total, ipc, std::move(events), weight);
}

namespace {

bool
hasSuffix(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

} // namespace

void
saveTrace(const Trace &trace, const std::string &path)
{
    const bool binary = hasSuffix(path, ".sfb");
    if (!binary && !hasSuffix(path, ".sft"))
        fatal("trace path '%s' must end in .sft (text) or .sfb "
              "(binary)",
              path.c_str());
    std::ofstream os(path,
                     binary ? std::ios::binary : std::ios::out);
    if (!os)
        fatal("cannot open '%s' for writing", path.c_str());
    if (binary)
        writeBinary(trace, os);
    else
        writeText(trace, os);
    if (!os)
        fatal("write to '%s' failed", path.c_str());
}

Trace
loadTrace(const std::string &path)
{
    const bool binary = hasSuffix(path, ".sfb");
    if (!binary && !hasSuffix(path, ".sft"))
        fatal("trace path '%s' must end in .sft (text) or .sfb "
              "(binary)",
              path.c_str());
    std::ifstream is(path, binary ? std::ios::binary : std::ios::in);
    if (!is)
        fatal("cannot open '%s'", path.c_str());
    return binary ? readBinary(is) : readText(is);
}

} // namespace suit::trace
