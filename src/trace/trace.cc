#include "trace/trace.hh"

#include <algorithm>

#include "util/logging.hh"

namespace suit::trace {

Trace::Trace(std::string name, std::uint64_t total_instructions,
             double ipc, std::vector<FaultableEvent> events,
             double event_weight)
    : name_(std::move(name)), totalInstructions_(total_instructions),
      ipc_(ipc), eventWeight_(event_weight),
      events_(std::move(events))
{
    SUIT_ASSERT(ipc_ > 0.0, "trace '%s' needs a positive IPC",
                name_.c_str());
    SUIT_ASSERT(eventWeight_ >= 1.0,
                "trace '%s' needs a weight >= 1", name_.c_str());
    prefixIndex_.reserve(events_.size());
    std::uint64_t pos = 0;
    for (const FaultableEvent &e : events_) {
        pos += e.gap;
        prefixIndex_.push_back(pos);
        ++pos; // the faultable instruction itself
    }
    SUIT_ASSERT(pos <= totalInstructions_,
                "trace '%s': events (%llu instrs) exceed stream length "
                "(%llu)",
                name_.c_str(), static_cast<unsigned long long>(pos),
                static_cast<unsigned long long>(totalInstructions_));
}

double
Trace::faultableRate() const
{
    if (totalInstructions_ == 0)
        return 0.0;
    return static_cast<double>(events_.size()) /
           static_cast<double>(totalInstructions_);
}

std::uint64_t
Trace::tailInstructions() const
{
    if (events_.empty())
        return totalInstructions_;
    const std::uint64_t last_index = prefixIndex_.back();
    SUIT_ASSERT(last_index < totalInstructions_,
                "trace '%s' is inconsistent: last event at index %llu "
                "but the stream is only %llu instructions long",
                name_.c_str(),
                static_cast<unsigned long long>(last_index),
                static_cast<unsigned long long>(totalInstructions_));
    return totalInstructions_ - last_index - 1;
}

std::uint64_t
Trace::eventIndex(std::size_t i) const
{
    SUIT_ASSERT(i < prefixIndex_.size(), "event index %zu out of range",
                i);
    return prefixIndex_[i];
}

TraceStats
TraceStats::compute(const Trace &trace)
{
    TraceStats s;
    double gap_sum = 0.0;
    for (const FaultableEvent &e : trace.events()) {
        s.gapHistogram.add(e.gap);
        ++s.kindCounts[static_cast<std::size_t>(e.kind)];
        gap_sum += static_cast<double>(e.gap);
        s.maxGap = std::max(s.maxGap, e.gap);
    }
    if (!trace.events().empty())
        s.meanGap = gap_sum / static_cast<double>(trace.eventCount());
    return s;
}

} // namespace suit::trace
