/**
 * @file
 * Instruction-trace representation (paper Sec. 5.1).
 *
 * The paper records, via a QEMU plugin, *when* the faultable
 * instructions occur within a program's instruction stream; all other
 * instructions only matter in aggregate (their count and IPC).  A
 * Trace therefore stores the faultable events as (gap, kind) pairs —
 * the gap being the number of ordinary instructions since the
 * previous faultable one — plus the stream's total length and
 * measured IPC.  This is exactly the information the paper's
 * event-based evaluation consumes, and it compresses billions of
 * instructions into a few thousand events.
 */

#ifndef SUIT_TRACE_TRACE_HH
#define SUIT_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/faultable.hh"
#include "util/stats.hh"

namespace suit::trace {

/** One faultable-instruction occurrence in a trace. */
struct FaultableEvent
{
    /** Ordinary instructions executed since the previous event. */
    std::uint64_t gap = 0;
    /** Which faultable instruction occurred. */
    suit::isa::FaultableKind kind = suit::isa::FaultableKind::IMUL;
};

/** A recorded (or synthesised) instruction stream. */
class Trace
{
  public:
    Trace() = default;

    /**
     * @param name workload label.
     * @param total_instructions stream length including the events.
     * @param ipc average retired instructions per cycle, used to
     *        convert instruction counts to cycles (the paper uses the
     *        INSTRUCTIONS_RETIRED counter for the same purpose).
     * @param events faultable occurrences in stream order.
     * @param event_weight trace-thinning factor: how many real
     *        faultable instructions each event stands for.
     */
    Trace(std::string name, std::uint64_t total_instructions, double ipc,
          std::vector<FaultableEvent> events,
          double event_weight = 1.0);

    /** Workload label. */
    const std::string &name() const { return name_; }
    /** Total instruction count of the stream. */
    std::uint64_t totalInstructions() const { return totalInstructions_; }
    /** Average IPC of the stream. */
    double ipc() const { return ipc_; }
    /** The faultable events in stream order. */
    const std::vector<FaultableEvent> &events() const { return events_; }

    /** Real faultable instructions represented by one event. */
    double eventWeight() const { return eventWeight_; }

    /** Number of faultable events. */
    std::size_t eventCount() const { return events_.size(); }

    /** Faultable instructions per executed instruction. */
    double faultableRate() const;

    /**
     * Absolute instruction index of event @p i (0-based position in
     * the stream).
     */
    std::uint64_t eventIndex(std::size_t i) const;

    /**
     * Ordinary instructions after the last faultable event (the tail
     * the simulator drains once every event is consumed).  Panics —
     * instead of wrapping around to ~2^64 — on an inconsistent trace
     * whose last event index reaches past totalInstructions(); the
     * constructor rejects such traces, so tripping this means the
     * trace was corrupted after construction.
     */
    std::uint64_t tailInstructions() const;

    /**
     * Approximate heap footprint of this trace (object header plus
     * event and prefix-index storage).  Drives the trace cache's LRU
     * byte accounting.
     */
    std::size_t memoryBytes() const
    {
        return sizeof(Trace) + name_.capacity() +
               events_.capacity() * sizeof(FaultableEvent) +
               prefixIndex_.capacity() * sizeof(std::uint64_t);
    }

  private:
    friend class TraceTestPeer; //!< test-only corruption hook
    std::string name_;
    std::uint64_t totalInstructions_ = 0;
    double ipc_ = 1.0;
    double eventWeight_ = 1.0;
    std::vector<FaultableEvent> events_;
    std::vector<std::uint64_t> prefixIndex_; //!< cumulative positions
};

/** Aggregate statistics over a trace (drives Figs. 5 and 7). */
struct TraceStats
{
    /** Gap sizes bucketed by decade. */
    suit::util::LogHistogram gapHistogram{12};
    /** Occurrences per faultable kind. */
    std::array<std::uint64_t, suit::isa::kNumFaultableKinds>
        kindCounts{};
    /** Mean gap between faultable events. */
    double meanGap = 0.0;
    /** Largest observed gap. */
    std::uint64_t maxGap = 0;

    /** Compute the statistics of a trace. */
    static TraceStats compute(const Trace &trace);
};

} // namespace suit::trace

#endif // SUIT_TRACE_TRACE_HH
