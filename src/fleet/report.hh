/**
 * @file
 * Headline TCO/energy reporting of a fleet run.
 *
 * Turns the merged FleetAccumulator of a run into the numbers a
 * capacity planner asks for: package kW before/after SUIT, the saved
 * power scaled by the data-center PUE into MWh/year and $/year, the
 * mean performance cost, and the slowdown tail (p50/p99) from the
 * per-domain histogram.
 *
 * Two renderings share the arithmetic: a human table (stdout of
 * suit_fleet) and a machine JSON document with schema
 * "suit-fleet-report-v1" (one key per line, so checkReportJson() and
 * CI can validate it without a JSON parser).  JSON numbers are
 * printed with round-trip precision — two runs with bit-identical
 * aggregates render byte-identical documents, which is how the
 * determinism tests compare fleets across worker counts.
 */

#ifndef SUIT_FLEET_REPORT_HH
#define SUIT_FLEET_REPORT_HH

#include <string>

#include "fleet/accumulator.hh"
#include "fleet/spec.hh"
#include "obs/validate.hh"

namespace suit::fleet {

/** Derived headline numbers (shared by both renderings). */
struct ReportSummary
{
    /** Domains aggregated. */
    std::uint64_t domains = 0;
    /** Conservative-baseline package power of the fleet (kW). */
    double kwBefore = 0.0;
    /** Package power under SUIT (kW). */
    double kwAfter = 0.0;
    /** kwBefore - kwAfter. */
    double kwSaved = 0.0;
    /** Saved facility energy per year, PUE-scaled (MWh). */
    double mwhPerYear = 0.0;
    /** Saved cost per year at the spec's electricity price (USD). */
    double usdPerYear = 0.0;
    /** Mean per-domain performance delta (percent; < 0 = slowdown). */
    double meanPerfDeltaPct = 0.0;
    /** Mean share of time on the efficient curve (percent). */
    double meanEfficientSharePct = 0.0;
    /** #DO exceptions across the fleet. */
    std::uint64_t doTraps = 0;
    /** #DO exceptions per simulated core-second. */
    double doRatePerS = 0.0;
    /** Median per-domain slowdown (percent). */
    double slowdownP50Pct = 0.0;
    /** 99th-percentile per-domain slowdown (percent). */
    double slowdownP99Pct = 0.0;

    /** Compute the summary of @p totals under @p spec. */
    static ReportSummary of(const FleetSpec &spec,
                            const FleetAccumulator &totals);
};

/**
 * Render the human-readable report: a per-rack table plus the
 * headline TCO lines.  @p totals must have one rack slot per spec
 * rack (asserted).
 */
std::string renderReportTable(const FleetSpec &spec,
                              const FleetAccumulator &totals);

/** Render the "suit-fleet-report-v1" JSON document. */
std::string renderReportJson(const FleetSpec &spec,
                             const FleetAccumulator &totals);

/**
 * Structurally validate a report document: schema marker, every
 * headline key, and one rack object per entry of the racks array.
 * CheckResult::names collects the rack names; entries counts them.
 */
suit::obs::CheckResult checkReportJson(const std::string &doc);

} // namespace suit::fleet

#endif // SUIT_FLEET_REPORT_HH
