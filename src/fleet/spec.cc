#include "fleet/spec.hh"

#include <algorithm>
#include <cstdio>
#include <set>

#include "exec/checkpoint.hh"
#include "trace/profile.hh"
#include "util/args.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace suit::fleet {

namespace {

using suit::core::StrategyKind;

/** Strategy name -> kind; throws SpecError on an unknown name. */
StrategyKind
strategyByName(const std::string &name, int line)
{
    if (name == "e" || name == "emulation")
        return StrategyKind::Emulation;
    if (name == "f" || name == "frequency")
        return StrategyKind::Frequency;
    if (name == "V" || name == "voltage")
        return StrategyKind::Voltage;
    if (name == "fV" || name == "combined")
        return StrategyKind::CombinedFv;
    if (name == "hybrid" || name == "e+fV")
        return StrategyKind::Hybrid;
    throw SpecError(suit::util::sformat(
        "line %d: unknown strategy '%s' (e, f, V, fV, hybrid)", line,
        name.c_str()));
}

/** Split on @p sep, dropping empty items. */
std::vector<std::string>
splitOn(const std::string &value, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= value.size()) {
        const std::size_t pos = value.find(sep, start);
        const std::string item =
            value.substr(start, pos == std::string::npos
                                    ? std::string::npos
                                    : pos - start);
        if (!item.empty())
            out.push_back(item);
        if (pos == std::string::npos)
            break;
        start = pos + 1;
    }
    return out;
}

/** Whitespace-separated tokens of one line. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < line.size()) {
        while (i < line.size() &&
               (line[i] == ' ' || line[i] == '\t'))
            ++i;
        std::size_t j = i;
        while (j < line.size() && line[j] != ' ' && line[j] != '\t')
            ++j;
        if (j > i)
            out.push_back(line.substr(i, j - i));
        i = j;
    }
    return out;
}

double
parseDoubleOr(const std::string &text, int line, const char *what)
{
    double value = 0.0;
    if (suit::util::tryParseDouble(text, value) !=
        suit::util::ParseStatus::Ok)
        throw SpecError(suit::util::sformat(
            "line %d: %s expects a number, got '%s'", line, what,
            text.c_str()));
    return value;
}

std::uint64_t
parseCountOr(const std::string &text, int line, const char *what)
{
    long value = 0;
    if (suit::util::tryParseLong(text, value) !=
            suit::util::ParseStatus::Ok ||
        value < 1)
        throw SpecError(suit::util::sformat(
            "line %d: %s expects a positive integer, got '%s'", line,
            what, text.c_str()));
    return static_cast<std::uint64_t>(value);
}

/** Verify @p cpu is a known model name. */
void
checkCpuName(const std::string &cpu, int line)
{
    if (cpu != "A" && cpu != "B" && cpu != "C" && cpu != "i5")
        throw SpecError(suit::util::sformat(
            "line %d: unknown CPU '%s' (use A, B, C or i5)", line,
            cpu.c_str()));
}

/** Parse one `rack <name> key=value ...` line. */
RackSpec
parseRack(const std::vector<std::string> &tokens, int line)
{
    if (tokens.size() < 2)
        throw SpecError(suit::util::sformat(
            "line %d: rack needs a name ('rack <name> key=value "
            "...')",
            line));
    RackSpec rack;
    rack.name = tokens[1];
    bool saw_domains = false;
    bool saw_workloads = false;
    for (std::size_t t = 2; t < tokens.size(); ++t) {
        const std::string &tok = tokens[t];
        const std::size_t eq = tok.find('=');
        if (eq == std::string::npos || eq == 0)
            throw SpecError(suit::util::sformat(
                "line %d: expected key=value, got '%s'", line,
                tok.c_str()));
        const std::string key = tok.substr(0, eq);
        const std::string value = tok.substr(eq + 1);
        if (key == "cpu") {
            checkCpuName(value, line);
            rack.cpu = value;
        } else if (key == "domains") {
            rack.domains = parseCountOr(value, line, "domains");
            saw_domains = true;
        } else if (key == "cores") {
            const std::uint64_t cores =
                parseCountOr(value, line, "cores");
            if (cores > 64)
                throw SpecError(suit::util::sformat(
                    "line %d: cores=%llu is not a plausible "
                    "per-domain core count",
                    line,
                    static_cast<unsigned long long>(cores)));
            rack.cores = static_cast<int>(cores);
        } else if (key == "workloads") {
            rack.workloads.clear();
            for (const std::string &item : splitOn(value, ',')) {
                TenantMix mix;
                const std::size_t colon = item.find(':');
                mix.workload = item.substr(0, colon);
                if (colon != std::string::npos)
                    mix.weight = parseDoubleOr(
                        item.substr(colon + 1), line,
                        "workload weight");
                if (!(mix.weight > 0.0))
                    throw SpecError(suit::util::sformat(
                        "line %d: workload weight for '%s' must be "
                        "> 0",
                        line, mix.workload.c_str()));
                if (!suit::trace::hasProfile(mix.workload))
                    throw SpecError(suit::util::sformat(
                        "line %d: unknown workload '%s'", line,
                        mix.workload.c_str()));
                rack.workloads.push_back(std::move(mix));
            }
            if (rack.workloads.empty())
                throw SpecError(suit::util::sformat(
                    "line %d: workloads list is empty", line));
            saw_workloads = true;
        } else if (key == "strategy") {
            rack.strategies.clear();
            rack.strategyNames.clear();
            for (const std::string &name : splitOn(value, ',')) {
                rack.strategies.push_back(
                    strategyByName(name, line));
                rack.strategyNames.push_back(name);
            }
            if (rack.strategies.empty())
                throw SpecError(suit::util::sformat(
                    "line %d: strategy list is empty", line));
        } else if (key == "offset") {
            rack.offsetsMv.clear();
            for (const std::string &item : splitOn(value, ',')) {
                const double mv =
                    parseDoubleOr(item, line, "offset");
                if (mv > 0.0)
                    throw SpecError(suit::util::sformat(
                        "line %d: offsets are undervolts and must "
                        "be <= 0 mV, got %g",
                        line, mv));
                rack.offsetsMv.push_back(mv);
            }
            if (rack.offsetsMv.empty())
                throw SpecError(suit::util::sformat(
                    "line %d: offset list is empty", line));
        } else if (key == "variants") {
            const std::uint64_t variants =
                parseCountOr(value, line, "variants");
            if (variants > 256)
                throw SpecError(suit::util::sformat(
                    "line %d: variants=%llu exceeds the 256 trace "
                    "variants a rack may hold",
                    line,
                    static_cast<unsigned long long>(variants)));
            rack.traceVariants = static_cast<int>(variants);
        } else {
            throw SpecError(suit::util::sformat(
                "line %d: unknown rack key '%s'", line,
                key.c_str()));
        }
    }
    if (!saw_domains)
        throw SpecError(suit::util::sformat(
            "line %d: rack '%s' needs domains=<n>", line,
            rack.name.c_str()));
    if (!saw_workloads)
        throw SpecError(suit::util::sformat(
            "line %d: rack '%s' needs workloads=<name[:weight],...>",
            line, rack.name.c_str()));
    return rack;
}

} // namespace

std::uint64_t
FleetSpec::totalDomains() const
{
    std::uint64_t total = 0;
    for (const RackSpec &rack : racks)
        total += rack.domains;
    return total;
}

DomainConfig
FleetSpec::domainAt(std::uint64_t index) const
{
    // Locate the rack (racks are consecutive index ranges).
    std::uint32_t rack_idx = 0;
    std::uint64_t first = 0;
    while (rack_idx < racks.size() &&
           index >= first + racks[rack_idx].domains) {
        first += racks[rack_idx].domains;
        ++rack_idx;
    }
    SUIT_ASSERT(rack_idx < racks.size(),
                "domain index %llu out of range (%llu domains)",
                static_cast<unsigned long long>(index),
                static_cast<unsigned long long>(totalDomains()));
    const RackSpec &rack = racks[rack_idx];

    // Every draw comes from a generator seeded purely by
    // (fleet seed, global index) — golden-ratio mixed so consecutive
    // domains decorrelate — which makes the expansion independent of
    // sharding, worker count and evaluation order.
    suit::util::Rng rng(seed ^
                        (0x9E3779B97F4A7C15ULL * (index + 1)));

    DomainConfig cfg;
    cfg.rack = rack_idx;

    // Weighted tenant pick.
    double total_weight = 0.0;
    for (const TenantMix &mix : rack.workloads)
        total_weight += mix.weight;
    double draw = rng.nextDouble() * total_weight;
    std::uint16_t workload = 0;
    for (std::size_t w = 0; w < rack.workloads.size(); ++w) {
        draw -= rack.workloads[w].weight;
        if (draw < 0.0) {
            workload = static_cast<std::uint16_t>(w);
            break;
        }
        // Rounding may leave draw >= 0 after the last tenant; the
        // last one then wins.
        workload = static_cast<std::uint16_t>(w);
    }
    cfg.workload = workload;

    cfg.strategy = static_cast<std::uint8_t>(
        rng.nextBelow(rack.strategies.size()));
    cfg.offsetMv = rack.offsetsMv[static_cast<std::size_t>(
        rng.nextBelow(rack.offsetsMv.size()))];
    cfg.variant = static_cast<std::uint8_t>(
        rng.nextBelow(static_cast<std::uint64_t>(rack.traceVariants)));
    cfg.simSeed = rng.next();

    // The trace seed identifies the (workload, variant) stream, NOT
    // the domain: all domains of a variant share one cached trace,
    // which is what keeps a million-domain fleet memory-lean.  Racks
    // using the same workload share variants too (the profile bytes
    // are identical), so the cache holds workloads x variants traces.
    const std::string &workload_name =
        rack.workloads[cfg.workload].workload;
    std::uint64_t h = suit::exec::fnv1a64(workload_name.data(),
                                          workload_name.size(), seed);
    const unsigned char variant_byte =
        static_cast<unsigned char>(cfg.variant);
    cfg.traceSeed = suit::exec::fnv1a64(&variant_byte, 1, h);
    return cfg;
}

void
FleetSpec::scaleDomains(std::uint64_t domains)
{
    SUIT_ASSERT(domains >= 1, "cannot scale a fleet to 0 domains");
    const std::uint64_t current = totalDomains();
    SUIT_ASSERT(current >= 1, "cannot scale an empty fleet");
    std::uint64_t assigned = 0;
    for (RackSpec &rack : racks) {
        rack.domains = std::max<std::uint64_t>(
            1, rack.domains * domains / current);
        assigned += rack.domains;
    }
    // Distribute the rounding remainder (or trim the excess) over
    // the racks in declaration order so totals match exactly.
    std::size_t r = 0;
    while (assigned < domains) {
        ++racks[r % racks.size()].domains;
        ++assigned;
        ++r;
    }
    while (assigned > domains) {
        RackSpec &rack = racks[r % racks.size()];
        if (rack.domains > 1) {
            --rack.domains;
            --assigned;
        }
        ++r;
    }
}

std::uint64_t
FleetSpec::fingerprint() const
{
    using suit::exec::fnv1a64;
    std::uint64_t h = fnv1a64(nullptr, 0);
    const auto mix_u64 = [&](std::uint64_t v) {
        unsigned char bytes[8];
        for (int i = 0; i < 8; ++i)
            bytes[i] =
                static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
        h = fnv1a64(bytes, sizeof(bytes), h);
    };
    const auto mix_double = [&](double d) {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        __builtin_memcpy(&bits, &d, sizeof(bits));
        mix_u64(bits);
    };
    const auto mix_string = [&](const std::string &s) {
        mix_u64(s.size());
        h = fnv1a64(s.data(), s.size(), h);
    };

    mix_string(name);
    mix_u64(seed);
    mix_double(traceScale);
    mix_u64(racks.size());
    for (const RackSpec &rack : racks) {
        mix_string(rack.name);
        mix_string(rack.cpu);
        mix_u64(rack.domains);
        mix_u64(static_cast<std::uint64_t>(rack.cores));
        mix_u64(rack.workloads.size());
        for (const TenantMix &mix : rack.workloads) {
            mix_string(mix.workload);
            mix_double(mix.weight);
        }
        mix_u64(rack.strategies.size());
        for (const StrategyKind kind : rack.strategies)
            mix_u64(static_cast<std::uint64_t>(kind));
        mix_u64(rack.offsetsMv.size());
        for (const double mv : rack.offsetsMv)
            mix_double(mv);
        mix_u64(static_cast<std::uint64_t>(rack.traceVariants));
    }
    return h;
}

FleetSpec
FleetSpec::parse(const std::string &text)
{
    FleetSpec spec;
    spec.racks.clear();
    std::set<std::string> rack_names;

    int line_no = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t nl = text.find('\n', pos);
        std::string line =
            text.substr(pos, nl == std::string::npos
                                 ? std::string::npos
                                 : nl - pos);
        pos = nl == std::string::npos ? text.size() + 1 : nl + 1;
        ++line_no;

        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        const std::vector<std::string> tokens = tokenize(line);
        if (tokens.empty())
            continue;

        if (tokens[0] == "rack") {
            RackSpec rack = parseRack(tokens, line_no);
            if (!rack_names.insert(rack.name).second)
                throw SpecError(suit::util::sformat(
                    "line %d: duplicate rack name '%s'", line_no,
                    rack.name.c_str()));
            spec.racks.push_back(std::move(rack));
            continue;
        }

        // Fleet-wide `key = value` (tolerate `key=value` too).
        std::string key, value;
        if (tokens.size() == 3 && tokens[1] == "=") {
            key = tokens[0];
            value = tokens[2];
        } else if (tokens.size() == 1 &&
                   tokens[0].find('=') != std::string::npos) {
            const std::size_t eq = tokens[0].find('=');
            key = tokens[0].substr(0, eq);
            value = tokens[0].substr(eq + 1);
        } else {
            throw SpecError(suit::util::sformat(
                "line %d: expected 'key = value' or 'rack ...', got "
                "'%s'",
                line_no, line.c_str()));
        }
        if (key.empty() || value.empty())
            throw SpecError(suit::util::sformat(
                "line %d: empty key or value", line_no));

        if (key == "name") {
            spec.name = value;
        } else if (key == "seed") {
            spec.seed = parseCountOr(value, line_no, "seed");
        } else if (key == "pue") {
            spec.pue = parseDoubleOr(value, line_no, "pue");
            if (spec.pue < 1.0)
                throw SpecError(suit::util::sformat(
                    "line %d: pue must be >= 1.0, got %g", line_no,
                    spec.pue));
        } else if (key == "cost_usd_per_kwh") {
            spec.costUsdPerKwh =
                parseDoubleOr(value, line_no, "cost_usd_per_kwh");
            if (spec.costUsdPerKwh < 0.0)
                throw SpecError(suit::util::sformat(
                    "line %d: cost_usd_per_kwh must be >= 0",
                    line_no));
        } else if (key == "trace_scale") {
            spec.traceScale =
                parseDoubleOr(value, line_no, "trace_scale");
            if (!(spec.traceScale > 0.0) || spec.traceScale > 1.0)
                throw SpecError(suit::util::sformat(
                    "line %d: trace_scale must be in (0, 1], got %g",
                    line_no, spec.traceScale));
        } else {
            throw SpecError(suit::util::sformat(
                "line %d: unknown fleet key '%s'", line_no,
                key.c_str()));
        }
    }

    if (spec.racks.empty())
        throw SpecError("spec declares no racks");
    return spec;
}

FleetSpec
FleetSpec::parseFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        throw SpecError(suit::util::sformat(
            "cannot open fleet spec '%s'", path.c_str()));
    std::string text;
    char buf[1 << 14];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error)
        throw SpecError(suit::util::sformat(
            "cannot read fleet spec '%s'", path.c_str()));
    try {
        return parse(text);
    } catch (const SpecError &e) {
        throw SpecError(suit::util::sformat("%s: %s", path.c_str(),
                                            e.what()));
    }
}

FleetSpec
FleetSpec::demo(std::uint64_t domains)
{
    // The five-rack data-center scenario of the original example,
    // with Dim-Silicon-style per-tenant heterogeneity: front ends
    // mix strategies, the build farm mixes offsets.
    FleetSpec spec = parse(
        "name = demo\n"
        "seed = 7\n"
        "pue = 1.4\n"
        "cost_usd_per_kwh = 0.10\n"
        "trace_scale = 0.002\n"
        "rack web    cpu=C domains=40 workloads=Nginx:4,VLC:1 "
        "strategy=fV,hybrid offset=-97 variants=4\n"
        "rack logs   cpu=C domains=25 workloads=557.xz "
        "strategy=e,fV offset=-97 variants=4\n"
        "rack build  cpu=A domains=20 workloads=502.gcc "
        "strategy=hybrid offset=-70,-97 variants=4\n"
        "rack render cpu=C domains=10 workloads=526.blender "
        "strategy=fV offset=-97 variants=4\n"
        "rack netsim cpu=B domains=5 workloads=520.omnetpp "
        "strategy=V offset=-70 variants=2\n");
    spec.scaleDomains(domains);
    return spec;
}

} // namespace suit::fleet
