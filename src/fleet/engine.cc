#include "fleet/engine.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>
#include <string>

#include "core/params.hh"
#include "exec/checkpoint.hh"
#include "exec/thread_pool.hh"
#include "obs/flight.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "sim/domain_sim.hh"
#include "util/format.hh"
#include "util/logging.hh"

namespace suit::fleet {

namespace {

suit::power::CpuModel
cpuModelByName(const std::string &name)
{
    if (name == "A")
        return suit::power::cpuA_i9_9900k();
    if (name == "B")
        return suit::power::cpuB_ryzen7700x();
    if (name == "C")
        return suit::power::cpuC_xeon4208();
    if (name == "i5")
        return suit::power::cpu_i5_1035g1();
    suit::util::fatal("unknown CPU model '%s'", name.c_str());
}

} // namespace

FleetEngine::FleetEngine(suit::runtime::Session &session,
                         FleetSpec spec)
    : session_(session), spec_(std::move(spec))
{
    SUIT_ASSERT(!spec_.racks.empty(), "fleet spec has no racks");
    SUIT_ASSERT(spec_.traceScale > 0.0 && spec_.traceScale <= 1.0,
                "trace_scale %g out of (0, 1]", spec_.traceScale);
    racks_.reserve(spec_.racks.size());
    for (const RackSpec &rack : spec_.racks) {
        cpus_.push_back(std::make_unique<suit::power::CpuModel>(
            cpuModelByName(rack.cpu)));
        const suit::power::CpuModel &cpu = *cpus_.back();

        ResolvedRack resolved;
        resolved.cpu = &cpu;
        resolved.params = suit::core::optimalParams(cpu);
        const bool shared = cpu.domains() ==
                            suit::power::DomainLayout::SharedAll;
        resolved.streams = shared ? rack.cores : 1;
        resolved.basePowerW =
            shared ? cpu.basePowerW()
                   : cpu.basePowerW() /
                         static_cast<double>(cpu.coreCount());
        resolved.profiles.reserve(rack.workloads.size());
        for (const TenantMix &mix : rack.workloads) {
            suit::trace::WorkloadProfile profile =
                suit::trace::profileByName(mix.workload);
            // Scale the simulated slice, with a floor so a tiny
            // scale still leaves a meaningful trace.
            profile.totalInstructions = std::max<std::uint64_t>(
                1000000,
                static_cast<std::uint64_t>(
                    static_cast<double>(profile.totalInstructions) *
                    spec_.traceScale));
            resolved.profiles.push_back(std::move(profile));
        }
        racks_.push_back(std::move(resolved));
    }
}

double
FleetEngine::domainBasePowerW(std::size_t rack) const
{
    SUIT_ASSERT(rack < racks_.size(),
                "rack %zu out of range (%zu racks)", rack,
                racks_.size());
    return racks_[rack].basePowerW;
}

std::uint64_t
FleetEngine::journalFingerprint(std::uint64_t shard_size) const
{
    const std::uint64_t spec_fp = spec_.fingerprint();
    unsigned char bytes[16];
    for (int i = 0; i < 8; ++i) {
        bytes[i] = static_cast<unsigned char>(
            (spec_fp >> (8 * i)) & 0xFF);
        bytes[8 + i] = static_cast<unsigned char>(
            (shard_size >> (8 * i)) & 0xFF);
    }
    return suit::exec::fnv1a64(bytes, sizeof(bytes));
}

void
FleetEngine::simulateDomain(const DomainConfig &config,
                            FleetAccumulator &acc,
                            const suit::runtime::CancelToken *cancel)
{
    const ResolvedRack &rack = racks_[config.rack];
    const RackSpec &rack_spec = spec_.racks[config.rack];
    const suit::trace::WorkloadProfile &profile =
        rack.profiles[config.workload];

    // The worker's session workspace: simulator, trace pins and
    // result scratch all keep their capacity across domains, so the
    // steady-state domain loop allocates nothing.  The pins keep
    // evicted traces alive for this domain; one cache lock covers
    // every stream.
    suit::sim::SimWorkspace &ws = session_.workspace();
    session_.traceCache().getMany(profile, config.traceSeed,
                                  rack.streams, ws.pinned);
    ws.work.clear();
    for (int s = 0; s < rack.streams; ++s)
        ws.work.push_back(
            {ws.pinned[static_cast<std::size_t>(s)].get(), &profile});

    suit::sim::SimConfig sim_cfg;
    sim_cfg.cpu = rack.cpu;
    sim_cfg.offsetMv = config.offsetMv;
    sim_cfg.mode = suit::sim::RunMode::Suit;
    sim_cfg.strategy = rack_spec.strategies[config.strategy];
    sim_cfg.params = rack.params;
    sim_cfg.seed = config.simSeed;
    sim_cfg.cancel = cancel;

    ws.sim.reset(sim_cfg, ws.work);
    ws.sim.runInto(ws.result);
    acc.addDomain(config.rack, rack.basePowerW, ws.result);
}

FleetOutcome
FleetEngine::run(const FleetOptions &options)
{
    suit::runtime::RunContext ctx;
    return run(ctx, options);
}

FleetOutcome
FleetEngine::run(suit::runtime::RunContext &ctx,
                 const FleetOptions &options)
{
    const std::uint64_t shard_size =
        options.shardSize == 0 ? kDefaultShardSize
                               : options.shardSize;
    const std::uint64_t domains = spec_.totalDomains();
    SUIT_ASSERT(domains >= 1, "fleet spec has no domains");
    const std::uint64_t shards =
        (domains + shard_size - 1) / shard_size;

    FleetOutcome out;
    out.shards = shards;

    // Index-addressed shard slots; merged in shard order at the end.
    std::vector<std::optional<FleetAccumulator>> slots(shards);

    const suit::exec::GridFingerprint fingerprint{
        shards, journalFingerprint(shard_size)};

    const suit::runtime::CheckpointPolicy &ckpt = ctx.checkpoint;
    suit::exec::CheckpointJournal journal;
    if (!ckpt.path.empty()) {
        std::vector<suit::exec::CellRecord> seed;
        if (ckpt.resume) {
            const suit::exec::JournalContents loaded =
                suit::exec::CheckpointJournal::load(ckpt.path);
            if (loaded.fingerprint != fingerprint) {
                throw suit::exec::JournalError(suit::util::sformat(
                    "checkpoint '%s' belongs to a different fleet "
                    "(fingerprint %016llx/%llu cells, expected "
                    "%016llx/%llu)",
                    ckpt.path.c_str(),
                    static_cast<unsigned long long>(
                        loaded.fingerprint.hash),
                    static_cast<unsigned long long>(
                        loaded.fingerprint.cells),
                    static_cast<unsigned long long>(fingerprint.hash),
                    static_cast<unsigned long long>(
                        fingerprint.cells)));
            }
            if (loaded.droppedBytes != 0)
                suit::util::warn(
                    "checkpoint '%s': dropped %zu trailing bytes of "
                    "a torn record; the affected shard will re-run",
                    ckpt.path.c_str(), loaded.droppedBytes);
            for (const suit::exec::CellRecord &record :
                 loaded.records) {
                if (!record.isBlob || record.index >= shards ||
                    slots[record.index].has_value())
                    continue;
                FleetAccumulator acc;
                std::size_t offset = 0;
                if (!acc.deserialize(record.blob.data(),
                                     record.blob.size(), offset) ||
                    offset != record.blob.size() ||
                    acc.rackCount() != spec_.racks.size()) {
                    suit::util::warn(
                        "checkpoint '%s': shard %llu record is "
                        "malformed; the shard will re-run",
                        ckpt.path.c_str(),
                        static_cast<unsigned long long>(
                            record.index));
                    continue;
                }
                slots[record.index] = std::move(acc);
                ++out.shardsRestored;
                seed.push_back(record);
            }
        }
        journal.start(ckpt.path, fingerprint, std::move(seed));
        journal.setFlushInterval(ckpt.flushInterval);
    }

    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> skipped{0};
    std::atomic<std::uint64_t> domains_simulated{0};

    // Latched by the RunContext: workers trace into the same session.
    suit::obs::TraceSession *const trace = ctx.trace();
    const suit::runtime::CancelToken &token = ctx.token();
    suit::obs::Registry &reg = suit::obs::metrics();
    static const std::vector<double> kShardMsBounds{
        1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0};

    // One named host-time track per rack carrying cumulative
    // counter series ('C' events): domains completed, package
    // energy, and p-state residency.  Workers fold each finished
    // shard's per-rack totals into the running sums under one mutex
    // and emit the new cumulative point; viewers plot the series
    // over wall-clock time per rack.
    struct RackTrack
    {
        int tid = 0;
        RackTotals cum;
    };
    std::vector<RackTrack> rack_tracks;
    std::mutex rack_tracks_mu;
    if (trace) {
        rack_tracks.resize(spec_.racks.size());
        for (std::size_t r = 0; r < spec_.racks.size(); ++r)
            rack_tracks[r].tid = trace->newTrack(
                suit::obs::TraceSession::kHostPid,
                "rack " + spec_.racks[r].name);
    }
    const auto emitRackCounters = [&](const FleetAccumulator &acc,
                                      double now_us) {
        std::lock_guard lock(rack_tracks_mu);
        for (std::size_t r = 0; r < rack_tracks.size(); ++r) {
            const RackTotals &shard_totals = acc.rack(r);
            if (shard_totals.domains == 0)
                continue;
            RackTrack &rt = rack_tracks[r];
            rt.cum.merge(shard_totals);
            trace->counter(
                suit::obs::TraceSession::kHostPid, rt.tid, now_us,
                "domains", {{"count", rt.cum.domains}});
            trace->counter(
                suit::obs::TraceSession::kHostPid, rt.tid, now_us,
                "energy",
                {{"power_w", rt.cum.wattsAfter.value()}});
            trace->counter(
                suit::obs::TraceSession::kHostPid, rt.tid, now_us,
                "pstate",
                {{"switches", rt.cum.pstateSwitches},
                 {"efficient_share",
                  rt.cum.efficientShareSum.value() /
                      static_cast<double>(rt.cum.domains)}});
        }
    };

    const auto runOne = [&](std::size_t shard) {
        if (slots[shard].has_value())
            return; // restored from the journal
        if (token.cancelled()) {
            skipped.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        suit::obs::FlightSpan span("fleet.shard", "fleet");
        const double trace_start =
            trace ? trace->hostNowUs() : 0.0;
        const auto wall_start = std::chrono::steady_clock::now();

        const std::uint64_t first =
            static_cast<std::uint64_t>(shard) * shard_size;
        const std::uint64_t count =
            std::min(shard_size, domains - first);

        // Contiguous per-shard expansion block, reused across the
        // worker's shards so the expansion allocates only on growth.
        thread_local std::vector<DomainConfig> block;
        block.clear();
        block.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i)
            block.push_back(spec_.domainAt(first + i));

        FleetAccumulator acc(spec_.racks.size());
        try {
            for (const DomainConfig &config : block)
                simulateDomain(config, acc, &token);
        } catch (const suit::runtime::Cancelled &) {
            // The token tripped mid-shard: the partial accumulator
            // is discarded and the shard accounted as skipped, so a
            // resume recomputes it whole, bit-identical.
            skipped.fetch_add(1, std::memory_order_relaxed);
            return;
        }

        if (journal.active()) {
            std::string bytes;
            acc.serialize(bytes);
            journal.append(suit::exec::CellRecord::blobRecord(
                shard, std::move(bytes)));
        }
        slots[shard] = std::move(acc);
        executed.fetch_add(1, std::memory_order_relaxed);
        domains_simulated.fetch_add(count,
                                    std::memory_order_relaxed);

        if (reg.enabled()) {
            reg.observe(
                reg.histogram("fleet.shard_ms", kShardMsBounds),
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count());
        }
        if (trace) {
            const int track = trace->threadTrack("fleet");
            const double now_us = trace->hostNowUs();
            trace->complete(
                suit::obs::TraceSession::kHostPid, track,
                trace_start, now_us - trace_start, "shard", "fleet",
                {{"index", static_cast<std::uint64_t>(shard)},
                 {"domains", count}});
            emitRackCounters(*slots[shard], now_us);
        }
        if (options.onShardDone)
            options.onShardDone(shard);
    };

    if (suit::exec::ThreadPool *pool = session_.pool()) {
        pool->parallelFor(static_cast<std::size_t>(shards), runOne);
    } else {
        for (std::size_t shard = 0; shard < shards; ++shard)
            runOne(shard);
    }
    // Land any batch tail now (including after a cancellation), so
    // every completed shard is on disk for a resume.
    journal.flush();

    out.shardsRun = executed.load();
    out.shardsSkipped = skipped.load();
    out.interrupted = token.cancelled();

    // Merge in shard order.  ExactSum makes the value() bits
    // independent of the grouping anyway; the fixed order makes even
    // the internal expansion deterministic.
    out.totals = FleetAccumulator(spec_.racks.size());
    for (std::optional<FleetAccumulator> &slot : slots) {
        if (slot.has_value())
            out.totals.merge(*slot);
    }

    if (reg.enabled()) {
        reg.add(reg.counter("fleet.domains.simulated"),
                domains_simulated.load());
        reg.add(reg.counter("fleet.shards.executed"), out.shardsRun);
        reg.add(reg.counter("fleet.shards.restored"),
                out.shardsRestored);
        reg.add(reg.counter("fleet.shards.skipped"),
                out.shardsSkipped);
    }
    return out;
}

} // namespace suit::fleet
