/**
 * @file
 * Declarative fleet descriptions for fleet-scale simulation.
 *
 * A FleetSpec describes a data-center fleet as racks of independent
 * SUIT DVFS domains: each rack names a CPU model, a per-tenant
 * workload mix, the operating strategies and undervolt offsets in
 * use, and how many domains it holds.  The spec is the *complete*
 * input of a fleet run — every per-domain configuration (workload,
 * strategy, offset, trace variant, jitter seed) expands
 * deterministically from the spec's single root seed via
 * domainAt(), a pure function of (spec, global domain index).  Two
 * runs of the same spec therefore simulate exactly the same million
 * domains regardless of sharding, worker count or interruption.
 *
 * Specs parse from a simple line-oriented text format (see parse()):
 *
 *   # fleet-wide keys:   key = value
 *   name = demo
 *   seed = 42
 *   pue = 1.4
 *   cost_usd_per_kwh = 0.10
 *   trace_scale = 0.002
 *   # one rack per line:  rack <name> key=value ...
 *   rack web   cpu=C domains=40 workloads=Nginx:3,557.xz:1 \
 *              strategy=fV,e offset=-97 variants=4
 *   rack build cpu=A domains=20 cores=4 workloads=502.gcc \
 *              strategy=hybrid offset=-70,-97
 *
 * Strategy/offset lists model per-tenant policy heterogeneity (Dim
 * Silicon's point that one fleet-wide DVFS policy wastes the
 * efficient operating point): every domain draws its strategy and
 * offset independently from the rack's lists.  `variants` bounds the
 * number of distinct traces per (rack, workload) so a million-domain
 * fleet shares a few hundred cached traces instead of generating a
 * million; per-domain *jitter* seeds stay unique.
 */

#ifndef SUIT_FLEET_SPEC_HH
#define SUIT_FLEET_SPEC_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/strategy.hh"

namespace suit::fleet {

/** Malformed spec text (parse errors carry line numbers). */
class SpecError : public std::runtime_error
{
  public:
    explicit SpecError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** One workload of a rack's tenant mix. */
struct TenantMix
{
    /** Workload profile name (must exist in trace::allProfiles()). */
    std::string workload;
    /** Relative weight of this tenant (> 0). */
    double weight = 1.0;
};

/** One rack: N domains drawn from one CPU model and tenant mix. */
struct RackSpec
{
    /** Rack label (unique within the fleet). */
    std::string name;
    /** CPU model name: "A", "B", "C" or "i5". */
    std::string cpu = "C";
    /** Independent DVFS domains in this rack. */
    std::uint64_t domains = 0;
    /** Utilised cores per domain (> 1 only affects shared-domain
     *  CPUs, which then run that many streams per domain). */
    int cores = 1;
    /** Tenant mix; every domain draws one workload from it. */
    std::vector<TenantMix> workloads;
    /** Operating strategies in use across the rack's tenants. */
    std::vector<suit::core::StrategyKind> strategies{
        suit::core::StrategyKind::CombinedFv};
    /** Printable names parallel to strategies (report labels). */
    std::vector<std::string> strategyNames{"fV"};
    /** Undervolt offsets in use across the rack's tenants (mV). */
    std::vector<double> offsetsMv{-97.0};
    /** Distinct generated traces per workload of this rack. */
    int traceVariants = 4;
};

/** Expanded configuration of one domain (pure function of index). */
struct DomainConfig
{
    /** Rack index within FleetSpec::racks. */
    std::uint32_t rack = 0;
    /** Workload index within the rack's mix. */
    std::uint16_t workload = 0;
    /** Strategy index within the rack's strategy list. */
    std::uint8_t strategy = 0;
    /** Trace variant in [0, traceVariants). */
    std::uint8_t variant = 0;
    /** Undervolt offset (mV). */
    double offsetMv = -97.0;
    /** Per-domain simulator jitter seed (unique per domain). */
    std::uint64_t simSeed = 1;
    /** Trace-generation seed (shared across the variant's domains). */
    std::uint64_t traceSeed = 1;
};

/** Whole-fleet description; see the file comment for the format. */
struct FleetSpec
{
    /** Fleet label (report header). */
    std::string name = "fleet";
    /** Root seed; every per-domain draw derives from it. */
    std::uint64_t seed = 1;
    /** Power-usage-effectiveness multiplier for the TCO report. */
    double pue = 1.4;
    /** Electricity price for the TCO report (USD per kWh). */
    double costUsdPerKwh = 0.10;
    /**
     * Per-domain trace length multiplier in (0, 1]: scales every
     * profile's totalInstructions so million-domain fleets simulate
     * a statistically representative slice of each workload instead
     * of its full multi-billion-instruction stream.
     */
    double traceScale = 1.0;
    /** The racks, in declaration order. */
    std::vector<RackSpec> racks;

    /** Sum of every rack's domain count. */
    std::uint64_t totalDomains() const;

    /**
     * Expand the configuration of global domain @p index (racks are
     * laid out consecutively in declaration order).  Pure function
     * of (*this, index); asserts index < totalDomains().
     */
    DomainConfig domainAt(std::uint64_t index) const;

    /**
     * Rescale every rack's domain count so the fleet totals
     * @p domains (proportionally, remainder to the first racks;
     * every non-empty rack keeps at least one domain).
     */
    void scaleDomains(std::uint64_t domains);

    /**
     * Order-sensitive FNV-1a fingerprint over every field that
     * affects simulation results.  Ties a fleet checkpoint journal
     * to the exact spec that produced it (pue/cost are report-only
     * and excluded).
     */
    std::uint64_t fingerprint() const;

    /**
     * Parse spec text.  @throws SpecError with a line-numbered
     * message on any malformed or unknown construct.
     */
    static FleetSpec parse(const std::string &text);

    /** Parse a spec file.  @throws SpecError (also when unreadable). */
    static FleetSpec parseFile(const std::string &path);

    /**
     * The built-in demonstration fleet: the five-rack data-center
     * scenario of examples/datacenter_fleet scaled to @p domains
     * domains, with heterogeneous per-tenant strategies/offsets and
     * trace_scale 0.002 so 10^5-10^6 domains run in one process.
     */
    static FleetSpec demo(std::uint64_t domains);
};

} // namespace suit::fleet

#endif // SUIT_FLEET_SPEC_HH
