/**
 * @file
 * FleetEngine: one process simulating up to a million SUIT domains.
 *
 * The engine shards the fleet's global domain index space into
 * fixed-size contiguous blocks and runs the shards across an
 * exec::ThreadPool.  Each shard expands its domain configurations
 * into a contiguous block (reused per worker — no per-domain heap
 * churn in the expansion), simulates every domain through the shared
 * TraceCache, and streams the DomainResults into one per-shard
 * FleetAccumulator — per-domain results are never stored, so memory
 * scales with shards, not domains.
 *
 * Determinism contract, mirroring exec::SweepEngine:
 *  - every domain is a pure function of (spec, global index)
 *    (FleetSpec::domainAt), so no domain observes scheduling;
 *  - shard accumulators live in index-addressed slots and merge in
 *    shard order;
 *  - every floating-point total is a util::ExactSum, so the merged
 *    aggregate is bit-identical to a serial run for any worker count
 *    *and* any shard size (exact sums are associative).
 *
 * Checkpointing reuses the exec journal: each finished shard appends
 * one blob record (CellRecord status 2) carrying its serialized
 * accumulator, fingerprinted by (spec fingerprint, shard size).  A
 * killed run resumes by restoring finished shards bit-for-bit and
 * running only the rest — the final aggregate is identical to an
 * uninterrupted run.
 */

#ifndef SUIT_FLEET_ENGINE_HH
#define SUIT_FLEET_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/params.hh"
#include "fleet/accumulator.hh"
#include "fleet/spec.hh"
#include "power/cpu_model.hh"
#include "sim/trace_cache.hh"
#include "trace/profile.hh"

namespace suit::fleet {

/** One run's execution policy. */
struct FleetOptions
{
    /**
     * Worker count: 0 = ThreadPool::hardwareConcurrency(),
     * 1 = serial in-line execution (reference path), n > 1 = pool of
     * n workers.
     */
    int jobs = 0;
    /** Domains per shard; 0 selects the default (4096). */
    std::uint64_t shardSize = 0;
    /** Journal file; empty = no checkpointing. */
    std::string checkpointPath;
    /**
     * Load an existing journal first and only run the shards it does
     * not cover.  Requires checkpointPath; refuses (JournalError) a
     * journal whose fingerprint differs.
     */
    bool resume = false;
    /**
     * Cooperative interrupt: once *stop is true, shards that have
     * not started are skipped (in-flight shards finish and are
     * journaled).
     */
    const std::atomic<bool> *stop = nullptr;
    /**
     * Called after each shard completes, with the shard index.  Runs
     * on worker threads; must be thread-safe.
     */
    std::function<void(std::uint64_t)> onShardDone;
};

/** Outcome of one FleetEngine::run(). */
struct FleetOutcome
{
    /** Whole-fleet aggregates (shards merged in shard order). */
    FleetAccumulator totals;
    /** Total shards of the fleet. */
    std::uint64_t shards = 0;
    /** Shards executed by this invocation. */
    std::uint64_t shardsRun = 0;
    /** Shards restored from the journal (resume only). */
    std::uint64_t shardsRestored = 0;
    /** Shards skipped because the stop flag was raised. */
    std::uint64_t shardsSkipped = 0;
    /** True if the stop flag ended the run early. */
    bool interrupted = false;

    /** Every shard accumulated (run or restored). */
    bool complete() const { return shardsSkipped == 0; }
};

/** Simulates a FleetSpec; see the file comment. */
class FleetEngine
{
  public:
    /** Default shard size (domains per checkpointable unit). */
    static constexpr std::uint64_t kDefaultShardSize = 4096;

    /**
     * Resolve @p spec: instantiate the racks' CPU models, their
     * Table-7 strategy parameters and the trace-scaled workload
     * profiles.  @p spec is copied; the engine is self-contained.
     */
    explicit FleetEngine(FleetSpec spec);

    FleetEngine(const FleetEngine &) = delete;
    FleetEngine &operator=(const FleetEngine &) = delete;

    /**
     * Simulate the whole fleet under @p options.  The returned
     * aggregates are bit-identical for any jobs/shardSize combination
     * and across kill-and-resume cycles.
     *
     * @throws exec::JournalError on an unusable or mismatching
     *         journal.
     */
    FleetOutcome run(const FleetOptions &options = {});

    /** The resolved spec (after any scaling the caller did). */
    const FleetSpec &spec() const { return spec_; }

    /**
     * Baseline (conservative-curve) package power attributed to one
     * domain of rack @p rack: the whole package for a shared-domain
     * CPU, one core's share for per-core-domain CPUs.
     */
    double domainBasePowerW(std::size_t rack) const;

    /**
     * The engine's trace cache, shared by every shard of every
     * run(): all domains of a (workload, variant) stream read the
     * same generated trace.
     */
    suit::sim::TraceCache &traceCache() { return traces_; }

    /** Journal identity of this fleet at @p shard_size domains. */
    std::uint64_t journalFingerprint(std::uint64_t shard_size) const;

  private:
    /** Per-rack resolved state (see the constructor). */
    struct ResolvedRack
    {
        const suit::power::CpuModel *cpu = nullptr;
        suit::core::StrategyParams params;
        /** Trace-scaled copies of the rack's workload profiles. */
        std::vector<suit::trace::WorkloadProfile> profiles;
        /** Streams per domain (shared-domain CPUs: cores). */
        int streams = 1;
        /** Baseline package power per domain (W). */
        double basePowerW = 0.0;
    };

    /** Simulate global domain @p config into @p acc. */
    void simulateDomain(const DomainConfig &config,
                        FleetAccumulator &acc);

    FleetSpec spec_;
    std::vector<std::unique_ptr<suit::power::CpuModel>> cpus_;
    std::vector<ResolvedRack> racks_;
    suit::sim::TraceCache traces_;
};

} // namespace suit::fleet

#endif // SUIT_FLEET_ENGINE_HH
