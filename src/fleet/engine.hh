/**
 * @file
 * FleetEngine: one process simulating up to a million SUIT domains.
 *
 * The engine shards the fleet's global domain index space into
 * fixed-size contiguous blocks and runs the shards across the
 * borrowed runtime::Session's ThreadPool.  Each shard expands its
 * domain configurations into a contiguous block (reused per worker —
 * no per-domain heap churn in the expansion), simulates every domain
 * through the session's shared TraceCache, and streams the
 * DomainResults into one per-shard FleetAccumulator — per-domain
 * results are never stored, so memory scales with shards, not
 * domains.
 *
 * Determinism contract, mirroring exec::SweepEngine:
 *  - every domain is a pure function of (spec, global index)
 *    (FleetSpec::domainAt), so no domain observes scheduling;
 *  - shard accumulators live in index-addressed slots and merge in
 *    shard order;
 *  - every floating-point total is a util::ExactSum, so the merged
 *    aggregate is bit-identical to a serial run for any worker count
 *    *and* any shard size (exact sums are associative).
 *
 * Checkpointing reuses the exec journal: each finished shard appends
 * one blob record (CellRecord status 2) carrying its serialized
 * accumulator, fingerprinted by (spec fingerprint, shard size).  A
 * killed run resumes by restoring finished shards bit-for-bit and
 * running only the rest — the final aggregate is identical to an
 * uninterrupted run.  The journal path/resume flag and cancellation
 * (SIGINT link, wall-clock deadline) arrive through the same
 * runtime::RunContext the sweep engine uses; a shard aborted
 * mid-flight by the token is accounted as skipped, never journaled.
 */

#ifndef SUIT_FLEET_ENGINE_HH
#define SUIT_FLEET_ENGINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/params.hh"
#include "fleet/accumulator.hh"
#include "fleet/spec.hh"
#include "power/cpu_model.hh"
#include "runtime/run_context.hh"
#include "runtime/session.hh"
#include "sim/trace_cache.hh"
#include "trace/profile.hh"

namespace suit::fleet {

/** One run's execution policy. */
struct FleetOptions
{
    /** Domains per shard; 0 selects the default (4096). */
    std::uint64_t shardSize = 0;
    /**
     * Called after each shard completes, with the shard index.  Runs
     * on worker threads; must be thread-safe.  Not called for
     * skipped/cancelled shards.
     */
    std::function<void(std::uint64_t)> onShardDone;
};

/** Outcome of one FleetEngine::run(). */
struct FleetOutcome
{
    /** Whole-fleet aggregates (shards merged in shard order). */
    FleetAccumulator totals;
    /** Total shards of the fleet. */
    std::uint64_t shards = 0;
    /** Shards executed by this invocation. */
    std::uint64_t shardsRun = 0;
    /** Shards restored from the journal (resume only). */
    std::uint64_t shardsRestored = 0;
    /** Shards skipped or aborted because the token tripped. */
    std::uint64_t shardsSkipped = 0;
    /** True if the cancel token ended the run early. */
    bool interrupted = false;

    /** Every shard accumulated (run or restored). */
    bool complete() const { return shardsSkipped == 0; }
};

/** Simulates a FleetSpec; see the file comment. */
class FleetEngine
{
  public:
    /** Default shard size (domains per checkpointable unit). */
    static constexpr std::uint64_t kDefaultShardSize = 4096;

    /**
     * Resolve @p spec: instantiate the racks' CPU models, their
     * Table-7 strategy parameters and the trace-scaled workload
     * profiles.  @p spec is copied; the engine borrows @p session's
     * pool and trace cache (the session must outlive the engine).
     */
    FleetEngine(suit::runtime::Session &session, FleetSpec spec);

    FleetEngine(const FleetEngine &) = delete;
    FleetEngine &operator=(const FleetEngine &) = delete;

    /**
     * Simulate the whole fleet under @p ctx (journal policy +
     * cancellation) and @p options.  The returned aggregates are
     * bit-identical for any session worker count / shardSize
     * combination and across kill-and-resume cycles.
     *
     * @throws exec::JournalError on an unusable or mismatching
     *         journal.
     */
    FleetOutcome run(suit::runtime::RunContext &ctx,
                     const FleetOptions &options = {});

    /** As above with a throwaway context (no journal, no cancel). */
    FleetOutcome run(const FleetOptions &options = {});

    /** The resolved spec (after any scaling the caller did). */
    const FleetSpec &spec() const { return spec_; }

    /** The borrowed session. */
    suit::runtime::Session &session() { return session_; }

    /**
     * Baseline (conservative-curve) package power attributed to one
     * domain of rack @p rack: the whole package for a shared-domain
     * CPU, one core's share for per-core-domain CPUs.
     */
    double domainBasePowerW(std::size_t rack) const;

    /**
     * The session's trace cache, shared by every shard of every
     * run(): all domains of a (workload, variant) stream read the
     * same generated trace.
     */
    suit::sim::TraceCache &traceCache()
    {
        return session_.traceCache();
    }

    /** Journal identity of this fleet at @p shard_size domains. */
    std::uint64_t journalFingerprint(std::uint64_t shard_size) const;

  private:
    /** Per-rack resolved state (see the constructor). */
    struct ResolvedRack
    {
        const suit::power::CpuModel *cpu = nullptr;
        suit::core::StrategyParams params;
        /** Trace-scaled copies of the rack's workload profiles. */
        std::vector<suit::trace::WorkloadProfile> profiles;
        /** Streams per domain (shared-domain CPUs: cores). */
        int streams = 1;
        /** Baseline package power per domain (W). */
        double basePowerW = 0.0;
    };

    /** Simulate global domain @p config into @p acc. */
    void simulateDomain(const DomainConfig &config,
                        FleetAccumulator &acc,
                        const suit::runtime::CancelToken *cancel);

    suit::runtime::Session &session_;
    FleetSpec spec_;
    std::vector<std::unique_ptr<suit::power::CpuModel>> cpus_;
    std::vector<ResolvedRack> racks_;
};

} // namespace suit::fleet

#endif // SUIT_FLEET_ENGINE_HH
