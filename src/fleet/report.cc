#include "fleet/report.hh"

#include <cctype>

#include "obs/json.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace suit::fleet {

namespace {

constexpr double kHoursPerYear = 24.0 * 365.0;

/** Round-trip JSON rendering of a double. */
std::string
fmtNum(double v)
{
    return suit::util::sformat("%.17g", v);
}

std::string
fmtU64(std::uint64_t v)
{
    return suit::util::sformat(
        "%llu", static_cast<unsigned long long>(v));
}

/** Per-rack derived numbers shared by the table and the JSON. */
struct RackRow
{
    std::uint64_t domains = 0;
    double kwBefore = 0.0;
    double kwAfter = 0.0;
    double meanPerfDeltaPct = 0.0;
    double meanEfficientSharePct = 0.0;
    std::uint64_t traps = 0;
};

RackRow
rackRow(const RackTotals &totals)
{
    RackRow row;
    row.domains = totals.domains;
    row.kwBefore = totals.wattsBefore.value() * 1e-3;
    row.kwAfter = totals.wattsAfter.value() * 1e-3;
    row.traps = totals.traps;
    if (totals.domains > 0) {
        const double n = static_cast<double>(totals.domains);
        row.meanPerfDeltaPct =
            totals.perfDeltaSum.value() / n * 100.0;
        row.meanEfficientSharePct =
            totals.efficientShareSum.value() / n * 100.0;
    }
    return row;
}

} // namespace

ReportSummary
ReportSummary::of(const FleetSpec &spec,
                  const FleetAccumulator &totals)
{
    SUIT_ASSERT(totals.rackCount() == spec.racks.size(),
                "accumulator has %zu rack slots, spec has %zu",
                totals.rackCount(), spec.racks.size());
    ReportSummary s;
    suit::util::ExactSum watts_before;
    suit::util::ExactSum watts_after;
    suit::util::ExactSum perf_sum;
    suit::util::ExactSum share_sum;
    suit::util::ExactSum duration_sum;
    for (std::size_t i = 0; i < totals.rackCount(); ++i) {
        const RackTotals &rack = totals.rack(i);
        s.domains += rack.domains;
        s.doTraps += rack.traps;
        watts_before.merge(rack.wattsBefore);
        watts_after.merge(rack.wattsAfter);
        perf_sum.merge(rack.perfDeltaSum);
        share_sum.merge(rack.efficientShareSum);
        duration_sum.merge(rack.durationSum);
    }
    s.kwBefore = watts_before.value() * 1e-3;
    s.kwAfter = watts_after.value() * 1e-3;
    s.kwSaved = s.kwBefore - s.kwAfter;
    s.mwhPerYear = s.kwSaved * spec.pue * kHoursPerYear * 1e-3;
    s.usdPerYear =
        s.kwSaved * spec.pue * kHoursPerYear * spec.costUsdPerKwh;
    if (s.domains > 0) {
        const double n = static_cast<double>(s.domains);
        s.meanPerfDeltaPct = perf_sum.value() / n * 100.0;
        s.meanEfficientSharePct = share_sum.value() / n * 100.0;
    }
    const double duration = duration_sum.value();
    s.doRatePerS =
        duration > 0.0 ? static_cast<double>(s.doTraps) / duration
                       : 0.0;
    s.slowdownP50Pct = totals.slowdownHist().percentile(50.0);
    s.slowdownP99Pct = totals.slowdownHist().percentile(99.0);
    return s;
}

std::string
renderReportTable(const FleetSpec &spec,
                  const FleetAccumulator &totals)
{
    const ReportSummary s = ReportSummary::of(spec, totals);

    std::string out = suit::util::sformat(
        "fleet '%s': %llu domains, PUE %.2f, $%.3f/kWh\n\n",
        spec.name.c_str(),
        static_cast<unsigned long long>(s.domains), spec.pue,
        spec.costUsdPerKwh);

    suit::util::TablePrinter t({"rack", "cpu", "domains",
                                "kW before", "kW after", "saved",
                                "perf", "time-on-E", "#DO"});
    for (std::size_t i = 0; i < spec.racks.size(); ++i) {
        const RackSpec &rack = spec.racks[i];
        const RackRow row = rackRow(totals.rack(i));
        t.addRow({rack.name, rack.cpu, fmtU64(row.domains),
                  suit::util::sformat("%.2f", row.kwBefore),
                  suit::util::sformat("%.2f", row.kwAfter),
                  suit::util::sformat("%.2f",
                                      row.kwBefore - row.kwAfter),
                  suit::util::sformat("%+.2f %%",
                                      row.meanPerfDeltaPct),
                  suit::util::sformat("%.1f %%",
                                      row.meanEfficientSharePct),
                  fmtU64(row.traps)});
    }
    t.addSeparator();
    t.addRow({"total", "", fmtU64(s.domains),
              suit::util::sformat("%.2f", s.kwBefore),
              suit::util::sformat("%.2f", s.kwAfter),
              suit::util::sformat("%.2f", s.kwSaved),
              suit::util::sformat("%+.2f %%", s.meanPerfDeltaPct),
              suit::util::sformat("%.1f %%",
                                  s.meanEfficientSharePct),
              fmtU64(s.doTraps)});
    out += t.render();

    out += suit::util::sformat(
        "\npower saved: %.2f kW of %.2f kW (%.1f %%)\n",
        s.kwSaved, s.kwBefore,
        s.kwBefore > 0.0 ? s.kwSaved / s.kwBefore * 100.0 : 0.0);
    out += suit::util::sformat(
        "facility energy (PUE %.2f): %.1f MWh/year, $%.0f/year\n",
        spec.pue, s.mwhPerYear, s.usdPerYear);
    out += suit::util::sformat(
        "#DO traps: %llu (%.1f /core-second)\n",
        static_cast<unsigned long long>(s.doTraps), s.doRatePerS);
    out += suit::util::sformat(
        "per-domain slowdown: p50 %.3f %%, p99 %.3f %%\n",
        s.slowdownP50Pct, s.slowdownP99Pct);
    return out;
}

std::string
renderReportJson(const FleetSpec &spec,
                 const FleetAccumulator &totals)
{
    const ReportSummary s = ReportSummary::of(spec, totals);
    using suit::obs::jsonQuote;

    std::string out = "{\n";
    out += "  \"schema\": \"suit-fleet-report-v1\",\n";
    out += "  \"fleet\": " + jsonQuote(spec.name) + ",\n";
    out += "  \"seed\": " + fmtU64(spec.seed) + ",\n";
    out += "  \"domains\": " + fmtU64(s.domains) + ",\n";
    out += "  \"pue\": " + fmtNum(spec.pue) + ",\n";
    out += "  \"cost_usd_per_kwh\": " + fmtNum(spec.costUsdPerKwh) +
           ",\n";
    out += "  \"kw_before\": " + fmtNum(s.kwBefore) + ",\n";
    out += "  \"kw_after\": " + fmtNum(s.kwAfter) + ",\n";
    out += "  \"kw_saved\": " + fmtNum(s.kwSaved) + ",\n";
    out += "  \"mwh_per_year\": " + fmtNum(s.mwhPerYear) + ",\n";
    out += "  \"usd_per_year\": " + fmtNum(s.usdPerYear) + ",\n";
    out += "  \"mean_perf_delta_pct\": " +
           fmtNum(s.meanPerfDeltaPct) + ",\n";
    out += "  \"mean_efficient_share_pct\": " +
           fmtNum(s.meanEfficientSharePct) + ",\n";
    out += "  \"do_traps\": " + fmtU64(s.doTraps) + ",\n";
    out += "  \"do_rate_per_s\": " + fmtNum(s.doRatePerS) + ",\n";
    out += "  \"slowdown_p50_pct\": " + fmtNum(s.slowdownP50Pct) +
           ",\n";
    out += "  \"slowdown_p99_pct\": " + fmtNum(s.slowdownP99Pct) +
           ",\n";
    out += "  \"racks\": [\n";
    for (std::size_t i = 0; i < spec.racks.size(); ++i) {
        const RackSpec &rack = spec.racks[i];
        const RackRow row = rackRow(totals.rack(i));
        out += "    {\"name\": " + jsonQuote(rack.name) +
               ", \"cpu\": " + jsonQuote(rack.cpu) +
               ", \"domains\": " + fmtU64(row.domains) +
               ", \"kw_before\": " + fmtNum(row.kwBefore) +
               ", \"kw_after\": " + fmtNum(row.kwAfter) +
               ", \"mean_perf_delta_pct\": " +
               fmtNum(row.meanPerfDeltaPct) +
               ", \"mean_efficient_share_pct\": " +
               fmtNum(row.meanEfficientSharePct) +
               ", \"do_traps\": " + fmtU64(row.traps) + "}";
        out += i + 1 < spec.racks.size() ? ",\n" : "\n";
    }
    out += "  ]\n";
    out += "}\n";
    return out;
}

suit::obs::CheckResult
checkReportJson(const std::string &doc)
{
    suit::obs::CheckResult result;

    static const char *const kHeadlineKeys[] = {
        "\"fleet\":",
        "\"seed\":",
        "\"domains\":",
        "\"pue\":",
        "\"cost_usd_per_kwh\":",
        "\"kw_before\":",
        "\"kw_after\":",
        "\"kw_saved\":",
        "\"mwh_per_year\":",
        "\"usd_per_year\":",
        "\"mean_perf_delta_pct\":",
        "\"mean_efficient_share_pct\":",
        "\"do_traps\":",
        "\"do_rate_per_s\":",
        "\"slowdown_p50_pct\":",
        "\"slowdown_p99_pct\":",
        "\"racks\":",
    };
    static const char *const kRackKeys[] = {
        "\"name\":",          "\"cpu\":",
        "\"domains\":",       "\"kw_before\":",
        "\"kw_after\":",      "\"mean_perf_delta_pct\":",
        "\"mean_efficient_share_pct\":", "\"do_traps\":",
    };

    if (doc.find("\"schema\": \"suit-fleet-report-v1\"") ==
        std::string::npos) {
        result.error = "missing schema marker suit-fleet-report-v1";
        return result;
    }
    for (const char *key : kHeadlineKeys) {
        if (doc.find(key) == std::string::npos) {
            result.error =
                suit::util::sformat("missing headline key %s", key);
            return result;
        }
    }

    // One rack object per line between "racks": [ and ].
    const std::size_t racks_pos = doc.find("\"racks\":");
    std::size_t pos = doc.find('\n', racks_pos);
    while (pos != std::string::npos) {
        std::size_t end = doc.find('\n', pos + 1);
        if (end == std::string::npos)
            end = doc.size();
        std::string line = doc.substr(pos + 1, end - pos - 1);
        std::size_t first = 0;
        while (first < line.size() &&
               std::isspace(static_cast<unsigned char>(line[first])))
            ++first;
        line.erase(0, first);
        if (line.empty() || line[0] == ']')
            break;
        if (line[0] != '{') {
            result.error = suit::util::sformat(
                "expected a rack object, got '%s'", line.c_str());
            return result;
        }
        for (const char *key : kRackKeys) {
            if (line.find(key) == std::string::npos) {
                result.error = suit::util::sformat(
                    "rack object %zu misses key %s",
                    result.entries, key);
                return result;
            }
        }
        const std::size_t name_pos = line.find("\"name\": \"");
        const std::size_t name_start = name_pos + 9;
        const std::size_t name_end = line.find('"', name_start);
        if (name_pos == std::string::npos ||
            name_end == std::string::npos) {
            result.error = suit::util::sformat(
                "rack object %zu has no parsable name",
                result.entries);
            return result;
        }
        result.names.push_back(
            line.substr(name_start, name_end - name_start));
        ++result.entries;
        pos = end;
    }
    if (result.entries == 0) {
        result.error = "racks array is empty";
        return result;
    }

    result.ok = true;
    return result;
}

} // namespace suit::fleet
