/**
 * @file
 * Mergeable aggregates of a fleet run.
 *
 * The fleet engine streams per-domain DomainResults into one
 * FleetAccumulator per shard and merges the shards in shard order —
 * a million-domain run keeps a few accumulators alive, never a
 * million results.  Every floating-point total is an
 * util::ExactSum, so the merged aggregate is *bit-identical* to a
 * serial accumulation no matter how the domains were sharded or how
 * many workers ran them; the integer counters and the slowdown
 * BucketHistogram are associative by construction.
 *
 * Accumulators serialize to the same length-checked little-endian
 * binary style as sim::result_io, which is what the checkpoint
 * journal's blob records persist: a resumed fleet run restores each
 * finished shard's accumulator bit-for-bit.
 */

#ifndef SUIT_FLEET_ACCUMULATOR_HH
#define SUIT_FLEET_ACCUMULATOR_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/domain_sim.hh"
#include "util/stats.hh"

namespace suit::fleet {

/**
 * Upper bounds (percent) of the per-domain slowdown histogram.  The
 * layout is a fleet-wide constant so shard histograms always merge;
 * the range spans "noise" (0.01 %) to "catastrophic" (50 %), roughly
 * log-spaced like the paper's slowdown plots.
 */
const std::vector<double> &slowdownBoundsPct();

/** Aggregated totals of one rack's domains. */
struct RackTotals
{
    /** Domains accumulated so far. */
    std::uint64_t domains = 0;
    /** Sum of conservative-baseline package power (W). */
    suit::util::ExactSum wattsBefore;
    /** Sum of SUIT package power: basePowerW * powerFactor (W). */
    suit::util::ExactSum wattsAfter;
    /** Sum of per-domain perfDelta() (for the mean). */
    suit::util::ExactSum perfDeltaSum;
    /** Sum of per-domain efficient-curve time shares. */
    suit::util::ExactSum efficientShareSum;
    /** Sum of per-domain simulated core-seconds. */
    suit::util::ExactSum durationSum;
    /** #DO exceptions taken. */
    std::uint64_t traps = 0;
    /** Instructions emulated in software. */
    std::uint64_t emulations = 0;
    /** Completed p-state transitions. */
    std::uint64_t pstateSwitches = 0;
    /** Thrash-prevention activations. */
    std::uint64_t thrashDetections = 0;

    /** Merge another rack's totals (exact, grouping-independent). */
    void merge(const RackTotals &other);
};

/** Mergeable per-shard (and, merged, whole-fleet) aggregates. */
class FleetAccumulator
{
  public:
    /** Accumulator with no rack slots (deserialization target). */
    FleetAccumulator();

    /** @param racks number of racks in the fleet spec. */
    explicit FleetAccumulator(std::size_t racks);

    /**
     * Fold one domain's outcome into rack @p rack.
     *
     * @param rack rack index (asserted in range).
     * @param basePowerW conservative-baseline package power of the
     *        domain's CPU share (W).
     * @param result the simulation outcome.
     */
    void addDomain(std::size_t rack, double basePowerW,
                   const suit::sim::DomainResult &result);

    /**
     * Merge @p other into this accumulator.  Rack counts must match
     * (asserted).  Exact sums make the merge order irrelevant to the
     * final value() bits, but the engine still merges in shard order
     * so even the internal part lists are deterministic.
     */
    void merge(const FleetAccumulator &other);

    /** Number of rack slots. */
    std::size_t rackCount() const { return racks_.size(); }
    /** Totals of rack @p i (asserted in range). */
    const RackTotals &rack(std::size_t i) const;
    /** Sum of every rack's domain count. */
    std::uint64_t totalDomains() const;
    /** Fleet-wide histogram of per-domain slowdown (percent). */
    const suit::util::BucketHistogram &slowdownHist() const
    {
        return slowdown_;
    }

    /** Append this accumulator's binary image to @p out. */
    void serialize(std::string &out) const;

    /**
     * Decode one accumulator from @p data starting at @p offset.
     * On success advances @p offset and returns true; on truncated
     * or malformed input returns false (@p offset and *this are then
     * unspecified).
     */
    bool deserialize(const char *data, std::size_t size,
                     std::size_t &offset);

  private:
    std::vector<RackTotals> racks_;
    suit::util::BucketHistogram slowdown_;
};

} // namespace suit::fleet

#endif // SUIT_FLEET_ACCUMULATOR_HH
