#include "fleet/accumulator.hh"

#include <algorithm>
#include <bit>

#include "util/logging.hh"

namespace suit::fleet {

namespace {

void
putU64(std::uint64_t v, std::string &out)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
putDouble(double v, std::string &out)
{
    putU64(std::bit_cast<std::uint64_t>(v), out);
}

void
putSum(const suit::util::ExactSum &sum, std::string &out)
{
    putU64(sum.parts().size(), out);
    for (const double part : sum.parts())
        putDouble(part, out);
}

/** Bounds-checked little-endian reader (result_io style). */
class Reader
{
  public:
    Reader(const char *data, std::size_t size, std::size_t offset)
        : data_(data), size_(size), pos_(offset)
    {
    }

    bool ok() const { return ok_; }
    std::size_t pos() const { return pos_; }

    std::uint64_t u64()
    {
        if (!take(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(data_[pos_ - 8 + i]))
                 << (8 * i);
        return v;
    }

    double f64() { return std::bit_cast<double>(u64()); }

    bool sum(suit::util::ExactSum &out)
    {
        const std::uint64_t parts = u64();
        if (!ok_ || parts > (size_ - pos_) / 8)
            return false;
        std::vector<double> values;
        values.reserve(parts);
        for (std::uint64_t i = 0; i < parts; ++i)
            values.push_back(f64());
        if (!ok_)
            return false;
        out = suit::util::ExactSum::fromParts(std::move(values));
        return true;
    }

  private:
    bool take(std::size_t n)
    {
        if (!ok_ || n > size_ - pos_) {
            ok_ = false;
            return false;
        }
        pos_ += n;
        return true;
    }

    const char *data_;
    std::size_t size_;
    std::size_t pos_;
    bool ok_ = true;
};

constexpr std::uint64_t kFormatVersion = 1;

} // namespace

const std::vector<double> &
slowdownBoundsPct()
{
    static const std::vector<double> bounds{
        0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0,
        50.0};
    return bounds;
}

void
RackTotals::merge(const RackTotals &other)
{
    domains += other.domains;
    wattsBefore.merge(other.wattsBefore);
    wattsAfter.merge(other.wattsAfter);
    perfDeltaSum.merge(other.perfDeltaSum);
    efficientShareSum.merge(other.efficientShareSum);
    durationSum.merge(other.durationSum);
    traps += other.traps;
    emulations += other.emulations;
    pstateSwitches += other.pstateSwitches;
    thrashDetections += other.thrashDetections;
}

FleetAccumulator::FleetAccumulator()
    : slowdown_(slowdownBoundsPct())
{
}

FleetAccumulator::FleetAccumulator(std::size_t racks)
    : racks_(racks), slowdown_(slowdownBoundsPct())
{
}

void
FleetAccumulator::addDomain(std::size_t rack, double basePowerW,
                            const suit::sim::DomainResult &result)
{
    SUIT_ASSERT(rack < racks_.size(),
                "rack %zu out of range (%zu racks)", rack,
                racks_.size());
    RackTotals &totals = racks_[rack];
    ++totals.domains;
    totals.wattsBefore.add(basePowerW);
    totals.wattsAfter.add(basePowerW * result.powerFactor);
    const double perfDelta = result.perfDelta();
    totals.perfDeltaSum.add(perfDelta);
    totals.efficientShareSum.add(result.efficientShare);
    double duration = 0.0;
    for (const suit::sim::CoreResult &core : result.cores)
        duration += core.durationS;
    totals.durationSum.add(duration);
    totals.traps += result.traps;
    totals.emulations += result.emulations;
    totals.pstateSwitches += result.pstateSwitches;
    totals.thrashDetections += result.thrashDetections;
    slowdown_.add(std::max(0.0, -perfDelta * 100.0));
}

void
FleetAccumulator::merge(const FleetAccumulator &other)
{
    SUIT_ASSERT(racks_.size() == other.racks_.size(),
                "merging fleet accumulators with different rack "
                "counts (%zu vs %zu)",
                racks_.size(), other.racks_.size());
    for (std::size_t i = 0; i < racks_.size(); ++i)
        racks_[i].merge(other.racks_[i]);
    slowdown_.merge(other.slowdown_);
}

const RackTotals &
FleetAccumulator::rack(std::size_t i) const
{
    SUIT_ASSERT(i < racks_.size(), "rack %zu out of range (%zu racks)",
                i, racks_.size());
    return racks_[i];
}

std::uint64_t
FleetAccumulator::totalDomains() const
{
    std::uint64_t total = 0;
    for (const RackTotals &totals : racks_)
        total += totals.domains;
    return total;
}

void
FleetAccumulator::serialize(std::string &out) const
{
    putU64(kFormatVersion, out);
    putU64(racks_.size(), out);
    for (const RackTotals &totals : racks_) {
        putU64(totals.domains, out);
        putSum(totals.wattsBefore, out);
        putSum(totals.wattsAfter, out);
        putSum(totals.perfDeltaSum, out);
        putSum(totals.efficientShareSum, out);
        putSum(totals.durationSum, out);
        putU64(totals.traps, out);
        putU64(totals.emulations, out);
        putU64(totals.pstateSwitches, out);
        putU64(totals.thrashDetections, out);
    }
    putU64(slowdown_.bucketCount(), out);
    for (std::size_t i = 0; i < slowdown_.bucketCount(); ++i)
        putU64(slowdown_.count(i), out);
}

bool
FleetAccumulator::deserialize(const char *data, std::size_t size,
                              std::size_t &offset)
{
    Reader r(data, size, offset);
    if (r.u64() != kFormatVersion)
        return false;

    const std::uint64_t racks = r.u64();
    // Element floor: 10 u64 fields per rack minimum.
    if (!r.ok() || racks > (size - r.pos()) / 80)
        return false;
    racks_.assign(racks, RackTotals{});
    for (std::uint64_t i = 0; i < racks; ++i) {
        RackTotals &totals = racks_[i];
        totals.domains = r.u64();
        if (!r.sum(totals.wattsBefore) || !r.sum(totals.wattsAfter) ||
            !r.sum(totals.perfDeltaSum) ||
            !r.sum(totals.efficientShareSum) ||
            !r.sum(totals.durationSum))
            return false;
        totals.traps = r.u64();
        totals.emulations = r.u64();
        totals.pstateSwitches = r.u64();
        totals.thrashDetections = r.u64();
        if (!r.ok())
            return false;
    }

    const std::uint64_t buckets = r.u64();
    suit::util::BucketHistogram hist(slowdownBoundsPct());
    if (!r.ok() || buckets != hist.bucketCount())
        return false;
    for (std::uint64_t i = 0; i < buckets; ++i) {
        const std::uint64_t n = r.u64();
        if (!r.ok())
            return false;
        if (n != 0)
            hist.addCount(i, n);
    }
    slowdown_ = std::move(hist);

    offset = r.pos();
    return true;
}

} // namespace suit::fleet
