#include "isa/faultable.hh"

#include "util/logging.hh"

namespace suit::isa {

namespace {

struct KindInfo
{
    const char *name;
    int faultCount;  //!< Table 1
    double vminMv;   //!< relative Vmin within the variation band
    bool simd;
};

// Relative Vmin above the core's crash voltage (~250 mV below the
// operating point).  IMUL faults first, at roughly -100 mV from
// nominal (Murdoch et al.), i.e. 150 mV above the crash point; the
// SIMD/AES cluster follows 55-90 mV lower (Kogler et al. measured
// >60 mV of instruction-to-instruction variation), and the rarely
// faulting stragglers sit just above the crash point.
constexpr KindInfo kKinds[kNumFaultableKinds] = {
    {"IMUL",       79, 150.0, false},
    {"VOR",        47,  95.0, true},
    {"AESENC",     40,  93.0, false},
    {"VXOR",       40,  92.0, true},
    {"VANDN",      30,  87.0, true},
    {"VAND",       28,  85.0, true},
    {"VSQRTPD",    24,  82.0, true},
    {"VPCLMULQDQ", 16,  77.0, true},
    {"VPSRAD",      9,  72.0, true},
    {"VPCMP",       5,  68.0, true},
    {"VPMAX",       3,  66.0, true},
    {"VPADDQ",      1,  63.0, true},
};

const KindInfo &
info(FaultableKind kind)
{
    const auto idx = static_cast<std::size_t>(kind);
    SUIT_ASSERT(idx < kNumFaultableKinds, "bad FaultableKind %zu", idx);
    return kKinds[idx];
}

} // namespace

const char *
toString(FaultableKind kind)
{
    return info(kind).name;
}

FaultableKind
faultableKindFromString(const std::string &name)
{
    for (std::size_t i = 0; i < kNumFaultableKinds; ++i) {
        if (name == kKinds[i].name)
            return static_cast<FaultableKind>(i);
    }
    suit::util::fatal("unknown faultable instruction '%s'",
                      name.c_str());
}

int
publishedFaultCount(FaultableKind kind)
{
    return info(kind).faultCount;
}

double
relativeVminMv(FaultableKind kind)
{
    return info(kind).vminMv;
}

bool
isSimd(FaultableKind kind)
{
    return info(kind).simd;
}

std::array<FaultableKind, kNumFaultableKinds>
allFaultableKinds()
{
    std::array<FaultableKind, kNumFaultableKinds> kinds;
    for (std::size_t i = 0; i < kNumFaultableKinds; ++i)
        kinds[i] = static_cast<FaultableKind>(i);
    return kinds;
}

FaultableSet
FaultableSet::all()
{
    FaultableSet s;
    s.bits_ = (1u << kNumFaultableKinds) - 1;
    return s;
}

FaultableSet
FaultableSet::suitTrapSet()
{
    FaultableSet s = all();
    s.erase(FaultableKind::IMUL);
    return s;
}

void
FaultableSet::insert(FaultableKind kind)
{
    bits_ |= 1u << static_cast<unsigned>(kind);
}

void
FaultableSet::erase(FaultableKind kind)
{
    bits_ &= ~(1u << static_cast<unsigned>(kind));
}

bool
FaultableSet::contains(FaultableKind kind) const
{
    return bits_ & (1u << static_cast<unsigned>(kind));
}

int
FaultableSet::count() const
{
    return __builtin_popcount(bits_);
}

FaultableSet
FaultableSet::fromBits(std::uint32_t bits)
{
    SUIT_ASSERT(bits < (1u << kNumFaultableKinds),
                "MSR bit pattern %x has unknown kinds set", bits);
    FaultableSet s;
    s.bits_ = bits;
    return s;
}

} // namespace suit::isa
