/**
 * @file
 * The faultable instruction taxonomy (paper Table 1).
 *
 * Kogler et al.'s Minefield study found that when undervolting x86
 * CPUs, a small set of instructions produces wrong *data* results
 * long before anything else breaks.  SUIT's entire design revolves
 * around this set: IMUL (so frequent it is hardened statically) and a
 * handful of SIMD/AES instructions (infrequent; trapped via #DO).
 * This header enumerates the set, carries the published fault counts
 * and orders the instructions by the voltage at which they start
 * faulting.
 */

#ifndef SUIT_ISA_FAULTABLE_HH
#define SUIT_ISA_FAULTABLE_HH

#include <array>
#include <cstdint>
#include <string>

namespace suit::isa {

/**
 * Instruction classes observed to fault under undervolting
 * (paper Table 1, ordered by observed fault count, descending).
 */
enum class FaultableKind : std::uint8_t
{
    IMUL,       //!< integer multiply (IMUL/MUL family)
    VOR,        //!< vector bitwise OR (VOR*)
    AESENC,     //!< AES-NI round encryption
    VXOR,       //!< vector bitwise XOR (VXOR*)
    VANDN,      //!< vector AND-NOT (VANDN*)
    VAND,       //!< vector bitwise AND (VAND*)
    VSQRTPD,    //!< packed double square root
    VPCLMULQDQ, //!< carry-less multiply
    VPSRAD,     //!< packed arithmetic shift right
    VPCMP,      //!< packed compare (VPCMP*)
    VPMAX,      //!< packed maximum (VPMAX*)
    VPADDQ,     //!< packed 64-bit add
    NumKinds,
};

/** Number of distinct faultable instruction classes. */
constexpr std::size_t kNumFaultableKinds =
    static_cast<std::size_t>(FaultableKind::NumKinds);

/** Mnemonic string for a kind (e.g. "IMUL", "VPCLMULQDQ"). */
const char *toString(FaultableKind kind);

/** Parse a mnemonic; fatal() on unknown names. */
FaultableKind faultableKindFromString(const std::string &name);

/**
 * Observed fault count per kind from Table 1 of the paper (79 for
 * IMUL down to 1 for VPADDQ).  A "fault" is one (core, frequency,
 * offset) combination at which the instruction misbehaved.
 */
int publishedFaultCount(FaultableKind kind);

/**
 * Relative Vmin of the instruction within the instruction-variation
 * band, in mV above the band's floor.  Frequently faulting
 * instructions (IMUL) fault at *higher* voltages, i.e. they have the
 * largest offsets; rarely faulting ones sit near the floor (paper
 * Table 1 caption).  The band spans ~70 mV on the studied CPUs.
 */
double relativeVminMv(FaultableKind kind);

/** True for the SIMD members of the set (everything but IMUL/AESENC
 *  is SIMD; AESENC is an SSE/VAES instruction and also disabled when
 *  compiling without SIMD, but the paper groups it separately because
 *  software AES can replace it). */
bool isSimd(FaultableKind kind);

/** All kinds, in Table 1 order. */
std::array<FaultableKind, kNumFaultableKinds> allFaultableKinds();

/**
 * Bitmask set of faultable kinds, the in-model analogue of SUIT's
 * per-domain DISABLE_OPCODE MSR contents.
 */
class FaultableSet
{
  public:
    /** Empty set. */
    constexpr FaultableSet() = default;

    /** Set with every faultable kind enabled. */
    static FaultableSet all();

    /**
     * The set SUIT disables on the efficient curve: everything except
     * IMUL, which is statically hardened via the 4-cycle pipeline
     * (paper Sec. 4.2) and therefore never needs trapping.
     */
    static FaultableSet suitTrapSet();

    /** Add a kind to the set. */
    void insert(FaultableKind kind);
    /** Remove a kind from the set. */
    void erase(FaultableKind kind);
    /** Membership test. */
    bool contains(FaultableKind kind) const;
    /** Number of kinds in the set. */
    int count() const;
    /** True if no kind is in the set. */
    bool empty() const { return bits_ == 0; }
    /** Raw bitmask (bit i = kind i), the MSR encoding. */
    std::uint32_t bits() const { return bits_; }
    /** Rebuild from an MSR bit pattern. */
    static FaultableSet fromBits(std::uint32_t bits);

    bool operator==(const FaultableSet &other) const = default;

  private:
    std::uint32_t bits_ = 0;
};

} // namespace suit::isa

#endif // SUIT_ISA_FAULTABLE_HH
