/**
 * @file
 * Experiment runner on top of the domain simulator.
 *
 * Turns (CPU, workload, configuration) into the rows of the paper's
 * Table 6 and Fig. 16: generates the synthetic traces, lays them out
 * over DVFS domains according to the CPU's topology (CPU A: all
 * utilised cores in one shared domain; CPUs B and C: per-core
 * domains) and aggregates suite-level geomean / median deltas.
 */

#ifndef SUIT_SIM_EVALUATION_HH
#define SUIT_SIM_EVALUATION_HH

#include <string>
#include <vector>

#include "sim/domain_sim.hh"
#include "sim/trace_cache.hh"
#include "sim/workspace.hh"

namespace suit::sim {

/** One evaluated configuration. */
struct EvalConfig
{
    /** Machine model (not owned). */
    const suit::power::CpuModel *cpu = nullptr;
    /** Utilised cores (subscript in the paper: A1, A4). */
    int cores = 1;
    /** Undervolt offset of the efficient curve (negative mV). */
    double offsetMv = -97.0;
    /** Operating mode. */
    RunMode mode = RunMode::Suit;
    /** Strategy for RunMode::Suit. */
    suit::core::StrategyKind strategy =
        suit::core::StrategyKind::CombinedFv;
    /** Strategy parameters; Table 7 defaults via optimalParams(). */
    suit::core::StrategyParams params;
    /** Root seed for trace generation and delay jitter. */
    std::uint64_t seed = 1;
    /**
     * Run the simulator's pre-optimization reference event loop
     * (SimConfig::referencePath); for golden-identity tests and
     * speedup benchmarks only.  Deliberately not part of the sweep
     * fingerprint — both paths produce bit-identical results.
     */
    bool referencePath = false;
    /**
     * Cooperative cancellation token polled by the simulator's event
     * loop (runtime::Cancelled is thrown mid-run when it trips).
     * Like referencePath, deliberately not part of the sweep
     * fingerprint — cancellation never changes a completed result.
     */
    const suit::runtime::CancelToken *cancel = nullptr;
};

/** Result of one workload under one configuration. */
struct WorkloadRow
{
    /** Workload name. */
    std::string workload;
    /** Simulation outcome (multi-domain results merged). */
    DomainResult result;
};

/**
 * Run @p profile under @p config.
 *
 * On a shared-domain CPU all utilised cores execute independent
 * streams of the workload inside one domain; on per-core-domain CPUs
 * the result is core-count independent and a single domain is run.
 *
 * Trace generation is memoised in @p traces (thread-safe); the
 * two-argument overload uses the process-wide globalTraceCache().
 * runWorkload itself is a pure function of (config, profile) — safe
 * to call from multiple threads, which is what the suit::exec sweep
 * engine does.
 */
DomainResult runWorkload(const EvalConfig &config,
                         const suit::trace::WorkloadProfile &profile,
                         TraceCache &traces);

/** As above, memoising traces in the process-wide cache. */
DomainResult runWorkload(const EvalConfig &config,
                         const suit::trace::WorkloadProfile &profile);

/**
 * Allocation-free variant: evaluates into @p ws, reusing its
 * simulator, pin/work vectors and result scratch.  Returns a
 * reference to ws.result, valid until the workspace's next use.
 * Bit-identical to the allocating overloads (workspace reuse only
 * rebinds buffers; the golden suite compares the serialized bytes).
 */
const DomainResult &
runWorkload(const EvalConfig &config,
            const suit::trace::WorkloadProfile &profile,
            TraceCache &traces, SimWorkspace &ws);

/** Run every profile in @p profiles (serial reference path). */
std::vector<WorkloadRow>
runSuite(const EvalConfig &config,
         const std::vector<suit::trace::WorkloadProfile> &profiles);

/** Geometric-mean of deltas: geomean(1 + d_i) - 1. */
double gmeanDelta(const std::vector<double> &deltas);

/** Median of deltas. */
double medianDelta(std::vector<double> deltas);

/** Suite-level aggregation of a set of rows. */
struct SuiteSummary
{
    double gmeanPerf = 0.0;
    double gmeanPower = 0.0;
    double gmeanEff = 0.0;
    double medianPerf = 0.0;
    double medianPower = 0.0;
    double medianEff = 0.0;
    double meanEfficientShare = 0.0;

    /** Aggregate a set of workload rows. */
    static SuiteSummary of(const std::vector<WorkloadRow> &rows);
};

} // namespace suit::sim

#endif // SUIT_SIM_EVALUATION_HH
