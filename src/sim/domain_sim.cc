#include "sim/domain_sim.hh"

#include <algorithm>
#include <limits>

#include "emu/dispatcher.hh"
#include "emu/simd_ops.hh"
#include "obs/registry.hh"
#include "util/format.hh"
#include "util/logging.hh"

namespace suit::sim {

using suit::core::StrategyKind;
using suit::power::kNumSuitPStates;
using suit::power::pstateIndex;
using suit::power::SuitPState;
using suit::util::Tick;

namespace {

constexpr Tick kNever = std::numeric_limits<Tick>::max();

/**
 * Outer-loop iterations between cancellation polls.  A poll is two
 * relaxed atomic loads (plus a clock read only when a deadline is
 * armed); at ~4k iterations the amortised cost is unmeasurable while
 * the reaction latency stays far below human-visible.
 */
constexpr std::uint32_t kCancelPollInterval = 4096;

/**
 * Min-reduction over the arrival row: the index of the earliest
 * arrival, ties to the lowest core (a strict < scan).  Narrow
 * domains inline the branch-free scalar scan; wide rows — or a
 * forced emu::ScanImpl::Vector toggle — go through the emu kernel.
 * @p fn_scan is hoisted per run/window so the per-event cost is one
 * predictable branch.
 */
inline std::size_t
scanArrivals(const Tick *arrival, std::size_t n, bool fn_scan)
{
    if (fn_scan)
        return suit::emu::minIndexU64(arrival, n);
    std::size_t win = 0;
    Tick best = arrival[0];
    for (std::size_t i = 1; i < n; ++i) {
        const Tick a = arrival[i];
        win = a < best ? i : win;
        best = a < best ? a : best;
    }
    return win;
}

/** Should arrival scans call the emu kernel for @p n lanes? */
inline bool
useFnScan(std::size_t n)
{
    return n >= suit::emu::kVectorScanMinLanes ||
           suit::emu::arrivalScanImpl() == suit::emu::ScanImpl::Vector;
}

/**
 * @{ secondsToTicks()/ticksToSeconds() for values known to fit in 63
 * bits.  Every simulated time does: 2^63 ps is ~106 days and traces
 * run for seconds.  Converting through int64 yields the identical
 * double/Tick for such values — the cast is what the unsigned
 * conversion computes after its range fixup — but lets the compiler
 * drop the fixup branch from the hot windows.  (A value >= 2^63
 * would be UB here; the UBSan suite run guards the invariant.)
 */
inline Tick
windowSecondsToTicks(double s)
{
    return static_cast<Tick>(static_cast<std::int64_t>(
        s * static_cast<double>(suit::util::kTicksPerSec)));
}

inline double
windowTicksToSeconds(Tick t)
{
    return static_cast<double>(static_cast<std::int64_t>(t)) /
           static_cast<double>(suit::util::kTicksPerSec);
}
/** @} */

/** Does moving between two p-states change the clock frequency? */
bool
frequencyEdge(SuitPState from, SuitPState to)
{
    const bool from_low = from == SuitPState::ConservativeFreq;
    const bool to_low = to == SuitPState::ConservativeFreq;
    return from_low != to_low;
}

/** Does it change the supply voltage? */
bool
voltageEdge(SuitPState from, SuitPState to)
{
    const bool from_high = from == SuitPState::ConservativeVolt;
    const bool to_high = to == SuitPState::ConservativeVolt;
    return from_high != to_high;
}

} // namespace

double
DomainResult::perfDelta() const
{
    if (cores.empty())
        return 0.0;
    double sum = 0.0;
    for (const CoreResult &c : cores)
        sum += c.perfDelta();
    return sum / static_cast<double>(cores.size());
}

double
DomainResult::efficiencyDelta() const
{
    return (1.0 + perfDelta()) / (1.0 + powerDelta()) - 1.0;
}

DomainSimulator::DomainSimulator() = default;

DomainSimulator::DomainSimulator(const SimConfig &config,
                                 std::vector<CoreWork> work)
{
    reset(config, work);
}

void
DomainSimulator::reset(const SimConfig &config,
                       const std::vector<CoreWork> &work)
{
    cfg_ = config;
    rng_ = suit::util::Rng(config.seed);

    SUIT_ASSERT(cfg_.cpu != nullptr, "simulation needs a CPU model");
    SUIT_ASSERT(!work.empty(), "simulation needs at least one core");

    // Capacity-reusing re-initialisation: assign()/clear() write the
    // same values a fresh construction would, into buffers that keep
    // their allocation across resets.
    nCores_ = work.size();
    remaining_.assign(nCores_, 0.0);
    resume_.assign(nCores_, 0);
    arrival_.assign(nCores_, 0);
    arrivalStale_.assign(nCores_, 1);
    doneMask_.assign(nCores_, 0);
    rates_.assign(static_cast<std::size_t>(kNumSuitPStates) * nCores_,
                  0.0);
    cores_.clear();
    cores_.reserve(nCores_);

    now_ = 0;
    pending_.reset();
    timer_ = suit::core::DeadlineTimer();
    trappingCore_ = 0;
    powerIntegralS_ = 0.0;
    activeTimeS_ = 0.0;
    for (double &t : stateTimeS_)
        t = 0.0;
    traps_ = 0;
    emulations_ = 0;
    switches_ = 0;
    stateLog_.clear();
    trace_ = nullptr;
    track_ = 0;
    for (std::uint64_t &n : trapsByKind_)
        n = 0;
    batchedEvents_ = 0;
    for (double &p : powerTbl_)
        p = 1.0;

    for (const CoreWork &w : work) {
        SUIT_ASSERT(w.trace && w.profile,
                    "every core needs a trace and its profile");
        const std::size_t i = cores_.size();
        Core core;
        core.work = w;
        if (cfg_.mode == RunMode::NoSimdCompile) {
            // Compiled without SIMD: the trappable instructions do
            // not exist; drain the whole stream in one piece.
            core.pastLastEvent = true;
            remaining_[i] =
                static_cast<double>(w.trace->totalInstructions());
        } else if (w.trace->events().empty()) {
            core.pastLastEvent = true;
            remaining_[i] =
                static_cast<double>(w.trace->totalInstructions());
        } else {
            remaining_[i] =
                static_cast<double>(w.trace->events()[0].gap);
        }
        cores_.push_back(core);
    }

    if (cfg_.recordStateLog) {
        // Every trap logs one entry and most switches follow a trap,
        // so twice the event count (plus slack for timer-driven
        // returns) covers the log without growth reallocations.
        std::size_t events = 0;
        for (const CoreWork &w : work)
            events += w.trace->eventCount();
        stateLog_.reserve(2 * events + 64);
    }

    // No arena clear() here: emplace() recycles a same-kind occupant
    // in place (fresh-constructed state, warm detector buffers), which
    // is what keeps the steady-state reuse path allocation-free.
    strategy_ = nullptr;
    if (cfg_.mode == RunMode::Suit) {
        strategy_ = strategyArena_.emplace(cfg_.strategy, cfg_.params);
        pstate_ = SuitPState::Efficient;
        disabled_ = true;
    } else if (cfg_.mode == RunMode::NoSimdCompile) {
        pstate_ = SuitPState::Efficient;
        disabled_ = true;
    } else {
        pstate_ = SuitPState::ConservativeVolt;
        disabled_ = false;
    }

    // Fast-path invariant tables.  Every entry is produced by the
    // same per-call function the reference loop uses, so the fast
    // loop feeds bit-identical doubles into the same arithmetic.
    for (std::size_t i = 0; i < nCores_; ++i) {
        for (const SuitPState p :
             {SuitPState::Efficient, SuitPState::ConservativeFreq,
              SuitPState::ConservativeVolt}) {
            rates_[static_cast<std::size_t>(pstateIndex(p)) * nCores_ +
                   i] = instrRate(i, p);
        }
    }
    if (cfg_.mode != RunMode::Baseline) {
        const suit::power::PStateFactors f =
            cfg_.cpu->factorsAt(cfg_.offsetMv);
        for (int i = 0; i < kNumSuitPStates; ++i)
            powerTbl_[i] = f.power[i];
    }

    if (!cfg_.obsBypass)
        trace_ = suit::obs::activeTrace();
    if (trace_) {
        track_ = trace_->newTrack(
            suit::obs::TraceSession::kSimPid,
            suit::util::sformat(
                "domain:%s", cores_[0].work.trace->name().c_str()));
        tracePState(0, pstate_, "init");
    }
}

void
DomainSimulator::tracePState(Tick when, SuitPState to, const char *how)
{
    trace_->instant(suit::obs::TraceSession::kSimPid, track_,
                    suit::obs::TraceSession::simUs(when), "pstate",
                    "sim",
                    {{"to", suit::power::toString(to)}, {"how", how}});
}

DomainSimulator::~DomainSimulator() = default;

double
DomainSimulator::instrRate(std::size_t i, SuitPState p) const
{
    const auto &profile = *cores_[i].work.profile;
    const double base = profile.ipc * cfg_.cpu->baseFreqHz();
    if (cfg_.mode == RunMode::Baseline)
        return base;

    double rate = base * cfg_.cpu->perfFactor(p, cfg_.offsetMv);
    // SUIT hardware ships the 4-cycle IMUL in every mode (Sec. 6.2).
    rate *= 1.0 - suit::trace::imulLatencyOverhead(profile.imulFraction);

    if (cfg_.mode == RunMode::NoSimdCompile ||
        (cfg_.mode == RunMode::Suit &&
         cfg_.strategy == StrategyKind::Emulation)) {
        // No-SIMD compilation, or emulation standing in for the SIMD
        // work (paper Sec. 6.2, "Instruction Emulation").
        rate *= 1.0 + profile.noSimdFor(cfg_.cpu->isAmd());
    }
    return rate;
}

double
DomainSimulator::powerFactorOf(SuitPState p) const
{
    if (cfg_.mode == RunMode::Baseline)
        return 1.0;
    return cfg_.cpu->powerFactor(p, cfg_.offsetMv);
}

Tick
DomainSimulator::now() const
{
    return now_;
}

SuitPState
DomainSimulator::currentPState() const
{
    return pstate_;
}

bool
DomainSimulator::instructionsDisabled() const
{
    return disabled_;
}

void
DomainSimulator::setInstructionsDisabled(bool disabled)
{
    disabled_ = disabled;
}

void
DomainSimulator::setTimerInterrupt(Tick reload)
{
    timer_.arm(now_, reload);
}

void
DomainSimulator::invalidateArrivals()
{
    for (std::size_t i = 0; i < nCores_; ++i)
        arrivalStale_[i] = 1;
}

void
DomainSimulator::refreshArrivals()
{
    for (std::size_t i = 0; i < nCores_; ++i) {
        if (arrivalStale_[i]) {
            arrival_[i] = coreArrivalFast(i);
            arrivalStale_[i] = 0;
        }
    }
}

void
DomainSimulator::cancelPending()
{
    pending_.reset();
    invalidateArrivals();
}

void
DomainSimulator::cancelPendingPState()
{
    cancelPending();
}

void
DomainSimulator::changePStateWait(SuitPState target)
{
    cancelPending();
    if (pstate_ == target)
        return;

    const auto &tm = cfg_.cpu->transitions();
    Tick delay = 0;
    const bool f_edge = frequencyEdge(pstate_, target);
    const bool v_edge = voltageEdge(pstate_, target);
    if (v_edge)
        delay += tm.voltageChange.sample(rng_);
    if (f_edge)
        delay += tm.freqChange.sample(rng_);

    const Tick until = now_ + delay;
    if (f_edge && tm.stallsOnFreqChange) {
        // The shared clock re-locks: every core in the domain stalls.
        for (std::size_t i = 0; i < nCores_; ++i) {
            if (!cores_[i].done)
                resume_[i] = std::max(resume_[i], until);
        }
    } else {
        // Only the core spinning in the handler is blocked.
        resume_[trappingCore_] =
            std::max(resume_[trappingCore_], until);
    }

    pstate_ = target;
    ++switches_;
    if (cfg_.recordStateLog)
        stateLog_.push_back({until, pstate_, false});
    if (trace_)
        tracePState(until, pstate_, "wait");
    invalidateArrivals();
}

void
DomainSimulator::changePStateAsync(SuitPState target)
{
    cancelPending();
    if (pstate_ == target)
        return;

    const auto &tm = cfg_.cpu->transitions();
    Tick delay = 0;
    Tick stall = 0;
    if (voltageEdge(pstate_, target))
        delay += tm.voltageChange.sample(rng_);
    if (frequencyEdge(pstate_, target)) {
        delay += tm.freqChange.sample(rng_);
        if (tm.stallsOnFreqChange)
            stall = tm.freqChangeStall.sample(rng_);
    }
    PendingTransition p;
    p.target = target;
    p.completeAt = now_ + delay;
    p.runUntil = p.completeAt - std::min(stall, delay);
    pending_ = p;
    invalidateArrivals();
}

void
DomainSimulator::completePending()
{
    SUIT_ASSERT(pending_.has_value(), "no transition to complete");
    pstate_ = pending_->target;
    pending_.reset();
    ++switches_;
    if (cfg_.recordStateLog)
        stateLog_.push_back({now_, pstate_, false});
    if (trace_)
        tracePState(now_, pstate_, "async");
    invalidateArrivals();
}

Tick
DomainSimulator::emulationCostTicks(suit::isa::FaultableKind kind) const
{
    const double body_s = suit::emu::emulationCostCycles(kind) /
                          cfg_.cpu->baseFreqHz();
    return suit::util::microsecondsToTicks(cfg_.cpu->emulationCallUs()) +
           suit::util::secondsToTicks(body_s);
}

void
DomainSimulator::advanceToRef(Tick t)
{
    SUIT_ASSERT(t >= now_, "time cannot run backwards");
    if (t == now_)
        return;

    // Every core's progress is integrated up to now_ — the historical
    // per-core lastUpdate always equalled now_ outside this function,
    // so the interval below is [now_, t) for every core.
    const Tick from = now_;
    const double pf = powerFactorOf(pstate_);
    for (std::size_t i = 0; i < nCores_; ++i) {
        if (cores_[i].done)
            continue;
        const double dt_s = suit::util::ticksToSeconds(t - from);
        powerIntegralS_ += pf * dt_s;
        activeTimeS_ += dt_s;
        stateTimeS_[pstateIndex(pstate_)] += dt_s;

        // Instruction progress: clip stalls and the transition's
        // frozen window out of [from, t).
        Tick lo = std::max(from, resume_[i]);
        Tick hi = t;
        double progress_s = 0.0;
        if (lo < hi) {
            progress_s = suit::util::ticksToSeconds(hi - lo);
            if (pending_) {
                const Tick f_lo = std::max(lo, pending_->runUntil);
                const Tick f_hi = std::min(hi, pending_->completeAt);
                if (f_lo < f_hi)
                    progress_s -=
                        suit::util::ticksToSeconds(f_hi - f_lo);
            }
        }
        remaining_[i] -= progress_s * instrRate(i, pstate_);
        remaining_[i] = std::max(remaining_[i], 0.0);
    }
    now_ = t;
}

Tick
DomainSimulator::coreArrivalRef(std::size_t i) const
{
    if (cores_[i].done)
        return kNever;
    const Tick start = std::max(now_, resume_[i]);
    const Tick cap =
        pending_ ? pending_->runUntil : kNever;
    if (pending_ && start >= cap)
        return kNever; // frozen: the completion event goes first
    const double rate = instrRate(i, pstate_);
    const double need_s = remaining_[i] / rate;
    const Tick arrival = start + suit::util::secondsToTicks(need_s);
    if (pending_ && arrival > cap)
        return kNever;
    return arrival;
}

void
DomainSimulator::advanceToFast(Tick t)
{
    SUIT_ASSERT(t >= now_, "time cannot run backwards");
    if (t == now_)
        return;

    const int sidx = pstateIndex(pstate_);
    const double pf = powerTbl_[sidx];
    const double *rate = &rates_[static_cast<std::size_t>(sidx) *
                                 nCores_];
    // As in advanceToRef(): progress is integrated up to now_ for
    // every core, so the shared interval is [now_, t) and one dt_s
    // serves the whole domain.
    const double dt_s = suit::util::ticksToSeconds(t - now_);
    for (std::size_t i = 0; i < nCores_; ++i) {
        if (cores_[i].done)
            continue;
        powerIntegralS_ += pf * dt_s;
        activeTimeS_ += dt_s;
        stateTimeS_[sidx] += dt_s;

        const Tick lo = std::max(now_, resume_[i]);
        const Tick hi = t;
        if (lo < hi) {
            // The core progressed: remaining_ changes, so the cached
            // arrival would no longer match a recompute.  (When
            // lo >= hi it provably would — resume_ >= t means a
            // recompute starts from the same resume_ with the same
            // remaining_ — so the cache stays valid.)
            double progress_s = suit::util::ticksToSeconds(hi - lo);
            if (pending_) {
                const Tick f_lo = std::max(lo, pending_->runUntil);
                const Tick f_hi = std::min(hi, pending_->completeAt);
                if (f_lo < f_hi)
                    progress_s -=
                        suit::util::ticksToSeconds(f_hi - f_lo);
            }
            remaining_[i] -= progress_s * rate[i];
            remaining_[i] = std::max(remaining_[i], 0.0);
            arrivalStale_[i] = 1;
        }
    }
    now_ = t;
}

Tick
DomainSimulator::coreArrivalFast(std::size_t i) const
{
    if (cores_[i].done)
        return kNever;
    const Tick start = std::max(now_, resume_[i]);
    const Tick cap =
        pending_ ? pending_->runUntil : kNever;
    if (pending_ && start >= cap)
        return kNever; // frozen: the completion event goes first
    const double rate =
        rates_[static_cast<std::size_t>(pstateIndex(pstate_)) *
                   nCores_ +
               i];
    const double need_s = remaining_[i] / rate;
    const Tick arrival = start + suit::util::secondsToTicks(need_s);
    if (pending_ && arrival > cap)
        return kNever;
    return arrival;
}

void
DomainSimulator::consumeEvent(std::size_t i)
{
    Core &core = cores_[i];
    const auto &events = core.work.trace->events();
    ++core.nextEvent;
    if (core.nextEvent < events.size()) {
        remaining_[i] =
            static_cast<double>(events[core.nextEvent].gap);
    } else {
        // Drain the instructions after the last faultable one.
        remaining_[i] =
            static_cast<double>(core.work.trace->tailInstructions());
        core.pastLastEvent = true;
    }
    arrivalStale_[i] = 1;
}

void
DomainSimulator::handleFaultableInstruction(std::size_t i)
{
    Core &core = cores_[i];
    const auto &event = core.work.trace->events()[core.nextEvent];

    if (cfg_.mode != RunMode::Suit || !disabled_) {
        // Executes natively.  In SUIT mode the hardware deadline
        // timer restarts on every faultable execution (Sec. 4.1).
        if (cfg_.mode == RunMode::Suit)
            timer_.touch(now_);
        consumeEvent(i);
        return;
    }

    // Disabled instruction fetched: #DO exception.
    ++traps_;
    ++trapsByKind_[static_cast<std::size_t>(event.kind)];
    if (cfg_.recordStateLog)
        stateLog_.push_back({now_, pstate_, true});
    if (trace_) {
        trace_->instant(suit::obs::TraceSession::kSimPid, track_,
                        suit::obs::TraceSession::simUs(now_),
                        "do-trap", "sim",
                        {{"kind", suit::isa::toString(event.kind)},
                         {"core", static_cast<int>(i)}});
    }
    trappingCore_ = i;
    resume_[i] = std::max(
        resume_[i],
        now_ + suit::util::microsecondsToTicks(
                   cfg_.cpu->exceptionDelayUs()));

    suit::os::TrapFrame frame;
    frame.kind = event.kind;
    frame.instructionIndex = core.work.trace->eventIndex(core.nextEvent);
    frame.coreId = static_cast<int>(i);
    frame.when = now_;

    const suit::core::TrapAction action =
        strategy_->onDisabledOpcode(*this, frame);

    if (action.emulated) {
        ++emulations_;
        // Each trace event stands for eventWeight real instructions
        // (trace thinning); every one pays the full round trip.
        double weight = core.work.profile->eventWeight;
        if (cfg_.strategy == StrategyKind::Hybrid) {
            // Thinning correction: the hybrid policy switches curves
            // after p_ec real traps, so at most that many of a
            // thinned event's instructions are ever emulated before
            // the burst is recognised.
            weight = std::min(
                weight,
                static_cast<double>(cfg_.params.maxExceptionCount));
        }
        const Tick cost = static_cast<Tick>(
            static_cast<double>(emulationCostTicks(event.kind)) *
            weight);
        resume_[i] = std::max(resume_[i], now_ + cost);
    } else {
        // Re-executed after the switch; restarts the count-down.
        timer_.touch(now_);
    }
    consumeEvent(i);
}

bool
DomainSimulator::singleWindowOpen() const
{
    const Core &core = cores_[0];
    if (core.done || core.pastLastEvent)
        return false;
    if (resume_[0] > now_)
        return false;
    // Events execute natively in Baseline mode always, and in Suit
    // mode while the instructions are enabled.  The Suit batch also
    // requires the deadline timer to be armed so the window-closing
    // expiry check below is meaningful (the strategies always arm it
    // when enabling, but the loop must not rely on that).
    if (cfg_.mode == RunMode::Suit && (disabled_ || !timer_.armed()))
        return false;
    if (cfg_.mode == RunMode::NoSimdCompile)
        return false; // pastLastEvent from construction; belt and braces
    if (pending_ && now_ >= pending_->runUntil)
        return false; // frozen by the transition
    return true;
}

bool
DomainSimulator::multiWindowOpen() const
{
    // Unlike the single-core window, stalled or done cores do not
    // close a multi-core window: the in-window scan computes every
    // core's arrival with its stall start and done mask applied, so
    // the other cores keep batching across them.
    if (cfg_.mode == RunMode::Suit && (disabled_ || !timer_.armed()))
        return false;
    if (cfg_.mode == RunMode::NoSimdCompile)
        return false; // every core pastLastEvent from construction
    if (pending_ && now_ >= pending_->runUntil)
        return false; // frozen by the transition
    return true;
}

void
DomainSimulator::runNativeWindowSingle(std::uint64_t &budget)
{
    Core &core = cores_[0];
    const int sidx = pstateIndex(pstate_);
    const double rate = rates_[static_cast<std::size_t>(sidx)];
    const double pf = powerTbl_[sidx];
    const bool suit_mode = cfg_.mode == RunMode::Suit;
    const Tick run_cap = pending_ ? pending_->runUntil : kNever;
    const Tick complete_at = pending_ ? pending_->completeAt : kNever;
    const auto &events = core.work.trace->events();
    const std::size_t window_first = core.nextEvent;
    double remaining = remaining_[0];

    Tick t = now_;
    while (!core.pastLastEvent) {
        if (pending_ && t >= run_cap)
            break; // frozen from t on: the transition goes first
        const Tick arrival = t + windowSecondsToTicks(remaining / rate);
        // Stop where another event source outranks the core arrival
        // (the loop's tie order: transitions > timers > cores).
        if (suit_mode && arrival >= timer_.expiry())
            break;
        if (pending_ && (arrival > run_cap || arrival >= complete_at))
            break;
        SUIT_ASSERT(budget-- > 0, "simulation step budget exhausted");
        if (arrival > t) {
            // Replay the reference accumulator sequence per event —
            // regrouping the sums would change the floating-point
            // results.
            const double dt_s = windowTicksToSeconds(arrival - t);
            powerIntegralS_ += pf * dt_s;
            activeTimeS_ += dt_s;
            stateTimeS_[sidx] += dt_s;
        }
        t = arrival;
        if (suit_mode)
            timer_.touch(t);
        // Native execution of the event (consumeEvent() inlined).
        ++core.nextEvent;
        if (core.nextEvent < events.size()) {
            remaining = static_cast<double>(events[core.nextEvent].gap);
        } else {
            remaining = static_cast<double>(
                core.work.trace->tailInstructions());
            core.pastLastEvent = true;
        }
    }
    remaining_[0] = remaining;
    now_ = t;
    arrivalStale_[0] = 1;
    // One delta per window instead of a per-event increment keeps the
    // always-on counter out of the hot loop body.
    batchedEvents_ += core.nextEvent - window_first;
}

void
DomainSimulator::runNativeWindowMulti(std::uint64_t &budget)
{
    const std::size_t n = nCores_;
    const int sidx = pstateIndex(pstate_);
    const double *const rate =
        &rates_[static_cast<std::size_t>(sidx) * n];
    const double pf = powerTbl_[sidx];
    const bool suit_mode = cfg_.mode == RunMode::Suit;
    const bool has_pending = pending_.has_value();
    const Tick run_cap = has_pending ? pending_->runUntil : kNever;
    const Tick complete_at = has_pending ? pending_->completeAt : kNever;
    Tick *const arrival = arrival_.data();
    const Tick *const done_mask = doneMask_.data();
    const Tick *const resume = resume_.data();
    double *const remaining = remaining_.data();
    std::size_t active = 0;
    bool stalls_possible = false;
    for (std::size_t i = 0; i < n; ++i) {
        active += cores_[i].done ? 0U : 1U;
        stalls_possible |= resume[i] > now_;
    }
    // Stall starts never move while the window runs (only traps and
    // waited transitions set them, and neither happens in-window), so
    // a window that starts with every core resumed keeps lo == t for
    // every core and the per-core progress interval equals the shared
    // dt — the per-lane clip below vanishes.
    const bool plain = !stalls_possible && !has_pending;
    const bool fn_scan = useFnScan(n);

    std::uint64_t consumed = 0;
    Tick t = now_;
    for (;;) {
        // (1) Recompute every core's next arrival from scratch, the
        // same expression the generic scan uses per event.  Straight
        // dense rows so the compiler can vectorize the divide.
        if (plain) {
            for (std::size_t i = 0; i < n; ++i) {
                const double need_s = remaining[i] / rate[i];
                arrival[i] =
                    (t + windowSecondsToTicks(need_s)) | done_mask[i];
            }
        } else {
            for (std::size_t i = 0; i < n; ++i) {
                const Tick start = resume[i] > t ? resume[i] : t;
                const double need_s = remaining[i] / rate[i];
                Tick a = (start + windowSecondsToTicks(need_s)) |
                         done_mask[i];
                if (has_pending && (start >= run_cap || a > run_cap))
                    a = kNever; // frozen by the transition
                arrival[i] = a;
            }
        }
        // (2) Min-reduction over the arrival row; ties pick the
        // lowest core index, like the generic scan's strict <.
        const std::size_t win = scanArrivals(arrival, n, fn_scan);
        const Tick m = arrival[win];
        // (3) Stop where another event source outranks the winning
        // core (tie order: transitions > timers > cores), or where
        // the winner needs the generic loop (tail drain, finish).
        if (m == kNever)
            break;
        if (suit_mode && m >= timer_.expiry())
            break;
        if (has_pending && m >= complete_at)
            break;
        Core &core = cores_[win];
        if (core.pastLastEvent)
            break; // completion: the generic step marks it done
        SUIT_ASSERT(budget-- > 0, "simulation step budget exhausted");
        // (4) Replay the reference accumulator and progress sequence
        // for this one event — same addends, same order, same
        // grouping as advanceToRef(m) over the active cores.
        if (m > t) {
            const double dt_s = windowTicksToSeconds(m - t);
            const double pw_s = pf * dt_s;
            for (std::size_t k = 0; k < active; ++k) {
                powerIntegralS_ += pw_s;
                activeTimeS_ += dt_s;
                stateTimeS_[sidx] += dt_s;
            }
            if (plain) {
                for (std::size_t i = 0; i < n; ++i) {
                    remaining[i] = std::max(
                        remaining[i] - dt_s * rate[i], 0.0);
                }
            } else {
                for (std::size_t i = 0; i < n; ++i) {
                    const Tick lo = resume[i] > t ? resume[i] : t;
                    double progress_s =
                        lo < m ? windowTicksToSeconds(m - lo) : 0.0;
                    // No pending freeze clip: in-window times stay
                    // strictly below runUntil <= completeAt, so the
                    // frozen interval never intersects [lo, m).
                    remaining[i] = std::max(
                        remaining[i] - progress_s * rate[i], 0.0);
                }
            }
            t = m;
        }
        if (suit_mode)
            timer_.touch(t);
        // (5) Native execution of the winner (consumeEvent inlined).
        ++core.nextEvent;
        const auto &events = core.work.trace->events();
        if (core.nextEvent < events.size()) {
            remaining[win] =
                static_cast<double>(events[core.nextEvent].gap);
        } else {
            remaining[win] = static_cast<double>(
                core.work.trace->tailInstructions());
            core.pastLastEvent = true;
        }
        ++consumed;
    }
    now_ = t;
    // The final scan above ran after the last mutation, so arrival_
    // holds exactly what coreArrivalFast() would recompute at now_:
    // hand the row to the generic scan as a valid cache.
    for (std::size_t i = 0; i < n; ++i)
        arrivalStale_[i] = 0;
    batchedEvents_ += consumed;
}

DomainResult
DomainSimulator::run()
{
    DomainResult result;
    runInto(result);
    return result;
}

void
DomainSimulator::runInto(DomainResult &out)
{
    if (cfg_.referencePath)
        runReference(out);
    else
        runFast(out);
    publishObs(out);
}

void
DomainSimulator::runReference(DomainResult &out)
{
    std::size_t active = cores_.size();
    // Generous runaway guard: every event can cause only a bounded
    // number of simulator steps.
    std::uint64_t budget = 10000;
    for (const Core &core : cores_)
        budget += 20 * core.work.trace->eventCount() + 1000;

    std::uint32_t cancel_countdown = kCancelPollInterval;
    while (active > 0) {
        if (cfg_.cancel != nullptr && --cancel_countdown == 0) {
            cancel_countdown = kCancelPollInterval;
            cfg_.cancel->throwIfCancelled();
        }
        SUIT_ASSERT(budget-- > 0, "simulation step budget exhausted");

        // Earliest event wins; transitions outrank timers outrank
        // core arrivals at equal times so rates are always current.
        Tick best = kNever;
        int kind = -1; // 0 transition, 1 timer, 2 core
        std::size_t core_idx = 0;

        if (pending_ && pending_->completeAt < best) {
            best = pending_->completeAt;
            kind = 0;
        }
        if (timer_.armed() && timer_.expiry() < best) {
            best = timer_.expiry();
            kind = 1;
        }
        for (std::size_t i = 0; i < nCores_; ++i) {
            const Tick a = coreArrivalRef(i);
            if (a < best) {
                best = a;
                kind = 2;
                core_idx = i;
            }
        }
        SUIT_ASSERT(kind >= 0, "deadlock: no runnable event");

        advanceToRef(best);

        switch (kind) {
          case 0:
            completePending();
            break;
          case 1:
            if (timer_.checkExpired(now_)) {
                SUIT_ASSERT(strategy_ != nullptr,
                            "timer fired without a strategy");
                if (trace_) {
                    trace_->instant(
                        suit::obs::TraceSession::kSimPid, track_,
                        suit::obs::TraceSession::simUs(now_),
                        "deadline-expiry", "sim");
                }
                strategy_->onTimerInterrupt(*this);
            }
            break;
          case 2: {
            Core &core = cores_[core_idx];
            if (core.pastLastEvent) {
                core.done = true;
                core.finishTime = now_;
                --active;
            } else {
                handleFaultableInstruction(core_idx);
            }
            break;
          }
        }
    }

    collectResultInto(out);
}

void
DomainSimulator::runFast(DomainResult &out)
{
    std::size_t active = cores_.size();
    // Same runaway guard as the reference loop; the batched window
    // charges one step per consumed event, so a batch never spends
    // more budget than the reference loop would for the same events.
    std::uint64_t budget = 10000;
    for (const Core &core : cores_)
        budget += 20 * core.work.trace->eventCount() + 1000;

    // Batched native windows: single-core domains keep PR 3's
    // specialised loop (no cross-core replay at all); multi-core
    // domains run the generalised window that replays the reference
    // progress interleaving per event (see DESIGN.md).
    const bool single_core = nCores_ == 1;
    const bool fn_scan = useFnScan(nCores_);

    std::uint32_t cancel_countdown = kCancelPollInterval;
    while (active > 0) {
        if (cfg_.cancel != nullptr && --cancel_countdown == 0) {
            cancel_countdown = kCancelPollInterval;
            cfg_.cancel->throwIfCancelled();
        }
        if (single_core) {
            if (singleWindowOpen())
                runNativeWindowSingle(budget);
        } else if (multiWindowOpen()) {
            runNativeWindowMulti(budget);
        }
        // A window stops at the first event another source outranks
        // (timer expiry, pending transition) and never finishes the
        // run: the tail drain below marks cores done through the
        // generic step.

        SUIT_ASSERT(budget-- > 0, "simulation step budget exhausted");

        // Earliest event wins; transitions outrank timers outrank
        // core arrivals at equal times so rates are always current.
        Tick best = kNever;
        int kind = -1; // 0 transition, 1 timer, 2 core
        std::size_t core_idx = 0;

        if (pending_ && pending_->completeAt < best) {
            best = pending_->completeAt;
            kind = 0;
        }
        if (timer_.armed() && timer_.expiry() < best) {
            best = timer_.expiry();
            kind = 1;
        }
        refreshArrivals();
        const std::size_t ci =
            scanArrivals(arrival_.data(), nCores_, fn_scan);
        if (arrival_[ci] < best) {
            best = arrival_[ci];
            kind = 2;
            core_idx = ci;
        }
        SUIT_ASSERT(kind >= 0, "deadlock: no runnable event");

        advanceToFast(best);

        switch (kind) {
          case 0:
            completePending();
            break;
          case 1:
            if (timer_.checkExpired(now_)) {
                SUIT_ASSERT(strategy_ != nullptr,
                            "timer fired without a strategy");
                if (trace_) {
                    trace_->instant(
                        suit::obs::TraceSession::kSimPid, track_,
                        suit::obs::TraceSession::simUs(now_),
                        "deadline-expiry", "sim");
                }
                strategy_->onTimerInterrupt(*this);
            }
            break;
          case 2: {
            Core &core = cores_[core_idx];
            if (core.pastLastEvent) {
                core.done = true;
                core.finishTime = now_;
                doneMask_[core_idx] = kNever;
                arrival_[core_idx] = kNever;
                arrivalStale_[core_idx] = 0;
                --active;
            } else {
                handleFaultableInstruction(core_idx);
            }
            break;
          }
        }
    }

    collectResultInto(out);
}

void
DomainSimulator::collectResultInto(DomainResult &result)
{
    // Overwrite every field: @p result may carry a previous run.  The
    // resize() + per-field assignment reuses the cores vector's and
    // each workload string's capacity.
    result.cores.resize(cores_.size());
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        const Core &core = cores_[i];
        CoreResult &cr = result.cores[i];
        cr.workload = core.work.trace->name();
        cr.durationS = suit::util::ticksToSeconds(core.finishTime);
        cr.baselineDurationS =
            static_cast<double>(core.work.trace->totalInstructions()) /
            (core.work.profile->ipc * cfg_.cpu->baseFreqHz());
    }
    result.powerFactor =
        activeTimeS_ > 0.0 ? powerIntegralS_ / activeTimeS_ : 1.0;
    if (activeTimeS_ > 0.0) {
        result.efficientShare = stateTimeS_[0] / activeTimeS_;
        result.cfShare = stateTimeS_[1] / activeTimeS_;
        result.cvShare = stateTimeS_[2] / activeTimeS_;
    } else {
        result.efficientShare = 0.0;
        result.cfShare = 0.0;
        result.cvShare = 0.0;
    }
    // Swap instead of move: the run's log lands in the result and the
    // result's previous buffer becomes the next run's log capacity.
    std::swap(result.stateLog, stateLog_);
    stateLog_.clear();
    result.traps = traps_;
    result.emulations = emulations_;
    result.pstateSwitches = switches_;
    result.thrashDetections = 0;
    if (strategy_ != nullptr) {
        if (const auto *sw =
                dynamic_cast<suit::core::SwitchingStrategy *>(
                    strategy_)) {
            result.thrashDetections = sw->thrashDetections();
        }
    }
}

void
DomainSimulator::publishObs(const DomainResult &result) const
{
    if (cfg_.obsBypass)
        return;
    suit::obs::Registry &reg = suit::obs::metrics();
    if (!reg.enabled())
        return;

    reg.add(reg.counter("sim.runs"));
    reg.add(reg.counter("sim.traps"), traps_);
    for (const auto kind : suit::isa::allFaultableKinds()) {
        const std::uint64_t n =
            trapsByKind_[static_cast<std::size_t>(kind)];
        if (n == 0)
            continue;
        reg.add(reg.counter(std::string("sim.traps.") +
                            suit::isa::toString(kind)),
                n);
    }
    reg.add(reg.counter("sim.emulations"), emulations_);
    // Every trap the strategy did not resolve by emulating was a
    // curve-switch decision.
    reg.add(reg.counter("sim.switch_decisions"), traps_ - emulations_);
    reg.add(reg.counter("sim.pstate_switches"), switches_);
    reg.add(reg.counter("sim.deadline.resets"), timer_.resets());
    reg.add(reg.counter("sim.deadline.expirations"),
            timer_.expirations());
    reg.add(reg.counter("sim.thrash_activations"),
            result.thrashDetections);

    // P-state residency as integrated active time per curve.
    reg.add(reg.counter("sim.residency_us.E"),
            static_cast<std::uint64_t>(stateTimeS_[0] * 1e6));
    reg.add(reg.counter("sim.residency_us.Cf"),
            static_cast<std::uint64_t>(stateTimeS_[1] * 1e6));
    reg.add(reg.counter("sim.residency_us.CV"),
            static_cast<std::uint64_t>(stateTimeS_[2] * 1e6));

    // Batched-window hit rate: share of trace events consumed inside
    // a native window instead of the generic event loop.
    std::uint64_t consumed = 0;
    for (const Core &core : cores_)
        consumed += core.nextEvent;
    reg.add(reg.counter("sim.events.total"), consumed);
    reg.add(reg.counter("sim.events.batched"), batchedEvents_);

    static const std::vector<double> kDomainMsBounds{
        0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0};
    const suit::obs::MetricId domain_ms =
        reg.histogram("sim.domain_ms", kDomainMsBounds);
    for (const CoreResult &core : result.cores)
        reg.observe(domain_ms, core.durationS * 1e3);
}

} // namespace suit::sim
