#include "sim/domain_sim.hh"

#include <algorithm>
#include <limits>

#include "emu/dispatcher.hh"
#include "obs/registry.hh"
#include "util/format.hh"
#include "util/logging.hh"

namespace suit::sim {

using suit::core::StrategyKind;
using suit::power::kNumSuitPStates;
using suit::power::pstateIndex;
using suit::power::SuitPState;
using suit::util::Tick;

namespace {

constexpr Tick kNever = std::numeric_limits<Tick>::max();

/** Does moving between two p-states change the clock frequency? */
bool
frequencyEdge(SuitPState from, SuitPState to)
{
    const bool from_low = from == SuitPState::ConservativeFreq;
    const bool to_low = to == SuitPState::ConservativeFreq;
    return from_low != to_low;
}

/** Does it change the supply voltage? */
bool
voltageEdge(SuitPState from, SuitPState to)
{
    const bool from_high = from == SuitPState::ConservativeVolt;
    const bool to_high = to == SuitPState::ConservativeVolt;
    return from_high != to_high;
}

} // namespace

double
DomainResult::perfDelta() const
{
    if (cores.empty())
        return 0.0;
    double sum = 0.0;
    for (const CoreResult &c : cores)
        sum += c.perfDelta();
    return sum / static_cast<double>(cores.size());
}

double
DomainResult::efficiencyDelta() const
{
    return (1.0 + perfDelta()) / (1.0 + powerDelta()) - 1.0;
}

DomainSimulator::DomainSimulator(const SimConfig &config,
                                 std::vector<CoreWork> work)
    : cfg_(config), rng_(config.seed)
{
    SUIT_ASSERT(cfg_.cpu != nullptr, "simulation needs a CPU model");
    SUIT_ASSERT(!work.empty(), "simulation needs at least one core");

    for (const CoreWork &w : work) {
        SUIT_ASSERT(w.trace && w.profile,
                    "every core needs a trace and its profile");
        Core core;
        core.work = w;
        if (cfg_.mode == RunMode::NoSimdCompile) {
            // Compiled without SIMD: the trappable instructions do
            // not exist; drain the whole stream in one piece.
            core.pastLastEvent = true;
            core.remainingInstr =
                static_cast<double>(w.trace->totalInstructions());
        } else if (w.trace->events().empty()) {
            core.pastLastEvent = true;
            core.remainingInstr =
                static_cast<double>(w.trace->totalInstructions());
        } else {
            core.remainingInstr =
                static_cast<double>(w.trace->events()[0].gap);
        }
        cores_.push_back(core);
    }

    if (cfg_.mode == RunMode::Suit) {
        strategy_ = suit::core::makeStrategy(cfg_.strategy, cfg_.params);
        pstate_ = SuitPState::Efficient;
        disabled_ = true;
    } else if (cfg_.mode == RunMode::NoSimdCompile) {
        pstate_ = SuitPState::Efficient;
        disabled_ = true;
    } else {
        pstate_ = SuitPState::ConservativeVolt;
        disabled_ = false;
    }

    // Fast-path invariant tables.  Every entry is produced by the
    // same per-call function the reference loop uses, so the fast
    // loop feeds bit-identical doubles into the same arithmetic.
    for (Core &core : cores_) {
        for (const SuitPState p :
             {SuitPState::Efficient, SuitPState::ConservativeFreq,
              SuitPState::ConservativeVolt}) {
            core.rate[pstateIndex(p)] = instrRate(core, p);
        }
    }
    if (cfg_.mode != RunMode::Baseline) {
        const suit::power::PStateFactors f =
            cfg_.cpu->factorsAt(cfg_.offsetMv);
        for (int i = 0; i < kNumSuitPStates; ++i)
            powerTbl_[i] = f.power[i];
    }

    if (!cfg_.obsBypass)
        trace_ = suit::obs::activeTrace();
    if (trace_) {
        track_ = trace_->newTrack(
            suit::obs::TraceSession::kSimPid,
            suit::util::sformat(
                "domain:%s", cores_[0].work.trace->name().c_str()));
        tracePState(0, pstate_, "init");
    }
}

void
DomainSimulator::tracePState(Tick when, SuitPState to, const char *how)
{
    trace_->instant(suit::obs::TraceSession::kSimPid, track_,
                    suit::obs::TraceSession::simUs(when), "pstate",
                    "sim",
                    {{"to", suit::power::toString(to)}, {"how", how}});
}

DomainSimulator::~DomainSimulator() = default;

double
DomainSimulator::instrRate(const Core &core, SuitPState p) const
{
    const auto &profile = *core.work.profile;
    const double base = profile.ipc * cfg_.cpu->baseFreqHz();
    if (cfg_.mode == RunMode::Baseline)
        return base;

    double rate = base * cfg_.cpu->perfFactor(p, cfg_.offsetMv);
    // SUIT hardware ships the 4-cycle IMUL in every mode (Sec. 6.2).
    rate *= 1.0 - suit::trace::imulLatencyOverhead(profile.imulFraction);

    if (cfg_.mode == RunMode::NoSimdCompile ||
        (cfg_.mode == RunMode::Suit &&
         cfg_.strategy == StrategyKind::Emulation)) {
        // No-SIMD compilation, or emulation standing in for the SIMD
        // work (paper Sec. 6.2, "Instruction Emulation").
        rate *= 1.0 + profile.noSimdFor(cfg_.cpu->isAmd());
    }
    return rate;
}

double
DomainSimulator::powerFactorOf(SuitPState p) const
{
    if (cfg_.mode == RunMode::Baseline)
        return 1.0;
    return cfg_.cpu->powerFactor(p, cfg_.offsetMv);
}

Tick
DomainSimulator::now() const
{
    return now_;
}

SuitPState
DomainSimulator::currentPState() const
{
    return pstate_;
}

bool
DomainSimulator::instructionsDisabled() const
{
    return disabled_;
}

void
DomainSimulator::setInstructionsDisabled(bool disabled)
{
    disabled_ = disabled;
}

void
DomainSimulator::setTimerInterrupt(Tick reload)
{
    timer_.arm(now_, reload);
}

void
DomainSimulator::invalidateArrivals()
{
    for (Core &core : cores_)
        core.arrivalValid = false;
}

void
DomainSimulator::cancelPending()
{
    pending_.reset();
    invalidateArrivals();
}

void
DomainSimulator::cancelPendingPState()
{
    cancelPending();
}

void
DomainSimulator::changePStateWait(SuitPState target)
{
    cancelPending();
    if (pstate_ == target)
        return;

    const auto &tm = cfg_.cpu->transitions();
    Tick delay = 0;
    const bool f_edge = frequencyEdge(pstate_, target);
    const bool v_edge = voltageEdge(pstate_, target);
    if (v_edge)
        delay += tm.voltageChange.sample(rng_);
    if (f_edge)
        delay += tm.freqChange.sample(rng_);

    const Tick until = now_ + delay;
    if (f_edge && tm.stallsOnFreqChange) {
        // The shared clock re-locks: every core in the domain stalls.
        for (Core &core : cores_) {
            if (!core.done)
                core.resumeTime = std::max(core.resumeTime, until);
        }
    } else {
        // Only the core spinning in the handler is blocked.
        Core &core = cores_[trappingCore_];
        core.resumeTime = std::max(core.resumeTime, until);
    }

    pstate_ = target;
    ++switches_;
    if (cfg_.recordStateLog)
        stateLog_.push_back({until, pstate_, false});
    if (trace_)
        tracePState(until, pstate_, "wait");
    invalidateArrivals();
}

void
DomainSimulator::changePStateAsync(SuitPState target)
{
    cancelPending();
    if (pstate_ == target)
        return;

    const auto &tm = cfg_.cpu->transitions();
    Tick delay = 0;
    Tick stall = 0;
    if (voltageEdge(pstate_, target))
        delay += tm.voltageChange.sample(rng_);
    if (frequencyEdge(pstate_, target)) {
        delay += tm.freqChange.sample(rng_);
        if (tm.stallsOnFreqChange)
            stall = tm.freqChangeStall.sample(rng_);
    }
    PendingTransition p;
    p.target = target;
    p.completeAt = now_ + delay;
    p.runUntil = p.completeAt - std::min(stall, delay);
    pending_ = p;
    invalidateArrivals();
}

void
DomainSimulator::completePending()
{
    SUIT_ASSERT(pending_.has_value(), "no transition to complete");
    pstate_ = pending_->target;
    pending_.reset();
    ++switches_;
    if (cfg_.recordStateLog)
        stateLog_.push_back({now_, pstate_, false});
    if (trace_)
        tracePState(now_, pstate_, "async");
    invalidateArrivals();
}

Tick
DomainSimulator::emulationCostTicks(suit::isa::FaultableKind kind) const
{
    const double body_s = suit::emu::emulationCostCycles(kind) /
                          cfg_.cpu->baseFreqHz();
    return suit::util::microsecondsToTicks(cfg_.cpu->emulationCallUs()) +
           suit::util::secondsToTicks(body_s);
}

void
DomainSimulator::advanceToRef(Tick t)
{
    SUIT_ASSERT(t >= now_, "time cannot run backwards");
    if (t == now_)
        return;

    const double pf = powerFactorOf(pstate_);
    for (Core &core : cores_) {
        if (core.done) {
            core.lastUpdate = t;
            continue;
        }
        const double dt_s =
            suit::util::ticksToSeconds(t - core.lastUpdate);
        powerIntegralS_ += pf * dt_s;
        activeTimeS_ += dt_s;
        stateTimeS_[pstateIndex(pstate_)] += dt_s;

        // Instruction progress: clip stalls and the transition's
        // frozen window out of [lastUpdate, t).
        Tick lo = std::max(core.lastUpdate, core.resumeTime);
        Tick hi = t;
        double progress_s = 0.0;
        if (lo < hi) {
            progress_s = suit::util::ticksToSeconds(hi - lo);
            if (pending_) {
                const Tick f_lo = std::max(lo, pending_->runUntil);
                const Tick f_hi = std::min(hi, pending_->completeAt);
                if (f_lo < f_hi)
                    progress_s -=
                        suit::util::ticksToSeconds(f_hi - f_lo);
            }
        }
        core.remainingInstr -= progress_s * instrRate(core, pstate_);
        core.remainingInstr = std::max(core.remainingInstr, 0.0);
        core.lastUpdate = t;
    }
    now_ = t;
}

Tick
DomainSimulator::coreArrivalRef(const Core &core) const
{
    if (core.done)
        return kNever;
    const Tick start = std::max(now_, core.resumeTime);
    const Tick cap =
        pending_ ? pending_->runUntil : kNever;
    if (pending_ && start >= cap)
        return kNever; // frozen: the completion event goes first
    const double rate = instrRate(core, pstate_);
    const double need_s = core.remainingInstr / rate;
    const Tick arrival = start + suit::util::secondsToTicks(need_s);
    if (pending_ && arrival > cap)
        return kNever;
    return arrival;
}

void
DomainSimulator::advanceToFast(Tick t)
{
    SUIT_ASSERT(t >= now_, "time cannot run backwards");
    if (t == now_)
        return;

    const int sidx = pstateIndex(pstate_);
    const double pf = powerTbl_[sidx];
    for (Core &core : cores_) {
        if (core.done) {
            core.lastUpdate = t;
            continue;
        }
        const double dt_s =
            suit::util::ticksToSeconds(t - core.lastUpdate);
        powerIntegralS_ += pf * dt_s;
        activeTimeS_ += dt_s;
        stateTimeS_[sidx] += dt_s;

        const Tick lo = std::max(core.lastUpdate, core.resumeTime);
        const Tick hi = t;
        if (lo < hi) {
            // The core progressed: remainingInstr changes, so the
            // cached arrival would no longer match a recompute.
            // (When lo >= hi it provably would — resumeTime >= t
            // means a recompute starts from the same resumeTime with
            // the same remainingInstr — so the cache stays valid.)
            double progress_s = suit::util::ticksToSeconds(hi - lo);
            if (pending_) {
                const Tick f_lo = std::max(lo, pending_->runUntil);
                const Tick f_hi = std::min(hi, pending_->completeAt);
                if (f_lo < f_hi)
                    progress_s -=
                        suit::util::ticksToSeconds(f_hi - f_lo);
            }
            core.remainingInstr -= progress_s * core.rate[sidx];
            core.remainingInstr = std::max(core.remainingInstr, 0.0);
            core.arrivalValid = false;
        }
        core.lastUpdate = t;
    }
    now_ = t;
}

Tick
DomainSimulator::coreArrivalFast(const Core &core) const
{
    if (core.done)
        return kNever;
    const Tick start = std::max(now_, core.resumeTime);
    const Tick cap =
        pending_ ? pending_->runUntil : kNever;
    if (pending_ && start >= cap)
        return kNever; // frozen: the completion event goes first
    const double rate = core.rate[pstateIndex(pstate_)];
    const double need_s = core.remainingInstr / rate;
    const Tick arrival = start + suit::util::secondsToTicks(need_s);
    if (pending_ && arrival > cap)
        return kNever;
    return arrival;
}

Tick
DomainSimulator::arrivalOf(Core &core)
{
    if (!core.arrivalValid) {
        core.cachedArrival = coreArrivalFast(core);
        core.arrivalValid = true;
    }
    return core.cachedArrival;
}

void
DomainSimulator::consumeEvent(Core &core)
{
    const auto &events = core.work.trace->events();
    ++core.nextEvent;
    if (core.nextEvent < events.size()) {
        core.remainingInstr =
            static_cast<double>(events[core.nextEvent].gap);
    } else {
        // Drain the instructions after the last faultable one.
        core.remainingInstr =
            static_cast<double>(core.work.trace->tailInstructions());
        core.pastLastEvent = true;
    }
    core.arrivalValid = false;
}

void
DomainSimulator::handleFaultableInstruction(std::size_t i)
{
    Core &core = cores_[i];
    const auto &event = core.work.trace->events()[core.nextEvent];

    if (cfg_.mode != RunMode::Suit || !disabled_) {
        // Executes natively.  In SUIT mode the hardware deadline
        // timer restarts on every faultable execution (Sec. 4.1).
        if (cfg_.mode == RunMode::Suit)
            timer_.touch(now_);
        consumeEvent(core);
        return;
    }

    // Disabled instruction fetched: #DO exception.
    ++traps_;
    ++trapsByKind_[static_cast<std::size_t>(event.kind)];
    if (cfg_.recordStateLog)
        stateLog_.push_back({now_, pstate_, true});
    if (trace_) {
        trace_->instant(suit::obs::TraceSession::kSimPid, track_,
                        suit::obs::TraceSession::simUs(now_),
                        "do-trap", "sim",
                        {{"kind", suit::isa::toString(event.kind)},
                         {"core", static_cast<int>(i)}});
    }
    trappingCore_ = i;
    core.resumeTime = std::max(
        core.resumeTime,
        now_ + suit::util::microsecondsToTicks(
                   cfg_.cpu->exceptionDelayUs()));

    suit::os::TrapFrame frame;
    frame.kind = event.kind;
    frame.instructionIndex = core.work.trace->eventIndex(core.nextEvent);
    frame.coreId = static_cast<int>(i);
    frame.when = now_;

    const suit::core::TrapAction action =
        strategy_->onDisabledOpcode(*this, frame);

    if (action.emulated) {
        ++emulations_;
        // Each trace event stands for eventWeight real instructions
        // (trace thinning); every one pays the full round trip.
        double weight = core.work.profile->eventWeight;
        if (cfg_.strategy == StrategyKind::Hybrid) {
            // Thinning correction: the hybrid policy switches curves
            // after p_ec real traps, so at most that many of a
            // thinned event's instructions are ever emulated before
            // the burst is recognised.
            weight = std::min(
                weight,
                static_cast<double>(cfg_.params.maxExceptionCount));
        }
        const Tick cost = static_cast<Tick>(
            static_cast<double>(emulationCostTicks(event.kind)) *
            weight);
        core.resumeTime = std::max(core.resumeTime, now_ + cost);
    } else {
        // Re-executed after the switch; restarts the count-down.
        timer_.touch(now_);
    }
    consumeEvent(core);
}

bool
DomainSimulator::nativeWindowOpen(const Core &core) const
{
    if (core.done || core.pastLastEvent)
        return false;
    if (core.resumeTime > now_)
        return false;
    // Events execute natively in Baseline mode always, and in Suit
    // mode while the instructions are enabled.  The Suit batch also
    // requires the deadline timer to be armed so the window-closing
    // expiry check below is meaningful (the strategies always arm it
    // when enabling, but the loop must not rely on that).
    if (cfg_.mode == RunMode::Suit && (disabled_ || !timer_.armed()))
        return false;
    if (cfg_.mode == RunMode::NoSimdCompile)
        return false; // pastLastEvent from construction; belt and braces
    if (pending_ && now_ >= pending_->runUntil)
        return false; // frozen by the transition
    return true;
}

void
DomainSimulator::runNativeWindow(Core &core, std::uint64_t &budget)
{
    const int sidx = pstateIndex(pstate_);
    const double rate = core.rate[sidx];
    const double pf = powerTbl_[sidx];
    const bool suit_mode = cfg_.mode == RunMode::Suit;
    const Tick run_cap = pending_ ? pending_->runUntil : kNever;
    const Tick complete_at = pending_ ? pending_->completeAt : kNever;
    const auto &events = core.work.trace->events();
    const std::size_t window_first = core.nextEvent;

    Tick t = now_;
    while (!core.pastLastEvent) {
        const Tick arrival =
            t + suit::util::secondsToTicks(core.remainingInstr / rate);
        // Stop where another event source outranks the core arrival
        // (the loop's tie order: transitions > timers > cores).
        if (suit_mode && arrival >= timer_.expiry())
            break;
        if (pending_ && (arrival > run_cap || arrival >= complete_at))
            break;
        SUIT_ASSERT(budget-- > 0, "simulation step budget exhausted");
        if (arrival > t) {
            // Replay the reference accumulator sequence per event —
            // regrouping the sums would change the floating-point
            // results.
            const double dt_s = suit::util::ticksToSeconds(arrival - t);
            powerIntegralS_ += pf * dt_s;
            activeTimeS_ += dt_s;
            stateTimeS_[sidx] += dt_s;
        }
        t = arrival;
        if (suit_mode)
            timer_.touch(t);
        // Native execution of the event (consumeEvent() inlined).
        ++core.nextEvent;
        if (core.nextEvent < events.size()) {
            core.remainingInstr =
                static_cast<double>(events[core.nextEvent].gap);
        } else {
            core.remainingInstr = static_cast<double>(
                core.work.trace->tailInstructions());
            core.pastLastEvent = true;
        }
    }
    now_ = t;
    core.lastUpdate = t;
    core.arrivalValid = false;
    // One delta per window instead of a per-event increment keeps the
    // always-on counter out of the hot loop body.
    batchedEvents_ += core.nextEvent - window_first;
}

DomainResult
DomainSimulator::run()
{
    DomainResult result =
        cfg_.referencePath ? runReference() : runFast();
    publishObs(result);
    return result;
}

DomainResult
DomainSimulator::runReference()
{
    std::size_t active = cores_.size();
    // Generous runaway guard: every event can cause only a bounded
    // number of simulator steps.
    std::uint64_t budget = 10000;
    for (const Core &core : cores_)
        budget += 20 * core.work.trace->eventCount() + 1000;

    while (active > 0) {
        SUIT_ASSERT(budget-- > 0, "simulation step budget exhausted");

        // Earliest event wins; transitions outrank timers outrank
        // core arrivals at equal times so rates are always current.
        Tick best = kNever;
        int kind = -1; // 0 transition, 1 timer, 2 core
        std::size_t core_idx = 0;

        if (pending_ && pending_->completeAt < best) {
            best = pending_->completeAt;
            kind = 0;
        }
        if (timer_.armed() && timer_.expiry() < best) {
            best = timer_.expiry();
            kind = 1;
        }
        for (std::size_t i = 0; i < cores_.size(); ++i) {
            const Tick a = coreArrivalRef(cores_[i]);
            if (a < best) {
                best = a;
                kind = 2;
                core_idx = i;
            }
        }
        SUIT_ASSERT(kind >= 0, "deadlock: no runnable event");

        advanceToRef(best);

        switch (kind) {
          case 0:
            completePending();
            break;
          case 1:
            if (timer_.checkExpired(now_)) {
                SUIT_ASSERT(strategy_ != nullptr,
                            "timer fired without a strategy");
                if (trace_) {
                    trace_->instant(
                        suit::obs::TraceSession::kSimPid, track_,
                        suit::obs::TraceSession::simUs(now_),
                        "deadline-expiry", "sim");
                }
                strategy_->onTimerInterrupt(*this);
            }
            break;
          case 2: {
            Core &core = cores_[core_idx];
            if (core.pastLastEvent) {
                core.done = true;
                core.finishTime = now_;
                --active;
            } else {
                handleFaultableInstruction(core_idx);
            }
            break;
          }
        }
    }

    return collectResult();
}

DomainResult
DomainSimulator::runFast()
{
    std::size_t active = cores_.size();
    // Same runaway guard as the reference loop; the batched window
    // charges one step per consumed event, so a batch never spends
    // more budget than the reference loop would for the same events.
    std::uint64_t budget = 10000;
    for (const Core &core : cores_)
        budget += 20 * core.work.trace->eventCount() + 1000;

    // Batched native windows are restricted to single-core domains:
    // with several cores, advanceTo() interleaves every core's
    // floating-point progress at every event, so batching one core
    // would regroup the other cores' sums (see DESIGN.md).
    const bool single_core = cores_.size() == 1;

    while (active > 0) {
        if (single_core) {
            Core &core = cores_[0];
            if (nativeWindowOpen(core))
                runNativeWindow(core, budget);
            // The window stops at the first event another source
            // outranks (timer expiry, pending transition) and never
            // finishes the run: the tail drain below marks the core
            // done through the generic step.
        }

        SUIT_ASSERT(budget-- > 0, "simulation step budget exhausted");

        // Earliest event wins; transitions outrank timers outrank
        // core arrivals at equal times so rates are always current.
        Tick best = kNever;
        int kind = -1; // 0 transition, 1 timer, 2 core
        std::size_t core_idx = 0;

        if (pending_ && pending_->completeAt < best) {
            best = pending_->completeAt;
            kind = 0;
        }
        if (timer_.armed() && timer_.expiry() < best) {
            best = timer_.expiry();
            kind = 1;
        }
        for (std::size_t i = 0; i < cores_.size(); ++i) {
            const Tick a = arrivalOf(cores_[i]);
            if (a < best) {
                best = a;
                kind = 2;
                core_idx = i;
            }
        }
        SUIT_ASSERT(kind >= 0, "deadlock: no runnable event");

        advanceToFast(best);

        switch (kind) {
          case 0:
            completePending();
            break;
          case 1:
            if (timer_.checkExpired(now_)) {
                SUIT_ASSERT(strategy_ != nullptr,
                            "timer fired without a strategy");
                if (trace_) {
                    trace_->instant(
                        suit::obs::TraceSession::kSimPid, track_,
                        suit::obs::TraceSession::simUs(now_),
                        "deadline-expiry", "sim");
                }
                strategy_->onTimerInterrupt(*this);
            }
            break;
          case 2: {
            Core &core = cores_[core_idx];
            if (core.pastLastEvent) {
                core.done = true;
                core.finishTime = now_;
                core.cachedArrival = kNever;
                core.arrivalValid = true;
                --active;
            } else {
                handleFaultableInstruction(core_idx);
            }
            break;
          }
        }
    }

    return collectResult();
}

DomainResult
DomainSimulator::collectResult()
{
    DomainResult result;
    for (const Core &core : cores_) {
        CoreResult cr;
        cr.workload = core.work.trace->name();
        cr.durationS = suit::util::ticksToSeconds(core.finishTime);
        cr.baselineDurationS =
            static_cast<double>(core.work.trace->totalInstructions()) /
            (core.work.profile->ipc * cfg_.cpu->baseFreqHz());
        result.cores.push_back(cr);
    }
    result.powerFactor =
        activeTimeS_ > 0.0 ? powerIntegralS_ / activeTimeS_ : 1.0;
    if (activeTimeS_ > 0.0) {
        result.efficientShare = stateTimeS_[0] / activeTimeS_;
        result.cfShare = stateTimeS_[1] / activeTimeS_;
        result.cvShare = stateTimeS_[2] / activeTimeS_;
    }
    result.stateLog = std::move(stateLog_);
    result.traps = traps_;
    result.emulations = emulations_;
    result.pstateSwitches = switches_;
    if (strategy_) {
        if (const auto *sw = dynamic_cast<suit::core::SwitchingStrategy *>(
                strategy_.get())) {
            result.thrashDetections = sw->thrashDetections();
        }
    }
    return result;
}

void
DomainSimulator::publishObs(const DomainResult &result) const
{
    if (cfg_.obsBypass)
        return;
    suit::obs::Registry &reg = suit::obs::metrics();
    if (!reg.enabled())
        return;

    reg.add(reg.counter("sim.runs"));
    reg.add(reg.counter("sim.traps"), traps_);
    for (const auto kind : suit::isa::allFaultableKinds()) {
        const std::uint64_t n =
            trapsByKind_[static_cast<std::size_t>(kind)];
        if (n == 0)
            continue;
        reg.add(reg.counter(std::string("sim.traps.") +
                            suit::isa::toString(kind)),
                n);
    }
    reg.add(reg.counter("sim.emulations"), emulations_);
    // Every trap the strategy did not resolve by emulating was a
    // curve-switch decision.
    reg.add(reg.counter("sim.switch_decisions"), traps_ - emulations_);
    reg.add(reg.counter("sim.pstate_switches"), switches_);
    reg.add(reg.counter("sim.deadline.resets"), timer_.resets());
    reg.add(reg.counter("sim.deadline.expirations"),
            timer_.expirations());
    reg.add(reg.counter("sim.thrash_activations"),
            result.thrashDetections);

    // P-state residency as integrated active time per curve.
    reg.add(reg.counter("sim.residency_us.E"),
            static_cast<std::uint64_t>(stateTimeS_[0] * 1e6));
    reg.add(reg.counter("sim.residency_us.Cf"),
            static_cast<std::uint64_t>(stateTimeS_[1] * 1e6));
    reg.add(reg.counter("sim.residency_us.CV"),
            static_cast<std::uint64_t>(stateTimeS_[2] * 1e6));

    // Batched-window hit rate: share of trace events consumed inside
    // a native window instead of the generic event loop.
    std::uint64_t consumed = 0;
    for (const Core &core : cores_)
        consumed += core.nextEvent;
    reg.add(reg.counter("sim.events.total"), consumed);
    reg.add(reg.counter("sim.events.batched"), batchedEvents_);

    static const std::vector<double> kDomainMsBounds{
        0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0};
    const suit::obs::MetricId domain_ms =
        reg.histogram("sim.domain_ms", kDomainMsBounds);
    for (const CoreResult &core : result.cores)
        reg.observe(domain_ms, core.durationS * 1e3);
}

} // namespace suit::sim
