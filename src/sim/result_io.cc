#include "sim/result_io.hh"

#include <bit>
#include <cstdint>
#include <cstring>
#include <limits>

namespace suit::sim {

namespace {

void
putU8(std::uint8_t v, std::string &out)
{
    out.push_back(static_cast<char>(v));
}

void
putU32(std::uint32_t v, std::string &out)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
putU64(std::uint64_t v, std::string &out)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
putDouble(double v, std::string &out)
{
    putU64(std::bit_cast<std::uint64_t>(v), out);
}

void
putString(const std::string &s, std::string &out)
{
    putU32(static_cast<std::uint32_t>(s.size()), out);
    out.append(s);
}

/** Bounds-checked little-endian reader over a byte range. */
class Reader
{
  public:
    Reader(const char *data, std::size_t size, std::size_t offset)
        : data_(data), size_(size), pos_(offset)
    {
    }

    bool ok() const { return ok_; }
    std::size_t pos() const { return pos_; }

    std::uint8_t u8()
    {
        if (!take(1))
            return 0;
        return static_cast<std::uint8_t>(data_[pos_ - 1]);
    }

    std::uint32_t u32()
    {
        if (!take(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(data_[pos_ - 4 + i]))
                 << (8 * i);
        return v;
    }

    std::uint64_t u64()
    {
        if (!take(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(data_[pos_ - 8 + i]))
                 << (8 * i);
        return v;
    }

    double f64() { return std::bit_cast<double>(u64()); }

    std::string str()
    {
        const std::uint32_t len = u32();
        if (!take(len))
            return {};
        return std::string(data_ + pos_ - len, len);
    }

  private:
    bool take(std::size_t n)
    {
        if (!ok_ || n > size_ - pos_) {
            ok_ = false;
            return false;
        }
        pos_ += n;
        return true;
    }

    const char *data_;
    std::size_t size_;
    std::size_t pos_;
    bool ok_ = true;
};

} // namespace

void
serializeResult(const DomainResult &result, std::string &out)
{
    putU64(result.cores.size(), out);
    for (const CoreResult &core : result.cores) {
        putString(core.workload, out);
        putDouble(core.durationS, out);
        putDouble(core.baselineDurationS, out);
    }
    putU64(result.stateLog.size(), out);
    for (const PStateChange &change : result.stateLog) {
        putU64(change.when, out);
        putU8(static_cast<std::uint8_t>(change.to), out);
        putU8(change.trap ? 1 : 0, out);
    }
    putDouble(result.powerFactor, out);
    putDouble(result.efficientShare, out);
    putDouble(result.cfShare, out);
    putDouble(result.cvShare, out);
    putU64(result.traps, out);
    putU64(result.emulations, out);
    putU64(result.pstateSwitches, out);
    putU64(result.thrashDetections, out);
}

bool
deserializeResult(const char *data, std::size_t size,
                  std::size_t &offset, DomainResult &out)
{
    Reader r(data, size, offset);

    const std::uint64_t cores = r.u64();
    // An element floor of 17 bytes per core bounds the allocation
    // before trusting the count, so a corrupt length can't trigger a
    // multi-gigabyte reserve.
    if (!r.ok() || cores > (size - r.pos()) / 17)
        return false;
    out.cores.clear();
    out.cores.reserve(cores);
    for (std::uint64_t i = 0; i < cores; ++i) {
        CoreResult core;
        core.workload = r.str();
        core.durationS = r.f64();
        core.baselineDurationS = r.f64();
        if (!r.ok())
            return false;
        out.cores.push_back(std::move(core));
    }

    const std::uint64_t changes = r.u64();
    if (!r.ok() || changes > (size - r.pos()) / 10)
        return false;
    out.stateLog.clear();
    out.stateLog.reserve(changes);
    for (std::uint64_t i = 0; i < changes; ++i) {
        PStateChange change;
        change.when = r.u64();
        const std::uint8_t to = r.u8();
        if (to > static_cast<std::uint8_t>(
                     suit::power::SuitPState::ConservativeVolt))
            return false;
        change.to = static_cast<suit::power::SuitPState>(to);
        change.trap = r.u8() != 0;
        if (!r.ok())
            return false;
        out.stateLog.push_back(change);
    }

    out.powerFactor = r.f64();
    out.efficientShare = r.f64();
    out.cfShare = r.f64();
    out.cvShare = r.f64();
    out.traps = r.u64();
    out.emulations = r.u64();
    out.pstateSwitches = r.u64();
    out.thrashDetections = r.u64();
    if (!r.ok())
        return false;

    offset = r.pos();
    return true;
}

} // namespace suit::sim
