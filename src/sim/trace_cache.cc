#include "sim/trace_cache.hh"

#include "trace/generator.hh"

namespace suit::sim {

using suit::trace::Trace;
using suit::trace::TraceGenerator;
using suit::trace::WorkloadProfile;

const Trace &
TraceCache::get(const WorkloadProfile &profile, std::uint64_t seed,
                int stream)
{
    Entry *entry;
    {
        std::lock_guard lock(mu_);
        entry = &entries_[{profile.name, seed, stream}];
    }
    // Generation happens outside the map lock: distinct traces build
    // concurrently; racing get()s on the *same* key serialise on the
    // entry's once_flag and generate exactly once.
    bool generated = false;
    std::call_once(entry->once, [&] {
        entry->trace = std::make_unique<Trace>(
            TraceGenerator(seed).generate(profile, stream));
        generated = true;
    });
    if (!generated) {
        std::lock_guard lock(mu_);
        ++hits_;
    }
    return *entry->trace;
}

std::size_t
TraceCache::entries() const
{
    std::lock_guard lock(mu_);
    return entries_.size();
}

std::uint64_t
TraceCache::hits() const
{
    std::lock_guard lock(mu_);
    return hits_;
}

TraceCache &
globalTraceCache()
{
    static TraceCache cache;
    return cache;
}

} // namespace suit::sim
