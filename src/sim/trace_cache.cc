#include "sim/trace_cache.hh"

#include <array>

#include "obs/registry.hh"
#include "trace/generator.hh"
#include "util/logging.hh"

namespace suit::sim {

using suit::trace::Trace;
using suit::trace::TraceGenerator;
using suit::trace::WorkloadProfile;

TraceCache::TraceCache(std::size_t capacity_bytes)
    : capacity_(capacity_bytes)
{
    SUIT_ASSERT(capacity_ > 0, "trace cache capacity must be > 0");
}

std::shared_ptr<const Trace>
TraceCache::get(const WorkloadProfile &profile, std::uint64_t seed,
                int stream)
{
    const KeyView key{profile.name, seed, stream};
    std::shared_ptr<Slot> slot;
    {
        std::lock_guard lock(mu_);
        const auto it = map_.find(key);
        if (it != map_.end()) {
            Entry &entry = it->second;
            // Touch: move to the recency front.
            lru_.splice(lru_.begin(), lru_, entry.lruIt);
            slot = entry.slot;
        } else {
            // Only a miss pays for materialising the owning key.
            const auto emplaced =
                map_.try_emplace(Key{profile.name, seed, stream});
            Entry &entry = emplaced.first->second;
            entry.slot = std::make_shared<Slot>();
            lru_.push_front(&emplaced.first->first);
            entry.lruIt = lru_.begin();
            slot = entry.slot;
        }
    }
    // Generation happens outside the map lock: distinct traces build
    // concurrently; racing get()s on the *same* key serialise on the
    // slot's once_flag and generate exactly once.
    bool generated = false;
    std::call_once(slot->once, [&] {
        auto built = std::make_shared<const Trace>(
            TraceGenerator(seed).generate(profile, stream));
        slot->bytes = built->memoryBytes();
        slot->trace = std::move(built);
        generated = true;
    });
    static const obs::MetricId hit_id =
        obs::metrics().counter("sim.trace_cache.hits");
    static const obs::MetricId miss_id =
        obs::metrics().counter("sim.trace_cache.misses");
    static const obs::MetricId evict_id =
        obs::metrics().counter("sim.trace_cache.evictions");
    if (!generated) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        obs::metrics().add(hit_id);
        return slot->trace;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().add(miss_id);
    std::uint64_t evicted = 0;
    {
        std::lock_guard lock(mu_);
        // Account the new bytes iff the entry is still ours (it may
        // have been evicted mid-generation, or replaced by a fresh
        // slot after such an eviction).
        const auto it = map_.find(key);
        if (it != map_.end() && it->second.slot == slot &&
            !it->second.accounted) {
            it->second.accounted = true;
            bytes_ += slot->bytes;
            const std::uint64_t before =
                evictions_.load(std::memory_order_relaxed);
            evictLocked();
            evicted = evictions_.load(std::memory_order_relaxed) -
                      before;
        }
    }
    if (evicted != 0)
        obs::metrics().add(evict_id, evicted);
    return slot->trace;
}

void
TraceCache::getMany(
    const WorkloadProfile &profile, std::uint64_t seed, int streams,
    std::vector<std::shared_ptr<const Trace>> &out)
{
    SUIT_ASSERT(streams >= 1 && streams <= kMaxStreams,
                "getMany() supports 1..%d streams, got %d",
                kMaxStreams, streams);
    out.clear();
    out.resize(static_cast<std::size_t>(streams));

    // Slots of the streams whose trace is not yet built; everything
    // already accounted is answered directly under the single lock.
    std::array<std::shared_ptr<Slot>, kMaxStreams> pending;
    int pending_count = 0;
    {
        std::lock_guard lock(mu_);
        for (int s = 0; s < streams; ++s) {
            const KeyView key{profile.name, seed, s};
            auto it = map_.find(key);
            if (it != map_.end()) {
                lru_.splice(lru_.begin(), lru_, it->second.lruIt);
            } else {
                const auto emplaced =
                    map_.try_emplace(Key{profile.name, seed, s});
                it = emplaced.first;
                Entry &entry = it->second;
                entry.slot = std::make_shared<Slot>();
                lru_.push_front(&it->first);
                entry.lruIt = lru_.begin();
            }
            Entry &entry = it->second;
            if (entry.accounted) {
                out[static_cast<std::size_t>(s)] = entry.slot->trace;
            } else {
                pending[static_cast<std::size_t>(s)] = entry.slot;
                ++pending_count;
            }
        }
    }

    static const obs::MetricId hit_id =
        obs::metrics().counter("sim.trace_cache.hits");
    static const obs::MetricId miss_id =
        obs::metrics().counter("sim.trace_cache.misses");
    static const obs::MetricId evict_id =
        obs::metrics().counter("sim.trace_cache.evictions");

    std::uint64_t generated = 0;
    if (pending_count != 0) {
        // Build the missing traces outside the lock, like get().
        for (int s = 0; s < streams; ++s) {
            const std::shared_ptr<Slot> &slot =
                pending[static_cast<std::size_t>(s)];
            if (!slot)
                continue;
            std::call_once(slot->once, [&] {
                auto built = std::make_shared<const Trace>(
                    TraceGenerator(seed).generate(profile, s));
                slot->bytes = built->memoryBytes();
                slot->trace = std::move(built);
                ++generated;
            });
            out[static_cast<std::size_t>(s)] = slot->trace;
        }
        // Account every newly generated entry in one lock.
        std::uint64_t evicted = 0;
        {
            std::lock_guard lock(mu_);
            for (int s = 0; s < streams; ++s) {
                const std::shared_ptr<Slot> &slot =
                    pending[static_cast<std::size_t>(s)];
                if (!slot)
                    continue;
                const KeyView key{profile.name, seed, s};
                const auto it = map_.find(key);
                if (it != map_.end() && it->second.slot == slot &&
                    !it->second.accounted) {
                    it->second.accounted = true;
                    bytes_ += slot->bytes;
                }
            }
            const std::uint64_t before =
                evictions_.load(std::memory_order_relaxed);
            evictLocked();
            evicted = evictions_.load(std::memory_order_relaxed) -
                      before;
        }
        if (evicted != 0)
            obs::metrics().add(evict_id, evicted);
    }

    const std::uint64_t hit_count =
        static_cast<std::uint64_t>(streams) - generated;
    if (hit_count != 0) {
        hits_.fetch_add(hit_count, std::memory_order_relaxed);
        obs::metrics().add(hit_id, hit_count);
    }
    if (generated != 0) {
        misses_.fetch_add(generated, std::memory_order_relaxed);
        obs::metrics().add(miss_id, generated);
    }
}

void
TraceCache::evictLocked()
{
    while (bytes_ > capacity_ && !lru_.empty()) {
        // Walk from the LRU tail, skipping entries still generating
        // (unaccounted) — those cannot be costed or safely dropped.
        bool evicted = false;
        auto it = lru_.end();
        do {
            --it;
            const auto mit = map_.find((*it)->view());
            SUIT_ASSERT(mit != map_.end(),
                        "trace cache LRU list out of sync");
            Entry &entry = mit->second;
            if (!entry.accounted)
                continue;
            bytes_ -= entry.slot->bytes;
            lru_.erase(it);
            map_.erase(mit);
            evictions_.fetch_add(1, std::memory_order_relaxed);
            evicted = true;
            break;
        } while (it != lru_.begin());
        if (!evicted)
            break; // everything resident is in flight; transient
    }
}

std::size_t
TraceCache::entries() const
{
    std::lock_guard lock(mu_);
    return map_.size();
}

std::uint64_t
TraceCache::hits() const
{
    return hits_.load(std::memory_order_relaxed);
}

std::uint64_t
TraceCache::misses() const
{
    return misses_.load(std::memory_order_relaxed);
}

std::uint64_t
TraceCache::evictions() const
{
    return evictions_.load(std::memory_order_relaxed);
}

std::size_t
TraceCache::residentBytes() const
{
    std::lock_guard lock(mu_);
    return bytes_;
}

TraceCache &
globalTraceCache()
{
    static TraceCache cache;
    return cache;
}

} // namespace suit::sim
