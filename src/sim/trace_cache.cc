#include "sim/trace_cache.hh"

#include "obs/registry.hh"
#include "trace/generator.hh"

namespace suit::sim {

using suit::trace::Trace;
using suit::trace::TraceGenerator;
using suit::trace::WorkloadProfile;

const Trace &
TraceCache::get(const WorkloadProfile &profile, std::uint64_t seed,
                int stream)
{
    const KeyView key{profile.name, seed, stream};
    Entry *entry;
    {
        std::lock_guard lock(mu_);
        const auto it = entries_.find(key);
        if (it != entries_.end()) {
            entry = &it->second;
        } else {
            // Only a miss pays for materialising the owning key.
            entry = &entries_
                         .try_emplace(Key{profile.name, seed, stream})
                         .first->second;
        }
    }
    // Generation happens outside the map lock: distinct traces build
    // concurrently; racing get()s on the *same* key serialise on the
    // entry's once_flag and generate exactly once.
    bool generated = false;
    std::call_once(entry->once, [&] {
        entry->trace = std::make_unique<Trace>(
            TraceGenerator(seed).generate(profile, stream));
        generated = true;
    });
    static const obs::MetricId hit_id =
        obs::metrics().counter("sim.trace_cache.hits");
    static const obs::MetricId miss_id =
        obs::metrics().counter("sim.trace_cache.misses");
    if (!generated) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        obs::metrics().add(hit_id);
    } else {
        obs::metrics().add(miss_id);
    }
    return *entry->trace;
}

std::size_t
TraceCache::entries() const
{
    std::lock_guard lock(mu_);
    return entries_.size();
}

std::uint64_t
TraceCache::hits() const
{
    return hits_.load(std::memory_order_relaxed);
}

TraceCache &
globalTraceCache()
{
    static TraceCache cache;
    return cache;
}

} // namespace suit::sim
