/**
 * @file
 * Binary serialization of simulation results.
 *
 * The exec checkpoint journal persists one DomainResult per completed
 * sweep cell and must restore it *bit-identically*: a resumed sweep
 * has to produce the same CSV bytes as an uninterrupted run.  Doubles
 * are therefore stored as their raw IEEE-754 bit patterns (via
 * std::bit_cast), never through text round-trips, and all integers
 * are written little-endian with fixed widths so a journal is
 * readable across builds.
 *
 * The format is length-checked on the way in: deserializeResult()
 * returns false (instead of crashing or reading past the end) when
 * the buffer is truncated or structurally malformed, which is what
 * the journal loader relies on to recover from torn tail records.
 */

#ifndef SUIT_SIM_RESULT_IO_HH
#define SUIT_SIM_RESULT_IO_HH

#include <cstddef>
#include <string>

#include "sim/domain_sim.hh"

namespace suit::sim {

/** Append the binary image of @p result to @p out. */
void serializeResult(const DomainResult &result, std::string &out);

/**
 * Decode one DomainResult from @p data starting at @p offset.
 *
 * On success advances @p offset past the consumed bytes and returns
 * true.  On truncated or malformed input returns false; @p offset
 * and @p out are then unspecified.
 */
bool deserializeResult(const char *data, std::size_t size,
                       std::size_t &offset, DomainResult &out);

} // namespace suit::sim

#endif // SUIT_SIM_RESULT_IO_HH
