/**
 * @file
 * Per-worker scratch for allocation-free domain evaluation.
 *
 * A SimWorkspace owns every buffer one domain evaluation needs: the
 * reusable DomainSimulator (whose SoA rows, core table, strategy slot
 * and state log all retain their capacity across resets), the trace
 * pins and core assignments runWorkload() builds per domain, and a
 * DomainResult scratch whose vectors and strings are rewritten in
 * place.  After the first domain of a given shape has warmed the
 * buffers, evaluating further domains performs no heap allocation —
 * the suit_bench_json harness asserts exactly that when the
 * SUIT_ALLOC_COUNT hook is compiled in.
 *
 * Ownership and threading: runtime::Session holds one workspace per
 * ThreadPool worker (plus one for the session thread), and each
 * worker only ever touches its own slot, so workspaces need no
 * internal synchronisation.  A workspace is scratch, not state:
 * results must be consumed (copied or accumulated) before the next
 * runWorkload()/runInto() call on the same workspace overwrites
 * them.  Reuse is bit-identical by construction — DomainSimulator::
 * reset() re-establishes exactly the state a fresh construction
 * would, and the workspace-reuse golden tests compare serialized
 * results byte for byte.
 */

#ifndef SUIT_SIM_WORKSPACE_HH
#define SUIT_SIM_WORKSPACE_HH

#include <memory>
#include <vector>

#include "sim/domain_sim.hh"

namespace suit::sim {

/** Reusable per-worker buffers for domain evaluation. */
struct SimWorkspace
{
    /** The reusable simulator; reset() rebinds it per domain. */
    DomainSimulator sim;
    /** Trace pins of the current domain (keep traces alive). */
    std::vector<std::shared_ptr<const suit::trace::Trace>> pinned;
    /** Core assignments of the current domain. */
    std::vector<CoreWork> work;
    /** Result scratch, overwritten by every evaluation. */
    DomainResult result;
};

} // namespace suit::sim

#endif // SUIT_SIM_WORKSPACE_HH
