#include "sim/evaluation.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/stats.hh"

namespace suit::sim {

using suit::power::DomainLayout;
using suit::trace::WorkloadProfile;

DomainResult
runWorkload(const EvalConfig &config, const WorkloadProfile &profile,
            TraceCache &traces)
{
    SUIT_ASSERT(config.cpu != nullptr, "evaluation needs a CPU model");
    SUIT_ASSERT(config.cores >= 1, "need at least one core");

    const bool shared =
        config.cpu->domains() == DomainLayout::SharedAll;
    const int streams = shared ? config.cores : 1;

    // Pin the traces for the duration of the run: the cache may
    // evict them concurrently, but the shared_ptrs keep the bytes
    // alive until the simulator is done.
    std::vector<std::shared_ptr<const suit::trace::Trace>> pinned;
    std::vector<CoreWork> work;
    pinned.reserve(static_cast<std::size_t>(streams));
    work.reserve(static_cast<std::size_t>(streams));
    for (int s = 0; s < streams; ++s) {
        pinned.push_back(traces.get(profile, config.seed, s));
        work.push_back({pinned.back().get(), &profile});
    }

    SimConfig sim_cfg;
    sim_cfg.cpu = config.cpu;
    sim_cfg.offsetMv = config.offsetMv;
    sim_cfg.mode = config.mode;
    sim_cfg.strategy = config.strategy;
    sim_cfg.params = config.params;
    sim_cfg.seed = config.seed * 7919 + 17;
    sim_cfg.referencePath = config.referencePath;
    sim_cfg.cancel = config.cancel;

    DomainSimulator sim(sim_cfg, std::move(work));
    return sim.run();
}

DomainResult
runWorkload(const EvalConfig &config, const WorkloadProfile &profile)
{
    return runWorkload(config, profile, globalTraceCache());
}

const DomainResult &
runWorkload(const EvalConfig &config, const WorkloadProfile &profile,
            TraceCache &traces, SimWorkspace &ws)
{
    SUIT_ASSERT(config.cpu != nullptr, "evaluation needs a CPU model");
    SUIT_ASSERT(config.cores >= 1, "need at least one core");

    const bool shared =
        config.cpu->domains() == DomainLayout::SharedAll;
    const int streams = shared ? config.cores : 1;

    // One lock acquisition pins every stream; the pins stay in the
    // workspace until the next domain replaces them.
    traces.getMany(profile, config.seed, streams, ws.pinned);
    ws.work.clear();
    for (int s = 0; s < streams; ++s)
        ws.work.push_back(
            {ws.pinned[static_cast<std::size_t>(s)].get(), &profile});

    SimConfig sim_cfg;
    sim_cfg.cpu = config.cpu;
    sim_cfg.offsetMv = config.offsetMv;
    sim_cfg.mode = config.mode;
    sim_cfg.strategy = config.strategy;
    sim_cfg.params = config.params;
    sim_cfg.seed = config.seed * 7919 + 17;
    sim_cfg.referencePath = config.referencePath;
    sim_cfg.cancel = config.cancel;

    ws.sim.reset(sim_cfg, ws.work);
    ws.sim.runInto(ws.result);
    return ws.result;
}

std::vector<WorkloadRow>
runSuite(const EvalConfig &config,
         const std::vector<WorkloadProfile> &profiles)
{
    std::vector<WorkloadRow> rows;
    rows.reserve(profiles.size());
    for (const WorkloadProfile &p : profiles)
        rows.push_back({p.name, runWorkload(config, p)});
    return rows;
}

double
gmeanDelta(const std::vector<double> &deltas)
{
    if (deltas.empty())
        return 0.0;
    std::vector<double> ratios;
    ratios.reserve(deltas.size());
    for (double d : deltas)
        ratios.push_back(1.0 + d);
    return suit::util::geomean(ratios) - 1.0;
}

double
medianDelta(std::vector<double> deltas)
{
    return suit::util::median(std::move(deltas));
}

SuiteSummary
SuiteSummary::of(const std::vector<WorkloadRow> &rows)
{
    SuiteSummary s;
    if (rows.empty())
        return s;
    std::vector<double> perf, power, eff;
    double share = 0.0;
    for (const WorkloadRow &r : rows) {
        perf.push_back(r.result.perfDelta());
        power.push_back(r.result.powerDelta());
        eff.push_back(r.result.efficiencyDelta());
        share += r.result.efficientShare;
    }
    s.gmeanPerf = gmeanDelta(perf);
    s.gmeanPower = gmeanDelta(power);
    s.gmeanEff = gmeanDelta(eff);
    s.medianPerf = medianDelta(perf);
    s.medianPower = medianDelta(power);
    s.medianEff = medianDelta(eff);
    s.meanEfficientShare = share / static_cast<double>(rows.size());
    return s;
}

} // namespace suit::sim
