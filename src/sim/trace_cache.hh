/**
 * @file
 * Thread-safe memoisation of generated traces.
 *
 * Traces are pure functions of (profile, seed, stream); the benchmark
 * harnesses re-run the same workloads under many configurations
 * (Table 6 alone revisits each (CPU, workload, seed) pair once per
 * strategy x offset cell), so generation is memoised.  The previous
 * cache was a function-local static map inside runWorkload() —
 * correct serially, a data race under the parallel sweep engine.
 * This class replaces it: the map is mutex-protected and each entry
 * is generated exactly once via std::call_once, without holding the
 * map lock during generation (so distinct traces generate in
 * parallel).
 *
 * Lookups are hit-dominated under the sweep engine (thousands of
 * get() calls against a few dozen distinct traces), so the hot path
 * is kept allocation-free: the map is hashed and uses a transparent
 * key view, so a hit neither copies the profile name nor walks an
 * ordered tree, and the hit counter is a relaxed atomic rather than
 * a second mutex acquisition.
 */

#ifndef SUIT_SIM_TRACE_CACHE_HH
#define SUIT_SIM_TRACE_CACHE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "trace/profile.hh"
#include "trace/trace.hh"

namespace suit::sim {

/** Keyed store of generated traces, safe for concurrent lookup. */
class TraceCache
{
  public:
    TraceCache() = default;

    TraceCache(const TraceCache &) = delete;
    TraceCache &operator=(const TraceCache &) = delete;

    /**
     * The trace for (@p profile, @p seed, @p stream), generating it
     * on first use.  The returned reference stays valid for the
     * cache's lifetime (entries are never evicted; the map is
     * node-based, so rehashing does not move entries).
     */
    const suit::trace::Trace &get(
        const suit::trace::WorkloadProfile &profile,
        std::uint64_t seed, int stream);

    /** Number of distinct traces generated so far. */
    std::size_t entries() const;

    /** get() calls answered without generating (telemetry). */
    std::uint64_t hits() const;

  private:
    /**
     * Borrowed view of a cache key; lookups build this instead of a
     * std::string-owning key, so a cache hit performs no allocation.
     * Profiles are identified by name (the profile database owns one
     * immutable profile per name).
     */
    struct KeyView
    {
        std::string_view name;
        std::uint64_t seed = 0;
        int stream = 0;
    };

    /** Owning key stored in the map. */
    struct Key
    {
        std::string name;
        std::uint64_t seed = 0;
        int stream = 0;

        KeyView view() const { return {name, seed, stream}; }
    };

    /** Transparent FNV-1a hash over (name bytes, seed, stream). */
    struct KeyHash
    {
        using is_transparent = void;

        std::size_t operator()(const KeyView &k) const
        {
            std::uint64_t h = 1469598103934665603ULL;
            const auto mix = [&h](unsigned char byte) {
                h ^= byte;
                h *= 1099511628211ULL;
            };
            for (const char c : k.name)
                mix(static_cast<unsigned char>(c));
            for (int i = 0; i < 8; ++i)
                mix(static_cast<unsigned char>(k.seed >> (8 * i)));
            const auto stream = static_cast<std::uint32_t>(k.stream);
            for (int i = 0; i < 4; ++i)
                mix(static_cast<unsigned char>(stream >> (8 * i)));
            return static_cast<std::size_t>(h);
        }

        std::size_t operator()(const Key &k) const
        {
            return (*this)(k.view());
        }
    };

    /** Transparent equality between owning keys and views. */
    struct KeyEq
    {
        using is_transparent = void;

        bool operator()(const KeyView &a, const KeyView &b) const
        {
            return a.seed == b.seed && a.stream == b.stream &&
                   a.name == b.name;
        }
        bool operator()(const Key &a, const KeyView &b) const
        {
            return (*this)(a.view(), b);
        }
        bool operator()(const KeyView &a, const Key &b) const
        {
            return (*this)(a, b.view());
        }
        bool operator()(const Key &a, const Key &b) const
        {
            return (*this)(a.view(), b.view());
        }
    };

    struct Entry
    {
        std::once_flag once;
        std::unique_ptr<suit::trace::Trace> trace;
    };

    mutable std::mutex mu_;
    std::unordered_map<Key, Entry, KeyHash, KeyEq> entries_;
    std::atomic<std::uint64_t> hits_{0};
};

/**
 * The process-wide cache used by runWorkload() when no explicit
 * cache is passed (keeps the serial single-run tools allocation-free
 * across repeated calls, exactly like the old static map).
 */
TraceCache &globalTraceCache();

} // namespace suit::sim

#endif // SUIT_SIM_TRACE_CACHE_HH
