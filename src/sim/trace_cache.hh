/**
 * @file
 * Thread-safe, bounded memoisation of generated traces.
 *
 * Traces are pure functions of (profile, seed, stream); the benchmark
 * harnesses re-run the same workloads under many configurations
 * (Table 6 alone revisits each (CPU, workload, seed) pair once per
 * strategy x offset cell), so generation is memoised.  Each entry is
 * generated exactly once via std::call_once, without holding the map
 * lock during generation (so distinct traces generate in parallel).
 *
 * The cache is *bounded*: resident bytes (Trace::memoryBytes()) are
 * capped and the least-recently-used entries are evicted once an
 * insertion exceeds the cap.  Eviction is safe against concurrent
 * readers because get() hands out std::shared_ptr<const Trace> —
 * an evicted trace stays alive until its last user drops the pin —
 * and it is *deterministic-by-construction*: a trace is a pure
 * function of its key, so regenerating an evicted entry yields the
 * same bytes and the simulation output cannot depend on eviction
 * order.  Entries still generating (slot not yet populated) are
 * never evicted.
 *
 * Lookups are hit-dominated under the sweep engine (thousands of
 * get() calls against a few dozen distinct traces), so the hot path
 * stays allocation-light: the map is hashed and uses a transparent
 * key view (a hit neither copies the profile name nor walks an
 * ordered tree), and the hit/miss/eviction counters are relaxed
 * atomics readable without the mutex.
 */

#ifndef SUIT_SIM_TRACE_CACHE_HH
#define SUIT_SIM_TRACE_CACHE_HH

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "trace/profile.hh"
#include "trace/trace.hh"

namespace suit::sim {

/** Keyed LRU store of generated traces, safe for concurrent use. */
class TraceCache
{
  public:
    /** Default capacity: 256 MiB of resident trace data. */
    static constexpr std::size_t kDefaultCapacityBytes =
        std::size_t{256} << 20;

    explicit TraceCache(
        std::size_t capacity_bytes = kDefaultCapacityBytes);

    TraceCache(const TraceCache &) = delete;
    TraceCache &operator=(const TraceCache &) = delete;

    /**
     * The trace for (@p profile, @p seed, @p stream), generating it
     * on first use.  The returned shared_ptr pins the trace: it
     * stays valid even if the cache evicts the entry mid-use.  Keep
     * the pin for the duration of a simulation, not longer.
     */
    std::shared_ptr<const suit::trace::Trace>
    get(const suit::trace::WorkloadProfile &profile,
        std::uint64_t seed, int stream);

    /**
     * Streams a domain can hold; bounds getMany()'s stack scratch.
     * Matches the fleet spec's per-domain core cap.
     */
    static constexpr int kMaxStreams = 64;

    /**
     * Pin streams [0, @p streams) of (@p profile, @p seed) into
     * @p out (cleared first, capacity reused), taking the map lock
     * once for the whole batch instead of once per stream — the
     * multi-stream domain hot path.  Each pin is exactly what get()
     * would return; generation of missing entries still happens
     * outside the lock.
     */
    void getMany(const suit::trace::WorkloadProfile &profile,
                 std::uint64_t seed, int streams,
                 std::vector<std::shared_ptr<const suit::trace::Trace>>
                     &out);

    /** Distinct traces currently resident (post-eviction). */
    std::size_t entries() const;

    /** get() calls answered without generating (telemetry). */
    std::uint64_t hits() const;

    /** get() calls that generated a trace (== total generations). */
    std::uint64_t misses() const;

    /** Entries evicted to stay under the byte cap. */
    std::uint64_t evictions() const;

    /** Bytes of resident trace data (accounted entries only). */
    std::size_t residentBytes() const;

    std::size_t capacityBytes() const { return capacity_; }

  private:
    /**
     * Borrowed view of a cache key; lookups build this instead of a
     * std::string-owning key, so a cache hit performs no allocation.
     * Profiles are identified by name (the profile database owns one
     * immutable profile per name).
     */
    struct KeyView
    {
        std::string_view name;
        std::uint64_t seed = 0;
        int stream = 0;
    };

    /** Owning key stored in the map. */
    struct Key
    {
        std::string name;
        std::uint64_t seed = 0;
        int stream = 0;

        KeyView view() const { return {name, seed, stream}; }
    };

    /** Transparent FNV-1a hash over (name bytes, seed, stream). */
    struct KeyHash
    {
        using is_transparent = void;

        std::size_t operator()(const KeyView &k) const
        {
            std::uint64_t h = 1469598103934665603ULL;
            const auto mix = [&h](unsigned char byte) {
                h ^= byte;
                h *= 1099511628211ULL;
            };
            for (const char c : k.name)
                mix(static_cast<unsigned char>(c));
            for (int i = 0; i < 8; ++i)
                mix(static_cast<unsigned char>(k.seed >> (8 * i)));
            const auto stream = static_cast<std::uint32_t>(k.stream);
            for (int i = 0; i < 4; ++i)
                mix(static_cast<unsigned char>(stream >> (8 * i)));
            return static_cast<std::size_t>(h);
        }

        std::size_t operator()(const Key &k) const
        {
            return (*this)(k.view());
        }
    };

    /** Transparent equality between owning keys and views. */
    struct KeyEq
    {
        using is_transparent = void;

        bool operator()(const KeyView &a, const KeyView &b) const
        {
            return a.seed == b.seed && a.stream == b.stream &&
                   a.name == b.name;
        }
        bool operator()(const Key &a, const KeyView &b) const
        {
            return (*this)(a.view(), b);
        }
        bool operator()(const KeyView &a, const Key &b) const
        {
            return (*this)(a, b.view());
        }
        bool operator()(const Key &a, const Key &b) const
        {
            return (*this)(a.view(), b.view());
        }
    };

    /**
     * Generation slot, shared between the map entry and any get()
     * caller racing the generator.  Lives on after eviction until
     * the last pin drops.  `trace` and `bytes` are written once
     * inside call_once; readers synchronise through the once_flag
     * (generator races) or the cache mutex (eviction scans, which
     * only look at accounted entries).
     */
    struct Slot
    {
        std::once_flag once;
        std::shared_ptr<const suit::trace::Trace> trace;
        std::size_t bytes = 0;
    };

    struct Entry
    {
        std::shared_ptr<Slot> slot;
        /** Position in lru_ (front = most recently used). */
        std::list<const Key *>::iterator lruIt;
        /** True once `bytes_` includes this entry (generation done). */
        bool accounted = false;
    };

    /** Evict accounted LRU entries until bytes_ <= capacity_. */
    void evictLocked();

    mutable std::mutex mu_;
    std::unordered_map<Key, Entry, KeyHash, KeyEq> map_;
    /** Recency order; points at map node keys (stable addresses). */
    std::list<const Key *> lru_;
    std::size_t capacity_;
    std::size_t bytes_ = 0;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
};

/**
 * The process-wide cache used by runWorkload() when no explicit
 * cache is passed (keeps the serial single-run tools allocation-free
 * across repeated calls, exactly like the old static map).
 */
TraceCache &globalTraceCache();

} // namespace suit::sim

#endif // SUIT_SIM_TRACE_CACHE_HH
