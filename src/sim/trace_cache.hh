/**
 * @file
 * Thread-safe memoisation of generated traces.
 *
 * Traces are pure functions of (profile, seed, stream); the benchmark
 * harnesses re-run the same workloads under many configurations
 * (Table 6 alone revisits each (CPU, workload, seed) pair once per
 * strategy x offset cell), so generation is memoised.  The previous
 * cache was a function-local static map inside runWorkload() —
 * correct serially, a data race under the parallel sweep engine.
 * This class replaces it: the map is mutex-protected and each entry
 * is generated exactly once via std::call_once, without holding the
 * map lock during generation (so distinct traces generate in
 * parallel).
 */

#ifndef SUIT_SIM_TRACE_CACHE_HH
#define SUIT_SIM_TRACE_CACHE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "trace/profile.hh"
#include "trace/trace.hh"

namespace suit::sim {

/** Keyed store of generated traces, safe for concurrent lookup. */
class TraceCache
{
  public:
    TraceCache() = default;

    TraceCache(const TraceCache &) = delete;
    TraceCache &operator=(const TraceCache &) = delete;

    /**
     * The trace for (@p profile, @p seed, @p stream), generating it
     * on first use.  The returned reference stays valid for the
     * cache's lifetime (entries are never evicted).
     */
    const suit::trace::Trace &get(
        const suit::trace::WorkloadProfile &profile,
        std::uint64_t seed, int stream);

    /** Number of distinct traces generated so far. */
    std::size_t entries() const;

    /** get() calls answered without generating (telemetry). */
    std::uint64_t hits() const;

  private:
    /** Cache key: profiles are identified by name (the profile
     *  database owns one immutable profile per name). */
    using Key = std::tuple<std::string, std::uint64_t, int>;

    struct Entry
    {
        std::once_flag once;
        std::unique_ptr<suit::trace::Trace> trace;
    };

    mutable std::mutex mu_;
    std::map<Key, Entry> entries_;
    std::uint64_t hits_ = 0;
};

/**
 * The process-wide cache used by runWorkload() when no explicit
 * cache is passed (keeps the serial single-run tools allocation-free
 * across repeated calls, exactly like the old static map).
 */
TraceCache &globalTraceCache();

} // namespace suit::sim

#endif // SUIT_SIM_TRACE_CACHE_HH
