/**
 * @file
 * Event-based trace simulator (paper Sec. 6.2, Fig. 15).
 *
 * Simulates one DVFS domain: one or more cores executing instruction
 * traces at their measured IPC, a p-state machine with the measured
 * transition delays and stalls, the SUIT deadline timer, and an
 * operating strategy reacting to #DO traps.  Power is integrated as
 * a factor relative to the conservative baseline using the measured
 * undervolt response (Table 2) and the CMOS model for the Cf point.
 *
 * CPU A (one shared domain) is simulated as a single domain holding
 * all utilised cores; CPUs B and C (per-core domains) as one domain
 * per core.
 */

#ifndef SUIT_SIM_DOMAIN_SIM_HH
#define SUIT_SIM_DOMAIN_SIM_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/cpu_iface.hh"
#include "core/deadline.hh"
#include "core/strategy.hh"
#include "isa/faultable.hh"
#include "obs/trace.hh"
#include "power/cpu_model.hh"
#include "runtime/cancel.hh"
#include "trace/profile.hh"
#include "trace/trace.hh"
#include "util/rng.hh"
#include "util/ticks.hh"

namespace suit::sim {

/** How the domain is operated. */
enum class RunMode
{
    /** Today's CPU: conservative curve, nothing disabled. */
    Baseline,
    /** SUIT active with an operating strategy. */
    Suit,
    /**
     * Binary compiled without SIMD (paper Sec. 6.7): no trappable
     * instructions exist, the domain stays on the efficient curve;
     * the no-SIMD performance delta applies.
     */
    NoSimdCompile,
};

/** One core's workload assignment. */
struct CoreWork
{
    /** The instruction trace to execute. */
    const suit::trace::Trace *trace = nullptr;
    /** The profile it came from (IPC, IMUL density, no-SIMD data). */
    const suit::trace::WorkloadProfile *profile = nullptr;
};

/** Per-core outcome. */
struct CoreResult
{
    /** Workload name. */
    std::string workload;
    /** Simulated completion time (s). */
    double durationS = 0.0;
    /** Conservative-baseline completion time (s). */
    double baselineDurationS = 0.0;

    /** Performance change: baseline/duration - 1. */
    double perfDelta() const
    {
        return baselineDurationS / durationS - 1.0;
    }
};

/** One entry of the optional p-state timeline. */
struct PStateChange
{
    /** When the change took effect. */
    suit::util::Tick when = 0;
    /** The new operating point. */
    suit::power::SuitPState to = suit::power::SuitPState::Efficient;
    /** True if this entry marks a #DO trap rather than a switch. */
    bool trap = false;
};

/** Whole-domain outcome. */
struct DomainResult
{
    /** Per-core outcomes. */
    std::vector<CoreResult> cores;
    /** P-state timeline (only if SimConfig::recordStateLog). */
    std::vector<PStateChange> stateLog;
    /** Time-weighted average power factor relative to baseline. */
    double powerFactor = 1.0;
    /** Share of active time spent on the efficient curve. */
    double efficientShare = 0.0;
    /** Share of active time at Cf. */
    double cfShare = 0.0;
    /** Share of active time at CV. */
    double cvShare = 0.0;
    /** #DO exceptions taken. */
    std::uint64_t traps = 0;
    /** Instructions emulated in software. */
    std::uint64_t emulations = 0;
    /** Completed p-state transitions. */
    std::uint64_t pstateSwitches = 0;
    /** Thrash-prevention activations. */
    std::uint64_t thrashDetections = 0;

    /** Mean performance change over the cores. */
    double perfDelta() const;
    /** Power change: powerFactor - 1. */
    double powerDelta() const { return powerFactor - 1.0; }
    /** Efficiency change per the paper's definition (Sec. 5.4). */
    double efficiencyDelta() const;
};

/** Configuration of one simulation run. */
struct SimConfig
{
    /** Machine model (not owned). */
    const suit::power::CpuModel *cpu = nullptr;
    /** Undervolt offset of the efficient curve (negative mV). */
    double offsetMv = -97.0;
    /** Operating mode. */
    RunMode mode = RunMode::Suit;
    /** Strategy for RunMode::Suit. */
    suit::core::StrategyKind strategy =
        suit::core::StrategyKind::CombinedFv;
    /** Strategy parameters. */
    suit::core::StrategyParams params;
    /** RNG seed for transition-delay jitter. */
    std::uint64_t seed = 1;
    /** Record the p-state/trap timeline into the result. */
    bool recordStateLog = false;
    /**
     * Run the pre-optimization reference event loop instead of the
     * fast path (invariant tables, arrival cache, batched native
     * windows).  Both paths produce bit-identical DomainResults —
     * the golden-identity test suite serializes and compares them
     * across the full configuration matrix — so this flag exists
     * only for that verification and for benchmarking the speedup.
     */
    bool referencePath = false;
    /**
     * Benchmark-only: skip the obs layer entirely — no trace-session
     * latch, no metric publication — so suit_bench_json can price the
     * disabled instrumentation against a true no-obs run.  Results
     * are bit-identical either way (the always-on plain counters
     * never feed back into the simulation).
     */
    bool obsBypass = false;
    /**
     * Cooperative cancellation: the event loop polls this token
     * every ~4k outer iterations and throws runtime::Cancelled when
     * it trips.  A cancelled run produces no DomainResult at all —
     * the engines treat the cell as never run, so cancellation can
     * never alter a completed (journaled) result.
     */
    const suit::runtime::CancelToken *cancel = nullptr;
};

/**
 * Simulator for one DVFS domain; implements the CpuControl surface
 * the operating strategies drive.
 */
class DomainSimulator final : public suit::core::CpuControl
{
  public:
    /**
     * Empty simulator: every buffer starts unallocated.  Call
     * reset() before run().  This is the reuse path: a long-lived
     * simulator (e.g. inside a SimWorkspace) is reset() once per
     * domain and its buffers, strategy slot and state log retain
     * their capacity across domains, so steady-state evaluation
     * performs no heap allocation.
     */
    DomainSimulator();

    /**
     * One-shot construction: equivalent to default construction
     * followed by reset(config, work).
     *
     * @param config run configuration.
     * @param work one entry per core sharing this domain.
     */
    DomainSimulator(const SimConfig &config, std::vector<CoreWork> work);
    ~DomainSimulator() override;

    DomainSimulator(const DomainSimulator &) = delete;
    DomainSimulator &operator=(const DomainSimulator &) = delete;

    /**
     * Rebind the simulator to a new run, reusing every internal
     * buffer's capacity.  All state a fresh construction would
     * establish is re-established here — same values, same order of
     * computation — so a reset() simulator is bit-identical to a
     * freshly constructed one (the workspace-reuse golden tests
     * compare serialized results byte for byte).
     */
    void reset(const SimConfig &config,
               const std::vector<CoreWork> &work);

    /** Run the domain to completion and collect the results. */
    DomainResult run();

    /**
     * Run the domain to completion, writing the results into @p out
     * and reusing its vectors' and strings' capacity.  @p out may
     * hold a previous run's result; every field is overwritten.
     */
    void runInto(DomainResult &out);

    /** @{ CpuControl interface (driven by the strategy). */
    void changePStateWait(suit::power::SuitPState target) override;
    void changePStateAsync(suit::power::SuitPState target) override;
    void cancelPendingPState() override;
    void setInstructionsDisabled(bool disabled) override;
    void setTimerInterrupt(suit::util::Tick reload) override;
    suit::power::SuitPState currentPState() const override;
    bool instructionsDisabled() const override;
    suit::util::Tick now() const override;
    /** @} */

  private:
    /**
     * Per-core cold state.  The hot per-event state (instructions to
     * the next event, stall resume time, cached arrival tick) lives
     * in the structure-of-arrays members below so the per-event scans
     * touch dense homogeneous rows; see DESIGN.md ("Domain-simulator
     * hot path").
     */
    struct Core
    {
        CoreWork work;
        std::size_t nextEvent = 0;  //!< index into trace events
        bool pastLastEvent = false; //!< draining the tail
        bool done = false;
        suit::util::Tick finishTime = 0;
    };

    /** A p-state transition in flight. */
    struct PendingTransition
    {
        suit::power::SuitPState target;
        suit::util::Tick runUntil;   //!< progress at old rate until
        suit::util::Tick completeAt; //!< new p-state from here
    };

    SimConfig cfg_;
    std::vector<Core> cores_;
    /** Strategy storage: placement-constructed per reset(), no heap. */
    suit::core::StrategyArena strategyArena_;
    suit::core::OperatingStrategy *strategy_ = nullptr;
    suit::util::Rng rng_;

    /**
     * @{ Per-core hot state, structure-of-arrays.  One slot per core,
     * indexed like cores_.  Progress is integrated up to now_ for
     * every core whenever time advances, so no per-core lastUpdate is
     * needed; the per-core instruction rate at every p-state is laid
     * out row-major ([p-state][core]) so a whole-domain scan at the
     * current p-state walks one dense row.  doneMask_ is 0 while the
     * core runs and all-ones once it finished: OR-ing it into a
     * computed arrival forces kNever without a branch.
     */
    std::size_t nCores_ = 0;
    std::vector<double> remaining_;          //!< instructions to event
    std::vector<suit::util::Tick> resume_;   //!< stalled until
    std::vector<suit::util::Tick> arrival_;  //!< cached next arrival
    std::vector<std::uint8_t> arrivalStale_; //!< cache invalid flags
    std::vector<suit::util::Tick> doneMask_; //!< 0 running, ~0 done
    std::vector<double> rates_; //!< instrRate per [p-state][core]
    /** @} */

    suit::util::Tick now_ = 0;
    suit::power::SuitPState pstate_ =
        suit::power::SuitPState::ConservativeVolt;
    std::optional<PendingTransition> pending_;
    bool disabled_ = false;
    suit::core::DeadlineTimer timer_;
    std::size_t trappingCore_ = 0;

    // Statistics.
    double powerIntegralS_ = 0.0; //!< sum over cores of pf * dt
    double activeTimeS_ = 0.0;    //!< sum over cores of dt
    double stateTimeS_[3] = {};   //!< active time per p-state
    std::uint64_t traps_ = 0;
    std::uint64_t emulations_ = 0;
    std::uint64_t switches_ = 0;
    std::vector<PStateChange> stateLog_;

    /**
     * Observability.  The plain counters below are always on (their
     * cost is what suit_bench_json prices as
     * obs_overhead_disabled_pct); the trace session pointer is
     * latched at construction — null unless a session was active and
     * SimConfig::obsBypass is clear — so a run's tracing is
     * all-or-nothing and off costs one null check at the rare sites.
     */
    suit::obs::TraceSession *trace_ = nullptr;
    int track_ = 0; //!< this domain's timeline row (valid iff trace_)
    std::uint64_t trapsByKind_[suit::isa::kNumFaultableKinds] = {};
    std::uint64_t batchedEvents_ = 0; //!< events consumed in windows

    /**
     * Fast-path invariant: powerFactorOf() per p-state, indexed by
     * suit::power::pstateIndex().  Defaults cover RunMode::Baseline.
     */
    double powerTbl_[suit::power::kNumSuitPStates] = {1.0, 1.0, 1.0};

    /** Instruction rate of core @p i at a p-state (instr/s). */
    double instrRate(std::size_t i, suit::power::SuitPState p) const;
    /** Power factor of a p-state under this run mode. */
    double powerFactorOf(suit::power::SuitPState p) const;

    /**
     * @{ Reference event loop: the pre-optimization implementation,
     * kept statement-for-statement as the bit-exactness oracle for
     * the fast path (SimConfig::referencePath).  It reads the hot
     * state through the SoA rows — storage layout does not change
     * floating-point results — but performs the original per-call
     * arithmetic (per-core instrRate()/powerFactorOf() lookups, no
     * caching, no batching).
     */
    void runReference(DomainResult &out);
    void advanceToRef(suit::util::Tick t);
    suit::util::Tick coreArrivalRef(std::size_t i) const;
    /** @} */

    /**
     * @{ Fast event loop: cached rate/power tables, incremental
     * arrival scheduling over the SoA rows with a vectorizable
     * min-reduction, and batched native windows for both single- and
     * multi-core domains.  Produces bit-identical results to the
     * reference loop (argued in DESIGN.md, enforced by the
     * golden-identity suite).
     */
    void runFast(DomainResult &out);
    void advanceToFast(suit::util::Tick t);
    suit::util::Tick coreArrivalFast(std::size_t i) const;
    /** Recompute every stale entry of arrival_. */
    void refreshArrivals();
    /** Drop every core's cached arrival (rate/stall/pending edit). */
    void invalidateArrivals();
    /** May the next events of core 0 run as one native batch? */
    bool singleWindowOpen() const;
    /** May a multi-core native window run from now_? */
    bool multiWindowOpen() const;
    /** Consume consecutive native events of a single-core domain. */
    void runNativeWindowSingle(std::uint64_t &budget);
    /**
     * Consume consecutive native events across all cores of a
     * multi-core domain up to the exact timer/pending boundary,
     * replaying the reference accumulator and progress sequence per
     * event so the floating-point grouping is unchanged.
     */
    void runNativeWindowMulti(std::uint64_t &budget);
    /** @} */

    /**
     * Assemble the DomainResult in place (shared by both loops),
     * overwriting every field of @p out and reusing its capacity.
     */
    void collectResultInto(DomainResult &out);

    /** Push this run's counters into obs::metrics() (off-run path). */
    void publishObs(const DomainResult &result) const;
    /** Trace a p-state entry taking effect at @p when. */
    void tracePState(suit::util::Tick when, suit::power::SuitPState to,
                     const char *how);

    /** Handle core @p i reaching its faultable instruction. */
    void handleFaultableInstruction(std::size_t i);
    /** Load the next gap after core @p i consumed an event. */
    void consumeEvent(std::size_t i);
    /** Apply a completed p-state change. */
    void completePending();
    /** Cancel any in-flight transition (hardware re-request). */
    void cancelPending();

    suit::util::Tick emulationCostTicks(suit::isa::FaultableKind kind)
        const;
};

} // namespace suit::sim

#endif // SUIT_SIM_DOMAIN_SIM_HH
