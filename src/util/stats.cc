#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/format.hh"
#include "util/logging.hh"

namespace suit::util {

void
RunningStats::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::stderrMean() const
{
    if (count_ < 2)
        return 0.0;
    return stddev() / std::sqrt(static_cast<double>(count_));
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double n_a = static_cast<double>(count_);
    const double n_b = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n_total = n_a + n_b;
    mean_ += delta * n_b / n_total;
    m2_ += other.m2_ + delta * delta * n_a * n_b / n_total;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        SUIT_ASSERT(v > 0.0, "geomean input must be positive, got %f", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
median(std::vector<double> values)
{
    return percentile(std::move(values), 50.0);
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    SUIT_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range: %f", p);
    std::sort(values.begin(), values.end());
    if (values.size() == 1)
        return values.front();
    const double rank =
        p / 100.0 * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

BucketHistogram::BucketHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1, 0)
{
    for (std::size_t i = 1; i < bounds_.size(); ++i) {
        SUIT_ASSERT(bounds_[i - 1] < bounds_[i],
                    "histogram bounds must be strictly increasing "
                    "(bounds[%zu] = %f >= bounds[%zu] = %f)",
                    i - 1, bounds_[i - 1], i, bounds_[i]);
    }
}

void
BucketHistogram::add(double value)
{
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), value);
    ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
    ++total_;
}

void
BucketHistogram::addCount(std::size_t bucket, std::uint64_t n)
{
    SUIT_ASSERT(bucket < counts_.size(),
                "bucket %zu out of range (%zu buckets)", bucket,
                counts_.size());
    counts_[bucket] += n;
    total_ += n;
}

void
BucketHistogram::resetCounts()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
}

void
BucketHistogram::merge(const BucketHistogram &other)
{
    SUIT_ASSERT(bounds_ == other.bounds_,
                "merging histograms with different bucket layouts "
                "(%zu vs %zu bounds)",
                bounds_.size(), other.bounds_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
}

std::uint64_t
BucketHistogram::count(std::size_t i) const
{
    SUIT_ASSERT(i < counts_.size(),
                "bucket %zu out of range (%zu buckets)", i,
                counts_.size());
    return counts_[i];
}

double
BucketHistogram::percentile(double p) const
{
    SUIT_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range: %f",
                p);
    if (total_ == 0)
        return 0.0;
    // Rank of the requested sample, 1-based, clamped into the count.
    const double rank = std::max(
        1.0, p / 100.0 * static_cast<double>(total_));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        const double before = static_cast<double>(seen);
        seen += counts_[i];
        if (rank > static_cast<double>(seen))
            continue;
        if (i == bounds_.size()) {
            // Overflow bucket: no upper edge to interpolate toward.
            return bounds_.empty() ? 0.0 : bounds_.back();
        }
        const double lo = i == 0 ? 0.0 : bounds_[i - 1];
        const double hi = bounds_[i];
        const double frac =
            (rank - before) / static_cast<double>(counts_[i]);
        return lo + (hi - lo) * frac;
    }
    return bounds_.empty() ? 0.0 : bounds_.back();
}

void
ExactSum::add(double x)
{
    SUIT_ASSERT(std::isfinite(x), "ExactSum needs finite samples");
    // Shewchuk grow-expansion (the msum inner loop of CPython's
    // math.fsum): after the pass, parts_ is a non-overlapping
    // expansion whose exact sum is unchanged plus x.
    std::size_t kept = 0;
    for (std::size_t j = 0; j < parts_.size(); ++j) {
        double y = parts_[j];
        if (std::fabs(x) < std::fabs(y))
            std::swap(x, y);
        const double hi = x + y;
        const double lo = y - (hi - x);
        if (lo != 0.0)
            parts_[kept++] = lo;
        x = hi;
    }
    parts_.resize(kept);
    parts_.push_back(x);
}

void
ExactSum::merge(const ExactSum &other)
{
    // Adding the parts individually preserves exactness, so a merge
    // is exactly "as if every sample of other had been added here".
    // Guard against self-merge invalidating the iteration.
    const std::vector<double> parts = other.parts_;
    for (const double part : parts)
        add(part);
}

double
ExactSum::value() const
{
    // CPython math.fsum final rounding: sum the expansion from the
    // largest part down, and resolve a round-half-even tie with the
    // sign of the next lower part, so the result is the exact sum
    // correctly rounded — a function of the exact value only, never
    // of how the parts happen to be split.
    std::size_t n = parts_.size();
    if (n == 0)
        return 0.0;
    double hi = parts_[--n];
    double lo = 0.0;
    while (n > 0) {
        const double x = hi;
        const double y = parts_[--n];
        hi = x + y;
        const double yr = hi - x;
        lo = y - yr;
        if (lo != 0.0)
            break;
    }
    if (n > 0 && ((lo < 0.0 && parts_[n - 1] < 0.0) ||
                  (lo > 0.0 && parts_[n - 1] > 0.0))) {
        const double y = lo * 2.0;
        const double x = hi + y;
        if (y == x - hi)
            hi = x;
    }
    return hi;
}

ExactSum
ExactSum::fromParts(std::vector<double> parts)
{
    ExactSum sum;
    sum.parts_ = std::move(parts);
    return sum;
}

LogHistogram::LogHistogram(int decades)
    : buckets_(static_cast<std::size_t>(decades), 0)
{
    SUIT_ASSERT(decades > 0, "histogram needs at least one decade");
}

void
LogHistogram::add(std::uint64_t value)
{
    ++total_;
    if (value == 0) {
        ++underflow_;
        return;
    }
    int decade = 0;
    while (value >= 10) {
        value /= 10;
        ++decade;
    }
    if (decade >= static_cast<int>(buckets_.size())) {
        ++overflow_;
        return;
    }
    ++buckets_[static_cast<std::size_t>(decade)];
}

std::uint64_t
LogHistogram::bucket(int decade) const
{
    SUIT_ASSERT(decade >= 0 && decade < decades(),
                "bucket index %d out of range", decade);
    return buckets_[static_cast<std::size_t>(decade)];
}

std::string
LogHistogram::render(int width) const
{
    std::uint64_t peak = 1;
    for (auto b : buckets_)
        peak = std::max(peak, b);
    std::string out;
    for (int d = 0; d < decades(); ++d) {
        const std::uint64_t n = buckets_[static_cast<std::size_t>(d)];
        const int bar = static_cast<int>(
            static_cast<double>(n) / static_cast<double>(peak) * width);
        out += sformat("10^%-2d |%-*s| %llu\n", d, width,
                       std::string(static_cast<std::size_t>(bar), '#')
                           .c_str(),
                       static_cast<unsigned long long>(n));
    }
    return out;
}

} // namespace suit::util
