/**
 * @file
 * RAII SIGINT plumbing for graceful-stop CLIs.
 *
 * The long-running tools (suit_sweep, suit_fleet, suit_sim suite
 * mode, suit_characterize) share one Ctrl-C contract: the first
 * SIGINT raises a stop flag the run's cancellation token observes
 * (runtime::CancelToken::linkExternal), so in-flight work settles
 * and journaled state stays valid; a second SIGINT
 * terminates the process immediately (the journals survive that —
 * appends are atomic rename()s).  SigintGuard packages the handler,
 * the flag, and the restore-on-destruct so each CLI stops carrying
 * its own copy.
 */

#ifndef SUIT_UTIL_SIGINT_HH
#define SUIT_UTIL_SIGINT_HH

#include <atomic>

namespace suit::util {

/**
 * Scoped SIGINT handler with graceful-stop semantics.
 *
 * While the guard is alive, the first Ctrl-C latches requested() and
 * rearms SIGINT to the default action, so the second Ctrl-C kills
 * the process.  The destructor restores whatever handler was
 * installed before construction.  The handler state is process
 * global (a C signal handler cannot capture), so at most one guard
 * may exist at a time.
 */
class SigintGuard
{
  public:
    /** Install the handler; remembers the previous one. */
    SigintGuard();

    /** Restore the handler active before construction. */
    ~SigintGuard();

    SigintGuard(const SigintGuard &) = delete;
    SigintGuard &operator=(const SigintGuard &) = delete;

    /** True once the first SIGINT arrived (or request() ran). */
    bool requested() const;

    /**
     * The stop flag as the runtime layer consumes it — link it into
     * a run's token via runtime::CancelToken::linkExternal().  Valid
     * for the guard's lifetime.
     */
    std::atomic<bool> *flag();

    /**
     * Raise the stop flag without a signal — the CLIs' --stop-after
     * fault-injection hooks share the flag with Ctrl-C.
     */
    void request();
};

} // namespace suit::util

#endif // SUIT_UTIL_SIGINT_HH
