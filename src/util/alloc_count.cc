#include "util/alloc_count.hh"

#include <atomic>

#if defined(SUIT_ALLOC_COUNT)
#include <cstdlib>
#include <new>
#endif

namespace suit::util {

namespace {

std::atomic<std::uint64_t> g_allocs{0};

} // namespace

bool
allocCountEnabled()
{
#if defined(SUIT_ALLOC_COUNT)
    return true;
#else
    return false;
#endif
}

std::uint64_t
allocCount()
{
    return g_allocs.load(std::memory_order_relaxed);
}

} // namespace suit::util

#if defined(SUIT_ALLOC_COUNT)

namespace {

/**
 * malloc with the standard new-handler retry loop.  Counting happens
 * on success only, so the counter equals the number of live-or-freed
 * allocations ever made, not failed attempts.
 */
void *
countedAlloc(std::size_t size)
{
    if (size == 0)
        size = 1;
    for (;;) {
        void *p = std::malloc(size);
        if (p != nullptr) {
            suit::util::g_allocs.fetch_add(1,
                                           std::memory_order_relaxed);
            return p;
        }
        std::new_handler handler = std::get_new_handler();
        if (handler == nullptr)
            throw std::bad_alloc();
        handler();
    }
}

void *
countedAllocAligned(std::size_t size, std::size_t align)
{
    if (size == 0)
        size = 1;
    // aligned_alloc requires the size to be a multiple of the
    // alignment.
    const std::size_t rounded = (size + align - 1) / align * align;
    for (;;) {
        void *p = std::aligned_alloc(align, rounded);
        if (p != nullptr) {
            suit::util::g_allocs.fetch_add(1,
                                           std::memory_order_relaxed);
            return p;
        }
        std::new_handler handler = std::get_new_handler();
        if (handler == nullptr)
            throw std::bad_alloc();
        handler();
    }
}

} // namespace

// Replaceable global allocation functions ([new.delete]).  malloc
// and free satisfy every alignment the unaligned forms require;
// glibc's free releases aligned_alloc memory too, so one delete
// family covers both.

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    try {
        return countedAlloc(size);
    } catch (...) {
        return nullptr;
    }
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    try {
        return countedAlloc(size);
    } catch (...) {
        return nullptr;
    }
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    return countedAllocAligned(size,
                               static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return countedAllocAligned(size,
                               static_cast<std::size_t>(align));
}

void *
operator new(std::size_t size, std::align_val_t align,
             const std::nothrow_t &) noexcept
{
    try {
        return countedAllocAligned(size,
                                   static_cast<std::size_t>(align));
    } catch (...) {
        return nullptr;
    }
}

void *
operator new[](std::size_t size, std::align_val_t align,
               const std::nothrow_t &) noexcept
{
    try {
        return countedAllocAligned(size,
                                   static_cast<std::size_t>(align));
    } catch (...) {
        return nullptr;
    }
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

#endif // SUIT_ALLOC_COUNT
