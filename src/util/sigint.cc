#include "util/sigint.hh"

#include <csignal>

#include "util/logging.hh"

namespace suit::util {

namespace {

/**
 * Handler state.  The classic volatile sig_atomic_t carries the
 * signal into normal control flow; the lock-free atomic<bool> is the
 * engines' polling interface (the standard permits signal handlers
 * to touch lock-free atomics, and the static_assert keeps that
 * assumption honest).
 */
volatile std::sig_atomic_t g_sigintSeen = 0;
std::atomic<bool> g_stop{false};
static_assert(std::atomic<bool>::is_always_lock_free,
              "SIGINT handler needs a lock-free stop flag");

/** One guard at a time: the handler state is process global. */
bool g_guardActive = false;

/** Handler the previous SIGINT disposition is restored from. */
void (*g_previousHandler)(int) = SIG_DFL;

extern "C" void
sigintHandler(int)
{
    g_sigintSeen = 1;
    g_stop.store(true, std::memory_order_relaxed);
    // Graceful stop happens once: rearm to the default action so a
    // second Ctrl-C terminates the process immediately.
    std::signal(SIGINT, SIG_DFL);
}

} // namespace

SigintGuard::SigintGuard()
{
    SUIT_ASSERT(!g_guardActive, "only one SigintGuard may be active");
    g_guardActive = true;
    g_sigintSeen = 0;
    g_stop.store(false, std::memory_order_relaxed);
    g_previousHandler = std::signal(SIGINT, sigintHandler);
}

SigintGuard::~SigintGuard()
{
    std::signal(SIGINT, g_previousHandler);
    g_guardActive = false;
}

bool
SigintGuard::requested() const
{
    return g_sigintSeen != 0 ||
           g_stop.load(std::memory_order_relaxed);
}

std::atomic<bool> *
SigintGuard::flag()
{
    return &g_stop;
}

void
SigintGuard::request()
{
    g_stop.store(true, std::memory_order_relaxed);
}

} // namespace suit::util
