/**
 * @file
 * Minimal command-line option parser for the CLI tools.
 *
 * Supports `--name value`, `--name=value` and boolean `--flag`
 * switches, collects positional arguments, and renders a usage
 * string.  Unknown options are a fatal() user error.
 */

#ifndef SUIT_UTIL_ARGS_HH
#define SUIT_UTIL_ARGS_HH

#include <map>
#include <string>
#include <vector>

namespace suit::util {

/** Outcome of the checked number parsers. */
enum class ParseStatus
{
    Ok,
    /** Not a number, or trailing junk ("x", "12x", ""). */
    BadFormat,
    /** Syntactically valid but outside the target type's range. */
    OutOfRange,
};

/**
 * Parse @p text as a base-10 long.  Unlike raw strtol this rejects
 * trailing junk and reports overflow (errno == ERANGE) instead of
 * silently saturating at LONG_MIN/LONG_MAX.  @p out is only written
 * on ParseStatus::Ok.
 */
ParseStatus tryParseLong(const std::string &text, long &out);

/**
 * Parse @p text as a double; rejects trailing junk and reports
 * overflow to +/-inf.  Subnormal underflow is accepted.  @p out is
 * only written on ParseStatus::Ok.
 */
ParseStatus tryParseDouble(const std::string &text, double &out);

/** Declarative option parser. */
class ArgParser
{
  public:
    /**
     * @param program program name for the usage text.
     * @param description one-line tool description.
     */
    ArgParser(std::string program, std::string description);

    /** Declare a value option with a default. */
    void addOption(const std::string &name,
                   const std::string &default_value,
                   const std::string &help);

    /** Declare a boolean flag (default false). */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parse argv.  Handles --help by printing usage and returning
     * false (the caller should exit 0); fatal()s on unknown options
     * or missing values.
     */
    bool parse(int argc, char **argv);

    /** @{ Typed getters (fatal() on parse errors). */
    const std::string &get(const std::string &name) const;
    double getDouble(const std::string &name) const;
    long getInt(const std::string &name) const;
    bool getFlag(const std::string &name) const;
    /**
     * getInt() with an inclusive [lo, hi] bound; fatal()s with the
     * permitted range when the value falls outside it.  The CLIs use
     * this wherever the value feeds an int (or a bounded resource
     * like a worker count), so a `--reps 5000000000` can't wrap into
     * a silent narrowing.
     */
    long getIntInRange(const std::string &name, long lo, long hi) const;
    /** @} */

    /** Positional (non-option) arguments, in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** The usage text. */
    std::string usage() const;

  private:
    struct Option
    {
        std::string value;
        std::string defaultValue;
        std::string help;
        bool isFlag = false;
        bool seen = false;
    };

    std::string program_;
    std::string description_;
    std::vector<std::string> order_;
    std::map<std::string, Option> options_;
    std::vector<std::string> positional_;

    const Option &find(const std::string &name) const;
};

} // namespace suit::util

#endif // SUIT_UTIL_ARGS_HH
