#include "util/logging.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "util/format.hh"

namespace suit::util {

namespace {

using Clock = std::chrono::steady_clock;

std::atomic<LogLevel> g_level{LogLevel::Info};
std::atomic<bool> g_tick_prefix{false};

/**
 * One mutex serialises every sink write: concurrent inform()/warn()
 * from pool workers used to interleave lines mid-message because each
 * fprintf is only atomic per libc buffer flush, not per call.
 */
std::mutex &
sinkMutex()
{
    static std::mutex mu;
    return mu;
}

LogSink &
sinkSlot()
{
    static LogSink sink;
    return sink;
}

Clock::time_point
processStart()
{
    static const Clock::time_point start = Clock::now();
    return start;
}

/** Message with the optional monotonic-tick prefix applied. */
std::string
decorate(const std::string &msg)
{
    if (!g_tick_prefix.load(std::memory_order_relaxed))
        return msg;
    const double s =
        std::chrono::duration<double>(Clock::now() - processStart())
            .count();
    return sformat("[+%.6fs] ", s) + msg;
}

/** Serialised write to the installed sink or stderr. */
void
emit(LogClass cls, const char *tag, const std::string &msg)
{
    const std::string line = decorate(msg);
    std::lock_guard lock(sinkMutex());
    if (LogSink &sink = sinkSlot()) {
        sink(cls, line);
        return;
    }
    std::fprintf(stderr, "%s: %s\n", tag, line.c_str());
}

} // namespace

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

void
setLogTickPrefix(bool enabled)
{
    // Latch the reference point on first use so the prefix measures
    // time from roughly process start, not from the first message.
    processStart();
    g_tick_prefix.store(enabled, std::memory_order_relaxed);
}

void
setLogSink(LogSink sink)
{
    std::lock_guard lock(sinkMutex());
    sinkSlot() = std::move(sink);
}

void
informStr(const std::string &msg)
{
    if (logLevel() >= LogLevel::Info)
        emit(LogClass::Info, "info", msg);
}

void
warnStr(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        emit(LogClass::Warn, "warn", msg);
}

void
fatalStr(const std::string &msg)
{
    emit(LogClass::Fatal, "fatal", msg);
    std::exit(1);
}

void
panicStr(const std::string &msg, const char *file, int line)
{
    emit(LogClass::Panic, "panic",
         sformat("%s (%s:%d)", msg.c_str(), file, line));
    std::abort();
}

} // namespace suit::util
