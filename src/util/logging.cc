#include "util/logging.hh"

#include <cstdio>

namespace suit::util {

namespace {
LogLevel g_level = LogLevel::Info;
} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

void
informStr(const std::string &msg)
{
    if (g_level >= LogLevel::Info)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warnStr(const std::string &msg)
{
    if (g_level >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
fatalStr(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panicStr(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

} // namespace suit::util
