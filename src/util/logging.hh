/**
 * @file
 * gem5-style status and error reporting.
 *
 * Severity ladder (mirrors gem5's base/logging.hh semantics):
 *  - inform():    normal operating message, no connotation of error.
 *  - warn():      something might be off; keep going.
 *  - fatal():     the *user's* fault (bad configuration, bad input);
 *                 exits with code 1.
 *  - panic():     a library bug — an invariant that must never break
 *                 regardless of user input; aborts.
 */

#ifndef SUIT_UTIL_LOGGING_HH
#define SUIT_UTIL_LOGGING_HH

#include <cstdlib>
#include <functional>
#include <string>

#include "util/format.hh"

namespace suit::util {

/** Verbosity control: messages below this level are suppressed. */
enum class LogLevel { Silent, Warn, Info };

/** Get/set the process-wide log level (defaults to Info). */
LogLevel logLevel();
void setLogLevel(LogLevel level);

/** Kind of message delivered to a LogSink. */
enum class LogClass { Info, Warn, Fatal, Panic };

/**
 * Replacement message sink; null restores the stderr default.  The
 * sink is invoked under the writer mutex, one whole message at a
 * time (the level filter and tick prefix are applied first).  Used
 * by tests to capture output and by embedders to reroute it.
 */
using LogSink = std::function<void(LogClass, const std::string &)>;
void setLogSink(LogSink sink);

/**
 * Prefix every message with the monotonic time since process start
 * ("[+12.345678s] "), so interleaved multi-worker output stays
 * ordered and attributable.  All sinks are serialised by one writer
 * mutex regardless of this setting.
 */
void setLogTickPrefix(bool enabled);

/** @{ Raw (pre-formatted) sinks; prefer the variadic wrappers. */
void informStr(const std::string &msg);
void warnStr(const std::string &msg);
[[noreturn]] void fatalStr(const std::string &msg);
[[noreturn]] void panicStr(const std::string &msg, const char *file,
                           int line);
/** @} */

/** Print an informational message to stderr. */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    informStr(sformat(fmt, args...));
}

/** Print a warning to stderr. */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    warnStr(sformat(fmt, args...));
}

/** Report an unrecoverable user error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    fatalStr(sformat(fmt, args...));
}

/**
 * Report a broken internal invariant and abort.  Use via the
 * SUIT_PANIC / SUIT_ASSERT macros so file/line are recorded.
 */
#define SUIT_PANIC(...)                                                 \
    ::suit::util::panicStr(::suit::util::sformat(__VA_ARGS__),          \
                           __FILE__, __LINE__)

/** Always-on invariant check (not compiled out in release builds). */
#define SUIT_ASSERT(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::suit::util::panicStr(                                     \
                std::string("assertion '" #cond "' failed: ") +         \
                    ::suit::util::sformat(__VA_ARGS__),                 \
                __FILE__, __LINE__);                                    \
        }                                                               \
    } while (0)

} // namespace suit::util

#endif // SUIT_UTIL_LOGGING_HH
