#include "util/table.hh"

#include <algorithm>
#include <cstdio>

#include "util/logging.hh"

namespace suit::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    SUIT_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    SUIT_ASSERT(cells.size() == headers_.size(),
                "row width %zu != header width %zu", cells.size(),
                headers_.size());
    rows_.push_back(std::move(cells));
}

void
TablePrinter::addSeparator()
{
    rows_.push_back({kSeparatorTag});
}

std::string
TablePrinter::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        if (row.size() == 1 && row[0] == kSeparatorTag)
            continue;
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto render_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            if (c + 1 < row.size())
                line += std::string(widths[c] - row[c].size() + 2, ' ');
        }
        line += '\n';
        return line;
    };

    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);

    std::string out = render_row(headers_);
    out += std::string(total, '-') + '\n';
    for (const auto &row : rows_) {
        if (row.size() == 1 && row[0] == kSeparatorTag)
            out += std::string(total, '-') + '\n';
        else
            out += render_row(row);
    }
    return out;
}

void
TablePrinter::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace suit::util
