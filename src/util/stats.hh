/**
 * @file
 * Streaming and batch statistics used across the evaluation harness.
 *
 * RunningStats accumulates mean / variance / extrema in one pass
 * (Welford's algorithm); the free functions compute order statistics
 * and the geometric mean used for SPEC-style score aggregation;
 * LogHistogram buckets positive values by order of magnitude, which is
 * what the paper's "gap size" plots (Figs. 5 and 7) display.
 */

#ifndef SUIT_UTIL_STATS_HH
#define SUIT_UTIL_STATS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace suit::util {

/** One-pass mean/variance/min/max accumulator (Welford). */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples seen so far. */
    std::size_t count() const { return count_; }
    /** Arithmetic mean (0 if empty). */
    double mean() const { return count_ ? mean_ : 0.0; }
    /** Unbiased sample variance (0 if fewer than two samples). */
    double variance() const;
    /** Sample standard deviation. */
    double stddev() const;
    /** Standard error of the mean (sigma_x in the paper's notation). */
    double stderrMean() const;
    /** Smallest sample (0 if empty). */
    double min() const { return count_ ? min_ : 0.0; }
    /** Largest sample (0 if empty). */
    double max() const { return count_ ? max_ : 0.0; }
    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/** Geometric mean of positive values; 0 for an empty input. */
double geomean(const std::vector<double> &values);

/** Median (average of the two middle values for even sizes). */
double median(std::vector<double> values);

/**
 * Linear-interpolation percentile.
 *
 * @param values sample set (copied; need not be sorted).
 * @param p percentile in [0, 100].
 */
double percentile(std::vector<double> values, double p);

/**
 * Fixed-bucket histogram over explicit upper bounds.
 *
 * Bucket i counts samples with value <= bounds[i] (and greater than
 * bounds[i-1]); one implicit overflow bucket counts everything above
 * the last bound.  The bucket layout is exactly the cell layout the
 * obs::Registry shards use, so a registry snapshot can rebuild a
 * BucketHistogram from raw per-thread counts (addCount) and merge
 * shards with merge().
 */
class BucketHistogram
{
  public:
    /** Empty histogram with no bounds (only the overflow bucket). */
    BucketHistogram() = default;

    /**
     * @param upper_bounds inclusive bucket upper bounds; must be
     *        strictly increasing (asserted).
     */
    explicit BucketHistogram(std::vector<double> upper_bounds);

    /** Record one sample. */
    void add(double value);

    /**
     * Add @p n samples to bucket @p bucket directly (registry shard
     * merge path).  @p bucket may be bounds().size() — the overflow
     * bucket.
     */
    void addCount(std::size_t bucket, std::uint64_t n);

    /**
     * Merge another histogram with identical bounds into this one
     * (asserted; merging mismatching layouts would silently misbin).
     */
    void merge(const BucketHistogram &other);

    /**
     * Zero every bucket count while keeping the bounds — the
     * allocation-free refill path of Registry::snapshotInto().
     */
    void resetCounts();

    /** Bucket upper bounds (excludes the implicit overflow bucket). */
    const std::vector<double> &bounds() const { return bounds_; }
    /** Number of buckets including the overflow bucket. */
    std::size_t bucketCount() const { return counts_.size(); }
    /** Count in bucket @p i (i == bounds().size() = overflow). */
    std::uint64_t count(std::size_t i) const;
    /** Total samples recorded. */
    std::uint64_t total() const { return total_; }

    /**
     * Estimated percentile by linear interpolation inside the
     * containing bucket (the first bucket interpolates from 0, the
     * overflow bucket clamps to the last bound).  0 for an empty
     * histogram.
     *
     * @param p percentile in [0, 100].
     */
    double percentile(double p) const;

  private:
    std::vector<double> bounds_;
    std::vector<std::uint64_t> counts_{0}; //!< bounds + overflow
    std::uint64_t total_ = 0;
};

/**
 * Exact floating-point accumulator (Shewchuk expansion summation).
 *
 * Keeps the running sum as a list of non-overlapping doubles whose
 * exact (infinitely precise) sum equals the exact sum of everything
 * added so far; value() rounds that exact sum to the nearest double
 * once (round-half-even, CPython math.fsum's final-rounding rule).
 *
 * Because the represented value is *exact*, addition through an
 * ExactSum is associative: any grouping of the same samples — one
 * accumulator fed serially, or many accumulators merged in any order
 * — yields the same exact value and therefore the same value() bits.
 * The fleet engine relies on this for its shard-count/worker-count
 * invariance guarantee: per-shard aggregates merge without the
 * grouping sensitivity of plain double addition.
 *
 * Inputs must be finite (asserted); the expansion grows only when
 * samples span magnitudes (typically a handful of parts), so an
 * ExactSum is a few dozen bytes, not a sample log.
 */
class ExactSum
{
  public:
    /** Add one finite sample. */
    void add(double x);

    /** Add every part of @p other (exact, order-insensitive). */
    void merge(const ExactSum &other);

    /** The exact sum, correctly rounded to the nearest double. */
    double value() const;

    /** Non-overlapping parts, increasing magnitude (serialization). */
    const std::vector<double> &parts() const { return parts_; }

    /** Restore from serialized parts (trusted, e.g. a checkpoint). */
    static ExactSum fromParts(std::vector<double> parts);

  private:
    std::vector<double> parts_;
};

/**
 * Histogram over log10-sized buckets for positive integer values.
 *
 * Bucket i holds values in [10^i, 10^(i+1)); values of zero land in
 * a dedicated underflow bucket.
 */
class LogHistogram
{
  public:
    /** Create with the given number of decades (default 12). */
    explicit LogHistogram(int decades = 12);

    /** Record one value. */
    void add(std::uint64_t value);

    /** Count in the given decade bucket. */
    std::uint64_t bucket(int decade) const;
    /** Count of zero-valued samples. */
    std::uint64_t underflow() const { return underflow_; }
    /** Count of samples at or above the last decade. */
    std::uint64_t overflow() const { return overflow_; }
    /** Total samples recorded. */
    std::uint64_t total() const { return total_; }
    /** Number of decades configured. */
    int decades() const { return static_cast<int>(buckets_.size()); }

    /** Render as an ASCII bar chart, one row per decade. */
    std::string render(int width = 50) const;

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace suit::util

#endif // SUIT_UTIL_STATS_HH
