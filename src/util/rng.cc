#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace suit::util {

namespace {

/** splitmix64 step, used for seed expansion. */
std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    SUIT_ASSERT(bound > 0, "nextBelow() requires a positive bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    SUIT_ASSERT(lo <= hi, "nextRange() requires lo <= hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextDouble(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

double
Rng::nextExponential(double mean)
{
    SUIT_ASSERT(mean > 0.0, "exponential mean must be positive");
    double u;
    do {
        u = nextDouble();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::nextGaussian()
{
    if (hasCachedGaussian_) {
        hasCachedGaussian_ = false;
        return cachedGaussian_;
    }
    double u1;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    const double u2 = nextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedGaussian_ = r * std::sin(theta);
    hasCachedGaussian_ = true;
    return r * std::cos(theta);
}

double
Rng::nextGaussian(double mean, double stddev)
{
    return mean + stddev * nextGaussian();
}

double
Rng::nextLogNormal(double mu, double sigma)
{
    return std::exp(nextGaussian(mu, sigma));
}

double
Rng::nextPareto(double x_m, double alpha)
{
    SUIT_ASSERT(x_m > 0.0 && alpha > 0.0,
                "pareto parameters must be positive");
    double u;
    do {
        u = nextDouble();
    } while (u <= 0.0);
    return x_m / std::pow(u, 1.0 / alpha);
}

Rng
Rng::split()
{
    // Two fresh draws give a decorrelated seed for the child stream.
    const std::uint64_t a = next();
    const std::uint64_t b = next();
    return Rng(a ^ rotl(b, 32));
}

} // namespace suit::util
