/**
 * @file
 * Global allocation counter for the benchmark harnesses.
 *
 * When the SUIT_ALLOC_COUNT CMake option is on, alloc_count.cc
 * replaces the global operator new/delete family with thin wrappers
 * over malloc/free that bump a relaxed atomic counter per
 * allocation.  suit_bench_json uses the counter to measure — and
 * assert — that the steady-state domain-evaluation loop performs
 * zero heap allocations per domain once a SimWorkspace is warm.
 *
 * The replacement only takes effect in binaries that pull in this
 * translation unit (i.e. reference allocCount()/allocCountEnabled()),
 * so ordinary tools and tests keep the stock allocator path.  The
 * counter is process-global and monotonically increasing; callers
 * measure deltas.  Cost when compiled in: one relaxed fetch_add per
 * allocation — unmeasurable next to malloc itself.
 */

#ifndef SUIT_UTIL_ALLOC_COUNT_HH
#define SUIT_UTIL_ALLOC_COUNT_HH

#include <cstdint>

namespace suit::util {

/** True when the operator-new hook is compiled in. */
bool allocCountEnabled();

/**
 * Allocations observed since process start (0 when the hook is
 * compiled out).  Monotonic; take deltas around the region of
 * interest.
 */
std::uint64_t allocCount();

} // namespace suit::util

#endif // SUIT_UTIL_ALLOC_COUNT_HH
