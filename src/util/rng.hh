/**
 * @file
 * Deterministic random number generation.
 *
 * All stochastic components (trace generators, process variation,
 * fault injection) draw from this xoshiro256** generator so that every
 * experiment is reproducible from a seed.  std::mt19937 is avoided for
 * speed and because libstdc++ distribution implementations are not
 * stable across versions; the distributions here are hand-rolled.
 */

#ifndef SUIT_UTIL_RNG_HH
#define SUIT_UTIL_RNG_HH

#include <cstdint>

namespace suit::util {

/**
 * xoshiro256** PRNG (Blackman & Vigna), seeded through splitmix64.
 *
 * Passes BigCrush; 2^256-1 period; trivially copyable so simulator
 * state can be snapshotted.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x5317C0DEULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) (bound > 0). */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double nextDouble(double lo, double hi);

    /** Bernoulli trial with probability p of returning true. */
    bool nextBool(double p);

    /** Exponentially distributed double with the given mean. */
    double nextExponential(double mean);

    /** Standard normal via Box-Muller (cached second value). */
    double nextGaussian();

    /** Normal with given mean and standard deviation. */
    double nextGaussian(double mean, double stddev);

    /** Log-normal parameterised by the *underlying* normal mu/sigma. */
    double nextLogNormal(double mu, double sigma);

    /** Pareto with scale x_m > 0 and shape alpha > 0. */
    double nextPareto(double x_m, double alpha);

    /** Fork a decorrelated child generator (for parallel streams). */
    Rng split();

  private:
    static constexpr std::uint64_t kDefaultSeed = 0x5317C0DEULL;

    std::uint64_t s_[4];
    double cachedGaussian_ = 0.0;
    bool hasCachedGaussian_ = false;
};

} // namespace suit::util

#endif // SUIT_UTIL_RNG_HH
