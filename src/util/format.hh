/**
 * @file
 * printf-style std::string formatting helper.
 *
 * GCC 12 ships no <format>, so the project uses a small, type-checked
 * (via the format attribute) vsnprintf wrapper for message building.
 */

#ifndef SUIT_UTIL_FORMAT_HH
#define SUIT_UTIL_FORMAT_HH

#include <string>

namespace suit::util {

/**
 * Format a printf-style message into a std::string.
 *
 * @param fmt printf format string.
 * @return The formatted string.
 */
std::string sformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace suit::util

#endif // SUIT_UTIL_FORMAT_HH
