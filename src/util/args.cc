#include "util/args.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/format.hh"
#include "util/logging.hh"

namespace suit::util {

ParseStatus
tryParseLong(const std::string &text, long &out)
{
    char *end = nullptr;
    errno = 0;
    const long value = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        return ParseStatus::BadFormat;
    if (errno == ERANGE)
        return ParseStatus::OutOfRange;
    out = value;
    return ParseStatus::Ok;
}

ParseStatus
tryParseDouble(const std::string &text, double &out)
{
    char *end = nullptr;
    errno = 0;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        return ParseStatus::BadFormat;
    // ERANGE covers both overflow (to +/-HUGE_VAL) and subnormal
    // underflow; only the former loses the user's magnitude.
    if (errno == ERANGE && std::isinf(value))
        return ParseStatus::OutOfRange;
    out = value;
    return ParseStatus::Ok;
}

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description))
{
}

void
ArgParser::addOption(const std::string &name,
                     const std::string &default_value,
                     const std::string &help)
{
    SUIT_ASSERT(options_.count(name) == 0, "duplicate option --%s",
                name.c_str());
    options_[name] = Option{default_value, default_value, help, false,
                            false};
    order_.push_back(name);
}

void
ArgParser::addFlag(const std::string &name, const std::string &help)
{
    SUIT_ASSERT(options_.count(name) == 0, "duplicate flag --%s",
                name.c_str());
    options_[name] = Option{"0", "0", help, true, false};
    order_.push_back(name);
}

bool
ArgParser::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage().c_str(), stdout);
            return false;
        }
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(std::move(arg));
            continue;
        }
        std::string name = arg.substr(2);
        std::string value;
        bool has_value = false;
        const std::size_t eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_value = true;
        }
        auto it = options_.find(name);
        if (it == options_.end())
            fatal("unknown option --%s (try --help)", name.c_str());
        Option &opt = it->second;
        if (opt.isFlag) {
            if (has_value)
                fatal("flag --%s takes no value", name.c_str());
            opt.value = "1";
        } else {
            if (!has_value) {
                if (i + 1 >= argc)
                    fatal("option --%s needs a value", name.c_str());
                value = argv[++i];
            }
            opt.value = value;
        }
        opt.seen = true;
    }
    return true;
}

const ArgParser::Option &
ArgParser::find(const std::string &name) const
{
    const auto it = options_.find(name);
    SUIT_ASSERT(it != options_.end(), "undeclared option --%s",
                name.c_str());
    return it->second;
}

const std::string &
ArgParser::get(const std::string &name) const
{
    return find(name).value;
}

double
ArgParser::getDouble(const std::string &name) const
{
    const std::string &v = get(name);
    double d = 0.0;
    switch (tryParseDouble(v, d)) {
      case ParseStatus::Ok:
        return d;
      case ParseStatus::OutOfRange:
        fatal("option --%s value '%s' is out of range",
              name.c_str(), v.c_str());
      case ParseStatus::BadFormat:
      default:
        fatal("option --%s expects a number, got '%s'", name.c_str(),
              v.c_str());
    }
}

long
ArgParser::getInt(const std::string &name) const
{
    const std::string &v = get(name);
    long l = 0;
    switch (tryParseLong(v, l)) {
      case ParseStatus::Ok:
        return l;
      case ParseStatus::OutOfRange:
        fatal("option --%s value '%s' is out of range",
              name.c_str(), v.c_str());
      case ParseStatus::BadFormat:
      default:
        fatal("option --%s expects an integer, got '%s'",
              name.c_str(), v.c_str());
    }
}

long
ArgParser::getIntInRange(const std::string &name, long lo,
                         long hi) const
{
    SUIT_ASSERT(lo <= hi, "empty range [%ld, %ld] for --%s", lo, hi,
                name.c_str());
    const long value = getInt(name);
    if (value < lo || value > hi)
        fatal("option --%s value %ld is out of range [%ld, %ld]",
              name.c_str(), value, lo, hi);
    return value;
}

bool
ArgParser::getFlag(const std::string &name) const
{
    const Option &opt = find(name);
    SUIT_ASSERT(opt.isFlag, "--%s is not a flag", name.c_str());
    return opt.value == "1";
}

std::string
ArgParser::usage() const
{
    std::string out =
        sformat("%s — %s\n\nOptions:\n", program_.c_str(),
                description_.c_str());
    for (const std::string &name : order_) {
        const Option &opt = options_.at(name);
        if (opt.isFlag) {
            out += sformat("  --%-18s %s\n", name.c_str(),
                           opt.help.c_str());
        } else {
            out += sformat("  --%-18s %s (default: %s)\n",
                           (name + " <v>").c_str(), opt.help.c_str(),
                           opt.defaultValue.c_str());
        }
    }
    return out;
}

} // namespace suit::util
