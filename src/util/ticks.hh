/**
 * @file
 * Simulation time base.
 *
 * All simulators in this project share one fixed-point time base: one
 * Tick is one picosecond.  64 bits of picoseconds cover ~213 days of
 * simulated time, far beyond any workload here.  Helper functions
 * convert between ticks, SI time units and clock frequencies.
 */

#ifndef SUIT_UTIL_TICKS_HH
#define SUIT_UTIL_TICKS_HH

#include <cstdint>

namespace suit::util {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** One nanosecond in ticks. */
constexpr Tick kTicksPerNs = 1000;
/** One microsecond in ticks. */
constexpr Tick kTicksPerUs = 1000 * kTicksPerNs;
/** One millisecond in ticks. */
constexpr Tick kTicksPerMs = 1000 * kTicksPerUs;
/** One second in ticks. */
constexpr Tick kTicksPerSec = 1000 * kTicksPerMs;

/** Convert seconds (double) to ticks. */
constexpr Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(s * static_cast<double>(kTicksPerSec));
}

/** Convert microseconds (double) to ticks. */
constexpr Tick
microsecondsToTicks(double us)
{
    return static_cast<Tick>(us * static_cast<double>(kTicksPerUs));
}

/** Convert ticks to seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerSec);
}

/** Convert ticks to microseconds. */
constexpr double
ticksToMicroseconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerUs);
}

/** Clock period in ticks for a frequency given in Hz. */
constexpr Tick
frequencyToPeriod(double hz)
{
    return static_cast<Tick>(static_cast<double>(kTicksPerSec) / hz);
}

/** Clock frequency in Hz for a period given in ticks. */
constexpr double
periodToFrequency(Tick period)
{
    return static_cast<double>(kTicksPerSec) /
           static_cast<double>(period);
}

} // namespace suit::util

#endif // SUIT_UTIL_TICKS_HH
