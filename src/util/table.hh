/**
 * @file
 * Aligned ASCII table printer for the benchmark harnesses.
 *
 * Every bench/ binary regenerates one of the paper's tables or figure
 * series; TablePrinter renders them with aligned columns so the output
 * can be compared against the paper side by side.
 */

#ifndef SUIT_UTIL_TABLE_HH
#define SUIT_UTIL_TABLE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace suit::util {

/** Column-aligned table with a header row and optional separators. */
class TablePrinter
{
  public:
    /** Create a table with the given column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append one data row (must match the header width). */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Render the whole table to a string. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    static constexpr const char *kSeparatorTag = "\x01--";

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace suit::util

#endif // SUIT_UTIL_TABLE_HH
