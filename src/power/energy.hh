/**
 * @file
 * Energy accounting and the paper's efficiency metric.
 *
 * EnergyMeter mirrors the RAPL interface used for the measurements in
 * the paper: it integrates piecewise-constant power over simulated
 * time and can be sampled for window-average power.  The efficiency
 * helpers implement the paper's definition (Sec. 5.4): finishing in
 * half the time at half the power quadruples efficiency.
 */

#ifndef SUIT_POWER_ENERGY_HH
#define SUIT_POWER_ENERGY_HH

#include "util/ticks.hh"

namespace suit::power {

/** RAPL-style energy integrator over simulated time. */
class EnergyMeter
{
  public:
    /**
     * Advance the meter to @p now, charging the interval since the
     * last update at @p power_w.
     */
    void advance(suit::util::Tick now, double power_w);

    /** Total accumulated energy in joules. */
    double energyJ() const { return energyJ_; }

    /** Time of the last update. */
    suit::util::Tick now() const { return now_; }

    /** Average power since the meter started (W). */
    double averagePowerW() const;

    /** Reset to time zero with no accumulated energy. */
    void reset();

  private:
    suit::util::Tick now_ = 0;
    double energyJ_ = 0.0;
};

/**
 * Efficiency ratio per the paper: 1 / (duration_ratio * power_ratio).
 *
 * @param duration_ratio new duration / baseline duration.
 * @param power_ratio new average power / baseline average power.
 * @return efficiency ratio (> 1 means more efficient).
 */
double efficiencyRatio(double duration_ratio, double power_ratio);

/** Efficiency change as a fraction: efficiencyRatio(...) - 1. */
double efficiencyDelta(double duration_ratio, double power_ratio);

} // namespace suit::power

#endif // SUIT_POWER_ENERGY_HH
