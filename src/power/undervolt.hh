/**
 * @file
 * Measured whole-system undervolting response (paper Sec. 5.4).
 *
 * Undervolting lowers package power; because steady-state performance
 * is TDP-limited, the freed power budget lets the CPU sustain higher
 * clocks, so the SPEC score *increases*.  The paper measures this
 * response on real CPUs (Table 2, Fig. 12); this module stores those
 * anchors and interpolates between them.  The trace simulator charges
 * these deltas whenever a core runs on the efficient DVFS curve.
 */

#ifndef SUIT_POWER_UNDERVOLT_HH
#define SUIT_POWER_UNDERVOLT_HH

#include <string>
#include <vector>

namespace suit::power {

/** System-level effect of one undervolt offset. */
struct UndervoltEffect
{
    /** Voltage offset in mV (negative = undervolt). */
    double offsetMv = 0.0;
    /** SPEC score change as a fraction (+0.038 = +3.8 %). */
    double scoreDelta = 0.0;
    /** Package power change as a fraction (-0.16 = -16 %). */
    double powerDelta = 0.0;
    /** Mean core frequency change as a fraction. */
    double freqDelta = 0.0;

    /**
     * Efficiency change per the paper's definition: the inverse of
     * (duration ratio * power ratio) minus one.  A score increase
     * shortens the duration by 1/(1+score).
     */
    double efficiencyDelta() const;
};

/** Piecewise-linear undervolt response curve for one CPU. */
class UndervoltResponse
{
  public:
    UndervoltResponse() = default;

    /**
     * Build from measured anchors.  An implicit zero anchor at
     * offset 0 is added if absent.
     */
    UndervoltResponse(std::string cpu_name,
                      std::vector<UndervoltEffect> anchors);

    /** CPU label. */
    const std::string &cpuName() const { return cpuName_; }

    /** Interpolated effect at an offset (clamped to anchor range). */
    UndervoltEffect at(double offset_mv) const;

    /** Measured anchors, sorted by offset descending (0 first). */
    const std::vector<UndervoltEffect> &anchors() const
    {
        return anchors_;
    }

  private:
    std::string cpuName_;
    std::vector<UndervoltEffect> anchors_;
};

/** @{ Measured responses from Table 2 of the paper. */
UndervoltResponse i9_9900kUndervoltResponse();
UndervoltResponse i5_1035g1UndervoltResponse();
UndervoltResponse ryzen7700xUndervoltResponse();
/**
 * The Xeon Silver 4208 cannot be undervolted via MSR 0x150 (paper
 * Sec. 5.4), so the paper's simulation — and this model — reuse the
 * i9-9900K response for CPU C.  Documented substitution.
 */
UndervoltResponse xeon4208UndervoltResponse();
/** @} */

} // namespace suit::power

#endif // SUIT_POWER_UNDERVOLT_HH
