/**
 * @file
 * First-order CMOS package power model.
 *
 * P_dyn = Ceff * V^2 * f (paper Sec. 2.1) plus a leakage term linear
 * in V.  The model is calibrated from one reference operating point
 * (frequency, voltage, package power, dynamic fraction), which is how
 * the evaluation ties the model to the RAPL measurements reported in
 * the paper (93 W at the i9-9900K's stock point, Fig. 12).
 */

#ifndef SUIT_POWER_CMOS_HH
#define SUIT_POWER_CMOS_HH

namespace suit::power {

/** Calibrated Ceff*V^2*f + leakage package power model. */
class CmosPowerModel
{
  public:
    CmosPowerModel() = default;

    /**
     * Calibrate the model.
     *
     * @param ref_freq_hz reference core frequency.
     * @param ref_voltage_mv reference core voltage.
     * @param ref_power_w measured package power at the reference.
     * @param dynamic_fraction share of @p ref_power_w that is dynamic
     *        (switching) power; the rest is leakage + uncore.
     */
    CmosPowerModel(double ref_freq_hz, double ref_voltage_mv,
                   double ref_power_w, double dynamic_fraction = 0.7);

    /**
     * Package power at an operating point.
     *
     * @param freq_hz core frequency.
     * @param voltage_mv core voltage.
     * @param activity activity factor scaling the dynamic term
     *        (1.0 = the calibration workload).
     */
    double powerW(double freq_hz, double voltage_mv,
                  double activity = 1.0) const;

    /** Dynamic component only. */
    double dynamicPowerW(double freq_hz, double voltage_mv,
                         double activity = 1.0) const;

    /** Leakage (static) component only. */
    double leakagePowerW(double voltage_mv) const;

    /** Effective switched capacitance in farads. */
    double ceffFarads() const { return ceffFarads_; }

  private:
    double ceffFarads_ = 0.0;
    double leakagePerMv_ = 0.0;
};

} // namespace suit::power

#endif // SUIT_POWER_CMOS_HH
