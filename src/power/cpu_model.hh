/**
 * @file
 * The evaluated CPU models (paper Sec. 6.2).
 *
 * The paper evaluates SUIT on three machines:
 *   A: Intel Core i9-9900K  — one shared frequency+voltage domain.
 *   B: AMD Ryzen 7 7700X    — per-core frequency, no runtime voltage
 *                             control, very slow (668 us) changes.
 *   C: Intel Xeon Silver 4208 — per-core frequency *and* voltage
 *                             domains (PCPS), fast changes.
 * plus the i5-1035G1 for the undervolting response study (Table 2).
 *
 * CpuModel bundles everything the trace simulator needs: the DVFS
 * curve, the undervolt response, transition delays, exception costs
 * and a calibrated package power model, and computes the relative
 * performance/power of the three SUIT p-states E, Cf and CV.
 */

#ifndef SUIT_POWER_CPU_MODEL_HH
#define SUIT_POWER_CPU_MODEL_HH

#include <string>

#include "power/cmos.hh"
#include "power/pstate.hh"
#include "power/transition.hh"
#include "power/undervolt.hh"

namespace suit::power {

/** CPU vendor family (selects e.g. the Table 4 no-SIMD row). */
enum class Vendor
{
    Intel,
    Amd,
};

/** DVFS domain granularity of a CPU. */
enum class DomainLayout
{
    /** One frequency + voltage domain shared by all cores (CPU A). */
    SharedAll,
    /** Per-core frequency domains, one voltage domain (CPU B). */
    PerCoreFrequency,
    /** Per-core frequency and voltage domains (CPU C, PCPS). */
    PerCoreAll,
};

/** The three operating points of the fV strategy (paper Fig. 4). */
enum class SuitPState
{
    /** Efficient curve: low voltage, full frequency, opcodes off. */
    Efficient,
    /** Conservative via frequency: low voltage, reduced frequency. */
    ConservativeFreq,
    /** Conservative via voltage: full voltage, full frequency. */
    ConservativeVolt,
};

/** Printable name of a SuitPState ("E", "Cf", "CV"). */
const char *toString(SuitPState p);

/** Dense table index of a p-state (E = 0, Cf = 1, CV = 2). */
constexpr int
pstateIndex(SuitPState p)
{
    switch (p) {
      case SuitPState::Efficient:
        return 0;
      case SuitPState::ConservativeFreq:
        return 1;
      case SuitPState::ConservativeVolt:
        return 2;
    }
    return 2;
}

/** Number of SUIT p-states (table dimension). */
constexpr int kNumSuitPStates = 3;

/**
 * Precomputed perfFactor()/powerFactor() values of every p-state for
 * one (CPU, undervolt offset) pair, indexed by pstateIndex().
 *
 * perfFactor() walks the measured undervolt response and inverts the
 * DVFS curve for the Cf point on every call; loop-resident code (the
 * domain simulator advances these factors once per simulated event)
 * uses this table instead.  The entries are the exact doubles the
 * per-call functions return, so switching to the table cannot change
 * any downstream arithmetic.
 */
struct PStateFactors
{
    double perf[kNumSuitPStates] = {1.0, 1.0, 1.0};
    double power[kNumSuitPStates] = {1.0, 1.0, 1.0};
};

/** Full description of one evaluated CPU. */
class CpuModel
{
  public:
    /** Aggregate configuration (filled by the factory functions). */
    struct Config
    {
        std::string name;       //!< marketing name
        std::string label;      //!< paper label: "A", "B", "C"
        Vendor vendor = Vendor::Intel;
        int coreCount = 1;      //!< physical cores
        DomainLayout domains = DomainLayout::SharedAll;
        DvfsCurve conservativeCurve;
        UndervoltResponse undervolt;
        TransitionModel transitions;
        double baseFreqHz = 0.0;   //!< mean SPEC frequency
        double basePowerW = 0.0;   //!< package power at base point
        double dynamicFraction = 0.7;
        double exceptionDelayUs = 0.0;  //!< #DO -> handler entry
        double emulationCallUs = 0.0;   //!< full emulate round trip
    };

    explicit CpuModel(Config cfg);

    /** @{ Plain accessors. */
    const std::string &name() const { return cfg_.name; }
    const std::string &label() const { return cfg_.label; }
    Vendor vendor() const { return cfg_.vendor; }
    bool isAmd() const { return cfg_.vendor == Vendor::Amd; }
    int coreCount() const { return cfg_.coreCount; }
    DomainLayout domains() const { return cfg_.domains; }
    const DvfsCurve &conservativeCurve() const
    {
        return cfg_.conservativeCurve;
    }
    const UndervoltResponse &undervolt() const { return cfg_.undervolt; }
    const TransitionModel &transitions() const
    {
        return cfg_.transitions;
    }
    double baseFreqHz() const { return cfg_.baseFreqHz; }
    double basePowerW() const { return cfg_.basePowerW; }
    double exceptionDelayUs() const { return cfg_.exceptionDelayUs; }
    double emulationCallUs() const { return cfg_.emulationCallUs; }
    const CmosPowerModel &cmos() const { return cmos_; }
    /** @} */

    /**
     * The efficient DVFS curve for an undervolt offset (negative mV):
     * the conservative curve shifted down (paper Sec. 3.2).
     */
    DvfsCurve efficientCurve(double offset_mv) const;

    /**
     * Frequency of the Cf point: the highest conservative-curve
     * frequency that is stable at the *efficient* voltage (Fig. 4:
     * moving horizontally from E to the conservative curve).
     */
    double cfFreqHz(double offset_mv) const;

    /**
     * Instruction-throughput factor of a p-state relative to running
     * the same code at the base point of the conservative curve.
     * E is > 1 (TDP headroom turns into clocks, Table 2); CV is 1;
     * Cf is f_Cf / f_base < 1.
     */
    double perfFactor(SuitPState p, double offset_mv) const;

    /**
     * Package-power factor of a p-state relative to the conservative
     * base point.  E comes from the measured response (Table 2); CV
     * is 1; Cf is derived from the CMOS model at (V_E, f_Cf).
     */
    double powerFactor(SuitPState p, double offset_mv) const;

    /**
     * All perf/power factors for @p offset_mv in one table: entry
     * [pstateIndex(p)] is bit-identical to calling perfFactor() /
     * powerFactor() with @p p directly.
     */
    PStateFactors factorsAt(double offset_mv) const;

  private:
    Config cfg_;
    CmosPowerModel cmos_;
};

/** @{ The paper's machines. */
CpuModel cpuA_i9_9900k();
CpuModel cpuB_ryzen7700x();
CpuModel cpuC_xeon4208();
CpuModel cpu_i5_1035g1();
/** @} */

} // namespace suit::power

#endif // SUIT_POWER_CPU_MODEL_HH
