#include "power/transition.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace suit::power {

using suit::util::Rng;
using suit::util::Tick;

Tick
DelayDistribution::sample(Rng &rng) const
{
    double us = rng.nextGaussian(meanUs, sigmaUs);
    // Truncate the Gaussian: a hardware transition is never faster
    // than a small fraction of its typical latency.
    us = std::max(us, 0.1 * meanUs);
    if (maxUs > 0.0)
        us = std::min(us, maxUs);
    return suit::util::microsecondsToTicks(us);
}

Tick
DelayDistribution::meanTicks() const
{
    return suit::util::microsecondsToTicks(meanUs);
}

std::vector<WaveformSample>
voltageStepWaveform(const TransitionModel &model, double start_mv,
                    double end_mv, Rng &rng, double sample_period_us)
{
    SUIT_ASSERT(sample_period_us > 0.0, "sample period must be > 0");
    const double settle_us =
        suit::util::ticksToMicroseconds(model.voltageChange.sample(rng));
    std::vector<WaveformSample> out;
    // A little pre-trigger context, then poll until well past settle.
    const double start_t = -3.0 * sample_period_us;
    const double end_t = settle_us + 8.0 * sample_period_us;
    // Voltage regulators step in discrete SVID increments; model the
    // ramp as piecewise steps of ~5 mV with measurement noise.
    const double step_mv = (end_mv > start_mv) ? 5.0 : -5.0;
    for (double t = start_t; t <= end_t; t += sample_period_us) {
        double v;
        if (t <= 0.0) {
            v = start_mv;
        } else if (t >= settle_us) {
            v = end_mv;
        } else {
            const double frac = t / settle_us;
            const double ideal = start_mv + frac * (end_mv - start_mv);
            v = start_mv +
                std::floor((ideal - start_mv) / step_mv) * step_mv;
        }
        v += rng.nextGaussian(0.0, 1.0); // MSR read noise, ~1 mV
        out.push_back({t, v, false});
    }
    return out;
}

std::vector<WaveformSample>
frequencyStepWaveform(const TransitionModel &model, double start_hz,
                      double end_hz, Rng &rng, double sample_period_us)
{
    SUIT_ASSERT(sample_period_us > 0.0, "sample period must be > 0");
    const double change_us =
        suit::util::ticksToMicroseconds(model.freqChange.sample(rng));
    const double stall_us =
        model.stallsOnFreqChange
            ? suit::util::ticksToMicroseconds(
                  model.freqChangeStall.sample(rng))
            : 0.0;
    std::vector<WaveformSample> out;
    const double start_t = -5.0 * sample_period_us;
    const double end_t = change_us + 10.0 * sample_period_us;
    bool aperf_artifact_pending = model.stallsOnFreqChange;
    for (double t = start_t; t <= end_t; t += sample_period_us) {
        const bool in_stall =
            model.stallsOnFreqChange && t > 0.0 && t < stall_us;
        double f;
        if (t <= 0.0) {
            f = start_hz;
        } else if (t < change_us) {
            // AMD-style gradual transition: the core keeps running and
            // the observed frequency drifts toward the target.
            f = model.stallsOnFreqChange
                    ? start_hz
                    : start_hz + (end_hz - start_hz) * (t / change_us);
        } else {
            f = end_hz;
        }
        if (!in_stall && t >= stall_us && aperf_artifact_pending) {
            // First post-stall APERF/MPERF reading still shows the old
            // frequency because the counters were latched late during
            // the stall (paper Sec. 5.2).
            f = start_hz;
            aperf_artifact_pending = false;
        }
        f *= 1.0 + rng.nextGaussian(0.0, 0.002); // counter noise
        out.push_back({t, f, in_stall});
    }
    if (model.stallsOnFreqChange) {
        // Remove samples that fall inside the stall: the measuring
        // core cannot observe itself while stalled (the gray area in
        // Fig. 9).
        out.erase(std::remove_if(out.begin(), out.end(),
                                 [](const WaveformSample &s) {
                                     return s.duringStall;
                                 }),
                  out.end());
    }
    return out;
}

TransitionModel
i9_9900kTransitionModel()
{
    TransitionModel m;
    m.freqChange = {22.0, 0.21, 24.8};
    m.stallsOnFreqChange = true;
    m.freqChangeStall = {22.0, 0.21, 24.8};
    m.voltageChange = {350.0, 22.0, 379.0};
    m.independentVoltageControl = true;
    m.voltageLeadsFrequency = false;
    return m;
}

TransitionModel
ryzen7700xTransitionModel()
{
    TransitionModel m;
    m.freqChange = {668.0, 292.0, 1500.0};
    m.stallsOnFreqChange = false;
    m.voltageChange = {668.0, 292.0, 1500.0};
    // The 7700X exposes no runtime voltage-offset MSR; the Curve
    // Optimizer is a static BIOS setting (paper Sec. 5.4).
    m.independentVoltageControl = false;
    m.voltageLeadsFrequency = false;
    return m;
}

TransitionModel
xeon4208TransitionModel()
{
    TransitionModel m;
    m.freqChange = {31.0, 2.3, 40.0};
    m.stallsOnFreqChange = true;
    m.freqChangeStall = {27.0, 2.5, 35.0};
    m.voltageChange = {335.0, 135.0, 600.0};
    m.independentVoltageControl = true;
    m.voltageLeadsFrequency = true;
    return m;
}

} // namespace suit::power
