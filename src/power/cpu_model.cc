#include "power/cpu_model.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace suit::power {

const char *
toString(SuitPState p)
{
    switch (p) {
      case SuitPState::Efficient:
        return "E";
      case SuitPState::ConservativeFreq:
        return "Cf";
      case SuitPState::ConservativeVolt:
        return "CV";
    }
    return "?";
}

CpuModel::CpuModel(Config cfg)
    : cfg_(std::move(cfg)),
      cmos_(cfg_.baseFreqHz,
            cfg_.conservativeCurve.voltageAtMv(cfg_.baseFreqHz),
            cfg_.basePowerW, cfg_.dynamicFraction)
{
    SUIT_ASSERT(cfg_.coreCount >= 1, "CPU '%s' needs cores",
                cfg_.name.c_str());
    SUIT_ASSERT(cfg_.conservativeCurve.valid(),
                "CPU '%s' needs a DVFS curve", cfg_.name.c_str());
}

DvfsCurve
CpuModel::efficientCurve(double offset_mv) const
{
    return cfg_.conservativeCurve.shifted(
        offset_mv, cfg_.name + " efficient");
}

double
CpuModel::cfFreqHz(double offset_mv) const
{
    const double v_base =
        cfg_.conservativeCurve.voltageAtMv(cfg_.baseFreqHz);
    const double v_eff = v_base + offset_mv; // offset is negative
    return cfg_.conservativeCurve.freqAtHz(v_eff);
}

double
CpuModel::perfFactor(SuitPState p, double offset_mv) const
{
    switch (p) {
      case SuitPState::Efficient:
        return 1.0 + cfg_.undervolt.at(offset_mv).scoreDelta;
      case SuitPState::ConservativeVolt:
        return 1.0;
      case SuitPState::ConservativeFreq:
        return cfFreqHz(offset_mv) / cfg_.baseFreqHz;
    }
    return 1.0;
}

double
CpuModel::powerFactor(SuitPState p, double offset_mv) const
{
    switch (p) {
      case SuitPState::Efficient:
        return 1.0 + cfg_.undervolt.at(offset_mv).powerDelta;
      case SuitPState::ConservativeVolt:
        return 1.0;
      case SuitPState::ConservativeFreq:
        // Cf runs at the same reduced voltage as E (Fig. 4); the
        // measured package response (Table 2) already folds in the
        // power-management behaviour, so Cf is charged the measured
        // efficient-curve power.  (The raw CMOS model would credit
        // Cf an extra ~f_cf/f_base of dynamic power, which the
        // paper's measured totals do not show.)
        return 1.0 + cfg_.undervolt.at(offset_mv).powerDelta;
    }
    return 1.0;
}

PStateFactors
CpuModel::factorsAt(double offset_mv) const
{
    PStateFactors f;
    for (const SuitPState p : {SuitPState::Efficient,
                               SuitPState::ConservativeFreq,
                               SuitPState::ConservativeVolt}) {
        f.perf[pstateIndex(p)] = perfFactor(p, offset_mv);
        f.power[pstateIndex(p)] = powerFactor(p, offset_mv);
    }
    return f;
}

namespace {

/**
 * Quadratic DVFS curve builder: V(f) rises from v_min toward v_max
 * with the steepest gradient at the top, floored at v_min — the shape
 * every measured curve in the paper exhibits (Fig. 13).
 */
DvfsCurve
quadraticCurve(double f_min_ghz, double f_max_ghz, double v_min_mv,
               double v_max_mv, std::string name, int steps = 9)
{
    std::vector<PState> pts;
    for (int i = 0; i < steps; ++i) {
        const double t = static_cast<double>(i) /
                         static_cast<double>(steps - 1);
        const double ghz = f_min_ghz + t * (f_max_ghz - f_min_ghz);
        const double v = v_min_mv + (v_max_mv - v_min_mv) * t * t;
        pts.push_back({ghz * 1e9, std::max(v, v_min_mv)});
    }
    return DvfsCurve(std::move(pts), std::move(name));
}

} // namespace

CpuModel
cpuA_i9_9900k()
{
    CpuModel::Config c;
    c.name = "Intel Core i9-9900K";
    c.label = "A";
    c.coreCount = 8;
    c.domains = DomainLayout::SharedAll;
    c.conservativeCurve = i9_9900kCurve();
    c.undervolt = i9_9900kUndervoltResponse();
    c.transitions = i9_9900kTransitionModel();
    c.baseFreqHz = 4.55e9; // mean SPEC frequency (Fig. 12)
    c.basePowerW = 93.0;   // mean SPEC package power (Fig. 12)
    c.exceptionDelayUs = 0.34; // Sec. 5.3
    c.emulationCallUs = 0.77;  // Sec. 5.3
    return CpuModel(std::move(c));
}

CpuModel
cpuB_ryzen7700x()
{
    CpuModel::Config c;
    c.name = "AMD Ryzen 7 7700X";
    c.label = "B";
    c.vendor = Vendor::Amd;
    c.coreCount = 8;
    c.domains = DomainLayout::PerCoreFrequency;
    c.conservativeCurve =
        quadraticCurve(1.0, 5.4, 800.0, 1250.0, "7700X conservative");
    c.undervolt = ryzen7700xUndervoltResponse();
    c.transitions = ryzen7700xTransitionModel();
    c.baseFreqHz = 5.0e9;
    c.basePowerW = 105.0;
    c.exceptionDelayUs = 0.11; // Sec. 5.3
    c.emulationCallUs = 0.27;  // Sec. 5.3
    return CpuModel(std::move(c));
}

CpuModel
cpuC_xeon4208()
{
    CpuModel::Config c;
    c.name = "Intel Xeon Silver 4208";
    c.label = "C";
    c.coreCount = 8;
    c.domains = DomainLayout::PerCoreAll;
    // The Xeon uses the same clock-source behaviour as the i9 (paper
    // Sec. 5.2); its curve is the i9 shape compressed to the 4208's
    // 1.0-3.2 GHz envelope.
    c.conservativeCurve =
        quadraticCurve(1.0, 3.2, 750.0, 1000.0, "Xeon 4208 conservative");
    c.undervolt = xeon4208UndervoltResponse();
    c.transitions = xeon4208TransitionModel();
    c.baseFreqHz = 3.0e9;
    c.basePowerW = 85.0;
    c.exceptionDelayUs = 0.34; // i9 values (paper: "similar to A")
    c.emulationCallUs = 0.77;
    return CpuModel(std::move(c));
}

CpuModel
cpu_i5_1035g1()
{
    CpuModel::Config c;
    c.name = "Intel Core i5-1035G1";
    c.label = "i5";
    c.coreCount = 4;
    c.domains = DomainLayout::SharedAll;
    c.conservativeCurve =
        quadraticCurve(0.8, 3.6, 650.0, 1050.0, "i5-1035G1 conservative");
    c.undervolt = i5_1035g1UndervoltResponse();
    c.transitions = i9_9900kTransitionModel();
    c.baseFreqHz = 3.2e9;
    c.basePowerW = 15.0; // TDP-limited mobile part
    c.exceptionDelayUs = 0.34;
    c.emulationCallUs = 0.77;
    return CpuModel(std::move(c));
}

} // namespace suit::power
