#include "power/energy.hh"

#include "util/logging.hh"

namespace suit::power {

void
EnergyMeter::advance(suit::util::Tick now, double power_w)
{
    SUIT_ASSERT(now >= now_, "energy meter cannot run backwards");
    const double dt = suit::util::ticksToSeconds(now - now_);
    energyJ_ += dt * power_w;
    now_ = now;
}

double
EnergyMeter::averagePowerW() const
{
    if (now_ == 0)
        return 0.0;
    return energyJ_ / suit::util::ticksToSeconds(now_);
}

void
EnergyMeter::reset()
{
    now_ = 0;
    energyJ_ = 0.0;
}

double
efficiencyRatio(double duration_ratio, double power_ratio)
{
    SUIT_ASSERT(duration_ratio > 0.0 && power_ratio > 0.0,
                "efficiency ratios must be positive");
    return 1.0 / (duration_ratio * power_ratio);
}

double
efficiencyDelta(double duration_ratio, double power_ratio)
{
    return efficiencyRatio(duration_ratio, power_ratio) - 1.0;
}

} // namespace suit::power
