#include "power/undervolt.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace suit::power {

double
UndervoltEffect::efficiencyDelta() const
{
    const double duration_ratio = 1.0 / (1.0 + scoreDelta);
    const double power_ratio = 1.0 + powerDelta;
    return 1.0 / (duration_ratio * power_ratio) - 1.0;
}

UndervoltResponse::UndervoltResponse(std::string cpu_name,
                                     std::vector<UndervoltEffect> anchors)
    : cpuName_(std::move(cpu_name)), anchors_(std::move(anchors))
{
    const bool has_zero =
        std::any_of(anchors_.begin(), anchors_.end(),
                    [](const UndervoltEffect &e) {
                        return e.offsetMv == 0.0;
                    });
    if (!has_zero)
        anchors_.push_back(UndervoltEffect{});
    // Sort by offset descending: 0 first, deepest undervolt last.
    std::sort(anchors_.begin(), anchors_.end(),
              [](const UndervoltEffect &a, const UndervoltEffect &b) {
                  return a.offsetMv > b.offsetMv;
              });
    SUIT_ASSERT(anchors_.size() >= 2,
                "undervolt response '%s' needs measured anchors",
                cpuName_.c_str());
}

UndervoltEffect
UndervoltResponse::at(double offset_mv) const
{
    SUIT_ASSERT(!anchors_.empty(), "uninitialised undervolt response");
    if (offset_mv >= anchors_.front().offsetMv)
        return anchors_.front();
    if (offset_mv <= anchors_.back().offsetMv)
        return anchors_.back();
    for (std::size_t i = 1; i < anchors_.size(); ++i) {
        if (offset_mv >= anchors_[i].offsetMv) {
            const UndervoltEffect &hi = anchors_[i - 1];
            const UndervoltEffect &lo = anchors_[i];
            const double t = (offset_mv - hi.offsetMv) /
                             (lo.offsetMv - hi.offsetMv);
            UndervoltEffect e;
            e.offsetMv = offset_mv;
            e.scoreDelta =
                hi.scoreDelta + t * (lo.scoreDelta - hi.scoreDelta);
            e.powerDelta =
                hi.powerDelta + t * (lo.powerDelta - hi.powerDelta);
            e.freqDelta =
                hi.freqDelta + t * (lo.freqDelta - hi.freqDelta);
            return e;
        }
    }
    return anchors_.back();
}

UndervoltResponse
i9_9900kUndervoltResponse()
{
    // Table 2, i9-9900K rows.
    return UndervoltResponse(
        "Intel Core i9-9900K",
        {{-70.0, 0.022, -0.072, 0.026},
         {-97.0, 0.038, -0.160, 0.033}});
}

UndervoltResponse
i5_1035g1UndervoltResponse()
{
    // Table 2, i5-1035G1 rows (TDP-limited: power barely moves, the
    // whole benefit shows up as frequency/score).
    return UndervoltResponse(
        "Intel Core i5-1035G1",
        {{-70.0, 0.060, -0.001, 0.085},
         {-97.0, 0.079, -0.005, 0.120}});
}

UndervoltResponse
ryzen7700xUndervoltResponse()
{
    // Table 2, 7700X rows (undervolted via AMD's Curve Optimizer).
    return UndervoltResponse(
        "AMD Ryzen 7 7700X",
        {{-70.0, 0.014, -0.098, 0.018},
         {-97.0, 0.019, -0.150, 0.018}});
}

UndervoltResponse
xeon4208UndervoltResponse()
{
    // Substitution: the 4208 rejects MSR 0x150 offsets, so the paper's
    // simulation of CPU C reuses the i9-9900K's measured response.
    UndervoltResponse base = i9_9900kUndervoltResponse();
    return UndervoltResponse("Intel Xeon Silver 4208 (i9 response)",
                             base.anchors());
}

} // namespace suit::power
