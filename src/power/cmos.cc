#include "power/cmos.hh"

#include "util/logging.hh"

namespace suit::power {

CmosPowerModel::CmosPowerModel(double ref_freq_hz, double ref_voltage_mv,
                               double ref_power_w,
                               double dynamic_fraction)
{
    SUIT_ASSERT(ref_freq_hz > 0 && ref_voltage_mv > 0 && ref_power_w > 0,
                "reference operating point must be positive");
    SUIT_ASSERT(dynamic_fraction > 0 && dynamic_fraction <= 1.0,
                "dynamic fraction must be in (0, 1]");
    const double v = ref_voltage_mv * 1e-3; // volts
    const double p_dyn = ref_power_w * dynamic_fraction;
    ceffFarads_ = p_dyn / (v * v * ref_freq_hz);
    const double p_leak = ref_power_w - p_dyn;
    leakagePerMv_ = p_leak / ref_voltage_mv;
}

double
CmosPowerModel::powerW(double freq_hz, double voltage_mv,
                       double activity) const
{
    return dynamicPowerW(freq_hz, voltage_mv, activity) +
           leakagePowerW(voltage_mv);
}

double
CmosPowerModel::dynamicPowerW(double freq_hz, double voltage_mv,
                              double activity) const
{
    const double v = voltage_mv * 1e-3;
    return activity * ceffFarads_ * v * v * freq_hz;
}

double
CmosPowerModel::leakagePowerW(double voltage_mv) const
{
    return leakagePerMv_ * voltage_mv;
}

} // namespace suit::power
