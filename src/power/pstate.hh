/**
 * @file
 * P-states and DVFS curves.
 *
 * A DVFS curve is the vendor-defined set of (frequency, voltage)
 * pairs guaranteeing stable operation (paper Sec. 2.4, Fig. 13).
 * SUIT adds a second, *efficient* curve derived from the conservative
 * one by a negative voltage offset, valid only while the faultable
 * instruction set is disabled (Sec. 3.2).
 */

#ifndef SUIT_POWER_PSTATE_HH
#define SUIT_POWER_PSTATE_HH

#include <string>
#include <vector>

namespace suit::power {

/** One voltage-frequency operating point. */
struct PState
{
    /** Core clock frequency in Hz. */
    double freqHz = 0.0;
    /** Core supply voltage in millivolts. */
    double voltageMv = 0.0;
};

/**
 * A monotone frequency->voltage operating curve.
 *
 * Stores discrete vendor p-states; queries between the anchors are
 * answered with linear interpolation, matching how MSR-based p-state
 * interfaces expose intermediate ratios.
 */
class DvfsCurve
{
  public:
    DvfsCurve() = default;

    /**
     * Build from explicit anchor points.
     *
     * @param points p-states; sorted by frequency internally.
     * @param name label used in reports.
     */
    DvfsCurve(std::vector<PState> points, std::string name);

    /** Curve label. */
    const std::string &name() const { return name_; }
    /** Anchor p-states, ascending by frequency. */
    const std::vector<PState> &points() const { return points_; }
    /** True once anchor points have been installed. */
    bool valid() const { return points_.size() >= 2; }

    /** Lowest supported frequency (Hz). */
    double minFreqHz() const;
    /** Highest supported frequency (Hz). */
    double maxFreqHz() const;

    /**
     * Stable supply voltage for a frequency (linear interpolation,
     * clamped to the end points).
     */
    double voltageAtMv(double freq_hz) const;

    /**
     * Highest stable frequency at a supply voltage (inverse lookup,
     * clamped).
     */
    double freqAtHz(double voltage_mv) const;

    /**
     * Voltage gradient dV/df around a frequency, in mV per GHz.
     * This is the quantity the paper uses to size the aging guardband
     * (Sec. 5.6: 183 mV/GHz on the i9-9900K between 4 and 5 GHz).
     */
    double gradientMvPerGhz(double freq_hz) const;

    /**
     * Derive a shifted curve (e.g., the efficient curve) by adding
     * @p offset_mv to every anchor voltage.  Negative offsets lower
     * the curve.  A floor (default 500 mV) models the minimum
     * retention voltage of the logic.
     */
    DvfsCurve shifted(double offset_mv, std::string name,
                      double floor_mv = 500.0) const;

  private:
    std::vector<PState> points_;
    std::string name_;
};

/**
 * Reference conservative DVFS curve of the Intel Core i9-9900K as
 * measured in the paper (Fig. 13): 991 mV at 4 GHz, 1174 mV at 5 GHz,
 * 183 mV/GHz gradient in between, flattening toward a 800 mV floor at
 * low frequencies.
 */
DvfsCurve i9_9900kCurve();

/**
 * The paper's "modified IMUL" curve (Fig. 13): safe voltages for a
 * 4-cycle IMUL.  The +33 % latency slack allows up to 220 mV lower
 * voltage at 5 GHz, with the benefit vanishing at low frequencies
 * (Sec. 6.9).
 */
DvfsCurve i9_9900kModifiedImulCurve();

} // namespace suit::power

#endif // SUIT_POWER_PSTATE_HH
