#include "power/pstate.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace suit::power {

DvfsCurve::DvfsCurve(std::vector<PState> points, std::string name)
    : points_(std::move(points)), name_(std::move(name))
{
    SUIT_ASSERT(points_.size() >= 2,
                "DVFS curve '%s' needs at least two p-states",
                name_.c_str());
    std::sort(points_.begin(), points_.end(),
              [](const PState &a, const PState &b) {
                  return a.freqHz < b.freqHz;
              });
    for (std::size_t i = 1; i < points_.size(); ++i) {
        SUIT_ASSERT(points_[i].voltageMv >= points_[i - 1].voltageMv,
                    "curve '%s' voltage not monotone at %zu",
                    name_.c_str(), i);
        SUIT_ASSERT(points_[i].freqHz > points_[i - 1].freqHz,
                    "curve '%s' has duplicate frequency at %zu",
                    name_.c_str(), i);
    }
}

double
DvfsCurve::minFreqHz() const
{
    SUIT_ASSERT(valid(), "query on empty curve");
    return points_.front().freqHz;
}

double
DvfsCurve::maxFreqHz() const
{
    SUIT_ASSERT(valid(), "query on empty curve");
    return points_.back().freqHz;
}

double
DvfsCurve::voltageAtMv(double freq_hz) const
{
    SUIT_ASSERT(valid(), "query on empty curve");
    if (freq_hz <= points_.front().freqHz)
        return points_.front().voltageMv;
    if (freq_hz >= points_.back().freqHz)
        return points_.back().voltageMv;
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (freq_hz <= points_[i].freqHz) {
            const PState &lo = points_[i - 1];
            const PState &hi = points_[i];
            const double t =
                (freq_hz - lo.freqHz) / (hi.freqHz - lo.freqHz);
            return lo.voltageMv + t * (hi.voltageMv - lo.voltageMv);
        }
    }
    return points_.back().voltageMv;
}

double
DvfsCurve::freqAtHz(double voltage_mv) const
{
    SUIT_ASSERT(valid(), "query on empty curve");
    if (voltage_mv <= points_.front().voltageMv)
        return points_.front().freqHz;
    if (voltage_mv >= points_.back().voltageMv)
        return points_.back().freqHz;
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (voltage_mv <= points_[i].voltageMv) {
            const PState &lo = points_[i - 1];
            const PState &hi = points_[i];
            if (hi.voltageMv == lo.voltageMv)
                return hi.freqHz;
            const double t = (voltage_mv - lo.voltageMv) /
                             (hi.voltageMv - lo.voltageMv);
            return lo.freqHz + t * (hi.freqHz - lo.freqHz);
        }
    }
    return points_.back().freqHz;
}

double
DvfsCurve::gradientMvPerGhz(double freq_hz) const
{
    SUIT_ASSERT(valid(), "query on empty curve");
    const double ghz = 1e9;
    const double h = 0.25 * ghz;
    const double lo = std::max(freq_hz - h, minFreqHz());
    const double hi = std::min(freq_hz + h, maxFreqHz());
    if (hi <= lo)
        return 0.0;
    return (voltageAtMv(hi) - voltageAtMv(lo)) / ((hi - lo) / ghz);
}

DvfsCurve
DvfsCurve::shifted(double offset_mv, std::string name,
                   double floor_mv) const
{
    std::vector<PState> shifted_points = points_;
    double prev = 0.0;
    for (auto &p : shifted_points) {
        p.voltageMv = std::max(p.voltageMv + offset_mv, floor_mv);
        // Keep monotonicity even when the floor clips the low end.
        p.voltageMv = std::max(p.voltageMv, prev);
        prev = p.voltageMv;
    }
    return DvfsCurve(std::move(shifted_points), std::move(name));
}

DvfsCurve
i9_9900kCurve()
{
    // Quadratic fit through the paper's measurements: V(4 GHz) =
    // 991 mV, V(5 GHz) = 1174 mV, ~183 mV/GHz gradient at the top,
    // with a 800 mV floor at low frequency (Fig. 13).
    std::vector<PState> pts;
    for (double ghz = 1.0; ghz <= 5.01; ghz += 0.5) {
        const double v = 759.0 - 42.0 * ghz + 25.0 * ghz * ghz;
        pts.push_back({ghz * 1e9, std::max(v, 800.0)});
    }
    return DvfsCurve(std::move(pts), "i9-9900K conservative");
}

DvfsCurve
i9_9900kModifiedImulCurve()
{
    // A 4-cycle IMUL gains 33 % timing slack; at 5 GHz that is worth
    // 220 mV, vanishing quadratically toward low frequencies where
    // the curve is floor-limited anyway (Sec. 6.9, Fig. 13).
    const DvfsCurve base = i9_9900kCurve();
    std::vector<PState> pts;
    for (const PState &p : base.points()) {
        const double ghz = p.freqHz / 1e9;
        const double frac = std::max(0.0, (ghz - 1.0) / 4.0);
        const double reduction = 220.0 * frac * frac;
        pts.push_back(
            {p.freqHz, std::max(p.voltageMv - reduction, 800.0)});
    }
    return DvfsCurve(std::move(pts), "i9-9900K modified IMUL");
}

} // namespace suit::power
