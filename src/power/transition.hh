/**
 * @file
 * DVFS transition-delay models (paper Sec. 5.2, Figs. 8-11).
 *
 * Switching DVFS curves is not free: requesting a new frequency or
 * voltage takes tens to hundreds of microseconds to take effect, and
 * on Intel CPUs the core *stalls* while the clock is re-locked.  The
 * paper measures these delays on three machines; this module models
 * them as jittered distributions and can synthesise the measurement
 * waveforms the paper plots.
 */

#ifndef SUIT_POWER_TRANSITION_HH
#define SUIT_POWER_TRANSITION_HH

#include <vector>

#include "util/rng.hh"
#include "util/ticks.hh"

namespace suit::power {

/** A jittered delay: mean and spread in microseconds, hard cap. */
struct DelayDistribution
{
    /** Mean delay (us). */
    double meanUs = 0.0;
    /** Standard deviation (us). */
    double sigmaUs = 0.0;
    /** Hard maximum (us); 0 disables the cap. */
    double maxUs = 0.0;

    /** Draw one delay in ticks (truncated normal, never negative). */
    suit::util::Tick sample(suit::util::Rng &rng) const;

    /** Mean delay in ticks (for deterministic analyses). */
    suit::util::Tick meanTicks() const;
};

/** How a CPU executes p-state change requests. */
struct TransitionModel
{
    /** Delay until a requested core-frequency change takes effect. */
    DelayDistribution freqChange;
    /** Whether the core stalls while the frequency changes. */
    bool stallsOnFreqChange = false;
    /** Stall duration if stallsOnFreqChange. */
    DelayDistribution freqChangeStall;
    /** Delay until a requested core-voltage change has settled. */
    DelayDistribution voltageChange;
    /**
     * Whether voltage can be commanded independently of frequency
     * (Intel MSR 0x150 style).  On CPUs without this (AMD), curve
     * switching can only be done via frequency.
     */
    bool independentVoltageControl = true;
    /**
     * Whether p-state changes sequence voltage-then-frequency in
     * hardware (Intel Xeon PCPS behaviour, Fig. 11).
     */
    bool voltageLeadsFrequency = false;
};

/** One sample of a measured waveform. */
struct WaveformSample
{
    /** Time relative to the change request (us; may be negative). */
    double timeUs = 0.0;
    /** Observed value (mV for voltage, Hz for frequency). */
    double value = 0.0;
    /** True for samples inside a core stall (not observable live). */
    bool duringStall = false;
};

/**
 * Synthesise a voltage-settling waveform like Fig. 8: the regulator
 * ramps from @p start_mv to @p end_mv over a sampled settle delay.
 *
 * @param model transition model supplying the voltage delay.
 * @param start_mv initial core voltage.
 * @param end_mv requested core voltage.
 * @param rng randomness for delay jitter and measurement noise.
 * @param sample_period_us polling period of the virtual MSR reader.
 */
std::vector<WaveformSample>
voltageStepWaveform(const TransitionModel &model, double start_mv,
                    double end_mv, suit::util::Rng &rng,
                    double sample_period_us = 10.0);

/**
 * Synthesise a frequency-change waveform like Figs. 9-11.  On CPUs
 * that stall, no samples exist during the re-lock window and the
 * first sample after the stall still reports the old frequency
 * (the APERF artifact the paper describes).
 */
std::vector<WaveformSample>
frequencyStepWaveform(const TransitionModel &model, double start_hz,
                      double end_hz, suit::util::Rng &rng,
                      double sample_period_us = 2.0);

/** @{ Measured transition models (paper Sec. 5.2). */

/** Intel Core i9-9900K: 22 us freq (core stalls), 350 us voltage. */
TransitionModel i9_9900kTransitionModel();

/** AMD Ryzen 7 7700X: 668 us freq change, no stall, no V control. */
TransitionModel ryzen7700xTransitionModel();

/**
 * Intel Xeon Silver 4208 (per-core PCPS): 335 us voltage followed by
 * 31 us frequency, 27 us stall.
 */
TransitionModel xeon4208TransitionModel();

/** @} */

} // namespace suit::power

#endif // SUIT_POWER_TRANSITION_HH
