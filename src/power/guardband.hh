/**
 * @file
 * Voltage guardband decomposition (paper Secs. 2.2, 3.1, 5.6, 5.7).
 *
 * The vendor supplies the CPU with more voltage than the nominal
 * minimum to cover instruction-to-instruction variation (up to
 * 150 mV), aging (~15 % propagation-delay degradation over 10 years
 * of FinFET operation -> ~137 mV / 12 % on the i9-9900K) and
 * temperature (~35 mV / 3.5 % between 50 and 88 degC).  SUIT's
 * undervolting budget is the instruction-variation band plus an
 * optional fraction of the aging band.
 */

#ifndef SUIT_POWER_GUARDBAND_HH
#define SUIT_POWER_GUARDBAND_HH

#include "power/pstate.hh"

namespace suit::power {

/** The decomposed guardband components at one operating point. */
struct GuardbandBreakdown
{
    /** Supply voltage at the operating point (mV). */
    double supplyMv = 0.0;
    /** Instruction voltage-requirement variation band (mV). */
    double instructionVariationMv = 0.0;
    /** Aging guardband (mV). */
    double agingMv = 0.0;
    /** Temperature guardband (mV). */
    double temperatureMv = 0.0;

    /** Aging band as a fraction of supply. */
    double agingFraction() const { return agingMv / supplyMv; }
    /** Temperature band as a fraction of supply. */
    double temperatureFraction() const
    {
        return temperatureMv / supplyMv;
    }
};

/** Parameters of the aging / temperature guardband model. */
struct GuardbandModel
{
    /**
     * Fractional propagation-delay degradation over the design
     * lifetime (sub-20 nm FinFET: ~15 % over 10 years at >100 degC).
     */
    double agingDelayDegradation = 0.15;
    /** Design lifetime in years. */
    double lifetimeYears = 10.0;
    /** Hot-end core temperature used for the guardband (degC). */
    double hotTempC = 88.0;
    /** Cool reference temperature (degC). */
    double coolTempC = 50.0;
    /** Measured Vmin shift between hot and cool (mV; paper: 35 mV). */
    double temperatureBandMv = 35.0;
    /** Mean instruction voltage variation across studied CPUs (mV). */
    double instructionVariationMv = 70.0;
    /** Maximum observed instruction voltage variation (mV). */
    double instructionVariationMaxMv = 150.0;

    /**
     * Aging guardband in mV at a frequency: the voltage headroom that
     * supports a (1 + degradation) higher frequency on the given
     * curve, i.e. f_max * degradation * dV/df (paper Sec. 5.6).
     */
    double agingBandMv(const DvfsCurve &curve, double freq_hz) const;

    /**
     * Temperature guardband in mV, linearly interpolated between the
     * cool and hot reference temperatures.
     */
    double temperatureBandAtMv(double temp_c) const;

    /**
     * Maximum stable undervolt offset at a core temperature, anchored
     * to the paper's Table 3 (-90 mV at 50 degC, -55 mV at 88 degC on
     * the i9-9900K at 4 GHz).
     */
    double maxUndervoltAtTempMv(double temp_c) const;

    /** Full decomposition at an operating point. */
    GuardbandBreakdown decompose(const DvfsCurve &curve,
                                 double freq_hz) const;
};

/**
 * SUIT's composite undervolting offset (paper Sec. 3.1): the full
 * instruction-variation band plus a fraction of the aging band.
 *
 * @param model guardband model.
 * @param curve conservative DVFS curve.
 * @param freq_hz operating frequency.
 * @param aging_fraction fraction of the aging band to borrow
 *        (the paper evaluates 0.0 -> -70 mV and 0.2 -> -97 mV).
 * @return negative offset in mV.
 */
double suitUndervoltOffsetMv(const GuardbandModel &model,
                             const DvfsCurve &curve, double freq_hz,
                             double aging_fraction);

} // namespace suit::power

#endif // SUIT_POWER_GUARDBAND_HH
