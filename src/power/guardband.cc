#include "power/guardband.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace suit::power {

double
GuardbandModel::agingBandMv(const DvfsCurve &curve, double freq_hz) const
{
    // After `lifetimeYears` the critical path is `agingDelayDegradation`
    // slower; day-one voltage must therefore support a proportionally
    // higher frequency.  Convert via the dV/df gradient measured over
    // the GHz below the operating point, the same window the paper
    // uses (4 -> 5 GHz on the i9-9900K: 183 mV/GHz).
    const double gradient = curve.gradientMvPerGhz(freq_hz - 0.5e9);
    const double extra_ghz = (freq_hz / 1e9) * agingDelayDegradation;
    return extra_ghz * gradient;
}

double
GuardbandModel::temperatureBandAtMv(double temp_c) const
{
    const double t =
        std::clamp((temp_c - coolTempC) / (hotTempC - coolTempC), 0.0,
                   1.0);
    return t * temperatureBandMv;
}

double
GuardbandModel::maxUndervoltAtTempMv(double temp_c) const
{
    // Table 3 anchors: -90 mV at the cool end, -55 mV at the hot end.
    const double cool_offset = -90.0;
    const double hot_offset = -55.0;
    const double t =
        std::clamp((temp_c - coolTempC) / (hotTempC - coolTempC), 0.0,
                   1.0);
    return cool_offset + t * (hot_offset - cool_offset);
}

GuardbandBreakdown
GuardbandModel::decompose(const DvfsCurve &curve, double freq_hz) const
{
    GuardbandBreakdown b;
    b.supplyMv = curve.voltageAtMv(freq_hz);
    b.instructionVariationMv = instructionVariationMv;
    b.agingMv = agingBandMv(curve, freq_hz);
    b.temperatureMv = temperatureBandMv;
    return b;
}

double
suitUndervoltOffsetMv(const GuardbandModel &model, const DvfsCurve &curve,
                      double freq_hz, double aging_fraction)
{
    SUIT_ASSERT(aging_fraction >= 0.0 && aging_fraction <= 1.0,
                "aging fraction must be in [0, 1], got %f",
                aging_fraction);
    const double aging = model.agingBandMv(curve, freq_hz);
    return -(model.instructionVariationMv + aging_fraction * aging);
}

} // namespace suit::power
