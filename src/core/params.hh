/**
 * @file
 * Operating-strategy parameters (paper Sec. 4.3, Table 7).
 *
 * Four knobs tune the fV strategy and its thrashing prevention:
 *   p_dl — the deadline: how long after the last faultable
 *          instruction SUIT waits before returning to the efficient
 *          curve;
 *   p_ts — the look-back window of the thrash detector;
 *   p_ec — the #DO count within p_ts that signals thrashing;
 *   p_df — the factor by which the deadline is stretched while
 *          thrashing.
 */

#ifndef SUIT_CORE_PARAMS_HH
#define SUIT_CORE_PARAMS_HH

#include "power/cpu_model.hh"
#include "util/ticks.hh"

namespace suit::core {

/** The tunables of Sec. 4.3. */
struct StrategyParams
{
    /** Deadline before switching back to the efficient curve (us). */
    double deadlineUs = 30.0;
    /** Thrash-detection look-back window (us). */
    double timeSpanUs = 450.0;
    /** Exception count within the window that flags thrashing. */
    int maxExceptionCount = 3;
    /** Deadline multiplier while thrashing is detected. */
    double deadlineFactor = 14.0;

    /** Deadline in ticks. */
    suit::util::Tick deadlineTicks() const;
    /** Look-back window in ticks. */
    suit::util::Tick timeSpanTicks() const;
    /** Stretched deadline in ticks. */
    suit::util::Tick boostedDeadlineTicks() const;
};

/**
 * The parameters found optimal by the paper's sweep (Table 7):
 * {30 us, 450 us, 3, 14} for the fast-switching Intel CPUs A and C,
 * {700 us, 14 ms, 4, 9} for the slow-switching AMD CPU B.
 */
StrategyParams optimalParams(const suit::power::CpuModel &cpu);

/** Table 7 row for fast-switching CPUs (A and C). */
StrategyParams fastSwitchParams();

/** Table 7 row for slow-switching CPUs (B). */
StrategyParams slowSwitchParams();

} // namespace suit::core

#endif // SUIT_CORE_PARAMS_HH
