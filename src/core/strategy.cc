#include "core/strategy.hh"

#include <new>

#include "util/logging.hh"

namespace suit::core {

using suit::power::SuitPState;

const char *
toString(StrategyKind kind)
{
    switch (kind) {
      case StrategyKind::Emulation:
        return "e";
      case StrategyKind::Frequency:
        return "f";
      case StrategyKind::Voltage:
        return "V";
      case StrategyKind::CombinedFv:
        return "fV";
      case StrategyKind::Hybrid:
        return "e+fV";
    }
    return "?";
}

SwitchingStrategy::SwitchingStrategy(const StrategyParams &params)
    : params_(params), thrash_(params)
{
}

TrapAction
SwitchingStrategy::onDisabledOpcode(CpuControl &cpu,
                                    const suit::os::TrapFrame &frame)
{
    (void)frame;
    ++trapCount_;

    // Listing 1: reach a conservative operating point first, then
    // re-enable the instruction set so the program can continue.
    // If the trap raced the return to the efficient curve, the
    // domain is still conservative: just cancel the pending switch.
    if (cpu.currentPState() == SuitPState::Efficient) {
        switchToConservative(cpu);
    } else {
        cpu.cancelPendingPState();
        restoreAfterCancel(cpu);
    }
    cpu.setInstructionsDisabled(false);

    // Thrashing prevention: stretch the deadline when exceptions
    // cluster just outside it.
    thrash_.recordException(cpu.now());
    if (thrash_.isThrashing(cpu.now())) {
        ++thrashDetections_;
        cpu.setTimerInterrupt(params_.boostedDeadlineTicks());
    } else {
        cpu.setTimerInterrupt(params_.deadlineTicks());
    }
    return TrapAction{false}; // re-execute after the switch
}

void
SwitchingStrategy::reuse(const StrategyParams &params)
{
    OperatingStrategy::reuse(params);
    params_ = params;
    thrash_.rebind(params);
    thrashDetections_ = 0;
}

void
SwitchingStrategy::onTimerInterrupt(CpuControl &cpu)
{
    // No faultable instruction for a whole deadline: disable the set
    // again and drift back to the efficient curve (no need to wait).
    cpu.setInstructionsDisabled(true);
    cpu.changePStateAsync(SuitPState::Efficient);
}

void
FrequencyStrategy::switchToConservative(CpuControl &cpu)
{
    cpu.changePStateWait(SuitPState::ConservativeFreq);
}

void
VoltageStrategy::switchToConservative(CpuControl &cpu)
{
    cpu.changePStateWait(SuitPState::ConservativeVolt);
}

void
CombinedFvStrategy::switchToConservative(CpuControl &cpu)
{
    // Quick safety via the frequency, full performance to follow via
    // the background voltage raise (Fig. 6).
    cpu.changePStateWait(SuitPState::ConservativeFreq);
    cpu.changePStateAsync(SuitPState::ConservativeVolt);
}

void
CombinedFvStrategy::restoreAfterCancel(CpuControl &cpu)
{
    // Still at Cf after the cancelled return: resume the voltage
    // raise so a long burst again ends at full performance.
    if (cpu.currentPState() == SuitPState::ConservativeFreq)
        cpu.changePStateAsync(SuitPState::ConservativeVolt);
}

TrapAction
EmulationStrategy::onDisabledOpcode(CpuControl &cpu,
                                    const suit::os::TrapFrame &frame)
{
    (void)cpu;
    (void)frame;
    ++trapCount_;
    // The instruction set stays disabled and the domain stays on the
    // efficient curve; the handler returns into mapped user-space
    // emulation code (Sec. 3.4).
    return TrapAction{true};
}

void
EmulationStrategy::onTimerInterrupt(CpuControl &cpu)
{
    (void)cpu;
    SUIT_PANIC("emulation strategy never arms the deadline timer");
}

HybridStrategy::HybridStrategy(const StrategyParams &params)
    : CombinedFvStrategy(params), burstDetector_(params)
{
}

void
HybridStrategy::reuse(const StrategyParams &params)
{
    CombinedFvStrategy::reuse(params);
    burstDetector_.rebind(params);
    emulatedTraps_ = 0;
}

TrapAction
HybridStrategy::onDisabledOpcode(CpuControl &cpu,
                                 const suit::os::TrapFrame &frame)
{
    // While already conservative, behave exactly like fV (enable the
    // set, reset the deadline).
    if (cpu.currentPState() != SuitPState::Efficient)
        return CombinedFvStrategy::onDisabledOpcode(cpu, frame);

    burstDetector_.recordException(cpu.now());
    if (!burstDetector_.isThrashing(cpu.now())) {
        // Isolated trap: one emulation round trip beats two curve
        // switches plus a deadline of conservative residency
        // (Sec. 6.6: emulation is faster for single instructions).
        ++trapCount_;
        ++emulatedTraps_;
        return TrapAction{true};
    }
    // Traps are clustering: this is a burst — switch curves.
    return CombinedFvStrategy::onDisabledOpcode(cpu, frame);
}

std::unique_ptr<OperatingStrategy>
makeStrategy(StrategyKind kind, const StrategyParams &params)
{
    switch (kind) {
      case StrategyKind::Emulation:
        return std::make_unique<EmulationStrategy>();
      case StrategyKind::Frequency:
        return std::make_unique<FrequencyStrategy>(params);
      case StrategyKind::Voltage:
        return std::make_unique<VoltageStrategy>(params);
      case StrategyKind::CombinedFv:
        return std::make_unique<CombinedFvStrategy>(params);
      case StrategyKind::Hybrid:
        return std::make_unique<HybridStrategy>(params);
    }
    SUIT_PANIC("bad strategy kind %d", static_cast<int>(kind));
}

namespace {

template <typename T>
constexpr bool fitsArena =
    sizeof(T) <= StrategyArena::kSlotBytes &&
    alignof(T) <= alignof(std::max_align_t);

static_assert(fitsArena<EmulationStrategy> &&
                  fitsArena<FrequencyStrategy> &&
                  fitsArena<VoltageStrategy> &&
                  fitsArena<CombinedFvStrategy> &&
                  fitsArena<HybridStrategy>,
              "StrategyArena::kSlotBytes is too small for a strategy");

} // namespace

OperatingStrategy *
StrategyArena::emplace(StrategyKind kind, const StrategyParams &params)
{
    if (active_ != nullptr && active_->kind() == kind) {
        active_->reuse(params);
        return active_;
    }
    clear();
    void *const slot = static_cast<void *>(slot_);
    switch (kind) {
      case StrategyKind::Emulation:
        active_ = ::new (slot) EmulationStrategy();
        break;
      case StrategyKind::Frequency:
        active_ = ::new (slot) FrequencyStrategy(params);
        break;
      case StrategyKind::Voltage:
        active_ = ::new (slot) VoltageStrategy(params);
        break;
      case StrategyKind::CombinedFv:
        active_ = ::new (slot) CombinedFvStrategy(params);
        break;
      case StrategyKind::Hybrid:
        active_ = ::new (slot) HybridStrategy(params);
        break;
    }
    SUIT_ASSERT(active_ != nullptr, "bad strategy kind %d",
                static_cast<int>(kind));
    return active_;
}

void
StrategyArena::clear()
{
    if (active_ != nullptr) {
        active_->~OperatingStrategy();
        active_ = nullptr;
    }
}

} // namespace suit::core
