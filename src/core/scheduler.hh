/**
 * @file
 * SUIT-aware task placement (the paper's Sec. 7 outlook: "similar
 * scheduling methods could also be used in conjunction with SUIT to
 * minimize DVFS curve changes").
 *
 * On CPUs with one shared DVFS domain (CPU A), any core's #DO trap
 * drags every core off the efficient curve.  A SUIT-aware scheduler
 * therefore *segregates* workloads by their faultable-burst rate:
 * bursty tasks share a domain (which parks conservative anyway),
 * quiet tasks share another (which stays efficient).  A naive
 * round-robin placement mixes them and loses most of the gain.
 */

#ifndef SUIT_CORE_SCHEDULER_HH
#define SUIT_CORE_SCHEDULER_HH

#include <vector>

#include "trace/profile.hh"

namespace suit::core {

/** A placement: taskAssignment[socket] = indices of tasks on it. */
using Placement = std::vector<std::vector<std::size_t>>;

/**
 * Estimated faultable-burst arrival rate of a workload (bursts per
 * second at a 3 GHz reference clock).
 */
double burstRatePerSecond(const suit::trace::WorkloadProfile &profile);

/**
 * The scheduling metric: the share of time this workload would keep
 * a domain *off* the efficient curve if it ran alone (closed-form
 * estimate from the burst model under the reference deadline/switch
 * overhead).  On a shared domain, every tenant's off-share disturbs
 * all co-tenants, so tasks are segregated by it.
 */
double offCurveShare(const suit::trace::WorkloadProfile &profile);

/**
 * Naive round-robin placement of @p tasks over @p sockets domains
 * with @p cores_per_socket slots each (the OS default: spread load).
 */
Placement placeRoundRobin(std::size_t tasks, std::size_t sockets,
                          std::size_t cores_per_socket);

/**
 * SUIT-aware placement: tasks sorted by burst rate and packed so
 * that bursty tasks share domains and quiet tasks share domains.
 *
 * @param profiles one profile per task.
 */
Placement
placeSuitAware(const std::vector<const suit::trace::WorkloadProfile *>
                   &profiles,
               std::size_t sockets, std::size_t cores_per_socket);

} // namespace suit::core

#endif // SUIT_CORE_SCHEDULER_HH
