#include "core/scheduler.hh"

#include <algorithm>
#include <numeric>

#include "util/logging.hh"

namespace suit::core {

using suit::trace::WorkloadProfile;

double
burstRatePerSecond(const WorkloadProfile &profile)
{
    const double instr_per_s = profile.ipc * 3e9;
    const double cycle_instr =
        profile.bursts.meanInterBurstGap() +
        profile.bursts.meanBurstEvents *
            profile.bursts.meanWithinBurstGap;
    SUIT_ASSERT(cycle_instr > 0.0, "profile '%s' has no burst cycle",
                profile.name.c_str());
    return instr_per_s / cycle_instr;
}

Placement
placeRoundRobin(std::size_t tasks, std::size_t sockets,
                std::size_t cores_per_socket)
{
    SUIT_ASSERT(tasks <= sockets * cores_per_socket,
                "placement needs %zu slots, has %zu", tasks,
                sockets * cores_per_socket);
    Placement placement(sockets);
    for (std::size_t t = 0; t < tasks; ++t)
        placement[t % sockets].push_back(t);
    return placement;
}

double
offCurveShare(const WorkloadProfile &profile)
{
    const double overhead_instr = 95e-6 * profile.ipc * 3e9;
    return 1.0 -
           profile.bursts.expectedEfficientShare(overhead_instr);
}

Placement
placeSuitAware(const std::vector<const WorkloadProfile *> &profiles,
               std::size_t sockets, std::size_t cores_per_socket)
{
    SUIT_ASSERT(profiles.size() <= sockets * cores_per_socket,
                "placement needs %zu slots, has %zu", profiles.size(),
                sockets * cores_per_socket);
    // Sort task indices by off-curve share, noisiest first, then fill
    // sockets sequentially: bursty tasks cluster together, leaving
    // whole domains quiet.
    std::vector<std::size_t> order(profiles.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return offCurveShare(*profiles[a]) >
                         offCurveShare(*profiles[b]);
              });

    Placement placement(sockets);
    std::size_t socket = 0;
    for (std::size_t idx : order) {
        while (placement[socket].size() >= cores_per_socket) {
            ++socket;
            SUIT_ASSERT(socket < sockets, "ran out of sockets");
        }
        placement[socket].push_back(idx);
    }
    return placement;
}

} // namespace suit::core
