#include "core/params.hh"

namespace suit::core {

using suit::util::microsecondsToTicks;
using suit::util::Tick;

Tick
StrategyParams::deadlineTicks() const
{
    return microsecondsToTicks(deadlineUs);
}

Tick
StrategyParams::timeSpanTicks() const
{
    return microsecondsToTicks(timeSpanUs);
}

Tick
StrategyParams::boostedDeadlineTicks() const
{
    return microsecondsToTicks(deadlineUs * deadlineFactor);
}

StrategyParams
fastSwitchParams()
{
    return StrategyParams{30.0, 450.0, 3, 14.0};
}

StrategyParams
slowSwitchParams()
{
    return StrategyParams{700.0, 14000.0, 4, 9.0};
}

StrategyParams
optimalParams(const suit::power::CpuModel &cpu)
{
    // Table 7 keys the parameters off the frequency-change delay:
    // CPU B's 668 us switches need a much longer deadline.
    const bool slow = cpu.transitions().freqChange.meanUs > 100.0;
    return slow ? slowSwitchParams() : fastSwitchParams();
}

} // namespace suit::core
