/**
 * @file
 * The SUIT controller: the OS-side façade tying everything together.
 *
 * One controller manages one DVFS domain: it programs the SUIT MSRs
 * (disable-opcode set, curve select), owns the operating strategy and
 * fields the #DO exceptions and deadline interrupts the hardware
 * delivers.  The hardware-enforced invariant of paper Sec. 3.2 — the
 * efficient curve is only reachable while the faultable set is
 * disabled — lives in the MSR write hooks installed here.
 */

#ifndef SUIT_CORE_CONTROLLER_HH
#define SUIT_CORE_CONTROLLER_HH

#include <memory>

#include "core/cpu_iface.hh"
#include "core/strategy.hh"
#include "os/msr.hh"
#include "trace/trace.hh"

namespace suit::core {

/** OS-side manager of one SUIT-capable DVFS domain. */
class SuitController
{
  public:
    /**
     * @param cpu hardware control handle for the domain.
     * @param msrs the domain's MSR file (hooks are installed).
     * @param kind which operating strategy to run.
     * @param params strategy parameters (Table 7).
     */
    SuitController(CpuControl &cpu, suit::os::MsrFile &msrs,
                   StrategyKind kind, const StrategyParams &params);

    /**
     * Turn SUIT on: disable the faultable set (all of Table 1 except
     * the statically hardened IMUL) and move to the efficient curve.
     */
    void enable();

    /** Turn SUIT off: conservative curve, everything enabled. */
    void disable();

    /** True between enable() and disable(). */
    bool enabled() const { return enabled_; }

    /** Hardware upcall: a disabled instruction was fetched. */
    TrapAction handleDisabledOpcode(const suit::os::TrapFrame &frame);

    /** Hardware upcall: the deadline timer expired. */
    void handleTimerInterrupt();

    /** The active strategy. */
    OperatingStrategy &strategy() { return *strategy_; }
    const OperatingStrategy &strategy() const { return *strategy_; }

  private:
    CpuControl &cpu_;
    suit::os::MsrFile &msrs_;
    std::unique_ptr<OperatingStrategy> strategy_;
    bool enabled_ = false;

    void installMsrHooks();
};

/**
 * OS policy choosing the best strategy for a workload (paper
 * Sec. 6.6/6.8: "the operating system can dynamically choose the
 * best operating strategy for each workload").  Compares the
 * expected per-time overhead of emulating every trapped instruction
 * against switching curves per burst.
 *
 * @param cpu the machine.
 * @param trace a representative trace of the workload.
 * @param params strategy parameters (supplies the deadline used to
 *        delimit bursts).
 * @return Emulation where traps are rare enough, otherwise the best
 *         switching strategy the CPU supports (fV needs independent
 *         voltage control; CPU B falls back to f).
 */
StrategyKind selectStrategy(const suit::power::CpuModel &cpu,
                            const suit::trace::Trace &trace,
                            const StrategyParams &params);

} // namespace suit::core

#endif // SUIT_CORE_CONTROLLER_HH
