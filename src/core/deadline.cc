#include "core/deadline.hh"

#include "util/logging.hh"

namespace suit::core {

using suit::util::Tick;

void
DeadlineTimer::arm(Tick now, Tick reload)
{
    SUIT_ASSERT(reload > 0, "deadline reload must be positive");
    armed_ = true;
    reload_ = reload;
    expiry_ = now + reload;
}

void
DeadlineTimer::cancel()
{
    armed_ = false;
}

bool
DeadlineTimer::checkExpired(Tick now)
{
    if (!armed_ || now < expiry_)
        return false;
    armed_ = false;
    ++expirations_;
    return true;
}

} // namespace suit::core
