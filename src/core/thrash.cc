#include "core/thrash.hh"

namespace suit::core {

using suit::util::Tick;

ThrashDetector::ThrashDetector(const StrategyParams &params)
    : params_(params)
{
}

void
ThrashDetector::expire(Tick now) const
{
    const Tick window = params_.timeSpanTicks();
    const Tick cutoff = now > window ? now - window : 0;
    while (!events_.empty() && events_.front() < cutoff)
        events_.pop_front();
}

void
ThrashDetector::recordException(Tick now)
{
    expire(now);
    events_.push_back(now);
}

bool
ThrashDetector::isThrashing(Tick now) const
{
    return exceptionsInWindow(now) >= params_.maxExceptionCount;
}

int
ThrashDetector::exceptionsInWindow(Tick now) const
{
    expire(now);
    return static_cast<int>(events_.size());
}

void
ThrashDetector::reset()
{
    events_.clear();
}

} // namespace suit::core
