#include "core/thrash.hh"

namespace suit::core {

using suit::util::Tick;

namespace {

// Compact the sliding window once this many expired entries pile up
// at the front.  The erase is a memmove of the live tail — no
// allocation — so the buffer's capacity saturates at live + slack.
constexpr std::size_t kCompactThreshold = 1024;

} // namespace

ThrashDetector::ThrashDetector(const StrategyParams &params)
    : params_(params)
{
}

void
ThrashDetector::expire(Tick now) const
{
    const Tick window = params_.timeSpanTicks();
    const Tick cutoff = now > window ? now - window : 0;
    while (start_ < events_.size() && events_[start_] < cutoff)
        ++start_;
    if (start_ == events_.size()) {
        events_.clear();
        start_ = 0;
    } else if (start_ >= kCompactThreshold) {
        events_.erase(events_.begin(),
                      events_.begin() +
                          static_cast<std::ptrdiff_t>(start_));
        start_ = 0;
    }
}

void
ThrashDetector::recordException(Tick now)
{
    expire(now);
    events_.push_back(now);
}

bool
ThrashDetector::isThrashing(Tick now) const
{
    return exceptionsInWindow(now) >= params_.maxExceptionCount;
}

int
ThrashDetector::exceptionsInWindow(Tick now) const
{
    expire(now);
    return static_cast<int>(events_.size() - start_);
}

void
ThrashDetector::reset()
{
    events_.clear();
    start_ = 0;
}

void
ThrashDetector::rebind(const StrategyParams &params)
{
    params_ = params;
    events_.clear();
    start_ = 0;
}

} // namespace suit::core
