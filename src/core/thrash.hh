/**
 * @file
 * Thrashing prevention (paper Sec. 4.3).
 *
 * If faultable instructions recur just outside the deadline, SUIT
 * would bounce between curves and pay the switch cost every time.
 * The OS detects this by counting #DO exceptions within a look-back
 * window (p_ts); at or above p_ec exceptions the deadline is
 * stretched by p_df so the CPU settles on the conservative curve.
 */

#ifndef SUIT_CORE_THRASH_HH
#define SUIT_CORE_THRASH_HH

#include <cstddef>
#include <vector>

#include "core/params.hh"
#include "util/ticks.hh"

namespace suit::core {

/**
 * Sliding-window #DO exception counter.
 *
 * The window is a vector used as a sliding array (`start_` marks the
 * oldest live entry) rather than a deque: expiry advances the start
 * index, and the buffer is compacted in place — so a warm detector
 * records and expires exceptions without ever touching the heap,
 * which the allocation-free domain-evaluation loop relies on.
 */
class ThrashDetector
{
  public:
    /** @param params supplies p_ts and p_ec. */
    explicit ThrashDetector(const StrategyParams &params);

    /** Record one #DO exception. */
    void recordException(suit::util::Tick now);

    /**
     * True if at least p_ec exceptions (including any recorded at
     * exactly @p now) fall inside the look-back window.
     */
    bool isThrashing(suit::util::Tick now) const;

    /** Exceptions currently inside the window. */
    int exceptionsInWindow(suit::util::Tick now) const;

    /** Drop all recorded exceptions. */
    void reset();

    /**
     * Re-arm for a new run with @p params: exactly the state a fresh
     * ThrashDetector(params) would have, but the event buffer keeps
     * its capacity (the StrategyArena reuse path).
     */
    void rebind(const StrategyParams &params);

  private:
    StrategyParams params_;
    mutable std::vector<suit::util::Tick> events_;
    mutable std::size_t start_ = 0; //!< oldest live entry in events_

    void expire(suit::util::Tick now) const;
};

} // namespace suit::core

#endif // SUIT_CORE_THRASH_HH
