/**
 * @file
 * The SUIT operating strategies (paper Sec. 4.3, Listing 1).
 *
 * An operating strategy is the OS policy that reacts to #DO
 * exceptions and deadline-timer interrupts.  Four are defined:
 *
 *  - Emulation (e):  stay on the efficient curve; every trapped
 *    instruction is computed in software.
 *  - Frequency (f):  E <-> Cf — switch curves by changing only the
 *    frequency; fast and power-frugal, but the program runs slower
 *    while conservative.
 *  - Voltage (V):    E <-> CV — switch by raising the voltage; full
 *    speed while conservative, but the switch itself is ~10x slower.
 *  - Combined (fV):  E -> Cf -> CV -> E — the quick frequency drop
 *    buys safety immediately while a voltage raise proceeds in the
 *    background (Fig. 6); short bursts return from Cf, long ones get
 *    full performance at CV.
 *
 * All switching strategies share the deadline timer and thrashing
 * prevention.
 */

#ifndef SUIT_CORE_STRATEGY_HH
#define SUIT_CORE_STRATEGY_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "core/cpu_iface.hh"
#include "core/params.hh"
#include "core/thrash.hh"
#include "os/exception.hh"

namespace suit::core {

/** Identifies one of the operating strategies. */
enum class StrategyKind
{
    Emulation,  //!< "e" in Table 6
    Frequency,  //!< "f"
    Voltage,    //!< "V"
    CombinedFv, //!< "fV"
    /**
     * "e+fV": the dynamic policy the paper sketches in Sec. 6.8
     * ("SUIT could dynamically switch between CV and e for highest
     * efficiency"): isolated traps are emulated in place, clustered
     * traps fall back to fV curve switching.
     */
    Hybrid,
};

/** Printable strategy name ("e", "f", "V", "fV"). */
const char *toString(StrategyKind kind);

/** What the simulator should do with the trapped instruction. */
struct TrapAction
{
    /**
     * True: the instruction was emulated in software and must not be
     * re-executed.  False: re-execute it after the curve switch.
     */
    bool emulated = false;
};

/** Base class of the OS policies reacting to SUIT events. */
class OperatingStrategy
{
  public:
    virtual ~OperatingStrategy() = default;

    /** Handle a #DO exception on @p cpu's domain. */
    virtual TrapAction onDisabledOpcode(CpuControl &cpu,
                                        const suit::os::TrapFrame &frame)
        = 0;

    /** Handle the deadline-timer interrupt. */
    virtual void onTimerInterrupt(CpuControl &cpu) = 0;

    /** Which strategy this is. */
    virtual StrategyKind kind() const = 0;

    /**
     * Re-arm this object for a new run with @p params: afterwards it
     * is observationally identical to a freshly constructed strategy
     * of the same kind (counters zeroed, thrash windows empty, the
     * new parameters active).  Lets StrategyArena recycle a same-kind
     * occupant without re-running the constructor — the last heap-free
     * step of domain-evaluation reuse.  Overrides must reset every
     * member they add and chain to their base.
     */
    virtual void reuse(const StrategyParams &params)
    {
        (void)params;
        trapCount_ = 0;
    }

    /** Short name for reports. */
    const char *name() const { return toString(kind()); }

    /** Total #DO exceptions handled. */
    std::uint64_t trapCount() const { return trapCount_; }

  protected:
    std::uint64_t trapCount_ = 0;
};

/**
 * Common behaviour of the curve-switching strategies (f, V, fV):
 * deadline handling and thrashing prevention per Listing 1.
 */
class SwitchingStrategy : public OperatingStrategy
{
  public:
    explicit SwitchingStrategy(const StrategyParams &params);

    TrapAction onDisabledOpcode(
        CpuControl &cpu, const suit::os::TrapFrame &frame) override;

    void onTimerInterrupt(CpuControl &cpu) override;

    void reuse(const StrategyParams &params) override;

    /** The active parameters. */
    const StrategyParams &params() const { return params_; }

    /** How often thrashing was detected. */
    std::uint64_t thrashDetections() const { return thrashDetections_; }

  protected:
    /**
     * Perform the strategy-specific conservative switch (called with
     * the domain still on the efficient curve).
     */
    virtual void switchToConservative(CpuControl &cpu) = 0;

    /**
     * Called after a trap cancelled a pending return to the
     * efficient curve; lets fV re-arm the background voltage raise.
     */
    virtual void restoreAfterCancel(CpuControl &cpu) { (void)cpu; }

  private:
    StrategyParams params_;
    ThrashDetector thrash_;
    std::uint64_t thrashDetections_ = 0;
};

/** E <-> Cf: frequency-only switching. */
class FrequencyStrategy : public SwitchingStrategy
{
  public:
    using SwitchingStrategy::SwitchingStrategy;
    StrategyKind kind() const override
    {
        return StrategyKind::Frequency;
    }

  protected:
    void switchToConservative(CpuControl &cpu) override;
};

/** E <-> CV: voltage-led switching. */
class VoltageStrategy : public SwitchingStrategy
{
  public:
    using SwitchingStrategy::SwitchingStrategy;
    StrategyKind kind() const override { return StrategyKind::Voltage; }

  protected:
    void switchToConservative(CpuControl &cpu) override;
};

/** E -> Cf -> CV -> E: the paper's Listing 1. */
class CombinedFvStrategy : public SwitchingStrategy
{
  public:
    using SwitchingStrategy::SwitchingStrategy;
    StrategyKind kind() const override
    {
        return StrategyKind::CombinedFv;
    }

  protected:
    void switchToConservative(CpuControl &cpu) override;
    void restoreAfterCancel(CpuControl &cpu) override;
};

/** Stay on E; emulate every trapped instruction in software. */
class EmulationStrategy : public OperatingStrategy
{
  public:
    TrapAction onDisabledOpcode(
        CpuControl &cpu, const suit::os::TrapFrame &frame) override;
    void onTimerInterrupt(CpuControl &cpu) override;
    StrategyKind kind() const override
    {
        return StrategyKind::Emulation;
    }
};

/**
 * The Sec. 6.8 dynamic policy: emulate isolated traps (cheaper than
 * two curve switches for a single instruction, Sec. 6.6), but when
 * traps cluster inside the thrash window — the signature of a burst
 * — switch curves like fV.  While the domain is conservative it
 * behaves exactly like fV.
 */
class HybridStrategy : public CombinedFvStrategy
{
  public:
    explicit HybridStrategy(const StrategyParams &params);

    TrapAction onDisabledOpcode(
        CpuControl &cpu, const suit::os::TrapFrame &frame) override;

    StrategyKind kind() const override { return StrategyKind::Hybrid; }

    void reuse(const StrategyParams &params) override;

    /** Traps resolved by in-place emulation. */
    std::uint64_t emulatedTraps() const { return emulatedTraps_; }

  private:
    ThrashDetector burstDetector_;
    std::uint64_t emulatedTraps_ = 0;
};

/** Instantiate a strategy by kind. */
std::unique_ptr<OperatingStrategy>
makeStrategy(StrategyKind kind, const StrategyParams &params);

/**
 * A fixed-size slot that strategies are placement-constructed into,
 * so a simulator that evaluates many domains back to back re-creates
 * its strategy without touching the heap.  Semantics are identical to
 * makeStrategy(): every emplace() yields an object observationally
 * equal to a freshly constructed one (thrash windows, trap counters
 * all zeroed) — when the requested kind matches the current occupant
 * it is recycled via OperatingStrategy::reuse() instead of being
 * destroyed and re-constructed, which keeps detector buffer capacity
 * warm across domains.
 */
class StrategyArena
{
  public:
    StrategyArena() = default;
    ~StrategyArena() { clear(); }
    StrategyArena(const StrategyArena &) = delete;
    StrategyArena &operator=(const StrategyArena &) = delete;

    /**
     * Make the slot hold a strategy of @p kind in the state a fresh
     * construction with @p params would produce: same-kind occupants
     * are reuse()d in place, otherwise the occupant is destroyed and
     * a new strategy placement-constructed.  The pointer stays valid
     * until the next different-kind emplace(), clear(), or the
     * arena's destruction.
     */
    OperatingStrategy *emplace(StrategyKind kind,
                               const StrategyParams &params);

    /** Destroy the occupant, if any. */
    void clear();

    /** The current occupant (null when empty). */
    OperatingStrategy *get() const { return active_; }

    /**
     * Slot size: large enough for every concrete strategy;
     * strategy.cc static_asserts the bound against the real sizes.
     */
    static constexpr std::size_t kSlotBytes = 320;

  private:
    alignas(alignof(std::max_align_t)) unsigned char slot_[kSlotBytes];
    OperatingStrategy *active_ = nullptr;
};

} // namespace suit::core

#endif // SUIT_CORE_STRATEGY_HH
