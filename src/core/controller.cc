#include "core/controller.hh"

#include "isa/faultable.hh"
#include "util/logging.hh"

namespace suit::core {

using suit::isa::FaultableSet;
using suit::os::Msr;
using suit::os::MsrWriteResult;
using suit::power::SuitPState;

SuitController::SuitController(CpuControl &cpu, suit::os::MsrFile &msrs,
                               StrategyKind kind,
                               const StrategyParams &params)
    : cpu_(cpu), msrs_(msrs), strategy_(makeStrategy(kind, params))
{
    installMsrHooks();
}

void
SuitController::installMsrHooks()
{
    // Hardware invariant (Sec. 3.2): the efficient curve can only be
    // selected while every instruction of the trap set is disabled.
    msrs_.setWriteHook(
        Msr::MSR_SUIT_DVFS_CURVE, [this](std::uint64_t value) {
            if (value == 0)
                return MsrWriteResult::Ok; // conservative: always fine
            const FaultableSet disabled = FaultableSet::fromBits(
                static_cast<std::uint32_t>(
                    msrs_.read(Msr::MSR_SUIT_DISABLE_OPCODE)));
            const FaultableSet required = FaultableSet::suitTrapSet();
            for (auto kind : suit::isa::allFaultableKinds()) {
                if (required.contains(kind) && !disabled.contains(kind))
                    return MsrWriteResult::Fault;
            }
            return MsrWriteResult::Ok;
        });

    // Symmetrically, the trap set cannot be shrunk while the domain
    // runs on the efficient curve.
    msrs_.setWriteHook(
        Msr::MSR_SUIT_DISABLE_OPCODE, [this](std::uint64_t value) {
            if (msrs_.read(Msr::MSR_SUIT_DVFS_CURVE) == 0)
                return MsrWriteResult::Ok;
            const FaultableSet next = FaultableSet::fromBits(
                static_cast<std::uint32_t>(value));
            const FaultableSet required = FaultableSet::suitTrapSet();
            for (auto kind : suit::isa::allFaultableKinds()) {
                if (required.contains(kind) && !next.contains(kind))
                    return MsrWriteResult::Fault;
            }
            return MsrWriteResult::Ok;
        });
}

void
SuitController::enable()
{
    SUIT_ASSERT(!enabled_, "SUIT already enabled on this domain");
    MsrWriteResult r =
        msrs_.write(Msr::MSR_SUIT_DISABLE_OPCODE,
                    FaultableSet::suitTrapSet().bits());
    SUIT_ASSERT(r == MsrWriteResult::Ok, "disable-opcode MSR rejected");
    r = msrs_.write(Msr::MSR_SUIT_DVFS_CURVE, 1);
    SUIT_ASSERT(r == MsrWriteResult::Ok, "curve-select MSR rejected");

    cpu_.setInstructionsDisabled(true);
    cpu_.changePStateAsync(SuitPState::Efficient);
    enabled_ = true;
}

void
SuitController::disable()
{
    SUIT_ASSERT(enabled_, "SUIT not enabled on this domain");
    // Order matters: leave the efficient curve first, then the
    // instruction set may be re-enabled.
    cpu_.changePStateWait(SuitPState::ConservativeVolt);
    MsrWriteResult r = msrs_.write(Msr::MSR_SUIT_DVFS_CURVE, 0);
    SUIT_ASSERT(r == MsrWriteResult::Ok, "curve-select MSR rejected");
    r = msrs_.write(Msr::MSR_SUIT_DISABLE_OPCODE, 0);
    SUIT_ASSERT(r == MsrWriteResult::Ok, "disable-opcode MSR rejected");
    cpu_.setInstructionsDisabled(false);
    enabled_ = false;
}

TrapAction
SuitController::handleDisabledOpcode(const suit::os::TrapFrame &frame)
{
    SUIT_ASSERT(enabled_, "#DO delivered while SUIT is off");
    return strategy_->onDisabledOpcode(cpu_, frame);
}

void
SuitController::handleTimerInterrupt()
{
    SUIT_ASSERT(enabled_, "deadline interrupt while SUIT is off");
    strategy_->onTimerInterrupt(cpu_);
}

StrategyKind
selectStrategy(const suit::power::CpuModel &cpu,
               const suit::trace::Trace &trace,
               const StrategyParams &params)
{
    // Convert the deadline into instructions to delimit bursts.
    const double instr_per_s = trace.ipc() * cpu.baseFreqHz();
    const double deadline_instr =
        params.deadlineUs * 1e-6 * instr_per_s;

    std::uint64_t bursts = 0;
    const std::uint64_t events = trace.eventCount();
    for (const auto &e : trace.events()) {
        if (static_cast<double>(e.gap) > deadline_instr)
            ++bursts;
    }
    const double duration_s =
        static_cast<double>(trace.totalInstructions()) / instr_per_s;

    // Emulation pays the round trip per *real* faultable instruction
    // (each trace event may stand for eventWeight of them); switching
    // pays two frequency changes plus one deadline of reduced-clock
    // residency per burst.
    const double emu_overhead_s = static_cast<double>(events) *
                                  trace.eventWeight() *
                                  cpu.emulationCallUs() * 1e-6;
    const double per_switch_us =
        2.0 * cpu.transitions().freqChange.meanUs + params.deadlineUs;
    const double switch_overhead_s =
        static_cast<double>(bursts) * per_switch_us * 1e-6;

    if (emu_overhead_s <= switch_overhead_s ||
        emu_overhead_s < 0.001 * duration_s) {
        return StrategyKind::Emulation;
    }
    return cpu.transitions().independentVoltageControl
               ? StrategyKind::CombinedFv
               : StrategyKind::Frequency;
}

} // namespace suit::core
