/**
 * @file
 * The hardware deadline timer (paper Sec. 4.1).
 *
 * A count-down register initialised with the deadline.  Executing a
 * would-be-disabled instruction resets the count-down; when it hits
 * zero an interrupt fires so the OS can switch back to the efficient
 * DVFS curve.  This value type tracks the arm/reset/expire state in
 * simulated time.
 */

#ifndef SUIT_CORE_DEADLINE_HH
#define SUIT_CORE_DEADLINE_HH

#include <cstdint>

#include "util/logging.hh"
#include "util/ticks.hh"

namespace suit::core {

/** Count-down timer with reset-on-activity semantics. */
class DeadlineTimer
{
  public:
    /** Arm with a reload value; the count-down starts at @p now. */
    void arm(suit::util::Tick now, suit::util::Tick reload);

    /**
     * A faultable instruction executed at @p now: restart the
     * count-down (no-op while disarmed).  Inline: the simulator's
     * batched native windows call this once per consumed event.
     */
    void touch(suit::util::Tick now)
    {
        if (armed_) {
            expiry_ = now + reload_;
            ++resets_;
        }
    }

    /** Disarm without firing. */
    void cancel();

    /** True while armed. */
    bool armed() const { return armed_; }

    /**
     * Absolute expiry time (valid only while armed).  Inline: read
     * once per event as the native windows' closing boundary.
     */
    suit::util::Tick expiry() const
    {
        SUIT_ASSERT(armed_, "expiry() on a disarmed timer");
        return expiry_;
    }

    /**
     * Check for expiry: returns true exactly once when @p now has
     * reached the expiry time, disarming the timer.
     */
    bool checkExpired(suit::util::Tick now);

    /** @{ Lifetime observability counters (plain, always on). */
    /** Count-down restarts: touch() calls that hit an armed timer. */
    std::uint64_t resets() const { return resets_; }
    /** Expirations delivered by checkExpired(). */
    std::uint64_t expirations() const { return expirations_; }
    /** @} */

  private:
    bool armed_ = false;
    suit::util::Tick reload_ = 0;
    suit::util::Tick expiry_ = 0;
    std::uint64_t resets_ = 0;
    std::uint64_t expirations_ = 0;
};

} // namespace suit::core

#endif // SUIT_CORE_DEADLINE_HH
