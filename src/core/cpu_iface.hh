/**
 * @file
 * The hardware control surface an operating strategy drives.
 *
 * This is the C++ rendering of the interface in the paper's
 * Listing 1: the OS can switch the DVFS curve synchronously or
 * asynchronously, (re-)enable the faultable instructions and arm the
 * deadline timer.  Both the event-based trace simulator and the
 * microarchitectural model implement it.
 */

#ifndef SUIT_CORE_CPU_IFACE_HH
#define SUIT_CORE_CPU_IFACE_HH

#include "power/cpu_model.hh"
#include "util/ticks.hh"

namespace suit::core {

/** Per-DVFS-domain control handle given to operating strategies. */
class CpuControl
{
  public:
    virtual ~CpuControl() = default;

    /**
     * Request a p-state and stall execution until it takes effect
     * (Listing 1: change_pstate_wait).  Frequency-led switches are
     * fast (tens of us); voltage-led ones take hundreds.
     */
    virtual void changePStateWait(suit::power::SuitPState target) = 0;

    /**
     * Request a p-state asynchronously (change_pstate_async): the
     * program keeps running at the current operating point while the
     * regulator works; a newer request supersedes a pending one.
     */
    virtual void changePStateAsync(suit::power::SuitPState target) = 0;

    /**
     * Cancel an in-flight asynchronous p-state request, leaving the
     * domain at its current operating point.  Used when a #DO trap
     * arrives while the domain is already drifting back toward the
     * efficient curve.
     */
    virtual void cancelPendingPState() = 0;

    /**
     * Set whether the faultable instruction set is disabled (true =
     * executing one raises #DO).  The hardware refuses to *enable*
     * the instructions while the domain is on the efficient curve.
     */
    virtual void setInstructionsDisabled(bool disabled) = 0;

    /**
     * Arm the hardware deadline timer with a reload value.  The
     * count-down restarts whenever a faultable instruction executes;
     * on expiry the strategy's onTimerInterrupt() runs and the timer
     * disarms until re-armed.
     */
    virtual void setTimerInterrupt(suit::util::Tick reload) = 0;

    /** The domain's current p-state. */
    virtual suit::power::SuitPState currentPState() const = 0;

    /** Whether the faultable set is currently disabled. */
    virtual bool instructionsDisabled() const = 0;

    /** Current simulated time. */
    virtual suit::util::Tick now() const = 0;
};

} // namespace suit::core

#endif // SUIT_CORE_CPU_IFACE_HH
