#include "obs/registry.hh"

#include <algorithm>
#include <new>

#include "obs/json.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace suit::obs {

namespace {

/**
 * Registries are identified by a process-unique serial so the
 * thread-local shard cache below can never confuse a test-local
 * registry reallocated at a recycled address with the one it cached.
 * Serial 0 is reserved as "nothing cached".
 */
std::atomic<std::uint64_t> g_next_serial{1};

/**
 * Per-thread shard cache: which registry the cached shard belongs to,
 * and the shard itself (type-erased because Shard is private).  The
 * hot path is two thread-local loads and a compare.
 */
thread_local std::uint64_t t_shard_serial = 0;
thread_local void *t_shard = nullptr;

} // namespace

const char *
toString(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "unknown";
}

const MetricValue *
Snapshot::find(const std::string &name) const
{
    for (const MetricValue &m : metrics) {
        if (m.name == name)
            return &m;
    }
    return nullptr;
}

Registry::Registry()
    : serial_(g_next_serial.fetch_add(1, std::memory_order_relaxed))
{
}

Registry::~Registry()
{
    // Writers must be quiesced before destruction (same contract as
    // any other shared object); stale thread-local caches are defused
    // by the serial check, not by clearing them here.
}

MetricId
Registry::counter(const std::string &name)
{
    return registerMetric(name, MetricKind::Counter, {});
}

MetricId
Registry::gauge(const std::string &name)
{
    return registerMetric(name, MetricKind::Gauge, {});
}

MetricId
Registry::histogram(const std::string &name, std::vector<double> bounds)
{
    SUIT_ASSERT(!bounds.empty(),
                "histogram '%s' needs at least one bucket bound",
                name.c_str());
    return registerMetric(name, MetricKind::Histogram,
                          std::move(bounds));
}

MetricId
Registry::registerMetric(const std::string &name, MetricKind kind,
                         std::vector<double> bounds)
{
    // Validate bounds outside the lock; the BucketHistogram ctor
    // asserts strict monotonicity for us.
    if (kind == MetricKind::Histogram) {
        util::BucketHistogram check(bounds);
        (void)check;
    }

    std::lock_guard lock(mu_);
    if (auto it = byName_.find(name); it != byName_.end()) {
        MetricId::Info *info = it->second;
        SUIT_ASSERT(info->kind == kind,
                    "metric '%s' re-registered as %s (was %s)",
                    name.c_str(), toString(kind),
                    toString(info->kind));
        SUIT_ASSERT(info->bounds == bounds,
                    "histogram '%s' re-registered with different "
                    "bounds (%zu vs %zu)",
                    name.c_str(), bounds.size(), info->bounds.size());
        return MetricId(info);
    }

    MetricId::Info info;
    info.name = name;
    info.kind = kind;
    info.bounds = std::move(bounds);
    switch (kind) {
      case MetricKind::Counter:
        info.slots = 1;
        break;
      case MetricKind::Histogram:
        info.slots = static_cast<std::uint32_t>(info.bounds.size()) + 1;
        break;
      case MetricKind::Gauge:
        info.slots = 0;
        info.gaugeIndex = static_cast<std::uint32_t>(gauges_.size());
        gauges_.push_back(0.0);
        break;
    }
    SUIT_ASSERT(nextSlot_ + info.slots <= kShardSlots,
                "metric registry full registering '%s' "
                "(%u slots used of %u)",
                name.c_str(), nextSlot_, kShardSlots);
    info.firstSlot = nextSlot_;
    nextSlot_ += info.slots;

    infos_.push_back(std::move(info));
    MetricId::Info *stable = &infos_.back();
    byName_.emplace(stable->name, stable);
    return MetricId(stable);
}

Registry::Shard &
Registry::shardSlow()
{
    std::lock_guard lock(mu_);
    auto it = shards_.find(std::this_thread::get_id());
    if (it == shards_.end()) {
        void *mem = ::operator new(sizeof(std::atomic<std::uint64_t>) *
                                   kShardSlots);
        auto *cells = static_cast<std::atomic<std::uint64_t> *>(mem);
        for (std::uint32_t i = 0; i < kShardSlots; ++i)
            new (&cells[i]) std::atomic<std::uint64_t>(0);
        auto free_shard = +[](Shard *s) { ::operator delete(s); };
        it = shards_
                 .emplace(std::this_thread::get_id(),
                          std::unique_ptr<Shard, void (*)(Shard *)>(
                              reinterpret_cast<Shard *>(mem),
                              free_shard))
                 .first;
    }
    t_shard_serial = serial_;
    t_shard = it->second.get();
    return *it->second;
}

std::atomic<std::uint64_t> *
Registry::cellsFor(const MetricId::Info &info)
{
    Shard &shard = t_shard_serial == serial_
                       ? *static_cast<Shard *>(t_shard)
                       : shardSlow();
    return &shard.cells[info.firstSlot];
}

void
Registry::add(MetricId id, std::uint64_t n)
{
    if (!enabled() || !id.valid())
        return;
    SUIT_ASSERT(id.info_->kind == MetricKind::Counter,
                "add() on non-counter metric '%s'",
                id.info_->name.c_str());
    cellsFor(*id.info_)[0].fetch_add(n, std::memory_order_relaxed);
}

void
Registry::observe(MetricId id, double value)
{
    if (!enabled() || !id.valid())
        return;
    const MetricId::Info &info = *id.info_;
    SUIT_ASSERT(info.kind == MetricKind::Histogram,
                "observe() on non-histogram metric '%s'",
                info.name.c_str());
    const auto it = std::lower_bound(info.bounds.begin(),
                                     info.bounds.end(), value);
    const auto bucket =
        static_cast<std::size_t>(it - info.bounds.begin());
    cellsFor(info)[bucket].fetch_add(1, std::memory_order_relaxed);
}

void
Registry::set(MetricId id, double value)
{
    if (!enabled() || !id.valid())
        return;
    SUIT_ASSERT(id.info_->kind == MetricKind::Gauge,
                "set() on non-gauge metric '%s'",
                id.info_->name.c_str());
    std::lock_guard lock(mu_);
    gauges_[id.info_->gaugeIndex] = value;
}

Snapshot
Registry::snapshot() const
{
    std::lock_guard lock(mu_);

    // Merge all shards into one flat cell image first: concurrent
    // writers keep mutating their shard, so each cell is read exactly
    // once to keep per-metric values internally consistent.
    std::vector<std::uint64_t> merged(nextSlot_, 0);
    for (const auto &[tid, shard] : shards_) {
        (void)tid;
        for (std::uint32_t i = 0; i < nextSlot_; ++i)
            merged[i] +=
                shard->cells[i].load(std::memory_order_relaxed);
    }

    Snapshot snap;
    snap.metrics.reserve(byName_.size());
    for (const auto &[name, info] : byName_) {
        MetricValue mv;
        mv.name = name;
        mv.kind = info->kind;
        switch (info->kind) {
          case MetricKind::Counter:
            mv.count = merged[info->firstSlot];
            break;
          case MetricKind::Gauge:
            mv.value = gauges_[info->gaugeIndex];
            break;
          case MetricKind::Histogram: {
            util::BucketHistogram hist(info->bounds);
            for (std::uint32_t b = 0; b < info->slots; ++b)
                hist.addCount(b, merged[info->firstSlot + b]);
            mv.histogram = std::move(hist);
            mv.count = mv.histogram.total();
            break;
          }
        }
        snap.metrics.push_back(std::move(mv));
    }
    return snap;
}

void
Registry::snapshotInto(Snapshot &out) const
{
    std::lock_guard lock(mu_);

    // Registration order: infos_ is append-only, so index i always
    // means the same metric and out's slots can be refilled in
    // place.  Cells are merged per metric (each cell still read
    // exactly once), skipping the flat merge buffer snapshot()
    // allocates.
    if (out.metrics.size() != infos_.size())
        out.metrics.resize(infos_.size());
    std::size_t i = 0;
    for (const MetricId::Info &info : infos_) {
        MetricValue &mv = out.metrics[i++];
        mv.name = info.name;
        mv.kind = info.kind;
        mv.count = 0;
        mv.value = 0.0;
        switch (info.kind) {
          case MetricKind::Counter: {
            std::uint64_t total = 0;
            for (const auto &[tid, shard] : shards_) {
                (void)tid;
                total += shard->cells[info.firstSlot].load(
                    std::memory_order_relaxed);
            }
            mv.count = total;
            break;
          }
          case MetricKind::Gauge:
            mv.value = gauges_[info.gaugeIndex];
            break;
          case MetricKind::Histogram: {
            if (mv.histogram.bounds() == info.bounds)
                mv.histogram.resetCounts();
            else
                mv.histogram = util::BucketHistogram(info.bounds);
            for (std::uint32_t b = 0; b < info.slots; ++b) {
                std::uint64_t total = 0;
                for (const auto &[tid, shard] : shards_) {
                    (void)tid;
                    total += shard->cells[info.firstSlot + b].load(
                        std::memory_order_relaxed);
                }
                mv.histogram.addCount(b, total);
            }
            mv.count = mv.histogram.total();
            break;
          }
        }
    }
}

void
Registry::reset()
{
    std::lock_guard lock(mu_);
    for (const auto &[tid, shard] : shards_) {
        (void)tid;
        for (std::uint32_t i = 0; i < nextSlot_; ++i)
            shard->cells[i].store(0, std::memory_order_relaxed);
    }
    std::fill(gauges_.begin(), gauges_.end(), 0.0);
}

std::size_t
Registry::size() const
{
    std::lock_guard lock(mu_);
    return byName_.size();
}

std::string
Registry::renderTable() const
{
    const Snapshot snap = snapshot();
    util::TablePrinter table({"metric", "kind", "value", "p50", "p90",
                              "p99"});
    for (const MetricValue &m : snap.metrics) {
        switch (m.kind) {
          case MetricKind::Counter:
            table.addRow({m.name, "counter",
                          util::sformat("%llu",
                                        static_cast<unsigned long long>(
                                            m.count)),
                          "", "", ""});
            break;
          case MetricKind::Gauge:
            table.addRow({m.name, "gauge",
                          util::sformat("%.6g", m.value), "", "", ""});
            break;
          case MetricKind::Histogram:
            table.addRow(
                {m.name, "histogram",
                 util::sformat("n=%llu",
                               static_cast<unsigned long long>(
                                   m.histogram.total())),
                 util::sformat("%.6g", m.histogram.percentile(50.0)),
                 util::sformat("%.6g", m.histogram.percentile(90.0)),
                 util::sformat("%.6g", m.histogram.percentile(99.0))});
            break;
        }
    }
    return table.render();
}

std::string
Registry::renderJson() const
{
    return renderMetricsJson(snapshot());
}

std::string
renderMetricsJson(const Snapshot &snap)
{
    // Sort by name so the registration-order snapshots the telemetry
    // sampler retains render identically to snapshot()'s name order.
    std::vector<const MetricValue *> order;
    order.reserve(snap.metrics.size());
    for (const MetricValue &m : snap.metrics)
        order.push_back(&m);
    std::stable_sort(order.begin(), order.end(),
                     [](const MetricValue *a, const MetricValue *b) {
                         return a->name < b->name;
                     });

    std::string out;
    out += "{\n";
    out += "  \"schema\": \"suit-obs-metrics-v1\",\n";
    out += "  \"metrics\": [\n";
    for (std::size_t i = 0; i < order.size(); ++i) {
        const MetricValue &m = *order[i];
        out += "    {";
        out += util::sformat("\"name\": %s, \"kind\": \"%s\"",
                             jsonQuote(m.name).c_str(),
                             toString(m.kind));
        switch (m.kind) {
          case MetricKind::Counter:
            out += util::sformat(", \"count\": %llu",
                                 static_cast<unsigned long long>(
                                     m.count));
            break;
          case MetricKind::Gauge:
            out += util::sformat(", \"value\": %.17g", m.value);
            break;
          case MetricKind::Histogram: {
            out += util::sformat(", \"count\": %llu",
                                 static_cast<unsigned long long>(
                                     m.histogram.total()));
            out += ", \"bounds\": [";
            const auto &bounds = m.histogram.bounds();
            for (std::size_t b = 0; b < bounds.size(); ++b) {
                if (b)
                    out += ", ";
                out += util::sformat("%.17g", bounds[b]);
            }
            out += "], \"buckets\": [";
            for (std::size_t b = 0; b < m.histogram.bucketCount();
                 ++b) {
                if (b)
                    out += ", ";
                out += util::sformat("%llu",
                                     static_cast<unsigned long long>(
                                         m.histogram.count(b)));
            }
            out += "]";
            out += util::sformat(
                ", \"p50\": %.17g, \"p90\": %.17g, \"p99\": %.17g",
                m.histogram.percentile(50.0),
                m.histogram.percentile(90.0),
                m.histogram.percentile(99.0));
            break;
          }
        }
        out += "}";
        if (i + 1 < order.size())
            out += ",";
        out += "\n";
    }
    out += "  ]\n";
    out += "}\n";
    return out;
}

Registry &
metrics()
{
    static Registry registry;
    return registry;
}

} // namespace suit::obs
