/**
 * @file
 * Minimal JSON string quoting shared by the obs exporters.
 *
 * Metric and trace names are code-controlled identifiers, but
 * event argument values may carry workload names or paths, so the
 * exporters must still escape properly rather than assume.
 */

#ifndef SUIT_OBS_JSON_HH
#define SUIT_OBS_JSON_HH

#include <string>

#include "util/format.hh"

namespace suit::obs {

/** @return @p s as a double-quoted JSON string literal. */
inline std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                out += suit::util::sformat(
                    "\\u%04x", static_cast<unsigned>(
                                   static_cast<unsigned char>(c)));
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

} // namespace suit::obs

#endif // SUIT_OBS_JSON_HH
